#!/usr/bin/env python3
"""Gate a fresh mdxbench snapshot against the committed baseline.

Usage:
    check_bench.py core  BENCH_core.json  fresh_core.json
    check_bench.py shard BENCH_shard.json fresh_shard.json

The committed BENCH_*.json files pin two different kinds of promise:

  * Deterministic fields — the sharded engine's final state hash and every
    case's simulated-cycle count are pure functions of the spec, identical on
    any machine. A divergence is a semantic change and always fails.
  * Cycle rates — hardware-dependent, so the gate is a ratio: the fresh rate
    must stay above (1 - MAX_REGRESSION) of the baseline's. CI hardware
    differs from the machine that wrote the baseline, so the committed rates
    are refreshed whenever the baseline is regenerated.
"""

import json
import sys

MAX_REGRESSION = 0.25


def fail(msg):
    print("check_bench: FAIL:", msg)
    sys.exit(1)


def rate_ok(name, base, fresh):
    floor = base * (1 - MAX_REGRESSION)
    if fresh < floor:
        fail(
            f"{name}: cycle rate regressed more than {MAX_REGRESSION:.0%}: "
            f"{fresh:.0f} cyc/s vs baseline {base:.0f} (floor {floor:.0f})"
        )
    print(f"check_bench: {name}: {fresh:.0f} cyc/s vs baseline {base:.0f} ok")


def check_core(baseline, fresh):
    base = {e["name"]: e for e in baseline}
    cur = {e["name"]: e for e in fresh}
    if set(base) - set(cur):
        fail(f"missing core cases: {sorted(set(base) - set(cur))}")
    for name, b in base.items():
        c = cur[name]
        if not c["pass"]:
            fail(f"{name}: shape criterion failed")
        if c["cycles"] != b["cycles"]:
            fail(
                f"{name}: simulated cycles diverged from baseline: "
                f"{c['cycles']} vs {b['cycles']} (deterministic field)"
            )
        rate_ok(name, b["cycles_per_sec"], c["cycles_per_sec"])


def check_shard(baseline, fresh):
    base = {(e["name"], e["shards"]): e for e in baseline}
    cur = {(e["name"], e["shards"]): e for e in fresh}
    if set(base) - set(cur):
        fail(f"missing shard cases: {sorted(set(base) - set(cur))}")
    for key, b in base.items():
        c = cur[key]
        name = f"{key[0]} shards={key[1]}"
        if not c["matches_serial"]:
            fail(f"{name}: sharded final hash diverged from its serial twin")
        if c["final_hash"] != b["final_hash"]:
            fail(
                f"{name}: final state hash diverged from baseline: "
                f"{c['final_hash']} vs {b['final_hash']} (semantic change)"
            )
        if c["cycles"] != b["cycles"]:
            fail(f"{name}: cycle budget changed: {c['cycles']} vs {b['cycles']}")
        rate_ok(name, b["cycles_per_sec"], c["cycles_per_sec"])


def main():
    if len(sys.argv) != 4 or sys.argv[1] not in ("core", "shard"):
        print(__doc__)
        sys.exit(2)
    with open(sys.argv[2]) as f:
        baseline = json.load(f)
    with open(sys.argv[3]) as f:
        fresh = json.load(f)
    if sys.argv[1] == "core":
        check_core(baseline, fresh)
    else:
        check_shard(baseline, fresh)
    print("check_bench: OK")


if __name__ == "__main__":
    main()
