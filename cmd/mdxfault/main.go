// Command mdxfault runs dynamic-fault schedules. In single mode it drives
// one machine with a scheduled mid-run fault (or several), reporting the
// in-flight casualties of every event and the retransmission accounting. In
// campaign mode it runs the exhaustive resilience campaign: every
// single-fault placement × injection epoch × traffic pattern, aggregated
// into the availability coverage table. Campaign output is byte-identical
// at every -parallel level.
//
// Both modes render through the shared runners in internal/campaign, so the
// stdout of an mdxfault run is byte-identical to the artifact the mdxserve
// job server produces for the same spec.
//
// Examples:
//
//	mdxfault -shape 8x8 -fail rtc:3,4@500 -waves 6 -retransmit
//	mdxfault -shape 4x4 -fail xb:0:0,2@200 -fail rtc:1,1@400
//	mdxfault -shape 8x8 -campaign -epochs 12,60 -patterns shift+5,reverse -retransmit
//	mdxfault -shape 4x4 -dxb-separate -preset rtc:2,1 -patterns pair:0,1>2,2 \
//	  -broadcast 3,2@0 -retransmit -retry-after 32 -recover
//	mdxfault -shape 4x4 -topo hyperx -fail link:0,0-3,0@200 -retransmit
//	mdxfault -shape 8 -topo fullmesh -campaign -epochs 12 -patterns shift+3
package main

import (
	"flag"
	"fmt"
	"os"

	"sr2201/internal/campaign"
	"sr2201/internal/cliutil"
	"sr2201/internal/core"
	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/inject"
	"sr2201/internal/sweep"
)

func main() {
	var (
		shapeStr   = flag.String("shape", "8x8", "lattice shape, e.g. 8x8 or 4x4x4")
		topoStr    = flag.String("topo", "", "interconnect topology: mdx | hyperx | fullmesh (default mdx)")
		doCampaign = flag.Bool("campaign", false, "run the exhaustive single-fault campaign instead of one schedule")
		epochsStr  = flag.String("epochs", "12", "campaign fault-activation cycles, comma-separated")
		patsStr    = flag.String("patterns", "shift+5", "traffic patterns, comma-separated: shift+K | reverse")
		waves      = flag.Int("waves", 4, "traffic waves (one packet per live PE per wave)")
		gap        = flag.Int64("gap", 24, "cycles between waves")
		packet     = flag.Int("packet", 0, "packet size in flits (0 = default)")
		retransmit = flag.Bool("retransmit", false, "retransmit lost packets from their sources")
		retryAfter = flag.Int64("retry-after", 64, "cycles before the first retransmission")
		backoff    = flag.Int("backoff", 2, "timeout multiplier per further attempt")
		maxRetries = flag.Int("max-retries", 4, "retransmission attempts per packet")
		horizon    = flag.Int64("horizon", 50_000, "cycle budget per run")
		stall      = flag.Int64("stall", 0, "deadlock-watchdog stall threshold (0 = default)")
		parallel   = flag.Int("parallel", sweep.DefaultParallel(), "campaign worker-pool width (1 = serial)")
		stateDir   = flag.String("state-dir", "", "campaign checkpoint directory: completed cells persist and are skipped on re-run (campaign mode)")
		ckptEvery  = flag.Int64("checkpoint-every", 4096, "mid-cell snapshot interval in cycles (with -state-dir; 0 = cell granularity only)")

		doRecover  = flag.Bool("recover", false, "enable deadlock recovery: purge the lowest-ID packet on a confirmed wait cycle and retransmit it")
		recStall   = flag.Int64("stall-threshold", 0, "recovery-watchdog zero-movement cycles before a purge (with -recover; 0 = default)")
		recMax     = flag.Int("max-recoveries", 0, "per-packet sacrifice cap before the LIVELOCK verdict (with -recover; 0 = default)")
		sxbStr     = flag.String("sxb", "", "static-routing crossbar coordinate, e.g. 0,0 (empty = default)")
		dxbStr     = flag.String("dxb", "", "detour crossbar coordinate (with -dxb-separate; empty = default)")
		dxbSep     = flag.Bool("dxb-separate", false, "use a separate detour crossbar (the paper's deadlocking D-XB != S-XB design)")
		vcs        = flag.Int("vcs", 0, "virtual channels per physical wire (with -adaptive; 0 = single-lane network)")
		adaptive   = flag.Bool("adaptive", false, "escape-VC adaptive routing: lanes 1.. take any minimal productive hop, lane 0 is the certified escape channel (needs -vcs >= 2)")
		shards     = flag.Int("shards", 0, "spatial shards per machine (<= 1 = serial stepper; output is identical at any count)")
		reconfig   = flag.String("reconfig", "", "online routing-table reconfiguration trigger: fault | deadlock | both (empty = off)")
		recfgDrain = flag.Int("reconfig-drain", 0, "max in-flight packets a cyclic transition may purge before falling back to rebuild-in-place (with -reconfig; 0 = default)")
		fails      failList
		presets    failList
		broadcasts failList
	)
	flag.Var(&fails, "fail", "fault schedule rtc:X,Y@CYCLE or xb:DIM:X,Y@CYCLE (repeatable; single mode)")
	flag.Var(&presets, "preset", "fault installed before any traffic, rtc:X,Y or xb:DIM:X,Y (repeatable)")
	flag.Var(&broadcasts, "broadcast", "broadcast schedule X,Y@CYCLE (repeatable)")
	flag.Parse()

	shape, err := cliutil.ParseShape(*shapeStr)
	if err != nil {
		fatal(err)
	}
	topology, err := cliutil.ParseTopology(*topoStr)
	if err != nil {
		fatal(err)
	}
	if topology != core.TopologyMDX {
		switch {
		case *sxbStr != "" || *dxbStr != "" || *dxbSep:
			fatal(fmt.Errorf("-sxb/-dxb/-dxb-separate configure crossbars; topology %q has none", topology))
		case *vcs != 0 || *adaptive:
			fatal(fmt.Errorf("-vcs/-adaptive need the mdx crossbar network; topology %q has no VC layer", topology))
		case *reconfig != "":
			fatal(fmt.Errorf("-reconfig needs the mdx crossbar network; topology %q has no reconfigurable table generations", topology))
		case len(broadcasts) > 0:
			fatal(fmt.Errorf("-broadcast needs the mdx hardware broadcast; topology %q has none", topology))
		}
	}
	opt := inject.Options{
		Retransmit:     *retransmit,
		RetryAfter:     *retryAfter,
		Backoff:        *backoff,
		MaxRetries:     *maxRetries,
		StallThreshold: *stall,
	}
	patterns, err := campaign.ParsePatterns(*patsStr)
	if err != nil {
		fatal(err)
	}
	recOpt, err := cliutil.RecoveryOptions(*doRecover, *recStall, *recMax)
	if err != nil {
		fatal(err)
	}
	vcCount, err := cliutil.VCOptions(*vcs, *adaptive)
	if err != nil {
		fatal(err)
	}
	recfgMode, recfgBudget, err := cliutil.ReconfigOptions(*reconfig, *recfgDrain)
	if err != nil {
		fatal(err)
	}
	if *adaptive && *dxbSep {
		fatal(fmt.Errorf("-adaptive needs the unified design (the escape lane's certificate assumes D-XB = S-XB; drop -dxb-separate)"))
	}
	var sxb, dxb geom.Coord
	if *sxbStr != "" {
		if sxb, err = cliutil.ParseCoord(*sxbStr, shape.Dims()); err != nil {
			fatal(err)
		}
	}
	if *dxbStr != "" {
		if !*dxbSep {
			fatal(fmt.Errorf("-dxb needs -dxb-separate (the unified design has no second crossbar)"))
		}
		if dxb, err = cliutil.ParseCoord(*dxbStr, shape.Dims()); err != nil {
			fatal(err)
		}
	}
	var presetFaults []fault.Fault
	for _, ps := range presets {
		f, err := cliutil.ParseFaultIn(ps, shape)
		if err != nil {
			fatal(err)
		}
		if err := cliutil.CheckFaultTopology(f, topology); err != nil {
			fatal(err)
		}
		presetFaults = append(presetFaults, f)
	}
	var bcasts []campaign.Broadcast
	for _, bs := range broadcasts {
		src, cycle, err := cliutil.ParseBroadcast(bs, shape)
		if err != nil {
			fatal(err)
		}
		bcasts = append(bcasts, campaign.Broadcast{Cycle: cycle, Src: src, Size: *packet})
	}

	if *doCampaign {
		if len(fails) > 0 {
			fatal(fmt.Errorf("-fail selects single mode; a campaign enumerates every placement itself"))
		}
		epochs, err := campaign.ParseEpochs(*epochsStr)
		if err != nil {
			fatal(err)
		}
		var store *campaign.Store
		if *stateDir != "" {
			if store, err = campaign.OpenStore(*stateDir); err != nil {
				fatal(err)
			}
		}
		res, err := campaign.Run(campaign.Config{
			Shape:               shape,
			Topology:            topology,
			Epochs:              epochs,
			Patterns:            patterns,
			Waves:               *waves,
			Gap:                 *gap,
			PacketSize:          *packet,
			Inject:              opt,
			Horizon:             *horizon,
			Recovery:            recOpt,
			Preset:              presetFaults,
			Broadcasts:          bcasts,
			SXB:                 sxb,
			DXB:                 dxb,
			DXBSeparate:         *dxbSep,
			VCs:                 vcCount,
			Adaptive:            *adaptive,
			Shards:              *shards,
			Reconfig:            recfgMode,
			ReconfigDrainBudget: recfgBudget,
			Parallel:            *parallel,
			Store:               store,
			CheckpointEvery:     *ckptEvery,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.String())
		if res.Deadlocks() > 0 || res.Stalls() > 0 || res.Livelocked() > 0 {
			os.Exit(1)
		}
		return
	}

	if len(fails) == 0 && len(presetFaults) == 0 && len(bcasts) == 0 {
		fatal(fmt.Errorf("single mode needs a -fail schedule, -preset fault or -broadcast (or use -campaign)"))
	}
	if *stateDir != "" {
		fatal(fmt.Errorf("-state-dir applies to campaign mode"))
	}
	if len(patterns) != 1 {
		fatal(fmt.Errorf("single mode takes exactly one pattern"))
	}
	events := make([]inject.Event, 0, len(fails))
	for _, fs := range fails {
		f, cycle, err := cliutil.ParseScheduledFault(fs, shape)
		if err != nil {
			fatal(err)
		}
		if err := cliutil.CheckFaultTopology(f, topology); err != nil {
			fatal(err)
		}
		events = append(events, inject.Event{Cycle: cycle, Fault: f})
	}
	outcome, err := campaign.RunSingle(campaign.SingleSpec{
		Shape:               shape,
		Topology:            topology,
		Events:              events,
		Pattern:             patterns[0],
		Waves:               *waves,
		Gap:                 *gap,
		PacketSize:          *packet,
		Horizon:             *horizon,
		Inject:              opt,
		Recovery:            recOpt,
		Preset:              presetFaults,
		Broadcasts:          bcasts,
		SXB:                 sxb,
		DXB:                 dxb,
		DXBSeparate:         *dxbSep,
		VCs:                 vcCount,
		Adaptive:            *adaptive,
		Shards:              *shards,
		Reconfig:            recfgMode,
		ReconfigDrainBudget: recfgBudget,
	}, os.Stdout)
	if err != nil {
		fatal(err)
	}
	if !outcome.Drained {
		os.Exit(1)
	}
}

// failList collects repeated -fail flags.
type failList []string

func (f *failList) String() string     { return fmt.Sprint([]string(*f)) }
func (f *failList) Set(s string) error { *f = append(*f, s); return nil }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdxfault:", err)
	os.Exit(2)
}
