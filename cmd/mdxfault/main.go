// Command mdxfault runs dynamic-fault schedules. In single mode it drives
// one machine with a scheduled mid-run fault (or several), reporting the
// in-flight casualties of every event and the retransmission accounting. In
// campaign mode it runs the exhaustive resilience campaign: every
// single-fault placement × injection epoch × traffic pattern, aggregated
// into the availability coverage table. Campaign output is byte-identical
// at every -parallel level.
//
// Examples:
//
//	mdxfault -shape 8x8 -fail rtc:3,4@500 -waves 6 -retransmit
//	mdxfault -shape 4x4 -fail xb:0:0,2@200 -fail rtc:1,1@400
//	mdxfault -shape 8x8 -campaign -epochs 12,60 -patterns shift+5,reverse -retransmit
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sr2201/internal/campaign"
	"sr2201/internal/cliutil"
	"sr2201/internal/core"
	"sr2201/internal/deadlock"
	"sr2201/internal/geom"
	"sr2201/internal/inject"
	"sr2201/internal/routing"
	"sr2201/internal/stats"
	"sr2201/internal/sweep"
)

func main() {
	var (
		shapeStr   = flag.String("shape", "8x8", "lattice shape, e.g. 8x8 or 4x4x4")
		doCampaign = flag.Bool("campaign", false, "run the exhaustive single-fault campaign instead of one schedule")
		epochsStr  = flag.String("epochs", "12", "campaign fault-activation cycles, comma-separated")
		patsStr    = flag.String("patterns", "shift+5", "traffic patterns, comma-separated: shift+K | reverse")
		waves      = flag.Int("waves", 4, "traffic waves (one packet per live PE per wave)")
		gap        = flag.Int64("gap", 24, "cycles between waves")
		packet     = flag.Int("packet", 0, "packet size in flits (0 = default)")
		retransmit = flag.Bool("retransmit", false, "retransmit lost packets from their sources")
		retryAfter = flag.Int64("retry-after", 64, "cycles before the first retransmission")
		backoff    = flag.Int("backoff", 2, "timeout multiplier per further attempt")
		maxRetries = flag.Int("max-retries", 4, "retransmission attempts per packet")
		horizon    = flag.Int64("horizon", 50_000, "cycle budget per run")
		stall      = flag.Int64("stall", 0, "deadlock-watchdog stall threshold (0 = default)")
		parallel   = flag.Int("parallel", sweep.DefaultParallel(), "campaign worker-pool width (1 = serial)")
		fails      failList
	)
	flag.Var(&fails, "fail", "fault schedule rtc:X,Y@CYCLE or xb:DIM:X,Y@CYCLE (repeatable; single mode)")
	flag.Parse()

	shape, err := cliutil.ParseShape(*shapeStr)
	if err != nil {
		fatal(err)
	}
	opt := inject.Options{
		Retransmit:     *retransmit,
		RetryAfter:     *retryAfter,
		Backoff:        *backoff,
		MaxRetries:     *maxRetries,
		StallThreshold: *stall,
	}
	patterns, err := parsePatterns(*patsStr)
	if err != nil {
		fatal(err)
	}

	if *doCampaign {
		if len(fails) > 0 {
			fatal(fmt.Errorf("-fail selects single mode; a campaign enumerates every placement itself"))
		}
		epochs, err := parseEpochs(*epochsStr)
		if err != nil {
			fatal(err)
		}
		res, err := campaign.Run(campaign.Config{
			Shape:      shape,
			Epochs:     epochs,
			Patterns:   patterns,
			Waves:      *waves,
			Gap:        *gap,
			PacketSize: *packet,
			Inject:     opt,
			Horizon:    *horizon,
			Parallel:   *parallel,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.String())
		if res.Deadlocks() > 0 || res.Stalls() > 0 {
			os.Exit(1)
		}
		return
	}

	if len(fails) == 0 {
		fatal(fmt.Errorf("single mode needs at least one -fail schedule (or use -campaign)"))
	}
	if len(patterns) != 1 {
		fatal(fmt.Errorf("single mode takes exactly one pattern"))
	}
	events := make([]inject.Event, 0, len(fails))
	for _, fs := range fails {
		f, cycle, err := cliutil.ParseScheduledFault(fs, shape)
		if err != nil {
			fatal(err)
		}
		events = append(events, inject.Event{Cycle: cycle, Fault: f})
	}
	if err := runSingle(shape, events, patterns[0], *waves, *gap, *packet, *horizon, opt); err != nil {
		fatal(err)
	}
}

// runSingle drives one machine through the schedule, printing casualties as
// events fire and the final accounting.
func runSingle(shape geom.Shape, events []inject.Event, pat campaign.Pattern,
	waves int, gap int64, packet int, horizon int64, opt inject.Options) error {
	m, err := core.NewMachine(core.Config{
		Shape:          shape,
		PacketSize:     packet,
		StallThreshold: opt.StallThreshold,
	})
	if err != nil {
		return err
	}
	inj, err := inject.New(m, events, opt)
	if err != nil {
		return err
	}
	fmt.Printf("shape=%v pattern=%s waves=%d gap=%d retransmit=%v\n",
		shape, pat.Name, waves, gap, opt.Retransmit)
	for _, ev := range events {
		fmt.Printf("scheduled: %s @ cycle %d\n", ev.Fault, ev.Cycle)
	}

	eng := m.Engine()
	w := deadlock.NewWatchdog(eng, opt.StallThreshold)
	offered, accepted, refused := 0, 0, 0
	reported := 0
	wave := 0
	var outcome deadlock.Outcome
	for eng.Cycle() < horizon {
		if wave < waves && eng.Cycle() == int64(wave)*gap {
			shape.Enumerate(func(src geom.Coord) bool {
				if !m.Alive(src) {
					return true
				}
				dst := pat.Dest(shape, src)
				if dst == src {
					return true
				}
				offered++
				if _, err := m.Send(src, dst, packet); err != nil {
					if errors.Is(err, routing.ErrUnreachable) {
						refused++
					}
					return true
				}
				accepted++
				return true
			})
			wave++
		}
		if wave >= waves && eng.Quiescent() && !inj.Pending() {
			outcome.Drained = true
			break
		}
		m.Step()
		for _, c := range inj.Casualties()[reported:] {
			fmt.Printf("cycle %d: %s fails — %d packet(s) killed in flight\n",
				c.Cycle, c.Fault, len(c.Lost))
			for _, l := range c.Lost {
				if l.Known {
					fmt.Printf("  killed pkt %d: %v -> %v (rc=%d, %d flits)\n",
						l.PacketID, l.Src, l.Dst, l.RC, l.Size)
				} else {
					fmt.Printf("  killed pkt %d: header untraceable\n", l.PacketID)
				}
			}
			reported++
		}
		if w.Stalled() {
			rep := deadlock.Analyze(eng)
			outcome.Stalled = true
			outcome.Deadlocked = rep.Deadlocked
			break
		}
	}
	if err := inj.Err(); err != nil {
		return err
	}
	outcome.Cycle = eng.Cycle()

	st := inj.Stats()
	t := stats.NewTable("dynamic-fault accounting",
		"offered", "accepted", "refused", "delivered",
		"killed", "retx", "recovered", "lost-unreach", "lost-exhaust", "dup")
	t.AddRow(offered, accepted, refused, len(m.Deliveries()),
		st.KilledInFlight+st.DropsEnRoute, st.Retransmits, st.Recovered,
		st.LostUnreachable, st.LostExhausted, st.Duplicates)
	fmt.Println()
	fmt.Print(t.String())
	switch {
	case outcome.Deadlocked:
		fmt.Printf("outcome: DEADLOCK at cycle %d\n", outcome.Cycle)
		os.Exit(1)
	case outcome.Stalled:
		fmt.Printf("outcome: stalled at cycle %d (no cyclic wait)\n", outcome.Cycle)
		os.Exit(1)
	case outcome.Drained:
		fmt.Printf("outcome: drained at cycle %d\n", outcome.Cycle)
	default:
		fmt.Printf("outcome: horizon %d exceeded\n", horizon)
		os.Exit(1)
	}
	return nil
}

// parsePatterns parses a comma-separated pattern list: shift+K | reverse.
func parsePatterns(s string) ([]campaign.Pattern, error) {
	var out []campaign.Pattern
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		switch {
		case name == "reverse":
			out = append(out, campaign.Reverse())
		case strings.HasPrefix(name, "shift+"):
			k, err := strconv.Atoi(strings.TrimPrefix(name, "shift+"))
			if err != nil || k < 1 {
				return nil, fmt.Errorf("mdxfault: bad shift pattern %q", name)
			}
			out = append(out, campaign.Shift(k))
		default:
			return nil, fmt.Errorf("mdxfault: unknown pattern %q (shift+K | reverse)", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("mdxfault: empty pattern list")
	}
	return out, nil
}

// parseEpochs parses a comma-separated list of activation cycles.
func parseEpochs(s string) ([]int64, error) {
	var out []int64
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("mdxfault: bad epoch %q", p)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("mdxfault: empty epoch list")
	}
	return out, nil
}

// failList collects repeated -fail flags.
type failList []string

func (f *failList) String() string     { return fmt.Sprint([]string(*f)) }
func (f *failList) Set(s string) error { *f = append(*f, s); return nil }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdxfault:", err)
	os.Exit(2)
}
