package main

// -bench-core: core simulation cycle-rate snapshots. BENCH_shard.json tracks
// the sharded stepper against its serial twin; this file tracks the rates the
// ROADMAP calls out as untracked — the E6 and E11 experiment sweeps (cells
// report their simulated cycles through Options.OnCell) and the raw kernel
// step loop the SimulationCycle micro-benchmark measures. The JSON lands in a
// file (BENCH_core.json in CI) so the per-commit speed trajectory of the
// ordinary, unsharded engine is archived too.

import (
	"encoding/json"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"sr2201/internal/core"
	"sr2201/internal/experiments"
	"sr2201/internal/geom"
)

type coreBenchEntry struct {
	Name         string  `json:"name"`
	Detail       string  `json:"detail"`
	Cycles       int64   `json:"cycles"`
	WallMS       float64 `json:"wall_ms"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	Pass         bool    `json:"pass"`
}

// benchExperimentRate runs one registered experiment, accumulating the
// simulated cycles its sweep cells report, and prices it in cycles per
// wall-clock second.
func benchExperimentRate(id string, quick bool, parallel int) (coreBenchEntry, error) {
	e, ok := experiments.ByID(id)
	if !ok {
		return coreBenchEntry{}, fmt.Errorf("experiment %s not registered", id)
	}
	var cycles atomic.Int64
	opt := experiments.Options{
		Quick:    quick,
		Parallel: parallel,
		OnCell:   func(c int64) { cycles.Add(c) },
	}
	start := time.Now()
	r, err := e.Run(opt)
	if err != nil {
		return coreBenchEntry{}, err
	}
	wall := time.Since(start)
	return coreBenchEntry{
		Name:         id,
		Detail:       e.Title,
		Cycles:       cycles.Load(),
		WallMS:       float64(wall.Microseconds()) / 1000,
		CyclesPerSec: float64(cycles.Load()) / wall.Seconds(),
		Pass:         r.Pass,
	}, nil
}

// benchKernelRate steps a loaded 8x8 machine for a fixed cycle budget — the
// same workload as the SimulationCycle micro-benchmark, with the wave
// refilled whenever the network drains so the kernel never idles.
func benchKernelRate(cycles int64) (coreBenchEntry, error) {
	shape := geom.MustShape(8, 8)
	m, err := core.NewMachine(core.Config{Shape: shape})
	if err != nil {
		return coreBenchEntry{}, err
	}
	refill := func() {
		shape.Enumerate(func(c geom.Coord) bool {
			dst := shape.CoordOf((shape.Index(c) + 27) % shape.Size())
			_, _ = m.Send(c, dst, 8)
			return true
		})
	}
	refill()
	start := time.Now()
	for cyc := int64(0); cyc < cycles; cyc++ {
		if m.Engine().Quiescent() {
			refill()
		}
		m.Step()
	}
	wall := time.Since(start)
	return coreBenchEntry{
		Name:         "SimulationCycle",
		Detail:       "loaded 8x8 crossbar kernel step loop",
		Cycles:       cycles,
		WallMS:       float64(wall.Microseconds()) / 1000,
		CyclesPerSec: float64(cycles) / wall.Seconds(),
		Pass:         true,
	}, nil
}

// benchCore runs the three tracked rate cases and writes the JSON report. An
// experiment that fails its shape criterion fails the benchmark — a perf
// snapshot of a broken run would poison the trajectory.
func benchCore(path string, quick bool, parallel int) error {
	kernelCycles := int64(50_000)
	if quick {
		kernelCycles = 10_000
	}
	var entries []coreBenchEntry
	kernel, err := benchKernelRate(kernelCycles)
	if err != nil {
		return fmt.Errorf("SimulationCycle: %w", err)
	}
	entries = append(entries, kernel)
	failed := 0
	for _, id := range []string{"E6", "E11"} {
		e, err := benchExperimentRate(id, quick, parallel)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if !e.Pass {
			failed++
		}
		entries = append(entries, e)
	}
	for _, e := range entries {
		fmt.Fprintf(os.Stderr, "mdxbench: %-15s %12d cycles %9.1f ms %12.0f cyc/s (pass=%v)\n",
			e.Name, e.Cycles, e.WallMS, e.CyclesPerSec, e.Pass)
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed their shape criterion — see %s", failed, path)
	}
	return nil
}
