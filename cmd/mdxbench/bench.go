package main

// -bench-shards: serial-vs-sharded cycle-rate snapshots. Each case drives a
// machine under identical open-loop load at shard count 1 and at -shards,
// timing the stepped cycles and recording the engine's final StateHash; the
// sharded hash must equal the serial one (the benchmark doubles as an
// equivalence smoke test at scale). The JSON lands in a file (BENCH_shard.json
// in CI) so the speed trajectory is tracked per commit instead of anecdotal.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"sr2201/internal/core"
	"sr2201/internal/geom"
)

type shardBenchEntry struct {
	Name          string  `json:"name"`
	Shape         string  `json:"shape"`
	PEs           int     `json:"pes"`
	Shards        int     `json:"shards"`
	BoundaryLinks int     `json:"boundary_links"`
	Cycles        int64   `json:"cycles"`
	WallMS        float64 `json:"wall_ms"`
	CyclesPerSec  float64 `json:"cycles_per_sec"`
	FinalHash     string  `json:"final_hash"`
	MatchesSerial bool    `json:"matches_serial"`
}

type shardBenchCase struct {
	name   string
	shape  geom.Shape
	rate   float64
	cycles int64
}

// runShardBenchCase steps one machine under seeded Bernoulli load for a fixed
// cycle budget. The injection stream is a pure function of the seed, so two
// runs of the same case at different shard counts reach identical states.
func runShardBenchCase(c shardBenchCase, shards int) (shardBenchEntry, error) {
	m, err := core.NewMachine(core.Config{Shape: c.shape, Shards: shards})
	if err != nil {
		return shardBenchEntry{}, err
	}
	rng := rand.New(rand.NewSource(17))
	size := c.shape.Size()
	start := time.Now()
	for cyc := int64(0); cyc < c.cycles; cyc++ {
		c.shape.Enumerate(func(s geom.Coord) bool {
			if rng.Float64() < c.rate {
				if d := c.shape.CoordOf(rng.Intn(size)); d != s {
					m.SendUnchecked(s, d, 8)
				}
			}
			return true
		})
		m.Step()
	}
	wall := time.Since(start)
	return shardBenchEntry{
		Name:          c.name,
		Shape:         c.shape.String(),
		PEs:           size,
		Shards:        m.Engine().ShardCount(),
		BoundaryLinks: m.Engine().BoundaryLinks(),
		Cycles:        c.cycles,
		WallMS:        float64(wall.Microseconds()) / 1000,
		CyclesPerSec:  float64(c.cycles) / wall.Seconds(),
		FinalHash:     fmt.Sprintf("%016x", m.Engine().StateHash()),
	}, nil
}

// benchShards runs every case serial and sharded and writes the JSON report.
// It returns an error when any sharded final hash differs from its serial
// twin — a perf snapshot that silently changed semantics is worse than none.
func benchShards(path string, shards int, quick bool) error {
	if shards <= 1 {
		shards = 4
	}
	cases := []shardBenchCase{
		{name: "xbar2d-256", shape: geom.MustShape(16, 16), rate: 0.02, cycles: 1500},
		{name: "machine3d-512", shape: geom.MustShape(8, 8, 8), rate: 0.005, cycles: 400},
		{name: "machine3d-2048", shape: geom.MustShape(8, 16, 16), rate: 0.002, cycles: 200},
	}
	if quick {
		for i := range cases {
			cases[i].cycles /= 4
		}
	}
	var entries []shardBenchEntry
	mismatched := 0
	for _, c := range cases {
		serial, err := runShardBenchCase(c, 1)
		if err != nil {
			return fmt.Errorf("%s serial: %w", c.name, err)
		}
		serial.MatchesSerial = true
		sharded, err := runShardBenchCase(c, shards)
		if err != nil {
			return fmt.Errorf("%s sharded: %w", c.name, err)
		}
		sharded.MatchesSerial = sharded.FinalHash == serial.FinalHash
		if !sharded.MatchesSerial {
			mismatched++
		}
		entries = append(entries, serial, sharded)
		fmt.Fprintf(os.Stderr, "mdxbench: %-15s shards=%d %9.0f cyc/s | shards=%d %9.0f cyc/s (%d boundary links, hash match=%v)\n",
			c.name, serial.Shards, serial.CyclesPerSec, sharded.Shards, sharded.CyclesPerSec,
			sharded.BoundaryLinks, sharded.MatchesSerial)
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if mismatched > 0 {
		return fmt.Errorf("%d case(s) diverged from serial — see %s", mismatched, path)
	}
	return nil
}
