// Command mdxbench regenerates the paper's evaluated artifacts: every
// figure-level scenario (E1-E5), the comparative and scaling studies
// (E6-E10), and the design ablations (A1-A2). Each experiment prints its
// result tables and a PASS/FAIL verdict for the shape criterion documented
// in DESIGN.md.
//
// Usage:
//
//	mdxbench            # run everything at full scale
//	mdxbench -quick     # reduced sweeps (CI scale)
//	mdxbench -exp E6    # one experiment
//	mdxbench -list      # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"

	"sr2201/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id to run (e.g. E4), or 'all'")
		quick = flag.Bool("quick", false, "reduced sweep sizes")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %-55s %s\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	opts := experiments.Options{Quick: *quick}
	var toRun []experiments.Experiment
	if *exp == "all" {
		toRun = experiments.All()
	} else {
		e, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "mdxbench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		toRun = []experiments.Experiment{e}
	}

	failed := 0
	for _, e := range toRun {
		r, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdxbench: %s: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Println(r.String())
		if !r.Pass {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "mdxbench: %d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}
