// Command mdxbench regenerates the paper's evaluated artifacts: every
// figure-level scenario (E1-E5), the comparative and scaling studies
// (E6-E10), and the design ablations (A1-A2). Each experiment prints its
// result tables and a PASS/FAIL verdict for the shape criterion documented
// in DESIGN.md.
//
// Usage:
//
//	mdxbench              # run everything at full scale
//	mdxbench -quick       # reduced sweeps (CI scale)
//	mdxbench -exp E6      # one experiment
//	mdxbench -exp e1,f2   # several (comma-separated, case-insensitive)
//	mdxbench -parallel 4  # worker-pool width (default GOMAXPROCS)
//	mdxbench -list        # list experiment ids
//
// Experiments and their sweep cells run on a worker pool, but reports are
// printed in experiment-id order and every sweep merges its cells by index,
// so stdout is byte-identical at every -parallel level (timings go to
// stderr).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sr2201/internal/experiments"
	"sr2201/internal/sweep"
)

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment ids to run, comma-separated and case-insensitive (e.g. e4 or E1,F2), or 'all'")
		quick       = flag.Bool("quick", false, "reduced sweep sizes")
		parallel    = flag.Int("parallel", sweep.DefaultParallel(), "worker-pool width for experiments and their sweep cells (1 = serial)")
		shards      = flag.Int("shards", 0, "spatial shards per machine where supported (E14 scale run, -bench-shards); <= 1 = serial stepper")
		benchShardP = flag.String("bench-shards", "", "write serial-vs-sharded cycle-rate snapshots to this JSON file and exit (e.g. BENCH_shard.json)")
		benchCoreP  = flag.String("bench-core", "", "write core cycle-rate snapshots (E6, E11, kernel step loop) to this JSON file and exit (e.g. BENCH_core.json)")
		list        = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %-55s %s\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	if *benchShardP != "" {
		if err := benchShards(*benchShardP, *shards, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "mdxbench: bench-shards: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *benchCoreP != "" {
		if err := benchCore(*benchCoreP, *quick, *parallel); err != nil {
			fmt.Fprintf(os.Stderr, "mdxbench: bench-core: %v\n", err)
			os.Exit(1)
		}
		return
	}

	opts := experiments.Options{Quick: *quick, Parallel: *parallel, Shards: *shards}
	toRun, err := experiments.Resolve(strings.Split(*exp, ","))
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdxbench: %v (use -list)\n", err)
		os.Exit(2)
	}

	type outcome struct {
		report *experiments.Report
		err    error
	}
	start := time.Now()
	results := sweep.Do(len(toRun), *parallel, func(i int) outcome {
		r, err := toRun[i].Run(opts)
		return outcome{r, err}
	})
	fmt.Fprintf(os.Stderr, "mdxbench: %d experiment(s) in %v (parallel=%d)\n",
		len(toRun), time.Since(start).Round(time.Millisecond), *parallel)

	failed := 0
	for i, o := range results {
		if o.err != nil {
			fmt.Fprintf(os.Stderr, "mdxbench: %s: %v\n", toRun[i].ID, o.err)
			failed++
			continue
		}
		fmt.Print(experiments.RenderReport(o.report))
		if !o.report.Pass {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "mdxbench: %d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}
