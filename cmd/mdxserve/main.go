// Command mdxserve exposes the simulator as a service: everything the CLIs
// can do — single experiments, sweeps, fault schedules, full resilience
// campaigns — submitted as jobs over HTTP and executed on a bounded worker
// pool honoring one global -parallel budget. A job's report artifact is
// byte-identical to the stdout of the equivalent mdxbench/mdxfault run, at
// any pool width: the repository's determinism guarantee extended across
// the network boundary.
//
//	mdxserve -addr :8080 -workers 2 -parallel 4 -queue 64
//
// Endpoints: POST /jobs, GET /jobs/{id}, GET /jobs/{id}/artifact,
// GET /jobs/{id}/events (JSONL stream), DELETE /jobs/{id}, GET /healthz
// (liveness), GET /readyz (readiness), GET /metrics. SIGTERM/SIGINT drains
// gracefully: running and queued jobs finish, new submissions get 503.
//
// With -state-dir the server is crash-safe: job records, mid-run
// checkpoints, and finished artifacts persist there, and SIGTERM stops FAST
// instead of draining — running jobs checkpoint and park, and the next
// mdxserve over the same directory resumes them to byte-identical artifacts.
//
// Several mdxserve processes may share one -state-dir as a fleet: give
// each a distinct -worker id. Leases arbitrate which process runs each
// execution, finished artifacts dedupe fleet-wide by canonical spec hash,
// a worker that dies (SIGKILL, power loss) has its in-flight executions
// taken over by peers within one -lease-ttl — resumed from the parked
// checkpoints to byte-identical artifacts — and a spec that kills
// -poison-after owners in a row is quarantined with a classified error
// instead of crash-looping the fleet.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sr2201/internal/cliutil"
	"sr2201/internal/jobs"
	"sr2201/internal/sweep"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address (host:0 picks a free port, printed on stderr)")
		queue     = flag.Int("queue", 64, "bounded job-queue depth (full queue sheds with 429)")
		workers   = flag.Int("workers", 2, "concurrent job executions")
		parallel  = flag.Int("parallel", sweep.DefaultParallel(), "global sweep-worker budget shared by all running jobs")
		timeout   = flag.Duration("job-timeout", 0, "per-job deadline (0 = none)")
		stateDir  = flag.String("state-dir", "", "crash-safe state directory: jobs persist, checkpoint, and resume across restarts; shareable by a fleet")
		ckptEvery = flag.Int64("checkpoint-every", 4096, "mid-run snapshot interval in simulated cycles (with -state-dir)")
		workerID  = flag.String("worker", "w0", "fleet member id (distinct per process sharing a -state-dir)")
		leaseTTL  = flag.Duration("lease-ttl", 5*time.Second, "lease freshness window: a peer steals an execution whose owner has not renewed for this long")
		poison    = flag.Int("poison-after", 3, "quarantine a spec after this many owners died running it (-1 disables)")
	)
	flag.Parse()

	worker, err := cliutil.ParseWorkerID(*workerID)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdxserve:", err)
		os.Exit(2)
	}
	// MDXSERVE_FAILPOINT=<hash>@<cycle> is the chaos harness's deterministic
	// owner-death hook: the process os.Exits mid-run, leaving exactly the
	// state a SIGKILLed owner leaves.
	fpHash, fpCycle, err := cliutil.ParseFailpoint(os.Getenv("MDXSERVE_FAILPOINT"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdxserve:", err)
		os.Exit(2)
	}

	m, err := jobs.OpenManager(jobs.Config{
		QueueDepth:      *queue,
		Workers:         *workers,
		Parallel:        *parallel,
		JobTimeout:      *timeout,
		StateDir:        *stateDir,
		CheckpointEvery: *ckptEvery,
		WorkerID:        worker,
		LeaseTTL:        *leaseTTL,
		PoisonAfter:     *poison,
		FailpointHash:   fpHash,
		FailpointCycle:  fpCycle,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdxserve:", err)
		os.Exit(1)
	}

	// Listen before serving so ":0" resolves to a real port the harness (or
	// an operator script) can scrape from the banner line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdxserve:", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: jobs.NewServer(m)}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "mdxserve: listening on %s (worker=%s workers=%d parallel=%d queue=%d)\n",
		ln.Addr(), worker, *workers, *parallel, *queue)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "mdxserve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	if *stateDir != "" {
		// Checkpoints make draining unnecessary: interrupt running jobs (they
		// park their snapshots and release their leases) and let the next
		// boot — or a fleet peer — resume them.
		fmt.Fprintln(os.Stderr, "mdxserve: stopping (checkpointing running jobs for resume)")
		m.Stop()
	} else {
		fmt.Fprintln(os.Stderr, "mdxserve: draining (finishing running jobs, refusing new ones)")
		m.Drain()
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "mdxserve: shutdown:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "mdxserve: drained")
}
