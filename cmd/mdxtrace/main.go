// Command mdxtrace prints the hop-by-hop route of one packet or broadcast —
// the static path computed by the routing policy and the dynamic trace from
// the simulator — reproducing the paper's figure walkthroughs.
//
// Examples:
//
//	mdxtrace -shape 4x3 -src 0,0 -dst 2,2                  # Fig. 2-style X-Y route
//	mdxtrace -shape 4x3 -src 0,0 -dst 2,2 -fault rtc:2,0   # Fig. 8 detour
//	mdxtrace -shape 4x3 -src 3,2 -broadcast                # Fig. 6 broadcast
package main

import (
	"flag"
	"fmt"
	"os"

	"sr2201/internal/cliutil"
	"sr2201/internal/core"
	"sr2201/internal/trace"
)

func main() {
	var (
		shapeStr = flag.String("shape", "4x3", "lattice shape, e.g. 4x3")
		srcStr   = flag.String("src", "0,0", "source PE coordinate")
		dstStr   = flag.String("dst", "", "destination PE coordinate (point-to-point)")
		bcast    = flag.Bool("broadcast", false, "trace a broadcast instead of a point-to-point packet")
		sxbStr   = flag.String("sxb", "", "S-XB fixed coordinate (default all-zero line)")
		faults   faultList
	)
	flag.Var(&faults, "fault", "fault spec rtc:X,Y or xb:DIM:X,Y (repeatable)")
	flag.Parse()

	shape, err := cliutil.ParseShape(*shapeStr)
	if err != nil {
		fatal(err)
	}
	src, err := cliutil.ParseCoord(*srcStr, shape.Dims())
	if err != nil {
		fatal(err)
	}
	cfg := core.Config{Shape: shape}
	if *sxbStr != "" {
		if cfg.SXB, err = cliutil.ParseCoord(*sxbStr, shape.Dims()); err != nil {
			fatal(err)
		}
	}
	m, err := core.NewMachine(cfg)
	if err != nil {
		fatal(err)
	}
	for _, fs := range faults {
		f, err := cliutil.ParseFault(fs, shape.Dims())
		if err != nil {
			fatal(err)
		}
		if err := m.AddFault(f); err != nil {
			fatal(err)
		}
		fmt.Printf("fault installed: %s\n", f)
	}
	fmt.Printf("effective S-XB: %v   effective D-XB: %v\n\n", m.Policy().EffectiveSXB(), m.Policy().EffectiveDXB())

	rec := trace.Attach(m.Engine())

	var id uint64
	if *bcast {
		tree, err := m.Policy().BroadcastTree(src)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("static broadcast tree from %v: %d PEs, depth %d, %d element traversals\n\n",
			src, len(tree.Delivered), tree.Depth, tree.Elements)
		id, _, err = m.Broadcast(src, 4)
		if err != nil {
			fatal(err)
		}
	} else {
		if *dstStr == "" {
			fatal(fmt.Errorf("need -dst or -broadcast"))
		}
		dst, err := cliutil.ParseCoord(*dstStr, shape.Dims())
		if err != nil {
			fatal(err)
		}
		path, err := m.Policy().UnicastPath(src, dst)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("static route %v -> %v (%d elements):\n", src, dst, len(path))
		for i, h := range path {
			fmt.Printf("  step %2d: %s\n", i+1, h)
		}
		fmt.Println()
		id, err = m.Send(src, dst, 4)
		if err != nil {
			fatal(err)
		}
	}

	out := m.Run(100_000)
	fmt.Print(rec.Format(id))
	fmt.Printf("\ndeliveries: %d", len(m.Deliveries()))
	if !out.Drained {
		fmt.Printf("   OUTCOME: %+v", out)
	}
	fmt.Println()
}

type faultList []string

func (f *faultList) String() string     { return fmt.Sprint([]string(*f)) }
func (f *faultList) Set(s string) error { *f = append(*f, s); return nil }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdxtrace:", err)
	os.Exit(2)
}
