// Command mdxsim runs one workload on a simulated SR2201 multi-dimensional
// crossbar network (or a mesh/torus baseline) and reports throughput,
// latency and contention.
//
// Examples:
//
//	mdxsim -shape 8x8 -load 0.1 -cycles 2000
//	mdxsim -shape 4x4x4 -pattern transpose -load 0.05
//	mdxsim -shape 8x8 -fault rtc:3,4 -load 0.08 -bcast 0.001
//	mdxsim -shape 8x8 -topology mesh -pattern uniform -load 0.1
//	mdxsim -shape 4x4 -naive-broadcast -bcast 0.01   # reproduces Fig. 5 deadlock
package main

import (
	"flag"
	"fmt"
	"os"

	"sr2201/internal/cliutil"
	"sr2201/internal/core"
	"sr2201/internal/engine"
	"sr2201/internal/geom"
	"sr2201/internal/meshnet"
	"sr2201/internal/stats"
	"sr2201/internal/traffic"
)

func main() {
	var (
		shapeStr = flag.String("shape", "8x8", "lattice shape, e.g. 8x8 or 4x4x4")
		topology = flag.String("topology", "xbar", "xbar | mesh | torus | torus-novc")
		pattern  = flag.String("pattern", "uniform", "uniform | transpose | bitreverse | shuffle | hotspot | ring | tree")
		load     = flag.Float64("load", 0.05, "offered load, packets per PE per cycle")
		bcast    = flag.Float64("bcast", 0, "broadcast rate, broadcasts per PE per cycle")
		size     = flag.Int("packet", 8, "packet size in flits")
		buffers  = flag.Int("buffers", 2, "input buffer depth in flits")
		warmup   = flag.Int64("warmup", 500, "warmup cycles (not measured)")
		cycles   = flag.Int64("cycles", 2000, "measured cycles")
		seed     = flag.Int64("seed", 1, "workload random seed")
		naive    = flag.Bool("naive-broadcast", false, "disable S-XB serialization (deadlock-prone, Fig. 5)")
		sepDXB   = flag.String("dxb", "", "separate D-XB fixed coordinate (deadlock-prone, Fig. 9), e.g. 0,3")
		vcs      = flag.Int("vcs", 0, "virtual channels per physical wire (with -adaptive; 0 = single-lane network; xbar only)")
		adaptive = flag.Bool("adaptive", false, "escape-VC adaptive routing (needs -vcs >= 2; xbar only)")
		topPorts = flag.Int("topports", 0, "print the N busiest network channels after the run")
		faults   faultList
	)
	flag.Var(&faults, "fault", "fault spec rtc:X,Y or xb:DIM:X,Y (repeatable; xbar only)")
	flag.Parse()

	shape, err := cliutil.ParseShape(*shapeStr)
	if err != nil {
		fatal(err)
	}

	vcCount, err := cliutil.VCOptions(*vcs, *adaptive)
	if err != nil {
		fatal(err)
	}

	var target traffic.Target
	switch *topology {
	case "xbar":
		cfg := core.Config{
			Shape:          shape,
			NaiveBroadcast: *naive,
			VCs:            vcCount,
			Adaptive:       *adaptive,
			Engine:         engine.Config{BufferDepth: *buffers, LinkDelay: 1},
		}
		if *adaptive && *sepDXB != "" {
			fatal(fmt.Errorf("-adaptive needs the unified design (drop -dxb)"))
		}
		if *sepDXB != "" {
			c, err := cliutil.ParseCoord(*sepDXB, shape.Dims())
			if err != nil {
				fatal(err)
			}
			cfg.DXB = c
			cfg.DXBSeparate = true
		}
		m, err := core.NewMachine(cfg)
		if err != nil {
			fatal(err)
		}
		for _, fs := range faults {
			f, err := cliutil.ParseFault(fs, shape.Dims())
			if err != nil {
				fatal(err)
			}
			if err := m.AddFault(f); err != nil {
				fatal(err)
			}
			fmt.Printf("fault installed: %s (effective S-XB %v, D-XB %v)\n", f, m.Policy().EffectiveSXB(), m.Policy().EffectiveDXB())
		}
		target = m
	case "mesh", "torus", "torus-novc":
		if len(faults) > 0 {
			fatal(fmt.Errorf("faults are supported on the crossbar only"))
		}
		if *vcs != 0 || *adaptive {
			fatal(fmt.Errorf("-vcs/-adaptive apply to the crossbar only (the mesh baselines fix their own lane schemes)"))
		}
		kind := meshnet.Mesh
		if *topology == "torus" {
			kind = meshnet.Torus
		} else if *topology == "torus-novc" {
			kind = meshnet.TorusNoVC
		}
		n, err := meshnet.New(meshnet.Config{
			Kind:   kind,
			Shape:  shape,
			Engine: engine.Config{BufferDepth: *buffers, LinkDelay: 1},
		})
		if err != nil {
			fatal(err)
		}
		target = n
	default:
		fatal(fmt.Errorf("unknown topology %q", *topology))
	}

	pat, err := pickPattern(*pattern, shape)
	if err != nil {
		fatal(err)
	}

	d := traffic.Driver{
		M:             target,
		Pattern:       pat,
		Rate:          *load,
		BroadcastRate: *bcast,
		Size:          *size,
		Seed:          *seed,
		Warmup:        *warmup,
		Measure:       *cycles,
	}
	res := d.Run()

	fmt.Printf("topology=%s shape=%s pattern=%s load=%.3f bcast=%.4f packet=%d buffers=%d\n",
		*topology, shape, pat.Name(), *load, *bcast, *size, *buffers)
	fmt.Printf("offered packets:      %d\n", res.Offered)
	fmt.Printf("delivered packets:    %d\n", res.Delivered)
	if res.BroadcastCopies > 0 {
		fmt.Printf("broadcast copies:     %d\n", res.BroadcastCopies)
	}
	fmt.Printf("accepted throughput:  %.4f pkts/PE/cycle\n", res.Throughput)
	fmt.Printf("latency:              %s\n", res.Latency)
	fmt.Printf("port conflicts:       %d\n", res.Conflicts)
	fmt.Printf("source backlog:       %d flits\n", res.Backlog)
	if *topPorts > 0 {
		fmt.Println()
		fmt.Print(stats.UtilizationTable(target.Engine(), *topPorts))
	}
	switch {
	case res.Deadlocked:
		fmt.Println("outcome:              DEADLOCK (cyclic wait confirmed)")
		os.Exit(1)
	case res.Drained:
		fmt.Println("outcome:              drained")
	default:
		fmt.Println("outcome:              drain budget exceeded (network still moving)")
	}
}

func pickPattern(name string, shape geom.Shape) (traffic.Pattern, error) {
	switch name {
	case "uniform":
		return traffic.Uniform{Shape: shape}, nil
	case "transpose":
		return traffic.Transpose{Shape: shape}, nil
	case "bitreverse":
		return traffic.BitReverse{Shape: shape}, nil
	case "shuffle":
		return traffic.Shuffle{Shape: shape}, nil
	case "hotspot":
		return traffic.Hotspot{Shape: shape, Hot: geom.Coord{}, Fraction: 0.2}, nil
	case "ring":
		return traffic.RingNeighbor{Shape: shape}, nil
	case "tree":
		return traffic.TreeParent{Shape: shape}, nil
	default:
		return nil, fmt.Errorf("unknown pattern %q", name)
	}
}

// faultList collects repeated -fault flags.
type faultList []string

func (f *faultList) String() string     { return fmt.Sprint([]string(*f)) }
func (f *faultList) Set(s string) error { *f = append(*f, s); return nil }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdxsim:", err)
	os.Exit(2)
}
