// Command mdxreplay records a run's snapshot ring and bisects divergences.
//
// Record mode runs one fault schedule (mdxfault's single-mode vocabulary)
// and writes a recording directory: the spec, an engine StateHash ladder
// sampled every -every cycles, and a ring of full machine snapshots. Bisect
// mode compares two recordings and finds the exact first cycle where their
// engine states diverge — binary-searching the hash ladders, restoring both
// runs from their latest common snapshot, and lockstepping from there
// instead of replaying from cycle 0.
//
// Examples:
//
//	mdxreplay -record -o runA -shape 8x8 -fail rtc:3,4@500 -retransmit
//	mdxreplay -record -o runB -shape 8x8 -fail rtc:3,4@900 -retransmit
//	mdxreplay -bisect runA runB
//
// Recordings of different machine variants (-dxb-separate, -naive-broadcast,
// -pivot) of the same workload bisect too: that is how a Fig. 9-style
// deadlock is pinned to the cycle its wait cycle starts forming.
package main

import (
	"flag"
	"fmt"
	"os"

	"sr2201/internal/replay"
)

func main() {
	var (
		doRecord = flag.Bool("record", false, "record a run's snapshot ring into -o")
		doBisect = flag.Bool("bisect", false, "bisect two recording directories (positional args)")
		out      = flag.String("o", "", "recording output directory (record mode)")
		every    = flag.Int64("every", 256, "hash-ladder and snapshot spacing in cycles")
		keep     = flag.Int("keep", 0, "snapshot ring capacity (0 = keep every snapshot)")

		shapeStr   = flag.String("shape", "8x8", "lattice shape, e.g. 8x8 or 4x4x4")
		patStr     = flag.String("pattern", "shift+5", "traffic pattern: shift+K | reverse")
		waves      = flag.Int("waves", 4, "traffic waves (one packet per live PE per wave)")
		gap        = flag.Int64("gap", 24, "cycles between waves")
		packet     = flag.Int("packet", 0, "packet size in flits (0 = default)")
		horizon    = flag.Int64("horizon", 50_000, "cycle budget for the run")
		retransmit = flag.Bool("retransmit", false, "retransmit lost packets from their sources")
		retryAfter = flag.Int64("retry-after", 64, "cycles before the first retransmission")
		backoff    = flag.Int("backoff", 2, "timeout multiplier per further attempt")
		maxRetries = flag.Int("max-retries", 4, "retransmission attempts per packet")
		stall      = flag.Int64("stall", 0, "deadlock-watchdog stall threshold (0 = default)")

		sxb    = flag.String("sxb", "", "serialized-crossbar line coordinate (default all-zero)")
		dxb    = flag.String("dxb", "", "detour-crossbar line coordinate (with -dxb-separate)")
		dxbSep = flag.Bool("dxb-separate", false, "untie D-XB from S-XB (paper Fig. 9 deadlock-prone variant)")
		naive  = flag.Bool("naive-broadcast", false, "disable S-XB serialization (paper Fig. 5 scheme)")
		pivot  = flag.Bool("pivot", false, "enable the two-phase pivot extension")
		vcs    = flag.Int("vcs", 0, "virtual channels per physical wire (with -adaptive; 0 = single-lane network)")
		adapt  = flag.Bool("adaptive", false, "escape-VC adaptive routing (needs -vcs >= 2)")
		fails  failList
	)
	flag.Var(&fails, "fail", "fault schedule rtc:X,Y@CYCLE or xb:DIM:X,Y@CYCLE (repeatable)")
	flag.Parse()

	switch {
	case *doRecord == *doBisect:
		fatal(fmt.Errorf("pick exactly one of -record or -bisect"))
	case *doRecord:
		if *out == "" {
			fatal(fmt.Errorf("-record needs -o DIR"))
		}
		spec := replay.RunSpec{
			Shape:          *shapeStr,
			Fails:          fails,
			Pattern:        *patStr,
			Waves:          *waves,
			Gap:            *gap,
			PacketSize:     *packet,
			Horizon:        *horizon,
			Retransmit:     *retransmit,
			RetryAfter:     *retryAfter,
			Backoff:        *backoff,
			MaxRetries:     *maxRetries,
			Stall:          *stall,
			SXB:            *sxb,
			DXB:            *dxb,
			DXBSeparate:    *dxbSep,
			NaiveBroadcast: *naive,
			PivotLastDim:   *pivot,
			VCs:            *vcs,
			Adaptive:       *adapt,
		}
		rec, err := replay.Record(spec, *every, *keep, *out)
		if err != nil {
			fatal(err)
		}
		m := rec.Meta
		fmt.Printf("recorded %s: %d cycles, %d ladder points, %d snapshot(s) retained\n",
			*out, m.Final.Cycle, len(m.Points), len(m.Snapshots))
		fmt.Printf("verdict: drained=%v stalled=%v deadlocked=%v final-hash=%s\n",
			m.Drained, m.Stalled, m.Deadlocked, m.Final.Hash)
	case *doBisect:
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-bisect takes exactly two recording directories"))
		}
		ra, err := replay.Load(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		rb, err := replay.Load(flag.Arg(1))
		if err != nil {
			fatal(err)
		}
		d, err := replay.Bisect(ra, rb)
		if err != nil {
			fatal(err)
		}
		if !d.Diverged {
			fmt.Printf("no divergence: state streams identical through both runs (seeked to cycle %d, stepped %d)\n",
				d.SeekCycle, d.Stepped)
			return
		}
		if d.Terminated {
			fmt.Printf("termination divergence at cycle %d: one run finished, the other ran on\n", d.Cycle)
		} else {
			fmt.Printf("first divergence at cycle %d: %s != %s\n", d.Cycle, d.HashA, d.HashB)
		}
		fmt.Printf("seeked to common snapshot at cycle %d, lockstepped %d cycle(s) — %d cycle(s) skipped\n",
			d.SeekCycle, d.Stepped, d.SeekCycle)
		os.Exit(1)
	}
}

// failList collects repeated -fail flags.
type failList []string

func (f *failList) String() string     { return fmt.Sprint([]string(*f)) }
func (f *failList) Set(s string) error { *f = append(*f, s); return nil }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdxreplay:", err)
	os.Exit(2)
}
