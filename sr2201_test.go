package sr2201_test

import (
	"errors"
	"fmt"
	"testing"

	"sr2201"
)

// Example exercises the documented quickstart flow through the public API.
func Example() {
	m, err := sr2201.NewMachine(sr2201.Config{Shape: sr2201.MustShape(4, 3)})
	if err != nil {
		panic(err)
	}
	if _, err := m.Send(sr2201.Coord{0, 0}, sr2201.Coord{3, 2}, 0); err != nil {
		panic(err)
	}
	if _, covered, err := m.Broadcast(sr2201.Coord{1, 1}, 0); err != nil {
		panic(err)
	} else {
		fmt.Println("broadcast covers", covered, "PEs")
	}
	out := m.Run(100_000)
	fmt.Println("drained:", out.Drained, "deliveries:", len(m.Deliveries()))
	// Output:
	// broadcast covers 12 PEs
	// drained: true deliveries: 13
}

func TestPublicAPIFaultFlow(t *testing.T) {
	m, err := sr2201.NewMachine(sr2201.Config{Shape: sr2201.MustShape(4, 4)})
	if err != nil {
		t.Fatal(err)
	}
	bad := sr2201.Coord{2, 1}
	if err := m.AddFault(sr2201.RouterFault(bad)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Send(sr2201.Coord{0, 0}, bad, 0); !errors.Is(err, sr2201.ErrUnreachable) {
		t.Errorf("dead-PE send error = %v", err)
	}
	if _, err := m.Send(sr2201.Coord{0, 1}, sr2201.Coord{2, 3}, 0); err != nil {
		t.Fatal(err)
	}
	if out := m.Run(100_000); !out.Drained {
		t.Fatalf("outcome %+v", out)
	}
	ds := m.Deliveries()
	if len(ds) != 1 || !ds[0].Detoured {
		t.Errorf("deliveries = %+v", ds)
	}
}

func TestPublicAPIXBFault(t *testing.T) {
	m, err := sr2201.NewMachine(sr2201.Config{Shape: sr2201.MustShape(4, 4)})
	if err != nil {
		t.Fatal(err)
	}
	l := sr2201.LineOf(sr2201.Coord{1, 2}, 0)
	if err := m.AddFault(sr2201.XBFault(l)); err != nil {
		t.Fatal(err)
	}
	// Sources on the broken dim-0 line still reach everything via detour.
	if _, err := m.Send(sr2201.Coord{1, 2}, sr2201.Coord{3, 0}, 0); err != nil {
		t.Fatal(err)
	}
	if out := m.Run(100_000); !out.Drained {
		t.Fatalf("outcome %+v", out)
	}
	if len(m.Deliveries()) != 1 {
		t.Fatalf("deliveries = %d", len(m.Deliveries()))
	}
}

// The real SR2201 scaled to 2048 PEs in a 3D 8x16x16 arrangement; the public
// API must handle the full machine. (Kept modest in cycles; the structural
// experiment E10 covers scaling claims.)
func TestFullMachineScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full 2048-PE machine build")
	}
	shape := sr2201.MustShape(8, 16, 16)
	m, err := sr2201.NewMachine(sr2201.Config{Shape: shape})
	if err != nil {
		t.Fatal(err)
	}
	// A corner-to-corner send (3 crossbar hops) and a broadcast to all 2048.
	if _, err := m.Send(sr2201.Coord{0, 0, 0}, sr2201.Coord{7, 15, 15}, 0); err != nil {
		t.Fatal(err)
	}
	if _, covered, err := m.Broadcast(sr2201.Coord{4, 8, 8}, 0); err != nil {
		t.Fatal(err)
	} else if covered != 2048 {
		t.Fatalf("broadcast covers %d", covered)
	}
	out := m.Run(500_000)
	if !out.Drained {
		t.Fatalf("outcome %+v", out)
	}
	if len(m.Deliveries()) != 2049 {
		t.Errorf("deliveries = %d", len(m.Deliveries()))
	}
}
