// Allreduce: the collective the paper's broadcast hardware was built for.
// Every PE contributes a value; the result must reach every PE.
//
// Two implementations are compared on the simulated network:
//
//  1. collective.Allreduce: tree-reduce to a root over point-to-point
//     packets, then ONE hardware broadcast of the result (what the
//     SR2201's S-XB facility enables);
//  2. all-broadcast: every PE broadcasts its value and reduces locally —
//     correct (the S-XB serializes them) but n broadcasts of traffic.
//
// The hardware-broadcast design wins by a growing factor as the machine
// scales — why the paper integrates broadcast in hardware, and why its
// deadlock interaction with the detour facility (Figs. 9-10) mattered.
// The same collective keeps working with a faulty router in the network.
package main

import (
	"fmt"
	"log"

	"sr2201"
	"sr2201/collective"
)

// allBroadcast has every PE broadcast its value; the S-XB serializes all n.
func allBroadcast(shape sr2201.Shape) int64 {
	m, err := sr2201.NewMachine(sr2201.Config{Shape: shape})
	if err != nil {
		log.Fatal(err)
	}
	shape.Enumerate(func(c sr2201.Coord) bool {
		if _, _, err := m.Broadcast(c, 0); err != nil {
			log.Fatal(err)
		}
		return true
	})
	if out := m.Run(5_000_000); !out.Drained {
		log.Fatalf("all-broadcast wedged: %+v", out)
	}
	return m.Cycle()
}

func main() {
	fmt.Println("allreduce on the MD crossbar: tree-reduce + 1 hardware broadcast vs n broadcasts")
	fmt.Printf("%-8s  %14s  %14s  %8s\n", "shape", "reduce+bcast", "all-broadcast", "speedup")
	for _, extents := range [][]int{{4, 4}, {8, 8}, {16, 8}, {16, 16}} {
		shape := sr2201.MustShape(extents...)
		m, err := sr2201.NewMachine(sr2201.Config{Shape: shape})
		if err != nil {
			log.Fatal(err)
		}
		res, err := collective.Allreduce(m, sr2201.Coord{0, 0}, 0)
		if err != nil {
			log.Fatal(err)
		}
		b := allBroadcast(shape)
		fmt.Printf("%-8s  %8d cycles  %8d cycles  %7.1fx\n", shape, res.Cycles, b, float64(b)/float64(res.Cycles))
	}

	// The collective survives a network fault: one dead relay switch costs
	// exactly one participant.
	shape := sr2201.MustShape(8, 8)
	m, err := sr2201.NewMachine(sr2201.Config{Shape: shape})
	if err != nil {
		log.Fatal(err)
	}
	if err := m.AddFault(sr2201.RouterFault(sr2201.Coord{3, 4})); err != nil {
		log.Fatal(err)
	}
	res, err := collective.Allreduce(m, sr2201.Coord{0, 0}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith faulty RTC(3,4): allreduce over %d/%d PEs in %d cycles (%s)\n",
		res.Participants, shape.Size(), res.Cycles, res)
}
