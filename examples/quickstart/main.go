// Quickstart: build an 8x8 SR2201-style multi-dimensional crossbar network,
// send point-to-point packets, run a hardware broadcast, then inject a fault
// and watch the detour facility deliver around it.
package main

import (
	"fmt"
	"log"

	"sr2201"
)

func main() {
	// An 8x8 two-dimensional crossbar network: 64 PEs, 64 relay switches,
	// 16 crossbars (8 per dimension).
	m, err := sr2201.NewMachine(sr2201.Config{Shape: sr2201.MustShape(8, 8)})
	if err != nil {
		log.Fatal(err)
	}

	// Point-to-point packets route dimension-order (X then Y) in at most two
	// crossbar hops.
	if _, err := m.Send(sr2201.Coord{0, 0}, sr2201.Coord{7, 7}, 0); err != nil {
		log.Fatal(err)
	}
	if _, err := m.Send(sr2201.Coord{3, 5}, sr2201.Coord{3, 1}, 0); err != nil {
		log.Fatal(err)
	}

	// A hardware broadcast: serialized at the S-XB, delivered to all 64 PEs.
	if _, covered, err := m.Broadcast(sr2201.Coord{2, 2}, 0); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("broadcast will cover %d PEs\n", covered)
	}

	out := m.Run(100_000)
	fmt.Printf("drained=%v after %d cycles, %d deliveries, p2p latency %s\n",
		out.Drained, out.Cycle, len(m.Deliveries()), m.Latency())

	// Now break a relay switch and send a packet whose dimension-order turn
	// router is exactly the broken one: the detour facility reroutes it via
	// the D-XB, invisibly to the destination.
	m2, err := sr2201.NewMachine(sr2201.Config{Shape: sr2201.MustShape(8, 8)})
	if err != nil {
		log.Fatal(err)
	}
	bad := sr2201.Coord{5, 2}
	if err := m2.AddFault(sr2201.RouterFault(bad)); err != nil {
		log.Fatal(err)
	}
	if _, err := m2.Send(sr2201.Coord{0, 2}, sr2201.Coord{5, 6}, 0); err != nil {
		log.Fatal(err)
	}
	out = m2.Run(100_000)
	d := m2.Deliveries()[0]
	fmt.Printf("with faulty RTC %v: delivered=%v detoured=%v latency=%d cycles\n",
		bad, d.At, d.Detoured, d.Latency)

	// Sending TO the dead PE is refused up front, like the NIA consulting
	// its pre-set fault information.
	if _, err := m2.Send(sr2201.Coord{0, 0}, bad, 0); err != nil {
		fmt.Printf("send to dead PE refused: %v\n", err)
	}
}
