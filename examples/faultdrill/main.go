// Faultdrill: a reliability study of the detour path selection facility.
// For every possible single fault — each relay switch, each crossbar — it
// checks which point-to-point pairs and broadcasts remain deliverable,
// exercises every detour dynamically, and reports the latency overhead
// detoured packets pay.
//
// The output quantifies the paper's reliability claim: a single router fault
// costs exactly one PE; a first-dimension crossbar fault costs nothing; only
// last-dimension crossbar faults partition traffic (a documented limit of
// the facility).
package main

import (
	"errors"
	"fmt"
	"log"

	"sr2201"
)

func main() {
	shape := sr2201.MustShape(6, 6)
	n := shape.Size()
	fmt.Printf("fault drill on %s (%d PEs, %d pairs per fault)\n\n", shape, n, n*(n-1))
	fmt.Printf("%-14s  %9s  %12s  %9s  %14s  %13s\n",
		"fault", "reachable", "unreachable", "detoured", "bcast coverage", "detour lat x")

	drill := func(f sr2201.Fault) {
		m, err := sr2201.NewMachine(sr2201.Config{Shape: shape})
		if err != nil {
			log.Fatal(err)
		}
		if err := m.AddFault(f); err != nil {
			log.Fatal(err)
		}
		reachable, unreachable, detoured := 0, 0, 0
		var directLat, detourLat, directN, detourN int64
		// Drive every pair, in waves to keep runtimes sane.
		wave := 0
		shape.Enumerate(func(src sr2201.Coord) bool {
			shape.Enumerate(func(dst sr2201.Coord) bool {
				if src == dst {
					return true
				}
				if _, err := m.Send(src, dst, 0); err != nil {
					if !errors.Is(err, sr2201.ErrUnreachable) {
						log.Fatalf("%v -> %v: %v", src, dst, err)
					}
					unreachable++
					return true
				}
				reachable++
				wave++
				if wave%64 == 0 {
					if out := m.Run(1_000_000); !out.Drained {
						log.Fatalf("fault %v wedged: %+v", f, out)
					}
				}
				return true
			})
			return true
		})
		if out := m.Run(1_000_000); !out.Drained {
			log.Fatalf("fault %v wedged: %+v", f, out)
		}
		for _, d := range m.Deliveries() {
			if d.Detoured {
				detoured++
				detourLat += d.Latency
				detourN++
			} else {
				directLat += d.Latency
				directN++
			}
		}
		// Broadcast coverage from a healthy source.
		covered := 0
		shape.Enumerate(func(c sr2201.Coord) bool {
			if !m.Alive(c) {
				return true
			}
			if _, cov, err := m.Broadcast(c, 0); err == nil {
				covered = cov
				return false
			}
			return true
		})
		if out := m.Run(1_000_000); !out.Drained {
			log.Fatalf("fault %v broadcast wedged: %+v", f, out)
		}
		overhead := 0.0
		if detourN > 0 && directN > 0 {
			overhead = (float64(detourLat) / float64(detourN)) / (float64(directLat) / float64(directN))
		}
		fmt.Printf("%-14s  %9d  %12d  %9d  %11d/%2d  %12.2fx\n",
			f, reachable, unreachable, detoured, covered, n, overhead)
	}

	// Every router fault (sampled rows to keep the default run short), then
	// one crossbar fault per dimension.
	shape.Enumerate(func(c sr2201.Coord) bool {
		if (c[0]+c[1])%3 == 0 {
			drill(sr2201.RouterFault(c))
		}
		return true
	})
	drill(sr2201.XBFault(sr2201.LineOf(sr2201.Coord{0, 2}, 0)))
	drill(sr2201.XBFault(sr2201.LineOf(sr2201.Coord{2, 0}, 1)))

	fmt.Println("\nrouter faults cost exactly the dead PE; dim-0 crossbar faults cost nothing;")
	fmt.Println("dim-1 (last-dimension) crossbar faults cut off cross-row traffic into that column — the facility's documented limit.")
}
