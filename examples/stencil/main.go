// Stencil: the halo exchange of a 2D Jacobi iteration mapped onto the MD
// crossbar — the "conflict-free remapping" use case of the paper's Section 3.
// Every PE owns a tile and exchanges boundary rows/columns with its four
// mesh neighbors each iteration; on the crossbar every exchange gets a
// dedicated switch path, so iterations complete in near-constant time
// regardless of machine size.
package main

import (
	"fmt"
	"log"

	"sr2201"
)

// iteration performs one halo exchange (4 neighbor sends per interior PE)
// and returns the cycles it took and the switch conflicts it generated.
func iteration(m *sr2201.Machine, haloFlits int) (int64, int64) {
	shape := m.Shape()
	start := m.Cycle()
	shape.Enumerate(func(c sr2201.Coord) bool {
		for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			nb := sr2201.Coord{c[0] + d[0], c[1] + d[1]}
			if !shape.Contains(nb) {
				continue
			}
			if _, err := m.Send(c, nb, haloFlits); err != nil {
				log.Fatal(err)
			}
		}
		return true
	})
	out := m.Run(1_000_000)
	if !out.Drained {
		log.Fatalf("halo exchange wedged: %+v", out)
	}
	var conflicts int64
	for _, sw := range m.Engine().Switches() {
		for _, op := range sw.Out {
			conflicts += op.ConflictCycles
		}
	}
	return m.Cycle() - start, conflicts
}

func main() {
	const haloFlits = 16
	fmt.Printf("2D Jacobi halo exchange on the MD crossbar (%d-flit halos)\n\n", haloFlits)
	fmt.Printf("%-8s  %6s  %16s  %18s\n", "shape", "PEs", "cycles/iteration", "conflicts (total)")
	for _, extents := range [][]int{{4, 4}, {8, 8}, {16, 16}} {
		shape := sr2201.MustShape(extents...)
		m, err := sr2201.NewMachine(sr2201.Config{Shape: shape})
		if err != nil {
			log.Fatal(err)
		}
		var total int64
		var conflicts int64
		const iters = 5
		for i := 0; i < iters; i++ {
			cyc, conf := iteration(m, haloFlits)
			total += cyc
			conflicts = conf
		}
		fmt.Printf("%-8s  %6d  %13.1f  %18d\n", shape, shape.Size(), float64(total)/iters, conflicts)
	}
	fmt.Println("\nper-iteration time stays flat as the machine grows: neighbor exchanges map")
	fmt.Println("onto disjoint crossbar paths (the paper's remapping claim); the remaining")
	fmt.Println("conflicts are the inherent 2:1 convergences of opposite halos at each PE.")
}
