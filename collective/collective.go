// Package collective exposes the communication collectives built on the
// simulated SR2201 interconnect: barrier, reduce, broadcast, allreduce,
// gather, scatter and all-to-all. All operations are fault-aware — PEs
// behind a faulty relay switch are excluded and tree schedules are rebuilt
// over the survivors. See the internal implementation for scheduling
// details.
package collective

import (
	"sr2201"
	impl "sr2201/internal/collective"
)

// Result summarizes one collective operation.
type Result = impl.Result

// Reduce runs a binary-tree reduction of one value per PE to root.
func Reduce(m *sr2201.Machine, root sr2201.Coord, size int) (Result, error) {
	return impl.Reduce(m, root, size)
}

// Broadcast distributes one value from root to every live PE using the
// hardware broadcast facility.
func Broadcast(m *sr2201.Machine, root sr2201.Coord, size int) (Result, error) {
	return impl.Broadcast(m, root, size)
}

// Allreduce reduces to root and broadcasts the result back.
func Allreduce(m *sr2201.Machine, root sr2201.Coord, size int) (Result, error) {
	return impl.Allreduce(m, root, size)
}

// Barrier synchronizes every live PE.
func Barrier(m *sr2201.Machine, root sr2201.Coord) (Result, error) {
	return impl.Barrier(m, root)
}

// Gather collects one packet from every live PE at root.
func Gather(m *sr2201.Machine, root sr2201.Coord, size int) (Result, error) {
	return impl.Gather(m, root, size)
}

// Scatter distributes a distinct packet from root to every live PE.
func Scatter(m *sr2201.Machine, root sr2201.Coord, size int) (Result, error) {
	return impl.Scatter(m, root, size)
}

// AllToAll exchanges one packet between every ordered pair of live PEs.
func AllToAll(m *sr2201.Machine, size int) (Result, error) {
	return impl.AllToAll(m, size)
}
