package collective_test

import (
	"testing"

	"sr2201"
	"sr2201/collective"
)

func TestPublicCollectives(t *testing.T) {
	m, err := sr2201.NewMachine(sr2201.Config{Shape: sr2201.MustShape(4, 4)})
	if err != nil {
		t.Fatal(err)
	}
	root := sr2201.Coord{0, 0}

	res, err := collective.Allreduce(m, root, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Participants != 16 || res.Copies != 16 || res.Messages != 15 {
		t.Errorf("allreduce = %+v", res)
	}

	if res, err = collective.Barrier(m, root); err != nil || res.Copies != 16 {
		t.Errorf("barrier = %+v, %v", res, err)
	}
	if res, err = collective.Gather(m, root, 0); err != nil || res.Messages != 15 {
		t.Errorf("gather = %+v, %v", res, err)
	}
	if res, err = collective.Scatter(m, root, 0); err != nil || res.Messages != 15 {
		t.Errorf("scatter = %+v, %v", res, err)
	}
	if res, err = collective.Reduce(m, root, 0); err != nil || res.Messages != 15 {
		t.Errorf("reduce = %+v, %v", res, err)
	}
	if res, err = collective.Broadcast(m, root, 0); err != nil || res.Copies != 16 {
		t.Errorf("broadcast = %+v, %v", res, err)
	}
	if res, err = collective.AllToAll(m, 2); err != nil || res.Messages != 240 {
		t.Errorf("alltoall = %+v, %v", res, err)
	}
}

// Collectives survive a network fault through the detour facility: with a
// faulty router the operations run over the 15 survivors.
func TestPublicCollectivesWithFault(t *testing.T) {
	m, err := sr2201.NewMachine(sr2201.Config{Shape: sr2201.MustShape(4, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddFault(sr2201.RouterFault(sr2201.Coord{1, 2})); err != nil {
		t.Fatal(err)
	}
	res, err := collective.Allreduce(m, sr2201.Coord{0, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Participants != 15 || res.Copies != 15 {
		t.Errorf("faulted allreduce = %+v", res)
	}
}
