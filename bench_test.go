// Benchmarks: one per reproduced paper artifact (see DESIGN.md's
// per-experiment index), each running the corresponding experiment at Quick
// scale, plus micro-benchmarks of the simulation kernel itself.
//
// Run with: go test -bench=. -benchmem
package sr2201_test

import (
	"flag"
	"testing"

	"sr2201"
	"sr2201/internal/experiments"
	"sr2201/internal/sweep"
)

// -parallel caps the sweep worker pool the experiment benchmarks use
// (sweep cells within an experiment, and whole experiments in
// BenchmarkFullSuite). 1 forces serial runs; the default uses every CPU.
var parallelFlag = flag.Int("parallel", sweep.DefaultParallel(), "worker-pool width for experiment sweeps")

// benchExperiment runs one registered experiment per iteration and fails the
// benchmark if the experiment errors or its shape criterion fails.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	for i := 0; i < b.N; i++ {
		r, err := e.Run(experiments.Options{Quick: true, Parallel: *parallelFlag})
		if err != nil {
			b.Fatal(err)
		}
		if !r.Pass {
			b.Fatalf("%s shape criterion failed", id)
		}
	}
}

// BenchmarkFullSuite runs every registered experiment (Quick scale) per
// iteration, sharded across the -parallel worker pool — the same shape as
// `mdxbench -quick -parallel=N`.
func BenchmarkFullSuite(b *testing.B) {
	all := experiments.All()
	for i := 0; i < b.N; i++ {
		reports := sweep.Do(len(all), *parallelFlag, func(j int) *experiments.Report {
			r, err := all[j].Run(experiments.Options{Quick: true, Parallel: *parallelFlag})
			if err != nil {
				b.Errorf("%s: %v", all[j].ID, err)
				return nil
			}
			return r
		})
		for j, r := range reports {
			if r != nil && !r.Pass {
				b.Errorf("%s shape criterion failed", all[j].ID)
			}
		}
	}
}

func BenchmarkE1BroadcastDeadlock(b *testing.B)    { benchExperiment(b, "E1") }
func BenchmarkE2BroadcastYXY(b *testing.B)         { benchExperiment(b, "E2") }
func BenchmarkE3DetourPath(b *testing.B)           { benchExperiment(b, "E3") }
func BenchmarkE4DeadlockDXBneSXB(b *testing.B)     { benchExperiment(b, "E4") }
func BenchmarkE5DeadlockFree(b *testing.B)         { benchExperiment(b, "E5") }
func BenchmarkE6TopologyCompare(b *testing.B)      { benchExperiment(b, "E6") }
func BenchmarkE7FaultOverhead(b *testing.B)        { benchExperiment(b, "E7") }
func BenchmarkE8BroadcastScaling(b *testing.B)     { benchExperiment(b, "E8") }
func BenchmarkE9Remapping(b *testing.B)            { benchExperiment(b, "E9") }
func BenchmarkE10Scaling(b *testing.B)             { benchExperiment(b, "E10") }
func BenchmarkE11FullMachine(b *testing.B)         { benchExperiment(b, "E11") }
func BenchmarkE12Collectives(b *testing.B)         { benchExperiment(b, "E12") }
func BenchmarkE13MultiFault(b *testing.B)          { benchExperiment(b, "E13") }
func BenchmarkA1Acquisition(b *testing.B)          { benchExperiment(b, "A1") }
func BenchmarkA2BufferDepth(b *testing.B)          { benchExperiment(b, "A2") }
func BenchmarkA3PivotTradeoff(b *testing.B)        { benchExperiment(b, "A3") }
func BenchmarkF1DynamicFaultRecovery(b *testing.B) { benchExperiment(b, "F1") }
func BenchmarkF2FaultCampaign(b *testing.B)        { benchExperiment(b, "F2") }
func BenchmarkF3Retransmission(b *testing.B)       { benchExperiment(b, "F3") }
func BenchmarkV1StaticVerification(b *testing.B)   { benchExperiment(b, "V1") }

// --- kernel micro-benchmarks ---

// BenchmarkSimulationCycle measures raw kernel speed: cycles per second on a
// loaded 8x8 crossbar (refilled with a packet wave whenever it drains).
func BenchmarkSimulationCycle(b *testing.B) {
	shape := sr2201.MustShape(8, 8)
	m, err := sr2201.NewMachine(sr2201.Config{Shape: shape})
	if err != nil {
		b.Fatal(err)
	}
	refill := func() {
		shape.Enumerate(func(c sr2201.Coord) bool {
			dst := shape.CoordOf((shape.Index(c) + 27) % shape.Size())
			_, _ = m.Send(c, dst, 8)
			return true
		})
	}
	refill()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.Engine().Quiescent() {
			b.StopTimer()
			refill()
			b.StartTimer()
		}
		m.Step()
	}
}

// BenchmarkUnicastSend measures end-to-end single-packet delivery.
func BenchmarkUnicastSend(b *testing.B) {
	shape := sr2201.MustShape(8, 8)
	m, err := sr2201.NewMachine(sr2201.Config{Shape: shape})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Send(sr2201.Coord{0, 0}, sr2201.Coord{7, 7}, 8); err != nil {
			b.Fatal(err)
		}
		if out := m.Run(10_000); !out.Drained {
			b.Fatal("did not drain")
		}
	}
}

// BenchmarkBroadcast measures one full hardware broadcast on 8x8.
func BenchmarkBroadcast(b *testing.B) {
	shape := sr2201.MustShape(8, 8)
	m, err := sr2201.NewMachine(sr2201.Config{Shape: shape})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.Broadcast(sr2201.Coord{3, 3}, 8); err != nil {
			b.Fatal(err)
		}
		if out := m.Run(10_000); !out.Drained {
			b.Fatal("did not drain")
		}
	}
}

// BenchmarkStaticPath measures routing-policy path computation.
func BenchmarkStaticPath(b *testing.B) {
	shape := sr2201.MustShape(8, 8)
	m, err := sr2201.NewMachine(sr2201.Config{Shape: shape})
	if err != nil {
		b.Fatal(err)
	}
	if err := m.AddFault(sr2201.RouterFault(sr2201.Coord{4, 2})); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := shape.CoordOf(i % shape.Size())
		dst := shape.CoordOf((i*13 + 5) % shape.Size())
		if src == (sr2201.Coord{4, 2}) || dst == (sr2201.Coord{4, 2}) {
			continue
		}
		if _, err := m.Policy().UnicastPath(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMachineConstruction measures network build time (8x8: 144 nodes).
func BenchmarkMachineConstruction(b *testing.B) {
	shape := sr2201.MustShape(8, 8)
	for i := 0; i < b.N; i++ {
		if _, err := sr2201.NewMachine(sr2201.Config{Shape: shape}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoutingAlgorithmic vs BenchmarkRoutingTables compare the two
// switch-decision implementations under the same workload.
func benchRoutingMode(b *testing.B, tables bool) {
	shape := sr2201.MustShape(8, 8)
	m, err := sr2201.NewMachine(sr2201.Config{Shape: shape})
	if err != nil {
		b.Fatal(err)
	}
	if tables {
		if err := m.UseCompiledTables(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.Engine().Quiescent() {
			b.StopTimer()
			shape.Enumerate(func(c sr2201.Coord) bool {
				dst := shape.CoordOf((shape.Index(c) + 19) % shape.Size())
				_, _ = m.Send(c, dst, 8)
				return true
			})
			b.StartTimer()
		}
		m.Step()
	}
}

func BenchmarkRoutingAlgorithmic(b *testing.B) { benchRoutingMode(b, false) }
func BenchmarkRoutingTables(b *testing.B)      { benchRoutingMode(b, true) }
