// Package sr2201 is a library reproduction of "Deadlock-free Fault-tolerant
// Routing in the Multi-dimensional Crossbar Network and Its Implementation
// for the Hitachi SR2201" (Yasuda et al., IPPS 1997).
//
// It provides a flit-level, cycle-accurate simulator of the SR2201's
// multi-dimensional crossbar interconnect together with the paper's routing
// schemes: dimension-order point-to-point routing, the S-XB-serialized
// hardware broadcast, the detour path selection facility for a single
// network fault, and the deadlock-free combined scheme obtained by unifying
// the detour crossbar with the serialized crossbar.
//
// The root package is a thin façade over the implementation packages; see
// README.md for a tour and DESIGN.md for the architecture.
//
//	m, err := sr2201.NewMachine(sr2201.Config{Shape: sr2201.MustShape(8, 8)})
//	if err != nil { ... }
//	m.AddFault(sr2201.RouterFault(sr2201.Coord{3, 4}))
//	m.Send(sr2201.Coord{0, 0}, sr2201.Coord{7, 7}, 0)
//	out := m.Run(100_000)          // deadlock-watched simulation
//	fmt.Println(out.Drained, m.Deliveries())
package sr2201

import (
	"sr2201/internal/core"
	"sr2201/internal/deadlock"
	"sr2201/internal/engine"
	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/routing"
)

// Machine is a simulated SR2201 interconnect. See core.Machine.
type Machine = core.Machine

// Config assembles a Machine.
type Config = core.Config

// Delivery records one packet consumed by a PE.
type Delivery = core.Delivery

// EngineConfig tunes the simulation kernel (buffer depth, link delay,
// fan-out acquisition mode, eject rate).
type EngineConfig = engine.Config

// Coord is a point of the d-dimensional lattice.
type Coord = geom.Coord

// Shape is the lattice shape (n1, ..., nd).
type Shape = geom.Shape

// Line identifies one axis-aligned lattice line (one crossbar switch).
type Line = geom.Line

// Fault identifies one faulty switch.
type Fault = fault.Fault

// Outcome summarizes a deadlock-watched run.
type Outcome = deadlock.Outcome

// NewMachine builds a machine. See core.NewMachine.
func NewMachine(cfg Config) (*Machine, error) { return core.NewMachine(cfg) }

// NewShape validates per-dimension extents.
func NewShape(extents ...int) (Shape, error) { return geom.NewShape(extents...) }

// MustShape is NewShape for statically known good extents.
func MustShape(extents ...int) Shape { return geom.MustShape(extents...) }

// RouterFault marks the relay switch at c faulty.
func RouterFault(c Coord) Fault { return fault.RouterFault(c) }

// XBFault marks the crossbar of line l faulty.
func XBFault(l Line) Fault { return fault.XBFault(l) }

// LineOf returns the lattice line through c along dim (identifying the dim-k
// crossbar of a coordinate).
func LineOf(c Coord, dim int) Line { return geom.LineOf(c, dim) }

// ErrUnreachable reports a destination the fault-tolerant routing cannot
// serve under the present faults.
var ErrUnreachable = routing.ErrUnreachable

// DefaultPacketSize is the packet length in flits when a caller passes 0.
const DefaultPacketSize = core.DefaultPacketSize
