module sr2201

go 1.22
