package checkpoint

import (
	"bytes"
	"encoding/binary"
	"flag"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden fixtures")

// goldenContainer builds the fixed container pinned by testdata/golden_v1.snap.
// Every primitive the codec offers appears at least once, so any change to an
// encoding — varint scheme, length prefix, section framing — moves the bytes.
func goldenContainer() *Writer {
	w := NewWriter()
	a := w.Section("alpha")
	a.Uint(0)
	a.Uint(1)
	a.Uint(127)
	a.Uint(128)
	a.Uint(1<<63 + 41)
	a.Int(0)
	a.Int(-1)
	a.Int(63)
	a.Int(-64)
	a.Int(1 << 40)
	a.Byte(0xab)
	a.Bool(true)
	a.Bool(false)
	a.Float(3.5)
	a.String("wormhole")
	a.BytesField([]byte{0, 1, 2, 0xff})
	b := w.Section("beta.rng")
	NewRNG(42).Encode(b)
	return w
}

func TestRoundtrip(t *testing.T) {
	data := goldenContainer().Bytes()
	r, err := NewReader(data)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if r.Version() != Version {
		t.Fatalf("version = %d, want %d", r.Version(), Version)
	}
	if want := []string{"alpha", "beta.rng"}; !equalStrings(r.Sections(), want) {
		t.Fatalf("sections = %v, want %v", r.Sections(), want)
	}
	d, err := r.Section("alpha")
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []uint64{0, 1, 127, 128, 1<<63 + 41} {
		if got := d.Uint(); got != want {
			t.Errorf("uint %d = %d, want %d", i, got, want)
		}
	}
	for i, want := range []int64{0, -1, 63, -64, 1 << 40} {
		if got := d.Int(); got != want {
			t.Errorf("int %d = %d, want %d", i, got, want)
		}
	}
	if got := d.Byte(); got != 0xab {
		t.Errorf("byte = %#x", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("bool sequence wrong")
	}
	if got := d.Float(); got != 3.5 {
		t.Errorf("float = %v", got)
	}
	if got := d.String(); got != "wormhole" {
		t.Errorf("string = %q", got)
	}
	if got := d.BytesField(); !bytes.Equal(got, []byte{0, 1, 2, 0xff}) {
		t.Errorf("bytes = %v", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	rd, err := r.Section("beta.rng")
	if err != nil {
		t.Fatal(err)
	}
	got, want := DecodeRNG(rd), NewRNG(42)
	for i := 0; i < 16; i++ {
		if g, w := got.Uint64(), want.Uint64(); g != w {
			t.Fatalf("restored RNG diverged at draw %d: %d != %d", i, g, w)
		}
	}
	if err := rd.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenV1 pins the exact bytes of format version 1. The container body
// is identical to the v2 golden — only the header version differs — because
// the primitive codec never changed; version 2 added fields to section
// layouts, not to the framing. If this fails you changed the encoded form of
// an existing primitive — see the version-bump rule in the package comment.
func TestGoldenV1(t *testing.T) {
	path := filepath.Join("testdata", "golden_v1.snap")
	w := goldenContainer()
	w.version = 1
	got := w.Bytes()
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read fixture (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("encoding of the v1 container changed: %d bytes vs %d fixture bytes.\n"+
			"Either revert the codec change or bump checkpoint.Version.", len(got), len(want))
	}
	r, err := NewReader(want)
	if err != nil {
		t.Fatalf("fixture no longer decodes: %v", err)
	}
	if r.Version() != 1 {
		t.Fatalf("fixture version = %d, want 1", r.Version())
	}
	d, err := r.Section("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if d.Version() != 1 {
		t.Fatalf("section decoder version = %d, want 1", d.Version())
	}
}

// TestGoldenV2 pins the exact bytes of format version 2, like TestGoldenV1:
// the body matches the current golden byte for byte since only section
// layouts (not framing or primitives) changed across versions.
func TestGoldenV2(t *testing.T) {
	path := filepath.Join("testdata", "golden_v2.snap")
	w := goldenContainer()
	w.version = 2
	got := w.Bytes()
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read fixture (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("encoding of the v2 container changed: %d bytes vs %d fixture bytes.\n"+
			"Either revert the codec change or bump checkpoint.Version.", len(got), len(want))
	}
	r, err := NewReader(want)
	if err != nil {
		t.Fatalf("fixture no longer decodes: %v", err)
	}
	if r.Version() != 2 {
		t.Fatalf("fixture version = %d, want 2", r.Version())
	}
	d, err := r.Section("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if d.Version() != 2 {
		t.Fatalf("section decoder version = %d, want 2", d.Version())
	}
}

// TestGoldenV3 pins the exact bytes of the current format version. Regenerate
// (after bumping Version and keeping a fixture per version) with:
// go test ./internal/checkpoint -run TestGoldenV3 -update
func TestGoldenV3(t *testing.T) {
	path := filepath.Join("testdata", "golden_v3.snap")
	got := goldenContainer().Bytes()
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read fixture (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("encoding of the v3 container changed: %d bytes vs %d fixture bytes.\n"+
			"Either revert the codec change or bump checkpoint.Version.", len(got), len(want))
	}
	r, err := NewReader(want)
	if err != nil {
		t.Fatalf("fixture no longer decodes: %v", err)
	}
	if r.Version() != 3 {
		t.Fatalf("fixture version = %d, want 3", r.Version())
	}
	d, err := r.Section("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if d.Version() != 3 {
		t.Fatalf("section decoder version = %d, want 3", d.Version())
	}
}

func TestReaderRejections(t *testing.T) {
	valid := goldenContainer().Bytes()
	cases := []struct {
		name string
		data []byte
		want string // substring of the error
	}{
		{"empty", nil, "header"},
		{"short", []byte("MDX"), "header"},
		{"bad magic", append([]byte("NOTASNAP"), valid[8:]...), "bad magic"},
		{"bit flip", flipBit(valid, len(valid)/2), "crc"},
		{"truncated tail", valid[:len(valid)-6], ""},
		{"trailing garbage", append(append([]byte{}, valid...), 0xde, 0xad), ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewReader(tc.data)
			if err == nil {
				t.Fatal("accepted corrupt container")
			}
			if !strings.HasPrefix(err.Error(), "checkpoint: ") {
				t.Fatalf("error %q does not carry the checkpoint prefix", err)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	t.Run("wrong version", func(t *testing.T) {
		data := append([]byte{}, valid...)
		data[9] = 99 // version low byte
		data = fixCRC(data)
		_, err := NewReader(data)
		if err == nil || !strings.Contains(err.Error(), "version") {
			t.Fatalf("err = %v, want version rejection", err)
		}
	})
	t.Run("missing section", func(t *testing.T) {
		r, err := NewReader(valid)
		if err != nil {
			t.Fatal(err)
		}
		_, err = r.Section("gamma")
		if err == nil || !strings.Contains(err.Error(), `section "gamma"`) {
			t.Fatalf("err = %v, want missing-section error naming gamma", err)
		}
	})
}

func TestDecoderStickyErrors(t *testing.T) {
	d := NewDecoder("demo", []byte{0x80}) // truncated uvarint
	_ = d.Uint()
	if d.Err() == nil {
		t.Fatal("truncated uvarint accepted")
	}
	first := d.Err()
	// Every later read is a zero-valued no-op preserving the first error.
	if d.Uint() != 0 || d.Int() != 0 || d.Bool() || d.String() != "" || d.Len(1) != 0 {
		t.Fatal("post-error reads returned non-zero values")
	}
	if d.Err() != first {
		t.Fatal("first error was not preserved")
	}
	if !strings.Contains(first.Error(), `section "demo"`) {
		t.Fatalf("error %q does not name the section", first)
	}
}

func TestDecoderBounds(t *testing.T) {
	t.Run("string over-length", func(t *testing.T) {
		var e Encoder
		e.Uint(1 << 40) // claims a petabyte string in 6 bytes
		d := NewDecoder("s", e.Bytes())
		if d.String() != "" || d.Err() == nil {
			t.Fatal("over-length string accepted")
		}
	})
	t.Run("sequence over-count", func(t *testing.T) {
		var e Encoder
		e.Uint(1 << 30)
		d := NewDecoder("s", e.Bytes())
		if d.Len(4) != 0 || d.Err() == nil {
			t.Fatal("over-count sequence accepted")
		}
	})
	t.Run("invalid bool", func(t *testing.T) {
		d := NewDecoder("s", []byte{7})
		if d.Bool() || d.Err() == nil {
			t.Fatal("bool byte 7 accepted")
		}
	})
	t.Run("expect mismatch", func(t *testing.T) {
		var e Encoder
		e.Int(5)
		d := NewDecoder("s", e.Bytes())
		d.Expect(6, "port count")
		if d.Err() == nil || !strings.Contains(d.Err().Error(), "port count") {
			t.Fatalf("err = %v, want port count mismatch", d.Err())
		}
	})
	t.Run("finish trailing", func(t *testing.T) {
		d := NewDecoder("s", []byte{1, 2, 3})
		_ = d.Byte()
		if err := d.Finish(); err == nil || !strings.Contains(err.Error(), "trailing") {
			t.Fatalf("Finish = %v, want trailing-bytes error", err)
		}
	})
}

func TestRNGStreams(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Fatal("different seeds produced identical first draw")
	}
	// Mid-stream snapshot: restored generator continues the exact stream.
	r := NewRNG(99)
	for i := 0; i < 37; i++ {
		r.Uint64()
	}
	var e Encoder
	r.Encode(&e)
	r2 := DecodeRNG(NewDecoder("rng", e.Bytes()))
	for i := 0; i < 100; i++ {
		if r.Intn(1000) != r2.Intn(1000) {
			t.Fatalf("restored stream diverged at draw %d", i)
		}
	}
	// Basic range sanity.
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func flipBit(b []byte, i int) []byte {
	out := append([]byte{}, b...)
	out[i] ^= 0x10
	return out
}

// fixCRC recomputes the footer after a deliberate mutation, so the test hits
// the check behind the CRC rather than the CRC itself.
func fixCRC(b []byte) []byte {
	body := append([]byte{}, b[:len(b)-4]...)
	return binary.BigEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
