// Package checkpoint implements the versioned binary container and the
// primitive codec used to snapshot and restore simulation state (engine,
// machine, injector, campaign cell). The contract the rest of the system
// builds on: Restore(Snapshot(x)) followed by N steps produces the identical
// per-cycle StateHash stream — and therefore byte-identical reports — as the
// uninterrupted run.
//
// # Container format (version 1)
//
// A snapshot is a flat byte string:
//
//	offset 0 : magic "MDXSNAP\n" (8 bytes)
//	offset 8 : format version, big-endian uint16
//	offset 10: section count, big-endian uint32
//	then per section, in the order sections were added:
//	          name length (uint8), name bytes,
//	          payload length (big-endian uint32), payload bytes
//	footer   : IEEE CRC32 of every preceding byte, big-endian uint32
//
// Section payloads are streams of the primitives implemented by Encoder /
// Decoder: unsigned LEB128 varints, zigzag signed varints, single bytes,
// length-prefixed byte strings. All multi-byte fixed-width integers in the
// container framing are big-endian.
//
// # Version-bump rule
//
// The golden fixture test (TestGoldenV1) pins the exact bytes version 1
// produces. Any change that alters the encoded form of an existing field —
// reordering fields, widening a type, renaming a section — MUST increment
// Version and teach the decoder to reject (or migrate) older versions
// explicitly. Adding a new section at the end is also a version bump:
// decoders look sections up by name, but the version is the only honest
// statement of what a snapshot may contain. Never reuse a version number for
// two different layouts.
//
// # Error contract
//
// Every decode error names where decoding failed: the container header, the
// CRC footer, or the offending section by name ("checkpoint: section
// \"engine.ports\": ..."). FuzzSnapshotDecode holds decoding to this
// contract: arbitrary input never panics and never allocates more than the
// input could justify.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Version is the current snapshot format version. Version 2 added the
// virtual-channel fields (flit.Header.AdaptiveHops, the engine's provisional
// route-state flag, core.Delivery.Adaptive). Version 3 added the online-
// reconfiguration fields (flit.Header.Epoch, the machine's routing-epoch
// counter and generation descriptors, the reconfiguration manager's event
// log, the injector's drain accounting); writers always emit the current
// version, and section decoders consult Decoder.Version to skip fields an
// older container cannot contain.
const Version uint16 = 3

// minVersion is the oldest container version this build still reads.
const minVersion uint16 = 1

// magic opens every snapshot container.
const magic = "MDXSNAP\n"

// maxSections bounds the section-count header field; real snapshots use a
// few dozen sections, so anything larger is corruption, and the bound keeps
// a hostile count from sizing an allocation.
const maxSections = 1 << 16

// A Writer assembles a snapshot container. Sections are emitted in the
// order they are added.
type Writer struct {
	version  uint16
	names    []string
	payloads []*Encoder
}

// NewWriter starts a container with the current format version.
func NewWriter() *Writer { return &Writer{version: Version} }

// Section adds a named section and returns the encoder for its payload.
// Names must be unique within one container.
func (w *Writer) Section(name string) *Encoder {
	for _, n := range w.names {
		if n == name {
			panic(fmt.Sprintf("checkpoint: duplicate section %q", name))
		}
	}
	if len(name) == 0 || len(name) > 255 {
		panic(fmt.Sprintf("checkpoint: section name %q length out of range", name))
	}
	enc := &Encoder{}
	w.names = append(w.names, name)
	w.payloads = append(w.payloads, enc)
	return enc
}

// Bytes serializes the container, including the CRC footer.
func (w *Writer) Bytes() []byte {
	size := len(magic) + 2 + 4
	for i, n := range w.names {
		size += 1 + len(n) + 4 + len(w.payloads[i].buf)
	}
	size += 4 // crc
	out := make([]byte, 0, size)
	out = append(out, magic...)
	out = binary.BigEndian.AppendUint16(out, w.version)
	out = binary.BigEndian.AppendUint32(out, uint32(len(w.names)))
	for i, n := range w.names {
		out = append(out, byte(len(n)))
		out = append(out, n...)
		out = binary.BigEndian.AppendUint32(out, uint32(len(w.payloads[i].buf)))
		out = append(out, w.payloads[i].buf...)
	}
	out = binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
	return out
}

// A Reader parses a snapshot container and hands out per-section decoders.
type Reader struct {
	version  uint16
	names    []string
	payloads [][]byte
}

// NewReader validates the container framing (magic, version, section table,
// CRC) without interpreting section payloads.
func NewReader(data []byte) (*Reader, error) {
	if len(data) < len(magic)+2+4+4 {
		return nil, fmt.Errorf("checkpoint: header: container truncated (%d bytes)", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("checkpoint: header: bad magic")
	}
	body, footer := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.BigEndian.Uint32(footer); got != want {
		return nil, fmt.Errorf("checkpoint: crc: checksum mismatch (got %08x, stored %08x)", got, want)
	}
	r := &Reader{version: binary.BigEndian.Uint16(body[len(magic):])}
	if r.version < minVersion || r.version > Version {
		return nil, fmt.Errorf("checkpoint: header: unsupported version %d (this build reads %d through %d)", r.version, minVersion, Version)
	}
	count := binary.BigEndian.Uint32(body[len(magic)+2:])
	if count > maxSections {
		return nil, fmt.Errorf("checkpoint: header: implausible section count %d", count)
	}
	off := len(magic) + 6
	for i := uint32(0); i < count; i++ {
		if off >= len(body) {
			return nil, fmt.Errorf("checkpoint: header: truncated before section %d of %d", i+1, count)
		}
		nameLen := int(body[off])
		off++
		if nameLen == 0 || off+nameLen+4 > len(body) {
			return nil, fmt.Errorf("checkpoint: header: truncated section %d name/length", i+1)
		}
		name := string(body[off : off+nameLen])
		off += nameLen
		payLen := int(binary.BigEndian.Uint32(body[off:]))
		off += 4
		if payLen > len(body)-off {
			return nil, fmt.Errorf("checkpoint: section %q: payload length %d exceeds container", name, payLen)
		}
		r.names = append(r.names, name)
		r.payloads = append(r.payloads, body[off:off+payLen])
		off += payLen
	}
	if off != len(body) {
		return nil, fmt.Errorf("checkpoint: header: %d trailing bytes after last section", len(body)-off)
	}
	return r, nil
}

// Version reports the container's format version.
func (r *Reader) Version() uint16 { return r.version }

// Sections lists section names in container order.
func (r *Reader) Sections() []string { return r.names }

// Has reports whether a section is present.
func (r *Reader) Has(name string) bool {
	for _, n := range r.names {
		if n == name {
			return true
		}
	}
	return false
}

// Section returns a decoder for the named section's payload. The decoder
// carries the container's format version so section codecs can skip fields
// older versions cannot contain.
func (r *Reader) Section(name string) (*Decoder, error) {
	for i, n := range r.names {
		if n == name {
			d := NewDecoder(name, r.payloads[i])
			d.version = r.version
			return d, nil
		}
	}
	return nil, fmt.Errorf("checkpoint: section %q: missing", name)
}
