package checkpoint

// RNG is a deterministic pseudo-random stream whose full state is four
// words, so it can be captured in a snapshot and resumed mid-stream —
// unlike math/rand, whose generator state is unexported. The generator is
// xoshiro256**, seeded through SplitMix64; the method set mirrors the
// subset of *rand.Rand the traffic layer uses.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed int64) *RNG {
	r := &RNG{}
	sm := uint64(seed)
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	res := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return res
}

// Int63 returns a non-negative pseudo-random int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("checkpoint: RNG.Intn with non-positive n")
	}
	return int(r.Int63() % int64(n))
}

// Float64 returns a pseudo-random float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Encode appends the generator state to a section payload.
func (r *RNG) Encode(e *Encoder) {
	for _, w := range r.s {
		e.Uint(w)
	}
}

// DecodeRNG reads a generator state written by Encode.
func DecodeRNG(d *Decoder) *RNG {
	r := &RNG{}
	for i := range r.s {
		r.s[i] = d.Uint()
	}
	return r
}
