package checkpoint

import (
	"encoding/binary"
	"fmt"
	"math"
)

// An Encoder builds one section payload out of primitive values. The zero
// value is ready to use.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// Uint appends an unsigned LEB128 varint.
func (e *Encoder) Uint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Int appends a zigzag signed varint.
func (e *Encoder) Int(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// Byte appends one raw byte.
func (e *Encoder) Byte(b byte) { e.buf = append(e.buf, b) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Float appends a float64 as its IEEE-754 bits.
func (e *Encoder) Float(v float64) { e.Uint(math.Float64bits(v)) }

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Bytes appends a length-prefixed byte string.
func (e *Encoder) BytesField(b []byte) {
	e.Uint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// A Decoder reads one section payload. Errors are sticky: after the first
// failure every getter returns a zero value and Err reports the failure,
// naming the section and offset, so decode routines can read a whole record
// and check once. Length-prefixed reads never allocate more than the
// remaining input can justify.
type Decoder struct {
	section string
	buf     []byte
	off     int
	err     error
	version uint16
}

// NewDecoder wraps raw payload bytes; section is used in error messages. The
// decoder reports the current format version; Reader.Section overrides it
// with the container's actual version.
func NewDecoder(section string, payload []byte) *Decoder {
	return &Decoder{section: section, buf: payload, version: Version}
}

// Version reports the container format version the payload was written under
// (the current Version for decoders not obtained through a Reader). Section
// codecs branch on it to skip fields older containers cannot contain.
func (d *Decoder) Version() uint16 { return d.version }

// Err reports the first decode failure, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining reports the unread byte count.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Finish errors unless the payload was consumed exactly.
func (d *Decoder) Finish() error {
	if d.err == nil && d.off != len(d.buf) {
		d.fail(fmt.Sprintf("%d trailing bytes", len(d.buf)-d.off))
	}
	return d.err
}

// Fail records a caller-detected semantic error (an invariant violation in
// otherwise well-formed bytes) with the section's error framing. Like codec
// errors it is sticky: only the first failure is kept.
func (d *Decoder) Fail(msg string) { d.fail(msg) }

func (d *Decoder) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("checkpoint: section %q: %s at offset %d", d.section, msg, d.off)
	}
}

// Uint reads an unsigned varint.
func (d *Decoder) Uint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("truncated or overlong uvarint")
		return 0
	}
	d.off += n
	return v
}

// Int reads a zigzag signed varint.
func (d *Decoder) Int() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("truncated or overlong varint")
		return 0
	}
	d.off += n
	return v
}

// IntAsInt reads a signed varint and narrows it to int, failing on overflow.
func (d *Decoder) IntAsInt() int {
	v := d.Int()
	iv := int(v)
	if int64(iv) != v {
		d.fail(fmt.Sprintf("value %d overflows int", v))
		return 0
	}
	return iv
}

// Byte reads one raw byte.
func (d *Decoder) Byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("truncated byte")
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

// Bool reads a boolean, rejecting bytes other than 0 and 1.
func (d *Decoder) Bool() bool {
	b := d.Byte()
	if d.err != nil {
		return false
	}
	if b > 1 {
		d.fail(fmt.Sprintf("invalid bool byte %#02x", b))
		return false
	}
	return b == 1
}

// Float reads a float64 from its IEEE-754 bits.
func (d *Decoder) Float() float64 { return math.Float64frombits(d.Uint()) }

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.BytesField()) }

// BytesField reads a length-prefixed byte string. The result aliases the
// payload buffer.
func (d *Decoder) BytesField() []byte {
	n := d.Uint()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.Remaining()) {
		d.fail(fmt.Sprintf("byte string length %d exceeds %d remaining", n, d.Remaining()))
		return nil
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}

// Len reads an element count for a sequence whose elements occupy at least
// minBytes each, rejecting counts the remaining payload cannot hold. This is
// the allocation cap for slice prealloc: a hostile count cannot exceed the
// input length.
func (d *Decoder) Len(minBytes int) int {
	n := d.Uint()
	if d.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if n > uint64(d.Remaining()/minBytes) {
		d.fail(fmt.Sprintf("sequence length %d exceeds remaining payload", n))
		return 0
	}
	return int(n)
}

// Expect reads a signed varint and fails unless it equals want; used for
// structural invariants (port counts, shape dims) whose mismatch means the
// snapshot belongs to a different network.
func (d *Decoder) Expect(want int64, what string) {
	got := d.Int()
	if d.err == nil && got != want {
		d.fail(fmt.Sprintf("%s mismatch: snapshot has %d, target has %d", what, got, want))
	}
}
