package mdxb

import (
	"testing"

	"sr2201/internal/engine"
	"sr2201/internal/geom"
)

// crossShardPairs counts, from the wiring contract alone, the connected node
// pairs a plan splits across shards: PE–router pairs, and router–crossbar
// pairs for every dimension. Each such pair contributes exactly two directed
// engine links (one per direction), so the engine's boundary-link count must
// equal twice this number — and the count is symmetric by construction since
// every connection is bidirectional.
func crossShardPairs(net *Network, p engine.ShardPlan) int {
	cross := 0
	net.Shape.Enumerate(func(c geom.Coord) bool {
		rtr := p.Assign[net.Router(c).ID]
		if p.Assign[net.PE(c).ID] != rtr {
			cross++
		}
		for k := 0; k < net.Dims(); k++ {
			if p.Assign[net.XBThrough(c, k).ID] != rtr {
				cross++
			}
		}
		return true
	})
	return cross
}

func TestShardAssignLocality(t *testing.T) {
	// The spatial plan keeps each PE with its router and every off-cut
	// crossbar with its slab, so the only boundary pairs are routers
	// attached to cut-dimension crossbars.
	net, eng := build(t, 4, 3, 3)
	part := net.Shape.Partition(2) // cuts dim 0 (longest), slabs of width 2
	plan := ShardAssign(net, 2)
	if err := eng.SetShards(plan); err != nil {
		t.Fatalf("SetShards: %v", err)
	}
	net.Shape.Enumerate(func(c geom.Coord) bool {
		slab := part.SlabOf(c)
		if got := plan.Assign[net.PE(c).ID]; got != slab {
			t.Errorf("PE%v in shard %d, slab is %d", c.In(3), got, slab)
		}
		if got := plan.Assign[net.Router(c).ID]; got != slab {
			t.Errorf("RTC%v in shard %d, slab is %d", c.In(3), got, slab)
		}
		for k := 0; k < net.Dims(); k++ {
			if k == part.Dim {
				continue
			}
			if got := plan.Assign[net.XBThrough(c, k).ID]; got != slab {
				t.Errorf("dim-%d crossbar through %v in shard %d, slab is %d", k, c.In(3), got, slab)
			}
		}
		return true
	})
	if got, want := eng.BoundaryLinks(), 2*crossShardPairs(net, plan); got != want {
		t.Errorf("engine reports %d boundary links, wiring contract implies %d", got, want)
	}
	// Only cut-dimension crossbar attachments may cross: with slab-local
	// routers, PE pairs and off-cut XB pairs never do, so the boundary is
	// bounded by routers × 1 cut dimension.
	if max := 2 * net.Shape.Size(); eng.BoundaryLinks() > max {
		t.Errorf("%d boundary links exceed the cut-dimension bound %d", eng.BoundaryLinks(), max)
	}
}

// checkPlan asserts the universal ShardAssign properties for one (shape, n)
// and returns the plan.
func checkPlan(t *testing.T, net *Network, eng *engine.Engine, n int) engine.ShardPlan {
	t.Helper()
	plan := ShardAssign(net, n)
	if len(plan.Assign) != len(eng.Nodes()) {
		t.Fatalf("shape %v n=%d: %d assignments for %d nodes", net.Shape, n, len(plan.Assign), len(eng.Nodes()))
	}
	pop := make([]int, plan.N)
	for id, s := range plan.Assign {
		if s < 0 || s >= plan.N {
			t.Fatalf("shape %v n=%d: node %d assigned to shard %d of %d", net.Shape, n, id, s, plan.N)
		}
		pop[s]++
	}
	for s, c := range pop {
		if c == 0 {
			t.Fatalf("shape %v n=%d: shard %d owns no nodes", net.Shape, n, s)
		}
	}
	if err := eng.SetShards(plan); err != nil {
		t.Fatalf("shape %v n=%d: SetShards rejected the plan: %v", net.Shape, n, err)
	}
	if got, want := eng.BoundaryLinks(), 2*crossShardPairs(net, plan); got != want {
		t.Fatalf("shape %v n=%d: %d boundary links, wiring contract implies %d", net.Shape, n, got, want)
	}
	return plan
}

func TestShardAssignShapes(t *testing.T) {
	for _, extents := range [][]int{{5}, {4, 3}, {2, 2}, {3, 2, 2}, {2, 3, 4}, {8, 16, 16}} {
		for _, n := range []int{1, 2, 3, 4, 7} {
			net, eng := build(t, extents...)
			checkPlan(t, net, eng, n)
		}
	}
}

// FuzzShardPlan drives ShardAssign over arbitrary small shapes and shard
// counts: it must never panic, must cover every node with exactly one
// in-range shard, must leave no shard empty, must satisfy the engine's plan
// validation, and the engine's boundary-link accounting must match the count
// the wiring contract implies (which is symmetric between any two shards
// because every connection is a bidirectional pair).
func FuzzShardPlan(f *testing.F) {
	f.Add(uint8(4), uint8(3), uint8(0), uint8(0), uint8(2))
	f.Add(uint8(2), uint8(2), uint8(2), uint8(0), uint8(3))
	f.Add(uint8(5), uint8(1), uint8(1), uint8(1), uint8(7))
	f.Add(uint8(3), uint8(4), uint8(0), uint8(0), uint8(1))
	f.Add(uint8(1), uint8(0), uint8(0), uint8(0), uint8(200))
	f.Fuzz(func(t *testing.T, a, b, c, d, n uint8) {
		var extents []int
		for _, e := range []uint8{a, b, c, d} {
			if e == 0 {
				break
			}
			// Cap extents so the fuzzer explores shapes, not build time.
			extents = append(extents, int(e%5)+1)
		}
		if len(extents) == 0 {
			t.Skip()
		}
		eng := engine.New(engine.DefaultConfig())
		net := Build(eng, geom.MustShape(extents...))
		plan := checkPlan(t, net, eng, int(n%9))
		// Re-planning at a different count on a live engine must also hold.
		checkPlan(t, net, eng, int(n%9)+1)
		_ = plan
	})
}
