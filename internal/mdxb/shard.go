package mdxb

// Topology-aware shard planning: the engine's generic PlanShards balances
// port counts over creation order, but the MD crossbar lattice has a much
// better partition available in its geometry. ShardAssign slices the lattice
// into contiguous slabs perpendicular to its longest dimension and keeps
// every element with a definite slab — PEs, routers, and the crossbars whose
// line lies inside one slab — co-resident with its slab. Only the crossbars
// running along the cut dimension genuinely span slabs; those are dealt
// round-robin across shards so their load spreads evenly. The result: every
// PE–router link and every router↔XB link of a non-cut dimension is
// shard-local, and the boundary set is exactly the ports of the cut-dimension
// crossbars — the same locality structure the real machine's cabinet
// partitioning exploits.

import (
	"sr2201/internal/engine"
	"sr2201/internal/geom"
)

// ShardAssign builds an engine.ShardPlan that partitions the network into n
// spatial shards (clamped to the extent of the longest dimension). Pass the
// result to net.Eng.SetShards. With n <= 1 the plan is a single shard.
func ShardAssign(net *Network, n int) engine.ShardPlan {
	part := net.Shape.Partition(n)
	n = part.Slabs()
	assign := make([]int, len(net.Eng.Nodes()))
	net.Shape.Enumerate(func(c geom.Coord) bool {
		s := part.SlabOf(c)
		assign[net.PE(c).ID] = s
		assign[net.Router(c).ID] = s
		return true
	})
	for dim := 0; dim < net.Dims(); dim++ {
		for i, xb := range net.XBs(dim) {
			if dim == part.Dim {
				// The line runs along the cut: it touches every slab, so
				// no placement is local. Deal these boundary crossbars
				// round-robin for load balance.
				assign[xb.ID] = i % n
			} else {
				// The line lies inside the slab of its fixed cut-dimension
				// coordinate; placing it there keeps all its links local.
				assign[xb.ID] = part.SlabOf(xbFixed(net, dim, i))
			}
		}
	}
	return engine.ShardPlan{N: n, Assign: assign}
}

// xbFixed recovers the fixed coordinates of the i'th crossbar line along dim
// (the inverse of Shape.LineIndex).
func xbFixed(net *Network, dim, i int) geom.Coord {
	reduced := make(geom.Shape, 0, net.Dims())
	for d, e := range net.Shape {
		if d == dim {
			continue
		}
		reduced = append(reduced, e)
	}
	rc := reduced.CoordOf(i)
	var fixed geom.Coord
	j := 0
	for d := 0; d < net.Dims(); d++ {
		if d == dim {
			continue
		}
		fixed[d] = rc[j]
		j++
	}
	return fixed
}
