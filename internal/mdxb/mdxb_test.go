package mdxb

import (
	"strings"
	"testing"

	"sr2201/internal/engine"
	"sr2201/internal/flit"
	"sr2201/internal/geom"
)

func build(t *testing.T, extents ...int) (*Network, *engine.Engine) {
	t.Helper()
	eng := engine.New(engine.DefaultConfig())
	return Build(eng, geom.MustShape(extents...)), eng
}

// The wiring contract every routing policy relies on: router port k attaches
// to the dim-k crossbar through its lattice point (entering the crossbar at
// the port matching its own coordinate), and router port d attaches to the
// local PE.
func TestWiringContract(t *testing.T) {
	for _, extents := range [][]int{{4, 3}, {3, 2, 2}, {5}} {
		net, _ := build(t, extents...)
		shape := net.Shape
		d := shape.Dims()
		shape.Enumerate(func(c geom.Coord) bool {
			rtr := net.Router(c)
			if len(rtr.In) != d+1 || len(rtr.Out) != d+1 {
				t.Fatalf("%v: router has %d ports, want %d", extents, len(rtr.In), d+1)
			}
			for k := 0; k < d; k++ {
				down := rtr.Out[k].DownstreamIn()
				if down == nil {
					t.Fatalf("%v: router %v port %d unconnected", extents, c, k)
				}
				wantXB := net.XBThrough(c, k)
				if down.Node() != wantXB {
					t.Fatalf("%v: router %v port %d leads to %s, want %s", extents, c, k, down.Node().Name, wantXB.Name)
				}
				if down.Index() != c[k] {
					t.Fatalf("%v: router %v enters %s at port %d, want %d", extents, c, wantXB.Name, down.Index(), c[k])
				}
			}
			pe := rtr.Out[d].DownstreamIn()
			if pe == nil || pe.Node() != net.PE(c) {
				t.Fatalf("%v: router %v PE port misconnected", extents, c)
			}
			return true
		})
		// Crossbar side: port v of the dim-k crossbar of line l reaches the
		// router at l.Point(v), entering on the router's dim-k port.
		for k := 0; k < d; k++ {
			for _, l := range shape.LinesAlong(k) {
				xb := net.XB(l)
				if len(xb.In) != shape[k] {
					t.Fatalf("%v: %s has %d ports, want %d", extents, xb.Name, len(xb.In), shape[k])
				}
				for v := 0; v < shape[k]; v++ {
					down := xb.Out[v].DownstreamIn()
					if down == nil || down.Node() != net.Router(l.Point(v)) || down.Index() != k {
						t.Fatalf("%v: %s port %d misconnected", extents, xb.Name, v)
					}
				}
			}
		}
	}
}

func TestNodeNaming(t *testing.T) {
	net, _ := build(t, 4, 3)
	if got := net.PE(geom.Coord{2, 1}).Name; got != "PE(2,1)" {
		t.Errorf("PE name = %q", got)
	}
	if got := net.Router(geom.Coord{2, 1}).Name; got != "RTC(2,1)" {
		t.Errorf("router name = %q", got)
	}
	if got := net.XBThrough(geom.Coord{2, 1}, 0).Name; got != "XB0(0,1)" {
		t.Errorf("dim-0 crossbar name = %q", got)
	}
	if got := net.XBThrough(geom.Coord{2, 1}, 1).Name; got != "XB1(2,0)" {
		t.Errorf("dim-1 crossbar name = %q", got)
	}
}

func TestCounts(t *testing.T) {
	net, _ := build(t, 4, 3)
	r, x := net.SwitchCount()
	if r != 12 || x != 7 {
		t.Errorf("switch count = %d, %d", r, x)
	}
	// 12 routers x 3 ports + 3 dim-0 crossbars x 4 + 4 dim-1 crossbars x 3.
	if got := net.PortCount(); got != 12*3+3*4+4*3 {
		t.Errorf("port count = %d", got)
	}
	if net.Dims() != 2 || net.RouterPortPE() != 2 {
		t.Errorf("dims/PE port = %d/%d", net.Dims(), net.RouterPortPE())
	}
	if got := len(net.PEs()); got != 12 {
		t.Errorf("PEs = %d", got)
	}
	if got := len(net.Routers()); got != 12 {
		t.Errorf("routers = %d", got)
	}
	if got := len(net.XBs(0)); got != 3 {
		t.Errorf("dim-0 crossbars = %d", got)
	}
}

// Without a policy, any injected packet is dropped with a clear reason
// rather than wedging or panicking.
func TestNoPolicyDrops(t *testing.T) {
	net, eng := build(t, 2, 2)
	var reason string
	eng.OnDrop = func(d engine.Drop) { reason = d.Reason }
	h := &flit.Header{PacketID: 1, Dst: geom.Coord{1, 1}}
	eng.Inject(net.PE(geom.Coord{0, 0}), flit.NewPacket(h, 2))
	if !eng.RunUntilQuiescent(1000) {
		t.Fatal("did not drain")
	}
	if reason == "" {
		t.Fatal("no drop reported")
	}
	if !strings.Contains(reason, "no routing policy") {
		t.Errorf("drop reason = %q", reason)
	}
	if net.Policy() != nil {
		t.Error("policy non-nil before SetPolicy")
	}
}
