// Package mdxb builds the SR2201's multi-dimensional crossbar network on top
// of the simulation kernel, following the paper's Section 3.1 definition:
//
//   - n = n1·n2·…·nd PEs sit at the lattice points of a d-dimensional solid;
//   - every axis-aligned line of lattice points is connected by one common
//     crossbar switch (XB) — a switch providing direct connections from any
//     input port to any output port;
//   - each PE attaches to the network through a relay switch (router, RTC)
//     structured as a (d+1)×(d+1) crossbar, connecting the PE with the d
//     crossbars through its lattice point.
//
// Port conventions (the contract every routing policy relies on). With V
// virtual channels (V = 1 when the network is built without VCs), every
// router↔crossbar wire carries V lanes; each lane is a distinct engine port
// pair, and the lanes of one wire share a physical channel (one flit per
// cycle combined):
//
//	router at coordinate c:  port k·V+v (0 ≤ k < d, 0 ≤ v < V)
//	                             ↔ lane v of the dim-k crossbar through c
//	                         port d·V ↔ the PE at c
//	dim-k crossbar of line L: port p·V+v ↔ lane v of the router at L.Point(p)
//	PE at c:                  port 0 ↔ its router's port d·V
//
// At V=1 this degenerates exactly to the paper's single-channel layout:
// router port k ↔ dim-k crossbar, router port d ↔ PE, crossbar port p ↔
// router at point p, and no physical channels are created.
//
// The package is policy-agnostic: routing is delegated to a Policy installed
// with SetPolicy (implemented in internal/routing).
package mdxb

import (
	"fmt"

	"sr2201/internal/engine"
	"sr2201/internal/flit"
	"sr2201/internal/geom"
)

// Policy computes forwarding decisions for the two switch classes of the MD
// crossbar network. Implementations live in internal/routing.
type Policy interface {
	// RouteRouter routes a header arriving at the relay switch of the PE at
	// coord, on input port in (in < d: from the dim-in crossbar; in == d:
	// from the PE).
	RouteRouter(net *Network, coord geom.Coord, in int, h *flit.Header) (engine.Decision, error)
	// RouteXB routes a header arriving at the crossbar of line, on input
	// port in (from the router at line.Point(in)).
	RouteXB(net *Network, line geom.Line, in int, h *flit.Header) (engine.Decision, error)
}

// RouterMeta is attached to router nodes.
type RouterMeta struct {
	Coord geom.Coord
}

// XBMeta is attached to crossbar nodes.
type XBMeta struct {
	Line geom.Line
}

// PEMeta is attached to PE endpoint nodes.
type PEMeta struct {
	Coord geom.Coord
}

// Network is a fully wired multi-dimensional crossbar network.
type Network struct {
	Shape geom.Shape
	Eng   *engine.Engine

	pes     []*engine.Node   // by Shape.Index
	routers []*engine.Node   // by Shape.Index
	xbs     [][]*engine.Node // [dim][Shape.LineIndex]

	vcs    int
	policy Policy
}

// Build constructs PEs, routers and crossbars for the given shape and wires
// them per the port conventions, with a single channel per wire. A Policy
// must be installed before any packet is injected.
func Build(eng *engine.Engine, shape geom.Shape) *Network {
	return BuildVC(eng, shape, 1)
}

// BuildVC is Build with vcs virtual channels per router↔crossbar wire. The
// lanes of one wire are engine ports sharing a physical channel; PE↔router
// wires stay single-lane (injection and ejection need no escape lane).
// vcs = 1 builds the identical network Build does, physical channels
// included (none).
func BuildVC(eng *engine.Engine, shape geom.Shape, vcs int) *Network {
	if vcs < 1 {
		panic(fmt.Sprintf("mdxb: %d virtual channels (need >= 1)", vcs))
	}
	net := &Network{Shape: shape, Eng: eng, vcs: vcs}
	d := shape.Dims()

	routeRouter := func(n *engine.Node, in int, h *flit.Header) (engine.Decision, error) {
		if net.policy == nil {
			return engine.Decision{}, fmt.Errorf("mdxb: no routing policy installed")
		}
		return net.policy.RouteRouter(net, n.Meta.(RouterMeta).Coord, in, h)
	}
	routeXB := func(n *engine.Node, in int, h *flit.Header) (engine.Decision, error) {
		if net.policy == nil {
			return engine.Decision{}, fmt.Errorf("mdxb: no routing policy installed")
		}
		return net.policy.RouteXB(net, n.Meta.(XBMeta).Line, in, h)
	}

	// PEs and routers at every lattice point.
	n := shape.Size()
	net.pes = make([]*engine.Node, n)
	net.routers = make([]*engine.Node, n)
	for i := 0; i < n; i++ {
		c := shape.CoordOf(i)
		net.pes[i] = eng.AddEndpoint("PE"+c.In(d), PEMeta{Coord: c})
		net.routers[i] = eng.AddSwitch("RTC"+c.In(d), d*vcs+1, routeRouter, RouterMeta{Coord: c})
		eng.Connect(net.pes[i], 0, net.routers[i], d*vcs)
	}

	// One crossbar per line, each wire's lanes wired port-for-port to the
	// router at its point.
	net.xbs = make([][]*engine.Node, d)
	for dim := 0; dim < d; dim++ {
		lines := shape.LinesAlong(dim)
		net.xbs[dim] = make([]*engine.Node, len(lines))
		for _, l := range lines {
			xb := eng.AddSwitch(fmt.Sprintf("XB%d%s", dim, l.Fixed.In(d)), shape[dim]*vcs, routeXB, XBMeta{Line: l})
			net.xbs[dim][shape.LineIndex(l)] = xb
			for p := 0; p < shape[dim]; p++ {
				rtc := net.Router(l.Point(p))
				for v := 0; v < vcs; v++ {
					eng.Connect(xb, p*vcs+v, rtc, dim*vcs+v)
				}
				if vcs > 1 {
					eng.SharePhysical(xb.Out[p*vcs : (p+1)*vcs]...)
					eng.SharePhysical(rtc.Out[dim*vcs : (dim+1)*vcs]...)
				}
			}
		}
	}
	return net
}

// SetPolicy installs the routing policy used by every switch.
func (net *Network) SetPolicy(p Policy) { net.policy = p }

// Policy returns the installed routing policy (nil before SetPolicy).
func (net *Network) Policy() Policy { return net.policy }

// Dims reports the network dimensionality d.
func (net *Network) Dims() int { return net.Shape.Dims() }

// PE returns the endpoint node of the PE at c.
func (net *Network) PE(c geom.Coord) *engine.Node { return net.pes[net.Shape.Index(c)] }

// Router returns the relay-switch node at c.
func (net *Network) Router(c geom.Coord) *engine.Node { return net.routers[net.Shape.Index(c)] }

// XB returns the crossbar node of the given line.
func (net *Network) XB(l geom.Line) *engine.Node { return net.xbs[l.Dim][net.Shape.LineIndex(l)] }

// XBThrough returns the dim-k crossbar through coordinate c.
func (net *Network) XBThrough(c geom.Coord, dim int) *engine.Node {
	return net.XB(geom.LineOf(c, dim))
}

// PEs returns all PE endpoints in Shape.Index order.
func (net *Network) PEs() []*engine.Node { return net.pes }

// Routers returns all relay switches in Shape.Index order.
func (net *Network) Routers() []*engine.Node { return net.routers }

// XBs returns all crossbars of one dimension in LineIndex order.
func (net *Network) XBs(dim int) []*engine.Node { return net.xbs[dim] }

// VCs reports the number of virtual channels per router↔crossbar wire
// (1 for a network built without VCs).
func (net *Network) VCs() int { return net.vcs }

// RouterPortPE is the router port attached to the local PE.
func (net *Network) RouterPortPE() int { return net.Shape.Dims() * net.vcs }

// RouterPortXB is the router port for lane v of the dim-k crossbar wire.
func (net *Network) RouterPortXB(k, v int) int { return k*net.vcs + v }

// XBPortRouter is the crossbar port for lane v of the wire to the router at
// point index p of the crossbar's line.
func (net *Network) XBPortRouter(p, v int) int { return p*net.vcs + v }

// PortWire decomposes a router or crossbar port index into its wire index
// (dimension k for routers, point index p for crossbars) and lane. The
// router's PE port decomposes to wire Dims(), lane 0.
func (net *Network) PortWire(port int) (wire, lane int) {
	return port / net.vcs, port % net.vcs
}

// SwitchCount reports the number of switching elements (routers + crossbars),
// used by the structural-scaling experiment (E10).
func (net *Network) SwitchCount() (routers, crossbars int) {
	routers = len(net.routers)
	for _, xs := range net.xbs {
		crossbars += len(xs)
	}
	return routers, crossbars
}

// PortCount reports total switch ports (a proxy for hardware cost in E10):
// each router has d·V+1, each dim-k crossbar has shape[k]·V.
func (net *Network) PortCount() int {
	total := len(net.routers) * (net.Dims()*net.vcs + 1)
	for dim, xs := range net.xbs {
		total += len(xs) * net.Shape[dim] * net.vcs
	}
	return total
}
