package cliutil

import (
	"testing"

	"sr2201/internal/fault"
	"sr2201/internal/geom"
)

// FuzzParseFault: arbitrary fault specs must never panic, and accepted
// specs must produce in-shape faults.
func FuzzParseFault(f *testing.F) {
	for _, seed := range []string{"rtc:2,1", "xb:0:0,1", "xb:1:3,0", "rtc:", "xb::", "junk", "rtc:9,9", "xb:7:1,1", "rtc:-1,-1"} {
		f.Add(seed)
	}
	shape := geom.MustShape(4, 3)
	f.Fuzz(func(t *testing.T, s string) {
		flt, err := ParseFault(s, shape.Dims())
		if err != nil {
			return
		}
		// Accepted faults must be addable to a set (i.e., in shape) or be
		// rejected there with a clean error — never panic.
		set := fault.NewSet(shape)
		_ = set.Add(flt)
	})
}

// FuzzParseShape: arbitrary shape strings must never panic; accepted shapes
// have positive extents.
func FuzzParseShape(f *testing.F) {
	for _, seed := range []string{"4x3", "8x8x8", "x", "0x0", "1", "2x-3", "999999999999999999999x2"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		shape, err := ParseShape(s)
		if err != nil {
			return
		}
		if shape.Size() < 1 {
			t.Fatalf("accepted shape %q has size %d", s, shape.Size())
		}
	})
}
