// Package cliutil parses the small textual formats the command-line tools
// share: shapes ("8x8"), coordinates ("2,1"), fault specifications
// ("rtc:2,1" or "xb:0:0,1"), and fault schedules ("rtc:2,1@500").
package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"sr2201/internal/fault"
	"sr2201/internal/geom"
)

// ParseShape parses "n1xn2x..." into a Shape, e.g. "8x8" or "4x4x4".
// Surrounding whitespace and an uppercase "X" separator are accepted, so
// shapes pasted from tables or env vars ("8X8", " 4x4x4 ") parse as typed.
func ParseShape(s string) (geom.Shape, error) {
	parts := strings.Split(strings.ReplaceAll(strings.TrimSpace(s), "X", "x"), "x")
	extents := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("cliutil: bad shape %q: %v", s, err)
		}
		extents = append(extents, v)
	}
	return geom.NewShape(extents...)
}

// ParseCoord parses "2,1" (dimensionality dims) into a Coord. Whitespace
// around the string or its components is accepted.
func ParseCoord(s string, dims int) (geom.Coord, error) {
	parts := strings.Split(strings.TrimSpace(s), ",")
	if len(parts) != dims {
		return geom.Coord{}, fmt.Errorf("cliutil: coordinate %q needs %d components", s, dims)
	}
	var c geom.Coord
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return geom.Coord{}, fmt.Errorf("cliutil: bad coordinate %q: %v", s, err)
		}
		c[i] = v
	}
	return c, nil
}

// ParseFault parses a fault specification:
//
//	rtc:X,Y      a faulty relay switch at the coordinate
//	xb:DIM:X,Y   a faulty crossbar — the dim-DIM line through the coordinate
func ParseFault(s string, dims int) (fault.Fault, error) {
	switch {
	case strings.HasPrefix(s, "rtc:"):
		c, err := ParseCoord(strings.TrimPrefix(s, "rtc:"), dims)
		if err != nil {
			return fault.Fault{}, err
		}
		return fault.RouterFault(c), nil
	case strings.HasPrefix(s, "xb:"):
		rest := strings.TrimPrefix(s, "xb:")
		colon := strings.IndexByte(rest, ':')
		if colon < 0 {
			return fault.Fault{}, fmt.Errorf("cliutil: crossbar fault %q needs xb:DIM:COORD", s)
		}
		dim, err := strconv.Atoi(rest[:colon])
		if err != nil || dim < 0 || dim >= dims {
			return fault.Fault{}, fmt.Errorf("cliutil: bad crossbar dimension in %q", s)
		}
		c, err := ParseCoord(rest[colon+1:], dims)
		if err != nil {
			return fault.Fault{}, err
		}
		return fault.XBFault(geom.LineOf(c, dim)), nil
	default:
		return fault.Fault{}, fmt.Errorf("cliutil: fault %q must start with rtc: or xb:", s)
	}
}

// ParseFaultIn parses a fault specification and additionally validates that
// it lies inside the given shape (ParseFault only checks dimensionality).
func ParseFaultIn(s string, shape geom.Shape) (fault.Fault, error) {
	f, err := ParseFault(s, shape.Dims())
	if err != nil {
		return fault.Fault{}, err
	}
	if err := fault.NewSet(shape).Add(f); err != nil {
		return fault.Fault{}, fmt.Errorf("cliutil: fault %q: %w", s, err)
	}
	return f, nil
}

// ParseScheduledFault parses a fault schedule specification — a fault spec
// with an activation cycle appended:
//
//	rtc:X,Y@CYCLE      the relay switch at the coordinate dies at CYCLE
//	xb:DIM:X,Y@CYCLE   the crossbar dies at CYCLE
//
// The fault is validated against the shape (containment, not just
// dimensionality). The cycle must be a non-negative integer.
func ParseScheduledFault(s string, shape geom.Shape) (fault.Fault, int64, error) {
	at := strings.LastIndexByte(s, '@')
	if at < 0 {
		return fault.Fault{}, 0, fmt.Errorf("cliutil: schedule %q needs FAULT@CYCLE", s)
	}
	cycle, err := strconv.ParseInt(strings.TrimSpace(s[at+1:]), 10, 64)
	if err != nil {
		return fault.Fault{}, 0, fmt.Errorf("cliutil: bad cycle in schedule %q: %v", s, err)
	}
	if cycle < 0 {
		return fault.Fault{}, 0, fmt.Errorf("cliutil: negative cycle in schedule %q", s)
	}
	f, err := ParseFaultIn(s[:at], shape)
	if err != nil {
		return fault.Fault{}, 0, err
	}
	return f, cycle, nil
}
