// Package cliutil parses the small textual formats the command-line tools
// share: shapes ("8x8"), coordinates ("2,1"), fault specifications
// ("rtc:2,1", "xb:0:0,1" or "link:0,0-3,0"), fault schedules
// ("rtc:2,1@500"), broadcast schedules ("3,2@250"), topology names
// ("mdx" | "hyperx" | "fullmesh"), the recovery-flag triple, the
// virtual-channel flag pair, the reconfiguration flag pair, fleet worker
// ids, and chaos failpoints ("<hash>@<cycle>").
package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"sr2201/internal/core"
	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/recovery"
)

// ParseTopology parses a -topo flag value into the canonical topology name
// core.Config accepts. The empty string selects the default MD crossbar;
// case and surrounding whitespace are forgiven.
func ParseTopology(s string) (string, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", core.TopologyMDX:
		return core.TopologyMDX, nil
	case core.TopologyHyperX:
		return core.TopologyHyperX, nil
	case core.TopologyFullMesh:
		return core.TopologyFullMesh, nil
	default:
		return "", fmt.Errorf("cliutil: unknown topology %q (mdx | hyperx | fullmesh)", s)
	}
}

// ParseShape parses "n1xn2x..." into a Shape, e.g. "8x8" or "4x4x4".
// Surrounding whitespace and an uppercase "X" separator are accepted, so
// shapes pasted from tables or env vars ("8X8", " 4x4x4 ") parse as typed.
func ParseShape(s string) (geom.Shape, error) {
	parts := strings.Split(strings.ReplaceAll(strings.TrimSpace(s), "X", "x"), "x")
	extents := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("cliutil: bad shape %q: %v", s, err)
		}
		extents = append(extents, v)
	}
	return geom.NewShape(extents...)
}

// ParseCoord parses "2,1" (dimensionality dims) into a Coord. Whitespace
// around the string or its components is accepted.
func ParseCoord(s string, dims int) (geom.Coord, error) {
	parts := strings.Split(strings.TrimSpace(s), ",")
	if len(parts) != dims {
		return geom.Coord{}, fmt.Errorf("cliutil: coordinate %q needs %d components", s, dims)
	}
	var c geom.Coord
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return geom.Coord{}, fmt.Errorf("cliutil: bad coordinate %q: %v", s, err)
		}
		c[i] = v
	}
	return c, nil
}

// ParseFault parses a fault specification:
//
//	rtc:X,Y       a faulty relay switch at the coordinate
//	xb:DIM:X,Y    a faulty crossbar — the dim-DIM line through the coordinate
//	link:A-B      a faulty direct link between the routers at coordinates A
//	              and B (direct-link topologies; endpoints must share a line)
func ParseFault(s string, dims int) (fault.Fault, error) {
	switch {
	case strings.HasPrefix(s, "link:"):
		rest := strings.TrimPrefix(s, "link:")
		dash := strings.IndexByte(rest, '-')
		if dash < 0 {
			return fault.Fault{}, fmt.Errorf("cliutil: link fault %q needs link:A-B (two coordinates)", s)
		}
		a, err := ParseCoord(rest[:dash], dims)
		if err != nil {
			return fault.Fault{}, err
		}
		b, err := ParseCoord(rest[dash+1:], dims)
		if err != nil {
			return fault.Fault{}, err
		}
		if a == b {
			return fault.Fault{}, fmt.Errorf("cliutil: link fault %q joins a router to itself", s)
		}
		return fault.LinkFault(a, b), nil
	case strings.HasPrefix(s, "rtc:"):
		c, err := ParseCoord(strings.TrimPrefix(s, "rtc:"), dims)
		if err != nil {
			return fault.Fault{}, err
		}
		return fault.RouterFault(c), nil
	case strings.HasPrefix(s, "xb:"):
		rest := strings.TrimPrefix(s, "xb:")
		colon := strings.IndexByte(rest, ':')
		if colon < 0 {
			return fault.Fault{}, fmt.Errorf("cliutil: crossbar fault %q needs xb:DIM:COORD", s)
		}
		dim, err := strconv.Atoi(rest[:colon])
		if err != nil || dim < 0 || dim >= dims {
			return fault.Fault{}, fmt.Errorf("cliutil: bad crossbar dimension in %q", s)
		}
		c, err := ParseCoord(rest[colon+1:], dims)
		if err != nil {
			return fault.Fault{}, err
		}
		return fault.XBFault(geom.LineOf(c, dim)), nil
	default:
		return fault.Fault{}, fmt.Errorf("cliutil: fault %q must start with rtc:, xb: or link:", s)
	}
}

// CheckFaultTopology validates a parsed fault against the hardware the
// named topology actually has: the MD crossbar has routers and shared
// crossbars (no direct links), the direct-link topologies have routers and
// links (no crossbars). topology must already be canonical (ParseTopology).
func CheckFaultTopology(f fault.Fault, topology string) error {
	if topology == "" || topology == core.TopologyMDX {
		if f.Kind == fault.KindLink {
			return fmt.Errorf("cliutil: fault %s: the mdx topology has no direct links (link faults need -topo hyperx or fullmesh)", f)
		}
		return nil
	}
	if f.Kind == fault.KindXB {
		return fmt.Errorf("cliutil: fault %s: topology %q has no crossbars (xb faults are mdx-only)", f, topology)
	}
	return nil
}

// ParseFaultIn parses a fault specification and additionally validates that
// it lies inside the given shape (ParseFault only checks dimensionality).
func ParseFaultIn(s string, shape geom.Shape) (fault.Fault, error) {
	f, err := ParseFault(s, shape.Dims())
	if err != nil {
		return fault.Fault{}, err
	}
	if err := fault.NewSet(shape).Add(f); err != nil {
		return fault.Fault{}, fmt.Errorf("cliutil: fault %q: %w", s, err)
	}
	return f, nil
}

// ParseScheduledFault parses a fault schedule specification — a fault spec
// with an activation cycle appended:
//
//	rtc:X,Y@CYCLE      the relay switch at the coordinate dies at CYCLE
//	xb:DIM:X,Y@CYCLE   the crossbar dies at CYCLE
//
// The fault is validated against the shape (containment, not just
// dimensionality). The cycle must be a non-negative integer.
func ParseScheduledFault(s string, shape geom.Shape) (fault.Fault, int64, error) {
	at := strings.LastIndexByte(s, '@')
	if at < 0 {
		return fault.Fault{}, 0, fmt.Errorf("cliutil: schedule %q needs FAULT@CYCLE", s)
	}
	cycle, err := strconv.ParseInt(strings.TrimSpace(s[at+1:]), 10, 64)
	if err != nil {
		return fault.Fault{}, 0, fmt.Errorf("cliutil: bad cycle in schedule %q: %v", s, err)
	}
	if cycle < 0 {
		return fault.Fault{}, 0, fmt.Errorf("cliutil: negative cycle in schedule %q", s)
	}
	f, err := ParseFaultIn(s[:at], shape)
	if err != nil {
		return fault.Fault{}, 0, err
	}
	return f, cycle, nil
}

// ParseBroadcast parses a broadcast schedule specification:
//
//	X,Y@CYCLE   the PE at the coordinate broadcasts at CYCLE
//
// The source is validated against the shape; the cycle must be a
// non-negative integer.
func ParseBroadcast(s string, shape geom.Shape) (geom.Coord, int64, error) {
	at := strings.LastIndexByte(s, '@')
	if at < 0 {
		return geom.Coord{}, 0, fmt.Errorf("cliutil: broadcast %q needs SRC@CYCLE", s)
	}
	cycle, err := strconv.ParseInt(strings.TrimSpace(s[at+1:]), 10, 64)
	if err != nil {
		return geom.Coord{}, 0, fmt.Errorf("cliutil: bad cycle in broadcast %q: %v", s, err)
	}
	if cycle < 0 {
		return geom.Coord{}, 0, fmt.Errorf("cliutil: negative cycle in broadcast %q", s)
	}
	src, err := ParseCoord(s[:at], shape.Dims())
	if err != nil {
		return geom.Coord{}, 0, err
	}
	if !shape.Contains(src) {
		return geom.Coord{}, 0, fmt.Errorf("cliutil: broadcast source %q outside shape", s[:at])
	}
	return src, cycle, nil
}

// RecoveryOptions assembles the recovery.Options a CLI's flag triple
// describes, rejecting the spellings that silently do nothing: negative
// knobs, and tuning knobs without the enable switch. stallThreshold and
// maxRecoveries of 0 select the package defaults.
func RecoveryOptions(enable bool, stallThreshold int64, maxRecoveries int) (recovery.Options, error) {
	if stallThreshold < 0 {
		return recovery.Options{}, fmt.Errorf("cliutil: negative recovery stall threshold %d", stallThreshold)
	}
	if maxRecoveries < 0 {
		return recovery.Options{}, fmt.Errorf("cliutil: negative recovery cap %d", maxRecoveries)
	}
	if !enable {
		if stallThreshold != 0 {
			return recovery.Options{}, fmt.Errorf("cliutil: recovery stall threshold %d needs -recover", stallThreshold)
		}
		if maxRecoveries != 0 {
			return recovery.Options{}, fmt.Errorf("cliutil: recovery cap %d needs -recover", maxRecoveries)
		}
		return recovery.Options{}, nil
	}
	return recovery.Options{
		Enabled:        true,
		StallThreshold: stallThreshold,
		MaxRecoveries:  maxRecoveries,
	}, nil
}

// VCOptions validates the -vcs / -adaptive flag pair, rejecting the
// spellings core.NewMachine would refuse so the CLI reports the mistake at
// flag-parse time with the flag's own name. vcs of 0 selects the default
// single-lane network; the returned count is the normalized value to place
// in core.Config.VCs.
func VCOptions(vcs int, adaptive bool) (int, error) {
	if vcs < 0 {
		return 0, fmt.Errorf("cliutil: negative virtual-channel count %d", vcs)
	}
	if vcs == 0 {
		vcs = 1
	}
	if adaptive && vcs < 2 {
		return 0, fmt.Errorf("cliutil: -adaptive needs -vcs >= 2 (an escape lane plus at least one adaptive lane), got %d", vcs)
	}
	if !adaptive && vcs > 1 {
		return 0, fmt.Errorf("cliutil: -vcs %d without -adaptive would leave lanes 1..%d unused", vcs, vcs-1)
	}
	return vcs, nil
}

// ReconfigOptions validates the -reconfig / -reconfig-drain flag pair,
// rejecting the spellings that silently do nothing: an unknown trigger mode,
// a negative drain budget, and a budget without the enable flag. The empty
// mode disables online reconfiguration (case and surrounding whitespace are
// forgiven); a budget of 0 selects reconfig.DefaultDrainBudget. The returned
// mode is canonical for core.Config.Reconfig and the campaign spec fields.
func ReconfigOptions(mode string, drainBudget int) (string, int, error) {
	m := strings.ToLower(strings.TrimSpace(mode))
	switch m {
	case "", core.ReconfigOnFault, core.ReconfigOnDeadlock, core.ReconfigBoth:
	default:
		return "", 0, fmt.Errorf("cliutil: unknown reconfig mode %q (fault | deadlock | both)", mode)
	}
	if drainBudget < 0 {
		return "", 0, fmt.Errorf("cliutil: negative reconfig drain budget %d", drainBudget)
	}
	if m == "" && drainBudget != 0 {
		return "", 0, fmt.Errorf("cliutil: reconfig drain budget %d needs -reconfig", drainBudget)
	}
	return m, drainBudget, nil
}

// ParseWorkerID validates a -worker fleet-member name. Worker ids name
// subdirectories of the shared state dir and appear in lease records, so
// they are restricted to [A-Za-z0-9._-] with no path separators; the
// empty string selects the default "w0". Surrounding whitespace is
// forgiven.
func ParseWorkerID(s string) (string, error) {
	id := strings.TrimSpace(s)
	if id == "" {
		return "w0", nil
	}
	if len(id) > 64 {
		return "", fmt.Errorf("cliutil: worker id %q longer than 64 bytes", id)
	}
	if id == "." || id == ".." {
		return "", fmt.Errorf("cliutil: worker id %q is a path component", id)
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return "", fmt.Errorf("cliutil: worker id %q: character %q outside [A-Za-z0-9._-]", id, r)
		}
	}
	return id, nil
}

// ParseFailpoint parses the MDXSERVE_FAILPOINT form "<hash>@<cycle>": kill
// the process the first time the execution whose canonical spec hash is
// <hash> (16 hex digits) reports progress at or past simulated cycle
// <cycle>. The empty string disables the failpoint. This is the chaos
// harness's deterministic owner-death hook.
func ParseFailpoint(s string) (hash string, cycle int64, err error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return "", 0, nil
	}
	at := strings.LastIndex(s, "@")
	if at < 0 {
		return "", 0, fmt.Errorf("cliutil: failpoint %q needs the form <hash>@<cycle>", s)
	}
	hash = s[:at]
	if len(hash) != 16 {
		return "", 0, fmt.Errorf("cliutil: failpoint hash %q is not 16 hex digits", hash)
	}
	for _, r := range hash {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return "", 0, fmt.Errorf("cliutil: failpoint hash %q is not lowercase hex", hash)
		}
	}
	cycle, err = strconv.ParseInt(s[at+1:], 10, 64)
	if err != nil || cycle < 0 {
		return "", 0, fmt.Errorf("cliutil: bad failpoint cycle in %q", s)
	}
	return hash, cycle, nil
}
