package cliutil

import (
	"testing"

	"sr2201/internal/fault"
	"sr2201/internal/geom"
)

func TestParseShape(t *testing.T) {
	s, err := ParseShape("4x3")
	if err != nil || s.Dims() != 2 || s[0] != 4 || s[1] != 3 {
		t.Errorf("ParseShape(4x3) = %v, %v", s, err)
	}
	if _, err := ParseShape("4xq"); err == nil {
		t.Error("bad shape accepted")
	}
	if _, err := ParseShape("4x0"); err == nil {
		t.Error("zero extent accepted")
	}
	s, err = ParseShape(" 2x3x4 ")
	if err != nil || s.Dims() != 3 {
		t.Errorf("whitespace shape = %v, %v", s, err)
	}
}

func TestParseCoord(t *testing.T) {
	c, err := ParseCoord("2,1", 2)
	if err != nil || c != (geom.Coord{2, 1}) {
		t.Errorf("ParseCoord = %v, %v", c, err)
	}
	if _, err := ParseCoord("2", 2); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := ParseCoord("2,x", 2); err == nil {
		t.Error("non-numeric accepted")
	}
}

func TestParseFault(t *testing.T) {
	f, err := ParseFault("rtc:2,1", 2)
	if err != nil || f.Kind != fault.KindRouter || f.Coord != (geom.Coord{2, 1}) {
		t.Errorf("rtc fault = %+v, %v", f, err)
	}
	f, err = ParseFault("xb:1:3,0", 2)
	if err != nil || f.Kind != fault.KindXB || f.Line.Dim != 1 || f.Line.Fixed != (geom.Coord{3, 0}) {
		t.Errorf("xb fault = %+v, %v", f, err)
	}
	for _, bad := range []string{"nope:1,1", "xb:9:0,0", "xb:0,0", "rtc:a,b", "xb:q:0,0"} {
		if _, err := ParseFault(bad, 2); err == nil {
			t.Errorf("bad fault %q accepted", bad)
		}
	}
}
