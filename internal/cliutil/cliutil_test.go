package cliutil

import (
	"strings"
	"testing"

	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/recovery"
)

func TestParseShape(t *testing.T) {
	s, err := ParseShape("4x3")
	if err != nil || s.Dims() != 2 || s[0] != 4 || s[1] != 3 {
		t.Errorf("ParseShape(4x3) = %v, %v", s, err)
	}
	if _, err := ParseShape("4xq"); err == nil {
		t.Error("bad shape accepted")
	}
	if _, err := ParseShape("4x0"); err == nil {
		t.Error("zero extent accepted")
	}
	s, err = ParseShape(" 2x3x4 ")
	if err != nil || s.Dims() != 3 {
		t.Errorf("whitespace shape = %v, %v", s, err)
	}
}

func TestParseCoord(t *testing.T) {
	c, err := ParseCoord("2,1", 2)
	if err != nil || c != (geom.Coord{2, 1}) {
		t.Errorf("ParseCoord = %v, %v", c, err)
	}
	if _, err := ParseCoord("2", 2); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := ParseCoord("2,x", 2); err == nil {
		t.Error("non-numeric accepted")
	}
}

func TestParseFault(t *testing.T) {
	f, err := ParseFault("rtc:2,1", 2)
	if err != nil || f.Kind != fault.KindRouter || f.Coord != (geom.Coord{2, 1}) {
		t.Errorf("rtc fault = %+v, %v", f, err)
	}
	f, err = ParseFault("xb:1:3,0", 2)
	if err != nil || f.Kind != fault.KindXB || f.Line.Dim != 1 || f.Line.Fixed != (geom.Coord{3, 0}) {
		t.Errorf("xb fault = %+v, %v", f, err)
	}
	for _, bad := range []string{"nope:1,1", "xb:9:0,0", "xb:0,0", "rtc:a,b", "xb:q:0,0"} {
		if _, err := ParseFault(bad, 2); err == nil {
			t.Errorf("bad fault %q accepted", bad)
		}
	}
}

func TestParseFaultErrorPaths(t *testing.T) {
	// Malformed rtc: specs.
	for _, bad := range []string{"rtc:", "rtc:1", "rtc:1,2,3", "rtc:1;2", "rtc:1,"} {
		if _, err := ParseFault(bad, 2); err == nil {
			t.Errorf("malformed rtc spec %q accepted", bad)
		}
	}
	// Malformed xb: specs.
	for _, bad := range []string{"xb:", "xb::1,2", "xb:-1:1,2", "xb:2:1,2", "xb:0:", "xb:0:1", "xb:1:1,2,3"} {
		if _, err := ParseFault(bad, 2); err == nil {
			t.Errorf("malformed xb spec %q accepted", bad)
		}
	}
}

func TestParseFaultInValidatesShape(t *testing.T) {
	shape := geom.MustShape(4, 3)
	if f, err := ParseFaultIn("rtc:3,2", shape); err != nil || f.Coord != (geom.Coord{3, 2}) {
		t.Errorf("in-shape fault = %+v, %v", f, err)
	}
	// Dimensionally valid but out of shape: ParseFault accepts, ParseFaultIn
	// must not.
	for _, bad := range []string{"rtc:4,0", "rtc:0,3", "xb:0:0,3", "xb:1:4,0"} {
		if _, err := ParseFault(bad, shape.Dims()); err != nil {
			t.Fatalf("spec %q should be dimensionally parseable", bad)
		}
		if _, err := ParseFaultIn(bad, shape); err == nil {
			t.Errorf("out-of-shape fault %q accepted", bad)
		}
	}
}

func TestParseScheduledFault(t *testing.T) {
	shape := geom.MustShape(4, 3)
	f, cycle, err := ParseScheduledFault("rtc:2,1@500", shape)
	if err != nil || f.Kind != fault.KindRouter || f.Coord != (geom.Coord{2, 1}) || cycle != 500 {
		t.Errorf("schedule = %+v @%d, %v", f, cycle, err)
	}
	f, cycle, err = ParseScheduledFault("xb:1:3,0@0", shape)
	if err != nil || f.Kind != fault.KindXB || f.Line.Dim != 1 || cycle != 0 {
		t.Errorf("xb schedule = %+v @%d, %v", f, cycle, err)
	}
	for _, bad := range []string{
		"rtc:2,1",       // no cycle
		"rtc:2,1@",      // empty cycle
		"rtc:2,1@x",     // non-numeric cycle
		"rtc:2,1@-5",    // negative cycle
		"rtc:2,1@1.5",   // non-integer cycle
		"rtc:4,0@10",    // out of shape
		"xb:0:0,3@10",   // line out of shape
		"nope:1,1@10",   // unknown kind
		"@10",           // no fault
		"rtc:2,1@10@20", // the last @ splits: "rtc:2,1@10" is no valid fault
	} {
		if _, _, err := ParseScheduledFault(bad, shape); err == nil {
			t.Errorf("bad schedule %q accepted", bad)
		}
	}
}

// TestParseShapeForms table-tests the relaxed shape spellings: surrounding
// whitespace and an uppercase (or mixed) X separator.
func TestParseShapeForms(t *testing.T) {
	good := []struct {
		in   string
		want []int
	}{
		{"8x8", []int{8, 8}},
		{"8X8", []int{8, 8}},
		{" 8X8 ", []int{8, 8}},
		{"4X4x4", []int{4, 4, 4}},
		{"\t4 x 4\n", []int{4, 4}},
	}
	for _, tc := range good {
		s, err := ParseShape(tc.in)
		if err != nil {
			t.Errorf("ParseShape(%q): %v", tc.in, err)
			continue
		}
		if s.Dims() != len(tc.want) {
			t.Errorf("ParseShape(%q) = %v, want dims %d", tc.in, s, len(tc.want))
			continue
		}
		for i, n := range tc.want {
			if s[i] != n {
				t.Errorf("ParseShape(%q)[%d] = %d, want %d", tc.in, i, s[i], n)
			}
		}
	}
	bad := []string{"", "   ", "x8", "8x", "8xx8", "8X", "X8", "8Y8", "8 8", "-4x4", "8x 8x", "8,8"}
	for _, in := range bad {
		if s, err := ParseShape(in); err == nil {
			t.Errorf("ParseShape(%q) = %v, want error", in, s)
		}
	}
}

// TestParseCoordForms table-tests the relaxed coordinate spellings.
func TestParseCoordForms(t *testing.T) {
	good := []struct {
		in   string
		dims int
		want geom.Coord
	}{
		{"2,1", 2, geom.Coord{2, 1}},
		{" 2,1 ", 2, geom.Coord{2, 1}},
		{"2 , 1", 2, geom.Coord{2, 1}},
		{"\t0,3,2\n", 3, geom.Coord{0, 3, 2}},
	}
	for _, tc := range good {
		c, err := ParseCoord(tc.in, tc.dims)
		if err != nil || c != tc.want {
			t.Errorf("ParseCoord(%q, %d) = %v, %v; want %v", tc.in, tc.dims, c, err, tc.want)
		}
	}
	bad := []struct {
		in   string
		dims int
	}{
		{"", 2},
		{"  ", 2},
		{",1", 2},
		{"2,", 2},
		{"2,,1", 3},
		{"2;1", 2},
		{"2 1", 2},
		{"2,1,0", 2},
	}
	for _, tc := range bad {
		if c, err := ParseCoord(tc.in, tc.dims); err == nil {
			t.Errorf("ParseCoord(%q, %d) = %v, want error", tc.in, tc.dims, c)
		}
	}
}

// TestParseBroadcast table-tests the SRC@CYCLE broadcast-schedule syntax,
// error paths included.
func TestParseBroadcast(t *testing.T) {
	shape := geom.MustShape(4, 4)
	good := []struct {
		in    string
		src   geom.Coord
		cycle int64
	}{
		{"3,2@250", geom.Coord{3, 2}, 250},
		{"0,0@0", geom.Coord{0, 0}, 0},
		{" 1,3 @ 40 ", geom.Coord{1, 3}, 40},
	}
	for _, tc := range good {
		src, cycle, err := ParseBroadcast(tc.in, shape)
		if err != nil || src != tc.src || cycle != tc.cycle {
			t.Errorf("ParseBroadcast(%q) = %v, %d, %v; want %v, %d", tc.in, src, cycle, err, tc.src, tc.cycle)
		}
	}
	bad := []string{
		"",         // empty
		"3,2",      // no cycle
		"@250",     // no source
		"3,2@",     // empty cycle
		"3,2@-1",   // negative cycle
		"3,2@x",    // non-numeric cycle
		"3@250",    // wrong dimensionality
		"4,0@250",  // outside shape
		"3,2@@250", // the last @ splits "3,2@" / "250"
		"3;2@250",  // bad separator
	}
	for _, in := range bad {
		if src, cycle, err := ParseBroadcast(in, shape); err == nil {
			t.Errorf("ParseBroadcast(%q) = %v, %d, want error", in, src, cycle)
		}
	}
}

// TestRecoveryOptions table-tests the flag-triple assembly, in particular
// the spellings that would otherwise silently do nothing.
func TestRecoveryOptions(t *testing.T) {
	tests := []struct {
		name    string
		enable  bool
		stall   int64
		cap_    int
		wantErr bool
		want    recovery.Options
	}{
		{name: "disabled zero value", want: recovery.Options{}},
		{name: "enabled defaults", enable: true,
			want: recovery.Options{Enabled: true}},
		{name: "enabled tuned", enable: true, stall: 256, cap_: 5,
			want: recovery.Options{Enabled: true, StallThreshold: 256, MaxRecoveries: 5}},
		{name: "stall without enable", stall: 256, wantErr: true},
		{name: "cap without enable", cap_: 5, wantErr: true},
		{name: "negative stall", enable: true, stall: -1, wantErr: true},
		{name: "negative cap", enable: true, cap_: -1, wantErr: true},
		{name: "negative stall while disabled", stall: -1, wantErr: true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := RecoveryOptions(tc.enable, tc.stall, tc.cap_)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("RecoveryOptions = %+v, want error", got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("RecoveryOptions = %+v, want %+v", got, tc.want)
			}
		})
	}
}

// TestVCOptions pins the -vcs/-adaptive flag-pair contract every CLI shares:
// the zero value means the single-lane machine, -adaptive needs a second
// lane, and extra lanes without -adaptive are refused rather than silently
// wasted.
func TestVCOptions(t *testing.T) {
	tests := []struct {
		name     string
		vcs      int
		adaptive bool
		want     int
		wantErr  bool
	}{
		{name: "zero value single lane", vcs: 0, want: 1},
		{name: "explicit single lane", vcs: 1, want: 1},
		{name: "adaptive two lanes", vcs: 2, adaptive: true, want: 2},
		{name: "adaptive four lanes", vcs: 4, adaptive: true, want: 4},
		{name: "negative", vcs: -1, wantErr: true},
		{name: "negative with adaptive", vcs: -3, adaptive: true, wantErr: true},
		{name: "adaptive without lanes", vcs: 0, adaptive: true, wantErr: true},
		{name: "adaptive on one lane", vcs: 1, adaptive: true, wantErr: true},
		{name: "lanes without adaptive", vcs: 2, wantErr: true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := VCOptions(tc.vcs, tc.adaptive)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("VCOptions = %d, want error", got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("VCOptions = %d, want %d", got, tc.want)
			}
		})
	}
}

// TestReconfigOptions pins the -reconfig/-reconfig-drain flag-pair contract:
// the empty mode disables reconfiguration, the three trigger spellings are
// canonicalized, and a drain budget without the enable flag is refused
// rather than silently ignored.
func TestReconfigOptions(t *testing.T) {
	tests := []struct {
		name     string
		mode     string
		drain    int
		wantMode string
		wantErr  bool
	}{
		{name: "disabled zero value", mode: "", wantMode: ""},
		{name: "fault", mode: "fault", wantMode: "fault"},
		{name: "deadlock", mode: "deadlock", wantMode: "deadlock"},
		{name: "both", mode: "both", wantMode: "both"},
		{name: "case and whitespace forgiven", mode: " Fault ", wantMode: "fault"},
		{name: "tuned budget", mode: "both", drain: 8, wantMode: "both"},
		{name: "unknown mode", mode: "always", wantErr: true},
		{name: "negative budget", mode: "fault", drain: -1, wantErr: true},
		{name: "budget without mode", mode: "", drain: 8, wantErr: true},
		{name: "negative budget while disabled", mode: "", drain: -1, wantErr: true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			mode, drain, err := ReconfigOptions(tc.mode, tc.drain)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("ReconfigOptions = (%q, %d), want error", mode, drain)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if mode != tc.wantMode || drain != tc.drain {
				t.Fatalf("ReconfigOptions = (%q, %d), want (%q, %d)", mode, drain, tc.wantMode, tc.drain)
			}
		})
	}
}

func TestParseTopology(t *testing.T) {
	tests := []struct {
		in      string
		want    string
		wantErr bool
	}{
		{in: "", want: "mdx"},
		{in: "mdx", want: "mdx"},
		{in: "hyperx", want: "hyperx"},
		{in: "fullmesh", want: "fullmesh"},
		{in: " HyperX ", want: "hyperx"}, // case and whitespace forgiven
		{in: "MDX", want: "mdx"},
		{in: "torus", wantErr: true},
		{in: "hyper-x", wantErr: true},
		{in: "mesh", wantErr: true},
	}
	for _, tc := range tests {
		got, err := ParseTopology(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseTopology(%q) = %q, want error", tc.in, got)
			}
			continue
		}
		if err != nil || got != tc.want {
			t.Errorf("ParseTopology(%q) = %q, %v, want %q", tc.in, got, err, tc.want)
		}
	}
}

func TestParseLinkFault(t *testing.T) {
	f, err := ParseFault("link:0,0-3,0", 2)
	if err != nil || f.Kind != fault.KindLink {
		t.Fatalf("link fault = %+v, %v", f, err)
	}
	// Endpoints are canonicalized, so either argument order names the same
	// fault.
	if g, err := ParseFault("link:3,0-0,0", 2); err != nil || g != f {
		t.Errorf("reversed link fault = %+v, %v, want %+v", g, err, f)
	}
	// Malformed link: specs.
	for _, bad := range []string{"link:", "link:0,0", "link:0,0-", "link:-3,0",
		"link:0,0-0,0", "link:a,b-c,d", "link:0,0-3,0,1", "link:0-1"} {
		if _, err := ParseFault(bad, 2); err == nil {
			t.Errorf("malformed link spec %q accepted", bad)
		}
	}
	// Dimensionally valid but off-lattice or off-line: ParseFaultIn rejects.
	shape := geom.MustShape(4, 3)
	for _, bad := range []string{"link:0,0-4,0", "link:0,0-1,1", "link:0,0-0,3"} {
		if _, err := ParseFault(bad, shape.Dims()); err != nil {
			t.Fatalf("spec %q should be dimensionally parseable", bad)
		}
		if _, err := ParseFaultIn(bad, shape); err == nil {
			t.Errorf("off-lattice link fault %q accepted", bad)
		}
	}
}

func TestCheckFaultTopology(t *testing.T) {
	dims := 2
	parse := func(s string) fault.Fault {
		f, err := ParseFault(s, dims)
		if err != nil {
			t.Fatalf("ParseFault(%q): %v", s, err)
		}
		return f
	}
	tests := []struct {
		spec     string
		topology string
		wantErr  bool
	}{
		{spec: "rtc:1,1", topology: "mdx"},
		{spec: "rtc:1,1", topology: ""}, // empty string means mdx
		{spec: "xb:0:1,1", topology: "mdx"},
		{spec: "link:0,0-1,0", topology: "mdx", wantErr: true}, // no direct links
		{spec: "rtc:1,1", topology: "hyperx"},
		{spec: "link:0,0-1,0", topology: "hyperx"},
		{spec: "xb:0:1,1", topology: "hyperx", wantErr: true}, // no crossbars
		{spec: "rtc:1,1", topology: "fullmesh"},
		{spec: "link:0,0-1,0", topology: "fullmesh"},
		{spec: "xb:0:1,1", topology: "fullmesh", wantErr: true},
	}
	for _, tc := range tests {
		err := CheckFaultTopology(parse(tc.spec), tc.topology)
		if tc.wantErr && err == nil {
			t.Errorf("CheckFaultTopology(%s, %q) accepted", tc.spec, tc.topology)
		}
		if !tc.wantErr && err != nil {
			t.Errorf("CheckFaultTopology(%s, %q): %v", tc.spec, tc.topology, err)
		}
	}
}

func TestParseWorkerID(t *testing.T) {
	good := map[string]string{
		"":          "w0", // default fleet member
		"  w3  ":    "w3",
		"node-07.a": "node-07.a",
		"W_1":       "W_1",
	}
	for in, want := range good {
		got, err := ParseWorkerID(in)
		if err != nil || got != want {
			t.Errorf("ParseWorkerID(%q) = (%q, %v), want %q", in, got, err, want)
		}
	}
	bad := []string{".", "..", "a/b", "w 1", "w\x00", strings.Repeat("x", 65)}
	for _, in := range bad {
		if got, err := ParseWorkerID(in); err == nil {
			t.Errorf("ParseWorkerID(%q) = %q, want error (ids become path components)", in, got)
		}
	}
}

func TestParseFailpoint(t *testing.T) {
	if h, c, err := ParseFailpoint(""); err != nil || h != "" || c != 0 {
		t.Errorf("empty failpoint = (%q, %d, %v), want disabled", h, c, err)
	}
	h, c, err := ParseFailpoint("00deadbeef001122@4096")
	if err != nil || h != "00deadbeef001122" || c != 4096 {
		t.Errorf("ParseFailpoint = (%q, %d, %v), want hash@4096", h, c, err)
	}
	if h, c, err = ParseFailpoint(" 00deadbeef001122@0 "); err != nil || c != 0 || h == "" {
		t.Errorf("cycle 0 (kill at first progress) rejected: (%q, %d, %v)", h, c, err)
	}
	bad := []string{
		"00deadbeef001122",       // no cycle
		"deadbeef@100",           // short hash
		"00DEADBEEF001122@100",   // uppercase hex
		"00deadbeef00112g@100",   // not hex
		"00deadbeef001122@-1",    // negative cycle
		"00deadbeef001122@ten",   // not a number
		"00deadbeef001122@1@2@3", // the last @ splits: "...22@1@2" is no hash
	}
	for _, in := range bad {
		if _, _, err := ParseFailpoint(in); err == nil {
			t.Errorf("ParseFailpoint(%q) accepted, want error", in)
		}
	}
}
