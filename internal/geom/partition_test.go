package geom

import "testing"

func TestPartitionBasics(t *testing.T) {
	s := MustShape(8, 16, 16)
	p := s.Partition(4)
	if p.Dim != 2 {
		t.Errorf("Partition of %s cut dim %d, want the longest (ties high) dim 2", s, p.Dim)
	}
	if p.Slabs() != 4 {
		t.Fatalf("Slabs() = %d, want 4", p.Slabs())
	}
	for i := 0; i < p.Slabs(); i++ {
		if w := p.SlabWidth(i); w != 4 {
			t.Errorf("slab %d width %d, want 4", i, w)
		}
	}
	if p.Bounds[0] != 0 || p.Bounds[p.Slabs()] != 16 {
		t.Errorf("bounds %v do not cover [0,16)", p.Bounds)
	}
}

func TestPartitionUneven(t *testing.T) {
	// 7 points over 3 slabs: widths 3,2,2 and every point owned by exactly
	// the slab whose range covers it.
	p := MustShape(7).PartitionAlong(0, 3)
	widths := []int{3, 2, 2}
	for i, w := range widths {
		if p.SlabWidth(i) != w {
			t.Errorf("slab %d width %d, want %d", i, p.SlabWidth(i), w)
		}
	}
	owners := []int{0, 0, 0, 1, 1, 2, 2}
	for v, want := range owners {
		if got := p.SlabOf(Coord{v}); got != want {
			t.Errorf("SlabOf(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestPartitionClamps(t *testing.T) {
	s := MustShape(4, 3)
	if p := s.Partition(0); p.Slabs() != 1 {
		t.Errorf("Partition(0) yields %d slabs, want 1", p.Slabs())
	}
	// The longest dimension here is dim 0 (extent 4); asking for 100 slabs
	// clamps to one slab per point.
	if p := s.Partition(100); p.Slabs() != 4 {
		t.Errorf("Partition(100) yields %d slabs, want 4", p.Slabs())
	}
	p := s.PartitionAlong(1, 9)
	if p.Slabs() != 3 {
		t.Errorf("PartitionAlong(1, 9) yields %d slabs, want 3", p.Slabs())
	}
	for i := 0; i < p.Slabs(); i++ {
		if p.SlabWidth(i) != 1 {
			t.Errorf("slab %d width %d, want 1", i, p.SlabWidth(i))
		}
	}
}

func TestPartitionCoversEveryPoint(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5} {
		s := MustShape(5, 4, 3)
		p := s.Partition(n)
		counts := make([]int, p.Slabs())
		s.Enumerate(func(c Coord) bool {
			counts[p.SlabOf(c)]++
			return true
		})
		total := 0
		for i, c := range counts {
			if c == 0 {
				t.Errorf("n=%d: slab %d owns no points", n, i)
			}
			total += c
		}
		if total != s.Size() {
			t.Errorf("n=%d: %d points assigned, lattice has %d", n, total, s.Size())
		}
	}
}
