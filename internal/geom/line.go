package geom

import "fmt"

// Line identifies one axis-aligned line of lattice points: the set of
// coordinates that agree with Fixed in every dimension except Dim. In the MD
// crossbar network, each Line is served by exactly one crossbar switch.
type Line struct {
	// Dim is the dimension along which the line runs.
	Dim int
	// Fixed holds the coordinates of the line in every dimension other than
	// Dim; entry Dim is zero by convention.
	Fixed Coord
}

// LineOf returns the line through c that runs along dimension dim.
func LineOf(c Coord, dim int) Line {
	c[dim] = 0
	return Line{Dim: dim, Fixed: c}
}

// Contains reports whether c lies on the line within a lattice of
// dimensionality dims.
func (l Line) Contains(c Coord, dims int) bool {
	for i := 0; i < dims; i++ {
		if i == l.Dim {
			continue
		}
		if c[i] != l.Fixed[i] {
			return false
		}
	}
	return true
}

// Point returns the lattice point at position v along the line.
func (l Line) Point(v int) Coord {
	c := l.Fixed
	c[l.Dim] = v
	return c
}

// String renders the line, e.g. "dim0@(_,1)".
func (l Line) String() string {
	return fmt.Sprintf("dim%d@%s", l.Dim, l.Fixed.String())
}

// Lines enumerates every axis-aligned line of the lattice, grouped by
// dimension: first all dim-0 lines, then dim-1, and so on. Within one
// dimension, lines appear in Index order of their fixed coordinates.
func (s Shape) Lines() []Line {
	var out []Line
	for dim := 0; dim < s.Dims(); dim++ {
		out = append(out, s.LinesAlong(dim)...)
	}
	return out
}

// LinesAlong enumerates the lines that run along the given dimension.
func (s Shape) LinesAlong(dim int) []Line {
	// The fixed coordinates form a lattice with dimension dim collapsed.
	reduced := make(Shape, 0, s.Dims())
	for i, e := range s {
		if i == dim {
			continue
		}
		reduced = append(reduced, e)
	}
	count := 1
	for _, e := range reduced {
		count *= e
	}
	out := make([]Line, 0, count)
	for idx := 0; idx < count; idx++ {
		rc := Shape(reduced).CoordOf(idx)
		var fixed Coord
		j := 0
		for i := 0; i < s.Dims(); i++ {
			if i == dim {
				continue
			}
			fixed[i] = rc[j]
			j++
		}
		out = append(out, Line{Dim: dim, Fixed: fixed})
	}
	return out
}

// LineIndex returns a dense index for the line within the per-dimension
// grouping produced by LinesAlong, i.e. the Index of its fixed coordinates in
// the reduced lattice.
func (s Shape) LineIndex(l Line) int {
	stride := 1
	idx := 0
	for i := 0; i < s.Dims(); i++ {
		if i == l.Dim {
			continue
		}
		idx += l.Fixed[i] * stride
		stride *= s[i]
	}
	return idx
}

// LineCount reports the number of lines along dim, i.e. Size()/s[dim].
func (s Shape) LineCount(dim int) int {
	return s.Size() / s[dim]
}
