// Package geom provides the d-dimensional lattice arithmetic that underlies
// the multi-dimensional crossbar network: coordinates, rectangular shapes,
// linearization, and axis-aligned lines (the sets of lattice points joined by
// one crossbar switch).
package geom

import (
	"fmt"
	"strconv"
	"strings"
)

// MaxDims is the largest number of dimensions supported. The SR2201 itself is
// a three-dimensional machine; four dimensions is comfortably beyond anything
// the paper evaluates while keeping fixed-size arrays cheap.
const MaxDims = 8

// Coord is a point of the d-dimensional lattice. Only the first Dims(shape)
// entries are meaningful for a given network; the rest must be zero.
type Coord [MaxDims]int

// Shape describes the extent of the lattice: Shape[i] is the number of
// lattice points along dimension i (the paper's n_i).
type Shape []int

// NewShape validates the per-dimension extents and returns them as a Shape.
// Every extent must be at least 1 and the dimensionality must lie in
// [1, MaxDims].
func NewShape(extents ...int) (Shape, error) {
	if len(extents) == 0 {
		return nil, fmt.Errorf("geom: shape needs at least one dimension")
	}
	if len(extents) > MaxDims {
		return nil, fmt.Errorf("geom: %d dimensions exceeds maximum %d", len(extents), MaxDims)
	}
	s := make(Shape, len(extents))
	for i, e := range extents {
		if e < 1 {
			return nil, fmt.Errorf("geom: dimension %d has non-positive extent %d", i, e)
		}
		s[i] = e
	}
	return s, nil
}

// MustShape is NewShape for statically known good extents; it panics on error.
func MustShape(extents ...int) Shape {
	s, err := NewShape(extents...)
	if err != nil {
		panic(err)
	}
	return s
}

// Dims reports the dimensionality d of the lattice.
func (s Shape) Dims() int { return len(s) }

// Equal reports whether two shapes have identical dimensionality and
// extents.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Size reports the total number of lattice points n = n1*n2*...*nd.
func (s Shape) Size() int {
	n := 1
	for _, e := range s {
		n *= e
	}
	return n
}

// Contains reports whether c lies inside the lattice (and has zero entries in
// unused dimensions).
func (s Shape) Contains(c Coord) bool {
	for i := 0; i < len(s); i++ {
		if c[i] < 0 || c[i] >= s[i] {
			return false
		}
	}
	for i := len(s); i < MaxDims; i++ {
		if c[i] != 0 {
			return false
		}
	}
	return true
}

// Index linearizes c in row-major order with dimension 0 fastest-varying,
// matching the order produced by Enumerate.
func (s Shape) Index(c Coord) int {
	idx := 0
	stride := 1
	for i := 0; i < len(s); i++ {
		idx += c[i] * stride
		stride *= s[i]
	}
	return idx
}

// CoordOf is the inverse of Index.
func (s Shape) CoordOf(idx int) Coord {
	var c Coord
	for i := 0; i < len(s); i++ {
		c[i] = idx % s[i]
		idx /= s[i]
	}
	return c
}

// Enumerate calls fn for every lattice point in Index order. If fn returns
// false, enumeration stops early.
func (s Shape) Enumerate(fn func(Coord) bool) {
	n := s.Size()
	for i := 0; i < n; i++ {
		if !fn(s.CoordOf(i)) {
			return
		}
	}
}

// Equal reports whether two coordinates are identical.
func (c Coord) Equal(o Coord) bool { return c == o }

// WithDim returns a copy of c with dimension dim replaced by v.
func (c Coord) WithDim(dim, v int) Coord {
	c[dim] = v
	return c
}

// String renders the coordinate for a d-dimensional lattice, e.g. "(2,0,1)".
func (c Coord) String() string {
	// Without knowing d we print all dimensions up to the last non-zero one,
	// and at least two.
	last := 1
	for i := 2; i < MaxDims; i++ {
		if c[i] != 0 {
			last = i
		}
	}
	var b strings.Builder
	b.WriteByte('(')
	for i := 0; i <= last; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(c[i]))
	}
	b.WriteByte(')')
	return b.String()
}

// In renders the coordinate using exactly dims dimensions, e.g. "(2,0,1)".
func (c Coord) In(dims int) string {
	var b strings.Builder
	b.WriteByte('(')
	for i := 0; i < dims; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(c[i]))
	}
	b.WriteByte(')')
	return b.String()
}

// Distance reports the number of dimensions in which c and o differ. In the
// MD crossbar network this is exactly the number of crossbar hops between the
// two PEs under dimension-order routing (the paper's "maximum of d hops").
func (c Coord) Distance(o Coord) int {
	d := 0
	for i := 0; i < MaxDims; i++ {
		if c[i] != o[i] {
			d++
		}
	}
	return d
}

// FirstDiff returns the lowest dimension (< dims) in which c and o differ,
// or -1 if they agree in all of them. Dimension-order routing corrects
// dimensions in increasing order, so this is the next dimension to route in.
func (c Coord) FirstDiff(o Coord, dims int) int {
	for i := 0; i < dims; i++ {
		if c[i] != o[i] {
			return i
		}
	}
	return -1
}

// String renders the shape as "n1xn2x...", e.g. "4x3".
func (s Shape) String() string {
	var b strings.Builder
	for i, e := range s {
		if i > 0 {
			b.WriteByte('x')
		}
		b.WriteString(strconv.Itoa(e))
	}
	return b.String()
}
