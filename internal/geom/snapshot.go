package geom

import "sr2201/internal/checkpoint"

// Snapshot codecs for the lattice primitives. Field order is part of the
// checkpoint v1 format (see the version-bump rule in package checkpoint).

// EncodeCoord appends a lattice coordinate.
func EncodeCoord(e *checkpoint.Encoder, c Coord) {
	for _, v := range c {
		e.Int(int64(v))
	}
}

// DecodeCoord reads a lattice coordinate.
func DecodeCoord(d *checkpoint.Decoder) Coord {
	var c Coord
	for i := range c {
		c[i] = d.IntAsInt()
	}
	return c
}

// EncodeLine appends an axis-aligned line.
func EncodeLine(e *checkpoint.Encoder, l Line) {
	e.Int(int64(l.Dim))
	EncodeCoord(e, l.Fixed)
}

// DecodeLine reads an axis-aligned line.
func DecodeLine(d *checkpoint.Decoder) Line {
	var l Line
	l.Dim = d.IntAsInt()
	l.Fixed = DecodeCoord(d)
	return l
}
