package geom

import "fmt"

// Partition splits a lattice into contiguous slabs perpendicular to one
// dimension. It is the geometric half of shard planning: the network layers
// map each slab to one engine shard, so every intra-slab link stays
// shard-local and only the crossbars that run along the cut dimension carry
// cross-shard traffic.
type Partition struct {
	// Shape is the lattice being partitioned.
	Shape Shape
	// Dim is the dimension perpendicular to the cuts.
	Dim int
	// Bounds has one entry per slab boundary: slab s covers the coordinate
	// range [Bounds[s], Bounds[s+1]) along Dim. len(Bounds) == Slabs()+1,
	// Bounds[0] == 0 and Bounds[Slabs()] == Shape[Dim].
	Bounds []int
}

// Slabs reports the number of slabs.
func (p Partition) Slabs() int { return len(p.Bounds) - 1 }

// SlabOf returns the slab index owning coordinate c.
func (p Partition) SlabOf(c Coord) int {
	v := c[p.Dim]
	// Slab widths differ by at most one, so a direct computation would be
	// possible, but the bounds walk stays correct for any future uneven
	// split and the slab count is tiny.
	for s := 1; s < len(p.Bounds); s++ {
		if v < p.Bounds[s] {
			return s - 1
		}
	}
	panic(fmt.Sprintf("geom: coordinate %s outside partition of %s", c.In(p.Shape.Dims()), p.Shape))
}

// SlabWidth reports the extent of slab s along the cut dimension.
func (p Partition) SlabWidth(s int) int { return p.Bounds[s+1] - p.Bounds[s] }

// Partition cuts the lattice into n contiguous slabs perpendicular to its
// longest dimension (ties broken toward the highest dimension, which varies
// slowest in Index order, so slabs are contiguous index ranges). Slab widths
// differ by at most one point. n is clamped to [1, extent of the cut
// dimension]: asking for more slabs than the dimension has points yields one
// slab per point.
func (s Shape) Partition(n int) Partition {
	dim := 0
	for d := 1; d < s.Dims(); d++ {
		if s[d] >= s[dim] {
			dim = d
		}
	}
	return s.PartitionAlong(dim, n)
}

// PartitionAlong cuts the lattice into n near-equal contiguous slabs
// perpendicular to the given dimension, clamping n to [1, s[dim]].
func (s Shape) PartitionAlong(dim, n int) Partition {
	if dim < 0 || dim >= s.Dims() {
		panic(fmt.Sprintf("geom: PartitionAlong dimension %d of %s", dim, s))
	}
	extent := s[dim]
	if n < 1 {
		n = 1
	}
	if n > extent {
		n = extent
	}
	// Slab widths extent/n, with the first extent%n slabs one point wider.
	bounds := make([]int, n+1)
	base, extra := extent/n, extent%n
	for i := 1; i <= n; i++ {
		w := base
		if i <= extra {
			w++
		}
		bounds[i] = bounds[i-1] + w
	}
	return Partition{Shape: s, Dim: dim, Bounds: bounds}
}
