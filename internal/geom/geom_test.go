package geom

import (
	"testing"
	"testing/quick"
)

func TestNewShapeValidation(t *testing.T) {
	if _, err := NewShape(); err == nil {
		t.Error("empty shape accepted")
	}
	if _, err := NewShape(4, 0); err == nil {
		t.Error("zero extent accepted")
	}
	if _, err := NewShape(4, -1); err == nil {
		t.Error("negative extent accepted")
	}
	if _, err := NewShape(1, 1, 1, 1, 1, 1, 1, 1, 1); err == nil {
		t.Error("9-dimensional shape accepted")
	}
	s, err := NewShape(4, 3)
	if err != nil {
		t.Fatalf("NewShape(4,3): %v", err)
	}
	if s.Dims() != 2 || s.Size() != 12 {
		t.Errorf("got dims=%d size=%d, want 2, 12", s.Dims(), s.Size())
	}
}

func TestMustShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustShape(0) did not panic")
		}
	}()
	MustShape(0)
}

func TestIndexRoundTrip(t *testing.T) {
	shapes := []Shape{
		MustShape(1),
		MustShape(7),
		MustShape(4, 3),
		MustShape(2, 2, 2),
		MustShape(3, 4, 5),
		MustShape(2, 3, 2, 3),
	}
	for _, s := range shapes {
		for i := 0; i < s.Size(); i++ {
			c := s.CoordOf(i)
			if !s.Contains(c) {
				t.Errorf("shape %v: CoordOf(%d)=%v outside shape", s, i, c)
			}
			if got := s.Index(c); got != i {
				t.Errorf("shape %v: Index(CoordOf(%d)) = %d", s, i, got)
			}
		}
	}
}

func TestIndexRowMajorOrder(t *testing.T) {
	s := MustShape(4, 3)
	// Dimension 0 varies fastest.
	want := []Coord{
		{0, 0}, {1, 0}, {2, 0}, {3, 0},
		{0, 1}, {1, 1}, {2, 1}, {3, 1},
		{0, 2}, {1, 2}, {2, 2}, {3, 2},
	}
	for i, w := range want {
		if got := s.CoordOf(i); got != w {
			t.Errorf("CoordOf(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestContains(t *testing.T) {
	s := MustShape(4, 3)
	cases := []struct {
		c    Coord
		want bool
	}{
		{Coord{0, 0}, true},
		{Coord{3, 2}, true},
		{Coord{4, 0}, false},
		{Coord{0, 3}, false},
		{Coord{-1, 0}, false},
		{Coord{0, 0, 1}, false}, // junk in unused dimension
	}
	for _, tc := range cases {
		if got := s.Contains(tc.c); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.c, got, tc.want)
		}
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	s := MustShape(4, 3)
	count := 0
	s.Enumerate(func(Coord) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("enumerated %d points, want 5", count)
	}
}

func TestEnumerateVisitsAllOnce(t *testing.T) {
	s := MustShape(3, 2, 2)
	seen := map[Coord]int{}
	s.Enumerate(func(c Coord) bool {
		seen[c]++
		return true
	})
	if len(seen) != s.Size() {
		t.Fatalf("visited %d distinct points, want %d", len(seen), s.Size())
	}
	for c, n := range seen {
		if n != 1 {
			t.Errorf("point %v visited %d times", c, n)
		}
	}
}

func TestDistanceAndFirstDiff(t *testing.T) {
	a := Coord{1, 2, 3}
	b := Coord{1, 5, 3}
	if d := a.Distance(b); d != 1 {
		t.Errorf("Distance = %d, want 1", d)
	}
	if fd := a.FirstDiff(b, 3); fd != 1 {
		t.Errorf("FirstDiff = %d, want 1", fd)
	}
	if fd := a.FirstDiff(a, 3); fd != -1 {
		t.Errorf("FirstDiff(self) = %d, want -1", fd)
	}
	c := Coord{0, 2, 4}
	if fd := a.FirstDiff(c, 3); fd != 0 {
		t.Errorf("FirstDiff = %d, want 0", fd)
	}
	// FirstDiff must ignore dimensions beyond dims.
	d := Coord{1, 2, 9}
	if fd := a.FirstDiff(d, 2); fd != -1 {
		t.Errorf("FirstDiff with dims=2 = %d, want -1", fd)
	}
}

func TestWithDim(t *testing.T) {
	a := Coord{1, 2, 3}
	b := a.WithDim(1, 7)
	if b != (Coord{1, 7, 3}) {
		t.Errorf("WithDim = %v", b)
	}
	if a != (Coord{1, 2, 3}) {
		t.Errorf("WithDim mutated receiver: %v", a)
	}
}

func TestCoordString(t *testing.T) {
	if got := (Coord{2, 1}).String(); got != "(2,1)" {
		t.Errorf("String = %q", got)
	}
	if got := (Coord{2, 0, 5}).String(); got != "(2,0,5)" {
		t.Errorf("String = %q", got)
	}
	if got := (Coord{2, 1}).In(3); got != "(2,1,0)" {
		t.Errorf("In(3) = %q", got)
	}
}

func TestLinesCoverLattice(t *testing.T) {
	for _, s := range []Shape{MustShape(4, 3), MustShape(2, 3, 4)} {
		for dim := 0; dim < s.Dims(); dim++ {
			lines := s.LinesAlong(dim)
			if len(lines) != s.LineCount(dim) {
				t.Fatalf("shape %v dim %d: %d lines, want %d", s, dim, len(lines), s.LineCount(dim))
			}
			// Every lattice point must lie on exactly one line per dimension.
			covered := map[Coord]int{}
			for _, l := range lines {
				for v := 0; v < s[dim]; v++ {
					p := l.Point(v)
					if !s.Contains(p) {
						t.Fatalf("line %v point %v outside shape %v", l, p, s)
					}
					if !l.Contains(p, s.Dims()) {
						t.Fatalf("line %v does not contain its own point %v", l, p)
					}
					covered[p]++
				}
			}
			if len(covered) != s.Size() {
				t.Fatalf("shape %v dim %d: lines cover %d points, want %d", s, dim, len(covered), s.Size())
			}
			for p, n := range covered {
				if n != 1 {
					t.Errorf("shape %v dim %d: point %v on %d lines", s, dim, p, n)
				}
			}
		}
	}
}

func TestLineOfAndIndex(t *testing.T) {
	s := MustShape(4, 3)
	c := Coord{2, 1}
	lx := LineOf(c, 0)
	if lx.Dim != 0 || lx.Fixed != (Coord{0, 1}) {
		t.Errorf("LineOf dim0 = %+v", lx)
	}
	ly := LineOf(c, 1)
	if ly.Dim != 1 || ly.Fixed != (Coord{2, 0}) {
		t.Errorf("LineOf dim1 = %+v", ly)
	}
	// LineIndex must be a bijection into [0, LineCount).
	for dim := 0; dim < 2; dim++ {
		seen := map[int]bool{}
		for _, l := range s.LinesAlong(dim) {
			idx := s.LineIndex(l)
			if idx < 0 || idx >= s.LineCount(dim) {
				t.Fatalf("LineIndex(%v) = %d out of range", l, idx)
			}
			if seen[idx] {
				t.Fatalf("LineIndex(%v) = %d duplicated", l, idx)
			}
			seen[idx] = true
		}
	}
}

func TestLinesGroupedByDimension(t *testing.T) {
	s := MustShape(2, 3)
	all := s.Lines()
	if len(all) != s.LineCount(0)+s.LineCount(1) {
		t.Fatalf("Lines() returned %d lines", len(all))
	}
	for i, l := range all {
		wantDim := 0
		if i >= s.LineCount(0) {
			wantDim = 1
		}
		if l.Dim != wantDim {
			t.Errorf("line %d has dim %d, want %d", i, l.Dim, wantDim)
		}
	}
}

// Property: Index/CoordOf round-trips on random coordinates.
func TestQuickIndexRoundTrip(t *testing.T) {
	s := MustShape(5, 4, 3)
	f := func(raw uint32) bool {
		idx := int(raw) % s.Size()
		return s.Index(s.CoordOf(idx)) == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Distance is symmetric and zero iff equal; FirstDiff agrees with
// Distance==0.
func TestQuickDistanceProperties(t *testing.T) {
	s := MustShape(5, 4, 3)
	f := func(a, b uint32) bool {
		ca := s.CoordOf(int(a) % s.Size())
		cb := s.CoordOf(int(b) % s.Size())
		if ca.Distance(cb) != cb.Distance(ca) {
			return false
		}
		if (ca.Distance(cb) == 0) != (ca == cb) {
			return false
		}
		return (ca.FirstDiff(cb, 3) == -1) == (ca == cb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every point is on the line LineOf(point, dim) for every dim.
func TestQuickLineMembership(t *testing.T) {
	s := MustShape(4, 3, 2)
	f := func(raw uint32, dimRaw uint8) bool {
		c := s.CoordOf(int(raw) % s.Size())
		dim := int(dimRaw) % s.Dims()
		l := LineOf(c, dim)
		return l.Contains(c, s.Dims()) && l.Point(c[dim]) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
