package collective

import (
	"strings"
	"testing"

	"sr2201/internal/core"
	"sr2201/internal/fault"
	"sr2201/internal/geom"
)

func machine(t *testing.T, extents ...int) *core.Machine {
	t.Helper()
	m, err := core.NewMachine(core.Config{Shape: geom.MustShape(extents...), StallThreshold: 256})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestReduceCountsAndDeliveries(t *testing.T) {
	m := machine(t, 4, 4)
	root := geom.Coord{1, 2}
	res, err := Reduce(m, root, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 15 { // n-1 child->parent packets
		t.Errorf("messages = %d", res.Messages)
	}
	if res.Participants != 16 || res.Cycles <= 0 {
		t.Errorf("result = %+v", res)
	}
	// Every packet lands at a live PE; the last wave's arrivals are at root.
	for _, d := range m.Deliveries() {
		if d.Broadcast {
			t.Errorf("unexpected broadcast delivery %+v", d)
		}
	}
	// The tree has log2-ish depth: waves between 2 and 5 for 16 PEs.
	if res.Waves < 2 || res.Waves > 5 {
		t.Errorf("waves = %d", res.Waves)
	}
}

func TestBroadcastCollective(t *testing.T) {
	m := machine(t, 4, 3)
	res, err := Broadcast(m, geom.Coord{2, 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Copies != 12 || res.Participants != 12 {
		t.Errorf("result = %+v", res)
	}
}

func TestAllreduceCheaperThanAllBroadcast(t *testing.T) {
	shape := geom.MustShape(6, 6)
	m := machine(t, 6, 6)
	res, err := Allreduce(m, geom.Coord{0, 0}, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Baseline: every PE broadcasts (serialized at the S-XB).
	m2 := machine(t, 6, 6)
	start := m2.Cycle()
	shape.Enumerate(func(c geom.Coord) bool {
		if _, _, err := m2.Broadcast(c, 8); err != nil {
			t.Fatal(err)
		}
		return true
	})
	if out := m2.Run(2_000_000); !out.Drained {
		t.Fatal("all-broadcast did not drain")
	}
	allBcast := m2.Cycle() - start
	if res.Cycles >= allBcast {
		t.Errorf("allreduce %d cycles not cheaper than %d-broadcast %d cycles", res.Cycles, shape.Size(), allBcast)
	}
}

func TestBarrier(t *testing.T) {
	m := machine(t, 3, 3)
	res, err := Barrier(m, geom.Coord{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Participants != 9 || res.Copies != 9 {
		t.Errorf("result = %+v", res)
	}
}

func TestGatherScatter(t *testing.T) {
	m := machine(t, 4, 4)
	root := geom.Coord{3, 3}
	res, err := Gather(m, root, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 15 {
		t.Errorf("gather messages = %d", res.Messages)
	}
	got := 0
	for _, d := range m.Deliveries() {
		if d.At == root {
			got++
		}
	}
	if got != 15 {
		t.Errorf("root received %d", got)
	}
	m.ResetStats()
	res, err = Scatter(m, root, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 15 || res.Waves != 1 {
		t.Errorf("scatter result = %+v", res)
	}
	dests := map[geom.Coord]bool{}
	for _, d := range m.Deliveries() {
		dests[d.At] = true
	}
	if len(dests) != 15 {
		t.Errorf("scatter reached %d PEs", len(dests))
	}
}

func TestAllToAll(t *testing.T) {
	m := machine(t, 3, 3)
	res, err := AllToAll(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 9*8 {
		t.Errorf("messages = %d", res.Messages)
	}
	if res.Waves != 8 {
		t.Errorf("waves = %d", res.Waves)
	}
	// Every ordered pair delivered exactly once.
	pair := map[[2]geom.Coord]int{}
	for _, d := range m.Deliveries() {
		pair[[2]geom.Coord{d.Src, d.At}]++
	}
	if len(pair) != 72 {
		t.Fatalf("distinct pairs = %d", len(pair))
	}
	for p, n := range pair {
		if n != 1 {
			t.Errorf("pair %v delivered %d times", p, n)
		}
	}
}

// A single faulty router removes exactly one participant from every
// collective; the rest complete.
func TestCollectivesFaultAware(t *testing.T) {
	build := func() *core.Machine {
		m := machine(t, 4, 4)
		if err := m.AddFault(fault.RouterFault(geom.Coord{2, 2})); err != nil {
			t.Fatal(err)
		}
		return m
	}
	root := geom.Coord{0, 0}

	if res, err := Reduce(build(), root, 4); err != nil || res.Participants != 15 || res.Messages != 14 {
		t.Errorf("reduce: %+v, %v", res, err)
	}
	if res, err := Broadcast(build(), root, 4); err != nil || res.Copies != 15 {
		t.Errorf("broadcast: %+v, %v", res, err)
	}
	if res, err := Allreduce(build(), root, 4); err != nil || res.Participants != 15 {
		t.Errorf("allreduce: %+v, %v", res, err)
	}
	if res, err := Gather(build(), root, 4); err != nil || res.Messages != 14 {
		t.Errorf("gather: %+v, %v", res, err)
	}
	if res, err := AllToAll(build(), 4); err != nil || res.Messages != 15*14 {
		t.Errorf("alltoall: %+v, %v", res, err)
	}
	// A dead root is rejected.
	if _, err := Reduce(build(), geom.Coord{2, 2}, 4); err == nil {
		t.Error("dead root accepted")
	}
}

func TestCollectiveRequiresQuiescence(t *testing.T) {
	m := machine(t, 3, 3)
	if _, err := m.Send(geom.Coord{0, 0}, geom.Coord{2, 2}, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := Reduce(m, geom.Coord{0, 0}, 4); err == nil || !strings.Contains(err.Error(), "quiescent") {
		t.Errorf("non-quiescent machine accepted: %v", err)
	}
}

func TestSinglePEEdgeCases(t *testing.T) {
	m := machine(t, 1)
	if res, err := Reduce(m, geom.Coord{}, 4); err != nil || res.Messages != 0 || res.Participants != 1 {
		t.Errorf("1-PE reduce: %+v, %v", res, err)
	}
	if _, err := AllToAll(m, 4); err == nil {
		t.Error("1-PE all-to-all accepted")
	}
	if res, err := Broadcast(m, geom.Coord{}, 4); err != nil || res.Copies != 1 {
		t.Errorf("1-PE broadcast: %+v, %v", res, err)
	}
}

func TestResultString(t *testing.T) {
	s := Result{Cycles: 10, Messages: 3, Copies: 4, Participants: 5, Waves: 2}.String()
	for _, want := range []string{"cycles=10", "messages=3", "copies=4", "participants=5", "waves=2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q: %s", want, s)
		}
	}
}
