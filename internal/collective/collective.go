// Package collective implements the communication collectives that
// large-scale numerical applications — the paper's motivating workloads —
// run on the SR2201 interconnect: barrier, reduce, broadcast, allreduce,
// gather, scatter and all-to-all.
//
// Each collective is a synchronous schedule of point-to-point sends and
// hardware broadcasts: a sequence of waves, each drained to completion
// before the next starts (the barrier an MPI-style runtime would impose).
// All collectives are fault-aware: PEs whose relay switch is faulty are
// excluded, and tree schedules are rebuilt over the surviving PEs, so a
// single network fault degrades a collective by exactly one participant —
// the operational continuity the paper's facility is for.
package collective

import (
	"fmt"

	"sr2201/internal/core"
	"sr2201/internal/geom"
)

// waveBudget bounds each drained wave.
const waveBudget = 2_000_000

// Result summarizes one collective operation.
type Result struct {
	// Cycles is the simulated time the operation took (injection of the
	// first wave to drain of the last).
	Cycles int64
	// Messages counts point-to-point packets sent.
	Messages int
	// Copies counts broadcast copies delivered.
	Copies int
	// Participants is the number of live PEs included.
	Participants int
	// Waves is the number of drained phases.
	Waves int
}

// String renders the headline numbers.
func (r Result) String() string {
	return fmt.Sprintf("cycles=%d messages=%d copies=%d participants=%d waves=%d",
		r.Cycles, r.Messages, r.Copies, r.Participants, r.Waves)
}

// op drives a schedule against a quiescent machine.
type op struct {
	m     *core.Machine
	res   Result
	start int64
	err   error
}

func begin(m *core.Machine) (*op, error) {
	if !m.Engine().Quiescent() {
		return nil, fmt.Errorf("collective: machine must be quiescent")
	}
	return &op{m: m, start: m.Cycle()}, nil
}

// alive lists live PEs in index order.
func alive(m *core.Machine) []geom.Coord {
	var out []geom.Coord
	m.Shape().Enumerate(func(c geom.Coord) bool {
		if m.Alive(c) {
			out = append(out, c)
		}
		return true
	})
	return out
}

// send queues one point-to-point packet within the current wave.
func (o *op) send(src, dst geom.Coord, size int) {
	if o.err != nil || src == dst {
		return
	}
	if _, err := o.m.Send(src, dst, size); err != nil {
		o.err = fmt.Errorf("collective: %v -> %v: %w", src, dst, err)
		return
	}
	o.res.Messages++
}

// drain completes the current wave.
func (o *op) drain() {
	if o.err != nil {
		return
	}
	out := o.m.Run(waveBudget)
	if !out.Drained {
		o.err = fmt.Errorf("collective: wave did not drain (deadlocked=%v at cycle %d)", out.Deadlocked, out.Cycle)
		return
	}
	o.res.Waves++
}

// finish closes the operation.
func (o *op) finish(participants int) (Result, error) {
	if o.err != nil {
		return Result{}, o.err
	}
	o.res.Cycles = o.m.Cycle() - o.start
	o.res.Participants = participants
	return o.res, nil
}

// treeLevels builds a binary-tree schedule over the live PEs (tree index =
// rank in the alive list), returning for each level the (child, parent)
// rank pairs, deepest level first.
func treeLevels(n int) [][][2]int {
	if n <= 1 {
		return nil
	}
	level := func(i int) int {
		l := 0
		for i > 0 {
			i = (i - 1) / 2
			l++
		}
		return l
	}
	maxLevel := 0
	for i := 1; i < n; i++ {
		if l := level(i); l > maxLevel {
			maxLevel = l
		}
	}
	levels := make([][][2]int, 0, maxLevel)
	for l := maxLevel; l >= 1; l-- {
		var pairs [][2]int
		for i := 1; i < n; i++ {
			if level(i) == l {
				pairs = append(pairs, [2]int{i, (i - 1) / 2})
			}
		}
		levels = append(levels, pairs)
	}
	return levels
}

// rankOf maps a root coordinate to its rank in the alive list (rank 0 by
// swapping): the returned slice has the root first.
func ranked(m *core.Machine, root geom.Coord) ([]geom.Coord, error) {
	pes := alive(m)
	if len(pes) == 0 {
		return nil, fmt.Errorf("collective: no live PEs")
	}
	if !m.Alive(root) {
		return nil, fmt.Errorf("collective: root %v is dead", root)
	}
	for i, c := range pes {
		if c == root {
			pes[0], pes[i] = pes[i], pes[0]
			return pes, nil
		}
	}
	return nil, fmt.Errorf("collective: root %v outside shape", root)
}

// Reduce runs a binary-tree reduction of one value per PE to root: each
// level is one wave of child-to-parent packets.
func Reduce(m *core.Machine, root geom.Coord, size int) (Result, error) {
	pes, err := ranked(m, root)
	if err != nil {
		return Result{}, err
	}
	o, err := begin(m)
	if err != nil {
		return Result{}, err
	}
	for _, pairs := range treeLevels(len(pes)) {
		for _, p := range pairs {
			o.send(pes[p[0]], pes[p[1]], size)
		}
		o.drain()
	}
	return o.finish(len(pes))
}

// Broadcast distributes one value from root to every live PE using the
// hardware broadcast facility.
func Broadcast(m *core.Machine, root geom.Coord, size int) (Result, error) {
	if !m.Alive(root) {
		return Result{}, fmt.Errorf("collective: root %v is dead", root)
	}
	o, err := begin(m)
	if err != nil {
		return Result{}, err
	}
	_, covered, err := m.Broadcast(root, size)
	if err != nil {
		return Result{}, fmt.Errorf("collective: broadcast from %v: %w", root, err)
	}
	o.drain()
	res, err := o.finish(len(alive(m)))
	res.Copies = covered
	return res, err
}

// Allreduce reduces to root and broadcasts the result back: the pattern the
// S-XB facility makes cheap (one broadcast instead of n).
func Allreduce(m *core.Machine, root geom.Coord, size int) (Result, error) {
	r1, err := Reduce(m, root, size)
	if err != nil {
		return Result{}, err
	}
	r2, err := Broadcast(m, root, size)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Cycles:       r1.Cycles + r2.Cycles,
		Messages:     r1.Messages,
		Copies:       r2.Copies,
		Participants: r1.Participants,
		Waves:        r1.Waves + r2.Waves,
	}, nil
}

// Barrier synchronizes every live PE: a tree reduction of empty tokens
// followed by a hardware broadcast of the release.
func Barrier(m *core.Machine, root geom.Coord) (Result, error) {
	return Allreduce(m, root, 1)
}

// Gather collects one packet from every live PE at root. The arrivals
// serialize on the root's PE channel; the schedule staggers senders by
// crossbar distance into waves to bound in-flight convergence.
func Gather(m *core.Machine, root geom.Coord, size int) (Result, error) {
	pes, err := ranked(m, root)
	if err != nil {
		return Result{}, err
	}
	o, err := begin(m)
	if err != nil {
		return Result{}, err
	}
	// Waves by distance: 1-hop senders first, then 2-hop, ...
	dims := m.Shape().Dims()
	for d := 0; d <= dims; d++ {
		any := false
		for _, c := range pes[1:] {
			if c.Distance(root) == d {
				o.send(c, root, size)
				any = true
			}
		}
		if any {
			o.drain()
		}
	}
	return o.finish(len(pes))
}

// Scatter distributes a distinct packet from root to every live PE.
func Scatter(m *core.Machine, root geom.Coord, size int) (Result, error) {
	pes, err := ranked(m, root)
	if err != nil {
		return Result{}, err
	}
	o, err := begin(m)
	if err != nil {
		return Result{}, err
	}
	for _, c := range pes[1:] {
		o.send(root, c, size)
	}
	o.drain()
	return o.finish(len(pes))
}

// AllToAll exchanges one packet between every ordered pair of live PEs,
// scheduled as n-1 rotation phases (phase k: rank i sends to rank i+k) so
// each phase is a permutation with no endpoint convergence.
func AllToAll(m *core.Machine, size int) (Result, error) {
	pes := alive(m)
	if len(pes) < 2 {
		return Result{}, fmt.Errorf("collective: all-to-all needs at least two live PEs")
	}
	o, err := begin(m)
	if err != nil {
		return Result{}, err
	}
	n := len(pes)
	for k := 1; k < n; k++ {
		for i := 0; i < n; i++ {
			o.send(pes[i], pes[(i+k)%n], size)
		}
		o.drain()
	}
	return o.finish(n)
}
