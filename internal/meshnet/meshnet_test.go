package meshnet

import (
	"testing"

	"sr2201/internal/engine"
	"sr2201/internal/geom"
	"sr2201/internal/traffic"
)

var _ traffic.Target = (*Net)(nil)

func mustNet(t *testing.T, kind Kind, shape geom.Shape) *Net {
	t.Helper()
	n, err := New(Config{Kind: kind, Shape: shape, StallThreshold: 128})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Kind: Mesh, Shape: geom.MustShape(4)}); err == nil {
		t.Error("1D shape accepted")
	}
	if _, err := New(Config{Kind: Torus, Shape: geom.MustShape(2, 4)}); err == nil {
		t.Error("extent-2 torus accepted")
	}
	if _, err := New(Config{Kind: Mesh, Shape: geom.MustShape(2, 2)}); err != nil {
		t.Errorf("2x2 mesh rejected: %v", err)
	}
}

func TestKindString(t *testing.T) {
	if Mesh.String() != "mesh" || Torus.String() != "torus" || TorusNoVC.String() != "torus-novc" {
		t.Error("kind names wrong")
	}
}

func TestMeshAllPairs(t *testing.T) {
	n := mustNet(t, Mesh, geom.MustShape(4, 4))
	shape := n.Shape()
	count := 0
	shape.Enumerate(func(src geom.Coord) bool {
		shape.Enumerate(func(dst geom.Coord) bool {
			if src == dst {
				return true
			}
			if _, err := n.Send(src, dst, 3); err != nil {
				t.Fatal(err)
			}
			count++
			return true
		})
		return true
	})
	out := n.Run(200_000)
	if !out.Drained {
		t.Fatalf("outcome %+v\n%s", out, out.Report.Describe())
	}
	if len(n.Deliveries()) != count {
		t.Fatalf("delivered %d/%d", len(n.Deliveries()), count)
	}
	for _, d := range n.Deliveries() {
		if d.Latency <= 0 {
			t.Errorf("latency %d", d.Latency)
		}
	}
}

func TestTorusAllPairs(t *testing.T) {
	n := mustNet(t, Torus, geom.MustShape(4, 4))
	shape := n.Shape()
	count := 0
	shape.Enumerate(func(src geom.Coord) bool {
		shape.Enumerate(func(dst geom.Coord) bool {
			if src == dst {
				return true
			}
			if _, err := n.Send(src, dst, 3); err != nil {
				t.Fatal(err)
			}
			count++
			return true
		})
		return true
	})
	out := n.Run(500_000)
	if !out.Drained {
		t.Fatalf("outcome %+v\n%s", out, out.Report.Describe())
	}
	if len(n.Deliveries()) != count {
		t.Fatalf("delivered %d/%d", len(n.Deliveries()), count)
	}
}

// Minimal torus routing must beat the mesh on wrap pairs: corner to corner
// on a 5x5 is 8 mesh hops but only 2 torus hops.
func TestTorusUsesWraparound(t *testing.T) {
	hops := func(kind Kind) int64 {
		n := mustNet(t, kind, geom.MustShape(5, 5))
		if _, err := n.Send(geom.Coord{0, 0}, geom.Coord{4, 4}, 1); err != nil {
			t.Fatal(err)
		}
		if out := n.Run(10_000); !out.Drained {
			t.Fatalf("%v did not drain", kind)
		}
		return n.Deliveries()[0].Latency
	}
	mesh, torus := hops(Mesh), hops(Torus)
	if torus >= mesh {
		t.Errorf("torus latency %d not below mesh %d", torus, mesh)
	}
}

// The dateline virtual channels keep the torus deadlock-free under traffic
// that saturates the rings; the same traffic wedges the no-VC torus.
func TestTorusVCPreventsDeadlock(t *testing.T) {
	load := func(kind Kind) (drained, deadlocked bool) {
		n := mustNet(t, kind, geom.MustShape(4, 4))
		shape := n.Shape()
		// All-to-all ring pressure: every PE sends a long packet halfway
		// around its row, all simultaneously, then the same down columns.
		shape.Enumerate(func(src geom.Coord) bool {
			dst := geom.Coord{(src[0] + 2) % 4, src[1]}
			if _, err := n.Send(src, dst, 24); err != nil {
				t.Fatal(err)
			}
			dst2 := geom.Coord{src[0], (src[1] + 2) % 4}
			if _, err := n.Send(src, dst2, 24); err != nil {
				t.Fatal(err)
			}
			return true
		})
		out := n.Run(500_000)
		return out.Drained, out.Deadlocked
	}
	drained, deadlocked := load(Torus)
	if !drained || deadlocked {
		t.Errorf("VC torus: drained=%v deadlocked=%v", drained, deadlocked)
	}
	drained, deadlocked = load(TorusNoVC)
	if drained || !deadlocked {
		t.Errorf("no-VC torus: drained=%v deadlocked=%v (want deadlock)", drained, deadlocked)
	}
}

func TestBroadcastUnsupported(t *testing.T) {
	n := mustNet(t, Mesh, geom.MustShape(3, 3))
	if _, _, err := n.Broadcast(geom.Coord{0, 0}, 4); err == nil {
		t.Error("mesh broadcast accepted")
	}
	if n.BroadcastLatency().Count() != 0 {
		t.Error("non-empty broadcast latency")
	}
}

func TestSendValidation(t *testing.T) {
	n := mustNet(t, Mesh, geom.MustShape(3, 3))
	if _, err := n.Send(geom.Coord{0, 0}, geom.Coord{5, 5}, 1); err == nil {
		t.Error("out-of-shape send accepted")
	}
	if !n.Alive(geom.Coord{1, 1}) {
		t.Error("baseline PE not alive")
	}
}

func TestDriverOnMesh(t *testing.T) {
	n := mustNet(t, Mesh, geom.MustShape(4, 4))
	d := traffic.Driver{
		M:       n,
		Pattern: traffic.Uniform{Shape: n.Shape()},
		Rate:    0.02,
		Size:    4,
		Seed:    11,
		Warmup:  200,
		Measure: 1000,
	}
	res := d.Run()
	if res.Delivered == 0 || !res.Drained || res.Deadlocked {
		t.Fatalf("result %+v", res)
	}
}

func TestResetStatsAndAccessors(t *testing.T) {
	n := mustNet(t, Mesh, geom.MustShape(3, 3))
	if _, err := n.Send(geom.Coord{0, 0}, geom.Coord{2, 2}, 2); err != nil {
		t.Fatal(err)
	}
	n.Run(10_000)
	if n.Latency().Count() != 1 {
		t.Fatal("precondition")
	}
	n.ResetStats()
	if n.Latency().Count() != 0 || len(n.Deliveries()) != 0 {
		t.Error("stats not reset")
	}
	if n.Kind() != Mesh || n.Engine() == nil {
		t.Error("accessors wrong")
	}
	if n.Router(geom.Coord{1, 2}) == nil || n.PE(geom.Coord{1, 2}) == nil {
		t.Error("node lookup failed")
	}
}

func TestTorusPhysicalChannelSharing(t *testing.T) {
	// Each torus direction pair must share one physical channel: count the
	// channels by checking a router's VC out ports are grouped. Indirect
	// check: two parallel streams on the two VCs of one link cannot exceed
	// one flit/cycle combined, so a single long stream and the same stream
	// split across VCs finish in comparable time. Here we just assert the
	// network functions with both VCs exercised (wrap + non-wrap traffic).
	n := mustNet(t, Torus, geom.MustShape(4, 4))
	if _, err := n.Send(geom.Coord{1, 0}, geom.Coord{2, 0}, 8); err != nil { // VC0 only
		t.Fatal(err)
	}
	if _, err := n.Send(geom.Coord{3, 0}, geom.Coord{0, 0}, 8); err != nil { // wrap: VC1
		t.Fatal(err)
	}
	out := n.Run(10_000)
	if !out.Drained {
		t.Fatalf("outcome %+v", out)
	}
	if len(n.Deliveries()) != 2 {
		t.Errorf("delivered %d", len(n.Deliveries()))
	}
}

func TestMeshDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		n, err := New(Config{Kind: Mesh, Shape: geom.MustShape(4, 4), Engine: engine.Config{BufferDepth: 1, LinkDelay: 1}})
		if err != nil {
			t.Fatal(err)
		}
		shape := n.Shape()
		shape.Enumerate(func(src geom.Coord) bool {
			if _, err := n.Send(src, geom.Coord{3 - src[0], 3 - src[1]}, 6); err != nil {
				t.Fatal(err)
			}
			return true
		})
		n.Run(100_000)
		return n.Engine().Cycle(), n.Engine().Moves()
	}
	c1, m1 := run()
	c2, m2 := run()
	if c1 != c2 || m1 != m2 {
		t.Errorf("non-deterministic: (%d,%d) vs (%d,%d)", c1, m1, c2, m2)
	}
}
