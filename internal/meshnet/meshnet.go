// Package meshnet builds the baseline interconnects the paper's Section 3
// compares the multi-dimensional crossbar against: a 2D mesh with
// dimension-order (XY) routing, and a 2D torus with minimal e-cube routing
// made deadlock-free by two dateline virtual channels per direction (Dally &
// Seitz), the scheme of the CRAY T3D the paper cites. A deliberately broken
// TorusNoVC variant demonstrates why the virtual channels are needed.
//
// Both run on the same simulation kernel as the crossbar, so latency,
// throughput and conflict numbers are directly comparable.
package meshnet

import (
	"fmt"

	"sr2201/internal/deadlock"
	"sr2201/internal/engine"
	"sr2201/internal/flit"
	"sr2201/internal/geom"
	"sr2201/internal/stats"
)

// Kind selects the baseline topology.
type Kind uint8

const (
	// Mesh is a 2D mesh with XY routing (deadlock-free).
	Mesh Kind = iota
	// Torus is a 2D torus with minimal e-cube routing and dateline virtual
	// channels (deadlock-free).
	Torus
	// TorusNoVC is the torus without virtual channels: minimal e-cube over
	// single channels, which deadlocks under load (kept as a demonstration).
	TorusNoVC
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Mesh:
		return "mesh"
	case Torus:
		return "torus"
	case TorusNoVC:
		return "torus-novc"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Directions and port numbering. Mesh routers have ports dirE..dirS plus
// local; torus routers have two virtual-channel ports per direction plus
// local.
const (
	dirE = 0 // +x
	dirW = 1 // -x
	dirN = 2 // +y
	dirS = 3 // -y
)

// Delivery records one consumed packet.
type Delivery struct {
	PacketID uint64
	Src, At  geom.Coord
	Cycle    int64
	Latency  int64
}

// Net is a built baseline network.
type Net struct {
	kind    Kind
	shape   geom.Shape
	eng     *engine.Engine
	pes     []*engine.Node
	routers []*engine.Node

	nextID         uint64
	deliveries     []Delivery
	latency        stats.Latency
	stallThreshold int64
}

type routerMeta struct {
	coord geom.Coord
	net   *Net
}

// Config parameterizes a baseline network.
type Config struct {
	Kind  Kind
	Shape geom.Shape // must be 2D
	// Engine overrides kernel parameters (zero value = engine.DefaultConfig).
	Engine engine.Config
	// StallThreshold configures the deadlock watchdog (0 = package default).
	StallThreshold int64
}

// New builds the baseline network.
func New(cfg Config) (*Net, error) {
	if cfg.Shape.Dims() != 2 {
		return nil, fmt.Errorf("meshnet: shape must be 2-dimensional, got %d", cfg.Shape.Dims())
	}
	if cfg.Kind != Mesh && (cfg.Shape[0] < 3 || cfg.Shape[1] < 3) {
		return nil, fmt.Errorf("meshnet: torus extents must be at least 3, got %v", cfg.Shape)
	}
	ecfg := cfg.Engine
	if ecfg == (engine.Config{}) {
		ecfg = engine.DefaultConfig()
	}
	n := &Net{kind: cfg.Kind, shape: cfg.Shape, eng: engine.New(ecfg), stallThreshold: cfg.StallThreshold}

	ports := 5 // 4 directions + local
	route := meshRoute
	if cfg.Kind == Torus {
		ports = 9 // 4 directions x 2 VCs + local
		route = torusVCRoute
	} else if cfg.Kind == TorusNoVC {
		route = torusNoVCRoute
	}

	size := cfg.Shape.Size()
	n.pes = make([]*engine.Node, size)
	n.routers = make([]*engine.Node, size)
	for i := 0; i < size; i++ {
		c := cfg.Shape.CoordOf(i)
		n.pes[i] = n.eng.AddEndpoint("PE"+c.In(2), c)
		n.routers[i] = n.eng.AddSwitch(fmt.Sprintf("%s%s", cfg.Kind, c.In(2)), ports, route, routerMeta{coord: c, net: n})
		n.eng.Connect(n.pes[i], 0, n.routers[i], ports-1)
	}

	nx, ny := cfg.Shape[0], cfg.Shape[1]
	link := func(a, b geom.Coord, dirAB, dirBA int) {
		ra, rb := n.Router(a), n.Router(b)
		if cfg.Kind == Torus {
			for vc := 0; vc < 2; vc++ {
				n.eng.Connect(ra, dirAB*2+vc, rb, dirBA*2+vc)
			}
			n.eng.SharePhysical(ra.Out[dirAB*2], ra.Out[dirAB*2+1])
			n.eng.SharePhysical(rb.Out[dirBA*2], rb.Out[dirBA*2+1])
		} else {
			n.eng.Connect(ra, dirAB, rb, dirBA)
		}
	}
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			c := geom.Coord{x, y}
			if x+1 < nx {
				link(c, geom.Coord{x + 1, y}, dirE, dirW)
			} else if cfg.Kind != Mesh && nx > 2 {
				link(c, geom.Coord{0, y}, dirE, dirW) // wraparound
			}
			if y+1 < ny {
				link(c, geom.Coord{x, y + 1}, dirN, dirS)
			} else if cfg.Kind != Mesh && ny > 2 {
				link(c, geom.Coord{x, 0}, dirN, dirS)
			}
		}
	}

	n.eng.OnDeliver = func(d engine.Delivery) {
		h := d.Header
		del := Delivery{
			PacketID: h.PacketID,
			Src:      h.Src,
			At:       d.At.Meta.(geom.Coord),
			Cycle:    d.Cycle,
			Latency:  d.Cycle - h.InjectedAt,
		}
		n.deliveries = append(n.deliveries, del)
		n.latency.Add(del.Latency)
	}
	return n, nil
}

// Kind reports the baseline topology kind.
func (n *Net) Kind() Kind { return n.kind }

// Shape reports the lattice shape.
func (n *Net) Shape() geom.Shape { return n.shape }

// Router returns the router at c.
func (n *Net) Router(c geom.Coord) *engine.Node { return n.routers[n.shape.Index(c)] }

// PE returns the endpoint at c.
func (n *Net) PE(c geom.Coord) *engine.Node { return n.pes[n.shape.Index(c)] }

// Engine exposes the simulation kernel.
func (n *Net) Engine() *engine.Engine { return n.eng }

// Alive always reports true: the baselines model no faults.
func (n *Net) Alive(geom.Coord) bool { return true }

// Send queues a point-to-point packet.
func (n *Net) Send(src, dst geom.Coord, size int) (uint64, error) {
	if !n.shape.Contains(src) || !n.shape.Contains(dst) {
		return 0, fmt.Errorf("meshnet: src %v or dst %v outside shape", src, dst)
	}
	if size <= 0 {
		size = 8
	}
	n.nextID++
	h := &flit.Header{PacketID: n.nextID, Src: src, Dst: dst}
	n.eng.InjectPacket(n.PE(src), h, size)
	return n.nextID, nil
}

// Broadcast is unsupported on the baselines (the paper's comparison systems
// broadcast in software).
func (n *Net) Broadcast(geom.Coord, int) (uint64, int, error) {
	return 0, 0, fmt.Errorf("meshnet: %s has no hardware broadcast", n.kind)
}

// Step advances one cycle.
func (n *Net) Step() { n.eng.Step() }

// Run steps until drain, deadlock, or budget exhaustion.
func (n *Net) Run(maxCycles int64) deadlock.Outcome {
	return deadlock.Run(n.eng, maxCycles, n.stallThreshold)
}

// Deliveries returns recorded deliveries.
func (n *Net) Deliveries() []Delivery { return n.deliveries }

// ResetStats clears recorded deliveries and latencies.
func (n *Net) ResetStats() {
	n.deliveries = nil
	n.latency = stats.Latency{}
}

// Latency returns the point-to-point latency distribution.
func (n *Net) Latency() *stats.Latency { return &n.latency }

// BroadcastLatency returns an empty distribution (no hardware broadcast).
func (n *Net) BroadcastLatency() *stats.Latency { return new(stats.Latency) }

// meshRoute is dimension-order XY routing on the mesh.
func meshRoute(nd *engine.Node, in int, h *flit.Header) (engine.Decision, error) {
	c := nd.Meta.(routerMeta).coord
	switch {
	case h.Dst[0] > c[0]:
		return engine.Decision{Outs: []int{dirE}}, nil
	case h.Dst[0] < c[0]:
		return engine.Decision{Outs: []int{dirW}}, nil
	case h.Dst[1] > c[1]:
		return engine.Decision{Outs: []int{dirN}}, nil
	case h.Dst[1] < c[1]:
		return engine.Decision{Outs: []int{dirS}}, nil
	default:
		return engine.Decision{Outs: []int{4}}, nil
	}
}

// torusDir picks the minimal direction and distance along one dimension of a
// torus (ties go the positive way).
func torusDir(from, to, extent int) (dir, dist int) {
	if from == to {
		return -1, 0
	}
	fwd := ((to - from) + extent) % extent
	bwd := extent - fwd
	if fwd <= bwd {
		return +1, fwd
	}
	return -1, bwd
}

// torusVCRoute is minimal e-cube routing with dateline virtual channels:
// VC0 until the packet crosses the wraparound edge of the current dimension,
// VC1 from the wrap hop on (sticky: a packet arriving on VC1 stays on VC1
// within the dimension).
func torusVCRoute(nd *engine.Node, in int, h *flit.Header) (engine.Decision, error) {
	meta := nd.Meta.(routerMeta)
	c := meta.coord
	shape := meta.net.shape
	for dim := 0; dim < 2; dim++ {
		if c[dim] == h.Dst[dim] {
			continue
		}
		sign, _ := torusDir(c[dim], h.Dst[dim], shape[dim])
		dir := dirE
		wraps := false
		if dim == 0 {
			if sign > 0 {
				dir = dirE
				wraps = c[0] == shape[0]-1
			} else {
				dir = dirW
				wraps = c[0] == 0
			}
		} else {
			if sign > 0 {
				dir = dirN
				wraps = c[1] == shape[1]-1
			} else {
				dir = dirS
				wraps = c[1] == 0
			}
		}
		vc := 0
		// Sticky VC1: a packet continuing in direction dir arrived on the
		// opposite side's input port (E/W and N/S pair up as dir^1).
		if in == (dir^1)*2+1 {
			vc = 1
		}
		if wraps {
			vc = 1
		}
		return engine.Decision{Outs: []int{dir*2 + vc}}, nil
	}
	return engine.Decision{Outs: []int{8}}, nil
}

// torusNoVCRoute is minimal e-cube over single channels — the deadlock-prone
// variant kept for demonstration.
func torusNoVCRoute(nd *engine.Node, in int, h *flit.Header) (engine.Decision, error) {
	meta := nd.Meta.(routerMeta)
	c := meta.coord
	shape := meta.net.shape
	for dim := 0; dim < 2; dim++ {
		if c[dim] == h.Dst[dim] {
			continue
		}
		sign, _ := torusDir(c[dim], h.Dst[dim], shape[dim])
		if dim == 0 {
			if sign > 0 {
				return engine.Decision{Outs: []int{dirE}}, nil
			}
			return engine.Decision{Outs: []int{dirW}}, nil
		}
		if sign > 0 {
			return engine.Decision{Outs: []int{dirN}}, nil
		}
		return engine.Decision{Outs: []int{dirS}}, nil
	}
	return engine.Decision{Outs: []int{4}}, nil
}
