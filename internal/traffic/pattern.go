// Package traffic provides workload generators for the experiments: the
// classic synthetic patterns (uniform random, transpose, bit-reverse,
// shuffle, hotspot), the embedded-topology neighbor patterns behind the
// paper's "conflict-free remapping" claim (ring, mesh, hypercube, tree), and
// an open-loop Bernoulli injection driver with warmup/measure phases.
package traffic

import (
	"fmt"
	"math/rand"

	"sr2201/internal/geom"
)

// Pattern maps a source PE to the destination of its next packet.
type Pattern interface {
	// Dest returns the destination for a packet from src. ok=false means src
	// does not transmit under this pattern.
	Dest(src geom.Coord, rng *rand.Rand) (dst geom.Coord, ok bool)
	// Name identifies the pattern in result tables.
	Name() string
}

// Uniform sends each packet to a destination chosen uniformly at random
// among all other PEs.
type Uniform struct{ Shape geom.Shape }

// Name implements Pattern.
func (u Uniform) Name() string { return "uniform" }

// Dest implements Pattern.
func (u Uniform) Dest(src geom.Coord, rng *rand.Rand) (geom.Coord, bool) {
	n := u.Shape.Size()
	if n < 2 {
		return geom.Coord{}, false
	}
	for {
		d := u.Shape.CoordOf(rng.Intn(n))
		if d != src {
			return d, true
		}
	}
}

// Transpose reverses the coordinate vector: (x1,...,xd) -> (xd,...,x1).
// It requires a shape symmetric under reversal (e.g. square 2D).
type Transpose struct{ Shape geom.Shape }

// Name implements Pattern.
func (t Transpose) Name() string { return "transpose" }

// Dest implements Pattern.
func (t Transpose) Dest(src geom.Coord, _ *rand.Rand) (geom.Coord, bool) {
	d := t.Shape.Dims()
	var dst geom.Coord
	for i := 0; i < d; i++ {
		dst[i] = src[d-1-i]
	}
	if !t.Shape.Contains(dst) || dst == src {
		return geom.Coord{}, false
	}
	return dst, true
}

// BitReverse sends PE i to the PE whose linear index is the bit-reversal of
// i. The shape's size must be a power of two.
type BitReverse struct{ Shape geom.Shape }

// Name implements Pattern.
func (b BitReverse) Name() string { return "bitreverse" }

// Dest implements Pattern.
func (b BitReverse) Dest(src geom.Coord, _ *rand.Rand) (geom.Coord, bool) {
	n := b.Shape.Size()
	bits := 0
	for 1<<bits < n {
		bits++
	}
	if 1<<bits != n {
		return geom.Coord{}, false
	}
	i := b.Shape.Index(src)
	rev := 0
	for k := 0; k < bits; k++ {
		if i&(1<<k) != 0 {
			rev |= 1 << (bits - 1 - k)
		}
	}
	if rev == i {
		return geom.Coord{}, false
	}
	return b.Shape.CoordOf(rev), true
}

// Shuffle sends PE i to PE (2i mod n-1) (perfect shuffle on linear indices;
// index n-1 maps to itself and stays silent).
type Shuffle struct{ Shape geom.Shape }

// Name implements Pattern.
func (s Shuffle) Name() string { return "shuffle" }

// Dest implements Pattern.
func (s Shuffle) Dest(src geom.Coord, _ *rand.Rand) (geom.Coord, bool) {
	n := s.Shape.Size()
	if n < 3 {
		return geom.Coord{}, false
	}
	i := s.Shape.Index(src)
	if i == n-1 {
		return geom.Coord{}, false
	}
	j := (2 * i) % (n - 1)
	if j == i {
		return geom.Coord{}, false
	}
	return s.Shape.CoordOf(j), true
}

// Hotspot sends a fraction of traffic to one hot PE and the rest uniformly.
type Hotspot struct {
	Shape geom.Shape
	Hot   geom.Coord
	// Fraction in [0,1] of packets addressed to Hot.
	Fraction float64
}

// Name implements Pattern.
func (h Hotspot) Name() string { return fmt.Sprintf("hotspot%.0f%%", h.Fraction*100) }

// Dest implements Pattern.
func (h Hotspot) Dest(src geom.Coord, rng *rand.Rand) (geom.Coord, bool) {
	if rng.Float64() < h.Fraction && src != h.Hot {
		return h.Hot, true
	}
	return Uniform{Shape: h.Shape}.Dest(src, rng)
}

// RingNeighbor embeds a ring over the linear index order: PE i sends to
// PE (i+1) mod n. Under the MD crossbar's index order, consecutive indices
// differ in one coordinate (with wrap hops at line ends), so the embedded
// ring maps onto dedicated crossbar ports.
type RingNeighbor struct{ Shape geom.Shape }

// Name implements Pattern.
func (r RingNeighbor) Name() string { return "ring" }

// Dest implements Pattern.
func (r RingNeighbor) Dest(src geom.Coord, _ *rand.Rand) (geom.Coord, bool) {
	n := r.Shape.Size()
	if n < 2 {
		return geom.Coord{}, false
	}
	return r.Shape.CoordOf((r.Shape.Index(src) + 1) % n), true
}

// MeshNeighbor sends to the +1 neighbor along a chosen dimension (the
// canonical nearest-neighbor sweep of a mesh-structured computation); PEs on
// the upper boundary stay silent.
type MeshNeighbor struct {
	Shape geom.Shape
	Dim   int
}

// Name implements Pattern.
func (m MeshNeighbor) Name() string { return fmt.Sprintf("mesh+d%d", m.Dim) }

// Dest implements Pattern.
func (m MeshNeighbor) Dest(src geom.Coord, _ *rand.Rand) (geom.Coord, bool) {
	if src[m.Dim]+1 >= m.Shape[m.Dim] {
		return geom.Coord{}, false
	}
	return src.WithDim(m.Dim, src[m.Dim]+1), true
}

// HypercubeNeighbor is the dimension-exchange step of hypercube algorithms:
// PE i sends to PE i XOR 2^Bit on linear indices. Size must be a power of
// two.
type HypercubeNeighbor struct {
	Shape geom.Shape
	Bit   int
}

// Name implements Pattern.
func (h HypercubeNeighbor) Name() string { return fmt.Sprintf("hcube^b%d", h.Bit) }

// Dest implements Pattern.
func (h HypercubeNeighbor) Dest(src geom.Coord, _ *rand.Rand) (geom.Coord, bool) {
	n := h.Shape.Size()
	if n&(n-1) != 0 {
		return geom.Coord{}, false
	}
	j := h.Shape.Index(src) ^ (1 << h.Bit)
	if j >= n {
		return geom.Coord{}, false
	}
	return h.Shape.CoordOf(j), true
}

// TreeParent embeds a binary tree over linear indices: PE i sends to its
// parent (i-1)/2 (the reduction step of tree-structured collectives). The
// root stays silent.
type TreeParent struct{ Shape geom.Shape }

// Name implements Pattern.
func (t TreeParent) Name() string { return "tree" }

// Dest implements Pattern.
func (t TreeParent) Dest(src geom.Coord, _ *rand.Rand) (geom.Coord, bool) {
	i := t.Shape.Index(src)
	if i == 0 {
		return geom.Coord{}, false
	}
	return t.Shape.CoordOf((i - 1) / 2), true
}

// Fixed always returns the same destination map (an explicit permutation).
type Fixed struct {
	Map   map[geom.Coord]geom.Coord
	Label string
}

// Name implements Pattern.
func (f Fixed) Name() string {
	if f.Label != "" {
		return f.Label
	}
	return "fixed"
}

// Dest implements Pattern.
func (f Fixed) Dest(src geom.Coord, _ *rand.Rand) (geom.Coord, bool) {
	d, ok := f.Map[src]
	return d, ok
}
