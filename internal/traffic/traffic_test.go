package traffic

import (
	"math/rand"
	"testing"

	"sr2201/internal/core"
	"sr2201/internal/geom"
)

func shape44() geom.Shape { return geom.MustShape(4, 4) }

func TestUniformProperties(t *testing.T) {
	shape := shape44()
	u := Uniform{Shape: shape}
	rng := rand.New(rand.NewSource(1))
	src := geom.Coord{2, 1}
	seen := map[geom.Coord]bool{}
	for i := 0; i < 2000; i++ {
		d, ok := u.Dest(src, rng)
		if !ok {
			t.Fatal("uniform refused to send")
		}
		if d == src {
			t.Fatal("uniform chose self")
		}
		if !shape.Contains(d) {
			t.Fatalf("uniform chose %v outside shape", d)
		}
		seen[d] = true
	}
	if len(seen) != shape.Size()-1 {
		t.Errorf("uniform covered %d destinations, want %d", len(seen), shape.Size()-1)
	}
	// A 1-PE network cannot send.
	if _, ok := (Uniform{Shape: geom.MustShape(1)}).Dest(geom.Coord{}, rng); ok {
		t.Error("1-PE uniform sent")
	}
}

func TestTranspose(t *testing.T) {
	tr := Transpose{Shape: shape44()}
	d, ok := tr.Dest(geom.Coord{3, 1}, nil)
	if !ok || d != (geom.Coord{1, 3}) {
		t.Errorf("transpose = %v, %v", d, ok)
	}
	// Diagonal PEs stay silent.
	if _, ok := tr.Dest(geom.Coord{2, 2}, nil); ok {
		t.Error("diagonal transposed")
	}
}

func TestBitReverseIsPermutation(t *testing.T) {
	shape := shape44() // 16 PEs, power of two
	b := BitReverse{Shape: shape}
	hit := map[geom.Coord]int{}
	senders := 0
	shape.Enumerate(func(src geom.Coord) bool {
		if d, ok := b.Dest(src, nil); ok {
			senders++
			hit[d]++
			// Bit reversal is an involution: dest of dest is src.
			back, ok2 := b.Dest(d, nil)
			if !ok2 || back != src {
				t.Errorf("bitreverse not involutive at %v", src)
			}
		}
		return true
	})
	if senders == 0 {
		t.Fatal("nobody sends")
	}
	for d, n := range hit {
		if n != 1 {
			t.Errorf("destination %v hit %d times", d, n)
		}
	}
	// Non-power-of-two: silent.
	nb := BitReverse{Shape: geom.MustShape(3, 4)}
	if _, ok := nb.Dest(geom.Coord{1, 1}, nil); ok {
		t.Error("bitreverse sent on non-power-of-two size")
	}
}

func TestShuffle(t *testing.T) {
	s := Shuffle{Shape: shape44()}
	shape := shape44()
	shape.Enumerate(func(src geom.Coord) bool {
		if d, ok := s.Dest(src, nil); ok {
			i, j := shape.Index(src), shape.Index(d)
			if j != (2*i)%(shape.Size()-1) {
				t.Errorf("shuffle(%d) = %d", i, j)
			}
		}
		return true
	})
}

func TestHotspot(t *testing.T) {
	h := Hotspot{Shape: shape44(), Hot: geom.Coord{0, 0}, Fraction: 0.5}
	rng := rand.New(rand.NewSource(7))
	hot := 0
	for i := 0; i < 2000; i++ {
		d, ok := h.Dest(geom.Coord{3, 3}, rng)
		if !ok {
			t.Fatal("hotspot refused")
		}
		if d == (geom.Coord{0, 0}) {
			hot++
		}
	}
	// Half directed plus uniform spill: expect well above 50%-ish hits.
	if hot < 800 || hot > 1400 {
		t.Errorf("hot hits = %d of 2000", hot)
	}
	if h.Name() != "hotspot50%" {
		t.Errorf("name = %q", h.Name())
	}
}

func TestEmbeddedPatterns(t *testing.T) {
	shape := shape44()
	// Ring covers everyone exactly once.
	r := RingNeighbor{Shape: shape}
	hit := map[geom.Coord]int{}
	shape.Enumerate(func(src geom.Coord) bool {
		d, ok := r.Dest(src, nil)
		if !ok {
			t.Fatalf("ring silent at %v", src)
		}
		hit[d]++
		return true
	})
	if len(hit) != shape.Size() {
		t.Errorf("ring covered %d", len(hit))
	}
	// Mesh neighbor along dim 0: boundary silent, others +1.
	mp := MeshNeighbor{Shape: shape, Dim: 0}
	if _, ok := mp.Dest(geom.Coord{3, 1}, nil); ok {
		t.Error("mesh boundary sent")
	}
	if d, _ := mp.Dest(geom.Coord{1, 1}, nil); d != (geom.Coord{2, 1}) {
		t.Errorf("mesh dest = %v", d)
	}
	// Hypercube exchange bit 2.
	hc := HypercubeNeighbor{Shape: shape, Bit: 2}
	d, ok := hc.Dest(geom.Coord{0, 0}, nil)
	if !ok || shape.Index(d) != 4 {
		t.Errorf("hypercube dest = %v, %v", d, ok)
	}
	// Tree: root silent, others to parent.
	tp := TreeParent{Shape: shape}
	if _, ok := tp.Dest(geom.Coord{0, 0}, nil); ok {
		t.Error("root sent")
	}
	if d, _ := tp.Dest(shape.CoordOf(5), nil); shape.Index(d) != 2 {
		t.Errorf("tree parent of 5 = %v", d)
	}
}

func TestFixedPattern(t *testing.T) {
	f := Fixed{Map: map[geom.Coord]geom.Coord{{0, 0}: {1, 1}}, Label: "pairs"}
	if d, ok := f.Dest(geom.Coord{0, 0}, nil); !ok || d != (geom.Coord{1, 1}) {
		t.Errorf("fixed = %v, %v", d, ok)
	}
	if _, ok := f.Dest(geom.Coord{2, 2}, nil); ok {
		t.Error("unmapped source sent")
	}
	if f.Name() != "pairs" || (Fixed{}).Name() != "fixed" {
		t.Error("names wrong")
	}
}

func newMachine(t *testing.T) *core.Machine {
	t.Helper()
	m, err := core.NewMachine(core.Config{Shape: shape44(), StallThreshold: 128})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDriverLowLoadDelivers(t *testing.T) {
	d := Driver{
		M:       newMachine(t),
		Pattern: Uniform{Shape: shape44()},
		Rate:    0.02,
		Size:    4,
		Seed:    42,
		Warmup:  200,
		Measure: 1000,
	}
	res := d.Run()
	if res.Offered == 0 || res.Delivered == 0 {
		t.Fatalf("result: %v", res)
	}
	if !res.Drained || res.Deadlocked {
		t.Fatalf("result: %+v", res)
	}
	if res.Latency.Count() < int(res.Delivered) {
		t.Errorf("latency samples %d < delivered %d", res.Latency.Count(), res.Delivered)
	}
	if res.Throughput <= 0 {
		t.Errorf("throughput = %v", res.Throughput)
	}
}

func TestDriverDeterministic(t *testing.T) {
	run := func() string {
		d := Driver{
			M:       newMachine(t),
			Pattern: Uniform{Shape: shape44()},
			Rate:    0.05,
			Size:    6,
			Seed:    99,
			Warmup:  100,
			Measure: 500,
		}
		return d.Run().String()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic driver:\n%s\n%s", a, b)
	}
}

func TestDriverWithBroadcasts(t *testing.T) {
	d := Driver{
		M:             newMachine(t),
		Pattern:       Uniform{Shape: shape44()},
		Rate:          0.01,
		BroadcastRate: 0.002,
		Size:          4,
		Seed:          7,
		Warmup:        100,
		Measure:       2000,
	}
	res := d.Run()
	if res.BroadcastCopies == 0 {
		t.Fatalf("no broadcast copies: %+v", res)
	}
	if !res.Drained || res.Deadlocked {
		t.Fatalf("result: %+v", res)
	}
}

func TestDriverSaturationBacklog(t *testing.T) {
	// Absurd offered load must leave a backlog (saturation signal).
	d := Driver{
		M:       newMachine(t),
		Pattern: Uniform{Shape: shape44()},
		Rate:    0.9,
		Size:    8,
		Seed:    3,
		Warmup:  100,
		Measure: 500,
		Drain:   20000,
	}
	res := d.Run()
	if res.Backlog == 0 {
		t.Errorf("no backlog at 0.9 load: %+v", res)
	}
	if res.Deadlocked {
		t.Errorf("deadlock under load with the deadlock-free scheme: %+v", res)
	}
}
