package traffic

import (
	"fmt"
	"math/rand"

	"sr2201/internal/deadlock"
	"sr2201/internal/engine"
	"sr2201/internal/geom"
	"sr2201/internal/stats"
)

// Target is the network-side contract the driver needs. Both core.Machine
// (the MD crossbar) and meshnet.Net (the mesh/torus baselines) satisfy it,
// so the comparison experiments drive every topology identically.
type Target interface {
	Shape() geom.Shape
	// Alive reports whether the PE at c can use the network (faulty-router
	// PEs cannot).
	Alive(c geom.Coord) bool
	Send(src, dst geom.Coord, size int) (uint64, error)
	Broadcast(src geom.Coord, size int) (uint64, int, error)
	Step()
	Run(maxCycles int64) deadlock.Outcome
	ResetStats()
	Latency() *stats.Latency
	BroadcastLatency() *stats.Latency
	Engine() *engine.Engine
}

// Driver runs an open-loop Bernoulli workload against a Target: each cycle,
// each PE independently starts a new packet with probability Rate (the
// offered load in packets per PE per cycle). Measurement is split into a
// warmup phase (statistics discarded) and a measure phase, followed by a
// bounded drain.
type Driver struct {
	M       Target
	Pattern Pattern
	// Rate is packets per PE per cycle.
	Rate float64
	// BroadcastRate is broadcasts per PE per cycle (usually 0 or tiny).
	BroadcastRate float64
	// Size is the packet length in flits (0 = machine default).
	Size int
	// Seed makes the workload reproducible.
	Seed int64
	// Warmup and Measure are phase lengths in cycles.
	Warmup, Measure int64
	// Drain bounds the post-measurement drain (0 = 10x Measure).
	Drain int64
}

// Result summarizes one driven run.
type Result struct {
	// Offered is the number of packets injected during measurement.
	Offered int64
	// Delivered is the number of point-to-point deliveries during
	// measurement (broadcast copies counted separately).
	Delivered int64
	// BroadcastCopies counts broadcast deliveries during measurement.
	BroadcastCopies int64
	// Throughput is delivered packets per PE per cycle over the measure
	// phase (accepted traffic).
	Throughput float64
	// Latency is the distribution of measured point-to-point latencies.
	Latency *stats.Latency
	// Conflicts is the total of output-port conflict cycles across all
	// switches over the whole run.
	Conflicts int64
	// Backlog is the total source-queue length at the end of measurement —
	// a growing backlog marks saturation.
	Backlog int
	// Deadlocked reports that the run wedged (possible only with routing
	// schemes that permit it).
	Deadlocked bool
	// Drained reports that the network emptied during the drain phase.
	Drained bool
	// Cycles is the total simulated cycles stepped across all three phases
	// (warmup + measure + drain).
	Cycles int64
}

// SimCycles reports the simulated cycles the run consumed; the experiment
// sweep funnel uses it for progress accounting.
func (r Result) SimCycles() int64 { return r.Cycles }

// String renders the headline numbers.
func (r Result) String() string {
	return fmt.Sprintf("offered=%d delivered=%d thr=%.4f lat{%s} backlog=%d conflicts=%d",
		r.Offered, r.Delivered, r.Throughput, r.Latency, r.Backlog, r.Conflicts)
}

// Run executes the workload.
func (d *Driver) Run() Result {
	if d.Measure <= 0 {
		d.Measure = 1000
	}
	if d.Drain <= 0 {
		d.Drain = 10 * d.Measure
	}
	rng := rand.New(rand.NewSource(d.Seed))
	m := d.M
	startCycle := m.Engine().Cycle()
	shape := m.Shape()
	pes := make([]geom.Coord, 0, shape.Size())
	shape.Enumerate(func(c geom.Coord) bool {
		pes = append(pes, c)
		return true
	})
	// The fault set cannot change while Run executes, so resolve each PE's
	// liveness once instead of once per PE per cycle. Dead PEs never drew
	// from the rng, so pre-filtering leaves the random stream untouched.
	live := pes[:0:0]
	for _, src := range pes {
		if m.Alive(src) {
			live = append(live, src)
		}
	}

	inject := func() int64 {
		var n int64
		for _, src := range live {
			if d.Rate > 0 && rng.Float64() < d.Rate {
				if dst, ok := d.Pattern.Dest(src, rng); ok {
					if _, err := m.Send(src, dst, d.Size); err == nil {
						n++
					}
				}
			}
			if d.BroadcastRate > 0 && rng.Float64() < d.BroadcastRate {
				if _, _, err := m.Broadcast(src, d.Size); err == nil {
					n++
				}
			}
		}
		return n
	}

	// Warmup.
	for i := int64(0); i < d.Warmup; i++ {
		inject()
		m.Step()
	}
	m.ResetStats()

	// Measure.
	var res Result
	for i := int64(0); i < d.Measure; i++ {
		res.Offered += inject()
		m.Step()
	}
	res.Delivered = int64(m.Latency().Count())
	res.BroadcastCopies = int64(m.BroadcastLatency().Count())
	res.Throughput = stats.Throughput(res.Delivered, d.Measure) / float64(len(pes))
	for _, ep := range m.Engine().Endpoints() {
		res.Backlog += ep.InjectQueueLen()
	}

	// Drain with deadlock watch; latencies of packets injected during the
	// measure phase keep accumulating as they arrive.
	out := m.Run(d.Drain)
	res.Drained = out.Drained
	res.Deadlocked = out.Deadlocked
	res.Latency = m.Latency()
	res.Cycles = out.Cycle - startCycle

	for _, sw := range m.Engine().Switches() {
		for _, op := range sw.Out {
			res.Conflicts += op.ConflictCycles
		}
	}
	return res
}
