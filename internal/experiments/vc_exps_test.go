package experiments

// V-series golden pin: the quick-mode V2 report — the Fig. 9 deadlocking
// workload running to completion under adaptive escape-VC routing with the
// recovery supervisor armed and silent — is pinned byte for byte. Unlike
// the digest-equality tests in golden_test.go, this fixture freezes the
// verdict itself: a regression that makes the adaptive machine deadlock,
// fire a recovery, or lose a packet changes the bytes and fails the gate.

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateVC = flag.Bool("update", false, "rewrite the V-series golden report")

// TestV2GoldenReport pins the quick V2 report bytes. Run with -update after
// an intentional change to the experiment or its rendering.
func TestV2GoldenReport(t *testing.T) {
	e, ok := ByID("V2")
	if !ok {
		t.Fatal("V2 not registered")
	}
	r, err := e.Run(Options{Quick: true, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass {
		t.Fatalf("V2 failed its shape criterion:\n%s", r.String())
	}
	golden := filepath.Join("testdata", "v2_quick.golden")
	if *updateVC {
		if err := os.WriteFile(golden, []byte(r.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got := r.String(); got != string(want) {
		t.Errorf("V2 report drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// TestV3ZeroRecoveries locks the V-series claim the golden cannot see at
// campaign scale: the adaptive single-fault sweep, with recovery wired into
// each cell, never needs a sacrifice — deadlock freedom comes from the
// escape channel alone.
func TestV3ZeroRecoveries(t *testing.T) {
	e, ok := ByID("V3")
	if !ok {
		t.Fatal("V3 not registered")
	}
	r, err := e.Run(Options{Quick: true, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass {
		t.Fatalf("V3 failed its shape criterion:\n%s", r.String())
	}
}
