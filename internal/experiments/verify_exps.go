package experiments

import (
	"fmt"
	"strings"

	"sr2201/internal/cdg"
	"sr2201/internal/core"
	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/routing"
	"sr2201/internal/stats"
	"sr2201/internal/traffic"
)

func init() {
	register(Experiment{ID: "A3", Title: "Pivot extension: reachability vs deadlock freedom", Paper: "DESIGN.md extension", Run: runA3})
	register(Experiment{ID: "V1", Title: "Static channel-dependency verification", Paper: "Sec. 5 theorem", Run: runV1})
}

// newPolicy builds a routing policy over a fresh fault set.
func newPolicy(shape geom.Shape, cfg routing.Config, fs ...fault.Fault) (*routing.Policy, error) {
	set := fault.NewSet(shape)
	for _, f := range fs {
		if err := set.Add(f); err != nil {
			return nil, err
		}
	}
	cfg.Shape = shape
	cfg.Faults = set
	return routing.New(cfg)
}

// verdict renders a cdg.Result for tables.
func verdict(r cdg.Result) string {
	switch {
	case r.NaiveHazard:
		return fmt.Sprintf("HAZARD (fans share %d channels)", r.SharedFanChannels)
	case r.Acyclic:
		return "acyclic (deadlock-free)"
	default:
		return "CYCLE: " + strings.Join(r.Cycle, " -> ")
	}
}

// runV1 verifies the paper's Section 5 argument statically: the channel
// dependency graph is acyclic for the unified D-XB = S-XB scheme (fault-free
// and under every single fault), cyclic for the separate-D-XB configuration
// of Fig. 9, and hazardous for the unserialized broadcast of Fig. 5.
func runV1(opt Options) (*Report, error) {
	r := &Report{ID: "V1", Title: "Static channel-dependency verification", Paper: "Sec. 5 theorem"}
	shape := geom.MustShape(4, 4)
	if opt.Quick {
		shape = geom.MustShape(3, 3)
	}

	tbl := stats.NewTable(fmt.Sprintf("V1 channel dependency graphs on %s", shape),
		"configuration", "channels", "edges", "verdict")
	pass := true

	// Unified scheme, fault-free.
	p, err := newPolicy(shape, routing.Config{})
	if err != nil {
		return nil, err
	}
	res, err := cdg.Analyze(p, shape, false)
	if err != nil {
		return nil, err
	}
	tbl.AddRow("D-XB = S-XB, fault-free", res.Channels, res.Edges, verdict(res))
	pass = pass && res.Acyclic

	// Unified scheme under every single fault (routers + all crossbars).
	var allFaults []fault.Fault
	shape.Enumerate(func(c geom.Coord) bool {
		allFaults = append(allFaults, fault.RouterFault(c))
		return true
	})
	for _, l := range shape.Lines() {
		allFaults = append(allFaults, fault.XBFault(l))
	}
	cyclicFaults := 0
	for _, f := range allFaults {
		p, err := newPolicy(shape, routing.Config{}, f)
		if err != nil {
			return nil, err
		}
		res, err := cdg.Analyze(p, shape, false)
		if err != nil {
			return nil, err
		}
		if !res.Acyclic {
			cyclicFaults++
		}
	}
	tbl.AddRow(fmt.Sprintf("D-XB = S-XB, each of %d single faults", len(allFaults)), "-", "-",
		fmt.Sprintf("acyclic in %d/%d cases", len(allFaults)-cyclicFaults, len(allFaults)))
	pass = pass && cyclicFaults == 0

	// Separate D-XB with a detour-inducing fault: the Fig. 9 cycle.
	p, err = newPolicy(shape, routing.Config{SXB: geom.Coord{0, 0}, DXB: shape.CoordOf(shape.Size()-1).WithDim(0, 0)},
		fault.RouterFault(geom.Coord{2, 1}))
	if err != nil {
		return nil, err
	}
	res, err = cdg.Analyze(p, shape, false)
	if err != nil {
		return nil, err
	}
	tbl.AddRow("D-XB != S-XB, one faulty RTC (Fig. 9)", res.Channels, res.Edges, verdict(res))
	pass = pass && !res.Acyclic

	// Naive broadcast: the Fig. 5 hazard.
	p, err = newPolicy(shape, routing.Config{NaiveBroadcast: true})
	if err != nil {
		return nil, err
	}
	res, err = cdg.Analyze(p, shape, true)
	if err != nil {
		return nil, err
	}
	tbl.AddRow("naive broadcast (no S-XB)", res.Channels, res.Edges, verdict(res))
	pass = pass && res.NaiveHazard

	r.Tables = append(r.Tables, tbl)
	r.Pass = pass
	r.Notef("the static verdicts match the dynamic experiments E1/E4/E5 exactly")
	return r, nil
}

// runA3 evaluates the pivot extension: it restores every destination behind
// a faulty last-dimension crossbar, but the channel dependency graph becomes
// cyclic — the guarantee the paper preserves by confining non-dimension-
// order turns to the S-XB. A dynamic stress run reports whether the cycle
// also materializes in simulation (timing-dependent; informational).
func runA3(opt Options) (*Report, error) {
	r := &Report{ID: "A3", Title: "Pivot extension: reachability vs deadlock freedom", Paper: "DESIGN.md extension"}
	shape := geom.MustShape(4, 4)
	badLine := geom.Line{Dim: 1, Fixed: geom.Coord{2, 0}}

	// Reachability with and without the pivot.
	count := func(pivot bool) (reach, unreach int, err error) {
		p, err := newPolicy(shape, routing.Config{PivotLastDim: pivot}, fault.XBFault(badLine))
		if err != nil {
			return 0, 0, err
		}
		shape.Enumerate(func(src geom.Coord) bool {
			shape.Enumerate(func(dst geom.Coord) bool {
				if src == dst {
					return true
				}
				if _, e := p.UnicastPath(src, dst); e == nil {
					reach++
					return true
				}
				if pivot {
					if _, e := p.PivotPath(src, dst); e == nil {
						reach++
						return true
					}
				}
				unreach++
				return true
			})
			return true
		})
		return reach, unreach, nil
	}
	baseReach, baseUnreach, err := count(false)
	if err != nil {
		return nil, err
	}
	pivReach, pivUnreach, err := count(true)
	if err != nil {
		return nil, err
	}

	// Static verdicts.
	pBase, err := newPolicy(shape, routing.Config{}, fault.XBFault(badLine))
	if err != nil {
		return nil, err
	}
	resBase, err := cdg.Analyze(pBase, shape, false)
	if err != nil {
		return nil, err
	}
	pPiv, err := newPolicy(shape, routing.Config{PivotLastDim: true}, fault.XBFault(badLine))
	if err != nil {
		return nil, err
	}
	resPiv, err := cdg.Analyze(pPiv, shape, false)
	if err != nil {
		return nil, err
	}

	tbl := stats.NewTable(fmt.Sprintf("A3 faulty last-dimension crossbar %v on %s", badLine, shape),
		"scheme", "reachable pairs", "unreachable", "dependency graph")
	tbl.AddRow("paper facility", baseReach, baseUnreach, verdict(resBase))
	tbl.AddRow("pivot extension", pivReach, pivUnreach, verdict(resPiv))
	r.Tables = append(r.Tables, tbl)

	// Dynamic stress: heavy mixed traffic with pivot sends and broadcasts,
	// several seeds; report deadlocks (timing-dependent, informational).
	seeds := []int64{1, 2, 3, 4, 5, 6}
	if opt.Quick {
		seeds = seeds[:2]
	}
	deadlocks := 0
	for _, seed := range seeds {
		m, err := core.NewMachine(core.Config{Shape: shape, PivotLastDim: true, StallThreshold: 512})
		if err != nil {
			return nil, err
		}
		if err := m.AddFault(fault.XBFault(badLine)); err != nil {
			return nil, err
		}
		d := traffic.Driver{
			M:             m,
			Pattern:       traffic.Uniform{Shape: shape},
			Rate:          0.3,
			BroadcastRate: 0.01,
			Size:          16,
			Seed:          seed,
			Warmup:        0,
			Measure:       800,
			Drain:         60_000,
		}
		res := d.Run()
		if res.Deadlocked {
			deadlocks++
		}
	}
	r.Notef("dynamic stress: %d/%d seeds deadlocked (the static cycle is timing-dependent)", deadlocks, len(seeds))

	// With a single faulty crossbar the pivot should restore every pair.
	r.Pass = pivUnreach == 0 && pivReach > baseReach && resBase.Acyclic && !resPiv.Acyclic
	r.Notef("the pivot restores all %d previously unreachable pairs at the cost of the acyclicity guarantee", baseUnreach)
	return r, nil
}
