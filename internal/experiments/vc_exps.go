package experiments

// V-series (virtual channels): escape-VC adaptive routing experiments. The
// paper's design is deadlock-free by construction (Sec. 3.4); the adaptive
// extension (internal/routing.VCPolicy) trades that static discipline for
// run-time freedom — any minimal productive hop on lanes 1..V-1 — and keeps
// deadlock freedom through the certified escape channel on lane 0. These
// experiments rerun the deadlock and fault artifacts under the adaptive
// variant: the Fig. 9 scenario must now complete without the liveness layer
// ever firing, and the exhaustive single-fault map must stay clean.

import (
	"fmt"

	"sr2201/internal/campaign"
	"sr2201/internal/geom"
	"sr2201/internal/inject"
	"sr2201/internal/stats"
)

func init() {
	register(Experiment{ID: "V2", Title: "Escape-VC adaptive routing defuses the Fig. 9 scenario", Paper: "Fig. 9 + VC extension", Run: runV2})
	register(Experiment{ID: "V3", Title: "Single-fault availability map under adaptive routing", Paper: "Sec. 4 + VC extension", Run: runV3})
	register(Experiment{ID: "V4", Title: "Single-fault availability map at four virtual channels", Paper: "Sec. 4 + VC extension", Run: runV4})
}

// adaptiveFig9 is the Fig. 9 workload — preset router fault, detouring
// unicast pair, crossing broadcast — on the adaptive machine: two lanes per
// wire, escape-VC routing, recovery armed so any deadlock would be visible
// as a sacrifice instead of a hang.
func adaptiveFig9(broadcastAt int64) campaign.Spec {
	sp := fig9Cell(false, true, broadcastAt)
	sp.VCs = 2
	sp.Adaptive = true
	sp.KeepDeliveries = true
	return sp
}

// adaptiveDeliveries counts deliveries that took at least one adaptive hop.
func adaptiveDeliveries(c campaign.CellResult) int {
	n := 0
	for _, d := range c.Deliveries {
		if d.Adaptive {
			n++
		}
	}
	return n
}

// runV2 contrasts the bare separate-DXB Fig. 9 run (it must deadlock) with
// the adaptive machine on the same workload across broadcast offsets. Shape
// criterion: the bare run deadlocks; every adaptive run drains with
// exactly-once delivery, zero duplicates, a full broadcast fan — and zero
// recovery interventions, with the supervisor armed the whole time: the
// escape channel, not the sacrifice mechanism, is what keeps it live. At
// least one delivery must actually use an adaptive lane, so the result
// certifies the adaptive path and not a degenerate escape-only run.
func runV2(opt Options) (*Report, error) {
	r := &Report{ID: "V2", Title: "Escape-VC adaptive routing defuses the Fig. 9 scenario", Paper: "Fig. 9 + VC extension"}

	base, err := campaign.RunCell(fig9Cell(true, false, 0))
	if err != nil {
		return nil, err
	}

	offsets := []int64{0, 8, 16, 24, 32, 40}
	if opt.Quick {
		offsets = []int64{0, 16}
	}
	cells, err := sweepCells(opt, len(offsets), func(i int) (campaign.CellResult, error) {
		return campaign.RunCell(adaptiveFig9(offsets[i]))
	})
	if err != nil {
		return nil, err
	}

	tbl := stats.NewTable("V2 Fig. 9 workload: bare separate D-XB vs adaptive escape-VC (recovery armed)",
		"bcast@", "design", "outcome", "end cycle", "recoveries", "delivered", "adaptive", "bcopies")
	tbl.AddRow("0", "separate, bare", cellOutcome(base), base.EndCycle, base.Recoveries, base.Delivered, 0, base.BroadcastCopies)
	clean := true
	totalAdaptive := 0
	for i, c := range cells {
		adeliv := adaptiveDeliveries(c)
		totalAdaptive += adeliv
		tbl.AddRow(fmt.Sprint(offsets[i]), "adaptive vc=2", cellOutcome(c),
			c.EndCycle, c.Recoveries, c.Delivered, adeliv, c.BroadcastCopies)
		if !c.Drained || c.Livelocked || c.Recoveries != 0 ||
			c.Stats.Duplicates != 0 || c.Delivered != c.Accepted ||
			c.BroadcastCopies != c.BroadcastCopiesExpected {
			clean = false
		}
	}
	r.Tables = append(r.Tables, tbl)

	r.Pass = base.Deadlocked && !base.Drained && clean && totalAdaptive > 0
	r.Notef("bare separate-DXB design: %s at cycle %d — the paper's Fig. 9 wait cycle",
		cellOutcome(base), base.EndCycle)
	r.Notef("adaptive machine: every offset drains with 0 recoveries (supervisor armed), %d deliveries took an adaptive lane",
		totalAdaptive)
	r.Notef("deadlock freedom comes from the certified escape channel (internal/topo/escape), not from sacrifice")
	return r, nil
}

// v3Config is the F2-style exhaustive single-fault campaign, optionally on
// the adaptive machine with vcs lanes per wire (0 = the static machine).
func v3Config(opt Options, vcs int) campaign.Config {
	cfg := campaign.Config{
		Shape:    geom.MustShape(6, 6),
		Epochs:   []int64{8, 40},
		Patterns: []campaign.Pattern{campaign.Shift(7), campaign.Reverse()},
		Waves:    4,
		Gap:      24,
		Inject: inject.Options{
			Retransmit:     true,
			RetryAfter:     24,
			StallThreshold: 256,
		},
		Parallel: opt.Parallel,
		Ctx:      opt.Ctx,
		Budget:   opt.Budget,
		OnCell:   opt.OnCell,
	}
	if opt.Quick {
		cfg.Shape = geom.MustShape(4, 4)
		cfg.Epochs = []int64{12}
		cfg.Patterns = []campaign.Pattern{campaign.Shift(5)}
	}
	if vcs > 0 {
		cfg.VCs = vcs
		cfg.Adaptive = true
	}
	return cfg
}

// vcAudit applies the V-series cleanliness checks to one sweep: every cell
// drains, refusals match the static post-fault prediction, and losses stay
// exactly the documented ones.
func vcAudit(res *campaign.Result) (undrained, unpredicted, undocumented int) {
	for _, c := range res.Cells {
		if !c.Drained {
			undrained++
		}
		if !c.UnreachableAsPredicted {
			unpredicted++
		}
		st := c.Stats
		if st.Duplicates != 0 || st.LostExhausted != 0 || st.LostUntraceable != 0 ||
			st.DropsOther != 0 || c.Delivered+finalLosses(st) != c.Accepted {
			undocumented++
		}
	}
	return
}

// runV3 reruns the exhaustive single-fault availability map (F2) on the
// adaptive machine, with the static unified design as control. Shape
// criterion: both sweeps finish with zero deadlocks and zero stalls, every
// cell drains, every refusal matches the static post-fault prediction, and
// the adaptive sweep's losses stay exactly the documented ones — a mid-run
// fault can kill a packet inside a crossbar's adaptive lane, but
// retransmission must recover every such kill whose destination is alive.
func runV3(opt Options) (*Report, error) {
	r := &Report{ID: "V3", Title: "Single-fault availability map under adaptive routing", Paper: "Sec. 4 + VC extension"}

	acfg := v3Config(opt, 2)
	static, err := campaign.Run(v3Config(opt, 0))
	if err != nil {
		return nil, err
	}
	adaptive, err := campaign.Run(acfg)
	if err != nil {
		return nil, err
	}
	sUndrained, sUnpred, sUndoc := vcAudit(static)
	aUndrained, aUnpred, aUndoc := vcAudit(adaptive)

	var sCycles, aCycles int64
	for _, c := range static.Cells {
		sCycles += c.EndCycle
	}
	for _, c := range adaptive.Cells {
		aCycles += c.EndCycle
	}

	tbl := stats.NewTable("V3 exhaustive single-fault map: static unified vs adaptive vc=2",
		"design", "cells", "deadlocks", "stalls", "undrained", "off-prediction", "undocumented", "total cycles")
	tbl.AddRow("static", len(static.Cells), static.Deadlocks(), static.Stalls(), sUndrained, sUnpred, sUndoc, sCycles)
	tbl.AddRow("adaptive", len(adaptive.Cells), adaptive.Deadlocks(), adaptive.Stalls(), aUndrained, aUnpred, aUndoc, aCycles)
	r.Tables = append(r.Tables, tbl)

	// Fault-free probe under the same traffic: the adaptive lanes must
	// actually carry packets when nothing forces them onto the escape.
	probeSpec := campaign.Spec{
		Shape:          acfg.Shape,
		Pattern:        acfg.Patterns[0],
		Waves:          2,
		Gap:            24,
		VCs:            2,
		Adaptive:       true,
		KeepDeliveries: true,
	}
	probe, err := campaign.RunCell(probeSpec)
	if err != nil {
		return nil, err
	}
	probeAdaptive := adaptiveDeliveries(probe)

	r.Pass = static.Deadlocks() == 0 && static.Stalls() == 0 && sUndrained == 0 && sUnpred == 0 && sUndoc == 0 &&
		adaptive.Deadlocks() == 0 && adaptive.Stalls() == 0 && aUndrained == 0 && aUnpred == 0 && aUndoc == 0 &&
		probe.Drained && probe.Delivered == probe.Accepted && probeAdaptive > 0
	r.Notef("%d cells per design: adaptive sweep %d deadlocks, %d stalls, %d undrained, %d off-prediction, %d undocumented",
		len(adaptive.Cells), adaptive.Deadlocks(), adaptive.Stalls(), aUndrained, aUnpred, aUndoc)
	r.Notef("fault-free probe: %d of %d deliveries took an adaptive lane; drain time %d vs static sweep total %d / adaptive %d",
		probeAdaptive, probe.Delivered, probe.EndCycle, sCycles, aCycles)
	return r, nil
}

// runV4 reruns the exhaustive single-fault availability map with the lane
// depth doubled to four virtual channels per wire, against the two-lane
// machine of V3 as control. Deeper lanes widen the adaptive choice set —
// three adaptive lanes over one escape — without touching the certified
// escape discipline, so the map must stay exactly as clean as V3's. Shape
// criterion: both sweeps finish with zero deadlocks and zero stalls, every
// cell drains, every refusal matches the static post-fault prediction,
// losses stay exactly the documented ones, and the fault-free probe still
// routes real traffic through the adaptive lanes at depth four.
func runV4(opt Options) (*Report, error) {
	r := &Report{ID: "V4", Title: "Single-fault availability map at four virtual channels", Paper: "Sec. 4 + VC extension"}

	qcfg := v3Config(opt, 4)
	two, err := campaign.Run(v3Config(opt, 2))
	if err != nil {
		return nil, err
	}
	four, err := campaign.Run(qcfg)
	if err != nil {
		return nil, err
	}
	tUndrained, tUnpred, tUndoc := vcAudit(two)
	fUndrained, fUnpred, fUndoc := vcAudit(four)

	var tCycles, fCycles int64
	for _, c := range two.Cells {
		tCycles += c.EndCycle
	}
	for _, c := range four.Cells {
		fCycles += c.EndCycle
	}

	tbl := stats.NewTable("V4 exhaustive single-fault map: adaptive vc=2 vs vc=4",
		"design", "cells", "deadlocks", "stalls", "undrained", "off-prediction", "undocumented", "total cycles")
	tbl.AddRow("adaptive vc=2", len(two.Cells), two.Deadlocks(), two.Stalls(), tUndrained, tUnpred, tUndoc, tCycles)
	tbl.AddRow("adaptive vc=4", len(four.Cells), four.Deadlocks(), four.Stalls(), fUndrained, fUnpred, fUndoc, fCycles)
	r.Tables = append(r.Tables, tbl)

	// Fault-free probe at depth four: the extra lanes must carry traffic.
	probeSpec := campaign.Spec{
		Shape:          qcfg.Shape,
		Pattern:        qcfg.Patterns[0],
		Waves:          2,
		Gap:            24,
		VCs:            4,
		Adaptive:       true,
		KeepDeliveries: true,
	}
	probe, err := campaign.RunCell(probeSpec)
	if err != nil {
		return nil, err
	}
	probeAdaptive := adaptiveDeliveries(probe)

	r.Pass = two.Deadlocks() == 0 && two.Stalls() == 0 && tUndrained == 0 && tUnpred == 0 && tUndoc == 0 &&
		four.Deadlocks() == 0 && four.Stalls() == 0 && fUndrained == 0 && fUnpred == 0 && fUndoc == 0 &&
		probe.Drained && probe.Delivered == probe.Accepted && probeAdaptive > 0
	r.Notef("%d cells per depth: vc=4 sweep %d deadlocks, %d stalls, %d undrained, %d off-prediction, %d undocumented",
		len(four.Cells), four.Deadlocks(), four.Stalls(), fUndrained, fUnpred, fUndoc)
	r.Notef("fault-free probe at vc=4: %d of %d deliveries took an adaptive lane; drain time %d vs sweep totals vc=2 %d / vc=4 %d",
		probeAdaptive, probe.Delivered, probe.EndCycle, tCycles, fCycles)
	return r, nil
}
