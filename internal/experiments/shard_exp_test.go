package experiments

import "testing"

// E14 is itself an equivalence assertion — the report's Pass verdict demands
// byte-identical per-cycle hash streams at shard counts 1..4 and an agreeing
// full-scale run — so the test just runs it in quick mode and checks the
// verdict plus report determinism across repeats.
func TestE14ShardedEquivalence(t *testing.T) {
	opt := Options{Quick: true, Parallel: 1, Shards: 3}
	first := reportDigest(t, "E14", opt)
	e, _ := ByID("E14")
	r, err := e.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass {
		t.Fatalf("E14 failed its shape criterion:\n%s", r)
	}
	if again := reportDigest(t, "E14", opt); again != first {
		t.Errorf("E14 report digest not repeatable: %#x vs %#x", again, first)
	}
}
