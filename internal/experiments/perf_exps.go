package experiments

import (
	"fmt"

	"sr2201/internal/core"
	"sr2201/internal/engine"
	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/meshnet"
	"sr2201/internal/stats"
	"sr2201/internal/traffic"
)

func init() {
	register(Experiment{ID: "E6", Title: "Crossbar vs mesh vs torus under load", Paper: "Sec. 3 / ref [7]", Run: runE6})
	register(Experiment{ID: "E7", Title: "Detour overhead under load", Paper: "Sec. 4", Run: runE7})
	register(Experiment{ID: "E8", Title: "Broadcast serialization scaling", Paper: "Sec. 3.2", Run: runE8})
	register(Experiment{ID: "E9", Title: "Conflict-free remapping of guest topologies", Paper: "Sec. 3.1", Run: runE9})
	register(Experiment{ID: "E10", Title: "Structural scaling of the MD crossbar", Paper: "Sec. 3.1", Run: runE10})
}

// newCrossbar builds an MD crossbar machine for the load experiments.
func newCrossbar(shape geom.Shape) (*core.Machine, error) {
	return core.NewMachine(core.Config{Shape: shape, StallThreshold: 512})
}

// drive runs one Bernoulli workload and returns the result.
func drive(t traffic.Target, p traffic.Pattern, rate float64, size int, warmup, measure int64, seed int64) traffic.Result {
	d := traffic.Driver{
		M: t, Pattern: p, Rate: rate, Size: size,
		Seed: seed, Warmup: warmup, Measure: measure,
	}
	return d.Run()
}

// runE6 sweeps offered load on the 8x8 crossbar, mesh and torus under
// uniform and transpose traffic. Shape criterion (the Section 3 claim backed
// by reference [7]): the crossbar accepts at least as much peak throughput
// as the torus, and the torus at least as much as the mesh, with fewer
// conflicts on the crossbar throughout.
func runE6(opt Options) (*Report, error) {
	r := &Report{ID: "E6", Title: "Crossbar vs mesh vs torus under load", Paper: "Sec. 3 / ref [7]"}
	shape := geom.MustShape(8, 8)
	loads := []float64{0.01, 0.02, 0.04, 0.08, 0.12, 0.16, 0.24, 0.32}
	warmup, measure := int64(500), int64(2000)
	if opt.Quick {
		shape = geom.MustShape(6, 6)
		loads = []float64{0.02, 0.08, 0.2}
		warmup, measure = 200, 600
	}

	type topo struct {
		name  string
		build func() (traffic.Target, error)
	}
	topos := []topo{
		{"crossbar", func() (traffic.Target, error) { return newCrossbar(shape) }},
		{"torus", func() (traffic.Target, error) {
			return meshnet.New(meshnet.Config{Kind: meshnet.Torus, Shape: shape, StallThreshold: 512})
		}},
		{"mesh", func() (traffic.Target, error) {
			return meshnet.New(meshnet.Config{Kind: meshnet.Mesh, Shape: shape, StallThreshold: 512})
		}},
	}
	patterns := []func() traffic.Pattern{
		func() traffic.Pattern { return traffic.Uniform{Shape: shape} },
		func() traffic.Pattern { return traffic.Transpose{Shape: shape} },
	}

	peak := map[string]float64{}
	lowLat := map[string]float64{}
	for _, mkPat := range patterns {
		pat := mkPat()
		tbl := stats.NewTable(fmt.Sprintf("E6 %s on %s: offered load vs accepted throughput and latency", pat.Name(), shape),
			"load", "topology", "throughput", "mean lat", "p95 lat", "backlog", "conflicts")
		// Each load x topology cell is an independent machine + driver run;
		// fan them out and assemble rows in cell order.
		type cell struct {
			load float64
			tp   topo
		}
		var cells []cell
		for _, load := range loads {
			for _, tp := range topos {
				cells = append(cells, cell{load, tp})
			}
		}
		results, err := sweepCells(opt, len(cells), func(i int) (traffic.Result, error) {
			t, err := cells[i].tp.build()
			if err != nil {
				return traffic.Result{}, err
			}
			res := drive(t, pat, cells[i].load, 8, warmup, measure, 1234)
			if res.Deadlocked {
				return traffic.Result{}, fmt.Errorf("E6: %s deadlocked at load %.2f", cells[i].tp.name, cells[i].load)
			}
			return res, nil
		})
		if err != nil {
			return nil, err
		}
		for i, res := range results {
			load, name := cells[i].load, cells[i].tp.name
			tbl.AddRow(load, name, res.Throughput, res.Latency.Mean(), res.Latency.Percentile(95), res.Backlog, res.Conflicts)
			if res.Throughput > peak[name] {
				peak[name] = res.Throughput
			}
			if load == loads[0] && pat.Name() == "uniform" {
				lowLat[name] = res.Latency.Mean()
			}
		}
		r.Tables = append(r.Tables, tbl)
	}
	r.Notef("peak accepted throughput (pkts/PE/cycle): crossbar=%.4f torus=%.4f mesh=%.4f",
		peak["crossbar"], peak["torus"], peak["mesh"])
	r.Notef("low-load mean latency (uniform): crossbar=%.1f torus=%.1f mesh=%.1f",
		lowLat["crossbar"], lowLat["torus"], lowLat["mesh"])
	r.Pass = peak["crossbar"] >= peak["torus"] && peak["torus"] >= peak["mesh"] &&
		lowLat["crossbar"] <= lowLat["mesh"]
	return r, nil
}

// runE7 measures what the detour facility costs: latency and throughput with
// and without one faulty router, at increasing load, plus the latency of the
// detoured packets themselves. Shape criterion: the network keeps operating
// (no deadlock, small throughput loss), with a bounded latency penalty
// confined mostly to detoured packets.
func runE7(opt Options) (*Report, error) {
	r := &Report{ID: "E7", Title: "Detour overhead under load", Paper: "Sec. 4"}
	shape := geom.MustShape(8, 8)
	loads := []float64{0.02, 0.05, 0.1, 0.15}
	warmup, measure := int64(500), int64(2000)
	if opt.Quick {
		shape = geom.MustShape(6, 6)
		loads = []float64{0.02, 0.1}
		warmup, measure = 200, 600
	}
	bad := shape.CoordOf(shape.Size()/2 + 1)

	tbl := stats.NewTable(fmt.Sprintf("E7 detour overhead on %s, faulty router %v", shape, bad),
		"load", "config", "throughput", "mean lat", "p95 lat", "detoured", "detoured mean lat")
	ok := true
	type cell struct {
		load      float64
		withFault bool
	}
	type outcome struct {
		res    traffic.Result
		detLat stats.Latency
	}
	var cells []cell
	for _, load := range loads {
		for _, withFault := range []bool{false, true} {
			cells = append(cells, cell{load, withFault})
		}
	}
	results, err := sweepCells(opt, len(cells), func(i int) (*outcome, error) {
		m, err := newCrossbar(shape)
		if err != nil {
			return nil, err
		}
		if cells[i].withFault {
			if err := m.AddFault(fault.RouterFault(bad)); err != nil {
				return nil, err
			}
		}
		var o outcome
		m.OnDeliver = func(d core.Delivery) {
			if d.Detoured {
				o.detLat.Add(d.Latency)
			}
		}
		o.res = drive(m, traffic.Uniform{Shape: shape}, cells[i].load, 8, warmup, measure, 99)
		return &o, nil
	})
	if err != nil {
		return nil, err
	}
	for i, o := range results {
		name := "fault-free"
		if cells[i].withFault {
			name = "one faulty RTC"
		}
		if o.res.Deadlocked {
			ok = false
		}
		tbl.AddRow(cells[i].load, name, o.res.Throughput, o.res.Latency.Mean(), o.res.Latency.Percentile(95), o.detLat.Count(), o.detLat.Mean())
	}
	r.Tables = append(r.Tables, tbl)
	r.Pass = ok
	r.Notef("detoured packets pay extra crossbar hops via the D-XB; non-detoured traffic is largely unaffected at low load")
	return r, nil
}

// runE8 injects k simultaneous broadcasts and measures completion time.
// Shape criterion: completion grows roughly linearly in k (the S-XB replays
// one broadcast at a time), i.e. the increments stay within a band.
func runE8(opt Options) (*Report, error) {
	r := &Report{ID: "E8", Title: "Broadcast serialization scaling", Paper: "Sec. 3.2"}
	shape := geom.MustShape(8, 8)
	maxK := 8
	if opt.Quick {
		shape = geom.MustShape(6, 6)
		maxK = 4
	}
	tbl := stats.NewTable(fmt.Sprintf("E8 k simultaneous broadcasts on %s (8-flit packets)", shape),
		"k", "completion cycles", "increment", "copies")
	type e8Result struct {
		cycle  int64
		copies int
	}
	results, err := sweepCells(opt, maxK, func(i int) (e8Result, error) {
		k := i + 1
		m, err := newCrossbar(shape)
		if err != nil {
			return e8Result{}, err
		}
		for j := 0; j < k; j++ {
			src := shape.CoordOf((j * 7) % shape.Size())
			if _, _, err := m.Broadcast(src, 8); err != nil {
				return e8Result{}, err
			}
		}
		out := m.Run(runBudget)
		if !out.Drained {
			return e8Result{}, fmt.Errorf("E8: k=%d did not drain", k)
		}
		return e8Result{out.Cycle, len(m.Deliveries())}, nil
	})
	if err != nil {
		return nil, err
	}
	var prev int64
	var increments []int64
	for i, res := range results {
		k := i + 1
		inc := res.cycle - prev
		if k > 1 {
			increments = append(increments, inc)
		}
		tbl.AddRow(k, res.cycle, inc, res.copies)
		prev = res.cycle
	}
	r.Tables = append(r.Tables, tbl)
	// Linearity: increments positive and within 3x of each other.
	minInc, maxInc := increments[0], increments[0]
	for _, inc := range increments {
		if inc < minInc {
			minInc = inc
		}
		if inc > maxInc {
			maxInc = inc
		}
	}
	r.Pass = minInc > 0 && maxInc <= 3*minInc
	r.Notef("each extra broadcast adds ~%d-%d cycles: the S-XB replays them one-by-one in order of arrival", minInc, maxInc)
	return r, nil
}

// runE9 embeds guest-topology neighbor patterns and counts switch output
// conflicts when every PE transmits simultaneously. Shape criterion: the MD
// crossbar remaps ring, mesh and hypercube traffic with zero conflicts,
// while the mesh baseline conflicts on the hypercube pattern.
func runE9(opt Options) (*Report, error) {
	r := &Report{ID: "E9", Title: "Conflict-free remapping of guest topologies", Paper: "Sec. 3.1"}
	shape := geom.MustShape(8, 8)
	if opt.Quick {
		shape = geom.MustShape(4, 4)
	}
	bits := 0
	for 1<<bits < shape.Size() {
		bits++
	}
	patterns := []traffic.Pattern{
		traffic.RingNeighbor{Shape: shape},
		traffic.MeshNeighbor{Shape: shape, Dim: 0},
		traffic.MeshNeighbor{Shape: shape, Dim: 1},
		traffic.HypercubeNeighbor{Shape: shape, Bit: 1},
		traffic.HypercubeNeighbor{Shape: shape, Bit: bits / 2},
		traffic.TreeParent{Shape: shape},
	}

	// oneShot injects one packet from every sender simultaneously and
	// reports contention: simultaneous-request conflicts and blocked cycles
	// (headers or streams stalled behind an owned channel).
	oneShot := func(t traffic.Target, p traffic.Pattern) (conflicts, blocked, cycles int64, err error) {
		shape := t.Shape()
		shape.Enumerate(func(src geom.Coord) bool {
			if dst, ok := p.Dest(src, nil); ok {
				_, err = t.Send(src, dst, 8)
				if err != nil {
					return false
				}
			}
			return true
		})
		if err != nil {
			return 0, 0, 0, err
		}
		out := t.Run(runBudget)
		if !out.Drained {
			return 0, 0, 0, fmt.Errorf("E9: %s did not drain", p.Name())
		}
		for _, sw := range t.Engine().Switches() {
			for _, op := range sw.Out {
				conflicts += op.ConflictCycles
			}
			for _, ip := range sw.In {
				blocked += ip.BlockedCycles
			}
		}
		return conflicts, blocked, out.Cycle, nil
	}

	tbl := stats.NewTable(fmt.Sprintf("E9 one-shot neighbor exchange on %s: contention", shape),
		"pattern", "xbar conflicts", "xbar blocked", "xbar cycles", "mesh conflicts", "mesh blocked", "mesh cycles")
	pass := true
	meshContends := false
	type e9Result struct {
		cx, bx, tx int64
		cm, bm, tm int64
	}
	results, err := sweepCells(opt, len(patterns), func(i int) (e9Result, error) {
		p := patterns[i]
		mx, err := newCrossbar(shape)
		if err != nil {
			return e9Result{}, err
		}
		cx, bx, tx, err := oneShot(mx, p)
		if err != nil {
			return e9Result{}, err
		}
		mm, err := meshnet.New(meshnet.Config{Kind: meshnet.Mesh, Shape: shape, StallThreshold: 512})
		if err != nil {
			return e9Result{}, err
		}
		cm, bm, tm, err := oneShot(mm, p)
		if err != nil {
			return e9Result{}, err
		}
		return e9Result{cx, bx, tx, cm, bm, tm}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		p := patterns[i]
		cx, bx, cm, bm := res.cx, res.bx, res.cm, res.bm
		tbl.AddRow(p.Name(), res.cx, res.bx, res.tx, res.cm, res.bm, res.tm)
		switch p.(type) {
		case traffic.RingNeighbor, traffic.MeshNeighbor, traffic.HypercubeNeighbor:
			if cx != 0 || bx != 0 {
				pass = false
			}
		}
		if _, isHC := p.(traffic.HypercubeNeighbor); isHC && (cm > 0 || bm > 0) {
			meshContends = true // long hypercube exchanges serialize on mesh links
		}
	}
	pass = pass && meshContends
	r.Tables = append(r.Tables, tbl)
	r.Pass = pass
	r.Notef("conflict-free guest topologies stay conflict-free on the crossbar; the mesh serializes hypercube exchanges")
	r.Notef("tree reduction converges two children on one parent port, so it conflicts on any network (reported, not asserted)")
	return r, nil
}

// runE10 tabulates the structural claims of Section 3.1: hop counts bounded
// by d, router port counts of d+1, switch and port totals, and the
// hypercube degenerate case d = log2 n.
func runE10(opt Options) (*Report, error) {
	r := &Report{ID: "E10", Title: "Structural scaling of the MD crossbar", Paper: "Sec. 3.1"}
	configs := [][]int{
		{64},
		{8, 8},
		{4, 4, 4},
		{2, 2, 2, 2, 2, 2}, // d = log2 n: the hypercube case
	}
	if opt.Quick {
		configs = configs[:3]
	}
	tbl := stats.NewTable("E10 structures with n = 64 PEs",
		"shape", "d", "router ports", "crossbars", "max hops", "avg hops", "total switch ports")
	pass := true
	for _, cfgShape := range configs {
		shape := geom.MustShape(cfgShape...)
		m, err := newCrossbar(shape)
		if err != nil {
			return nil, err
		}
		maxHops, sumHops, pairs := 0, 0, 0
		shape.Enumerate(func(src geom.Coord) bool {
			shape.Enumerate(func(dst geom.Coord) bool {
				h := src.Distance(dst)
				if h > maxHops {
					maxHops = h
				}
				sumHops += h
				pairs++
				return true
			})
			return true
		})
		_, xbs := m.Network().SwitchCount()
		tbl.AddRow(shape.String(), shape.Dims(), shape.Dims()+1, xbs,
			maxHops, float64(sumHops)/float64(pairs), m.Network().PortCount())
		if maxHops > shape.Dims() {
			pass = false
		}
	}
	r.Tables = append(r.Tables, tbl)
	r.Pass = pass
	r.Notef("max crossbar hops never exceed d; router ports stay at d+1 (vs log2(n)+1 for a hypercube router)")
	r.Notef("at d = log2 n the MD crossbar's 2-point crossbars degenerate into direct router-router links: the hypercube")
	return r, nil
}

// --- A-group ablations ---

func init() {
	register(Experiment{ID: "A1", Title: "Fan-out acquisition: atomic vs incremental", Paper: "DESIGN.md ablation", Run: runA1})
	register(Experiment{ID: "A2", Title: "Buffer depth: wormhole vs virtual cut-through", Paper: "DESIGN.md ablation", Run: runA2})
}

// runA1 compares per-switch fan-out acquisition modes. Shape criterion: with
// atomic acquisition the serialized scheme drains; with incremental
// (hold-and-wait inside one switch) even two serialized broadcasts can wedge
// at the S-XB itself — the hardware's all-at-once fan engagement matters.
func runA1(opt Options) (*Report, error) {
	r := &Report{ID: "A1", Title: "Fan-out acquisition: atomic vs incremental", Paper: "DESIGN.md ablation"}
	shape := geom.MustShape(4, 4)
	tbl := stats.NewTable("A1 two simultaneous broadcasts on 4x4",
		"acquisition", "scheme", "outcome", "cycles")
	type cfg struct {
		acq   engine.AcquireMode
		naive bool
	}
	cases := []cfg{
		{engine.AcquireAtomic, false},
		{engine.AcquireAtomic, true},
		{engine.AcquireIncremental, false},
		{engine.AcquireIncremental, true},
	}
	outcomes := map[[2]bool]bool{} // [incremental, naive] -> deadlocked
	for _, c := range cases {
		m, err := core.NewMachine(core.Config{
			Shape:          shape,
			NaiveBroadcast: c.naive,
			Engine:         engine.Config{BufferDepth: 2, LinkDelay: 1, Acquire: c.acq},
			StallThreshold: 256,
		})
		if err != nil {
			return nil, err
		}
		if _, _, err := m.Broadcast(geom.Coord{1, 0}, 8); err != nil {
			return nil, err
		}
		if _, _, err := m.Broadcast(geom.Coord{2, 3}, 8); err != nil {
			return nil, err
		}
		out := m.Run(runBudget)
		acq := "atomic"
		if c.acq == engine.AcquireIncremental {
			acq = "incremental"
		}
		scheme := "S-XB serialized"
		if c.naive {
			scheme = "naive tree"
		}
		tbl.AddRow(acq, scheme, outcomeWord(out), out.Cycle)
		outcomes[[2]bool{c.acq == engine.AcquireIncremental, c.naive}] = out.Deadlocked || out.Stalled
	}
	r.Tables = append(r.Tables, tbl)
	r.Pass = !outcomes[[2]bool{false, false}] && // atomic + serialized drains
		outcomes[[2]bool{false, true}] && // atomic + naive deadlocks across switches
		outcomes[[2]bool{true, true}] // incremental + naive deadlocks too
	r.Notef("the naive tree deadlocks under both modes (the cycle spans crossbars); the serialized scheme drains under both here because the S-XB's per-port arbiters agree on one winner — atomic acquisition removes even the possibility of a split fan")
	return r, nil
}

// runA2 sweeps input buffer depth against a fixed 8-flit packet size at a
// moderate load. Shape criterion: latency does not increase with depth, and
// deep buffers (virtual cut-through regime) deliver at least the shallow
// (wormhole regime) throughput.
func runA2(opt Options) (*Report, error) {
	r := &Report{ID: "A2", Title: "Buffer depth: wormhole vs virtual cut-through", Paper: "DESIGN.md ablation"}
	shape := geom.MustShape(6, 6)
	depths := []int{1, 2, 4, 8, 16}
	warmup, measure := int64(400), int64(1500)
	if opt.Quick {
		depths = []int{1, 4, 16}
		warmup, measure = 200, 500
	}
	tbl := stats.NewTable("A2 buffer depth sweep, 8-flit packets, uniform load 0.1 on 6x6",
		"depth", "regime", "throughput", "mean lat", "p95 lat")
	results, err := sweepCells(opt, len(depths), func(i int) (traffic.Result, error) {
		m, err := core.NewMachine(core.Config{
			Shape:          shape,
			Engine:         engine.Config{BufferDepth: depths[i], LinkDelay: 1},
			StallThreshold: 512,
		})
		if err != nil {
			return traffic.Result{}, err
		}
		return drive(m, traffic.Uniform{Shape: shape}, 0.1, 8, warmup, measure, 7), nil
	})
	if err != nil {
		return nil, err
	}
	var first, last traffic.Result
	for i, res := range results {
		depth := depths[i]
		regime := "wormhole-like"
		if depth >= 8 {
			regime = "virtual cut-through"
		}
		tbl.AddRow(depth, regime, res.Throughput, res.Latency.Mean(), res.Latency.Percentile(95))
		if i == 0 {
			first = res
		}
		last = res
	}
	r.Tables = append(r.Tables, tbl)
	r.Pass = last.Latency.Mean() <= first.Latency.Mean() && last.Throughput >= first.Throughput*0.95
	r.Notef("depth >= packet size decouples blocked packets from upstream channels (virtual cut-through); shallow buffers couple them (wormhole), raising contention latency")
	return r, nil
}
