// Package experiments regenerates every evaluated artifact of the paper.
// The paper's evaluation is the sequence of figure-level scenarios
// (Figs. 5-10) plus the qualitative Section 3 claims; DESIGN.md maps each to
// an experiment id (E1-E10) and adds ablations (A1-A3). Each experiment
// produces plain-text tables via internal/stats and a Pass verdict for its
// "shape" criterion — the qualitative agreement the reproduction targets
// (who deadlocks, who wins, what scales how), not absolute numbers.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"sr2201/internal/stats"
	"sr2201/internal/sweep"
)

// Options tune experiment scale.
type Options struct {
	// Quick shrinks sweeps for benchmarks and CI; the full runs are the
	// defaults used to produce EXPERIMENTS.md.
	Quick bool
	// Parallel caps the worker pool used for independent sweep cells
	// (<= 0 means sweep.DefaultParallel(), 1 forces serial execution).
	// Every cell builds its own machine and rand source, and results are
	// merged by cell index, so reports are byte-identical at every
	// parallelism level — the golden tests pin this.
	Parallel int
	// Ctx, if non-nil, cancels sweeps between cells: a running cell
	// finishes, unstarted cells never start, and the experiment returns
	// ctx.Err(). The job server sets this; the CLIs leave it nil.
	Ctx context.Context
	// Budget, if non-nil, draws every sweep worker slot from a budget
	// shared with concurrently running experiments (across jobs), so a
	// server honors one global -parallel no matter how many jobs run.
	// A completed run's report is byte-identical with or without it.
	Budget *sweep.Limiter
	// OnCell, if non-nil, is called once per completed sweep cell with the
	// simulated cycles that cell consumed (0 when the cell does not track
	// cycles). Calls arrive from worker goroutines in completion order;
	// the jobs layer serializes them into its ordered event stream.
	OnCell func(cycles int64)
	// Shards steps each experiment machine on that many spatial shards
	// where the experiment supports it (currently the E14 scale run);
	// <= 1 selects the serial stepper. Reports are byte-identical at any
	// shard count — sharding only changes wall-clock time.
	Shards int
}

// cellDone reports one completed unit of work with its simulated-cycle count
// to the progress hook. Experiments that iterate sequentially instead of
// fanning out through sweepCells (e.g. the full-machine walk) call it once
// per logical cell so the jobs layer sees their progress too.
func (opt Options) cellDone(cycles int64) {
	if opt.OnCell != nil {
		opt.OnCell(cycles)
	}
}

// sweepCells fans one experiment's independent cells through the worker
// pool. It is the single funnel between the experiment bodies and
// internal/sweep, so the server-side knobs (cancellation context, shared
// budget, progress hook) apply uniformly without each experiment caring.
func sweepCells[R any](opt Options, n int, fn func(i int) (R, error)) ([]R, error) {
	run := fn
	if opt.OnCell != nil {
		run = func(i int) (R, error) {
			r, err := fn(i)
			// Cells whose result knows its simulated-cycle count (e.g.
			// traffic.Result) report it; the rest count as zero-cycle cells.
			var cycles int64
			if c, ok := any(r).(interface{ SimCycles() int64 }); ok && err == nil {
				cycles = c.SimCycles()
			}
			opt.OnCell(cycles)
			return r, err
		}
	}
	if opt.Ctx != nil || opt.Budget != nil {
		return sweep.DoCtxErr(opt.Ctx, opt.Budget, n, opt.Parallel, run)
	}
	return sweep.DoErr(n, opt.Parallel, run)
}

// Report is one experiment's output.
type Report struct {
	ID    string
	Title string
	// Paper names the artifact reproduced (figure/section).
	Paper  string
	Tables []*stats.Table
	Notes  []string
	// Pass records whether the shape criterion held.
	Pass bool
}

// Notef appends a formatted note.
func (r *Report) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the full report.
func (r *Report) String() string {
	var b strings.Builder
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "== %s: %s (%s) [%s]\n", r.ID, r.Title, r.Paper, verdict)
	for _, t := range r.Tables {
		b.WriteByte('\n')
		b.WriteString(t.String())
	}
	if len(r.Notes) > 0 {
		b.WriteByte('\n')
		for _, n := range r.Notes {
			fmt.Fprintf(&b, "note: %s\n", n)
		}
	}
	return b.String()
}

// Experiment couples an id with its runner.
type Experiment struct {
	ID    string
	Title string
	Paper string
	Run   func(Options) (*Report, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every registered experiment, ordered by series (E, A, F, V, R,
// H, DR) then numerically within the series.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	rank := func(id string) int {
		if strings.HasPrefix(id, "DR") {
			return 6
		}
		switch id[0] {
		case 'E':
			return 0
		case 'A':
			return 1
		case 'F':
			return 2
		case 'V':
			return 3
		case 'R':
			return 4
		case 'H':
			return 5
		default:
			return 7
		}
	}
	// num parses the numeric suffix after the alphabetic series prefix
	// ("V3" -> 3, "DR12" -> 12).
	num := func(id string) int {
		i := 0
		for i < len(id) && (id[i] < '0' || id[i] > '9') {
			i++
		}
		var n int
		fmt.Sscanf(id[i:], "%d", &n)
		return n
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].ID, out[j].ID
		if rank(a) != rank(b) {
			return rank(a) < rank(b)
		}
		if an, bn := num(a), num(b); an != bn {
			return an < bn
		}
		return a < b
	})
	return out
}

// ByID fetches one experiment.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// Resolve maps a list of ids (case-insensitive; the single keyword "all"
// selects every experiment in id order) to experiments, preserving the
// requested order. It is the shared id front end of mdxbench and the job
// server, so both reject the same inputs and run the same sets.
func Resolve(ids []string) ([]Experiment, error) {
	if len(ids) == 1 && strings.EqualFold(strings.TrimSpace(ids[0]), "all") {
		return All(), nil
	}
	out := make([]Experiment, 0, len(ids))
	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := ByID(strings.ToUpper(id))
		if !ok {
			return nil, fmt.Errorf("experiments: unknown experiment %q", id)
		}
		out = append(out, e)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: empty experiment list")
	}
	return out, nil
}

// RenderReport renders one report exactly as mdxbench prints it to stdout
// (the report text plus the blank separator line). The job server reuses it
// so an HTTP job artifact is byte-identical to the CLI run.
func RenderReport(r *Report) string { return r.String() + "\n" }
