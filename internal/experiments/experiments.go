// Package experiments regenerates every evaluated artifact of the paper.
// The paper's evaluation is the sequence of figure-level scenarios
// (Figs. 5-10) plus the qualitative Section 3 claims; DESIGN.md maps each to
// an experiment id (E1-E10) and adds ablations (A1-A3). Each experiment
// produces plain-text tables via internal/stats and a Pass verdict for its
// "shape" criterion — the qualitative agreement the reproduction targets
// (who deadlocks, who wins, what scales how), not absolute numbers.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"sr2201/internal/stats"
)

// Options tune experiment scale.
type Options struct {
	// Quick shrinks sweeps for benchmarks and CI; the full runs are the
	// defaults used to produce EXPERIMENTS.md.
	Quick bool
	// Parallel caps the worker pool used for independent sweep cells
	// (<= 0 means sweep.DefaultParallel(), 1 forces serial execution).
	// Every cell builds its own machine and rand source, and results are
	// merged by cell index, so reports are byte-identical at every
	// parallelism level — the golden tests pin this.
	Parallel int
}

// Report is one experiment's output.
type Report struct {
	ID    string
	Title string
	// Paper names the artifact reproduced (figure/section).
	Paper  string
	Tables []*stats.Table
	Notes  []string
	// Pass records whether the shape criterion held.
	Pass bool
}

// Notef appends a formatted note.
func (r *Report) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the full report.
func (r *Report) String() string {
	var b strings.Builder
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "== %s: %s (%s) [%s]\n", r.ID, r.Title, r.Paper, verdict)
	for _, t := range r.Tables {
		b.WriteByte('\n')
		b.WriteString(t.String())
	}
	if len(r.Notes) > 0 {
		b.WriteByte('\n')
		for _, n := range r.Notes {
			fmt.Fprintf(&b, "note: %s\n", n)
		}
	}
	return b.String()
}

// Experiment couples an id with its runner.
type Experiment struct {
	ID    string
	Title string
	Paper string
	Run   func(Options) (*Report, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every registered experiment, ordered by series (E, A, F, V)
// then numerically within the series.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	rank := func(id string) int {
		switch id[0] {
		case 'E':
			return 0
		case 'A':
			return 1
		case 'F':
			return 2
		case 'V':
			return 3
		default:
			return 4
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].ID, out[j].ID
		if rank(a) != rank(b) {
			return rank(a) < rank(b)
		}
		var an, bn int
		fmt.Sscanf(a[1:], "%d", &an)
		fmt.Sscanf(b[1:], "%d", &bn)
		if an != bn {
			return an < bn
		}
		return a < b
	})
	return out
}

// ByID fetches one experiment.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}
