package experiments

import (
	"fmt"

	"sr2201/internal/collective"
	"sr2201/internal/core"
	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/stats"
)

func init() {
	register(Experiment{ID: "E12", Title: "Collectives on the interconnect", Paper: "Sec. 1/3 motivation", Run: runE12})
}

// runE12 quantifies what the hardware broadcast buys the collective
// operations the paper's introduction motivates: allreduce as tree-reduce +
// one hardware broadcast versus n serialized broadcasts, across machine
// sizes, and the cost of running the same collective with a network fault.
// Shape criterion: the hardware-broadcast allreduce wins by a factor that
// grows with machine size, and a single fault costs exactly one participant
// while completing within 2x the fault-free time.
func runE12(opt Options) (*Report, error) {
	r := &Report{ID: "E12", Title: "Collectives on the interconnect", Paper: "Sec. 1/3 motivation"}
	sizes := [][]int{{4, 4}, {8, 8}, {16, 16}}
	if opt.Quick {
		sizes = [][]int{{4, 4}, {8, 8}}
	}
	tbl := stats.NewTable("E12 allreduce: tree-reduce + 1 hardware broadcast vs n broadcasts",
		"shape", "PEs", "allreduce cycles", "n-broadcast cycles", "speedup")
	var speedups []float64
	for _, extents := range sizes {
		shape := geom.MustShape(extents...)
		m, err := core.NewMachine(core.Config{Shape: shape, StallThreshold: 512})
		if err != nil {
			return nil, err
		}
		res, err := collective.Allreduce(m, geom.Coord{}, 8)
		if err != nil {
			return nil, err
		}
		m2, err := core.NewMachine(core.Config{Shape: shape, StallThreshold: 512})
		if err != nil {
			return nil, err
		}
		start := m2.Cycle()
		var berr error
		shape.Enumerate(func(c geom.Coord) bool {
			if _, _, err := m2.Broadcast(c, 8); err != nil {
				berr = err
				return false
			}
			return true
		})
		if berr != nil {
			return nil, berr
		}
		if out := m2.Run(runBudget); !out.Drained {
			return nil, fmt.Errorf("E12: all-broadcast on %s did not drain", shape)
		}
		allB := m2.Cycle() - start
		speedup := float64(allB) / float64(res.Cycles)
		speedups = append(speedups, speedup)
		tbl.AddRow(shape.String(), shape.Size(), res.Cycles, allB, speedup)
	}
	r.Tables = append(r.Tables, tbl)

	// Fault impact on a fixed size.
	shape := geom.MustShape(8, 8)
	clean, err := core.NewMachine(core.Config{Shape: shape, StallThreshold: 512})
	if err != nil {
		return nil, err
	}
	resClean, err := collective.Allreduce(clean, geom.Coord{}, 8)
	if err != nil {
		return nil, err
	}
	faulted, err := core.NewMachine(core.Config{Shape: shape, StallThreshold: 512})
	if err != nil {
		return nil, err
	}
	if err := faulted.AddFault(fault.RouterFault(geom.Coord{3, 4})); err != nil {
		return nil, err
	}
	resFault, err := collective.Allreduce(faulted, geom.Coord{}, 8)
	if err != nil {
		return nil, err
	}
	ftbl := stats.NewTable("E12 allreduce under a single router fault (8x8)",
		"config", "participants", "cycles", "messages", "copies")
	ftbl.AddRow("fault-free", resClean.Participants, resClean.Cycles, resClean.Messages, resClean.Copies)
	ftbl.AddRow("faulty RTC(3,4)", resFault.Participants, resFault.Cycles, resFault.Messages, resFault.Copies)
	r.Tables = append(r.Tables, ftbl)

	growing := true
	for i := 1; i < len(speedups); i++ {
		if speedups[i] <= speedups[i-1] {
			growing = false
		}
	}
	r.Pass = growing && speedups[0] > 1 &&
		resFault.Participants == shape.Size()-1 &&
		resFault.Cycles <= 2*resClean.Cycles
	r.Notef("one hardware broadcast replaces n serialized ones; a single fault costs one participant and bounded extra cycles")
	return r, nil
}
