package experiments_test

// Joins the golden determinism digests (golden_test.go) to the jobs layer:
// the artifact a job produces for an experiment set must hash identically to
// the direct in-process render, at every pool width. This is the same FNV-1a
// digest discipline the engine and report layers already answer to, extended
// across the service boundary. It lives in an external test package because
// jobs imports experiments.

import (
	"hash/fnv"
	"testing"
	"time"

	"sr2201/internal/experiments"
	"sr2201/internal/jobs"
)

func digest(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// directDigest renders the experiment set exactly as runExperiments does:
// resolved order, RenderReport concatenation.
func directDigest(t *testing.T, ids []string, parallel int) uint64 {
	t.Helper()
	list, err := experiments.Resolve(ids)
	if err != nil {
		t.Fatal(err)
	}
	var out []byte
	for _, e := range list {
		r, err := e.Run(experiments.Options{Quick: true, Parallel: parallel})
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		out = append(out, experiments.RenderReport(r)...)
	}
	return digest(out)
}

func jobDigest(t *testing.T, ids []string, parallel int) uint64 {
	t.Helper()
	m := jobs.NewManager(jobs.Config{Workers: 2, Parallel: parallel})
	defer m.Stop()
	id, _, err := m.Submit(jobs.Spec{
		Kind:        jobs.KindExperiments,
		Experiments: &jobs.ExperimentsSpec{IDs: ids, Quick: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		v, err := m.Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		if v.Status == jobs.StatusDone {
			break
		}
		if v.Status == jobs.StatusFailed || v.Status == jobs.StatusCanceled {
			t.Fatalf("job %s: %s (%s)", id, v.Status, v.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished", id)
		}
		time.Sleep(5 * time.Millisecond)
	}
	artifact, ok, err := m.Artifact(id)
	if err != nil || !ok {
		t.Fatalf("artifact: ok=%v err=%v", ok, err)
	}
	return digest(artifact)
}

func TestGoldenDigestsJoinJobsLayer(t *testing.T) {
	ids := []string{"E1", "E4", "F1", "R1"}
	serial := directDigest(t, ids, 1)
	for _, parallel := range []int{1, 4} {
		if d := directDigest(t, ids, parallel); d != serial {
			t.Errorf("direct render at parallel=%d digest %#x != serial %#x", parallel, d, serial)
		}
		if d := jobDigest(t, ids, parallel); d != serial {
			t.Errorf("job artifact at parallel=%d digest %#x != direct render %#x", parallel, d, serial)
		}
	}
}
