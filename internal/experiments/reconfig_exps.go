package experiments

// DR-series (dynamic reconfiguration): online routing-table reconfiguration
// experiments. PR 5's answer to a mid-run fault is rebuild-in-place — every
// packet, old and new, routes under the freshly compiled table at once, and
// whatever deadlocks that unprotected window produces is the recovery
// supervisor's to purge and retransmit. internal/reconfig replaces that with
// an epoch-stamped swap: in-flight packets keep their old tables, the
// transition window is certified safe by proving the union dependence graph
// (old edges ∪ new edges, restricted to live channels and in-flight traffic
// classes) acyclic before the commit, and a cyclic union degrades to a
// bounded drain. These experiments price the difference on the paper's own
// artifacts: the Fig. 9 configuration with the fault landing mid-run (DR1)
// and the R2 second-fault sweep (DR2), counting packets lost and cycles of
// downtime under each strategy.

import (
	"strings"

	"sr2201/internal/campaign"
	"sr2201/internal/core"
	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/inject"
	"sr2201/internal/reconfig"
	"sr2201/internal/recovery"
	"sr2201/internal/stats"
)

func init() {
	register(Experiment{ID: "DR1", Title: "Online reconfiguration vs purge-and-retransmit on the mid-run Fig. 9 fault", Paper: "Fig. 9 + reconfiguration extension", Run: runDR1})
	register(Experiment{ID: "DR2", Title: "Second-fault sweep under online reconfiguration", Paper: "Sec. 4 + reconfiguration extension", Run: runDR2})
}

// dr1Cell is the Fig. 9 configuration with the fault landing MID-RUN: a 4x4
// separate-D-XB machine whose router (2,1) dies at faultAt (a scheduled
// event, not a preset), a two-packet unicast pair that detours around it
// afterwards, and a broadcast crossing the detour. reconfigMode selects the
// trigger mode ("" = PR 5 rebuild-in-place); recovery stays armed in every
// cell so a deadlock is visible as a sacrifice, never a hang.
func dr1Cell(reconfigMode string, faultAt, bcastAt, wave2At int64) campaign.Spec {
	return campaign.Spec{
		Shape:       geom.MustShape(4, 4),
		SXB:         geom.Coord{0, 0},
		DXB:         geom.Coord{0, 3},
		DXBSeparate: true,
		Events:      []inject.Event{{Cycle: faultAt, Fault: fault.RouterFault(geom.Coord{2, 1})}},
		Pattern:     campaign.Pair(geom.Coord{0, 1}, geom.Coord{2, 2}, 2),
		Waves:       2,
		Gap:         wave2At,
		PacketSize:  24,
		Broadcasts:  []campaign.Broadcast{{Cycle: bcastAt, Src: geom.Coord{3, 2}, Size: 24}},
		Inject:      inject.Options{Retransmit: true, RetryAfter: 32, StallThreshold: 256},
		Recovery:    recovery.Options{Enabled: true, StallThreshold: 256},
		Reconfig:    reconfigMode,
		Horizon:     20_000,
	}
}

// drainCell is the DR1 inadmissible-window scenario: the Fig. 9 machine and
// broadcast, with the unicast pair shifted off the dying router so both
// traffic classes are still in flight when the fault fires.
func drainCell() campaign.Spec {
	sp := dr1Cell(core.ReconfigOnFault, 8, 0, 48)
	sp.Pattern = campaign.Pair(geom.Coord{0, 0}, geom.Coord{3, 3}, 2)
	return sp
}

// runReconfigCell runs one cell collecting its reconfiguration events, so a
// report can pin the transition certificates alongside the verdict.
func runReconfigCell(spec campaign.Spec) (campaign.CellResult, []reconfig.Event, error) {
	c, err := campaign.NewCellRun(spec)
	if err != nil {
		return campaign.CellResult{}, nil, err
	}
	var events []reconfig.Event
	c.OnReconfig(func(ev reconfig.Event) { events = append(events, ev) })
	for !c.Step() {
	}
	res, err := c.Result()
	return res, events, err
}

// packetsLost is the experiment's price metric: every packet the strategy
// sacrificed (recovery victims, transition-drain purges) or terminally
// failed to deliver (retry exhaustion, unreachability, lost headers,
// non-retransmittable broadcast branches). A sacrificed packet whose
// retransmission succeeds still costs 1 — that is the purge-and-retransmit
// price the reconfiguration is trying to avoid.
func packetsLost(c campaign.CellResult) int {
	return c.Stats.Victims + c.ReconfigDrained + finalLosses(c.Stats)
}

// runDR1 prices a mid-run fault on the Fig. 9 configuration three ways. The
// control keeps PR 5 semantics: the fault rebuilds the separate-D-XB table in
// place, the subsequent detour+broadcast wait cycle deadlocks, and recovery
// purges a victim — purge-and-retransmit. The hot-swap cell lands the same
// fault with reconfiguration on while the network is quiet: the union graph
// is acyclic, the machine swaps to the unified scheme live, and the same
// traffic drains with zero recoveries and zero losses. The drain cell lands
// the fault while both traffic classes are in flight: the union graph is
// provably cyclic (its witness is pinned in the notes), so the swap commits
// only after a bounded drain of the retiring packets. Shape criterion: the
// control deadlocks and loses strictly more packets than the hot-swap cell,
// which runs the identical workload; both reconfigured cells drain with zero
// post-swap recoveries; every committed swap carries an acyclicity
// certificate for its static graph; and the drain cell purges no more than
// its in-flight population while pinning a concrete cycle witness both for
// the refused separate-scheme recompile and for the cyclic transition union.
func runDR1(opt Options) (*Report, error) {
	r := &Report{ID: "DR1", Title: "Online reconfiguration vs purge-and-retransmit on the mid-run Fig. 9 fault", Paper: "Fig. 9 + reconfiguration extension"}

	type cell struct {
		name string
		spec campaign.Spec
	}
	cells := []cell{
		// Fault at 40: the first wave has drained, the second wave and the
		// broadcast inject at 48 — after the swap window. The control walks
		// straight into the Fig. 9 wait cycle under its rebuilt-in-place
		// separate tables; the reconfigured run has already hot-swapped to
		// the unified scheme.
		{"purge-and-retransmit", dr1Cell("", 40, 48, 48)},
		{"reconfig, hot swap", dr1Cell(core.ReconfigOnFault, 40, 48, 48)},
		// Fault at 8: the broadcast and a unicast pair are in flight, so the
		// transition union is cyclic and must drain. The pair is shifted to
		// (0,0)->(3,3) — a path that avoids the dying router — because an
		// in-flight packet the fault itself kills never reaches the
		// admissibility check; the inadmissible window needs survivors of
		// both traffic classes.
		{"reconfig, drain", drainCell()},
	}

	type outcome struct {
		res campaign.CellResult
		evs []reconfig.Event
	}
	outs, err := sweepCells(opt, len(cells), func(i int) (outcome, error) {
		res, evs, err := runReconfigCell(cells[i].spec)
		return outcome{res, evs}, err
	})
	if err != nil {
		return nil, err
	}

	tbl := stats.NewTable("DR1 mid-run Fig. 9 fault: PR 5 purge-and-retransmit vs online reconfiguration",
		"strategy", "outcome", "end cycle", "recoveries", "swaps", "drained", "victims", "delivered", "bcopies", "lost")
	for i, o := range outs {
		c := o.res
		tbl.AddRow(cells[i].name, cellOutcome(c), c.EndCycle, c.Recoveries, c.Reconfigured,
			c.ReconfigDrained, c.Stats.Victims, c.Delivered, c.BroadcastCopies, packetsLost(c))
	}
	r.Tables = append(r.Tables, tbl)

	control, hot, drain := outs[0].res, outs[1].res, outs[2].res
	certified := true
	refusalPinned, unionPinned := false, false
	for _, o := range outs[1:] {
		for _, ev := range o.evs {
			r.Notef("%s", ev)
			switch ev.Outcome {
			case reconfig.OutcomeHotSwap:
				if !ev.Candidate.Acyclic || !ev.Union.Acyclic {
					certified = false
				}
			case reconfig.OutcomeDrain:
				if !ev.Candidate.Acyclic {
					certified = false
				}
				if !ev.Union.Acyclic && len(ev.Union.Cycle) > 0 {
					unionPinned = true
					r.Notef("union witness: %s", strings.Join(ev.Union.Cycle, " -> "))
				}
			default:
				certified = false
			}
			for _, ref := range ev.Refusals {
				if !ref.Acyclic && len(ref.Cycle) > 0 {
					refusalPinned = true
					r.Notef("refused recompile of %s: cycle %s", ref.Scheme, strings.Join(ref.Cycle, " -> "))
				}
			}
		}
	}

	r.Pass = control.Drained && control.Recoveries > 0 &&
		hot.Drained && hot.Recoveries == 0 && hot.Reconfigured == 1 && hot.ReconfigDrained == 0 &&
		drain.Drained && drain.Recoveries == 0 && drain.Reconfigured == 1 &&
		drain.ReconfigDrained > 0 && drain.ReconfigDrained <= reconfig.DefaultDrainBudget &&
		packetsLost(hot) < packetsLost(control) &&
		certified && refusalPinned && unionPinned
	r.Notef("purge-and-retransmit: deadlock in the unprotected swap window, %d sacrifice(s), %d packet(s) lost, drained at cycle %d",
		control.Stats.Victims, packetsLost(control), control.EndCycle)
	r.Notef("hot swap: %d packet(s) lost, zero recoveries, drained at cycle %d — the certified transition never exposes the deadlocking window",
		packetsLost(hot), hot.EndCycle)
	r.Notef("bounded drain: %d retiring packet(s) purged under certificate, %d lost, drained at cycle %d",
		drain.ReconfigDrained, packetsLost(drain), drain.EndCycle)
	return r, nil
}

// dr2Config is the R2 second-fault sweep — every placement of one more dead
// router or crossbar over the preset Fig. 9 fault on the separate-D-XB
// design — with online reconfiguration layered on (or off, for the PR 5
// control).
func dr2Config(opt Options, reconfigMode string) campaign.Config {
	cfg := r2Config(opt, true)
	cfg.Reconfig = reconfigMode
	return cfg
}

// runDR2 reruns the R2 second-fault sweep with reconfiguration triggered by
// both mid-run faults and confirmed deadlocks, against the PR 5
// purge-and-retransmit control. Shape criterion: the reconfigured sweep
// commits at least one swap, never falls back to rebuild-in-place, needs
// strictly fewer recoveries and loses strictly fewer packets than the
// control, and stays as clean as R2 demands — zero wedges, zero livelocks,
// refusals exactly as reachability predicts, no undocumented losses.
func runDR2(opt Options) (*Report, error) {
	r := &Report{ID: "DR2", Title: "Second-fault sweep under online reconfiguration", Paper: "Sec. 4 + reconfiguration extension"}

	control, err := campaign.Run(dr2Config(opt, ""))
	if err != nil {
		return nil, err
	}
	recfg, err := campaign.Run(dr2Config(opt, core.ReconfigBoth))
	if err != nil {
		return nil, err
	}

	audit := func(res *campaign.Result) (wedged, unpredicted, undocumented, sacrificed, lost int) {
		for _, c := range res.Cells {
			if (c.Deadlocked && !c.Drained) || (c.Stalled && !c.Deadlocked) {
				wedged++
			}
			if !c.UnreachableAsPredicted {
				unpredicted++
			}
			st := c.Stats
			final := st.LostUnreachable + st.LostExhausted + st.LostUntraceable
			if st.Duplicates != 0 ||
				(c.Drained && c.Delivered+final != c.Accepted) ||
				c.BroadcastCopies+st.DropsOther > c.BroadcastCopiesExpected {
				undocumented++
			}
			sacrificed += st.Victims + c.ReconfigDrained
			lost += finalLosses(st)
		}
		return
	}
	cWedged, cUnpred, cUndoc, cSacr, cLost := audit(control)
	rWedged, rUnpred, rUndoc, rSacr, rLost := audit(recfg)

	var cCycles, rCycles int64
	for _, c := range control.Cells {
		cCycles += c.EndCycle
	}
	for _, c := range recfg.Cells {
		rCycles += c.EndCycle
	}

	tbl := stats.NewTable("DR2 second-fault sweep: PR 5 purge-and-retransmit vs reconfig mode=both",
		"strategy", "cells", "recoveries", "swaps", "drained", "fellback", "wedged", "undocumented", "sacrificed", "lost", "total cycles")
	tbl.AddRow("purge-and-retransmit", len(control.Cells), control.Recoveries(), 0, 0, 0, cWedged, cUndoc, cSacr, cLost, cCycles)
	tbl.AddRow("reconfig both", len(recfg.Cells), recfg.Recoveries(), recfg.Reconfigured(), recfg.ReconfigDrained(), recfg.ReconfigFellBack(), rWedged, rUndoc, rSacr, rLost, rCycles)
	r.Tables = append(r.Tables, tbl)

	r.Pass = recfg.Reconfigured() > 0 && recfg.ReconfigFellBack() == 0 &&
		recfg.Recoveries() < control.Recoveries() &&
		recfg.Livelocked() == 0 && rWedged == 0 && rUnpred == 0 && rUndoc == 0 &&
		control.Livelocked() == 0 && cWedged == 0 && cUnpred == 0 && cUndoc == 0
	r.Notef("%d cells per strategy: reconfiguration commits %d swap(s) (%d drained packet(s), %d fallback(s)) and cuts recoveries %d -> %d",
		len(recfg.Cells), recfg.Reconfigured(), recfg.ReconfigDrained(), recfg.ReconfigFellBack(), control.Recoveries(), recfg.Recoveries())
	r.Notef("sacrificed packets %d -> %d, terminal losses %d -> %d, total drain cycles %d -> %d",
		cSacr, rSacr, cLost, rLost, cCycles, rCycles)
	return r, nil
}
