package experiments

// Golden determinism tests: every deadlock-scenario experiment's rendered
// report is digested with FNV-1a and must be identical across repeated runs
// and across sweep parallelism levels. The engine-level per-cycle state-hash
// tests live in internal/engine; these close the loop end to end — if any
// layer (engine scheduling, sweep sharding, report assembly) picks up
// schedule-dependent behavior, the digests diverge.

import (
	"hash/fnv"
	"math/rand"
	"testing"

	"sr2201/internal/geom"
	"sr2201/internal/sweep"
	"sr2201/internal/traffic"
)

func reportDigest(t *testing.T, id string, opt Options) uint64 {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	r, err := e.Run(opt)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	h := fnv.New64a()
	h.Write([]byte(r.String()))
	return h.Sum64()
}

func TestGoldenDeterminismAcrossRepeats(t *testing.T) {
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "F1", "F2", "F3", "R1", "R2", "H1", "H2", "H3", "V2", "V3", "V4", "DR1", "DR2"} {
		id := id
		t.Run(id, func(t *testing.T) {
			opt := Options{Quick: true, Parallel: 1}
			first := reportDigest(t, id, opt)
			if again := reportDigest(t, id, opt); again != first {
				t.Errorf("%s: repeated run digest %#x != %#x", id, again, first)
			}
		})
	}
}

func TestGoldenDeterminismAcrossParallelism(t *testing.T) {
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "F1", "F2", "F3", "R1", "R2", "H1", "H2", "H3", "V2", "V3", "V4", "DR1", "DR2"} {
		id := id
		t.Run(id, func(t *testing.T) {
			serial := reportDigest(t, id, Options{Quick: true, Parallel: 1})
			for _, p := range []int{2, 4, 8} {
				if d := reportDigest(t, id, Options{Quick: true, Parallel: p}); d != serial {
					t.Errorf("%s: parallel=%d digest %#x != serial %#x", id, p, d, serial)
				}
			}
		})
	}
}

// TestGoldenHSeriesAcrossShards pins the H-series reports across spatial
// shard counts: the topo machines step identically on the sharded engine, so
// the rendered campaign artifacts must not move by a byte.
func TestGoldenHSeriesAcrossShards(t *testing.T) {
	for _, id := range []string{"H1", "H2", "H3"} {
		id := id
		t.Run(id, func(t *testing.T) {
			serial := reportDigest(t, id, Options{Quick: true, Parallel: 1})
			for _, shards := range []int{2, 4} {
				if d := reportDigest(t, id, Options{Quick: true, Parallel: 2, Shards: shards}); d != serial {
					t.Errorf("%s: shards=%d digest %#x != serial %#x", id, shards, d, serial)
				}
			}
		})
	}
}

// TestShardRandSourcesIndependent pins the rand audit: every driver run
// builds its own rand source from its own seed, so two sweep shards given
// the same seed produce identical random streams (and identical results) no
// matter how many other shards run beside them.
func TestShardRandSourcesIndependent(t *testing.T) {
	runShard := func(seed int64) string {
		m, err := newCrossbar(geom.MustShape(4, 4))
		if err != nil {
			t.Error(err)
			return ""
		}
		res := drive(m, traffic.Uniform{Shape: m.Shape()}, 0.1, 8, 100, 300, seed)
		return res.String()
	}
	// Two shards with the same seed, surrounded by decoys with different
	// seeds, all racing on the pool.
	seeds := []int64{42, 7, 42, 99, 1, 42}
	results := sweep.Do(len(seeds), len(seeds), func(i int) string { return runShard(seeds[i]) })
	if results[0] == "" {
		t.Fatal("shard failed")
	}
	if results[0] != results[2] || results[0] != results[5] {
		t.Errorf("same-seed shards diverged:\n%s\n%s\n%s", results[0], results[2], results[5])
	}
	if results[0] == results[1] {
		t.Errorf("different-seed shards coincided: %s", results[0])
	}
	// And the stream itself: two rand sources from one seed stay in
	// lockstep even when drawn concurrently (no shared global source).
	draws := sweep.Do(2, 2, func(int) []float64 {
		rng := rand.New(rand.NewSource(1234))
		out := make([]float64, 1000)
		for i := range out {
			out[i] = rng.Float64()
		}
		return out
	})
	for i := range draws[0] {
		if draws[0][i] != draws[1][i] {
			t.Fatalf("draw %d diverged: %v vs %v", i, draws[0][i], draws[1][i])
		}
	}
}
