package experiments

import (
	"fmt"

	"sr2201/internal/core"
	"sr2201/internal/deadlock"
	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/stats"
)

func init() {
	register(Experiment{ID: "E1", Title: "Broadcast deadlock without serialization", Paper: "Fig. 5", Run: runE1})
	register(Experiment{ID: "E2", Title: "Serialized broadcast walkthrough (Y-X-Y)", Paper: "Fig. 6", Run: runE2})
	register(Experiment{ID: "E3", Title: "Detour path around a faulty router", Paper: "Figs. 7-8", Run: runE3})
	register(Experiment{ID: "E4", Title: "Deadlock with D-XB != S-XB", Paper: "Fig. 9", Run: runE4})
	register(Experiment{ID: "E5", Title: "Deadlock freedom with D-XB = S-XB", Paper: "Fig. 10 / Sec. 5", Run: runE5})
}

const runBudget = 200_000

// outcomeWord renders a deadlock.Outcome for tables.
func outcomeWord(o deadlock.Outcome) string {
	switch {
	case o.Deadlocked:
		return "DEADLOCK"
	case o.Stalled:
		return "stall"
	case o.Drained:
		return "drained"
	default:
		return "budget"
	}
}

// runE1 launches k simultaneous broadcasts under the naive tree scheme and
// under S-XB serialization. Shape criterion: the naive scheme deadlocks for
// some k >= 2, the serialized scheme never does.
func runE1(opt Options) (*Report, error) {
	r := &Report{ID: "E1", Title: "Broadcast deadlock without serialization", Paper: "Fig. 5"}
	tbl := stats.NewTable("Simultaneous broadcasts under cut-through routing",
		"shape", "broadcasts", "scheme", "outcome", "cycles", "copies")
	shapes := [][]int{{4, 3}, {4, 4}}
	if opt.Quick {
		shapes = [][]int{{4, 3}}
	}
	naiveDeadlocks, serializedFailures := 0, 0
	for _, sh := range shapes {
		shape := geom.MustShape(sh...)
		var srcs []geom.Coord
		shape.Enumerate(func(c geom.Coord) bool {
			if (c[0]+2*c[1])%5 == 1 {
				srcs = append(srcs, c)
			}
			return true
		})
		for k := 2; k <= len(srcs) && k <= 4; k++ {
			for _, naive := range []bool{true, false} {
				m, err := core.NewMachine(core.Config{
					Shape:          shape,
					NaiveBroadcast: naive,
					StallThreshold: 256,
				})
				if err != nil {
					return nil, err
				}
				for _, s := range srcs[:k] {
					if _, _, err := m.Broadcast(s, 8); err != nil {
						return nil, err
					}
				}
				out := m.Run(runBudget)
				scheme := "S-XB serialized"
				if naive {
					scheme = "naive tree"
					if out.Deadlocked {
						naiveDeadlocks++
					}
				} else if !out.Drained {
					serializedFailures++
				}
				tbl.AddRow(shape.String(), k, scheme, outcomeWord(out), out.Cycle, len(m.Deliveries()))
			}
		}
	}
	r.Tables = append(r.Tables, tbl)
	r.Pass = naiveDeadlocks > 0 && serializedFailures == 0
	r.Notef("naive-tree deadlocks: %d; serialized failures: %d", naiveDeadlocks, serializedFailures)
	return r, nil
}

// runE2 expands one broadcast statically and dynamically, checking the
// paper's Fig. 6 structure: a Y request leg, serialization at the S-XB, and
// a fan that delivers exactly one copy to every PE.
func runE2(opt Options) (*Report, error) {
	r := &Report{ID: "E2", Title: "Serialized broadcast walkthrough (Y-X-Y)", Paper: "Fig. 6"}
	shape := geom.MustShape(4, 3)
	m, err := core.NewMachine(core.Config{Shape: shape, SXB: geom.Coord{0, 1}})
	if err != nil {
		return nil, err
	}
	src := geom.Coord{3, 2}
	tree, err := m.Policy().BroadcastTree(src)
	if err != nil {
		return nil, err
	}
	if _, _, err := m.Broadcast(src, 8); err != nil {
		return nil, err
	}
	out := m.Run(runBudget)

	tbl := stats.NewTable(fmt.Sprintf("Broadcast from %v via S-XB %v", src, m.Policy().EffectiveSXB()),
		"metric", "value")
	tbl.AddRow("PEs covered (static tree)", len(tree.Delivered))
	tbl.AddRow("tree depth (elements)", tree.Depth)
	tbl.AddRow("tree element traversals", tree.Elements)
	tbl.AddRow("copies delivered (simulated)", len(m.Deliveries()))
	tbl.AddRow("completion cycle", out.Cycle)
	r.Tables = append(r.Tables, tbl)

	exactlyOnce := len(tree.Delivered) == shape.Size()
	for _, n := range tree.Delivered {
		if n != 1 {
			exactlyOnce = false
		}
	}
	perPE := map[geom.Coord]int{}
	for _, d := range m.Deliveries() {
		perPE[d.At]++
	}
	simOnce := len(perPE) == shape.Size()
	for _, n := range perPE {
		if n != 1 {
			simOnce = false
		}
	}
	r.Pass = out.Drained && exactlyOnce && simOnce
	r.Notef("routing is Y-X-Y: the request rides the source column, the S-XB replays, the fan rides columns")
	return r, nil
}

// runE3 reproduces the Fig. 8 walkthrough: the detour route's hop list, RC
// transitions, and the latency cost versus the fault-free route.
func runE3(opt Options) (*Report, error) {
	r := &Report{ID: "E3", Title: "Detour path around a faulty router", Paper: "Figs. 7-8"}
	shape := geom.MustShape(4, 3)
	src, dst := geom.Coord{0, 0}, geom.Coord{2, 2}
	bad := geom.Coord{2, 0} // the dimension-order turn router

	run := func(withFault bool) (int64, int, error) {
		m, err := core.NewMachine(core.Config{Shape: shape, SXB: geom.Coord{0, 1}})
		if err != nil {
			return 0, 0, err
		}
		if withFault {
			if err := m.AddFault(fault.RouterFault(bad)); err != nil {
				return 0, 0, err
			}
		}
		path, err := m.Policy().UnicastPath(src, dst)
		if err != nil {
			return 0, 0, err
		}
		if _, err := m.Send(src, dst, 8); err != nil {
			return 0, 0, err
		}
		if out := m.Run(runBudget); !out.Drained {
			return 0, 0, fmt.Errorf("E3: run did not drain")
		}
		return m.Deliveries()[0].Latency, len(path), nil
	}

	directLat, directHops, err := run(false)
	if err != nil {
		return nil, err
	}
	detourLat, detourHops, err := run(true)
	if err != nil {
		return nil, err
	}

	// Print the detoured hop list (the Fig. 8 step sequence).
	mf, err := core.NewMachine(core.Config{Shape: shape, SXB: geom.Coord{0, 1}})
	if err != nil {
		return nil, err
	}
	if err := mf.AddFault(fault.RouterFault(bad)); err != nil {
		return nil, err
	}
	path, err := mf.Policy().UnicastPath(src, dst)
	if err != nil {
		return nil, err
	}
	steps := stats.NewTable(fmt.Sprintf("Detour route %v -> %v with faulty router %v (D-XB = S-XB = %v)",
		src, dst, bad, mf.Policy().EffectiveDXB()), "step", "element", "rc", "out")
	for i, h := range path {
		steps.AddRow(i+1, h.String(), h.RC.String(), h.Out)
	}
	r.Tables = append(r.Tables, steps)

	cmp := stats.NewTable("Detour cost", "route", "elements", "packet latency (cycles)")
	cmp.AddRow("fault-free dimension order", directHops, directLat)
	cmp.AddRow("detour via D-XB", detourHops, detourLat)
	r.Tables = append(r.Tables, cmp)

	r.Pass = detourLat > directLat && detourHops > directHops
	r.Notef("the RC bit runs normal -> detour -> normal; the delivered packet is indistinguishable from a normal one")
	return r, nil
}

// fig9 builds the Fig. 9/10 machine and traffic at one broadcast offset.
func fig9(separate bool, offset, size int) (deadlock.Outcome, error) {
	cfg := core.Config{
		Shape:          geom.MustShape(4, 4),
		SXB:            geom.Coord{0, 0},
		StallThreshold: 256,
	}
	if separate {
		cfg.DXB = geom.Coord{0, 3}
		cfg.DXBSeparate = true
	}
	m, err := core.NewMachine(cfg)
	if err != nil {
		return deadlock.Outcome{}, err
	}
	if err := m.AddFault(fault.RouterFault(geom.Coord{2, 1})); err != nil {
		return deadlock.Outcome{}, err
	}
	if _, err := m.Send(geom.Coord{0, 1}, geom.Coord{2, 2}, size); err != nil {
		return deadlock.Outcome{}, err
	}
	for i := 0; i < offset; i++ {
		m.Step()
	}
	if _, _, err := m.Broadcast(geom.Coord{3, 2}, size); err != nil {
		return deadlock.Outcome{}, err
	}
	return m.Run(runBudget), nil
}

// runE4 sweeps broadcast injection offsets in the D-XB != S-XB
// configuration. Shape criterion: some offsets deadlock (the paper's point:
// the configuration *allows* deadlock).
func runE4(opt Options) (*Report, error) {
	r := &Report{ID: "E4", Title: "Deadlock with D-XB != S-XB", Paper: "Fig. 9"}
	maxOffset := 10
	if opt.Quick {
		maxOffset = 4
	}
	tbl := stats.NewTable("Detoured p2p (24 flits) + broadcast at offset, D-XB != S-XB",
		"offset", "outcome", "cycles")
	deadlocks := 0
	for off := 0; off <= maxOffset; off++ {
		out, err := fig9(true, off, 24)
		if err != nil {
			return nil, err
		}
		if out.Deadlocked {
			deadlocks++
		}
		tbl.AddRow(off, outcomeWord(out), out.Cycle)
	}
	r.Tables = append(r.Tables, tbl)
	r.Pass = deadlocks > 0
	r.Notef("%d of %d offsets deadlock — the separate D-XB allows cyclic waiting between detour and broadcast", deadlocks, maxOffset+1)
	return r, nil
}

// runE5 is the deadlock-freedom sweep for the paper's scheme: identical
// traffic with D-XB = S-XB across faults, pairs, broadcast sources and
// offsets. Shape criterion: zero deadlocks, everything drains.
func runE5(opt Options) (*Report, error) {
	r := &Report{ID: "E5", Title: "Deadlock freedom with D-XB = S-XB", Paper: "Fig. 10 / Sec. 5"}
	tbl := stats.NewTable("Exhaustive fault x traffic sweep, D-XB = S-XB", "shape", "fault kind", "scenarios", "drained", "deadlocks")

	shapes := [][]int{{3, 3}, {4, 3}}
	offsets := []int{0, 2, 4, 6}
	if opt.Quick {
		shapes = [][]int{{3, 3}}
		offsets = []int{0, 3}
	}
	totalDeadlocks := 0
	allDrained := true
	for _, sh := range shapes {
		shape := geom.MustShape(sh...)
		var faults []fault.Fault
		shape.Enumerate(func(c geom.Coord) bool {
			faults = append(faults, fault.RouterFault(c))
			return true
		})
		for _, l := range shape.LinesAlong(0) {
			faults = append(faults, fault.XBFault(l))
		}
		for _, kindName := range []string{"router", "crossbar"} {
			// Flatten the fault x offset grid into independent cells and
			// fan them out; aggregation below walks the results in cell
			// order, so the table is identical at every parallelism level.
			type cell struct {
				f   fault.Fault
				off int
			}
			var cells []cell
			for _, f := range faults {
				if (f.Kind == fault.KindRouter) != (kindName == "router") {
					continue
				}
				for _, off := range offsets {
					cells = append(cells, cell{f, off})
				}
			}
			outs, err := sweepCells(opt, len(cells), func(i int) (deadlock.Outcome, error) {
				return e5Scenario(shape, cells[i].f, cells[i].off)
			})
			if err != nil {
				return nil, err
			}
			drained, dl := 0, 0
			for _, o := range outs {
				if o.Drained {
					drained++
				}
				if o.Deadlocked {
					dl++
					totalDeadlocks++
				}
			}
			tbl.AddRow(shape.String(), kindName, len(cells), drained, dl)
			if drained != len(cells) {
				allDrained = false
			}
		}
	}
	r.Tables = append(r.Tables, tbl)
	r.Pass = totalDeadlocks == 0 && allDrained
	r.Notef("every scenario drains: detour and broadcast serialize at the same crossbar, leaving a single non-dimension-order point")
	return r, nil
}

// e5Scenario runs one fault + mixed-traffic scenario under the unified
// scheme: every deliverable detour-class pair plus one broadcast.
func e5Scenario(shape geom.Shape, f fault.Fault, offset int) (deadlock.Outcome, error) {
	m, err := core.NewMachine(core.Config{Shape: shape, StallThreshold: 256})
	if err != nil {
		return deadlock.Outcome{}, err
	}
	if err := m.AddFault(f); err != nil {
		return deadlock.Outcome{}, err
	}
	// Inject a spread of point-to-point packets, preferring ones that detour.
	sent := 0
	shape.Enumerate(func(src geom.Coord) bool {
		shape.Enumerate(func(dst geom.Coord) bool {
			if src == dst {
				return true
			}
			p, err := m.Policy().UnicastPath(src, dst)
			if err != nil {
				return true // unreachable pairs are out of scope here
			}
			detours := false
			for _, h := range p {
				if h.RC != 0 {
					detours = true
				}
			}
			if detours || (shape.Index(src)+shape.Index(dst))%7 == 0 {
				if _, err := m.Send(src, dst, 16); err == nil {
					sent++
				}
			}
			return true
		})
		return true
	})
	for i := 0; i < offset; i++ {
		m.Step()
	}
	// One broadcast from the first healthy PE that can reach the S-XB.
	var bErr error
	shape.Enumerate(func(c geom.Coord) bool {
		if !m.Alive(c) {
			return true
		}
		if _, _, err := m.Broadcast(c, 16); err == nil {
			return false
		}
		return true
	})
	if bErr != nil {
		return deadlock.Outcome{}, bErr
	}
	return m.Run(runBudget), nil
}
