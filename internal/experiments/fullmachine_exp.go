package experiments

import (
	"fmt"

	"sr2201/internal/core"
	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/stats"
	"sr2201/internal/traffic"
)

func init() {
	register(Experiment{ID: "E11", Title: "Full-machine configuration (3D, up to 2048 PEs)", Paper: "Sec. 2", Run: runE11})
}

// runE11 exercises the d=3 machine the SR2201 actually shipped as ("connects
// up to 2048 PEs"): dimension-order routing in at most 3 crossbar hops,
// the generalized broadcast covering every PE exactly once, and the detour
// facility under a router fault — all at full scale, plus a background-load
// run. Shape criterion: everything drains, broadcasts cover all healthy PEs
// exactly once, and max crossbar hops stay at 3.
func runE11(opt Options) (*Report, error) {
	r := &Report{ID: "E11", Title: "Full-machine configuration (3D, up to 2048 PEs)", Paper: "Sec. 2"}
	shapes := []geom.Shape{geom.MustShape(8, 8, 8), geom.MustShape(8, 16, 16)}
	if opt.Quick {
		shapes = []geom.Shape{geom.MustShape(4, 4, 4)}
	}
	tbl := stats.NewTable("E11 3D machines: broadcast, detour and load",
		"shape", "PEs", "bcast copies", "bcast cycles", "detour delivered", "load thr", "load mean lat", "outcome")
	pass := true
	for _, shape := range shapes {
		m, err := core.NewMachine(core.Config{Shape: shape, StallThreshold: 1024})
		if err != nil {
			return nil, err
		}
		bad := shape.CoordOf(shape.Size() / 3)
		if err := m.AddFault(fault.RouterFault(bad)); err != nil {
			return nil, err
		}

		// One broadcast; every healthy PE must receive exactly one copy.
		src := shape.CoordOf(shape.Size() - 1)
		_, covered, err := m.Broadcast(src, 8)
		if err != nil {
			return nil, err
		}
		out := m.Run(2_000_000)
		if !out.Drained {
			return nil, fmt.Errorf("E11: %s broadcast did not drain", shape)
		}
		bcastCycles := out.Cycle
		bcastCopies := len(m.Deliveries())
		if covered != shape.Size()-1 || bcastCopies != covered {
			pass = false
		}
		perPE := map[geom.Coord]int{}
		for _, d := range m.Deliveries() {
			perPE[d.At]++
		}
		for _, n := range perPE {
			if n != 1 {
				pass = false
			}
		}
		m.ResetStats()

		// A wave of point-to-point packets; pairs whose dimension-order
		// route meets the fault must detour and still be delivered. The
		// first group is crafted so the dim-0 turn router is exactly the
		// fault: src = bad shifted in dim 0, dst = bad shifted in dim 1.
		detoured := 0
		sent := 0
		for off := 1; off < shape[0]; off++ {
			s := bad.WithDim(0, (bad[0]+off)%shape[0])
			d := bad.WithDim(1, (bad[1]+off)%shape[1])
			if d == bad || s == d {
				continue
			}
			if _, err := m.Send(s, d, 8); err == nil {
				sent++
			}
		}
		shape.Enumerate(func(s geom.Coord) bool {
			if sent >= 40 || s == bad {
				return sent < 40
			}
			d := shape.CoordOf((shape.Index(s) + shape.Size()/2) % shape.Size())
			if d == bad || d == s {
				return true
			}
			if _, err := m.Send(s, d, 8); err == nil {
				sent++
			}
			return true
		})
		out = m.Run(2_000_000)
		if !out.Drained {
			return nil, fmt.Errorf("E11: %s p2p wave did not drain", shape)
		}
		maxHops := 0
		for _, d := range m.Deliveries() {
			if !d.Detoured {
				if h := d.Src.Distance(d.At); h > maxHops {
					maxHops = h
				}
			}
			if d.Detoured {
				detoured++
			}
		}
		if maxHops > shape.Dims() || detoured == 0 {
			pass = false
		}
		m.ResetStats()

		// Background load.
		drv := traffic.Driver{
			M:       m,
			Pattern: traffic.Uniform{Shape: shape},
			Rate:    0.01,
			Size:    8,
			Seed:    5,
			Warmup:  100,
			Measure: 400,
		}
		res := drv.Run()
		if res.Deadlocked || !res.Drained {
			pass = false
		}
		opt.cellDone(m.Engine().Cycle())
		tbl.AddRow(shape.String(), shape.Size(), bcastCopies, bcastCycles, detoured,
			res.Throughput, res.Latency.Mean(), outcomeWord2(res))
	}
	r.Tables = append(r.Tables, tbl)
	r.Pass = pass
	r.Notef("the 3D broadcast generalizes Y-X-Y to (dims 1..d-1)-X-(dims 1..d-1); hops never exceed d = 3")
	return r, nil
}

func outcomeWord2(res traffic.Result) string {
	switch {
	case res.Deadlocked:
		return "DEADLOCK"
	case res.Drained:
		return "drained"
	default:
		return "budget"
	}
}
