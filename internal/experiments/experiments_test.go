package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	wantIDs := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "A1", "A2", "A3", "F1", "F2", "F3", "V1", "V2", "V3"}
	if len(all) < len(wantIDs) {
		t.Fatalf("registry has %d experiments, want at least %d", len(all), len(wantIDs))
	}
	for _, id := range wantIDs {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	// Ordering: E-group ascending, then A-, F- and V-groups.
	for i, id := range wantIDs {
		if all[i].ID != id {
			t.Errorf("position %d = %s, want %s", i, all[i].ID, id)
		}
	}
	if _, ok := ByID("Z9"); ok {
		t.Error("bogus id resolved")
	}
}

// Every experiment must run in Quick mode, produce at least one table, and
// meet its shape criterion — these are the reproduction's headline checks.
func TestAllExperimentsQuickPass(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			r, err := e.Run(Options{Quick: true})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(r.Tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range r.Tables {
				if tb.Rows() == 0 {
					t.Errorf("%s has an empty table %q", e.ID, tb.Title)
				}
			}
			if !r.Pass {
				t.Errorf("%s shape criterion failed:\n%s", e.ID, r.String())
			}
			s := r.String()
			if !strings.Contains(s, e.ID) {
				t.Errorf("%s report missing id:\n%s", e.ID, s)
			}
		})
	}
}
