package experiments

import (
	"fmt"

	"sr2201/internal/cdg"
	"sr2201/internal/core"
	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/routing"
	"sr2201/internal/stats"
)

func init() {
	register(Experiment{ID: "E13", Title: "Multi-fault degradation (beyond the single-fault guarantee)", Paper: "Sec. 6 future work", Run: runE13})
}

// comboClass names a pair of fault kinds for the breakdown table.
func comboClass(a, b fault.Fault) string {
	name := func(f fault.Fault) string {
		if f.Kind == fault.KindRouter {
			return "rtc"
		}
		return fmt.Sprintf("xb%d", f.Line.Dim)
	}
	x, y := name(a), name(b)
	if x > y {
		x, y = y, x
	}
	return x + "+" + y
}

// runE13 probes the paper's closing remark ("we intend to improve this
// facility to further increase the system reliability"): what happens with
// TWO faults, which the facility does not guarantee? For every pair of
// faults (routers and crossbars) on a 4x4 we measure (a) the fraction of
// healthy pairs still deliverable, (b) whether the channel dependency graph
// stays acyclic, (c) a dynamic mixed-traffic run, and (d) that no delivered
// path ever touches a fault. Shape criterion: graceful degradation — zero
// static cycles, zero dynamic deadlocks, zero paths through faults;
// reachability falls only for combinations involving last-dimension
// crossbars.
func runE13(opt Options) (*Report, error) {
	r := &Report{ID: "E13", Title: "Multi-fault degradation (beyond the single-fault guarantee)", Paper: "Sec. 6 future work"}
	shape := geom.MustShape(4, 4)

	var pool []fault.Fault
	shape.Enumerate(func(c geom.Coord) bool {
		pool = append(pool, fault.RouterFault(c))
		return true
	})
	for _, l := range shape.Lines() {
		pool = append(pool, fault.XBFault(l))
	}
	step := 1
	dynamicEvery := 1
	if opt.Quick {
		step = 3
		dynamicEvery = 5
	}

	type agg struct {
		combos    int
		sumReach  float64
		minReach  float64
		cyclic    int
		deadlocks int
	}
	byClass := map[string]*agg{}
	violations := 0
	dynRuns := 0

	for i := 0; i < len(pool); i += step {
		for j := i + 1; j < len(pool); j += step {
			f1, f2 := pool[i], pool[j]
			set := fault.NewSet(shape)
			if err := set.Add(f1); err != nil {
				return nil, err
			}
			if err := set.Add(f2); err != nil {
				return nil, err
			}
			p, err := routing.New(routing.Config{Shape: shape, Faults: set})
			if err != nil {
				return nil, err
			}
			reach, total := 0, 0
			shape.Enumerate(func(src geom.Coord) bool {
				shape.Enumerate(func(dst geom.Coord) bool {
					if src == dst || !set.PEAlive(src) || !set.PEAlive(dst) {
						return true
					}
					total++
					path, err := p.UnicastPath(src, dst)
					if err != nil {
						return true
					}
					reach++
					for _, h := range path {
						switch h.Kind {
						case routing.HopRouter:
							if set.RouterFaulty(h.Coord) {
								violations++
							}
						case routing.HopXB:
							if set.XBFaulty(h.Line) {
								violations++
							}
						}
					}
					return true
				})
				return true
			})
			frac := 0.0
			if total > 0 {
				frac = float64(reach) / float64(total)
			}
			cls := comboClass(f1, f2)
			a := byClass[cls]
			if a == nil {
				a = &agg{minReach: 1}
				byClass[cls] = a
			}
			a.combos++
			a.sumReach += frac
			if frac < a.minReach {
				a.minReach = frac
			}
			res, err := cdg.Analyze(p, shape, false)
			if err != nil {
				return nil, err
			}
			if !res.Acyclic {
				a.cyclic++
			}
			if (i+j)%dynamicEvery == 0 {
				dynRuns++
				wedged, err := e13Dynamic(shape, f1, f2)
				if err != nil {
					return nil, err
				}
				if wedged {
					a.deadlocks++
				}
			}
		}
	}

	tbl := stats.NewTable(fmt.Sprintf("E13 two-fault combinations on %s", shape),
		"fault pair", "combos", "mean reach", "min reach", "cyclic CDGs", "dynamic deadlocks")
	classes := []string{"rtc+rtc", "rtc+xb0", "rtc+xb1", "xb0+xb0", "xb0+xb1", "xb1+xb1"}
	pass := true
	for _, cls := range classes {
		a := byClass[cls]
		if a == nil {
			continue
		}
		tbl.AddRow(cls, a.combos, a.sumReach/float64(a.combos), a.minReach, a.cyclic, a.deadlocks)
		if a.cyclic > 0 || a.deadlocks > 0 || a.minReach < 0.4 {
			pass = false
		}
		// Reachability should fall only for last-dimension crossbar combos.
		if cls == "rtc+rtc" || cls == "rtc+xb0" || cls == "xb0+xb0" {
			if a.minReach < 0.999 {
				pass = false
			}
		}
	}
	r.Tables = append(r.Tables, tbl)
	if violations > 0 {
		pass = false
	}
	r.Pass = pass
	r.Notef("paths through a fault: %d (must be 0); dynamic runs: %d", violations, dynRuns)
	r.Notef("double faults never break deadlock freedom — the single serialization point is fault-count-independent; reachability drops only where last-dimension crossbars die")
	return r, nil
}

// e13Dynamic runs one mixed-traffic scenario under two faults; reports
// whether it wedged.
func e13Dynamic(shape geom.Shape, f1, f2 fault.Fault) (bool, error) {
	m, err := core.NewMachine(core.Config{Shape: shape, StallThreshold: 256})
	if err != nil {
		return false, err
	}
	if err := m.AddFault(f1); err != nil {
		return false, err
	}
	if err := m.AddFault(f2); err != nil {
		return false, err
	}
	shape.Enumerate(func(src geom.Coord) bool {
		dst := shape.CoordOf((shape.Index(src) + 7) % shape.Size())
		_, _ = m.Send(src, dst, 12) // refusals fine
		return true
	})
	shape.Enumerate(func(c geom.Coord) bool {
		if m.Alive(c) {
			if _, _, err := m.Broadcast(c, 12); err == nil {
				return false
			}
		}
		return true
	})
	out := m.Run(runBudget)
	return out.Deadlocked || out.Stalled, nil
}
