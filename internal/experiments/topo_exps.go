package experiments

// H-series: topology experiments. The topo layer (internal/topo) makes the
// campaign machinery generic over the interconnect, so the same exhaustive
// single-fault pricing the F-series applies to the MD crossbar runs here
// against the direct-link lattices: HyperX with fault-tolerant dimension
// order routing (arXiv 2404.04315) and the VC-free deadlock-free full mesh
// (arXiv 2510.14730). Fault placements now include every in-line link, and
// the full-mesh ordering rule makes some single link faults genuinely
// unreachable (destination 1 owns the bottom of the detour order) — the
// campaign's static prediction must price those exactly.

import (
	"fmt"

	"sr2201/internal/campaign"
	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/inject"
	"sr2201/internal/stats"
)

func init() {
	register(Experiment{ID: "H1", Title: "HyperX exhaustive single-fault availability map", Paper: "arXiv 2404.04315", Run: runH1})
	register(Experiment{ID: "H2", Title: "Full-mesh (VC-free) exhaustive single-fault availability map", Paper: "arXiv 2510.14730", Run: runH2})
	register(Experiment{ID: "H3", Title: "Cross-topology fault face-off under one workload", Paper: "topo layer", Run: runH3})
}

// runTopoCampaign runs the exhaustive single-fault campaign — every router
// and every in-line link × epoch × pattern — on one direct-link topology and
// applies the F2 shape criterion: no deadlocks or stalls, every cell drains,
// every refusal matches the static post-fault prediction, and with
// retransmission on the only final losses are documented unreachable
// destinations.
func runTopoCampaign(r *Report, opt Options, topology string, cfg campaign.Config) (*Report, error) {
	cfg.Topology = topology
	cfg.Waves = 4
	cfg.Gap = 24
	cfg.Inject = inject.Options{
		Retransmit:     true,
		RetryAfter:     24,
		StallThreshold: 256,
	}
	cfg.Shards = opt.Shards
	cfg.Parallel = opt.Parallel
	cfg.Ctx = opt.Ctx
	cfg.Budget = opt.Budget
	cfg.OnCell = opt.OnCell
	res, err := campaign.Run(cfg)
	if err != nil {
		return nil, err
	}
	r.Tables = append(r.Tables, res.Table())

	pass := res.Deadlocks() == 0 && res.Stalls() == 0
	unpredicted, undocumented, undrained, refused := 0, 0, 0, 0
	for _, c := range res.Cells {
		if !c.Drained {
			undrained++
		}
		if !c.UnreachableAsPredicted {
			unpredicted++
		}
		refused += c.Refused
		st := c.Stats
		if st.Duplicates != 0 || st.LostExhausted != 0 || st.LostUntraceable != 0 ||
			st.DropsOther != 0 || c.Delivered+finalLosses(st) != c.Accepted {
			undocumented++
		}
	}
	r.Pass = pass && unpredicted == 0 && undocumented == 0 && undrained == 0
	r.Notef("%d cells (%d placements incl. links): deadlocks %d, stalls %d, undrained %d, refusals off-prediction %d, undocumented losses %d",
		len(res.Cells), len(campaign.PlacementsFor(topology, cfg.Shape)),
		res.Deadlocks(), res.Stalls(), undrained, unpredicted, undocumented)
	r.Notef("refusals across the map: %d — every one a statically predicted unreachable destination", refused)
	return r, nil
}

// runH1 prices HyperX availability under the exhaustive single-fault map.
// Fault-tolerant DOR detours around any single in-dimension link fault, so
// only router faults (dead destinations) may refuse traffic.
func runH1(opt Options) (*Report, error) {
	r := &Report{ID: "H1", Title: "HyperX exhaustive single-fault availability map", Paper: "arXiv 2404.04315"}
	cfg := campaign.Config{
		Shape:    geom.MustShape(6, 6),
		Epochs:   []int64{8, 40},
		Patterns: []campaign.Pattern{campaign.Shift(7), campaign.Reverse()},
	}
	if opt.Quick {
		cfg.Shape = geom.MustShape(3, 3)
		cfg.Epochs = []int64{12}
		cfg.Patterns = []campaign.Pattern{campaign.Shift(5)}
	}
	return runTopoCampaign(r, opt, "hyperx", cfg)
}

// runH2 prices the VC-free full mesh the same way. Unlike HyperX, the
// detour-order rule leaves destination 1 with no admissible intermediate, so
// a single a-1 link fault is a predicted refusal, not a detour — the
// campaign's as-predicted accounting prices that degradation exactly.
func runH2(opt Options) (*Report, error) {
	r := &Report{ID: "H2", Title: "Full-mesh (VC-free) exhaustive single-fault availability map", Paper: "arXiv 2510.14730"}
	cfg := campaign.Config{
		Shape:    geom.MustShape(12),
		Epochs:   []int64{8, 40},
		Patterns: []campaign.Pattern{campaign.Shift(5), campaign.Reverse()},
	}
	if opt.Quick {
		cfg.Shape = geom.MustShape(6)
		cfg.Epochs = []int64{12}
		cfg.Patterns = []campaign.Pattern{campaign.Shift(3)}
	}
	return runTopoCampaign(r, opt, "fullmesh", cfg)
}

// faceOffCase is one topology's run in the H3 comparison.
type faceOffCase struct {
	topology string
	shape    geom.Shape
	victim   geom.Coord
}

// runH3 runs one identical workload — a wave pattern with a router dying at
// cycle 8 and retransmission on — across all three topologies and compares
// what the fault costs each: availability, losses, and delivered latency.
// Shape criterion: every topology drains without deadlock or stall, refusals
// match prediction, and retransmission closes the loss gap exactly (only the
// statically unreachable destinations are lost).
func runH3(opt Options) (*Report, error) {
	r := &Report{ID: "H3", Title: "Cross-topology fault face-off under one workload", Paper: "topo layer"}
	shape2d, mesh := geom.MustShape(6, 6), geom.MustShape(36)
	victim2d, victimMesh := geom.Coord{3, 3}, geom.Coord{18}
	waves := 4
	if opt.Quick {
		shape2d, mesh = geom.MustShape(4, 4), geom.MustShape(16)
		victim2d, victimMesh = geom.Coord{2, 1}, geom.Coord{9}
	}
	cases := []faceOffCase{
		{"mdx", shape2d, victim2d},
		{"hyperx", shape2d, victim2d},
		{"fullmesh", mesh, victimMesh},
	}

	tbl := stats.NewTable(
		fmt.Sprintf("H3 one router dies at cycle 8 (%s / %s), same wave workload", shape2d, mesh),
		"topology", "shape", "accepted", "delivered", "refused", "killed", "retx",
		"recovered", "lost-unreach", "avail", "mean lat", "max lat")
	pass := true
	for _, c := range cases {
		res, err := campaign.RunCell(campaign.Spec{
			Shape:    c.shape,
			Topology: c.topology,
			Events:   []inject.Event{{Cycle: 8, Fault: fault.RouterFault(c.victim)}},
			Pattern:  campaign.Shift(7),
			Waves:    waves,
			Gap:      24,
			Inject: inject.Options{
				Retransmit:     true,
				RetryAfter:     32,
				StallThreshold: 256,
			},
			KeepDeliveries: true,
			Shards:         opt.Shards,
		})
		if err != nil {
			return nil, err
		}
		var sumLat, maxLat int64
		for _, d := range res.Deliveries {
			sumLat += d.Latency
			if d.Latency > maxLat {
				maxLat = d.Latency
			}
		}
		meanLat := 0.0
		if len(res.Deliveries) > 0 {
			meanLat = float64(sumLat) / float64(len(res.Deliveries))
		}
		st := res.Stats
		tbl.AddRow(c.topology, c.shape.String(), res.Accepted, res.Delivered, res.Refused,
			st.KilledInFlight+st.DropsEnRoute, st.Retransmits, st.Recovered,
			st.LostUnreachable, res.Availability(), meanLat, maxLat)
		pass = pass && res.Drained && !res.Deadlocked && !res.Stalled &&
			res.UnreachableAsPredicted && st.Duplicates == 0 &&
			res.Accepted-res.Delivered-st.LostUnreachable == 0
		opt.cellDone(res.EndCycle)
	}
	r.Tables = append(r.Tables, tbl)
	r.Pass = pass
	r.Notef("every topology absorbs the same router death: direct-link lattices lose only traffic addressed to the dead PE, as does the crossbar's detour facility")
	return r, nil
}
