package experiments

import (
	"fmt"

	"sr2201/internal/core"
	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/stats"
	"sr2201/internal/traffic"
)

func init() {
	register(Experiment{ID: "E14", Title: "Sharded full-machine scale (2048 PEs)", Paper: "Sec. 2 / Sec. 5", Run: runE14})
}

// shardScenario drives one machine through E14's fixed workload — a
// broadcast, a half-shift p2p wave, a mid-run router failure with
// retransmission left to the wave's redundancy, then a second wave against
// the degraded machine — recording the engine StateHash every cycle. The
// workload is a pure function of (shape, cycle), so any two machines of the
// same shape must produce identical streams regardless of shard count.
func shardScenario(shape geom.Shape, shards int) ([]uint64, *core.Machine, error) {
	m, err := core.NewMachine(core.Config{Shape: shape, Shards: shards, StallThreshold: 1024})
	if err != nil {
		return nil, nil, err
	}
	wave := func() {
		shape.Enumerate(func(s geom.Coord) bool {
			d := shape.CoordOf((shape.Index(s) + shape.Size()/2) % shape.Size())
			if d == s || !m.Alive(s) {
				return true
			}
			// Post-fault refusals are expected (the NIA consults the
			// rebuilt fault bits); refused sends simply do not inject.
			m.Send(s, d, 6)
			return true
		})
	}
	if _, _, err := m.Broadcast(shape.CoordOf(0), 6); err != nil {
		return nil, nil, err
	}
	wave()
	var stream []uint64
	failAt := int64(40)
	secondWaveAt := int64(80)
	bad := shape.CoordOf(shape.Size() / 3)
	for cycle := int64(0); cycle < 6000; cycle++ {
		if m.Cycle() == failAt {
			if _, err := m.FailNow(fault.RouterFault(bad)); err != nil {
				return nil, nil, err
			}
		}
		if m.Cycle() == secondWaveAt {
			wave()
		}
		m.Step()
		stream = append(stream, m.Engine().StateHash())
		if m.Cycle() > secondWaveAt && m.Engine().Quiescent() {
			return stream, m, nil
		}
	}
	return nil, nil, fmt.Errorf("E14: %v scenario did not drain in 6000 cycles", shape)
}

// runE14 validates the sharded stepper end to end and then exercises it at
// the scale the SR2201 shipped as. Part one: on a small 3-D machine, the
// per-cycle StateHash stream — across a hardware broadcast, dimension-order
// waves, a dynamic router failure and the detoured recovery traffic — must be
// byte-identical at every shard count. Part two: the full 2048-PE machine
// (8x16x16; a 512-PE 8x8x8 in quick mode) runs sharded under background load
// and must agree with the serial run's final state hash, delivery count and
// invariant audit. Shape criterion: all equivalences hold and the scale run
// drains.
func runE14(opt Options) (*Report, error) {
	r := &Report{ID: "E14", Title: "Sharded full-machine scale (2048 PEs)", Paper: "Sec. 2 / Sec. 5"}
	pass := true

	// Part 1: per-cycle equivalence on a machine small enough to hash every
	// cycle at several shard counts.
	eqShape := geom.MustShape(4, 4, 4)
	if opt.Quick {
		eqShape = geom.MustShape(3, 3, 3)
	}
	eqTbl := stats.NewTable("E14 sharded-vs-serial per-cycle state hashes",
		"shape", "shards", "boundary links", "cycles", "stream")
	refStream, _, err := shardScenario(eqShape, 1)
	if err != nil {
		return nil, err
	}
	eqTbl.AddRow(eqShape.String(), 1, 0, len(refStream), "reference")
	for _, shards := range []int{2, 3, 4} {
		stream, m, err := shardScenario(eqShape, shards)
		if err != nil {
			return nil, err
		}
		verdict := "identical"
		if len(stream) != len(refStream) {
			verdict = fmt.Sprintf("length %d != %d", len(stream), len(refStream))
			pass = false
		} else {
			for i := range stream {
				if stream[i] != refStream[i] {
					verdict = fmt.Sprintf("diverged at cycle %d", i+1)
					pass = false
					break
				}
			}
		}
		eqTbl.AddRow(eqShape.String(), m.Engine().ShardCount(), m.Engine().BoundaryLinks(), len(stream), verdict)
	}
	r.Tables = append(r.Tables, eqTbl)

	// Part 2: the full machine under background load, stepped sharded. The
	// serial twin runs the identical workload; final state hash, deliveries
	// and the conservation audit must agree.
	scaleShape := geom.MustShape(8, 16, 16)
	if opt.Quick {
		scaleShape = geom.MustShape(8, 8, 8)
	}
	shards := opt.Shards
	if shards <= 1 {
		shards = 4
	}
	scaleTbl := stats.NewTable("E14 full-machine scale run",
		"shape", "PEs", "shards", "boundary links", "cycles", "delivered", "final hash", "outcome")
	type scaleRun struct {
		hash      uint64
		delivered int
		cycles    int64
		drained   bool
	}
	runScale := func(n int) (scaleRun, *core.Machine, error) {
		m, err := core.NewMachine(core.Config{Shape: scaleShape, Shards: n, StallThreshold: 1024})
		if err != nil {
			return scaleRun{}, nil, err
		}
		if _, _, err := m.Broadcast(scaleShape.CoordOf(scaleShape.Size()-1), 8); err != nil {
			return scaleRun{}, nil, err
		}
		drv := traffic.Driver{
			M:       m,
			Pattern: traffic.Uniform{Shape: scaleShape},
			Rate:    0.005,
			Size:    8,
			Seed:    11,
			Warmup:  50,
			Measure: 200,
		}
		res := drv.Run()
		return scaleRun{
			hash:      m.Engine().StateHash(),
			delivered: len(m.Deliveries()),
			cycles:    m.Cycle(),
			drained:   res.Drained && !res.Deadlocked,
		}, m, nil
	}
	serial, _, err := runScale(1)
	if err != nil {
		return nil, err
	}
	sharded, sm, err := runScale(shards)
	if err != nil {
		return nil, err
	}
	if err := sm.Engine().CheckInvariants(); err != nil {
		return nil, fmt.Errorf("E14: sharded scale run violates invariants: %w", err)
	}
	outcome := func(sr scaleRun) string {
		if sr.drained {
			return "drained"
		}
		return "undrained"
	}
	scaleTbl.AddRow(scaleShape.String(), scaleShape.Size(), 1, 0,
		serial.cycles, serial.delivered, fmt.Sprintf("%016x", serial.hash), outcome(serial))
	scaleTbl.AddRow(scaleShape.String(), scaleShape.Size(), sm.Engine().ShardCount(), sm.Engine().BoundaryLinks(),
		sharded.cycles, sharded.delivered, fmt.Sprintf("%016x", sharded.hash), outcome(sharded))
	if sharded != serial || !serial.drained {
		pass = false
	}
	r.Tables = append(r.Tables, scaleTbl)

	r.Pass = pass
	r.Notef("sharding is a pure wall-clock optimization: cross-shard credits and flits exchange at cycle barriers (DESIGN.md §10), so every table above is byte-identical at any shard count")
	r.Notef("equivalence covers broadcast serialization, dimension-order waves, a dynamic router failure (FailNow purge + policy rebuild) and detoured recovery traffic; use cmd/mdxbench -bench-shards for serial-vs-sharded cycle rates")
	return r, nil
}
