package experiments

// R-series: deadlock-recovery and graceful-degradation experiments. The
// paper proves the unified D-XB = S-XB design deadlock-free (Sec. 3.4) and
// Fig. 9 exhibits the wait cycle that forms when the detour crossbar is
// separate. These experiments run that deadlocking configuration to
// completion under the liveness layer (internal/recovery): a confirmed wait
// cycle is dissolved by sacrificing its lowest-ID packet to the
// retransmission machinery, and the cost of rescue is quantified against
// the deadlock-free design, which must never need it.

import (
	"fmt"

	"sr2201/internal/campaign"
	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/inject"
	"sr2201/internal/recovery"
	"sr2201/internal/stats"
)

func init() {
	register(Experiment{ID: "R1", Title: "Deadlock recovery rescues the Fig. 9 separate-DXB design", Paper: "Fig. 9 + liveness extension", Run: runR1})
	register(Experiment{ID: "R2", Title: "Multi-fault graceful degradation under recovery", Paper: "Sec. 4 + liveness extension", Run: runR2})
}

// fig9Cell is the paper's Fig. 9 deadlocking configuration as a campaign
// cell: a 4x4 machine with a pre-set router fault at (2,1), one unicast
// detouring around it, and a broadcast crossing the detour. With a separate
// detour crossbar the two form a wait cycle; with the unified design they
// cannot.
func fig9Cell(separate, recov bool, broadcastAt int64) campaign.Spec {
	sp := campaign.Spec{
		Shape:       geom.MustShape(4, 4),
		SXB:         geom.Coord{0, 0},
		DXB:         geom.Coord{0, 3},
		DXBSeparate: separate,
		Preset:      []fault.Fault{fault.RouterFault(geom.Coord{2, 1})},
		Pattern:     campaign.Pair(geom.Coord{0, 1}, geom.Coord{2, 2}, 2),
		Waves:       1,
		Gap:         1,
		PacketSize:  24,
		Broadcasts:  []campaign.Broadcast{{Cycle: broadcastAt, Src: geom.Coord{3, 2}, Size: 24}},
		Inject:      inject.Options{Retransmit: true, RetryAfter: 32, StallThreshold: 256},
		Horizon:     20_000,
	}
	if recov {
		sp.Recovery = recovery.Options{Enabled: true, StallThreshold: 256}
	}
	return sp
}

// cellOutcome renders a cell's terminal state for the R1 table.
func cellOutcome(c campaign.CellResult) string {
	switch {
	case c.Livelocked:
		return "livelock"
	case c.Deadlocked:
		return "deadlock"
	case c.Stalled:
		return "stalled"
	case c.Drained:
		return "drained"
	default:
		return "horizon"
	}
}

// runR1 contrasts three runs of the Fig. 9 workload — the separate-DXB
// design bare (it must deadlock), the same design under recovery (it must
// drain), and the unified design with recovery armed (it must drain without
// ever firing) — then sweeps the broadcast offset to quantify the latency
// cost of rescue. Shape criterion: the bare run deadlocks; every recovered
// run drains with exactly-once delivery and zero duplicates; the unified
// design reports zero recoveries at every offset; and rescue costs cycles —
// the recovered design's total drain time strictly exceeds the unified
// design's.
func runR1(opt Options) (*Report, error) {
	r := &Report{ID: "R1", Title: "Deadlock recovery rescues the Fig. 9 separate-DXB design", Paper: "Fig. 9 + liveness extension"}

	base, err := campaign.RunCell(fig9Cell(true, false, 0))
	if err != nil {
		return nil, err
	}

	offsets := []int64{0, 8, 16, 24, 32, 40}
	if opt.Quick {
		offsets = []int64{0, 16}
	}
	type duel struct {
		sep, uni campaign.CellResult
	}
	duels, err := sweepCells(opt, len(offsets), func(i int) (duel, error) {
		sep, err := campaign.RunCell(fig9Cell(true, true, offsets[i]))
		if err != nil {
			return duel{}, err
		}
		uni, err := campaign.RunCell(fig9Cell(false, true, offsets[i]))
		if err != nil {
			return duel{}, err
		}
		return duel{sep: sep, uni: uni}, nil
	})
	if err != nil {
		return nil, err
	}

	tbl := stats.NewTable("R1 Fig. 9 liveness: separate D-XB under recovery vs unified design",
		"bcast@", "design", "outcome", "end cycle", "recoveries", "delivered", "bcopies")
	tbl.AddRow("0", "separate, bare", cellOutcome(base), base.EndCycle, base.Recoveries, base.Delivered, base.BroadcastCopies)
	var sepCycles, uniCycles, totalRecov int64
	sepClean, uniClean := true, true
	for i, d := range duels {
		tbl.AddRow(fmt.Sprint(offsets[i]), "separate, recovery", cellOutcome(d.sep),
			d.sep.EndCycle, d.sep.Recoveries, d.sep.Delivered, d.sep.BroadcastCopies)
		tbl.AddRow(fmt.Sprint(offsets[i]), "unified, recovery armed", cellOutcome(d.uni),
			d.uni.EndCycle, d.uni.Recoveries, d.uni.Delivered, d.uni.BroadcastCopies)
		sepCycles += d.sep.EndCycle
		uniCycles += d.uni.EndCycle
		totalRecov += int64(d.sep.Recoveries)
		if !d.sep.Drained || d.sep.Livelocked || d.sep.Stats.Duplicates != 0 ||
			d.sep.Delivered != d.sep.Accepted {
			sepClean = false
		}
		if !d.uni.Drained || d.uni.Recoveries != 0 || d.uni.Stats.Duplicates != 0 ||
			d.uni.Delivered != d.uni.Accepted {
			uniClean = false
		}
	}
	r.Tables = append(r.Tables, tbl)

	r.Pass = base.Deadlocked && !base.Drained &&
		sepClean && uniClean &&
		duels[0].sep.Recoveries > 0 && totalRecov > 0 &&
		sepCycles > uniCycles
	r.Notef("bare separate-DXB design: %s at cycle %d — the paper's Fig. 9 wait cycle",
		cellOutcome(base), base.EndCycle)
	r.Notef("recovery rescues every offset: %d sacrifice(s), all retransmitted exactly once, zero duplicates",
		totalRecov)
	r.Notef("cost of rescue: %d total cycles on the separate design vs %d unified — the deadlock-free design needs no liveness layer",
		sepCycles, uniCycles)
	return r, nil
}

// r2Config sweeps a second fault over the Fig. 9 scenario: every placement
// of one more dead router or crossbar on top of the preset fault, with
// recovery enabled.
func r2Config(opt Options, separate bool) campaign.Config {
	epochs := []int64{40, 120}
	if opt.Quick {
		epochs = []int64{40}
	}
	return campaign.Config{
		Shape:       geom.MustShape(4, 4),
		SXB:         geom.Coord{0, 0},
		DXB:         geom.Coord{0, 3},
		DXBSeparate: separate,
		Preset:      []fault.Fault{fault.RouterFault(geom.Coord{2, 1})},
		Epochs:      epochs,
		Patterns:    []campaign.Pattern{campaign.Pair(geom.Coord{0, 1}, geom.Coord{2, 2}, 2)},
		Waves:       2,
		Gap:         30,
		PacketSize:  24,
		Broadcasts:  []campaign.Broadcast{{Cycle: 0, Src: geom.Coord{3, 2}, Size: 24}},
		Inject:      inject.Options{Retransmit: true, RetryAfter: 32, StallThreshold: 256},
		Recovery:    recovery.Options{Enabled: true, StallThreshold: 256},
		Horizon:     20_000,
		Parallel:    opt.Parallel,
		Ctx:         opt.Ctx,
		Budget:      opt.Budget,
		OnCell:      opt.OnCell,
	}
}

// runR2 runs the second-fault sweep on the deadlocking separate-DXB design
// under recovery, then the same sweep on the unified design as control.
// Shape criterion: no cell wedges — every deadlock is recovered or the cell
// is classified per pair (source dead / destination dead / unreachable)
// exactly as recovery.AnalyzeReachability predicts; zero livelocks, zero
// duplicates, exactly-once unicast accounting on every drained cell; and
// the unified control sweep reports zero recoveries and zero deadlocks.
func runR2(opt Options) (*Report, error) {
	r := &Report{ID: "R2", Title: "Multi-fault graceful degradation under recovery", Paper: "Sec. 4 + liveness extension"}
	res, err := campaign.Run(r2Config(opt, true))
	if err != nil {
		return nil, err
	}
	r.Tables = append(r.Tables, res.Table())

	wedged, unpredicted, undocumented := 0, 0, 0
	srcDead, dstDead, unreach := 0, 0, 0
	for _, c := range res.Cells {
		if c.Deadlocked || (c.Stalled && !c.Deadlocked) {
			wedged++
		}
		if !c.UnreachableAsPredicted {
			unpredicted++
		}
		st := c.Stats
		final := st.LostUnreachable + st.LostExhausted + st.LostUntraceable
		if st.Duplicates != 0 ||
			(c.Drained && c.Delivered+final != c.Accepted) ||
			c.BroadcastCopies+st.DropsOther > c.BroadcastCopiesExpected {
			undocumented++
		}
		srcDead += c.SourceDeadPairs
		dstDead += c.DestDeadPairs
		unreach += c.UnreachablePairs
	}

	control, err := campaign.Run(r2Config(opt, false))
	if err != nil {
		return nil, err
	}

	r.Pass = res.Recoveries() > 0 && res.Livelocked() == 0 &&
		wedged == 0 && unpredicted == 0 && undocumented == 0 &&
		control.Recoveries() == 0 && control.Livelocked() == 0 && control.Deadlocks() == 0
	r.Notef("%d cells: %d recoveries, %d livelocked, %d wedged, %d refusals off-prediction, %d undocumented losses",
		len(res.Cells), res.Recoveries(), res.Livelocked(), wedged, unpredicted, undocumented)
	r.Notef("second fault kills the pair's source in %d cells, its destination in %d, strands it unreachable in %d — each reported per pair, never as a hang",
		srcDead, dstDead, unreach)
	r.Notef("unified D-XB = S-XB control sweep: %d recoveries, %d deadlocks across %d cells",
		control.Recoveries(), control.Deadlocks(), len(control.Cells))
	return r, nil
}
