package experiments

// F-series: dynamic-fault experiments. The paper's facility handles a fault
// detected at boot (Sec. 4); these experiments extend the reproduction to
// faults that activate mid-run — in-flight flits at the dead switch are
// dropped, upstream packets detour with RC=3, and sources optionally
// retransmit — and verify the network recovers without deadlock and without
// losing anything beyond the documented unreachable destinations.

import (
	"fmt"

	"sr2201/internal/campaign"
	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/inject"
	"sr2201/internal/stats"
)

func init() {
	register(Experiment{ID: "F1", Title: "Mid-run RTC fault: drop, detour and recovery curve", Paper: "Sec. 4 extension", Run: runF1})
	register(Experiment{ID: "F2", Title: "Exhaustive single-fault availability map", Paper: "Sec. 4 extension", Run: runF2})
	register(Experiment{ID: "F3", Title: "Retransmission closes the loss gap", Paper: "Sec. 4 extension", Run: runF3})
}

// f1Spec is the shared mid-run-fault scenario: a router dies at cycle 8,
// while the first wave's packets are crossing it, with more waves to come.
func f1Spec(quick bool, retransmit bool) campaign.Spec {
	shape := geom.MustShape(8, 8)
	victim := geom.Coord{4, 4}
	pattern := campaign.Shift(9)
	waves := 8
	if quick {
		shape = geom.MustShape(4, 4)
		victim = geom.Coord{2, 1}
		pattern = campaign.Shift(5)
		waves = 4
	}
	return campaign.Spec{
		Shape:   shape,
		Events:  []inject.Event{{Cycle: 8, Fault: fault.RouterFault(victim)}},
		Pattern: pattern,
		Waves:   waves,
		Gap:     32,
		Inject: inject.Options{
			Retransmit:     retransmit,
			RetryAfter:     32,
			StallThreshold: 256,
		},
	}
}

// finalLosses sums the loss buckets that end a packet's story.
func finalLosses(st inject.Stats) int {
	return st.LostUnreachable + st.LostExhausted + st.LostUntraceable + st.DropsOther
}

// runF1 drives the shared scenario with retransmission and renders the
// recovery curve: deliveries bucketed into gap-sized cycle windows, with
// detour counts and latency. Shape criterion: the run drains with no
// deadlock, some packets detour (RC=3) around the dead router, the killed
// in-flight packets with live destinations are recovered exactly once, and
// nothing is lost beyond the documented unreachable destinations.
func runF1(opt Options) (*Report, error) {
	r := &Report{ID: "F1", Title: "Mid-run RTC fault: drop, detour and recovery curve", Paper: "Sec. 4 extension"}
	spec := f1Spec(opt.Quick, true)
	spec.KeepDeliveries = true
	res, err := campaign.RunCell(spec)
	if err != nil {
		return nil, err
	}

	type win struct {
		delivered, detoured    int
		sumLatency, maxLatency int64
	}
	wins := map[int64]*win{}
	var last int64
	for _, d := range res.Deliveries {
		i := d.Cycle / spec.Gap
		w := wins[i]
		if w == nil {
			w = &win{}
			wins[i] = w
		}
		w.delivered++
		if d.Detoured {
			w.detoured++
		}
		w.sumLatency += d.Latency
		if d.Latency > w.maxLatency {
			w.maxLatency = d.Latency
		}
		if i > last {
			last = i
		}
	}
	tbl := stats.NewTable(
		fmt.Sprintf("F1 recovery curve on %v (%s dies at cycle %d)", spec.Shape, res.Fault, res.Epoch),
		"cycles", "delivered", "detoured", "mean latency", "max latency")
	detoured := 0
	for i := int64(0); i <= last; i++ {
		w := wins[i]
		if w == nil {
			continue
		}
		detoured += w.detoured
		tbl.AddRow(fmt.Sprintf("%d-%d", i*spec.Gap, (i+1)*spec.Gap-1),
			w.delivered, w.detoured,
			float64(w.sumLatency)/float64(w.delivered), w.maxLatency)
	}
	r.Tables = append(r.Tables, tbl)

	st := res.Stats
	pass := res.Drained && !res.Deadlocked && !res.Stalled &&
		res.UnreachableAsPredicted &&
		st.KilledInFlight+st.DropsEnRoute > 0 &&
		st.Recovered > 0 && st.Duplicates == 0 &&
		detoured > 0 &&
		res.Delivered+finalLosses(st) == res.Accepted &&
		st.LostExhausted == 0 && st.LostUntraceable == 0 && st.DropsOther == 0
	r.Pass = pass
	r.Notef("accepted %d, delivered %d, killed in flight %d, detoured deliveries %d",
		res.Accepted, res.Delivered, st.KilledInFlight+st.DropsEnRoute, detoured)
	r.Notef("retransmits %d recovered %d duplicates %d; unreachable losses %d (predicted %d/wave x %d waves)",
		st.Retransmits, st.Recovered, st.Duplicates, st.LostUnreachable,
		res.PredictedUnreachablePerWave, res.WavesAfterFault)
	return r, nil
}

// runF2 runs the exhaustive single-fault campaign: every placement (all
// routers, all crossbar lines) × injection epoch × traffic pattern. Shape
// criterion: zero deadlocks, zero stalls, every cell drains, every refusal
// matches the static post-fault prediction, and with retransmission enabled
// the only final losses are the documented unreachable destinations.
func runF2(opt Options) (*Report, error) {
	r := &Report{ID: "F2", Title: "Exhaustive single-fault availability map", Paper: "Sec. 4 extension"}
	cfg := campaign.Config{
		Shape:    geom.MustShape(8, 8),
		Epochs:   []int64{8, 40},
		Patterns: []campaign.Pattern{campaign.Shift(9), campaign.Reverse()},
		Waves:    4,
		Gap:      24,
		Inject: inject.Options{
			Retransmit:     true,
			RetryAfter:     24,
			StallThreshold: 256,
		},
		Parallel: opt.Parallel,
		Ctx:      opt.Ctx,
		Budget:   opt.Budget,
		OnCell:   opt.OnCell,
	}
	if opt.Quick {
		cfg.Shape = geom.MustShape(4, 4)
		cfg.Epochs = []int64{12}
		cfg.Patterns = []campaign.Pattern{campaign.Shift(5)}
	}
	res, err := campaign.Run(cfg)
	if err != nil {
		return nil, err
	}
	r.Tables = append(r.Tables, res.Table())

	pass := res.Deadlocks() == 0 && res.Stalls() == 0
	unpredicted, undocumented, undrained := 0, 0, 0
	for _, c := range res.Cells {
		if !c.Drained {
			undrained++
		}
		if !c.UnreachableAsPredicted {
			unpredicted++
		}
		st := c.Stats
		if st.Duplicates != 0 || st.LostExhausted != 0 || st.LostUntraceable != 0 ||
			st.DropsOther != 0 || c.Delivered+finalLosses(st) != c.Accepted {
			undocumented++
		}
	}
	pass = pass && unpredicted == 0 && undocumented == 0 && undrained == 0
	r.Pass = pass
	r.Notef("%d cells: deadlocks %d, stalls %d, undrained %d, refusals off-prediction %d, undocumented losses %d",
		len(res.Cells), res.Deadlocks(), res.Stalls(), undrained, unpredicted, undocumented)
	r.Notef("every loss is a documented ErrUnreachable refusal or an in-flight kill whose destination the fault bits rule out")
	return r, nil
}

// runF3 contrasts the shared scenario with retransmission off and on. Shape
// criterion: without retransmission the in-flight kills leave a delivery gap
// beyond the unreachable losses; with it the gap closes exactly — delivered
// equals accepted minus the documented unreachable losses, with zero
// duplicates.
func runF3(opt Options) (*Report, error) {
	r := &Report{ID: "F3", Title: "Retransmission closes the loss gap", Paper: "Sec. 4 extension"}
	tbl := stats.NewTable("F3 loss accounting, retransmission off vs on",
		"retransmit", "accepted", "delivered", "killed", "retx", "recovered",
		"lost-unreach", "gap", "availability")
	type run struct {
		res campaign.CellResult
		gap int
	}
	var runs [2]run
	for i, retransmit := range []bool{false, true} {
		res, err := campaign.RunCell(f1Spec(opt.Quick, retransmit))
		if err != nil {
			return nil, err
		}
		st := res.Stats
		gap := res.Accepted - res.Delivered - st.LostUnreachable
		runs[i] = run{res: res, gap: gap}
		tbl.AddRow(fmt.Sprintf("%v", retransmit), res.Accepted, res.Delivered,
			st.KilledInFlight+st.DropsEnRoute, st.Retransmits, st.Recovered,
			st.LostUnreachable, gap, res.Availability())
	}
	r.Tables = append(r.Tables, tbl)

	off, on := runs[0], runs[1]
	pass := off.res.Drained && on.res.Drained &&
		!off.res.Deadlocked && !on.res.Deadlocked &&
		off.gap > 0 && on.gap == 0 &&
		on.res.Stats.Recovered > 0 && on.res.Stats.Duplicates == 0 &&
		on.res.Accepted == off.res.Accepted &&
		on.res.Availability() > off.res.Availability()
	r.Pass = pass
	r.Notef("retransmission recovers %d of the %d in-flight kills; the rest are destinations the fault bits rule out",
		on.res.Stats.Recovered, on.res.Stats.KilledInFlight+on.res.Stats.DropsEnRoute)
	return r, nil
}
