package flit

import (
	"testing"
	"testing/quick"

	"sr2201/internal/geom"
)

func TestRCString(t *testing.T) {
	cases := map[RC]string{
		RCNormal:           "normal",
		RCBroadcastRequest: "broadcast-request",
		RCBroadcast:        "broadcast",
		RCDetour:           "detour",
		RC(9):              "RC(9)",
	}
	for rc, want := range cases {
		if got := rc.String(); got != want {
			t.Errorf("RC(%d).String() = %q, want %q", rc, got, want)
		}
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindHeader: "header",
		KindBody:   "body",
		KindTail:   "tail",
		Kind(9):    "Kind(9)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind.String() = %q, want %q", got, want)
		}
	}
}

func TestNewPacketSingleFlit(t *testing.T) {
	h := &Header{PacketID: 1, Src: geom.Coord{0, 0}, Dst: geom.Coord{1, 1}}
	fs := NewPacket(h, 1)
	if len(fs) != 1 {
		t.Fatalf("got %d flits", len(fs))
	}
	f := fs[0]
	if f.Kind != KindHeader || !f.Last || f.Header != h || f.Seq != 0 {
		t.Errorf("single flit = %+v", f)
	}
	if h.Size != 1 {
		t.Errorf("header size = %d", h.Size)
	}
}

func TestNewPacketStructure(t *testing.T) {
	h := &Header{PacketID: 42}
	fs := NewPacket(h, 5)
	if len(fs) != 5 {
		t.Fatalf("got %d flits", len(fs))
	}
	if fs[0].Kind != KindHeader || fs[0].Last {
		t.Errorf("flit 0 = %+v", fs[0])
	}
	for i := 1; i < 4; i++ {
		if fs[i].Kind != KindBody || fs[i].Last || fs[i].Header != nil {
			t.Errorf("flit %d = %+v", i, fs[i])
		}
	}
	if fs[4].Kind != KindTail || !fs[4].Last {
		t.Errorf("tail = %+v", fs[4])
	}
	for i, f := range fs {
		if f.Seq != i || f.PacketID != 42 {
			t.Errorf("flit %d: seq=%d id=%d", i, f.Seq, f.PacketID)
		}
	}
}

func TestNewPacketPanicsOnZeroSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPacket(0) did not panic")
		}
	}()
	NewPacket(&Header{}, 0)
}

func TestHeaderClone(t *testing.T) {
	h := &Header{PacketID: 3, RC: RCDetour, Dst: geom.Coord{2, 1}}
	c := h.Clone()
	if c == h {
		t.Fatal("Clone returned the receiver")
	}
	c.RC = RCNormal
	if h.RC != RCDetour {
		t.Error("Clone aliases receiver")
	}
}

func TestFlitString(t *testing.T) {
	h := &Header{PacketID: 7}
	fs := NewPacket(h, 3)
	if got := fs[0].String(); got != "pkt7.header" {
		t.Errorf("header string %q", got)
	}
	if got := fs[1].String(); got != "pkt7.body[1]" {
		t.Errorf("body string %q", got)
	}
	if got := fs[2].String(); got != "pkt7.tail[2]" {
		t.Errorf("tail string %q", got)
	}
}

// Property: for any size >= 1, exactly one header, exactly one Last flit, and
// seq numbers are 0..size-1.
func TestQuickPacketInvariants(t *testing.T) {
	f := func(raw uint8) bool {
		size := int(raw)%32 + 1
		fs := NewPacket(&Header{PacketID: uint64(raw)}, size)
		headers, lasts := 0, 0
		for i, fl := range fs {
			if fl.Seq != i {
				return false
			}
			if fl.Kind == KindHeader {
				headers++
			}
			if fl.Last {
				lasts++
			}
		}
		return headers == 1 && lasts == 1 && fs[len(fs)-1].Last
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
