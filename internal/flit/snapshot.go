package flit

import (
	"sr2201/internal/checkpoint"
	"sr2201/internal/geom"
)

// Snapshot codecs for flits and headers. The field order here is part of the
// checkpoint format (see the version-bump rule in package checkpoint):
// reordering or retyping any field requires a version bump. Version 2
// appended AdaptiveHops and version 3 appended Epoch; decoding is gated on
// the container version so older snapshots (which cannot contain the
// fields) still read cleanly.

// EncodeHeader appends every routing field of a packet header.
func EncodeHeader(e *checkpoint.Encoder, h *Header) {
	e.Uint(h.PacketID)
	geom.EncodeCoord(e, h.Src)
	geom.EncodeCoord(e, h.Dst)
	e.Byte(byte(h.RC))
	e.Int(int64(h.Size))
	e.Int(h.InjectedAt)
	geom.EncodeCoord(e, h.BroadcastOrigin)
	e.Int(int64(h.DetourHops))
	e.Bool(h.TwoPhase)
	geom.EncodeCoord(e, h.FinalDst)
	e.Int(int64(h.AdaptiveHops))
	e.Uint(h.Epoch)
}

// DecodeHeader reads a header written by EncodeHeader into a fresh Header.
func DecodeHeader(d *checkpoint.Decoder) *Header {
	h := &Header{}
	h.PacketID = d.Uint()
	h.Src = geom.DecodeCoord(d)
	h.Dst = geom.DecodeCoord(d)
	h.RC = RC(d.Byte())
	h.Size = d.IntAsInt()
	h.InjectedAt = d.Int()
	h.BroadcastOrigin = geom.DecodeCoord(d)
	h.DetourHops = d.IntAsInt()
	h.TwoPhase = d.Bool()
	h.FinalDst = geom.DecodeCoord(d)
	if d.Version() >= 2 {
		h.AdaptiveHops = d.IntAsInt()
	}
	if d.Version() >= 3 {
		h.Epoch = d.Uint()
	}
	return h
}

// EncodeFlit appends one flit, inlining its header when present.
func EncodeFlit(e *checkpoint.Encoder, f *Flit) {
	e.Uint(f.PacketID)
	e.Byte(byte(f.Kind))
	e.Int(int64(f.Seq))
	e.Bool(f.Last)
	e.Bool(f.Header != nil)
	if f.Header != nil {
		EncodeHeader(e, f.Header)
	}
}

// DecodeFlit reads one flit. A present header is decoded into a fresh
// allocation owned by the returned flit.
func DecodeFlit(d *checkpoint.Decoder) Flit {
	var f Flit
	f.PacketID = d.Uint()
	f.Kind = Kind(d.Byte())
	f.Seq = d.IntAsInt()
	f.Last = d.Bool()
	if d.Bool() {
		f.Header = DecodeHeader(d)
	}
	return f
}
