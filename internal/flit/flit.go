// Package flit defines the unit of data transmission in the simulated
// network. Following the paper's Section 3.2, each packet consists of a
// header carrying routing information — the receiving address (d coordinates)
// and the route-change (RC) bit — followed by data flits. Under cut-through
// switching the header flit governs the route and the remaining flits follow
// it through the circuit it opens.
package flit

import (
	"fmt"

	"sr2201/internal/geom"
)

// RC is the route-change field in the packet header (paper Fig. 4). The
// receiving address is only interpreted directly when RC is Normal; the
// other values select one of the special routing modes.
type RC uint8

const (
	// RCNormal selects dimension-order (X-Y) routing to the receiving address.
	RCNormal RC = 0
	// RCBroadcastRequest routes the packet point-to-point to the serialized
	// crossbar (S-XB), which will replay it as a broadcast.
	RCBroadcastRequest RC = 1
	// RCBroadcast marks a packet that the S-XB is fanning out to all PEs.
	RCBroadcast RC = 2
	// RCDetour marks a packet that is riding the detour path to the detour
	// crossbar (D-XB), where the bit is reset to RCNormal.
	RCDetour RC = 3
)

// String renders the RC bit with the paper's Fig. 4 vocabulary.
func (rc RC) String() string {
	switch rc {
	case RCNormal:
		return "normal"
	case RCBroadcastRequest:
		return "broadcast-request"
	case RCBroadcast:
		return "broadcast"
	case RCDetour:
		return "detour"
	default:
		return fmt.Sprintf("RC(%d)", uint8(rc))
	}
}

// Header is the routing information carried by a packet's header flit.
type Header struct {
	// PacketID identifies the packet uniquely within one simulation.
	PacketID uint64
	// Src is the coordinate of the originating PE.
	Src geom.Coord
	// Dst is the receiving address. It is meaningful when RC is RCNormal or
	// RCDetour; broadcast packets address every PE.
	Dst geom.Coord
	// RC is the route-change field.
	RC RC
	// Size is the total packet length in flits, header included.
	Size int
	// InjectedAt is the simulation cycle at which the header flit entered the
	// source PE's injection queue; used for latency accounting.
	InjectedAt int64
	// BroadcastOrigin preserves Src for broadcast packets across the S-XB
	// replay so delivery accounting can attribute copies to the sender.
	BroadcastOrigin geom.Coord
	// DetourHops counts how many switches forwarded the packet while its RC
	// bit was RCDetour. Used to verify that "the packet leaves no trace of
	// the detour routing behind" — the counter lives in simulator-side
	// accounting, not in header bits the destination could observe.
	DetourHops int
	// TwoPhase and FinalDst implement the pivot-routing extension (DESIGN.md
	// A3, beyond the paper): the packet first routes to the intermediate Dst;
	// the router there rewrites Dst to FinalDst and clears TwoPhase, and
	// dimension-order routing resumes. The extension costs these extra
	// header bits — hardware the SR2201 did not have.
	TwoPhase bool
	FinalDst geom.Coord
	// AdaptiveHops counts how many hops the packet took on a non-escape
	// virtual channel under escape-VC adaptive routing. Like DetourHops it is
	// simulator-side accounting, not header bits: a delivered packet with
	// AdaptiveHops > 0 strayed from the dimension-ordered escape path at
	// least once. Always 0 when the machine runs without virtual channels.
	AdaptiveHops int
	// Epoch is the routing-table generation the packet was injected under
	// (core's online-reconfiguration counter). Every routing decision for
	// the packet consults the table generation whose boundary covers this
	// stamp, so an in-flight packet keeps its injection-time table across a
	// live reconfiguration. Always 0 when reconfiguration is off.
	Epoch uint64
}

// Clone returns an independent copy of the header, used when a switch must
// rewrite routing fields (RC transitions) without aliasing the upstream copy.
func (h *Header) Clone() *Header {
	c := *h
	return &c
}

// Kind distinguishes the position of a flit within its packet.
type Kind uint8

const (
	// KindHeader is the first flit; it carries the Header.
	KindHeader Kind = iota
	// KindBody is an interior data flit.
	KindBody
	// KindTail is the last flit; its passage releases the circuit.
	KindTail
)

// String names the flit kind.
func (k Kind) String() string {
	switch k {
	case KindHeader:
		return "header"
	case KindBody:
		return "body"
	case KindTail:
		return "tail"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Flit is one fixed-size unit of a packet. A single-flit packet has a flit
// that is both header and tail: Kind is KindHeader and Last is true.
type Flit struct {
	// Header is non-nil exactly on the header flit.
	Header *Header
	// PacketID duplicates Header.PacketID on every flit so body/tail flits
	// can be attributed without chasing the header.
	PacketID uint64
	// Kind is the flit's position class.
	Kind Kind
	// Seq is the flit's 0-based position within the packet.
	Seq int
	// Last reports whether this flit releases the circuit (tail, or a
	// header-only packet).
	Last bool
}

// NewPacket builds the flit sequence for one packet with the given header.
// size must be >= 1 (a lone header flit); the header's Size field is set.
// AppendPacket appends the flits of a size-flit packet headed by h to dst
// and returns the grown slice. It is the allocation-free counterpart of
// NewPacket for callers that store flits by value (the engine's inject
// queues).
func AppendPacket(dst []Flit, h *Header, size int) []Flit {
	if size < 1 {
		panic(fmt.Sprintf("flit: packet size %d < 1", size))
	}
	h.Size = size
	dst = append(dst, Flit{Header: h, PacketID: h.PacketID, Kind: KindHeader, Seq: 0, Last: size == 1})
	for i := 1; i < size; i++ {
		k := KindBody
		if i == size-1 {
			k = KindTail
		}
		dst = append(dst, Flit{PacketID: h.PacketID, Kind: k, Seq: i, Last: i == size-1})
	}
	return dst
}

func NewPacket(h *Header, size int) []*Flit {
	if size < 1 {
		panic(fmt.Sprintf("flit: packet size %d < 1", size))
	}
	h.Size = size
	flits := make([]*Flit, size)
	flits[0] = &Flit{Header: h, PacketID: h.PacketID, Kind: KindHeader, Seq: 0, Last: size == 1}
	for i := 1; i < size; i++ {
		k := KindBody
		if i == size-1 {
			k = KindTail
		}
		flits[i] = &Flit{PacketID: h.PacketID, Kind: k, Seq: i, Last: i == size-1}
	}
	return flits
}

// String renders a flit for traces, e.g. "pkt7.header" or "pkt7.body[2]".
func (f *Flit) String() string {
	switch f.Kind {
	case KindHeader:
		return fmt.Sprintf("pkt%d.header", f.PacketID)
	case KindTail:
		return fmt.Sprintf("pkt%d.tail[%d]", f.PacketID, f.Seq)
	default:
		return fmt.Sprintf("pkt%d.body[%d]", f.PacketID, f.Seq)
	}
}
