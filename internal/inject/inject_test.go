package inject

import (
	"testing"

	"sr2201/internal/core"
	"sr2201/internal/fault"
	"sr2201/internal/geom"
)

// loadedMachine builds a 4x4 machine and sends one shift-pattern packet from
// every PE, returning the machine and the number of accepted sends.
func loadedMachine(t *testing.T) (*core.Machine, int) {
	t.Helper()
	shape := geom.MustShape(4, 4)
	m, err := core.NewMachine(core.Config{Shape: shape, StallThreshold: 128})
	if err != nil {
		t.Fatal(err)
	}
	accepted := 0
	shape.Enumerate(func(c geom.Coord) bool {
		dst := shape.CoordOf((shape.Index(c) + 5) % shape.Size())
		if dst == c {
			return true
		}
		if _, err := m.Send(c, dst, 0); err != nil {
			t.Fatalf("send %v->%v: %v", c, dst, err)
		}
		accepted++
		return true
	})
	return m, accepted
}

func TestScheduledFaultWithoutRetransmit(t *testing.T) {
	m, accepted := loadedMachine(t)
	inj, err := New(m, []Event{{Cycle: 8, Fault: fault.RouterFault(geom.Coord{2, 1})}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := inj.Run(50_000)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Drained || out.Deadlocked || out.Stalled {
		t.Fatalf("outcome: %+v", out)
	}
	st := inj.Stats()
	if st.EventsApplied != 1 {
		t.Fatalf("events applied = %d", st.EventsApplied)
	}
	if len(inj.Casualties()) != 1 || inj.Casualties()[0].Fault.Kind != fault.KindRouter {
		t.Fatalf("casualties = %+v", inj.Casualties())
	}
	if st.KilledInFlight+st.DropsEnRoute == 0 {
		t.Fatal("a cycle-8 router fault under full load lost nothing — scenario too weak")
	}
	if st.Retransmits != 0 || st.Recovered != 0 {
		t.Fatalf("retransmission happened while disabled: %+v", st)
	}
	delivered := len(m.Deliveries())
	lost := st.KilledInFlight + st.DropsEnRoute + st.DropsOther + st.LostUntraceable
	if delivered+lost != accepted {
		t.Errorf("accounting: delivered=%d + lost=%d != accepted=%d (%+v)", delivered, lost, accepted, st)
	}
	if err := m.Engine().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRetransmitRecoversExactlyOnce(t *testing.T) {
	m, accepted := loadedMachine(t)
	inj, err := New(m, []Event{{Cycle: 8, Fault: fault.RouterFault(geom.Coord{2, 1})}},
		Options{Retransmit: true, RetryAfter: 32})
	if err != nil {
		t.Fatal(err)
	}
	out, err := inj.Run(50_000)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Drained {
		t.Fatalf("outcome: %+v", out)
	}
	if inj.Pending() {
		t.Fatal("drained with pending injector work")
	}
	st := inj.Stats()
	if st.Retransmits == 0 || st.Recovered == 0 {
		t.Fatalf("no recovery despite losses: %+v", st)
	}
	if st.Duplicates != 0 {
		t.Fatalf("duplicate deliveries: %+v", st)
	}
	// Exactly-once: every accepted packet is delivered or finally lost.
	delivered := len(m.Deliveries())
	final := st.LostUnreachable + st.LostExhausted + st.LostUntraceable + st.DropsOther
	if delivered+final != accepted {
		t.Errorf("accounting: delivered=%d + final losses=%d != accepted=%d (%+v)", delivered, final, accepted, st)
	}
	// Single-fault runs: every original loss resolves to recovered or a
	// documented final loss.
	if st.KilledInFlight+st.DropsEnRoute != st.Recovered+st.LostUnreachable+st.LostExhausted {
		t.Errorf("loss resolution mismatch: %+v", st)
	}
	// The dead router's PE is the only legal destination for final losses,
	// so packets to it must be the LostUnreachable ones.
	if st.LostUnreachable == 0 {
		t.Errorf("expected unreachable losses for the dead PE's packets: %+v", st)
	}
}

func TestRetransmitUnreachableIsFinal(t *testing.T) {
	// Kill the destination router of a single in-flight packet: the
	// retransmission precheck must refuse and account LostUnreachable.
	shape := geom.MustShape(4, 4)
	m, err := core.NewMachine(core.Config{Shape: shape, StallThreshold: 128})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Send(geom.Coord{0, 0}, geom.Coord{3, 0}, 0); err != nil {
		t.Fatal(err)
	}
	inj, err := New(m, []Event{{Cycle: 4, Fault: fault.RouterFault(geom.Coord{3, 0})}},
		Options{Retransmit: true, RetryAfter: 16})
	if err != nil {
		t.Fatal(err)
	}
	out, err := inj.Run(20_000)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Drained {
		t.Fatalf("outcome: %+v", out)
	}
	st := inj.Stats()
	if st.KilledInFlight+st.DropsEnRoute != 1 {
		t.Fatalf("expected the single packet lost: %+v", st)
	}
	if st.LostUnreachable != 1 || st.Recovered != 0 || st.Retransmits != 0 {
		t.Fatalf("loss not final-unreachable: %+v", st)
	}
	if len(m.Deliveries()) != 0 {
		t.Fatalf("impossible delivery: %+v", m.Deliveries())
	}
}

func TestMaxRetriesExhausts(t *testing.T) {
	// An unchecked send into a pre-dead switch region cannot be tested here
	// (Send prechecks), so exercise exhaustion by repeatedly killing the
	// packet: two faults along both the primary and detour paths make the
	// destination genuinely unreachable only via the documented error — so
	// instead verify the exhaustion counter with a zero-retry budget is NOT
	// triggered when no losses occur, and that MaxRetries bounds attempts.
	m, _ := loadedMachine(t)
	inj, err := New(m, []Event{{Cycle: 8, Fault: fault.RouterFault(geom.Coord{2, 1})}},
		Options{Retransmit: true, RetryAfter: 8, MaxRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inj.Run(50_000); err != nil {
		t.Fatal(err)
	}
	st := inj.Stats()
	if st.Retransmits > st.KilledInFlight+st.DropsEnRoute {
		t.Fatalf("more retransmits than losses with MaxRetries=1: %+v", st)
	}
}

func TestNewValidatesSchedule(t *testing.T) {
	m, _ := loadedMachine(t)
	if _, err := New(m, []Event{{Cycle: -1, Fault: fault.RouterFault(geom.Coord{0, 0})}}, Options{}); err == nil {
		t.Error("negative cycle accepted")
	}
	if _, err := New(m, []Event{{Cycle: 5, Fault: fault.RouterFault(geom.Coord{9, 9})}}, Options{}); err == nil {
		t.Error("out-of-shape fault accepted")
	}
}

func TestEventsApplyInCycleOrder(t *testing.T) {
	m, _ := loadedMachine(t)
	inj, err := New(m, []Event{
		{Cycle: 30, Fault: fault.XBFault(geom.LineOf(geom.Coord{0, 3}, 0))},
		{Cycle: 6, Fault: fault.RouterFault(geom.Coord{1, 2})},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inj.Run(50_000); err != nil {
		t.Fatal(err)
	}
	cas := inj.Casualties()
	if len(cas) != 2 {
		t.Fatalf("casualty records = %d", len(cas))
	}
	if cas[0].Cycle != 6 || cas[1].Cycle != 30 {
		t.Fatalf("events out of order: %d then %d", cas[0].Cycle, cas[1].Cycle)
	}
	if cas[0].Fault.Kind != fault.KindRouter || cas[1].Fault.Kind != fault.KindXB {
		t.Fatalf("faults out of order: %+v", cas)
	}
	if inj.Stats().EventsApplied != 2 {
		t.Fatalf("stats: %+v", inj.Stats())
	}
}
