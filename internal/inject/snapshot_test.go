package inject_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"sr2201/internal/checkpoint"
	"sr2201/internal/core"
	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/inject"
)

// Dynamic-fault (F series) restore equivalence: a run with mid-flight fault
// events, purges, detours and retransmissions must resume from a snapshot
// with an identical per-cycle StateHash stream, identical injector
// accounting, and identical casualty records — including snapshots taken
// between the two fault events and during the retransmission window.

type ffixture struct {
	shape  geom.Shape
	events []inject.Event
	opt    inject.Options
}

func f4x4() ffixture {
	return ffixture{
		shape: geom.MustShape(4, 4),
		events: []inject.Event{
			{Cycle: 8, Fault: fault.RouterFault(geom.Coord{2, 1})},
			{Cycle: 40, Fault: fault.RouterFault(geom.Coord{1, 2})},
		},
		opt: inject.Options{Retransmit: true, RetryAfter: 16, StallThreshold: 256},
	}
}

// build constructs the machine+injector pair from the fixture spec.
func (f ffixture) build(t *testing.T) (*core.Machine, *inject.Injector) {
	t.Helper()
	m, err := core.NewMachine(core.Config{Shape: f.shape, StallThreshold: f.opt.StallThreshold})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	inj, err := inject.New(m, f.events, f.opt)
	if err != nil {
		t.Fatalf("inject.New: %v", err)
	}
	return m, inj
}

// wave sends a shifted all-to-all burst; fired every gap cycles so traffic
// is crossing both victims when they die.
func wave(m *core.Machine, shift int) {
	var pes []geom.Coord
	m.Shape().Enumerate(func(c geom.Coord) bool {
		pes = append(pes, c)
		return true
	})
	n := len(pes)
	for i, src := range pes {
		dst := pes[(i+shift)%n]
		if dst != src {
			m.Send(src, dst, 0)
		}
	}
}

// snapBoth packs machine and injector into one container.
func snapBoth(m *core.Machine, inj *inject.Injector) []byte {
	w := checkpoint.NewWriter()
	m.EncodeState(w)
	inj.EncodeState(w)
	return w.Bytes()
}

func restoreBoth(t *testing.T, f ffixture, data []byte) (*core.Machine, *inject.Injector) {
	t.Helper()
	m, inj := f.build(t)
	r, err := checkpoint.NewReader(data)
	if err != nil {
		t.Fatalf("reader: %v", err)
	}
	if err := m.DecodeState(r); err != nil {
		t.Fatalf("machine decode: %v", err)
	}
	if err := inj.DecodeState(r); err != nil {
		t.Fatalf("injector decode: %v", err)
	}
	return m, inj
}

func injReport(m *core.Machine, inj *inject.Injector) string {
	var b strings.Builder
	fmt.Fprintf(&b, "stats=%+v err=%v\n", inj.Stats(), inj.Err())
	for _, c := range inj.Casualties() {
		fmt.Fprintf(&b, "cycle=%d fault=%v lost=%d\n", c.Cycle, c.Fault, len(c.Lost))
		for _, l := range c.Lost {
			fmt.Fprintf(&b, "  %+v\n", l)
		}
	}
	for _, d := range m.Deliveries() {
		fmt.Fprintf(&b, "%d %v %v d=%v c=%d l=%d\n", d.PacketID, d.Src, d.At, d.Detoured, d.Cycle, d.Latency)
	}
	fmt.Fprintf(&b, "dropped=%d cycle=%d\n", m.Dropped(), m.Cycle())
	return b.String()
}

func TestInjectorRestoreEquivalence(t *testing.T) {
	fix := f4x4()
	const horizon = 200
	const gap = 24
	// k=8 lands on the first event's cycle, k=50 inside the retransmission
	// window after the second event, k=20 between events.
	ks := []int64{0, 8, 20, 50, 120}

	driver := func(m *core.Machine, c int64) {
		if c%gap == 0 && c < 5*gap {
			wave(m, int(c/gap)+3)
		}
		m.Step()
	}

	// Reference run.
	m, inj := fix.build(t)
	snaps := map[int64][]byte{}
	hashes := make([]uint64, horizon)
	for c := int64(0); c < horizon; c++ {
		for _, k := range ks {
			if k == c {
				snaps[k] = snapBoth(m, inj)
			}
		}
		driver(m, c)
		hashes[c] = m.Engine().StateHash()
	}
	want := injReport(m, inj)
	if inj.Stats().EventsApplied != 2 {
		t.Fatalf("fixture too tame: %d events applied, want 2", inj.Stats().EventsApplied)
	}
	if inj.Stats().KilledInFlight == 0 {
		t.Fatalf("fixture too tame: no in-flight kills — snapshot window misses the interesting state")
	}
	if inj.Stats().Retransmits == 0 {
		t.Fatalf("fixture too tame: no retransmissions")
	}

	for _, k := range ks {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			m2, inj2 := restoreBoth(t, fix, snaps[k])
			if got := m2.Cycle(); got != k {
				t.Fatalf("restored at cycle %d, want %d", got, k)
			}
			for c := k; c < horizon; c++ {
				driver(m2, c)
				if h := m2.Engine().StateHash(); h != hashes[c] {
					t.Fatalf("hash diverged at cycle %d: %016x != %016x", c, h, hashes[c])
				}
			}
			if got := injReport(m2, inj2); got != want {
				t.Errorf("final report differs\n--- resumed\n%s--- uninterrupted\n%s", got, want)
			}
			if !reflect.DeepEqual(inj2.Stats(), inj.Stats()) {
				t.Errorf("stats differ: %+v != %+v", inj2.Stats(), inj.Stats())
			}
		})
	}
}

// TestInjectorRestoreRejectsMismatchedSchedule pins the schedule
// fingerprint: a snapshot must not resume under different events/options.
func TestInjectorRestoreRejectsMismatchedSchedule(t *testing.T) {
	fix := f4x4()
	m, inj := fix.build(t)
	for i := 0; i < 10; i++ {
		m.Step()
	}
	data := snapBoth(m, inj)

	alts := []ffixture{fix, fix, fix}
	alts[0].events = alts[0].events[:1]
	alts[1].events = []inject.Event{
		{Cycle: 9, Fault: fault.RouterFault(geom.Coord{2, 1})},
		{Cycle: 40, Fault: fault.RouterFault(geom.Coord{1, 2})},
	}
	alts[2].opt.RetryAfter = 17
	for i, alt := range alts {
		m2, inj2 := alt.build(t)
		r, err := checkpoint.NewReader(data)
		if err != nil {
			t.Fatalf("reader: %v", err)
		}
		if err := m2.DecodeState(r); err != nil {
			t.Fatalf("machine decode: %v", err)
		}
		if err := inj2.DecodeState(r); err == nil {
			t.Errorf("alt %d: restore under mismatched schedule unexpectedly succeeded", i)
		} else if !strings.Contains(err.Error(), "fingerprint") {
			t.Errorf("alt %d: unhelpful mismatch error: %v", i, err)
		}
	}
}
