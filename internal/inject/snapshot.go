package inject

import (
	"errors"
	"fmt"
	"sort"

	"sr2201/internal/checkpoint"
	"sr2201/internal/core"
	"sr2201/internal/fault"
	"sr2201/internal/flit"
	"sr2201/internal/geom"
)

// Injector snapshot/restore. The schedule itself (events, options) is spec,
// not state — a restore target is built with New(machine, sameEvents,
// sameOptions) — but everything the schedule has *done* is state: which
// events fired, the retransmission chains with their shared identity (two
// packet IDs may name the same logical packet), pending resend timers, the
// drop/purge dedup set, accounting, and the per-event casualty records.
//
// Snapshots must be taken between machine Steps, never from inside a hook.

const (
	secInjectMeta       = "inject.meta"
	secInjectChains     = "inject.chains"
	secInjectStats      = "inject.stats"
	secInjectCasualties = "inject.casualties"
)

// scheduleHash digests the (sorted) event list and options so a snapshot
// cannot silently resume under a different schedule.
func (inj *Injector) scheduleHash() uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	mix := func(v int64) {
		u := uint64(v)
		for i := 0; i < 8; i++ {
			h ^= u & 0xff
			h *= prime
			u >>= 8
		}
	}
	mix(int64(len(inj.events)))
	for _, ev := range inj.events {
		mix(ev.Cycle)
		mix(int64(ev.Fault.Kind))
		for _, v := range ev.Fault.Coord {
			mix(int64(v))
		}
		mix(int64(ev.Fault.Line.Dim))
		for _, v := range ev.Fault.Line.Fixed {
			mix(int64(v))
		}
		if ev.Fault.Kind == fault.KindLink {
			for _, v := range ev.Fault.To {
				mix(int64(v))
			}
		}
	}
	mix(boolInt(inj.opt.Retransmit))
	mix(inj.opt.RetryAfter)
	mix(int64(inj.opt.Backoff))
	mix(int64(inj.opt.MaxRetries))
	mix(inj.opt.MaxRetryAfter)
	mix(inj.opt.StallThreshold)
	return h
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// EncodeState appends the injector's dynamic state to a checkpoint
// container as the "inject.*" sections. It does not encode the machine;
// callers snapshotting a full run encode both into one container.
func (inj *Injector) EncodeState(w *checkpoint.Writer) {
	meta := w.Section(secInjectMeta)
	meta.Uint(inj.scheduleHash())
	meta.Int(int64(inj.next))
	meta.Bool(inj.err != nil)
	if inj.err != nil {
		meta.String(inj.err.Error())
	}

	// Chains are shared objects: number them deterministically (ascending
	// first packet ID that references each chain) and encode the id->chain
	// map and resend timers against those indices.
	ids := make([]uint64, 0, len(inj.chains))
	for id := range inj.chains {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	chainIdx := map[*chain]int{}
	var chains []*chain
	for _, id := range ids {
		ch := inj.chains[id]
		if _, seen := chainIdx[ch]; !seen {
			chainIdx[ch] = len(chains)
			chains = append(chains, ch)
		}
	}
	cs := w.Section(secInjectChains)
	cs.Uint(uint64(len(chains)))
	for _, ch := range chains {
		geom.EncodeCoord(cs, ch.src)
		geom.EncodeCoord(cs, ch.dst)
		cs.Int(int64(ch.size))
		cs.Int(int64(ch.attempts))
		cs.Int(int64(ch.delivered))
		cs.Int(int64(ch.victimized))
	}
	cs.Uint(uint64(len(ids)))
	for _, id := range ids {
		cs.Uint(id)
		cs.Uint(uint64(chainIdx[inj.chains[id]]))
	}
	cs.Uint(uint64(len(inj.pendingResends)))
	for _, rs := range inj.pendingResends {
		cs.Int(rs.due)
		cs.Uint(uint64(chainIdx[rs.ch]))
	}
	handled := make([]uint64, 0, len(inj.handled))
	for id, v := range inj.handled {
		if v {
			handled = append(handled, id)
		}
	}
	sort.Slice(handled, func(i, j int) bool { return handled[i] < handled[j] })
	cs.Uint(uint64(len(handled)))
	for _, id := range handled {
		cs.Uint(id)
	}

	st := w.Section(secInjectStats)
	for _, v := range []int{
		inj.stats.EventsApplied, inj.stats.KilledInFlight, inj.stats.DropsEnRoute,
		inj.stats.DropsOther, inj.stats.Retransmits, inj.stats.Recovered,
		inj.stats.Duplicates, inj.stats.LostUnreachable, inj.stats.LostExhausted,
		inj.stats.LostUntraceable, inj.stats.Victims,
	} {
		st.Int(int64(v))
	}
	st.Int(int64(inj.stats.ReconfigDrained)) // appended in format version 3

	ca := w.Section(secInjectCasualties)
	ca.Uint(uint64(len(inj.casualties)))
	for _, c := range inj.casualties {
		ca.Int(c.Cycle)
		fault.EncodeFault(ca, c.Fault)
		ca.Uint(uint64(len(c.Lost)))
		for _, l := range c.Lost {
			ca.Uint(l.PacketID)
			ca.Bool(l.Known)
			geom.EncodeCoord(ca, l.Src)
			geom.EncodeCoord(ca, l.Dst)
			ca.Byte(byte(l.RC))
			ca.Int(int64(l.Size))
			ca.Bool(l.AlreadyDropped)
		}
	}
}

// DecodeState restores the "inject.*" sections into this injector, which
// must have been built with New against the same events and options. The
// bound machine's state is restored separately (Machine.DecodeState).
func (inj *Injector) DecodeState(r *checkpoint.Reader) error {
	meta, err := r.Section(secInjectMeta)
	if err != nil {
		return err
	}
	if got, want := meta.Uint(), inj.scheduleHash(); meta.Err() == nil && got != want {
		return fmt.Errorf("checkpoint: section %q: schedule fingerprint %016x does not match this injector's %016x", secInjectMeta, got, want)
	}
	next := meta.IntAsInt()
	var injErr error
	if meta.Bool() {
		injErr = errors.New(meta.String())
	}
	if err := meta.Finish(); err != nil {
		return err
	}
	if next < 0 || next > len(inj.events) {
		return fmt.Errorf("checkpoint: section %q: event index %d outside schedule of %d", secInjectMeta, next, len(inj.events))
	}

	cs, err := r.Section(secInjectChains)
	if err != nil {
		return err
	}
	nc := cs.Len(6)
	chains := make([]*chain, 0, nc)
	for i := 0; i < nc; i++ {
		ch := &chain{}
		ch.src = geom.DecodeCoord(cs)
		ch.dst = geom.DecodeCoord(cs)
		ch.size = cs.IntAsInt()
		ch.attempts = cs.IntAsInt()
		ch.delivered = cs.IntAsInt()
		ch.victimized = cs.IntAsInt()
		chains = append(chains, ch)
	}
	nm := cs.Len(2)
	chainMap := make(map[uint64]*chain, nm)
	for i := 0; i < nm; i++ {
		id := cs.Uint()
		idx := cs.Uint()
		if cs.Err() != nil {
			break
		}
		if idx >= uint64(len(chains)) {
			return fmt.Errorf("checkpoint: section %q: chain index %d outside table of %d", secInjectChains, idx, len(chains))
		}
		chainMap[id] = chains[idx]
	}
	nr := cs.Len(2)
	resends := make([]resend, 0, nr)
	for i := 0; i < nr; i++ {
		due := cs.Int()
		idx := cs.Uint()
		if cs.Err() != nil {
			break
		}
		if idx >= uint64(len(chains)) {
			return fmt.Errorf("checkpoint: section %q: resend chain index %d outside table of %d", secInjectChains, idx, len(chains))
		}
		resends = append(resends, resend{due: due, ch: chains[idx]})
	}
	nh := cs.Len(1)
	handled := make(map[uint64]bool, nh)
	for i := 0; i < nh; i++ {
		handled[cs.Uint()] = true
	}
	if err := cs.Finish(); err != nil {
		return err
	}

	st, err := r.Section(secInjectStats)
	if err != nil {
		return err
	}
	var stats Stats
	for _, p := range []*int{
		&stats.EventsApplied, &stats.KilledInFlight, &stats.DropsEnRoute,
		&stats.DropsOther, &stats.Retransmits, &stats.Recovered,
		&stats.Duplicates, &stats.LostUnreachable, &stats.LostExhausted,
		&stats.LostUntraceable, &stats.Victims,
	} {
		*p = st.IntAsInt()
	}
	if st.Version() >= 3 {
		stats.ReconfigDrained = st.IntAsInt()
	}
	if err := st.Finish(); err != nil {
		return err
	}

	ca, err := r.Section(secInjectCasualties)
	if err != nil {
		return err
	}
	ncas := ca.Len(3)
	casualties := make([]Casualty, 0, ncas)
	for i := 0; i < ncas; i++ {
		var c Casualty
		c.Cycle = ca.Int()
		c.Fault = fault.DecodeFault(ca)
		nl := ca.Len(4)
		for j := 0; j < nl; j++ {
			var l core.Lost
			l.PacketID = ca.Uint()
			l.Known = ca.Bool()
			l.Src = geom.DecodeCoord(ca)
			l.Dst = geom.DecodeCoord(ca)
			l.RC = flit.RC(ca.Byte())
			l.Size = ca.IntAsInt()
			l.AlreadyDropped = ca.Bool()
			c.Lost = append(c.Lost, l)
		}
		casualties = append(casualties, c)
	}
	if err := ca.Finish(); err != nil {
		return err
	}

	inj.next = next
	inj.err = injErr
	inj.chains = chainMap
	inj.pendingResends = resends
	inj.handled = handled
	inj.stats = stats
	inj.casualties = casualties
	return nil
}
