package inject

// Determinism layer for dynamic faults (extends PR 1's per-cycle StateHash
// tests): a run with a scheduled mid-run fault and retransmission enabled,
// replayed from scratch, must produce the identical per-cycle hash stream.
// CI additionally runs this package under the race detector.

import (
	"testing"

	"sr2201/internal/core"
	"sr2201/internal/fault"
	"sr2201/internal/geom"
)

// scheduledRun builds a loaded 4x4 machine with a cycle-10 router fault and
// retransmission, steps it to the horizon, and returns the per-cycle hash
// stream plus the final stats.
func scheduledRun(t *testing.T, horizon int) ([]uint64, Stats) {
	t.Helper()
	shape := geom.MustShape(4, 4)
	m, err := core.NewMachine(core.Config{Shape: shape, StallThreshold: 128})
	if err != nil {
		t.Fatal(err)
	}
	shape.Enumerate(func(c geom.Coord) bool {
		dst := shape.CoordOf((shape.Index(c) + 7) % shape.Size())
		if dst != c {
			if _, err := m.Send(c, dst, 0); err != nil {
				t.Fatalf("send %v->%v: %v", c, dst, err)
			}
		}
		return true
	})
	inj, err := New(m, []Event{
		{Cycle: 10, Fault: fault.RouterFault(geom.Coord{1, 2})},
	}, Options{Retransmit: true, RetryAfter: 24})
	if err != nil {
		t.Fatal(err)
	}
	eng := m.Engine()
	hashes := make([]uint64, horizon)
	for i := range hashes {
		m.Step()
		hashes[i] = eng.StateHash()
	}
	if err := inj.Err(); err != nil {
		t.Fatal(err)
	}
	if !eng.Quiescent() || inj.Pending() {
		t.Fatalf("run not complete at horizon %d (resident=%d pending=%v)",
			horizon, eng.Resident(), inj.Pending())
	}
	return hashes, inj.Stats()
}

func TestScheduledFaultReplayIdentical(t *testing.T) {
	const horizon = 800
	ha, sa := scheduledRun(t, horizon)
	hb, sb := scheduledRun(t, horizon)
	for i := range ha {
		if ha[i] != hb[i] {
			t.Fatalf("hash diverged at cycle %d: %#x vs %#x", i+1, ha[i], hb[i])
		}
	}
	if sa != sb {
		t.Fatalf("stats diverged:\n%+v\n%+v", sa, sb)
	}
	if sa.KilledInFlight+sa.DropsEnRoute == 0 || sa.Recovered == 0 {
		t.Fatalf("scenario exercised no dynamic loss/recovery: %+v", sa)
	}
}
