// Package inject drives deterministic dynamic-fault schedules against a
// running Machine: a fault (RTC or XB) activates at a given cycle mid-run,
// in-flight casualties are purged and accounted, and — optionally — the
// sources of lost packets retransmit after a configurable timeout with
// exponential backoff and delivered-exactly-once accounting.
//
// The Injector installs itself on the engine's PreCycle hook, so a schedule
// is part of the simulation's deterministic state: two machines driven with
// the same schedule produce identical per-cycle StateHash streams (pinned
// by this package's determinism tests).
package inject

import (
	"errors"
	"fmt"
	"sort"

	"sr2201/internal/core"
	"sr2201/internal/deadlock"
	"sr2201/internal/engine"
	"sr2201/internal/fault"
	"sr2201/internal/flit"
	"sr2201/internal/geom"
	"sr2201/internal/routing"
)

// Event schedules one fault activation.
type Event struct {
	// Cycle is the simulation time at which the fault activates (applied in
	// the PreCycle hook, i.e. before any flit moves in that cycle).
	Cycle int64
	// Fault is the switch that dies.
	Fault fault.Fault
}

// Options tune the injector's recovery behavior.
type Options struct {
	// Retransmit re-sends lost unicast packets from their sources. Without
	// it, losses are only counted.
	Retransmit bool
	// RetryAfter is the timeout (cycles) before the first retransmission of
	// a lost packet. <= 0 selects 64.
	RetryAfter int64
	// Backoff multiplies the timeout on each further attempt. < 1 selects 2.
	Backoff int
	// MaxRetries caps retransmission attempts per packet. <= 0 selects 4.
	MaxRetries int
	// MaxRetryAfter caps the backed-off timeout: the delay before attempt n
	// is min(RetryAfter × Backoff^(n-1), MaxRetryAfter). Without a cap the
	// product grows without limit — and overflows int64 — once a packet is
	// lost repeatedly (e.g. a victim purged on every recovery round). <= 0
	// selects DefaultMaxRetryAfter.
	MaxRetryAfter int64
	// StallThreshold configures Run's deadlock watchdog (<= 0 = default).
	StallThreshold int64
}

// DefaultMaxRetryAfter is the default ceiling on the backed-off
// retransmission timeout (cycles). Large enough that default-tuned
// schedules (RetryAfter 64, Backoff 2, MaxRetries 4) never hit it.
const DefaultMaxRetryAfter = 1 << 16

func (o *Options) normalize() {
	if o.RetryAfter <= 0 {
		o.RetryAfter = 64
	}
	if o.Backoff < 1 {
		o.Backoff = 2
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 4
	}
	if o.MaxRetryAfter <= 0 {
		o.MaxRetryAfter = DefaultMaxRetryAfter
	}
}

// Casualty records the in-flight losses of one applied fault event.
type Casualty struct {
	Cycle int64
	Fault fault.Fault
	Lost  []core.Lost
}

// Stats aggregates the injector's accounting. With retransmission enabled
// and the run drained, every accepted unicast satisfies exactly one of:
// delivered (original or recovered), LostUnreachable, LostExhausted,
// LostUntraceable — and Duplicates is zero (delivered-exactly-once).
type Stats struct {
	// EventsApplied counts fault events that fired.
	EventsApplied int
	// KilledInFlight counts packets purged by fault events (excluding those
	// routing had already dropped — see DropsEnRoute).
	KilledInFlight int
	// DropsEnRoute counts unicast packets the routing layer dropped inside
	// the network (e.g. on arrival at a switch that died after they
	// committed to it).
	DropsEnRoute int
	// DropsOther counts non-unicast drops (broadcast branches etc.); these
	// are never retransmitted.
	DropsOther int
	// Retransmits counts re-sent packets.
	Retransmits int
	// Recovered counts originally-lost packets whose retransmission (any
	// attempt) was delivered.
	Recovered int
	// Duplicates counts deliveries beyond the first for one logical packet
	// (must stay zero).
	Duplicates int
	// LostUnreachable counts packets abandoned because the rebuilt fault
	// bits predict the destination unreachable (the documented
	// ErrUnreachable cases).
	LostUnreachable int
	// LostExhausted counts packets abandoned after MaxRetries attempts.
	LostExhausted int
	// LostUntraceable counts purged packets whose header was gone, so no
	// retransmission was possible.
	LostUntraceable int
	// Victims counts packets sacrificed by the recovery layer to dissolve a
	// wait cycle (LoseVictim). Each is also routed through the normal loss
	// machinery, so it ends delivered-on-retry, LostExhausted,
	// LostUnreachable, LostUntraceable or DropsOther like any other loss.
	Victims int
	// ReconfigDrained counts packets sacrificed by the reconfiguration
	// manager's bounded drain (LoseDrained) — kept apart from Victims so
	// downtime comparisons can separate recovery sacrifices from
	// reconfiguration drains. Like victims, each continues through the
	// normal loss machinery.
	ReconfigDrained int
}

// chain tracks one logical packet across its retransmission attempts.
type chain struct {
	src, dst   geom.Coord
	size       int
	attempts   int // retransmissions sent so far
	delivered  int
	victimized int // times sacrificed by the recovery layer (LoseVictim)
}

// resend is one scheduled retransmission.
type resend struct {
	due int64
	ch  *chain
}

// Injector owns a fault schedule bound to one Machine.
type Injector struct {
	m      *core.Machine
	events []Event
	next   int
	opt    Options

	pendingResends []resend
	// chains maps the latest attempt's packet ID to its logical packet.
	chains map[uint64]*chain
	// handled marks packet IDs whose loss has been processed, so a drop
	// followed by a purge of the same attempt cannot double-schedule.
	handled map[uint64]bool

	stats      Stats
	casualties []Casualty
	err        error
}

// New binds a schedule to a machine. Events are validated against the
// machine's shape up front (using a clone of its fault set) and applied in
// cycle order, insertion order breaking ties. The injector chains onto the
// engine's PreCycle and OnDrop hooks and the machine's OnDeliver callback,
// preserving any handlers already installed.
func New(m *core.Machine, events []Event, opt Options) (*Injector, error) {
	opt.normalize()
	probe := m.Faults().Clone()
	for _, ev := range events {
		if ev.Cycle < 0 {
			return nil, fmt.Errorf("inject: negative event cycle %d", ev.Cycle)
		}
		if err := probe.Add(ev.Fault); err != nil {
			return nil, fmt.Errorf("inject: bad event: %w", err)
		}
	}
	inj := &Injector{
		m:       m,
		events:  append([]Event(nil), events...),
		opt:     opt,
		chains:  map[uint64]*chain{},
		handled: map[uint64]bool{},
	}
	sort.SliceStable(inj.events, func(i, j int) bool { return inj.events[i].Cycle < inj.events[j].Cycle })

	eng := m.Engine()
	prevPre := eng.PreCycle
	eng.PreCycle = func(c int64) {
		if prevPre != nil {
			prevPre(c)
		}
		inj.preCycle(c)
	}
	prevDrop := eng.OnDrop
	eng.OnDrop = func(d engine.Drop) {
		if prevDrop != nil {
			prevDrop(d)
		}
		inj.onDrop(d)
	}
	prevDel := m.OnDeliver
	m.OnDeliver = func(d core.Delivery) {
		if prevDel != nil {
			prevDel(d)
		}
		inj.onDeliver(d)
	}
	return inj, nil
}

// preCycle applies due fault events and due retransmissions.
func (inj *Injector) preCycle(cycle int64) {
	for inj.next < len(inj.events) && inj.events[inj.next].Cycle <= cycle {
		ev := inj.events[inj.next]
		inj.next++
		lost, err := inj.m.FailNow(ev.Fault)
		if err != nil {
			inj.fail(err)
			return
		}
		inj.stats.EventsApplied++
		inj.casualties = append(inj.casualties, Casualty{Cycle: cycle, Fault: ev.Fault, Lost: lost})
		for _, l := range lost {
			if inj.handled[l.PacketID] {
				continue // routing dropped it earlier; already processed
			}
			inj.handled[l.PacketID] = true
			if !l.Known {
				inj.stats.LostUntraceable++
				continue
			}
			if l.RC != flit.RCNormal && l.RC != flit.RCDetour {
				inj.stats.DropsOther++
				continue
			}
			inj.stats.KilledInFlight++
			inj.lose(cycle, l.PacketID, l.Src, l.Dst, l.Size)
		}
	}
	if len(inj.pendingResends) == 0 {
		return
	}
	// Collect due chains first: retrying appends to pendingResends, which
	// must not race the filtering pass.
	var due []*chain
	kept := inj.pendingResends[:0]
	for _, r := range inj.pendingResends {
		if r.due <= cycle {
			due = append(due, r.ch)
		} else {
			kept = append(kept, r)
		}
	}
	inj.pendingResends = kept
	for _, ch := range due {
		inj.retry(cycle, ch)
	}
}

// lose routes one lost attempt into the recovery machinery: schedule a
// retransmission (when enabled) or account the loss as final.
func (inj *Injector) lose(cycle int64, id uint64, src, dst geom.Coord, size int) {
	ch := inj.chains[id]
	if ch == nil {
		ch = &chain{src: src, dst: dst, size: size}
		inj.chains[id] = ch
	}
	if !inj.opt.Retransmit {
		return
	}
	delay := backoffDelay(inj.opt.RetryAfter, inj.opt.Backoff, inj.opt.MaxRetryAfter, ch.attempts)
	inj.pendingResends = append(inj.pendingResends, resend{due: cycle + delay, ch: ch})
}

// backoffDelay computes min(retryAfter × backoff^attempts, cap) without ever
// overflowing: the product is abandoned the moment one more multiplication
// would cross the cap, so the intermediate value never exceeds cap × backoff.
func backoffDelay(retryAfter int64, backoff int, cap int64, attempts int) int64 {
	delay := retryAfter
	if delay > cap {
		return cap
	}
	for i := 0; i < attempts; i++ {
		if delay > cap/int64(backoff) {
			return cap
		}
		delay *= int64(backoff)
	}
	return delay
}

// LoseVictim routes one recovery-purged packet (core.PurgePacket) into the
// loss machinery, exactly as a fault casualty would be: accounted, and —
// with retransmission enabled — scheduled for re-send with the usual
// backoff. It returns true when a retransmission chain now covers the
// packet (so the loss is recoverable), false when the loss is final
// (untraceable header, or a non-unicast packet that is never
// retransmitted). Safe to call for a packet whose drop was already
// observed: the handled guard makes it a no-op, returning whether the
// earlier processing left a live chain.
func (inj *Injector) LoseVictim(cycle int64, l core.Lost) bool {
	if inj.handled[l.PacketID] {
		ch := inj.chains[l.PacketID]
		return ch != nil && inj.opt.Retransmit
	}
	inj.handled[l.PacketID] = true
	if !l.Known {
		inj.stats.LostUntraceable++
		return false
	}
	if l.RC != flit.RCNormal && l.RC != flit.RCDetour {
		// Broadcast branches and other non-unicast traffic cannot be
		// retransmitted; the sacrifice is final.
		inj.stats.DropsOther++
		return false
	}
	inj.stats.Victims++
	inj.lose(cycle, l.PacketID, l.Src, l.Dst, l.Size)
	if ch := inj.chains[l.PacketID]; ch != nil {
		ch.victimized++
	}
	return inj.opt.Retransmit
}

// LoseDrained routes one packet purged by the reconfiguration manager's
// bounded drain into the loss machinery, mirroring LoseVictim but accounted
// under ReconfigDrained. It returns true when a retransmission chain now
// covers the packet.
func (inj *Injector) LoseDrained(cycle int64, l core.Lost) bool {
	if inj.handled[l.PacketID] {
		ch := inj.chains[l.PacketID]
		return ch != nil && inj.opt.Retransmit
	}
	inj.handled[l.PacketID] = true
	if !l.Known {
		inj.stats.LostUntraceable++
		return false
	}
	if l.RC != flit.RCNormal && l.RC != flit.RCDetour {
		// Broadcast traffic cannot be retransmitted; the drain loss is final.
		inj.stats.DropsOther++
		return false
	}
	inj.stats.ReconfigDrained++
	inj.lose(cycle, l.PacketID, l.Src, l.Dst, l.Size)
	return inj.opt.Retransmit
}

// Victimized reports how many times the logical packet behind the given
// attempt ID has been sacrificed by the recovery layer. Zero for unknown
// packets.
func (inj *Injector) Victimized(id uint64) int {
	if ch := inj.chains[id]; ch != nil {
		return ch.victimized
	}
	return 0
}

// retry re-sends one chain's packet, or abandons it.
func (inj *Injector) retry(cycle int64, ch *chain) {
	if ch.attempts >= inj.opt.MaxRetries {
		inj.stats.LostExhausted++
		return
	}
	id, err := inj.m.Send(ch.src, ch.dst, ch.size)
	if err != nil {
		if errors.Is(err, routing.ErrUnreachable) {
			// The NIA's pre-set fault bits predict the destination cannot be
			// served: the loss is final and documented.
			inj.stats.LostUnreachable++
			return
		}
		inj.fail(err)
		return
	}
	ch.attempts++
	inj.stats.Retransmits++
	inj.chains[id] = ch
}

// onDrop observes packets the routing layer discarded inside the network.
func (inj *Injector) onDrop(d engine.Drop) {
	h := d.Header
	if h == nil || inj.handled[h.PacketID] {
		return
	}
	inj.handled[h.PacketID] = true
	if h.RC != flit.RCNormal && h.RC != flit.RCDetour {
		inj.stats.DropsOther++
		return
	}
	inj.stats.DropsEnRoute++
	dst := h.Dst
	if h.TwoPhase {
		dst = h.FinalDst
	}
	inj.lose(d.Cycle, h.PacketID, h.Src, dst, h.Size)
}

// onDeliver closes retransmission chains and detects duplicates.
func (inj *Injector) onDeliver(d core.Delivery) {
	ch := inj.chains[d.PacketID]
	if ch == nil {
		return
	}
	ch.delivered++
	if ch.delivered == 1 {
		inj.stats.Recovered++
	} else {
		inj.stats.Duplicates++
	}
}

func (inj *Injector) fail(err error) {
	if inj.err == nil {
		inj.err = err
	}
}

// Pending reports whether the injector still owes the simulation work:
// unapplied fault events or scheduled retransmissions.
func (inj *Injector) Pending() bool {
	return inj.next < len(inj.events) || len(inj.pendingResends) > 0
}

// Stats returns a snapshot of the accounting.
func (inj *Injector) Stats() Stats { return inj.stats }

// Casualties returns the per-event loss records, in application order.
func (inj *Injector) Casualties() []Casualty { return inj.casualties }

// Err returns the first internal error (a mid-run FailNow or Send failure
// that is not ErrUnreachable), or nil.
func (inj *Injector) Err() error { return inj.err }

// Run steps the machine until the network drains with no pending injector
// work, a deadlock/stall is detected, or maxCycles elapse. Unlike
// deadlock.Run, an empty network does not end the run while fault events or
// retransmissions are still scheduled.
func (inj *Injector) Run(maxCycles int64) (deadlock.Outcome, error) {
	eng := inj.m.Engine()
	w := deadlock.NewWatchdog(eng, inj.opt.StallThreshold)
	for i := int64(0); i < maxCycles; i++ {
		if inj.err != nil {
			return deadlock.Outcome{Cycle: eng.Cycle()}, inj.err
		}
		if eng.Quiescent() && !inj.Pending() {
			return deadlock.Outcome{Drained: true, Cycle: eng.Cycle()}, nil
		}
		inj.m.Step()
		if w.Stalled() {
			rep := deadlock.Analyze(eng)
			return deadlock.Outcome{Stalled: true, Deadlocked: rep.Deadlocked, Cycle: eng.Cycle(), Report: rep}, nil
		}
	}
	if eng.Quiescent() && !inj.Pending() {
		return deadlock.Outcome{Drained: true, Cycle: eng.Cycle()}, inj.err
	}
	return deadlock.Outcome{Cycle: eng.Cycle()}, inj.err
}
