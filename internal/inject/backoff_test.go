package inject

import (
	"math"
	"testing"
)

// TestBackoffDelayCap pins the capped exponential backoff at and around the
// cap boundary. Before the cap existed, RetryAfter × Backoff^n grew without
// limit and overflowed int64 after ~57 doublings.
func TestBackoffDelayCap(t *testing.T) {
	cases := []struct {
		name       string
		retryAfter int64
		backoff    int
		cap        int64
		attempts   int
		want       int64
	}{
		{"first attempt uncapped", 64, 2, 1 << 16, 0, 64},
		{"second attempt doubles", 64, 2, 1 << 16, 1, 128},
		{"last uncapped step", 64, 2, 1 << 16, 10, 1 << 16}, // 64·2^10 = cap exactly
		{"one past the cap", 64, 2, 1 << 16, 11, 1 << 16},
		{"far past the cap", 64, 2, 1 << 16, 1000, 1 << 16},
		{"would overflow int64", 64, 2, 1 << 16, 64, 1 << 16},
		{"base already over cap", 1 << 20, 2, 1 << 16, 0, 1 << 16},
		{"cap not on the geometric grid", 100, 3, 1000, 3, 1000}, // 100,300,900,2700→cap
		{"under off-grid cap", 100, 3, 1000, 2, 900},
		{"backoff 1 never grows", 64, 1, 1 << 16, 1000, 64},
		{"huge cap, modest attempts", 64, 2, math.MaxInt64, 4, 1024},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := backoffDelay(tc.retryAfter, tc.backoff, tc.cap, tc.attempts)
			if got != tc.want {
				t.Fatalf("backoffDelay(%d, %d, %d, %d) = %d, want %d",
					tc.retryAfter, tc.backoff, tc.cap, tc.attempts, got, tc.want)
			}
			if got > tc.cap {
				t.Fatalf("delay %d exceeds cap %d", got, tc.cap)
			}
		})
	}
}

// TestBackoffDelayNeverOverflows sweeps attempt counts far beyond any real
// schedule and checks monotone, bounded growth (an overflow would show up as
// a negative or shrinking delay).
func TestBackoffDelayNeverOverflows(t *testing.T) {
	const cap = int64(1) << 40
	prev := int64(0)
	for n := 0; n < 500; n++ {
		d := backoffDelay(64, 2, cap, n)
		if d <= 0 || d > cap {
			t.Fatalf("attempts=%d: delay %d outside (0, %d]", n, d, cap)
		}
		if d < prev {
			t.Fatalf("attempts=%d: delay %d shrank from %d", n, d, prev)
		}
		prev = d
	}
	if prev != cap {
		t.Fatalf("sweep never reached the cap: final delay %d", prev)
	}
}
