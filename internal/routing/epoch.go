package routing

import (
	"fmt"

	"sr2201/internal/engine"
	"sr2201/internal/flit"
	"sr2201/internal/geom"
	"sr2201/internal/mdxb"
)

// Generation is one routing-table generation under online reconfiguration:
// the policy (algorithmic or compiled) that packets stamped with epochs in
// [Boundary, nextBoundary) route under, together with the effective S-XB and
// D-XB coordinates it was built with — recorded so a retired generation can
// be reconstructed exactly (via NewPinned) from a checkpoint or for
// transition-safety analysis, independent of later fault substitutions.
type Generation struct {
	// Boundary is the first epoch value this generation serves. Generations
	// are ordered by strictly increasing Boundary; the first is 0.
	Boundary uint64
	// SEff and DEff are the effective serialized and detour crossbar lines
	// the generation was compiled with (dimension 0 ignored).
	SEff, DEff geom.Coord
	// Separate records whether the generation kept the configured separate
	// D-XB (false once a reconfiguration degraded the machine to the
	// unified D-XB = S-XB scheme).
	Separate bool
	// Delegate makes the generation's routing decisions.
	Delegate mdxb.Policy
}

// EpochPolicy dispatches every routing decision to the generation covering
// the packet header's Epoch stamp: in-flight packets keep the table they
// were injected under across a live reconfiguration, while new packets
// (stamped with the latest epoch) route under the freshly committed table.
// The value is immutable; the machine installs a new EpochPolicy at each
// commit and garbage-collection step.
type EpochPolicy struct {
	gens []Generation
}

var _ mdxb.Policy = (*EpochPolicy)(nil)

// NewEpochPolicy validates the generation list (non-empty, first boundary
// zero, strictly increasing boundaries, non-nil delegates).
func NewEpochPolicy(gens []Generation) (*EpochPolicy, error) {
	if len(gens) == 0 {
		return nil, fmt.Errorf("routing: epoch policy needs at least one generation")
	}
	if gens[0].Boundary != 0 {
		return nil, fmt.Errorf("routing: first generation boundary %d, want 0", gens[0].Boundary)
	}
	for i, g := range gens {
		if g.Delegate == nil {
			return nil, fmt.Errorf("routing: generation %d has no delegate policy", i)
		}
		if i > 0 && g.Boundary <= gens[i-1].Boundary {
			return nil, fmt.Errorf("routing: generation boundaries not increasing (%d then %d)", gens[i-1].Boundary, g.Boundary)
		}
	}
	cp := make([]Generation, len(gens))
	copy(cp, gens)
	return &EpochPolicy{gens: cp}, nil
}

// Generations returns the (immutable) generation list, oldest first.
func (ep *EpochPolicy) Generations() []Generation { return ep.gens }

// For returns the generation serving the given epoch stamp: the last whose
// Boundary does not exceed it.
func (ep *EpochPolicy) For(epoch uint64) Generation {
	g := ep.gens[0]
	for _, cand := range ep.gens[1:] {
		if cand.Boundary > epoch {
			break
		}
		g = cand
	}
	return g
}

// RouteRouter implements mdxb.Policy by epoch dispatch.
func (ep *EpochPolicy) RouteRouter(net *mdxb.Network, c geom.Coord, in int, h *flit.Header) (engine.Decision, error) {
	return ep.For(h.Epoch).Delegate.RouteRouter(net, c, in, h)
}

// RouteXB implements mdxb.Policy by epoch dispatch.
func (ep *EpochPolicy) RouteXB(net *mdxb.Network, l geom.Line, in int, h *flit.Header) (engine.Decision, error) {
	return ep.For(h.Epoch).Delegate.RouteXB(net, l, in, h)
}
