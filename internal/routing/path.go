package routing

import (
	"fmt"

	"sr2201/internal/flit"
	"sr2201/internal/geom"
)

// This file provides static path walkers: they replay the exact switch
// decisions of the Policy without running the simulator. They serve three
// purposes: reachability prechecks at the send API (the NIA refusing
// transmission to unreachable PEs), route verification in tests (the
// simulated path must match the static path hop for hop), and the
// figure-level walkthrough tool (cmd/mdxtrace).

// HopKind classifies a path element.
type HopKind uint8

const (
	// HopRouter is a relay switch (RTC).
	HopRouter HopKind = iota
	// HopXB is a crossbar switch.
	HopXB
	// HopPE is the final delivery into a processing element.
	HopPE
)

// String names the hop kind.
func (k HopKind) String() string {
	switch k {
	case HopRouter:
		return "RTC"
	case HopXB:
		return "XB"
	case HopPE:
		return "PE"
	default:
		return fmt.Sprintf("HopKind(%d)", uint8(k))
	}
}

// Hop is one element on a packet's path.
type Hop struct {
	Kind HopKind
	// Coord locates a router or PE hop.
	Coord geom.Coord
	// Line identifies a crossbar hop.
	Line geom.Line
	// RC is the packet's route-change bit on arrival at this element.
	RC flit.RC
	// Out is the output port chosen (-1 at the final PE).
	Out int
}

// String renders the hop, e.g. "RTC(1,2)[detour]->0".
func (h Hop) String() string {
	var where string
	switch h.Kind {
	case HopRouter:
		where = "RTC" + h.Coord.String()
	case HopXB:
		where = fmt.Sprintf("XB%d%s", h.Line.Dim, h.Line.Fixed.String())
	case HopPE:
		return "PE" + h.Coord.String()
	}
	return fmt.Sprintf("%s[%s]->%d", where, h.RC, h.Out)
}

// maxWalkHops bounds path walks against routing-loop bugs.
func (p *Policy) maxWalkHops() int { return 8*p.dims + 16 }

// UnicastPath statically computes the full element path of a point-to-point
// packet from src to dst, including any detour. It returns ErrUnreachable
// (wrapped) when the present faults make delivery impossible, mirroring the
// hardware "stops transmission" behavior.
func (p *Policy) UnicastPath(src, dst geom.Coord) ([]Hop, error) {
	if !p.shape.Contains(src) || !p.shape.Contains(dst) {
		return nil, fmt.Errorf("routing: src %v or dst %v outside shape", src, dst)
	}
	return p.walkHeader(src, &flit.Header{Src: src, Dst: dst, RC: flit.RCNormal})
}

// walkHeader replays the policy decisions for one unicast header injected at
// src, following RC and two-phase transforms, until PE delivery.
func (p *Policy) walkHeader(src geom.Coord, h *flit.Header) ([]Hop, error) {
	if p.faults.RouterFaulty(src) {
		return nil, fmt.Errorf("%w: source router %v faulty", ErrUnreachable, src)
	}
	var hops []Hop
	atRouter := true
	coord := src
	var line geom.Line
	in := p.dims // from PE
	for steps := 0; steps < p.maxWalkHops(); steps++ {
		if atRouter {
			dec, err := p.RouteRouter(nil, coord, in, h)
			if err != nil {
				return hops, err
			}
			if len(dec.Outs) != 1 {
				return hops, fmt.Errorf("routing: unicast fan-out at router %v", coord)
			}
			out := dec.Outs[0]
			hops = append(hops, Hop{Kind: HopRouter, Coord: coord, RC: h.RC, Out: out})
			if dec.Transform != nil {
				h = dec.Transform(h)
			}
			if out == p.dims {
				hops = append(hops, Hop{Kind: HopPE, Coord: coord, RC: h.RC, Out: -1})
				if coord != h.Dst {
					return hops, fmt.Errorf("routing: delivered to %v, wanted %v", coord, h.Dst)
				}
				return hops, nil
			}
			line = geom.LineOf(coord, out)
			in = coord[out]
			atRouter = false
		} else {
			dec, err := p.RouteXB(nil, line, in, h)
			if err != nil {
				return hops, err
			}
			if len(dec.Outs) != 1 {
				return hops, fmt.Errorf("routing: unicast fan-out at crossbar %v", line)
			}
			out := dec.Outs[0]
			hops = append(hops, Hop{Kind: HopXB, Line: line, RC: h.RC, Out: out})
			if dec.Transform != nil {
				h = dec.Transform(h)
			}
			coord = line.Point(out)
			in = line.Dim
			atRouter = true
		}
	}
	return hops, fmt.Errorf("routing: path from %v exceeded %d hops (routing loop?)", src, p.maxWalkHops())
}

// PivotEnabled reports whether the two-phase pivot extension is configured.
func (p *Policy) PivotEnabled() bool { return p.cfg.PivotLastDim }

// PivotIntermediate selects the intermediate router for a two-phase pivot
// send to dst: a healthy router on dst's dim-0 line whose own last-dimension
// crossbar is healthy. It applies only on 2D networks when dst sits behind a
// faulty last-dimension crossbar; ok is false otherwise.
func (p *Policy) PivotIntermediate(src, dst geom.Coord) (geom.Coord, bool) {
	if !p.cfg.PivotLastDim || p.dims != 2 {
		return geom.Coord{}, false
	}
	if !p.faults.XBFaulty(geom.LineOf(dst, 1)) || p.faults.RouterFaulty(dst) {
		return geom.Coord{}, false
	}
	if src[1] == dst[1] {
		return geom.Coord{}, false // plain dim-0 route works already
	}
	// The final leg rides dst's dim-0 crossbar; it must be healthy.
	if p.faults.XBFaulty(geom.LineOf(dst, 0)) {
		return geom.Coord{}, false
	}
	for v := 0; v < p.shape[0]; v++ {
		if v == dst[0] {
			continue
		}
		cand := dst.WithDim(0, v)
		if p.faults.RouterFaulty(cand) || p.faults.XBFaulty(geom.LineOf(cand, 1)) {
			continue
		}
		return cand, true
	}
	return geom.Coord{}, false
}

// PivotPath computes the two-phase route src -> intermediate -> dst, or
// ErrUnreachable when no valid intermediate exists.
func (p *Policy) PivotPath(src, dst geom.Coord) ([]Hop, error) {
	mid, ok := p.PivotIntermediate(src, dst)
	if !ok {
		return nil, fmt.Errorf("%w: no pivot intermediate for %v -> %v", ErrUnreachable, src, dst)
	}
	h := &flit.Header{Src: src, Dst: mid, FinalDst: dst, TwoPhase: true, RC: flit.RCNormal}
	return p.walkHeader(src, h)
}

// Reachable reports whether a point-to-point send from src to dst would be
// delivered under the present faults.
func (p *Policy) Reachable(src, dst geom.Coord) error {
	_, err := p.UnicastPath(src, dst)
	return err
}

// CrossbarHops counts the crossbar traversals on the path (the paper's hop
// metric: "any two PEs communicate with a maximum of d hops").
func CrossbarHops(path []Hop) int {
	n := 0
	for _, h := range path {
		if h.Kind == HopXB {
			n++
		}
	}
	return n
}

// DetourLength counts the hops traveled with RC=detour.
func DetourLength(path []Hop) int {
	n := 0
	for _, h := range path {
		if h.RC == flit.RCDetour {
			n++
		}
	}
	return n
}

// BroadcastResult summarizes the static fan-out tree of one broadcast.
type BroadcastResult struct {
	// Delivered counts copies received per PE coordinate. The correctness
	// invariant is exactly one copy per healthy PE (faulty-router PEs are
	// cut off, and PEs behind a faulty crossbar may be unreachable).
	Delivered map[geom.Coord]int
	// Elements is the total number of switch traversals in the tree.
	Elements int
	// Depth is the longest element chain from the source to any PE.
	Depth int
	// DeadBranches counts fan branches that ended in a routing error
	// (possible only in over-faulted networks).
	DeadBranches int
}

// BroadcastTree statically expands the broadcast of one packet from src:
// through the S-XB in the serialized scheme, or the source-rooted tree in
// naive mode. It returns ErrUnreachable when the source cannot reach the
// serialization point at all.
func (p *Policy) BroadcastTree(src geom.Coord) (BroadcastResult, error) {
	res := BroadcastResult{Delivered: map[geom.Coord]int{}}
	if !p.shape.Contains(src) {
		return res, fmt.Errorf("routing: src %v outside shape", src)
	}
	if p.faults.RouterFaulty(src) {
		return res, fmt.Errorf("%w: source router %v faulty", ErrUnreachable, src)
	}

	rc := flit.RCBroadcastRequest
	if p.cfg.NaiveBroadcast {
		rc = flit.RCBroadcast
	}

	type node struct {
		atRouter bool
		coord    geom.Coord
		line     geom.Line
		in       int
		h        *flit.Header
		depth    int
	}
	queue := []node{{atRouter: true, coord: src, in: p.dims, h: &flit.Header{Src: src, BroadcastOrigin: src, RC: rc}}}
	limit := p.shape.Size()*(p.dims+2)*4 + 64
	first := true
	for len(queue) > 0 {
		if res.Elements > limit {
			return res, fmt.Errorf("routing: broadcast tree from %v exceeded %d elements (routing loop?)", src, limit)
		}
		nd := queue[0]
		queue = queue[1:]
		res.Elements++
		if nd.depth > res.Depth {
			res.Depth = nd.depth
		}
		var outs []int
		var transform func(*flit.Header) *flit.Header
		var err error
		if nd.atRouter {
			var dec, derr = p.RouteRouter(nil, nd.coord, nd.in, nd.h)
			outs, transform, err = dec.Outs, dec.Transform, derr
		} else {
			var dec, derr = p.RouteXB(nil, nd.line, nd.in, nd.h)
			outs, transform, err = dec.Outs, dec.Transform, derr
		}
		if err != nil {
			if first {
				// The request leg itself failed: the broadcast cannot start.
				return res, err
			}
			res.DeadBranches++
			continue
		}
		first = false
		for _, out := range outs {
			h := nd.h
			if transform != nil {
				h = transform(h)
			}
			if nd.atRouter {
				if out == p.dims {
					res.Delivered[nd.coord]++
					continue
				}
				queue = append(queue, node{
					line:  geom.LineOf(nd.coord, out),
					in:    nd.coord[out],
					h:     h,
					depth: nd.depth + 1,
				})
			} else {
				queue = append(queue, node{
					atRouter: true,
					coord:    nd.line.Point(out),
					in:       nd.line.Dim,
					h:        h,
					depth:    nd.depth + 1,
				})
			}
		}
	}
	return res, nil
}
