package routing_test

import (
	"fmt"

	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/routing"
)

// ExamplePolicy_UnicastPath walks the paper's Fig. 8 detour statically.
func ExamplePolicy_UnicastPath() {
	shape := geom.MustShape(4, 3)
	faults := fault.NewSet(shape)
	_ = faults.Add(fault.RouterFault(geom.Coord{2, 0})) // the turn router dies

	p, _ := routing.New(routing.Config{Shape: shape, SXB: geom.Coord{0, 1}, Faults: faults})
	path, _ := p.UnicastPath(geom.Coord{0, 0}, geom.Coord{2, 2})
	for _, h := range path {
		fmt.Println(h)
	}
	// Output:
	// RTC(0,0)[normal]->0
	// XB0(0,0)[normal]->0
	// RTC(0,0)[detour]->1
	// XB1(0,0)[detour]->1
	// RTC(0,1)[detour]->0
	// XB0(0,1)[detour]->2
	// RTC(2,1)[normal]->1
	// XB1(2,0)[normal]->2
	// RTC(2,2)[normal]->2
	// PE(2,2)
}

// ExamplePolicy_BroadcastTree shows the serialized broadcast's coverage.
func ExamplePolicy_BroadcastTree() {
	shape := geom.MustShape(4, 3)
	p, _ := routing.New(routing.Config{Shape: shape})
	tree, _ := p.BroadcastTree(geom.Coord{3, 2})
	fmt.Printf("PEs covered: %d, depth: %d\n", len(tree.Delivered), tree.Depth)
	// Output:
	// PEs covered: 12, depth: 6
}
