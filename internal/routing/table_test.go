package routing

import (
	"errors"
	"testing"

	"sr2201/internal/fault"
	"sr2201/internal/flit"
	"sr2201/internal/geom"
)

// equivalentDecisions compares an algorithmic and a table decision for one
// (switch, input, header) triple.
func equivalentDecisions(t *testing.T, what string, h *flit.Header,
	dA []int, tA func(*flit.Header) *flit.Header, eA error,
	dB []int, tB func(*flit.Header) *flit.Header, eB error) {
	t.Helper()
	if (eA != nil) != (eB != nil) {
		t.Fatalf("%s: error mismatch: %v vs %v", what, eA, eB)
	}
	if eA != nil {
		return
	}
	if len(dA) != len(dB) {
		t.Fatalf("%s: outs %v vs %v", what, dA, dB)
	}
	for i := range dA {
		if dA[i] != dB[i] {
			t.Fatalf("%s: outs %v vs %v", what, dA, dB)
		}
	}
	applied := func(tr func(*flit.Header) *flit.Header) (flit.RC, int) {
		if tr == nil {
			return h.RC, h.DetourHops
		}
		n := tr(h)
		return n.RC, n.DetourHops
	}
	rcA, hopsA := applied(tA)
	rcB, hopsB := applied(tB)
	if rcA != rcB || hopsA != hopsB {
		t.Fatalf("%s: transform mismatch rc %v/%v hops %d/%d", what, rcA, rcB, hopsA, hopsB)
	}
}

// The compiled tables must reproduce every algorithmic decision exactly:
// every switch, every input, every RC class, every destination — across
// fault-free and faulted configurations.
func TestTableEquivalenceExhaustive(t *testing.T) {
	shape := geom.MustShape(4, 3)
	configs := []*Policy{
		mustPolicy(t, Config{Shape: shape}),
		withFaults(t, shape, Config{}, fault.RouterFault(geom.Coord{2, 0})),
		withFaults(t, shape, Config{}, fault.XBFault(geom.Line{Dim: 0, Fixed: geom.Coord{0, 1}})),
		withFaults(t, shape, Config{SXB: geom.Coord{0, 1}, DXB: geom.Coord{0, 2}}, fault.RouterFault(geom.Coord{1, 1})),
		withFaults(t, shape, Config{}, fault.XBFault(geom.Line{Dim: 1, Fixed: geom.Coord{2, 0}})),
	}
	for ci, p := range configs {
		tp, err := Compile(p)
		if err != nil {
			t.Fatalf("config %d: %v", ci, err)
		}
		if tp.Entries() == 0 {
			t.Fatalf("config %d: empty tables", ci)
		}
		d := shape.Dims()
		headers := func(dst geom.Coord) []*flit.Header {
			return []*flit.Header{
				{RC: flit.RCNormal, Dst: dst},
				{RC: flit.RCDetour, Dst: dst},
				{RC: flit.RCBroadcastRequest},
				{RC: flit.RCBroadcast},
			}
		}
		shape.Enumerate(func(c geom.Coord) bool {
			shape.Enumerate(func(dst geom.Coord) bool {
				for _, h := range headers(dst) {
					for in := 0; in <= d; in++ {
						da, err1 := p.RouteRouter(nil, c, in, h)
						db, err2 := tp.RouteRouter(nil, c, in, h)
						equivalentDecisions(t, "router", h, da.Outs, da.Transform, err1, db.Outs, db.Transform, err2)
					}
					for dim := 0; dim < d; dim++ {
						l := geom.LineOf(c, dim)
						for in := 0; in < shape[dim]; in++ {
							da, err1 := p.RouteXB(nil, l, in, h)
							db, err2 := tp.RouteXB(nil, l, in, h)
							equivalentDecisions(t, "crossbar", h, da.Outs, da.Transform, err1, db.Outs, db.Transform, err2)
						}
					}
				}
				return true
			})
			return true
		})
	}
}

func TestCompileRejectsPivot(t *testing.T) {
	p := mustPolicy(t, Config{Shape: geom.MustShape(4, 3), PivotLastDim: true})
	if _, err := Compile(p); err == nil {
		t.Fatal("pivot policy compiled")
	}
}

func TestTableRejectsTwoPhaseHeaders(t *testing.T) {
	p := mustPolicy(t, Config{Shape: geom.MustShape(4, 3)})
	tp, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	h := &flit.Header{TwoPhase: true, Dst: geom.Coord{1, 1}}
	if _, err := tp.RouteRouter(nil, geom.Coord{0, 0}, 2, h); err == nil {
		t.Fatal("two-phase header routed by table")
	}
	bad := &flit.Header{RC: flit.RC(7)}
	if _, err := tp.RouteRouter(nil, geom.Coord{0, 0}, 2, bad); err == nil {
		t.Fatal("unknown RC routed by table")
	}
	if _, err := tp.RouteXB(nil, geom.LineOf(geom.Coord{0, 0}, 0), 0, bad); err == nil {
		t.Fatal("unknown RC routed by table at crossbar")
	}
}

// Unreachable refusals survive compilation (the stored error keeps its
// ErrUnreachable identity).
func TestTablePreservesUnreachable(t *testing.T) {
	shape := geom.MustShape(4, 3)
	p := withFaults(t, shape, Config{}, fault.XBFault(geom.Line{Dim: 1, Fixed: geom.Coord{2, 0}}))
	tp, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	// The turn router for (0,0)->(2,2) refuses: Y-XB col 2 is dead.
	h := &flit.Header{RC: flit.RCNormal, Dst: geom.Coord{2, 2}}
	_, errA := p.RouteRouter(nil, geom.Coord{2, 0}, 0, h)
	_, errB := tp.RouteRouter(nil, geom.Coord{2, 0}, 0, h)
	if !errors.Is(errA, ErrUnreachable) || !errors.Is(errB, ErrUnreachable) {
		t.Fatalf("errors = %v / %v", errA, errB)
	}
}
