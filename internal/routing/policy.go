// Package routing implements the paper's routing schemes for the
// multi-dimensional crossbar network:
//
//   - dimension-order ("X-Y") routing for point-to-point packets (RC=0);
//   - the hardware broadcast facility that serializes broadcasts at the
//     designated S-XB (RC=1 requests, RC=2 fan-out), Section 3.2;
//   - the naive tree broadcast without serialization, reproducing the
//     deadlock of paper Fig. 5;
//   - the hardware detour path selection facility for a single network
//     fault (RC=3), Section 4, with a configurable detour crossbar D-XB;
//   - the paper's deadlock-free combined scheme, Section 5, obtained by
//     configuring D-XB = S-XB.
//
// The Policy consults fault information only about switches adjacent to the
// deciding switch, mirroring the paper's "each switch has only the
// information of the switches that they are physically connected to".
package routing

import (
	"errors"
	"fmt"

	"sr2201/internal/engine"
	"sr2201/internal/fault"
	"sr2201/internal/flit"
	"sr2201/internal/geom"
	"sr2201/internal/mdxb"
)

// ErrUnreachable reports a destination the detour facility cannot serve
// under the present fault (e.g. a destination behind a faulty last-dimension
// crossbar, or a faulty destination router).
var ErrUnreachable = errors.New("routing: destination unreachable under present faults")

// Config parameterizes a Policy.
type Config struct {
	// Shape is the lattice shape of the network.
	Shape geom.Shape
	// SXB gives the fixed coordinates (dimensions 1..d-1) of the serialized
	// crossbar: the dim-0 crossbar through which all broadcasts are replayed.
	// Dimension 0 of the coordinate is ignored.
	SXB geom.Coord
	// DXB gives the fixed coordinates of the detour crossbar. The paper's
	// deadlock-free scheme requires DXB == SXB; setting them apart reproduces
	// the Fig. 9 deadlock.
	DXB geom.Coord
	// Faults is the network's fault set; nil means fault-free.
	Faults *fault.Set
	// NaiveBroadcast disables S-XB serialization: broadcasts fan out directly
	// from the source (paper Fig. 5's deadlock-prone scheme).
	NaiveBroadcast bool
	// PivotLastDim enables the two-phase pivot extension (DESIGN.md A3,
	// beyond the paper, 2D only): destinations behind a faulty
	// last-dimension crossbar are reached by routing to an intermediate
	// router on the destination's dim-0 line first. CAUTION: the pivot's
	// second dimension-0 leg is a Y->X turn away from the serialized
	// crossbar, and the channel dependency graph (internal/cdg) shows it
	// closes real multi-packet cycles with ordinary traffic — the extension
	// trades the paper's deadlock-freedom guarantee for reachability, which
	// is exactly why the paper confines non-dimension-order turns to the
	// S-XB. Experiment A3 documents the trade-off.
	PivotLastDim bool
}

// Policy implements mdxb.Policy with the paper's routing rules.
type Policy struct {
	cfg    Config
	shape  geom.Shape
	dims   int
	faults *fault.Set
	// sEff/dEff are the fixed coordinates of the effective S-XB and D-XB
	// lines after fault substitution ("if the XB connected to the S-XB is
	// faulty, another XB ... substitutes for the S-XB").
	sEff geom.Coord
	dEff geom.Coord
}

var _ mdxb.Policy = (*Policy)(nil)

// New validates the configuration and resolves the effective S-XB and D-XB
// under the configured faults.
func New(cfg Config) (*Policy, error) {
	if cfg.Shape.Dims() < 1 {
		return nil, fmt.Errorf("routing: config needs a shape")
	}
	p := &Policy{cfg: cfg, shape: cfg.Shape, dims: cfg.Shape.Dims(), faults: cfg.Faults}
	if p.faults == nil {
		p.faults = fault.NewSet(cfg.Shape)
	}
	sLine, err := p.normalizeLine(cfg.SXB, "SXB")
	if err != nil {
		return nil, err
	}
	dLine, err := p.normalizeLine(cfg.DXB, "DXB")
	if err != nil {
		return nil, err
	}
	p.sEff = p.substitute(sLine)
	p.dEff = p.substitute(dLine)
	return p, nil
}

// NewPinned builds a Policy whose effective S-XB and D-XB lines are fixed to
// the given coordinates, bypassing fault substitution. The reconfiguration
// layer uses it to reconstruct a *retired* routing generation against the
// live fault set: packets injected under an old table keep steering toward
// that table's effective lines even after a newer fault would have
// substituted them away, and the transition-safety analysis must model
// exactly those routes. Dimension 0 of both coordinates is ignored.
func NewPinned(cfg Config, sEff, dEff geom.Coord) (*Policy, error) {
	if cfg.Shape.Dims() < 1 {
		return nil, fmt.Errorf("routing: config needs a shape")
	}
	p := &Policy{cfg: cfg, shape: cfg.Shape, dims: cfg.Shape.Dims(), faults: cfg.Faults}
	if p.faults == nil {
		p.faults = fault.NewSet(cfg.Shape)
	}
	var err error
	if p.sEff, err = p.normalizeLine(sEff, "SXB"); err != nil {
		return nil, err
	}
	if p.dEff, err = p.normalizeLine(dEff, "DXB"); err != nil {
		return nil, err
	}
	return p, nil
}

// normalizeLine checks that fixed coordinates identify a dim-0 line inside
// the shape and zeroes dimension 0.
func (p *Policy) normalizeLine(fixed geom.Coord, what string) (geom.Coord, error) {
	fixed[0] = 0
	if !p.shape.Contains(fixed) {
		return geom.Coord{}, fmt.Errorf("routing: %s fixed coordinates %v outside shape", what, fixed)
	}
	return fixed, nil
}

// substitute relocates a designated dim-0 line away from faults: if the line
// or any router on it is faulty, the next untouched dim-0 line (scanning the
// reduced lattice cyclically) substitutes for it. With no healthy candidate
// the original is kept (an over-faulted network; the routing will drop).
func (p *Policy) substitute(fixed geom.Coord) geom.Coord {
	l := geom.Line{Dim: 0, Fixed: fixed}
	if !p.faults.LineTouched(l) {
		return fixed
	}
	// Scan all dim-0 lines starting just after the configured one.
	reduced := reducedShape(p.shape, 0)
	count := reduced.Size()
	start := p.shape.LineIndex(l)
	for i := 1; i < count; i++ {
		cand := lineFromReducedIndex(p.shape, 0, (start+i)%count)
		if !p.faults.LineTouched(cand) {
			return cand.Fixed
		}
	}
	return fixed
}

// reducedShape collapses dimension dim out of the shape (the lattice of
// dim-`dim` lines).
func reducedShape(s geom.Shape, dim int) geom.Shape {
	r := make(geom.Shape, 0, s.Dims())
	for i, e := range s {
		if i == dim {
			continue
		}
		r = append(r, e)
	}
	if len(r) == 0 {
		r = geom.Shape{1}
	}
	return r
}

// lineFromReducedIndex inverts geom.Shape.LineIndex.
func lineFromReducedIndex(s geom.Shape, dim, idx int) geom.Line {
	reduced := reducedShape(s, dim)
	rc := reduced.CoordOf(idx)
	var fixed geom.Coord
	j := 0
	for i := 0; i < s.Dims(); i++ {
		if i == dim {
			continue
		}
		fixed[i] = rc[j]
		j++
	}
	return geom.Line{Dim: dim, Fixed: fixed}
}

// EffectiveSXB returns the serialized crossbar line in force (after fault
// substitution).
func (p *Policy) EffectiveSXB() geom.Line { return geom.Line{Dim: 0, Fixed: p.sEff} }

// EffectiveDXB returns the detour crossbar line in force.
func (p *Policy) EffectiveDXB() geom.Line { return geom.Line{Dim: 0, Fixed: p.dEff} }

// onLine reports whether coordinate c lies on the dim-0 line with the given
// fixed coordinates.
func (p *Policy) onLine(c, fixed geom.Coord) bool {
	for j := 1; j < p.dims; j++ {
		if c[j] != fixed[j] {
			return false
		}
	}
	return true
}

// firstFixedDiff returns the lowest dimension >= 1 in which c differs from
// fixed, or -1.
func (p *Policy) firstFixedDiff(c, fixed geom.Coord) int {
	for j := 1; j < p.dims; j++ {
		if c[j] != fixed[j] {
			return j
		}
	}
	return -1
}

// setRC returns a header transform that rewrites the RC bit, bumping the
// detour-hop accounting when entering detour mode.
func setRC(rc flit.RC) func(*flit.Header) *flit.Header {
	return func(h *flit.Header) *flit.Header {
		c := h.Clone()
		c.RC = rc
		return c
	}
}

// bumpDetour returns a transform that keeps RC=detour and counts the hop.
func bumpDetour() func(*flit.Header) *flit.Header {
	return func(h *flit.Header) *flit.Header {
		c := h.Clone()
		c.DetourHops++
		return c
	}
}

// RouteRouter implements mdxb.Policy. See the package comment for the rule
// summary; each case cites the paper section it models.
func (p *Policy) RouteRouter(net *mdxb.Network, c geom.Coord, in int, h *flit.Header) (engine.Decision, error) {
	pePort := p.dims
	switch h.RC {
	case flit.RCNormal:
		return p.routerNormal(c, h)

	case flit.RCBroadcastRequest:
		// Section 3.2 step 1: ride dimensions 1..d-1 (in order) to the S-XB
		// line, then enter the S-XB on port 0.
		if p.onLine(c, p.sEff) {
			if p.faults.XBFaulty(geom.LineOf(c, 0)) {
				// Only possible when substitution had no healthy candidate.
				return engine.Decision{}, fmt.Errorf("%w: serialized crossbar faulty", ErrUnreachable)
			}
			return engine.Decision{Outs: []int{0}}, nil
		}
		j := p.firstFixedDiff(c, p.sEff)
		if p.faults.XBFaulty(geom.LineOf(c, j)) {
			return engine.Decision{}, fmt.Errorf("%w: dim-%d crossbar toward S-XB faulty", ErrUnreachable, j)
		}
		return engine.Decision{Outs: []int{j}}, nil

	case flit.RCBroadcast:
		// Fan rule: a router receiving a broadcast from dimension k forwards
		// to its PE and to every higher-dimension crossbar (Section 3.2
		// steps 2-4, generalized to d dimensions). A naive broadcast
		// arriving from the PE fans to every dimension.
		startDim := 0
		if in < p.dims {
			startDim = in + 1
		} else if !p.cfg.NaiveBroadcast {
			return engine.Decision{}, fmt.Errorf("routing: broadcast packet from PE at %v without naive mode", c)
		}
		outs := []int{pePort}
		for j := startDim; j < p.dims; j++ {
			if p.faults.XBFaulty(geom.LineOf(c, j)) {
				continue // stop transmission toward the faulty crossbar
			}
			outs = append(outs, j)
		}
		return engine.Decision{Outs: outs}, nil

	case flit.RCDetour:
		// Section 4: ride dimensions 1..d-1 (in order) to the D-XB line,
		// then enter the D-XB on port 0, where RC resets to normal.
		if p.onLine(c, p.dEff) {
			if p.faults.XBFaulty(geom.LineOf(c, 0)) {
				return engine.Decision{}, fmt.Errorf("%w: detour crossbar faulty", ErrUnreachable)
			}
			return engine.Decision{Outs: []int{0}, Transform: bumpDetour()}, nil
		}
		j := p.firstFixedDiff(c, p.dEff)
		if p.faults.XBFaulty(geom.LineOf(c, j)) {
			return engine.Decision{}, fmt.Errorf("%w: dim-%d crossbar toward D-XB faulty", ErrUnreachable, j)
		}
		return engine.Decision{Outs: []int{j}, Transform: bumpDetour()}, nil
	}
	return engine.Decision{}, fmt.Errorf("routing: router %v cannot handle RC %v", c, h.RC)
}

// routerNormal is dimension-order routing with the router-side fault checks
// (a router knows which of its own crossbars are faulty).
func (p *Policy) routerNormal(c geom.Coord, h *flit.Header) (engine.Decision, error) {
	pePort := p.dims
	k := c.FirstDiff(h.Dst, p.dims)
	if k == -1 {
		if h.TwoPhase {
			// Pivot extension: this router is the intermediate; rewrite the
			// header for the final leg and route toward the true destination.
			h2 := h.Clone()
			h2.Dst = h.FinalDst
			h2.TwoPhase = false
			dec, err := p.routerNormal(c, h2)
			if err != nil {
				return dec, err
			}
			inner := dec.Transform
			dec.Transform = func(orig *flit.Header) *flit.Header {
				n := orig.Clone()
				n.Dst = orig.FinalDst
				n.TwoPhase = false
				if inner != nil {
					n = inner(n)
				}
				return n
			}
			return dec, nil
		}
		return engine.Decision{Outs: []int{pePort}}, nil
	}
	if !p.faults.XBFaulty(geom.LineOf(c, k)) {
		return engine.Decision{Outs: []int{k}}, nil
	}
	// The crossbar this packet needs next is faulty: enter detour mode if
	// the detour route avoids it, else the destination is unreachable
	// (paper-scope limitation; see DESIGN.md). The router checks only the
	// identity of its own faulty crossbar — the neighbor-bits discipline.
	if p.detourUsesLine(geom.LineOf(c, k), c, h.Dst) {
		return engine.Decision{}, fmt.Errorf("%w: dim-%d crossbar %v faulty and the detour needs it", ErrUnreachable, k, geom.LineOf(c, k))
	}
	// The first detour leg must itself be healthy. Under the paper's
	// single-fault assumption it always is; with additional faults present
	// (beyond the guarantee) this refusal keeps packets out of dead
	// crossbars instead of silently routing into them.
	j := 0
	if !p.onLine(c, p.dEff) {
		j = p.firstFixedDiff(c, p.dEff)
	}
	if p.faults.XBFaulty(geom.LineOf(c, j)) {
		return engine.Decision{}, fmt.Errorf("%w: detour leg dim-%d crossbar %v also faulty", ErrUnreachable, j, geom.LineOf(c, j))
	}
	return engine.Decision{Outs: []int{j}, Transform: setRC(flit.RCDetour)}, nil
}

// detourWalk replays the element sequence of a detour that starts at router
// `start` and resumes dimension order after the D-XB, calling visitRouter on
// every later router and visitLine on every crossbar used. Either callback
// may stop the walk by returning true; detourWalk reports whether one did.
//
// The sequence is: ride dimensions 1..d-1 in increasing order to the D line,
// cross the D-XB (dim 0 to dst[0]), then resume dimension order to dst.
func (p *Policy) detourWalk(start, dst geom.Coord, visitRouter func(geom.Coord) bool, visitLine func(geom.Line) bool) bool {
	pos := start
	step := func(dim, to int) bool {
		if pos[dim] == to {
			return false
		}
		if visitLine != nil && visitLine(geom.LineOf(pos, dim)) {
			return true
		}
		pos[dim] = to
		return visitRouter != nil && visitRouter(pos)
	}
	for j := 1; j < p.dims; j++ {
		if step(j, p.dEff[j]) {
			return true
		}
	}
	// The D-XB crossing happens even when pos[0] == dst[0] (the packet still
	// enters the D-XB to have its RC bit reset; the crossbar may reflect it
	// back to the same router).
	if visitLine != nil && visitLine(geom.LineOf(pos, 0)) {
		return true
	}
	pos[0] = dst[0]
	if visitRouter != nil && visitRouter(pos) {
		return true
	}
	for j := 1; j < p.dims; j++ {
		if step(j, dst[j]) {
			return true
		}
	}
	return false
}

// detourUsesLine reports whether a detour starting at router `start` would
// ride the given (faulty) crossbar.
func (p *Policy) detourUsesLine(bad geom.Line, start, dst geom.Coord) bool {
	return p.detourWalk(start, dst, nil, func(l geom.Line) bool { return l == bad })
}

// detourVisitsRouter reports whether a detour starting at router `start`
// would pass through the given (faulty) router.
func (p *Policy) detourVisitsRouter(bad, start, dst geom.Coord) bool {
	if start == bad {
		return true
	}
	return p.detourWalk(start, dst, func(c geom.Coord) bool { return c == bad }, nil)
}

// RouteXB implements mdxb.Policy for crossbar switches.
func (p *Policy) RouteXB(net *mdxb.Network, l geom.Line, in int, h *flit.Header) (engine.Decision, error) {
	switch h.RC {
	case flit.RCNormal:
		return p.xbNormal(l, h)

	case flit.RCBroadcastRequest:
		if l.Dim == 0 && p.onLine(l.Point(in), p.sEff) {
			// This is the S-XB: serialize (the kernel's output allocation
			// does the one-at-a-time replay) and fan to every attached
			// router, faulty ones excepted (Section 3.2 step 2).
			return engine.Decision{Outs: p.fanPorts(l, -1), Transform: setRC(flit.RCBroadcast)}, nil
		}
		// En route to the S line along a higher dimension.
		if l.Dim == 0 {
			return engine.Decision{}, fmt.Errorf("routing: broadcast request entered non-serialized dim-0 crossbar %v", l)
		}
		return p.xbStep(l, p.sEff[l.Dim], nil)

	case flit.RCBroadcast:
		// Fan to every attached router except the sender and faulty routers
		// (Section 3.2 steps 3-4).
		outs := p.fanPorts(l, in)
		if len(outs) == 0 {
			return engine.Decision{}, fmt.Errorf("%w: broadcast fan at %v has no healthy routers", ErrUnreachable, l)
		}
		return engine.Decision{Outs: outs}, nil

	case flit.RCDetour:
		if l.Dim == 0 {
			// Arrival at the D-XB: reset RC to normal and resume dimension
			// order (Section 4, "the D-XB changes the RC bit from 'detour'
			// to 'normal'").
			if !p.onLine(l.Point(in), p.dEff) {
				return engine.Decision{}, fmt.Errorf("routing: detour packet entered non-detour dim-0 crossbar %v", l)
			}
			target := h.Dst[0]
			if p.faults.RouterFaulty(l.Point(target)) {
				// Substitution keeps faults off the D line; reaching this
				// means the network is over-faulted.
				return engine.Decision{}, fmt.Errorf("%w: router %v on detour crossbar faulty", ErrUnreachable, l.Point(target))
			}
			return engine.Decision{Outs: []int{target}, Transform: setRC(flit.RCNormal)}, nil
		}
		return p.xbStep(l, p.dEff[l.Dim], bumpDetour())
	}
	return engine.Decision{}, fmt.Errorf("routing: crossbar %v cannot handle RC %v", l, h.RC)
}

// xbStep forwards to one port of the crossbar, failing if the attached
// router is faulty.
func (p *Policy) xbStep(l geom.Line, port int, transform func(*flit.Header) *flit.Header) (engine.Decision, error) {
	if p.faults.RouterFaulty(l.Point(port)) {
		return engine.Decision{}, fmt.Errorf("%w: router %v faulty", ErrUnreachable, l.Point(port))
	}
	return engine.Decision{Outs: []int{port}, Transform: transform}, nil
}

// xbNormal is the dimension-order step across a crossbar, with the
// crossbar-side fault handling (a crossbar knows which of its routers are
// faulty): if the exit router is faulty and is not the destination's own
// router, the crossbar sets the RC bit to 'detour' and forwards to the
// designated detour router (Section 4, Fig. 8 step 2).
func (p *Policy) xbNormal(l geom.Line, h *flit.Header) (engine.Decision, error) {
	target := h.Dst[l.Dim]
	exit := l.Point(target)
	if !p.faults.RouterFaulty(exit) {
		return engine.Decision{Outs: []int{target}}, nil
	}
	if exit == h.Dst {
		// "If an RTC is faulty, the network hardware stops transmission of
		// packets to the faulty PE."
		return engine.Decision{}, fmt.Errorf("%w: destination router %v faulty", ErrUnreachable, exit)
	}
	dp, ok := p.faults.DetourPort(l)
	if !ok {
		return engine.Decision{}, fmt.Errorf("%w: no healthy detour router on %v", ErrUnreachable, l)
	}
	// Would the detour — riding from the designated detour router to the D
	// line, across the D-XB, and back down dimension order — pass through
	// this faulty router again? The crossbar checks only its own neighbor's
	// coordinate: the neighbor-bits discipline.
	if p.detourVisitsRouter(exit, l.Point(dp), h.Dst) {
		return engine.Decision{}, fmt.Errorf("%w: router %v faulty and the detour re-enters it", ErrUnreachable, exit)
	}
	return engine.Decision{Outs: []int{dp}, Transform: setRC(flit.RCDetour)}, nil
}

// fanPorts lists the crossbar ports whose routers are healthy, excluding
// port `except` (pass -1 to include all).
func (p *Policy) fanPorts(l geom.Line, except int) []int {
	n := p.shape[l.Dim]
	outs := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if v == except {
			continue
		}
		if p.faults.RouterFaulty(l.Point(v)) {
			continue
		}
		outs = append(outs, v)
	}
	return outs
}
