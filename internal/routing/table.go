package routing

import (
	"fmt"

	"sr2201/internal/engine"
	"sr2201/internal/flit"
	"sr2201/internal/geom"
	"sr2201/internal/mdxb"
)

// TablePolicy is a compiled, lookup-table implementation of a routing
// Policy — the way such routing is realized in hardware (compare the CRAY
// T3D's "routing tag look-up table" the paper discusses): every decision a
// switch can face is precomputed into dense tables indexed by the packet's
// RC class, destination and input port. Compile verifies nothing at
// runtime; the tables replay exactly what the algorithmic policy decided at
// compile time, including RC-bit transitions and refusals.
//
// The two-phase pivot extension is not table-compilable (its decisions
// depend on two addresses) and is rejected by Compile — a faithful
// restriction: the hardware had no such header bits either.
type TablePolicy struct {
	shape  geom.Shape
	dims   int
	netCap int // number of PEs / destination indices

	// routers[idx] holds the per-router tables.
	routers []routerTable
	// xbs[dim][lineIdx] holds the per-crossbar tables.
	xbs [][]xbTable
}

var _ mdxb.Policy = (*TablePolicy)(nil)

// entry is one precomputed decision.
type entry struct {
	outs []int
	// rcTo >= 0 rewrites the RC bit on forwarded copies; bump increments the
	// detour hop counter.
	rcTo int8
	bump bool
	err  error
}

func (e entry) decision() (engine.Decision, error) {
	if e.err != nil {
		return engine.Decision{}, e.err
	}
	d := engine.Decision{Outs: e.outs}
	if e.rcTo >= 0 || e.bump {
		rcTo, bump := e.rcTo, e.bump
		d.Transform = func(h *flit.Header) *flit.Header {
			n := h.Clone()
			if rcTo >= 0 {
				n.RC = flit.RC(rcTo)
			}
			if bump {
				n.DetourHops++
			}
			return n
		}
	}
	return d, nil
}

type routerTable struct {
	// normal[dstIdx] and detour (destination-independent), request
	// (destination-independent), bcast[in].
	normal  []entry
	detour  entry
	request entry
	bcast   []entry
}

type xbTable struct {
	// normal[dstIdx], detour[dstIdx] (the D-XB resets and routes by dst),
	// request (destination-independent), bcast[in].
	normal  []entry
	detour  []entry
	request entry
	bcast   []entry
}

// compileEntry captures one policy decision as a table entry, classifying
// its transform by probing it.
func compileEntry(dec engine.Decision, err error, probe *flit.Header) entry {
	if err != nil {
		return entry{err: err}
	}
	e := entry{outs: dec.Outs, rcTo: -1}
	if dec.Transform != nil {
		out := dec.Transform(probe)
		if out.RC != probe.RC {
			e.rcTo = int8(out.RC)
		}
		if out.DetourHops != probe.DetourHops {
			e.bump = true
		}
	}
	return e
}

// Compile builds the lookup tables for every switch decision of p.
func Compile(p *Policy) (*TablePolicy, error) {
	if p.PivotEnabled() {
		return nil, fmt.Errorf("routing: the pivot extension is not table-compilable")
	}
	shape := p.shape
	d := p.dims
	n := shape.Size()
	tp := &TablePolicy{shape: shape, dims: d, netCap: n}

	// Router tables.
	tp.routers = make([]routerTable, n)
	for idx := 0; idx < n; idx++ {
		c := shape.CoordOf(idx)
		rt := routerTable{
			normal: make([]entry, n),
			bcast:  make([]entry, d+1),
		}
		for di := 0; di < n; di++ {
			h := &flit.Header{RC: flit.RCNormal, Dst: shape.CoordOf(di)}
			dec, err := p.RouteRouter(nil, c, d, h)
			rt.normal[di] = compileEntry(dec, err, h)
		}
		{
			h := &flit.Header{RC: flit.RCDetour}
			dec, err := p.RouteRouter(nil, c, 0, h)
			rt.detour = compileEntry(dec, err, h)
		}
		{
			h := &flit.Header{RC: flit.RCBroadcastRequest}
			dec, err := p.RouteRouter(nil, c, d, h)
			rt.request = compileEntry(dec, err, h)
		}
		for in := 0; in <= d; in++ {
			h := &flit.Header{RC: flit.RCBroadcast}
			dec, err := p.RouteRouter(nil, c, in, h)
			rt.bcast[in] = compileEntry(dec, err, h)
		}
		tp.routers[idx] = rt
	}

	// Crossbar tables.
	tp.xbs = make([][]xbTable, d)
	for dim := 0; dim < d; dim++ {
		lines := shape.LinesAlong(dim)
		tp.xbs[dim] = make([]xbTable, len(lines))
		for _, l := range lines {
			ports := shape[dim]
			xt := xbTable{
				normal: make([]entry, n),
				detour: make([]entry, n),
				bcast:  make([]entry, ports),
			}
			for di := 0; di < n; di++ {
				hN := &flit.Header{RC: flit.RCNormal, Dst: shape.CoordOf(di)}
				dec, err := p.RouteXB(nil, l, 0, hN)
				xt.normal[di] = compileEntry(dec, err, hN)
				hD := &flit.Header{RC: flit.RCDetour, Dst: shape.CoordOf(di)}
				dec, err = p.RouteXB(nil, l, 0, hD)
				xt.detour[di] = compileEntry(dec, err, hD)
			}
			{
				h := &flit.Header{RC: flit.RCBroadcastRequest}
				dec, err := p.RouteXB(nil, l, 0, h)
				xt.request = compileEntry(dec, err, h)
			}
			for in := 0; in < ports; in++ {
				h := &flit.Header{RC: flit.RCBroadcast}
				dec, err := p.RouteXB(nil, l, in, h)
				xt.bcast[in] = compileEntry(dec, err, h)
			}
			tp.xbs[dim][shape.LineIndex(l)] = xt
		}
	}
	return tp, nil
}

// RouteRouter implements mdxb.Policy by table lookup.
func (tp *TablePolicy) RouteRouter(net *mdxb.Network, c geom.Coord, in int, h *flit.Header) (engine.Decision, error) {
	if h.TwoPhase {
		return engine.Decision{}, fmt.Errorf("routing: table policy cannot route two-phase headers")
	}
	rt := &tp.routers[tp.shape.Index(c)]
	switch h.RC {
	case flit.RCNormal:
		return rt.normal[tp.shape.Index(h.Dst)].decision()
	case flit.RCDetour:
		return rt.detour.decision()
	case flit.RCBroadcastRequest:
		return rt.request.decision()
	case flit.RCBroadcast:
		return rt.bcast[in].decision()
	}
	return engine.Decision{}, fmt.Errorf("routing: table policy cannot handle RC %v", h.RC)
}

// RouteXB implements mdxb.Policy by table lookup.
func (tp *TablePolicy) RouteXB(net *mdxb.Network, l geom.Line, in int, h *flit.Header) (engine.Decision, error) {
	xt := &tp.xbs[l.Dim][tp.shape.LineIndex(l)]
	switch h.RC {
	case flit.RCNormal:
		return xt.normal[tp.shape.Index(h.Dst)].decision()
	case flit.RCDetour:
		return xt.detour[tp.shape.Index(h.Dst)].decision()
	case flit.RCBroadcastRequest:
		return xt.request.decision()
	case flit.RCBroadcast:
		return xt.bcast[in].decision()
	}
	return engine.Decision{}, fmt.Errorf("routing: table policy cannot handle RC %v", h.RC)
}

// Entries reports the total number of table entries — the "routing table
// size" hardware cost the paper's minimal-information design avoids.
func (tp *TablePolicy) Entries() int {
	total := 0
	for _, rt := range tp.routers {
		total += len(rt.normal) + len(rt.bcast) + 2
	}
	for _, xs := range tp.xbs {
		for _, xt := range xs {
			total += len(xt.normal) + len(xt.detour) + len(xt.bcast) + 1
		}
	}
	return total
}
