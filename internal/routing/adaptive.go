// Escape-VC adaptive routing: the classic alternative to the paper's static
// one-detour scheme. The network is built with V >= 2 virtual channels per
// router↔crossbar wire (mdxb.BuildVC); lane 0 is the escape channel running
// the paper's unified deadlock-free policy (D-XB = S-XB) unchanged, and lanes
// 1..V-1 are adaptive: a normal packet may take any minimal productive hop —
// any dimension in which it has not yet reached its destination coordinate —
// on any free adaptive lane.
//
// Deadlock freedom is the standard escape-channel argument (Duato): adaptive
// decisions are Provisional, so a packet that fails to win its adaptive lane
// is re-routed every cycle and, when no adaptive lane is available, commits
// to the escape channel. A packet that arrives at a router on lane 0 is
// captured: it stays on the escape channel until delivery. The escape
// subnetwork therefore carries exactly the unified policy's channel
// dependences — certified acyclic by the CDG prover (internal/topo/escape) —
// and every blocked packet eventually requests it, so the escape drains any
// cyclic wait the adaptive lanes can build. Liveness of re-routing follows
// from the preserved arrival stamp: the oldest packet in the network wins
// every arbitration it enters and always advances.
package routing

import (
	"fmt"

	"sr2201/internal/engine"
	"sr2201/internal/flit"
	"sr2201/internal/geom"
	"sr2201/internal/mdxb"
)

// VCPolicy implements mdxb.Policy for a network built with virtual channels:
// escape-VC adaptive routing over an embedded escape Policy. The escape
// policy must be the unified scheme (D-XB = S-XB) and must not use the pivot
// extension or naive broadcast — each would add escape-channel dependences
// outside the certified set.
type VCPolicy struct {
	escape *Policy
	vcs    int
}

var _ mdxb.Policy = (*VCPolicy)(nil)

// NewVC wraps the escape policy for a network with vcs virtual channels.
func NewVC(escape *Policy, vcs int) (*VCPolicy, error) {
	if escape == nil {
		return nil, fmt.Errorf("routing: adaptive routing needs an escape policy")
	}
	if vcs < 2 {
		return nil, fmt.Errorf("routing: adaptive routing needs >= 2 virtual channels, got %d", vcs)
	}
	if escape.sEff != escape.dEff {
		return nil, fmt.Errorf("routing: adaptive escape channel requires D-XB = S-XB (the unified deadlock-free scheme)")
	}
	if escape.cfg.PivotLastDim {
		return nil, fmt.Errorf("routing: adaptive escape channel cannot use the pivot extension (its turns break escape acyclicity)")
	}
	if escape.cfg.NaiveBroadcast {
		return nil, fmt.Errorf("routing: adaptive escape channel cannot use naive broadcast (its fan cycles break escape acyclicity)")
	}
	return &VCPolicy{escape: escape, vcs: vcs}, nil
}

// Escape returns the embedded escape policy (used for reachability and
// broadcast-tree queries, which follow the escape paths).
func (p *VCPolicy) Escape() *Policy { return p.escape }

// VCs reports the virtual-channel count the policy was built for.
func (p *VCPolicy) VCs() int { return p.vcs }

// bumpAdaptive counts one hop taken on a non-escape lane.
func bumpAdaptive() func(*flit.Header) *flit.Header {
	return func(h *flit.Header) *flit.Header {
		c := h.Clone()
		c.AdaptiveHops++
		return c
	}
}

// scaleOuts maps the escape policy's logical output ports (one per wire) to
// lane 0 of the corresponding physical ports. logicalPE is the escape
// policy's PE port number on this switch class, or -1 when the switch has
// none (crossbars).
func (p *VCPolicy) scaleOuts(dec engine.Decision, logicalPE, physPE int) engine.Decision {
	outs := make([]int, len(dec.Outs))
	for i, o := range dec.Outs {
		if o == logicalPE && logicalPE >= 0 {
			outs[i] = physPE
		} else {
			outs[i] = o * p.vcs
		}
	}
	dec.Outs = outs
	return dec
}

// RouteRouter implements mdxb.Policy. in is a physical port index of the
// lane-scaled router (see the mdxb port conventions).
func (p *VCPolicy) RouteRouter(net *mdxb.Network, c geom.Coord, in int, h *flit.Header) (engine.Decision, error) {
	d := p.escape.dims
	physPE := d * p.vcs
	logicalIn, inLane := d, 0 // PE arrival
	if in < physPE {
		logicalIn, inLane = in/p.vcs, in%p.vcs
	}

	// Special-mode packets (broadcast request/fan, detour) and captured
	// packets — normal packets that arrived on the escape lane of a crossbar
	// wire — belong to the escape channel until delivery.
	escapeBound := h.RC != flit.RCNormal || h.TwoPhase || (in < physPE && inLane == 0)
	if !escapeBound {
		if dec, ok := p.adaptiveHop(net, c, h); ok {
			return dec, nil
		}
	}
	dec, err := p.escape.RouteRouter(net, c, logicalIn, h)
	if err != nil {
		return dec, err
	}
	return p.scaleOuts(dec, d, physPE), nil
}

// adaptiveHop picks a minimal productive hop on a free adaptive lane, or
// reports ok=false to commit the packet to the escape channel. The choice
// reads only node-local, phase-stable state (output-port ownership), so it is
// identical at any shard count and in both scheduler modes; candidates are
// scanned dimension-ascending, lane-ascending for determinism.
func (p *VCPolicy) adaptiveHop(net *mdxb.Network, c geom.Coord, h *flit.Header) (engine.Decision, bool) {
	rtc := net.Router(c)
	for k := 0; k < p.escape.dims; k++ {
		if c[k] == h.Dst[k] {
			continue // not productive
		}
		if p.escape.faults.XBFaulty(geom.LineOf(c, k)) {
			continue // the escape's detour machinery handles the fault
		}
		exit := c
		exit[k] = h.Dst[k]
		if p.escape.faults.RouterFaulty(exit) {
			continue
		}
		for v := 1; v < p.vcs; v++ {
			port := k*p.vcs + v
			if rtc.Out[port].Owned() {
				continue
			}
			return engine.Decision{
				Outs:        []int{port},
				Transform:   bumpAdaptive(),
				Provisional: true,
			}, true
		}
	}
	return engine.Decision{}, false
}

// RouteXB implements mdxb.Policy. A packet on the escape lane follows the
// escape policy; a packet on an adaptive lane crosses the bar on the same
// lane to its destination's point — non-provisionally, since a crossbar has
// exactly one productive exit. No packet enters the escape lane at a
// crossbar, so the escape channel's internal dependences stay exactly the
// certified unified set.
func (p *VCPolicy) RouteXB(net *mdxb.Network, l geom.Line, in int, h *flit.Header) (engine.Decision, error) {
	point, lane := in/p.vcs, in%p.vcs
	if lane == 0 {
		dec, err := p.escape.RouteXB(net, l, point, h)
		if err != nil {
			return dec, err
		}
		return p.scaleOuts(dec, -1, -1), nil
	}
	if h.RC != flit.RCNormal {
		return engine.Decision{}, fmt.Errorf("routing: %v packet on adaptive lane %d of crossbar %v", h.RC, lane, l)
	}
	target := h.Dst[l.Dim]
	exit := l.Point(target)
	if p.escape.faults.RouterFaulty(exit) {
		// The router-side check keeps packets away from faulty exits; hitting
		// one here means the fault landed after the packet entered the bar.
		// Drop and let retransmission recover — detouring is escape-only.
		return engine.Decision{}, fmt.Errorf("%w: exit router %v faulty (adaptive lane)", ErrUnreachable, exit)
	}
	return engine.Decision{Outs: []int{target*p.vcs + lane}}, nil
}
