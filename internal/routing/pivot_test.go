package routing

import (
	"errors"
	"testing"

	"sr2201/internal/fault"
	"sr2201/internal/flit"
	"sr2201/internal/geom"
)

// pivotPolicy builds a 2D policy with the pivot extension and a faulty
// last-dimension crossbar at column 2.
func pivotPolicy(t *testing.T) (*Policy, geom.Shape, geom.Line) {
	t.Helper()
	shape := geom.MustShape(4, 3)
	badLine := geom.Line{Dim: 1, Fixed: geom.Coord{2, 0}}
	p := withFaults(t, shape, Config{PivotLastDim: true}, fault.XBFault(badLine))
	return p, shape, badLine
}

func TestPivotRestoresReachability(t *testing.T) {
	p, shape, badLine := pivotPolicy(t)
	shape.Enumerate(func(src geom.Coord) bool {
		shape.Enumerate(func(dst geom.Coord) bool {
			_, uniErr := p.UnicastPath(src, dst)
			if uniErr == nil {
				return true
			}
			// Every pair the base facility cannot serve must be covered by
			// the pivot.
			path, err := p.PivotPath(src, dst)
			if err != nil {
				t.Fatalf("%v->%v: base unreachable (%v) and pivot failed: %v", src, dst, uniErr, err)
			}
			// The path must avoid the faulty crossbar and end at dst.
			for _, h := range path {
				if h.Kind == HopXB && h.Line == badLine {
					t.Fatalf("%v->%v: pivot rides the faulty crossbar: %v", src, dst, path)
				}
			}
			if last := path[len(path)-1]; last.Kind != HopPE || last.Coord != dst {
				t.Fatalf("%v->%v: pivot delivered to %v", src, dst, path[len(path)-1])
			}
			return true
		})
		return true
	})
}

func TestPivotPathShape(t *testing.T) {
	p, _, _ := pivotPolicy(t)
	// (0,0) -> (2,2): blocked by faulty Y-XB col 2; pivot via (v,2), v != 2.
	mid, ok := p.PivotIntermediate(geom.Coord{0, 0}, geom.Coord{2, 2})
	if !ok {
		t.Fatal("no intermediate")
	}
	if mid[1] != 2 || mid[0] == 2 {
		t.Fatalf("intermediate = %v", mid)
	}
	path, err := p.PivotPath(geom.Coord{0, 0}, geom.Coord{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Crossbar sequence: an optional dim-0 leg, a dim-1 leg down the pivot
	// column, and the final dim-0 leg into the faulty column. Here the
	// intermediate shares the source's column, so the first leg vanishes.
	var dims []int
	for _, h := range path {
		if h.Kind == HopXB {
			dims = append(dims, h.Line.Dim)
		}
	}
	if len(dims) < 2 || dims[len(dims)-1] != 0 || dims[len(dims)-2] != 1 {
		t.Fatalf("crossbar dims = %v, want [... 1 0]", dims)
	}
	// The final crossbar hop exits at the faulty column — the CDG sink
	// property the deadlock-freedom argument rests on.
	lastXB := path[len(path)-3]
	if lastXB.Kind != HopXB || lastXB.Out != 2 {
		t.Errorf("final crossbar hop = %v", lastXB)
	}
}

func TestPivotInapplicableCases(t *testing.T) {
	p, _, _ := pivotPolicy(t)
	// Same-row destinations never need the pivot.
	if _, ok := p.PivotIntermediate(geom.Coord{0, 1}, geom.Coord{2, 1}); ok {
		t.Error("pivot offered for a same-row pair")
	}
	// Healthy-column destinations never need it.
	if _, ok := p.PivotIntermediate(geom.Coord{0, 0}, geom.Coord{1, 2}); ok {
		t.Error("pivot offered for a healthy column")
	}
	// Without the config flag nothing is offered.
	shape := geom.MustShape(4, 3)
	p2 := withFaults(t, shape, Config{}, fault.XBFault(geom.Line{Dim: 1, Fixed: geom.Coord{2, 0}}))
	if p2.PivotEnabled() {
		t.Error("pivot enabled without config")
	}
	if _, err := p2.PivotPath(geom.Coord{0, 0}, geom.Coord{2, 2}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("pivot path without config: %v", err)
	}
	// 3D networks: extension is 2D-only.
	shape3 := geom.MustShape(3, 3, 2)
	p3 := withFaults(t, shape3, Config{PivotLastDim: true}, fault.XBFault(geom.Line{Dim: 2, Fixed: geom.Coord{1, 1, 0}}))
	if _, ok := p3.PivotIntermediate(geom.Coord{0, 0, 0}, geom.Coord{1, 1, 1}); ok {
		t.Error("pivot offered on a 3D network")
	}
}

func TestPivotHeaderTransforms(t *testing.T) {
	p, _, _ := pivotPolicy(t)
	// At the intermediate router the decision must rewrite Dst/TwoPhase on
	// the forwarded header.
	mid, _ := p.PivotIntermediate(geom.Coord{0, 0}, geom.Coord{2, 2})
	h := &flit.Header{Src: geom.Coord{0, 0}, Dst: mid, FinalDst: geom.Coord{2, 2}, TwoPhase: true}
	dec, err := p.RouteRouter(nil, mid, 1, h)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Outs) != 1 || dec.Outs[0] != 0 {
		t.Fatalf("intermediate decision = %+v (want dim-0 port)", dec)
	}
	if dec.Transform == nil {
		t.Fatal("no phase-switch transform")
	}
	n := dec.Transform(h)
	if n.TwoPhase || n.Dst != (geom.Coord{2, 2}) {
		t.Errorf("transformed header = %+v", n)
	}
	if h.TwoPhase != true {
		t.Error("transform mutated the original header")
	}
}

func TestPivotWhenIntermediateIsDestinationRow(t *testing.T) {
	// src and dst differ only in dim 1 with dst's column crossbar faulty:
	// the pivot goes to (v, dstY) then one dim-0 hop back to dst's column.
	p, _, _ := pivotPolicy(t)
	path, err := p.PivotPath(geom.Coord{2, 0}, geom.Coord{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if last := path[len(path)-1]; last.Coord != (geom.Coord{2, 2}) {
		t.Fatalf("delivered to %v", last.Coord)
	}
}
