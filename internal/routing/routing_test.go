package routing

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"sr2201/internal/fault"
	"sr2201/internal/flit"
	"sr2201/internal/geom"
)

func mustPolicy(t *testing.T, cfg Config) *Policy {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return p
}

func policy43(t *testing.T) *Policy {
	return mustPolicy(t, Config{Shape: geom.MustShape(4, 3)})
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := New(Config{Shape: geom.MustShape(4, 3), SXB: geom.Coord{0, 5}}); err == nil {
		t.Error("out-of-shape SXB accepted")
	}
	if _, err := New(Config{Shape: geom.MustShape(4, 3), DXB: geom.Coord{0, -1}}); err == nil {
		t.Error("out-of-shape DXB accepted")
	}
	// Dimension 0 of the fixed coordinates is ignored.
	p := mustPolicy(t, Config{Shape: geom.MustShape(4, 3), SXB: geom.Coord{3, 1}})
	if p.EffectiveSXB().Fixed != (geom.Coord{0, 1}) {
		t.Errorf("SXB fixed = %v", p.EffectiveSXB().Fixed)
	}
}

func TestUnicastPathShape(t *testing.T) {
	p := policy43(t)
	// Distance-2 route (1,0) -> (2,2): RTC -> XB0 -> RTC -> XB1 -> RTC -> PE.
	path, err := p.UnicastPath(geom.Coord{1, 0}, geom.Coord{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []HopKind{HopRouter, HopXB, HopRouter, HopXB, HopRouter, HopPE}
	if len(path) != len(wantKinds) {
		t.Fatalf("path = %v", path)
	}
	for i, k := range wantKinds {
		if path[i].Kind != k {
			t.Errorf("hop %d kind = %v, want %v", i, path[i].Kind, k)
		}
		if path[i].RC != flit.RCNormal {
			t.Errorf("hop %d RC = %v", i, path[i].RC)
		}
	}
	// Dimension order: first crossbar is dim 0, second is dim 1.
	if path[1].Line.Dim != 0 || path[3].Line.Dim != 1 {
		t.Errorf("crossbar dims = %d,%d", path[1].Line.Dim, path[3].Line.Dim)
	}
	// The turn router is at (dst0, src1).
	if path[2].Coord != (geom.Coord{2, 0}) {
		t.Errorf("turn router = %v", path[2].Coord)
	}
	if path[5].Coord != (geom.Coord{2, 2}) {
		t.Errorf("delivered at %v", path[5].Coord)
	}
}

func TestUnicastSelfAndOneHop(t *testing.T) {
	p := policy43(t)
	// Self-send: router delivers straight back to the PE, no crossbars.
	path, err := p.UnicastPath(geom.Coord{1, 1}, geom.Coord{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if CrossbarHops(path) != 0 || path[len(path)-1].Kind != HopPE {
		t.Errorf("self path = %v", path)
	}
	// Same dim-0 line: exactly one crossbar ("communicate in only one hop").
	path, err = p.UnicastPath(geom.Coord{1, 1}, geom.Coord{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if CrossbarHops(path) != 1 {
		t.Errorf("one-hop path = %v", path)
	}
}

// The paper's §3.1 claim: any two PEs communicate with at most d crossbar
// hops, and dimension-order uses exactly Distance(src,dst) hops.
func TestUnicastHopsEqualDistanceEverywhere(t *testing.T) {
	for _, shape := range []geom.Shape{geom.MustShape(4, 3), geom.MustShape(7), geom.MustShape(3, 2, 4)} {
		p := mustPolicy(t, Config{Shape: shape})
		shape.Enumerate(func(src geom.Coord) bool {
			shape.Enumerate(func(dst geom.Coord) bool {
				path, err := p.UnicastPath(src, dst)
				if err != nil {
					t.Fatalf("%v->%v: %v", src, dst, err)
				}
				if got, want := CrossbarHops(path), src.Distance(dst); got != want {
					t.Fatalf("%v->%v: %d crossbar hops, want %d", src, dst, got, want)
				}
				if path[len(path)-1].Coord != dst {
					t.Fatalf("%v->%v: delivered at %v", src, dst, path[len(path)-1].Coord)
				}
				return true
			})
			return true
		})
	}
}

// Dimension-order invariant: crossbar dimensions along any fault-free path
// are strictly increasing.
func TestQuickDimensionOrder(t *testing.T) {
	shape := geom.MustShape(5, 4, 3)
	p := mustPolicy(t, Config{Shape: shape})
	f := func(a, b uint32) bool {
		src := shape.CoordOf(int(a) % shape.Size())
		dst := shape.CoordOf(int(b) % shape.Size())
		path, err := p.UnicastPath(src, dst)
		if err != nil {
			return false
		}
		prev := -1
		for _, h := range path {
			if h.Kind != HopXB {
				continue
			}
			if h.Line.Dim <= prev {
				return false
			}
			prev = h.Line.Dim
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBroadcastTreeCoversAllExactlyOnce(t *testing.T) {
	for _, shape := range []geom.Shape{geom.MustShape(4, 3), geom.MustShape(5), geom.MustShape(3, 3, 2), geom.MustShape(2, 2, 2, 2)} {
		p := mustPolicy(t, Config{Shape: shape, SXB: geom.Coord{}})
		shape.Enumerate(func(src geom.Coord) bool {
			res, err := p.BroadcastTree(src)
			if err != nil {
				t.Fatalf("shape %v src %v: %v", shape, src, err)
			}
			if len(res.Delivered) != shape.Size() {
				t.Fatalf("shape %v src %v: delivered to %d PEs, want %d", shape, src, len(res.Delivered), shape.Size())
			}
			for c, n := range res.Delivered {
				if n != 1 {
					t.Fatalf("shape %v src %v: PE %v got %d copies", shape, src, c, n)
				}
			}
			if res.DeadBranches != 0 {
				t.Errorf("shape %v src %v: %d dead branches", shape, src, res.DeadBranches)
			}
			return true
		})
	}
}

func TestNaiveBroadcastTreeCoversAll(t *testing.T) {
	shape := geom.MustShape(4, 3)
	p := mustPolicy(t, Config{Shape: shape, NaiveBroadcast: true})
	res, err := p.BroadcastTree(geom.Coord{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Delivered) != 12 {
		t.Fatalf("delivered to %d PEs", len(res.Delivered))
	}
	for c, n := range res.Delivered {
		if n != 1 {
			t.Errorf("PE %v got %d copies", c, n)
		}
	}
}

// Paper §3.2: the serialized broadcast is Y-X-Y — the request leg rides only
// higher-dimension crossbars, crosses exactly one dim-0 crossbar (the S-XB),
// and fans back out through higher dimensions.
func TestBroadcastIsYXY(t *testing.T) {
	shape := geom.MustShape(4, 3)
	p := mustPolicy(t, Config{Shape: shape, SXB: geom.Coord{0, 1}})
	// Walk the request leg statically with UnicastPath-like stepping: use the
	// policy decisions directly from the source.
	h := &flit.Header{Src: geom.Coord{3, 2}, RC: flit.RCBroadcastRequest}
	dec, err := p.RouteRouter(nil, geom.Coord{3, 2}, 2, h)
	if err != nil || len(dec.Outs) != 1 || dec.Outs[0] != 1 {
		t.Fatalf("request first hop = %+v, %v (want Y port 1)", dec, err)
	}
	// At the Y crossbar the request heads to the S row.
	dec, err = p.RouteXB(nil, geom.LineOf(geom.Coord{3, 2}, 1), 2, h)
	if err != nil || len(dec.Outs) != 1 || dec.Outs[0] != 1 {
		t.Fatalf("request Y step = %+v, %v (want port 1 = S row)", dec, err)
	}
	// At the router on the S line it enters the S-XB (port 0).
	dec, err = p.RouteRouter(nil, geom.Coord{3, 1}, 1, h)
	if err != nil || len(dec.Outs) != 1 || dec.Outs[0] != 0 {
		t.Fatalf("request S-line hop = %+v, %v (want X port 0)", dec, err)
	}
	// The S-XB fans to all four routers and flips RC to broadcast.
	dec, err = p.RouteXB(nil, p.EffectiveSXB(), 3, h)
	if err != nil || len(dec.Outs) != 4 {
		t.Fatalf("S-XB fan = %+v, %v", dec, err)
	}
	if dec.Transform == nil {
		t.Fatal("S-XB fan has no RC transform")
	}
	if got := dec.Transform(h).RC; got != flit.RCBroadcast {
		t.Errorf("S-XB transform RC = %v", got)
	}
	// A router on the S line fans to PE and its dim-1 crossbar.
	h2 := &flit.Header{RC: flit.RCBroadcast}
	dec, err = p.RouteRouter(nil, geom.Coord{0, 1}, 0, h2)
	if err != nil || len(dec.Outs) != 2 {
		t.Fatalf("S-line router fan = %+v, %v", dec, err)
	}
	// A dim-1 crossbar fans to every router except the sender.
	dec, err = p.RouteXB(nil, geom.LineOf(geom.Coord{0, 1}, 1), 1, h2)
	if err != nil || len(dec.Outs) != 2 {
		t.Fatalf("Y-XB fan = %+v, %v", dec, err)
	}
	for _, o := range dec.Outs {
		if o == 1 {
			t.Error("Y-XB fan includes the sending row")
		}
	}
	// A router off the S line receiving from dim 1 delivers to its PE only.
	dec, err = p.RouteRouter(nil, geom.Coord{0, 2}, 1, h2)
	if err != nil || len(dec.Outs) != 1 || dec.Outs[0] != 2 {
		t.Fatalf("leaf router fan = %+v, %v", dec, err)
	}
}

// --- Fault scenarios ---

func withFaults(t *testing.T, shape geom.Shape, cfg Config, fs ...fault.Fault) *Policy {
	t.Helper()
	set := fault.NewSet(shape)
	for _, f := range fs {
		if err := set.Add(f); err != nil {
			t.Fatal(err)
		}
	}
	cfg.Shape = shape
	cfg.Faults = set
	return mustPolicy(t, cfg)
}

// Paper Fig. 8: point-to-point detour around a faulty turn router. The RC
// sequence must be normal -> detour (set by the X-XB) -> normal (reset by
// the D-XB), and the delivered packet must look like a normal one.
func TestDetourPathFigure8(t *testing.T) {
	shape := geom.MustShape(4, 3)
	// Fault the turn router for (0,0) -> (2,2): router (2,0).
	p := withFaults(t, shape, Config{SXB: geom.Coord{0, 1}, DXB: geom.Coord{0, 1}}, fault.RouterFault(geom.Coord{2, 0}))
	path, err := p.UnicastPath(geom.Coord{0, 0}, geom.Coord{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if DetourLength(path) == 0 {
		t.Fatalf("no detour hops in %v", path)
	}
	// Never touches the faulty router.
	for _, h := range path {
		if h.Kind == HopRouter && h.Coord == (geom.Coord{2, 0}) {
			t.Fatalf("path visits faulty router: %v", path)
		}
	}
	// RC transitions: starts normal, becomes detour, ends normal at the PE.
	if path[0].RC != flit.RCNormal {
		t.Errorf("first RC = %v", path[0].RC)
	}
	last := path[len(path)-1]
	if last.Kind != HopPE || last.RC != flit.RCNormal || last.Coord != (geom.Coord{2, 2}) {
		t.Errorf("delivery hop = %v", last)
	}
	// The detour rides the D-XB (row 1).
	sawDXB := false
	for _, h := range path {
		if h.Kind == HopXB && h.Line == p.EffectiveDXB() && h.RC == flit.RCDetour {
			sawDXB = true
		}
	}
	if !sawDXB {
		t.Errorf("detour did not pass the D-XB: %v", path)
	}
	// Paper Fig. 8 step 2: the X-XB forwards to the designated detour router,
	// the lowest-indexed healthy one (router (0,0) here).
	for i, h := range path {
		if h.Kind == HopXB && h.Line == geom.LineOf(geom.Coord{0, 0}, 0) {
			if h.Out != 0 {
				t.Errorf("detour port = %d, want 0", h.Out)
			}
			if path[i+1].Kind != HopRouter || path[i+1].RC != flit.RCDetour {
				t.Errorf("hop after X-XB = %v", path[i+1])
			}
		}
	}
}

// Exhaustive single-router-fault sweep on 2D: every source/destination pair
// with healthy endpoints is deliverable, and no delivered path touches the
// fault.
func TestRouterFaultExhaustive2D(t *testing.T) {
	shape := geom.MustShape(4, 3)
	shape.Enumerate(func(bad geom.Coord) bool {
		p := withFaults(t, shape, Config{}, fault.RouterFault(bad))
		shape.Enumerate(func(src geom.Coord) bool {
			shape.Enumerate(func(dst geom.Coord) bool {
				path, err := p.UnicastPath(src, dst)
				switch {
				case src == bad || dst == bad:
					if err == nil {
						t.Fatalf("fault %v: %v->%v should be unreachable", bad, src, dst)
					}
					if !errors.Is(err, ErrUnreachable) {
						t.Fatalf("fault %v: %v->%v error %v is not ErrUnreachable", bad, src, dst, err)
					}
				default:
					if err != nil {
						t.Fatalf("fault %v: %v->%v unexpectedly unreachable: %v", bad, src, dst, err)
					}
					for _, h := range path {
						if h.Kind == HopRouter && h.Coord == bad {
							t.Fatalf("fault %v: %v->%v path visits fault: %v", bad, src, dst, path)
						}
					}
				}
				return true
			})
			return true
		})
		return true
	})
}

// A detour happens exactly when the dimension-order turn router is the fault
// (and it is not the destination's own router).
func TestDetourTriggersExactlyAtTurnRouter(t *testing.T) {
	shape := geom.MustShape(4, 3)
	bad := geom.Coord{2, 1}
	p := withFaults(t, shape, Config{}, fault.RouterFault(bad))
	shape.Enumerate(func(src geom.Coord) bool {
		shape.Enumerate(func(dst geom.Coord) bool {
			if src == bad || dst == bad {
				return true
			}
			path, err := p.UnicastPath(src, dst)
			if err != nil {
				t.Fatalf("%v->%v: %v", src, dst, err)
			}
			turn := geom.Coord{dst[0], src[1]}
			wantDetour := turn == bad && dst != turn && src[0] != dst[0]
			if (DetourLength(path) > 0) != wantDetour {
				t.Fatalf("%v->%v: detour=%d, wantDetour=%v (path %v)", src, dst, DetourLength(path), wantDetour, path)
			}
			return true
		})
		return true
	})
}

// Faulty dim-0 crossbar: sources on that line detour through their dim-1
// crossbar to the D-XB; everyone stays reachable.
func TestXB0FaultExhaustive2D(t *testing.T) {
	shape := geom.MustShape(4, 3)
	for row := 0; row < 3; row++ {
		badLine := geom.Line{Dim: 0, Fixed: geom.Coord{0, row}}
		p := withFaults(t, shape, Config{}, fault.XBFault(badLine))
		shape.Enumerate(func(src geom.Coord) bool {
			shape.Enumerate(func(dst geom.Coord) bool {
				path, err := p.UnicastPath(src, dst)
				if err != nil {
					t.Fatalf("fault %v: %v->%v: %v", badLine, src, dst, err)
				}
				for _, h := range path {
					if h.Kind == HopXB && h.Line == badLine {
						t.Fatalf("fault %v: %v->%v rides the faulty crossbar: %v", badLine, src, dst, path)
					}
				}
				wantDetour := src[1] == row && src[0] != dst[0]
				if (DetourLength(path) > 0) != wantDetour {
					t.Fatalf("fault %v: %v->%v detour=%d want %v", badLine, src, dst, DetourLength(path), wantDetour)
				}
				return true
			})
			return true
		})
	}
}

// Faulty last-dimension crossbar: the paper's facility cannot detour around
// it (the detour would need a second non-dimension-order turn), so only
// destinations not requiring it stay reachable. See DESIGN.md.
func TestXB1FaultSemantics2D(t *testing.T) {
	shape := geom.MustShape(4, 3)
	badLine := geom.Line{Dim: 1, Fixed: geom.Coord{2, 0}} // column 2
	p := withFaults(t, shape, Config{}, fault.XBFault(badLine))
	shape.Enumerate(func(src geom.Coord) bool {
		shape.Enumerate(func(dst geom.Coord) bool {
			_, err := p.UnicastPath(src, dst)
			needsBadXB := dst[0] == 2 && src[1] != dst[1]
			if needsBadXB && !errors.Is(err, ErrUnreachable) {
				t.Fatalf("%v->%v: want unreachable, got %v", src, dst, err)
			}
			if !needsBadXB && err != nil {
				t.Fatalf("%v->%v: %v", src, dst, err)
			}
			return true
		})
		return true
	})
}

// S-XB substitution: when the configured serialized crossbar (or a router on
// it) is faulty, another dim-0 crossbar takes over and broadcasts still
// reach every healthy PE.
func TestSXBSubstitution(t *testing.T) {
	shape := geom.MustShape(4, 3)
	cases := []fault.Fault{
		fault.XBFault(geom.Line{Dim: 0, Fixed: geom.Coord{0, 1}}), // S-XB itself
		fault.RouterFault(geom.Coord{2, 1}),                       // a router on the S line
	}
	for _, f := range cases {
		p := withFaults(t, shape, Config{SXB: geom.Coord{0, 1}, DXB: geom.Coord{0, 1}}, f)
		if p.EffectiveSXB().Fixed[1] == 1 {
			t.Fatalf("fault %v: S-XB not substituted", f)
		}
		if p.EffectiveDXB() != p.EffectiveSXB() {
			t.Fatalf("fault %v: D-XB (%v) diverged from S-XB (%v)", f, p.EffectiveDXB(), p.EffectiveSXB())
		}
		res, err := p.BroadcastTree(geom.Coord{3, 2})
		if err != nil {
			t.Fatalf("fault %v: %v", f, err)
		}
		want := shape.Size()
		if f.Kind == fault.KindRouter {
			want-- // the faulty router's PE is cut off
		}
		if len(res.Delivered) != want {
			t.Fatalf("fault %v: broadcast reached %d PEs, want %d", f, len(res.Delivered), want)
		}
		for c, n := range res.Delivered {
			if n != 1 {
				t.Errorf("fault %v: PE %v got %d copies", f, c, n)
			}
			if f.Kind == fault.KindRouter && c == f.Coord {
				t.Errorf("fault %v: delivered to the dead PE", f)
			}
		}
	}
}

// Broadcast with a faulty router elsewhere: every healthy PE still gets
// exactly one copy ("the network hardware stops transmission of packets to
// the faulty PE").
func TestBroadcastSkipsFaultyRouterExhaustive(t *testing.T) {
	shape := geom.MustShape(3, 3)
	shape.Enumerate(func(bad geom.Coord) bool {
		p := withFaults(t, shape, Config{}, fault.RouterFault(bad))
		shape.Enumerate(func(src geom.Coord) bool {
			if src == bad {
				return true
			}
			res, err := p.BroadcastTree(src)
			if err != nil {
				t.Fatalf("fault %v src %v: %v", bad, src, err)
			}
			if len(res.Delivered) != shape.Size()-1 {
				t.Fatalf("fault %v src %v: reached %d PEs", bad, src, len(res.Delivered))
			}
			if _, hit := res.Delivered[bad]; hit {
				t.Fatalf("fault %v src %v: delivered to dead PE", bad, src)
			}
			for _, n := range res.Delivered {
				if n != 1 {
					t.Fatalf("fault %v src %v: duplicate copies", bad, src)
				}
			}
			return true
		})
		return true
	})
}

// oracleUnreachable re-derives, from the spec alone, whether the detour
// facility can deliver src->dst with the given faulty router, independent of
// the Policy implementation. Unreachability requires (a) the fault to be a
// turn router of the dimension-order route, and (b) the detour walk — from
// the designated detour router (lowest healthy index on the detecting
// crossbar), over dims 1..d-1 to the D line, across the D-XB, then dimension
// order to dst — to pass through the fault again.
func oracleUnreachable(src, dst, bad, dEff geom.Coord) bool {
	const d = 3
	// Routers of the dimension-order route.
	pos := src
	var turns []geom.Coord
	var detectDim = -1
	for k := 0; k < d; k++ {
		if pos[k] != dst[k] {
			pos[k] = dst[k]
			turns = append(turns, pos)
			if pos == bad && detectDim == -1 {
				detectDim = k
			}
		}
	}
	if detectDim == -1 {
		return false // fault not on the route: always deliverable
	}
	// The detecting crossbar is the dim-detectDim line through bad; the
	// detour router is its lowest healthy index.
	line := geom.LineOf(bad, detectDim)
	start := line.Point(0)
	if start == bad {
		start = line.Point(1)
	}
	// Walk the detour and resumed route.
	pos = start
	for j := 1; j < d; j++ {
		if pos[j] != dEff[j] {
			pos[j] = dEff[j]
			if pos == bad {
				return true
			}
		}
	}
	pos[0] = dst[0]
	if pos == bad {
		return true
	}
	for j := 1; j < d; j++ {
		if pos[j] != dst[j] {
			pos[j] = dst[j]
			if pos == bad {
				return true
			}
		}
	}
	return false
}

// 3D router-fault sweep: each pair is either delivered avoiding the fault or
// reported unreachable — and unreachable happens only when the spec oracle
// agrees the facility cannot deliver.
func TestRouterFaultSweep3D(t *testing.T) {
	shape := geom.MustShape(3, 3, 2)
	bads := []geom.Coord{{1, 1, 0}, {2, 0, 1}, {0, 2, 0}}
	for _, bad := range bads {
		p := withFaults(t, shape, Config{}, fault.RouterFault(bad))
		dEff := p.EffectiveDXB().Fixed
		reached, unreachable := 0, 0
		shape.Enumerate(func(src geom.Coord) bool {
			shape.Enumerate(func(dst geom.Coord) bool {
				if src == bad || dst == bad {
					return true
				}
				path, err := p.UnicastPath(src, dst)
				if err == nil {
					reached++
					for _, h := range path {
						if h.Kind == HopRouter && h.Coord == bad {
							t.Fatalf("fault %v: %v->%v touches fault", bad, src, dst)
						}
					}
					if path[len(path)-1].Coord != dst {
						t.Fatalf("fault %v: %v->%v misdelivered", bad, src, dst)
					}
					return true
				}
				unreachable++
				if !errors.Is(err, ErrUnreachable) {
					t.Fatalf("fault %v: %v->%v: %v", bad, src, dst, err)
				}
				if !oracleUnreachable(src, dst, bad, dEff) {
					t.Fatalf("fault %v: %v->%v unreachable but oracle says deliverable: %v", bad, src, dst, err)
				}
				return true
			})
			return true
		})
		if reached == 0 {
			t.Fatalf("fault %v: nothing reachable", bad)
		}
		t.Logf("fault %v: %d reachable, %d unreachable pairs", bad, reached, unreachable)
	}
}

func TestBroadcastRequestBlockedByColumnFault(t *testing.T) {
	shape := geom.MustShape(4, 3)
	// Column 3's dim-1 crossbar is faulty; sources at (3, y != sEff) cannot
	// reach the S line.
	p := withFaults(t, shape, Config{SXB: geom.Coord{0, 0}}, fault.XBFault(geom.Line{Dim: 1, Fixed: geom.Coord{3, 0}}))
	if _, err := p.BroadcastTree(geom.Coord{3, 2}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("blocked request error = %v", err)
	}
	// A source already on the S line broadcasts fine; column-3 PEs off the S
	// line are missed.
	res, err := p.BroadcastTree(geom.Coord{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Delivered) != shape.Size()-2 { // (3,1) and (3,2) missed
		t.Errorf("delivered %d PEs", len(res.Delivered))
	}
}

func TestDetourHopCounting(t *testing.T) {
	shape := geom.MustShape(4, 3)
	p := withFaults(t, shape, Config{}, fault.RouterFault(geom.Coord{2, 0}))
	path, err := p.UnicastPath(geom.Coord{0, 0}, geom.Coord{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	dl := DetourLength(path)
	if dl < 3 {
		t.Errorf("detour length = %d, want >= 3 (detour router, Y-XB, D-line router, D-XB)", dl)
	}
	if CrossbarHops(path) <= 2 {
		t.Errorf("detour path crossbar hops = %d, want > direct 2", CrossbarHops(path))
	}
}

func TestHopString(t *testing.T) {
	h := Hop{Kind: HopRouter, Coord: geom.Coord{1, 2}, RC: flit.RCDetour, Out: 0}
	if got := h.String(); !strings.Contains(got, "RTC(1,2)") || !strings.Contains(got, "detour") {
		t.Errorf("Hop.String = %q", got)
	}
	pe := Hop{Kind: HopPE, Coord: geom.Coord{1, 2}}
	if got := pe.String(); got != "PE(1,2)" {
		t.Errorf("PE hop = %q", got)
	}
	xb := Hop{Kind: HopXB, Line: geom.Line{Dim: 1, Fixed: geom.Coord{3, 0}}, RC: flit.RCNormal, Out: 2}
	if got := xb.String(); !strings.Contains(got, "XB1(3,0)") {
		t.Errorf("XB hop = %q", got)
	}
}

func TestOneDimensionalNetwork(t *testing.T) {
	shape := geom.MustShape(6)
	p := mustPolicy(t, Config{Shape: shape})
	path, err := p.UnicastPath(geom.Coord{1}, geom.Coord{4})
	if err != nil {
		t.Fatal(err)
	}
	if CrossbarHops(path) != 1 {
		t.Errorf("1D path = %v", path)
	}
	res, err := p.BroadcastTree(geom.Coord{3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Delivered) != 6 {
		t.Errorf("1D broadcast reached %d", len(res.Delivered))
	}
	// A faulty router in 1D cuts off only its own PE...
	p = withFaults(t, shape, Config{}, fault.RouterFault(geom.Coord{2}))
	if _, err := p.UnicastPath(geom.Coord{1}, geom.Coord{4}); err != nil {
		t.Errorf("1D fault blocked an unrelated pair: %v", err)
	}
	if _, err := p.UnicastPath(geom.Coord{1}, geom.Coord{2}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("1D dead PE reachable: %v", err)
	}
}

func TestSourceRouterFaultIsError(t *testing.T) {
	shape := geom.MustShape(4, 3)
	p := withFaults(t, shape, Config{}, fault.RouterFault(geom.Coord{1, 1}))
	if _, err := p.UnicastPath(geom.Coord{1, 1}, geom.Coord{0, 0}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("faulty source error = %v", err)
	}
	if _, err := p.BroadcastTree(geom.Coord{1, 1}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("faulty broadcast source error = %v", err)
	}
}

// In the Fig. 9 configuration (D-XB != S-XB) the static routes are still
// correct — the deadlock is purely dynamic. Paths must detour via the
// configured D-XB, not the S-XB.
func TestSeparateDXBStaticRoutes(t *testing.T) {
	shape := geom.MustShape(4, 3)
	p := withFaults(t, shape, Config{SXB: geom.Coord{0, 0}, DXB: geom.Coord{0, 2}}, fault.RouterFault(geom.Coord{2, 1}))
	if p.EffectiveSXB() == p.EffectiveDXB() {
		t.Fatal("S-XB and D-XB should differ in this configuration")
	}
	path, err := p.UnicastPath(geom.Coord{0, 1}, geom.Coord{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	sawD := false
	for _, h := range path {
		if h.Kind == HopXB && h.Line == p.EffectiveDXB() {
			sawD = true
		}
		if h.Kind == HopXB && h.Line == p.EffectiveSXB() {
			t.Errorf("detour rode the S-XB in separate-D mode: %v", path)
		}
	}
	if !sawD {
		t.Errorf("detour missed the D-XB: %v", path)
	}
}

// Substitution property: whenever an untouched dim-0 line exists, the
// effective S-XB/D-XB land on one, for any single fault.
func TestQuickSubstitutionAvoidsFaults(t *testing.T) {
	shape := geom.MustShape(4, 4)
	f := func(rawFault, rawCfg uint32) bool {
		set := fault.NewSet(shape)
		// Alternate router and dim-0 crossbar faults.
		if rawFault%2 == 0 {
			if err := set.Add(fault.RouterFault(shape.CoordOf(int(rawFault/2) % shape.Size()))); err != nil {
				return false
			}
		} else {
			l := geom.Line{Dim: 0, Fixed: geom.Coord{0, int(rawFault/2) % 4}}
			if err := set.Add(fault.XBFault(l)); err != nil {
				return false
			}
		}
		cfg := Config{Shape: shape, SXB: geom.Coord{0, int(rawCfg) % 4}, Faults: set}
		p, err := New(cfg)
		if err != nil {
			return false
		}
		return !set.LineTouched(p.EffectiveSXB()) && !set.LineTouched(p.EffectiveDXB())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Broadcast tree depth bound: the Y-X-Y scheme is request (<= d-1 crossbar
// legs) + S-XB + fan (<= d-1 legs); element depth is therefore bounded by
// 2*(2*(d-1)) + 2 + 1 elements.
func TestBroadcastDepthBound(t *testing.T) {
	for _, extents := range [][]int{{4, 4}, {3, 3, 3}, {2, 3, 2, 3}} {
		shape := geom.MustShape(extents...)
		p := mustPolicy(t, Config{Shape: shape})
		d := shape.Dims()
		bound := 4*(d-1) + 3
		shape.Enumerate(func(src geom.Coord) bool {
			res, err := p.BroadcastTree(src)
			if err != nil {
				t.Fatalf("%v: %v", src, err)
			}
			if res.Depth > bound {
				t.Fatalf("shape %v src %v: depth %d > bound %d", shape, src, res.Depth, bound)
			}
			return true
		})
	}
}

// Detoured paths are bounded: a single detour adds at most 2*(d-1) + 2
// crossbar traversals over the direct route.
func TestQuickDetourPathBound(t *testing.T) {
	shape := geom.MustShape(4, 4)
	f := func(rawBad, rawSrc, rawDst uint32) bool {
		bad := shape.CoordOf(int(rawBad) % shape.Size())
		src := shape.CoordOf(int(rawSrc) % shape.Size())
		dst := shape.CoordOf(int(rawDst) % shape.Size())
		if src == bad || dst == bad {
			return true
		}
		set := fault.NewSet(shape)
		if err := set.Add(fault.RouterFault(bad)); err != nil {
			return false
		}
		p, err := New(Config{Shape: shape, Faults: set})
		if err != nil {
			return false
		}
		path, err := p.UnicastPath(src, dst)
		if err != nil {
			return true // unreachable pairs are out of scope for the bound
		}
		direct := src.Distance(dst)
		limit := direct + 2*(shape.Dims()-1) + 2
		return CrossbarHops(path) <= limit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Regression: with both the source's dim-0 and dim-1 crossbars faulty (two
// faults — beyond the paper's guarantee), the detour initiation must refuse
// rather than route into the second dead crossbar. Found by the E13
// two-fault sweep.
func TestDetourRefusesSecondFaultyLeg(t *testing.T) {
	shape := geom.MustShape(4, 4)
	p := withFaults(t, shape, Config{},
		fault.XBFault(geom.Line{Dim: 0, Fixed: geom.Coord{0, 0}}),
		fault.XBFault(geom.Line{Dim: 1, Fixed: geom.Coord{0, 0}}))
	// (0,0) needs dim-0 traversal; its row crossbar is dead, and so is the
	// column crossbar the detour's first leg would ride.
	if _, err := p.UnicastPath(geom.Coord{0, 0}, geom.Coord{1, 0}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("want ErrUnreachable, got %v", err)
	}
	// No delivered path under this fault pair may touch either fault.
	shape.Enumerate(func(src geom.Coord) bool {
		shape.Enumerate(func(dst geom.Coord) bool {
			if src == dst {
				return true
			}
			path, err := p.UnicastPath(src, dst)
			if err != nil {
				return true
			}
			for _, h := range path {
				if h.Kind == HopXB && (h.Line == geom.Line{Dim: 0, Fixed: geom.Coord{0, 0}} || h.Line == geom.Line{Dim: 1, Fixed: geom.Coord{0, 0}}) {
					t.Fatalf("%v->%v rides a dead crossbar: %v", src, dst, path)
				}
			}
			return true
		})
		return true
	})
}
