// Package replay records a run's snapshot ring and bisects the first cycle
// where two recorded runs diverge.
//
// A recording is a directory holding meta.json — the run's spec, the
// per-point engine StateHash ladder (one entry every Every cycles, cycle 0
// included), and the final verdict — plus the retained snapshot files. The
// hash ladder is kept for every point; the snapshot files form a ring of the
// most recent Keep points (0 = keep all), since hashes are 8 bytes but
// snapshots are whole machines.
//
// Bisect compares two recordings of the same workload under different
// configurations (a shifted fault schedule, different retransmission tuning,
// a separate-D-XB machine variant, ...): it binary-searches the hash ladders
// for the first divergent point, restores both runs from their latest common
// snapshot, and locksteps them cycle by cycle to the exact first divergent
// cycle — seeking instead of replaying from zero. The search assumes
// divergence is monotone (once the two state streams separate, they never
// re-coincide hash-for-hash), the usual bisection premise.
package replay

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"sr2201/internal/campaign"
	"sr2201/internal/cliutil"
	"sr2201/internal/geom"
	"sr2201/internal/inject"
)

// RunSpec is the JSON description of a recorded run: everything needed to
// rebuild its campaign cell deterministically, in the CLI's own spellings.
type RunSpec struct {
	Shape string `json:"shape"`
	// Fails lists fault schedules, e.g. "rtc:3,4@500" or "xb:0:0,2@200".
	Fails []string `json:"fails,omitempty"`
	// Pattern is "shift+K" or "reverse".
	Pattern    string `json:"pattern"`
	Waves      int    `json:"waves"`
	Gap        int64  `json:"gap"`
	PacketSize int    `json:"packet_size,omitempty"`
	Horizon    int64  `json:"horizon,omitempty"`

	Retransmit bool  `json:"retransmit,omitempty"`
	RetryAfter int64 `json:"retry_after,omitempty"`
	Backoff    int   `json:"backoff,omitempty"`
	MaxRetries int   `json:"max_retries,omitempty"`
	Stall      int64 `json:"stall,omitempty"`

	// Machine variant: see campaign.Spec. SXB/DXB are coordinates like "0,1"
	// (empty = the all-zero line).
	SXB            string `json:"sxb,omitempty"`
	DXB            string `json:"dxb,omitempty"`
	DXBSeparate    bool   `json:"dxb_separate,omitempty"`
	NaiveBroadcast bool   `json:"naive_broadcast,omitempty"`
	PivotLastDim   bool   `json:"pivot_last_dim,omitempty"`
	// VCs and Adaptive select the escape-VC adaptive variant. Recordings of
	// adaptive runs bisect against each other (and against static runs of
	// the same workload) like any other variant pair.
	VCs      int  `json:"vcs,omitempty"`
	Adaptive bool `json:"adaptive,omitempty"`

	// Shards steps the machine on that many spatial shards. Recordings made
	// at different shard counts are expected hash-identical; Bisect across a
	// shard-count change names the first cycle where that promise breaks.
	Shards int `json:"shards,omitempty"`
}

// CellSpec parses the wire spec into a runnable campaign cell spec.
func (s RunSpec) CellSpec() (campaign.Spec, error) {
	shape, err := cliutil.ParseShape(s.Shape)
	if err != nil {
		return campaign.Spec{}, err
	}
	events := make([]inject.Event, 0, len(s.Fails))
	for _, fs := range s.Fails {
		f, cycle, err := cliutil.ParseScheduledFault(fs, shape)
		if err != nil {
			return campaign.Spec{}, err
		}
		events = append(events, inject.Event{Cycle: cycle, Fault: f})
	}
	pat, err := campaign.ParsePattern(s.Pattern)
	if err != nil {
		return campaign.Spec{}, err
	}
	var sxb, dxb geom.Coord
	if s.SXB != "" {
		if sxb, err = cliutil.ParseCoord(s.SXB, shape.Dims()); err != nil {
			return campaign.Spec{}, err
		}
	}
	if s.DXB != "" {
		if dxb, err = cliutil.ParseCoord(s.DXB, shape.Dims()); err != nil {
			return campaign.Spec{}, err
		}
	}
	return campaign.Spec{
		Shape:      shape,
		Events:     events,
		Pattern:    pat,
		Waves:      s.Waves,
		Gap:        s.Gap,
		PacketSize: s.PacketSize,
		Horizon:    s.Horizon,
		Inject: inject.Options{
			Retransmit:     s.Retransmit,
			RetryAfter:     s.RetryAfter,
			Backoff:        s.Backoff,
			MaxRetries:     s.MaxRetries,
			StallThreshold: s.Stall,
		},
		SXB:            sxb,
		DXB:            dxb,
		DXBSeparate:    s.DXBSeparate,
		NaiveBroadcast: s.NaiveBroadcast,
		PivotLastDim:   s.PivotLastDim,
		VCs:            s.VCs,
		Adaptive:       s.Adaptive,
		Shards:         s.Shards,
	}, nil
}

// Point is one hash-ladder entry: the engine's StateHash at Cycle, rendered
// in hex so the JSON round-trips exactly and diffs read well.
type Point struct {
	Cycle int64  `json:"cycle"`
	Hash  string `json:"hash"`
}

// Meta is a recording's index (meta.json).
type Meta struct {
	Version int     `json:"version"`
	Spec    RunSpec `json:"spec"`
	// Every is the point spacing in cycles.
	Every int64 `json:"every"`
	// Keep is the snapshot-ring capacity the recording was made with.
	Keep int `json:"keep,omitempty"`
	// Points is the full hash ladder, ascending by cycle, starting at 0.
	Points []Point `json:"points"`
	// Snapshots lists the cycles whose snapshot files were retained.
	Snapshots []int64 `json:"snapshots"`
	// Final is the run's last cycle and hash (not necessarily on the ladder).
	Final Point `json:"final"`
	// Verdict of the run.
	Drained    bool `json:"drained"`
	Stalled    bool `json:"stalled"`
	Deadlocked bool `json:"deadlocked"`
}

// Recording is a loaded (or just-written) recording directory.
type Recording struct {
	Dir  string
	Meta Meta
}

func hashAt(c *campaign.CellRun) string {
	return fmt.Sprintf("%016x", c.Machine().Engine().StateHash())
}

func snapPath(dir string, cycle int64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%012d.snap", cycle))
}

// Record runs the spec to completion, writing the recording into dir. every
// is the point spacing (>= 1); keep bounds the snapshot ring (0 = keep every
// snapshot).
func Record(spec RunSpec, every int64, keep int, dir string) (*Recording, error) {
	if every < 1 {
		return nil, fmt.Errorf("replay: point spacing %d < 1", every)
	}
	cs, err := spec.CellSpec()
	if err != nil {
		return nil, err
	}
	c, err := campaign.NewCellRun(cs)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	meta := Meta{Version: 1, Spec: spec, Every: every, Keep: keep}
	for {
		if c.Cycle()%every == 0 {
			meta.Points = append(meta.Points, Point{Cycle: c.Cycle(), Hash: hashAt(c)})
			if err := os.WriteFile(snapPath(dir, c.Cycle()), c.Snapshot(), 0o644); err != nil {
				return nil, err
			}
			meta.Snapshots = append(meta.Snapshots, c.Cycle())
			if keep > 0 && len(meta.Snapshots) > keep {
				os.Remove(snapPath(dir, meta.Snapshots[0]))
				meta.Snapshots = meta.Snapshots[1:]
			}
		}
		if c.Step() {
			break
		}
	}
	meta.Final = Point{Cycle: c.Cycle(), Hash: hashAt(c)}
	res, err := c.Result()
	if err != nil {
		return nil, err
	}
	meta.Drained, meta.Stalled, meta.Deadlocked = res.Drained, res.Stalled, res.Deadlocked
	data, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, "meta.json"), append(data, '\n'), 0o644); err != nil {
		return nil, err
	}
	return &Recording{Dir: dir, Meta: meta}, nil
}

// Load opens a recording directory.
func Load(dir string) (*Recording, error) {
	data, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return nil, err
	}
	var meta Meta
	if err := json.Unmarshal(data, &meta); err != nil {
		return nil, fmt.Errorf("replay: %s: %w", dir, err)
	}
	if meta.Version != 1 {
		return nil, fmt.Errorf("replay: %s: unsupported recording version %d", dir, meta.Version)
	}
	return &Recording{Dir: dir, Meta: meta}, nil
}

// seek builds the recording's cell run positioned at cycle (0 = fresh run;
// otherwise the retained snapshot at that exact cycle).
func (r *Recording) seek(cycle int64) (*campaign.CellRun, error) {
	cs, err := r.Meta.Spec.CellSpec()
	if err != nil {
		return nil, err
	}
	c, err := campaign.NewCellRun(cs)
	if err != nil {
		return nil, err
	}
	if cycle == 0 {
		return c, nil
	}
	data, err := os.ReadFile(snapPath(r.Dir, cycle))
	if err != nil {
		return nil, err
	}
	if err := c.Restore(data); err != nil {
		return nil, fmt.Errorf("replay: %s: snapshot at cycle %d: %w", r.Dir, cycle, err)
	}
	return c, nil
}

// hasSnap reports whether the ring still holds the snapshot at cycle.
func (r *Recording) hasSnap(cycle int64) bool {
	if cycle == 0 {
		return true // cycle 0 is always reachable: a fresh run
	}
	for _, c := range r.Meta.Snapshots {
		if c == cycle {
			return true
		}
	}
	return false
}

// Divergence is Bisect's verdict.
type Divergence struct {
	// Diverged is false when the two state streams match through both runs'
	// ends (at ladder granularity before the seek point, per cycle after).
	Diverged bool
	// Cycle is the first cycle whose engine StateHash differs (valid when
	// Diverged). HashA/HashB are the two hashes at that cycle.
	Cycle        int64
	HashA, HashB string
	// Terminated marks a termination divergence: the streams stayed
	// hash-equal but one run finished at Cycle while the other ran on.
	Terminated bool
	// SeekCycle is the common snapshot the lockstep started from; Stepped is
	// how many cycles it replayed (the work saved is roughly Cycle-0 minus
	// Stepped).
	SeekCycle, Stepped int64
}

// Bisect finds the first divergent cycle between two recordings.
func Bisect(a, b *Recording) (Divergence, error) {
	pa, pb := a.Meta.Points, b.Meta.Points
	if len(pa) == 0 || len(pb) == 0 {
		return Divergence{}, fmt.Errorf("replay: recording has no points")
	}
	if pa[0].Cycle != 0 || pb[0].Cycle != 0 {
		return Divergence{}, fmt.Errorf("replay: recordings must start at cycle 0")
	}
	// The common ladder: both recordings' points at identical cycles. With
	// equal Every this is simply the shorter prefix; with different spacings
	// it is the points at common multiples.
	hb := make(map[int64]string, len(pb))
	for _, p := range pb {
		hb[p.Cycle] = p.Hash
	}
	var common []Point // a-side points that b also has
	for _, p := range pa {
		if _, ok := hb[p.Cycle]; ok {
			common = append(common, p)
		}
	}
	if len(common) == 0 {
		return Divergence{}, fmt.Errorf("replay: recordings share no point cycles (incompatible -every)")
	}
	// Binary-search the first divergent ladder point (monotone-divergence
	// premise: equal at i implies equal at every j < i).
	firstDiff := sort.Search(len(common), func(i int) bool {
		return common[i].Hash != hb[common[i].Cycle]
	})

	if firstDiff == 0 && common[0].Hash != hb[common[0].Cycle] {
		// Diverged at cycle 0: the initial states themselves differ.
		return Divergence{Diverged: true, Cycle: 0, HashA: common[0].Hash, HashB: hb[common[0].Cycle]}, nil
	}

	// Seek: the latest known-equal ladder cycle whose snapshot both rings
	// retain (falling back to a fresh run from cycle 0 when the rings have
	// pruned past the divergence).
	seekAt := int64(0)
	for i := firstDiff - 1; i >= 0; i-- {
		if c := common[i].Cycle; a.hasSnap(c) && b.hasSnap(c) {
			seekAt = c
			break
		}
	}
	ca, err := a.seek(seekAt)
	if err != nil {
		return Divergence{}, err
	}
	cb, err := b.seek(seekAt)
	if err != nil {
		return Divergence{}, err
	}

	// Lockstep to the exact cycle. A run that finishes (drain, stall,
	// horizon) stops advancing, so termination mismatches are checked before
	// hashes — otherwise the cycle skew would masquerade as a state
	// divergence one report too late.
	d := Divergence{SeekCycle: seekAt}
	for {
		doneA, doneB := ca.Done(), cb.Done()
		switch {
		case doneA != doneB:
			d.Diverged, d.Terminated = true, true
			if doneA {
				d.Cycle = ca.Cycle()
			} else {
				d.Cycle = cb.Cycle()
			}
			d.HashA, d.HashB = hashAt(ca), hashAt(cb)
			return d, nil
		case doneA && doneB:
			if ha, hb := hashAt(ca), hashAt(cb); ha != hb {
				d.Diverged, d.Cycle, d.HashA, d.HashB = true, ca.Cycle(), ha, hb
			}
			return d, nil
		}
		ca.Step()
		cb.Step()
		d.Stepped++
		if ca.Done() || cb.Done() {
			continue // let the termination check above classify it
		}
		if ha, hb := hashAt(ca), hashAt(cb); ha != hb {
			d.Diverged, d.Cycle, d.HashA, d.HashB = true, ca.Cycle(), ha, hb
			return d, nil
		}
	}
}
