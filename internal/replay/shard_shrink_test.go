package replay

// Random-topology sharded-vs-serial shrinker: seeded rand generates RunSpecs
// over random shapes, fault schedules and shard counts; each spec is recorded
// serial and sharded, and the hash ladders plus finals must agree. On a
// divergence the harness does what a human debugging a shard regression
// would: Bisect names the exact first divergent cycle, then the spec is
// shrunk — waves down, faults dropped, shards reduced — to the smallest
// still-diverging reproducer before failing with its JSON (ready to pin in
// testdata). One previously interesting spec is pinned as a regression
// corpus so the exact scenario keeps being re-checked forever.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// randomShardSpec draws one RunSpec from the generator distribution: 1-3
// dimensions of extent 2-4, up to two scheduled faults, a random pattern and
// retransmission tuning, and a random shard count 2-5.
func randomShardSpec(rng *rand.Rand) RunSpec {
	dims := 1 + rng.Intn(3)
	extents := make([]int, dims)
	shape := ""
	for i := range extents {
		extents[i] = 2 + rng.Intn(3)
		if i > 0 {
			shape += "x"
		}
		shape += fmt.Sprint(extents[i])
	}
	spec := RunSpec{
		Shape:   shape,
		Pattern: fmt.Sprintf("shift+%d", 1+rng.Intn(5)),
		Waves:   1 + rng.Intn(3),
		Gap:     int64(8 + rng.Intn(24)),
		Horizon: 20_000,
		Shards:  2 + rng.Intn(4),
	}
	if rng.Intn(2) == 0 {
		spec.Pattern = "reverse"
	}
	if rng.Intn(2) == 0 {
		spec.Retransmit = true
		spec.RetryAfter = int64(24 + rng.Intn(48))
	}
	for n := rng.Intn(3); n > 0; n-- {
		cycle := rng.Intn(60)
		if rng.Intn(2) == 0 {
			coord := ""
			for i := range extents {
				if i > 0 {
					coord += ","
				}
				coord += fmt.Sprint(rng.Intn(extents[i]))
			}
			spec.Fails = append(spec.Fails, fmt.Sprintf("rtc:%s@%d", coord, cycle))
		} else {
			dim := rng.Intn(dims)
			coord := ""
			for i := range extents {
				if i > 0 {
					coord += ","
				}
				if i == dim {
					coord += "0" // the line's own dimension is zero by convention
				} else {
					coord += fmt.Sprint(rng.Intn(extents[i]))
				}
			}
			spec.Fails = append(spec.Fails, fmt.Sprintf("xb:%d:%s@%d", dim, coord, cycle))
		}
	}
	return spec
}

// shardDivergence records the spec serial and sharded and, when the streams
// differ, Bisects to the first divergent cycle. ok=false only on divergence.
func shardDivergence(t *testing.T, spec RunSpec) (Divergence, bool) {
	t.Helper()
	serial := spec
	serial.Shards = 0
	ra, err := Record(serial, 16, 0, t.TempDir())
	if err != nil {
		t.Fatalf("record serial %+v: %v", spec, err)
	}
	rb, err := Record(spec, 16, 0, t.TempDir())
	if err != nil {
		t.Fatalf("record sharded %+v: %v", spec, err)
	}
	d, err := Bisect(ra, rb)
	if err != nil {
		t.Fatalf("bisect %+v: %v", spec, err)
	}
	return d, !d.Diverged
}

// shrinkShardSpec greedily minimizes a diverging spec: fewer waves, fewer
// faults, fewer shards — keeping each reduction only while it still
// diverges.
func shrinkShardSpec(t *testing.T, spec RunSpec) RunSpec {
	t.Helper()
	improved := true
	for improved {
		improved = false
		for spec.Waves > 1 {
			c := spec
			c.Waves--
			if _, ok := shardDivergence(t, c); !ok {
				spec = c
				improved = true
			} else {
				break
			}
		}
		for i := 0; i < len(spec.Fails); i++ {
			c := spec
			c.Fails = append(append([]string(nil), spec.Fails[:i]...), spec.Fails[i+1:]...)
			if _, ok := shardDivergence(t, c); !ok {
				spec = c
				improved = true
				i--
			}
		}
		for spec.Shards > 2 {
			c := spec
			c.Shards--
			if _, ok := shardDivergence(t, c); !ok {
				spec = c
				improved = true
			} else {
				break
			}
		}
		if spec.Retransmit {
			c := spec
			c.Retransmit = false
			c.RetryAfter = 0
			if _, ok := shardDivergence(t, c); !ok {
				spec = c
				improved = true
			}
		}
	}
	return spec
}

func TestShardShrinkerRandomSpecs(t *testing.T) {
	// The generator seed is fixed so the corpus is stable; bumping the seed
	// or count is how a suspicious engine change widens the net.
	rng := rand.New(rand.NewSource(20260808))
	n := 12
	if testing.Short() {
		n = 4
	}
	for i := 0; i < n; i++ {
		spec := randomShardSpec(rng)
		d, ok := shardDivergence(t, spec)
		if !ok {
			min := shrinkShardSpec(t, spec)
			dm, _ := shardDivergence(t, min)
			js, _ := json.Marshal(min)
			t.Fatalf("sharded run diverged from serial at cycle %d (hash %s vs %s)\nminimal reproducer (pin in testdata/shard_regression.json):\n%s\n(original spec diverged at cycle %d)",
				dm.Cycle, dm.HashA, dm.HashB, js, d.Cycle)
		}
	}
}

func TestShardRegressionCorpus(t *testing.T) {
	// The pinned corpus spec: an asymmetric 3-D shape with a mid-run
	// crossbar fault, retransmission, and an odd shard count — the kind of
	// cell the random generator found most delicate. It must stay
	// hash-identical to serial forever.
	data, err := os.ReadFile(filepath.Join("testdata", "shard_regression.json"))
	if err != nil {
		t.Fatal(err)
	}
	var spec RunSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		t.Fatal(err)
	}
	if spec.Shards < 2 {
		t.Fatalf("corpus spec lost its shard count: %+v", spec)
	}
	if d, ok := shardDivergence(t, spec); !ok {
		t.Fatalf("pinned corpus spec diverged at cycle %d (%s vs %s)", d.Cycle, d.HashA, d.HashB)
	}
}
