package replay

import (
	"testing"

	"sr2201/internal/campaign"
)

func baseSpec() RunSpec {
	return RunSpec{
		Shape:      "4x4",
		Fails:      []string{"rtc:2,1@40"},
		Pattern:    "shift+5",
		Waves:      4,
		Gap:        24,
		Retransmit: true,
		RetryAfter: 32,
	}
}

// groundTruth locksteps two fresh runs from cycle 0 and returns the first
// divergent cycle the hard way — the oracle Bisect must match.
func groundTruth(t *testing.T, a, b RunSpec) (diverged bool, cycle int64) {
	t.Helper()
	mk := func(s RunSpec) *campaign.CellRun {
		cs, err := s.CellSpec()
		if err != nil {
			t.Fatal(err)
		}
		c, err := campaign.NewCellRun(cs)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	ca, cb := mk(a), mk(b)
	for {
		if ca.Done() != cb.Done() {
			if ca.Done() {
				return true, ca.Cycle()
			}
			return true, cb.Cycle()
		}
		if ca.Done() && cb.Done() {
			return hashAt(ca) != hashAt(cb), ca.Cycle()
		}
		ca.Step()
		cb.Step()
		if ca.Done() || cb.Done() {
			continue
		}
		if hashAt(ca) != hashAt(cb) {
			return true, ca.Cycle()
		}
	}
}

func record(t *testing.T, spec RunSpec, every int64, keep int) *Recording {
	t.Helper()
	rec, err := Record(spec, every, keep, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// TestBisectFindsExactCycle pins Bisect against the lockstep-from-zero oracle
// for several config deltas: a shifted fault epoch, a different fault
// placement, and different retransmission tuning.
func TestBisectFindsExactCycle(t *testing.T) {
	shifted := baseSpec()
	shifted.Fails = []string{"rtc:2,1@80"}
	moved := baseSpec()
	moved.Fails = []string{"rtc:1,2@40"}
	// Retransmission tuning only matters when the fault kills a packet that
	// gets resent, so this pair faults mid-wave (cycle 28, wave 2 airborne,
	// one recoverable casualty).
	inFlight := baseSpec()
	inFlight.Fails = []string{"rtc:2,1@28"}
	retuned := inFlight
	retuned.RetryAfter = 64

	for _, tc := range []struct {
		name string
		a, b RunSpec
	}{
		{"epoch-shift", baseSpec(), shifted},
		{"placement", baseSpec(), moved},
		{"retry-after", inFlight, retuned},
	} {
		t.Run(tc.name, func(t *testing.T) {
			wantDiv, wantCycle := groundTruth(t, tc.a, tc.b)
			if !wantDiv {
				t.Fatalf("fixture does not diverge — pick a sharper delta")
			}
			ra := record(t, tc.a, 64, 0)
			rb := record(t, tc.b, 64, 0)
			d, err := Bisect(ra, rb)
			if err != nil {
				t.Fatal(err)
			}
			if !d.Diverged || d.Cycle != wantCycle {
				t.Errorf("Bisect: diverged=%v cycle=%d, oracle says cycle %d", d.Diverged, d.Cycle, wantCycle)
			}
			if d.HashA == d.HashB && !d.Terminated {
				t.Errorf("divergence with equal hashes: %s", d.HashA)
			}
			// The seek must actually save work: the divergence is past the
			// first ladder rung, so the lockstep should not start at zero.
			if wantCycle > 64 && d.SeekCycle == 0 {
				t.Errorf("bisect replayed from zero (seek=%d, divergence at %d)", d.SeekCycle, wantCycle)
			}
			if d.Stepped > wantCycle-d.SeekCycle+1 {
				t.Errorf("lockstep ran %d cycles from seek %d for a divergence at %d", d.Stepped, d.SeekCycle, wantCycle)
			}
		})
	}
}

// TestBisectIdenticalRuns: two recordings of the same spec never diverge.
func TestBisectIdenticalRuns(t *testing.T) {
	ra := record(t, baseSpec(), 64, 0)
	rb := record(t, baseSpec(), 64, 0)
	d, err := Bisect(ra, rb)
	if err != nil {
		t.Fatal(err)
	}
	if d.Diverged {
		t.Errorf("identical specs reported divergent at cycle %d (%s vs %s)", d.Cycle, d.HashA, d.HashB)
	}
}

// TestBisectPrunedRing: with a tiny ring that has pruned every pre-divergence
// snapshot, Bisect falls back to a fresh run from cycle 0 and still lands on
// the exact cycle.
func TestBisectPrunedRing(t *testing.T) {
	alt := baseSpec()
	alt.Fails = []string{"rtc:2,1@80"}
	_, wantCycle := groundTruth(t, baseSpec(), alt)

	ra := record(t, baseSpec(), 64, 1)
	rb := record(t, alt, 64, 1)
	if n := len(ra.Meta.Snapshots); n != 1 {
		t.Fatalf("ring kept %d snapshots, want 1", n)
	}
	d, err := Bisect(ra, rb)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Diverged || d.Cycle != wantCycle {
		t.Errorf("Bisect with pruned ring: diverged=%v cycle=%d, want %d", d.Diverged, d.Cycle, wantCycle)
	}
}

// TestBisectMachineVariants records one workload on the deadlock-free
// machine and on the separate-D-XB variant (paper Fig. 9) and checks the
// bisector pins their first state divergence after the fault forces detours.
func TestBisectMachineVariants(t *testing.T) {
	sep := baseSpec()
	sep.DXBSeparate = true
	sep.DXB = "0,1"
	sep.Pattern = "reverse"
	base := baseSpec()
	base.Pattern = "reverse"

	wantDiv, wantCycle := groundTruth(t, base, sep)
	if !wantDiv {
		t.Skip("variant runs never diverged under this workload")
	}
	ra := record(t, base, 64, 0)
	rb := record(t, sep, 64, 0)
	d, err := Bisect(ra, rb)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Diverged || d.Cycle != wantCycle {
		t.Errorf("variant bisect: diverged=%v cycle=%d, want %d", d.Diverged, d.Cycle, wantCycle)
	}
}

// TestRecordingRoundTrip: Load reads back exactly what Record wrote, and the
// ladder starts at cycle 0 with the final point consistent with the verdict.
func TestRecordingRoundTrip(t *testing.T) {
	rec := record(t, baseSpec(), 64, 0)
	got, err := Load(rec.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Meta.Points) != len(rec.Meta.Points) || got.Meta.Points[0].Cycle != 0 {
		t.Errorf("ladder mismatch after reload: %d points, first at %d",
			len(got.Meta.Points), got.Meta.Points[0].Cycle)
	}
	if !got.Meta.Drained {
		t.Errorf("fixture run should drain; meta says %+v", got.Meta)
	}
	if got.Meta.Final.Cycle < got.Meta.Points[len(got.Meta.Points)-1].Cycle {
		t.Errorf("final cycle %d precedes last ladder point", got.Meta.Final.Cycle)
	}
}
