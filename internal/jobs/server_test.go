package jobs

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

type submitResp struct {
	ID      string `json:"id"`
	Status  string `json:"status"`
	Deduped bool   `json:"deduped"`
	Error   string `json:"error"`
	Field   string `json:"field"`
}

func postJob(t *testing.T, ts *httptest.Server, body string) (submitResp, *http.Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out submitResp
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	return out, resp
}

func getJob(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s: %s", id, resp.Status)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func waitHTTPStatus(t *testing.T, ts *httptest.Server, id string, want Status) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		v := getJob(t, ts, id)
		if v.Status == want {
			return v
		}
		if v.Status.terminal() {
			t.Fatalf("job %s reached %s (err=%q), want %s", id, v.Status, v.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobView{}
}

func getArtifact(t *testing.T, ts *httptest.Server, id string) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/artifact")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET artifact %s: %s (%s)", id, resp.Status, b)
	}
	return string(b)
}

// streamEvents consumes the whole JSONL event stream and returns the decoded
// events in arrival order.
func streamEvents(t *testing.T, ts *httptest.Server, id string) []Event {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET events %s: %s", id, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/jsonl") {
		t.Errorf("events content-type = %q", ct)
	}
	var evs []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	return evs
}

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Manager) {
	t.Helper()
	m := NewManager(cfg)
	ts := httptest.NewServer(NewServer(m))
	t.Cleanup(func() { ts.Close(); m.Stop() })
	return ts, m
}

// TestServerLifecyclePerKind drives submit → poll → stream → artifact over
// HTTP for each job kind.
func TestServerLifecyclePerKind(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 2, Parallel: 2})
	cases := []struct {
		name, body, wantInArtifact string
		wantCells                  bool // serial experiments report no cells
	}{
		{"experiments", `{"kind":"experiments","experiments":{"ids":["E1"],"quick":true}}`, "E1", false},
		{"fault", `{"kind":"fault","fault":{"shape":"4x4","fails":["rtc:1,1@40"],"pattern":"shift+5","waves":2,"inject":{"retransmit":true}}}`, "outcome: drained", true},
		{"campaign", `{"kind":"campaign","campaign":{"shape":"4x4","epochs":[12],"patterns":["shift+5"],"inject":{"retransmit":true}}}`, "single-fault campaign", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sub, resp := postJob(t, ts, tc.body)
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit: %s (%+v)", resp.Status, sub)
			}
			if sub.ID == "" || sub.Deduped {
				t.Fatalf("submit response: %+v", sub)
			}
			v := waitHTTPStatus(t, ts, sub.ID, StatusDone)
			if v.ArtifactBytes == 0 {
				t.Errorf("done view lacks artifact size: %+v", v)
			}
			if tc.wantCells && (v.Cells == 0 || v.Cycles == 0) {
				t.Errorf("done view lacks totals: %+v", v)
			}
			artifact := getArtifact(t, ts, sub.ID)
			if len(artifact) != v.ArtifactBytes {
				t.Errorf("artifact length %d != reported %d", len(artifact), v.ArtifactBytes)
			}
			if !strings.Contains(artifact, tc.wantInArtifact) {
				t.Errorf("artifact missing %q:\n%s", tc.wantInArtifact, artifact)
			}
			evs := streamEvents(t, ts, sub.ID)
			for i, ev := range evs {
				if ev.Seq != int64(i) {
					t.Fatalf("event %d has seq %d", i, ev.Seq)
				}
			}
			if evs[0].Type != "queued" || evs[len(evs)-1].Type != "done" {
				t.Errorf("stream endpoints: %s ... %s", evs[0].Type, evs[len(evs)-1].Type)
			}
			hasStarted := false
			for _, ev := range evs {
				hasStarted = hasStarted || ev.Type == "started"
			}
			if !hasStarted {
				t.Errorf("stream has no started event: %+v", evs)
			}
		})
	}
}

func TestServerRejectsBadSpecWithField(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1, Parallel: 1})
	sub, resp := postJob(t, ts, `{"kind":"fault","fault":{"shape":"4x4","fails":["rtc:9,9@40"],"pattern":"reverse"}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: %s", resp.Status)
	}
	if sub.Field != "fault.fails[0]" {
		t.Errorf("field = %q, want fault.fails[0] (%+v)", sub.Field, sub)
	}
}

func TestServerCancelMidRun(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1, Parallel: 1})
	body := `{"kind":"fault","fault":{"shape":"4x4","fails":["rtc:1,1@40"],"pattern":"shift+5","waves":1048576,"gap":200,"horizon":1073741824}}`
	sub, _ := postJob(t, ts, body)
	waitHTTPStatus(t, ts, sub.ID, StatusRunning)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+sub.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: %s", resp.Status)
	}
	waitHTTPStatus(t, ts, sub.ID, StatusCanceled)

	// The stream of a canceled job terminates with a canceled event.
	evs := streamEvents(t, ts, sub.ID)
	if evs[len(evs)-1].Type != "canceled" {
		t.Errorf("canceled stream ends with %s", evs[len(evs)-1].Type)
	}

	// The worker is free again: a quick job completes.
	sub2, _ := postJob(t, ts, `{"kind":"fault","fault":{"shape":"4x4","fails":["rtc:1,1@40"],"pattern":"shift+5","waves":2,"inject":{"retransmit":true}}}`)
	waitHTTPStatus(t, ts, sub2.ID, StatusDone)
}

func TestServerQueueFull429(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Parallel: 1})
	long := func(gap int) string {
		return `{"kind":"fault","fault":{"shape":"4x4","fails":["rtc:1,1@40"],"pattern":"shift+5","waves":1048576,"gap":` +
			strconv.Itoa(gap) + `,"horizon":1073741824}}`
	}
	subA, _ := postJob(t, ts, long(201))
	waitHTTPStatus(t, ts, subA.ID, StatusRunning)
	if _, resp := postJob(t, ts, long(202)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %s", resp.Status)
	}
	sub, resp := postJob(t, ts, long(203))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: %s, want 429", resp.Status)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want integer >= 1", resp.Header.Get("Retry-After"))
	}
	if sub.Error == "" {
		t.Error("429 body has no error message")
	}
}

func TestServerDedupeSharesExecution(t *testing.T) {
	ts, m := newTestServer(t, Config{Workers: 2, Parallel: 2})
	body := `{"kind":"fault","fault":{"shape":"4x4","fails":["rtc:1,1@40"],"pattern":"shift+5","waves":2,"inject":{"retransmit":true}}}`
	subA, _ := postJob(t, ts, body)
	// Cosmetically different spelling of the same spec.
	subB, _ := postJob(t, ts, `{"kind":"fault","fault":{"shape":"4x4","fails":["rtc:1,1@40"],"pattern":"shift+5","waves":2,"gap":24,"horizon":50000,"inject":{"retransmit":true,"retry_after":64,"backoff":2,"max_retries":4}}}`)
	waitHTTPStatus(t, ts, subA.ID, StatusDone)
	waitHTTPStatus(t, ts, subB.ID, StatusDone)
	if a, b := getArtifact(t, ts, subA.ID), getArtifact(t, ts, subB.ID); a != b {
		t.Error("deduped jobs returned different artifacts")
	}
	if ex := m.Metrics().Executions; ex != 1 {
		t.Errorf("executions = %d, want 1 (dedupe failed)", ex)
	}
}

func TestServerHealthzAndDrain(t *testing.T) {
	ts, m := newTestServer(t, Config{Workers: 1, Parallel: 1})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %s", path, resp.Status)
		}
	}

	// A mid-length job: drain must let it finish.
	sub, _ := postJob(t, ts, `{"kind":"fault","fault":{"shape":"4x4","fails":["rtc:1,1@40"],"pattern":"shift+5","waves":20000,"gap":100,"horizon":1073741824}}`)
	waitHTTPStatus(t, ts, sub.ID, StatusRunning)
	m.Drain()

	if v := getJob(t, ts, sub.ID); v.Status != StatusDone {
		t.Errorf("job after drain: %s (err=%q), want done", v.Status, v.Error)
	}
	// Liveness stays green while draining — restarting a draining worker
	// would lose the jobs it is finishing. Readiness goes 503 and says why.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz while draining: %s, want 200 (liveness only)", resp.Status)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: %s, want 503", resp.Status)
	}
	if !strings.Contains(string(body), "draining") {
		t.Errorf("readyz body %q does not name the draining state", body)
	}
	if _, resp := postJob(t, ts, `{"kind":"experiments","experiments":{"ids":["E1"],"quick":true}}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: %s, want 503", resp.Status)
	}
}

func TestServerMetrics(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1, Parallel: 1})
	sub, _ := postJob(t, ts, `{"kind":"fault","fault":{"shape":"4x4","fails":["rtc:1,1@40"],"pattern":"shift+5","waves":2,"inject":{"retransmit":true}}}`)
	waitHTTPStatus(t, ts, sub.ID, StatusDone)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mt map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&mt); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"jobs_submitted", "executions", "done", "cycles_done", "job_duration_count"} {
		v, ok := mt[key].(float64)
		if !ok || v < 1 {
			t.Errorf("metrics[%q] = %v, want >= 1", key, mt[key])
		}
	}
}

// TestServerReconfigObservability runs a fault job with online
// reconfiguration enabled end to end over HTTP and asserts the committed
// swap surfaces everywhere the recovery counters do: the job view, the
// event stream (one unthrottled "reconfig" event per outcome) and /metrics.
func TestServerReconfigObservability(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1, Parallel: 1})
	sub, _ := postJob(t, ts, `{"kind":"fault","fault":{"shape":"4x4","fails":["rtc:2,1@40"],"pattern":"shift+5","waves":2,"inject":{"retransmit":true},"reconfig":{"mode":"fault"}}}`)
	v := waitHTTPStatus(t, ts, sub.ID, StatusDone)
	if v.Reconfigured != 1 || v.ReconfigFellBack != 0 {
		t.Errorf("job view reconfig counters = (%d committed, %d drained, %d fellback), want (1, 0, 0)",
			v.Reconfigured, v.ReconfigDrained, v.ReconfigFellBack)
	}
	artifact := getArtifact(t, ts, sub.ID)
	if !strings.Contains(artifact, "hot swap to epoch 1") {
		t.Errorf("artifact missing the hot-swap line:\n%s", artifact)
	}
	evs := streamEvents(t, ts, sub.ID)
	reconfigEvents := 0
	for _, ev := range evs {
		if ev.Type == "reconfig" {
			reconfigEvents++
			if ev.Reconfigured != 1 {
				t.Errorf("reconfig event carries cumulative count %d, want 1", ev.Reconfigured)
			}
		}
	}
	if reconfigEvents != 1 {
		t.Errorf("stream has %d reconfig events, want 1: %+v", reconfigEvents, evs)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mt map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&mt); err != nil {
		t.Fatal(err)
	}
	if got, ok := mt["reconfigured_done"].(float64); !ok || got != 1 {
		t.Errorf("metrics[reconfigured_done] = %v, want 1", mt["reconfigured_done"])
	}
	if got, ok := mt["reconfig_fellback_done"].(float64); !ok || got != 0 {
		t.Errorf("metrics[reconfig_fellback_done] = %v, want 0", mt["reconfig_fellback_done"])
	}
}

func TestServerEventsResume(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1, Parallel: 1})
	sub, _ := postJob(t, ts, `{"kind":"fault","fault":{"shape":"4x4","fails":["rtc:1,1@40"],"pattern":"shift+5","waves":2,"inject":{"retransmit":true}}}`)
	waitHTTPStatus(t, ts, sub.ID, StatusDone)
	all := streamEvents(t, ts, sub.ID)
	if len(all) < 2 {
		t.Fatalf("too few events: %+v", all)
	}
	// Resuming from seq 1 yields exactly the suffix.
	resp, err := http.Get(ts.URL + "/jobs/" + sub.ID + "/events?from=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		got = append(got, ev)
	}
	if len(got) != len(all)-1 || got[0].Seq != 1 {
		t.Errorf("resume from=1: got %d events starting at seq %d, want %d starting at 1",
			len(got), got[0].Seq, len(all)-1)
	}
}

func TestServerNotFound(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1, Parallel: 1})
	for _, path := range []string{"/jobs/j999999", "/jobs/j999999/artifact", "/jobs/j999999/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: %s, want 404", path, resp.Status)
		}
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/j999999", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown job: %s, want 404", resp.Status)
	}
}

// TestAdaptiveRetryAfter pins the adaptive 429 hint: the observed drain
// rate (ring of recent completion timestamps) extrapolated over the queue
// in front of the shed client, clamped to [1, 600] seconds.
func TestAdaptiveRetryAfter(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	ring := func(n int, gap time.Duration) []time.Time {
		out := make([]time.Time, n)
		for i := range out {
			out[i] = base.Add(time.Duration(i) * gap)
		}
		return out
	}
	cases := []struct {
		name   string
		queued int64
		drains []time.Time
		now    time.Time
		secs   int
		ok     bool
	}{
		// No rate yet: zero or one completion observed — fall back.
		{"no samples", 5, nil, base, 0, false},
		{"one sample", 5, ring(1, time.Second), base, 0, false},
		// 6 completions 1s apart ending now: 5 drained over 5s = 1/s.
		// 9 queued ahead plus this client = ceil(10/1) = 10s.
		{"steady rate", 9, ring(6, time.Second), base.Add(5 * time.Second), 10, true},
		// Same rate, empty queue: one slot to drain, 1s.
		{"empty queue", 0, ring(6, time.Second), base.Add(5 * time.Second), 1, true},
		// Fast drain rounds up to the 1s floor.
		{"floor", 0, ring(32, time.Millisecond), base.Add(31 * time.Millisecond), 1, true},
		// Slow drain: 1 completion per 100s, 99 queued -> clamp at 600.
		{"clamp", 99, ring(2, 100*time.Second), base.Add(100 * time.Second), 600, true},
		// Clock skew (drains newer than now) degrades to the floor.
		{"skew", 7, ring(4, time.Second), base.Add(-time.Minute), 1, true},
	}
	for _, tc := range cases {
		secs, ok := adaptiveRetryAfter(tc.queued, tc.drains, tc.now)
		if secs != tc.secs || ok != tc.ok {
			t.Errorf("%s: adaptiveRetryAfter(%d, %d drains) = (%d, %v), want (%d, %v)",
				tc.name, tc.queued, len(tc.drains), secs, ok, tc.secs, tc.ok)
		}
	}
}

// TestServerReadyzDegraded: a worker that loses its state dir keeps
// serving (healthz 200) but fails readiness with the degradation named.
func TestServerReadyzDegraded(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "state")
	ts, m := newTestServer(t, Config{Workers: 1, Parallel: 1, StateDir: dir, WorkerID: "wz"})

	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with lost state dir: %s, want 503 (body %q)", resp.Status, body)
	}
	if !strings.Contains(string(body), "state dir") && !strings.Contains(string(body), "degraded") {
		t.Errorf("readyz body %q does not name the state-dir loss", body)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz while degraded: %s, want 200 (liveness only)", resp.Status)
	}
	if degraded, _ := m.Degraded(); !degraded {
		t.Error("manager did not report degraded after the probe failure")
	}
}
