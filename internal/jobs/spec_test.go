package jobs

import (
	"errors"
	"strings"
	"testing"
)

func TestDecodeSpecNormalizesAndCanonicalizes(t *testing.T) {
	// Two cosmetically different submissions of the same work must share a
	// canonical encoding (they dedupe to one execution).
	a, err := DecodeSpec([]byte(`{"kind":"experiments","experiments":{"ids":["e1"," f1 "]}}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := DecodeSpec([]byte(`{"kind":"experiments","experiments":{"ids":["E1","F1"],"quick":false}}`))
	if err != nil {
		t.Fatal(err)
	}
	if a.Canonical() != b.Canonical() {
		t.Errorf("canonical mismatch:\n%s\n%s", a.Canonical(), b.Canonical())
	}
	if got := a.Experiments.IDs; got[0] != "E1" || got[1] != "F1" {
		t.Errorf("ids not canonicalized: %v", got)
	}
}

func TestDecodeSpecAppliesCLIDefaults(t *testing.T) {
	s, err := DecodeSpec([]byte(`{"kind":"fault","fault":{"shape":"4x4","fails":["rtc:1,1@40"],"pattern":"shift+5","inject":{"retransmit":true}}}`))
	if err != nil {
		t.Fatal(err)
	}
	f := s.Fault
	if f.Waves != 4 || f.Gap != 24 || f.Horizon != 50_000 {
		t.Errorf("wave defaults not applied: %+v", f)
	}
	if f.Inject.RetryAfter != 64 || f.Inject.Backoff != 2 || f.Inject.MaxRetries != 4 {
		t.Errorf("inject defaults not applied: %+v", f.Inject)
	}
	// An explicit spelling of the defaults canonicalizes identically.
	s2, err := DecodeSpec([]byte(`{"kind":"fault","fault":{"shape":"4x4","fails":["rtc:1,1@40"],"pattern":"shift+5","waves":4,"gap":24,"horizon":50000,"inject":{"retransmit":true,"retry_after":64,"backoff":2,"max_retries":4}}}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Canonical() != s2.Canonical() {
		t.Errorf("defaulted and explicit specs diverge:\n%s\n%s", s.Canonical(), s2.Canonical())
	}
}

func TestDecodeSpecRejectionsNameTheField(t *testing.T) {
	cases := []struct {
		name, body, wantField string
	}{
		{"missing kind", `{}`, "kind"},
		{"unknown kind", `{"kind":"bogus"}`, "kind"},
		{"kind without payload", `{"kind":"fault"}`, "fault"},
		{"mismatched payload", `{"kind":"fault","fault":{"shape":"4x4","fails":["rtc:1,1@40"],"pattern":"reverse"},"campaign":{"shape":"4x4","epochs":[1],"patterns":["reverse"]}}`, "campaign"},
		{"unknown field", `{"kind":"experiments","experiments":{"ids":["E1"],"wat":1}}`, "wat"},
		{"type mismatch", `{"kind":"experiments","experiments":{"ids":"E1"}}`, "experiments.ids"},
		{"empty ids", `{"kind":"experiments","experiments":{"ids":[]}}`, "experiments.ids"},
		{"unknown experiment", `{"kind":"experiments","experiments":{"ids":["E1","Z9"]}}`, "experiments.ids[1]"},
		{"bad shape", `{"kind":"fault","fault":{"shape":"4xx4","fails":["rtc:1,1@40"],"pattern":"reverse"}}`, "fault.shape"},
		{"huge shape", `{"kind":"fault","fault":{"shape":"4096x4096","fails":["rtc:1,1@40"],"pattern":"reverse"}}`, "fault.shape"},
		{"bad fail spec", `{"kind":"fault","fault":{"shape":"4x4","fails":["rtc:9,9@40"],"pattern":"reverse"}}`, "fault.fails[0]"},
		{"bad pattern", `{"kind":"fault","fault":{"shape":"4x4","fails":["rtc:1,1@40"],"pattern":"spiral"}}`, "fault.pattern"},
		{"negative waves", `{"kind":"fault","fault":{"shape":"4x4","fails":["rtc:1,1@40"],"pattern":"reverse","waves":-1}}`, "fault.waves"},
		{"negative epoch", `{"kind":"campaign","campaign":{"shape":"4x4","epochs":[-3],"patterns":["reverse"]}}`, "campaign.epochs[0]"},
		{"empty patterns", `{"kind":"campaign","campaign":{"shape":"4x4","epochs":[1],"patterns":[]}}`, "campaign.patterns"},
		{"bad inject", `{"kind":"campaign","campaign":{"shape":"4x4","epochs":[1],"patterns":["reverse"],"inject":{"backoff":-2}}}`, "campaign.inject.backoff"},
		{"recovery tuning without enable", `{"kind":"fault","fault":{"shape":"4x4","fails":["rtc:1,1@40"],"pattern":"reverse","recovery":{"stall_threshold":256}}}`, "fault.recovery"},
		{"recovery cap over ceiling", `{"kind":"fault","fault":{"shape":"4x4","fails":["rtc:1,1@40"],"pattern":"reverse","recovery":{"enabled":true,"max_recoveries":65}}}`, "fault.recovery.max_recoveries"},
		{"bad preset", `{"kind":"fault","fault":{"shape":"4x4","presets":["rtc:9,9"],"pattern":"reverse"}}`, "fault.presets[0]"},
		{"bad broadcast", `{"kind":"fault","fault":{"shape":"4x4","broadcasts":["3,2"],"pattern":"reverse"}}`, "fault.broadcasts[0]"},
		{"dxb without separate", `{"kind":"fault","fault":{"shape":"4x4","fails":["rtc:1,1@40"],"pattern":"reverse","variant":{"dxb":"0,3"}}}`, "fault.variant.dxb"},
		{"sxb outside shape", `{"kind":"campaign","campaign":{"shape":"4x4","epochs":[1],"patterns":["reverse"],"variant":{"sxb":"0,7"}}}`, "campaign.variant.sxb"},
		{"bad pair pattern", `{"kind":"fault","fault":{"shape":"4x4","fails":["rtc:1,1@40"],"pattern":"pair:0,1>0,1"}}`, "fault.pattern"},
		{"negative vcs", `{"kind":"fault","fault":{"shape":"4x4","fails":["rtc:1,1@40"],"pattern":"reverse","variant":{"vcs":-1}}}`, "fault.variant.vcs"},
		{"vcs over ceiling", `{"kind":"fault","fault":{"shape":"4x4","fails":["rtc:1,1@40"],"pattern":"reverse","variant":{"vcs":9,"adaptive":true}}}`, "fault.variant.vcs"},
		{"vcs without adaptive", `{"kind":"fault","fault":{"shape":"4x4","fails":["rtc:1,1@40"],"pattern":"reverse","variant":{"vcs":2}}}`, "fault.variant.vcs"},
		{"adaptive without lanes", `{"kind":"campaign","campaign":{"shape":"4x4","epochs":[1],"patterns":["reverse"],"variant":{"adaptive":true}}}`, "campaign.variant.vcs"},
		{"adaptive on separate dxb", `{"kind":"fault","fault":{"shape":"4x4","fails":["rtc:1,1@40"],"pattern":"reverse","variant":{"vcs":2,"adaptive":true,"dxb_separate":true}}}`, "fault.variant.adaptive"},
		{"vcs on direct-link topology", `{"kind":"fault","fault":{"shape":"4x4","topology":"hyperx","fails":["link:0,0-3,0@60"],"pattern":"reverse","variant":{"vcs":2,"adaptive":true}}}`, "fault.variant"},
		{"unknown reconfig mode", `{"kind":"fault","fault":{"shape":"4x4","fails":["rtc:1,1@40"],"pattern":"reverse","reconfig":{"mode":"always"}}}`, "fault.reconfig"},
		{"reconfig budget without mode", `{"kind":"fault","fault":{"shape":"4x4","fails":["rtc:1,1@40"],"pattern":"reverse","reconfig":{"drain_budget":8}}}`, "fault.reconfig"},
		{"negative reconfig budget", `{"kind":"campaign","campaign":{"shape":"4x4","epochs":[1],"patterns":["reverse"],"reconfig":{"mode":"both","drain_budget":-1}}}`, "campaign.reconfig"},
		{"reconfig budget over ceiling", `{"kind":"fault","fault":{"shape":"4x4","fails":["rtc:1,1@40"],"pattern":"reverse","reconfig":{"mode":"fault","drain_budget":1048577}}}`, "fault.reconfig.drain_budget"},
		{"reconfig on direct-link topology", `{"kind":"fault","fault":{"shape":"4x4","topology":"hyperx","fails":["link:0,0-3,0@60"],"pattern":"reverse","reconfig":{"mode":"fault"}}}`, "fault.reconfig.mode"},
		{"reconfig with adaptive vcs", `{"kind":"campaign","campaign":{"shape":"4x4","epochs":[1],"patterns":["reverse"],"variant":{"vcs":2,"adaptive":true},"reconfig":{"mode":"deadlock"}}}`, "campaign.reconfig.mode"},
		{"trailing data", `{"kind":"experiments","experiments":{"ids":["E1"]}} {"x":1}`, "body"},
		{"not json", `hello`, "body"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeSpec([]byte(tc.body))
			if err == nil {
				t.Fatal("accepted invalid spec")
			}
			var fe *FieldError
			if !errors.As(err, &fe) {
				t.Fatalf("rejection is not a FieldError: %v", err)
			}
			if fe.Field != tc.wantField {
				t.Errorf("field = %q, want %q (%v)", fe.Field, tc.wantField, err)
			}
		})
	}
}

// TestDecodeSpecVCsCanonicalization pins the dedup rule for the degenerate
// lane count: an explicit "vcs": 1 names the same machine as an absent
// field, so the two specs must canonicalize identically (one cache entry,
// one job identity).
func TestDecodeSpecVCsCanonicalization(t *testing.T) {
	one, err := DecodeSpec([]byte(`{"kind":"fault","fault":{"shape":"4x4","fails":["rtc:1,1@40"],"pattern":"reverse","variant":{"vcs":1}}}`))
	if err != nil {
		t.Fatal(err)
	}
	absent, err := DecodeSpec([]byte(`{"kind":"fault","fault":{"shape":"4x4","fails":["rtc:1,1@40"],"pattern":"reverse"}}`))
	if err != nil {
		t.Fatal(err)
	}
	if one.Canonical() != absent.Canonical() {
		t.Errorf("vcs:1 and absent vcs canonicalize differently:\n%s\n%s", one.Canonical(), absent.Canonical())
	}
}

func TestDecodeSpecAllKeyword(t *testing.T) {
	s, err := DecodeSpec([]byte(`{"kind":"experiments","experiments":{"ids":["ALL"]}}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Experiments.IDs) != 1 || s.Experiments.IDs[0] != "all" {
		t.Errorf("all keyword not canonicalized: %v", s.Experiments.IDs)
	}
	if !strings.Contains(s.Canonical(), `"all"`) {
		t.Errorf("canonical missing all keyword: %s", s.Canonical())
	}
}
