package jobs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// quickFaultSpec is a single-fault run that drains in well under a second.
func quickFaultSpec(gap int64) Spec {
	return Spec{Kind: KindFault, Fault: &FaultSpec{
		Shape:   "4x4",
		Fails:   []string{"rtc:1,1@40"},
		Pattern: "shift+5",
		Waves:   2,
		Gap:     gap,
		Inject:  InjectSpec{Retransmit: true},
	}}
}

// longFaultSpec keeps a worker busy for ~minutes unless canceled: a
// continuous wave schedule under a huge horizon.
func longFaultSpec(gap int64) Spec {
	return Spec{Kind: KindFault, Fault: &FaultSpec{
		Shape:   "4x4",
		Fails:   []string{"rtc:1,1@40"},
		Pattern: "shift+5",
		Waves:   1 << 20,
		Gap:     gap,
		Horizon: maxHorizon,
	}}
}

// waitStatus polls until the job reaches want or the deadline expires.
func waitStatus(t *testing.T, m *Manager, id string, want Status) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v, err := m.Lookup(id)
		if err != nil {
			t.Fatalf("lookup %s: %v", id, err)
		}
		if v.Status == want {
			return v
		}
		if v.Status.terminal() {
			t.Fatalf("job %s reached %s (err=%q), want %s", id, v.Status, v.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobView{}
}

func TestSubmitRunsToCompletion(t *testing.T) {
	m := NewManager(Config{Workers: 1, Parallel: 1})
	defer m.Stop()
	id, deduped, err := m.Submit(quickFaultSpec(24))
	if err != nil || deduped {
		t.Fatalf("submit: id=%s deduped=%v err=%v", id, deduped, err)
	}
	waitStatus(t, m, id, StatusDone)
	artifact, ok, err := m.Artifact(id)
	if err != nil || !ok || len(artifact) == 0 {
		t.Fatalf("artifact: ok=%v err=%v len=%d", ok, err, len(artifact))
	}
}

func TestCancelMidRunFreesWorker(t *testing.T) {
	m := NewManager(Config{Workers: 1, Parallel: 1})
	defer m.Stop()
	id, _, err := m.Submit(longFaultSpec(100))
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, id, StatusRunning)
	if err := m.Cancel(id); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, id, StatusCanceled)
	// The single worker must be free again: a quick job completes.
	id2, _, err := m.Submit(quickFaultSpec(24))
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, id2, StatusDone)
}

func TestQueueFullShedsLoad(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueDepth: 1, Parallel: 1})
	defer m.Stop()
	idA, _, err := m.Submit(longFaultSpec(101))
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, idA, StatusRunning) // worker took A; queue empty
	if _, _, err := m.Submit(longFaultSpec(102)); err != nil {
		t.Fatalf("queued submission refused: %v", err)
	}
	if _, _, err := m.Submit(longFaultSpec(103)); err != ErrQueueFull {
		t.Fatalf("expected ErrQueueFull, got %v", err)
	}
	// Identical specs dedupe instead of being shed: attaching to the
	// running execution needs no queue slot.
	if _, deduped, err := m.Submit(longFaultSpec(101)); err != nil || !deduped {
		t.Fatalf("dedupe under full queue: deduped=%v err=%v", deduped, err)
	}
}

func TestDrainCompletesRunningAndRefusesNew(t *testing.T) {
	m := NewManager(Config{Workers: 1, Parallel: 1})
	// A ~2M-cycle run: long enough to be mid-run when Drain starts.
	spec := Spec{Kind: KindFault, Fault: &FaultSpec{
		Shape:   "4x4",
		Fails:   []string{"rtc:1,1@40"},
		Pattern: "shift+5",
		Waves:   20_000,
		Gap:     100,
		Horizon: maxHorizon,
	}}
	id, _, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, id, StatusRunning)
	m.Drain()
	if v, _ := m.Lookup(id); v.Status != StatusDone {
		t.Errorf("drained job status = %s, want done (err=%q)", v.Status, v.Error)
	}
	if _, _, err := m.Submit(quickFaultSpec(24)); err != ErrDraining {
		t.Errorf("submission during drain: err=%v, want ErrDraining", err)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueDepth: 4, Parallel: 1})
	defer m.Stop()
	idA, _, err := m.Submit(longFaultSpec(104))
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, idA, StatusRunning)
	idB, _, err := m.Submit(longFaultSpec(105))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(idB); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Lookup(idB); v.Status != StatusCanceled {
		t.Errorf("queued job after cancel: %s, want canceled", v.Status)
	}
	if err := m.Cancel(idA); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, idA, StatusCanceled)
}

// TestConcurrentSubmissions is the -race workhorse: 32 goroutines race 32
// submissions of 4 overlapping specs. No job may be lost or duplicated,
// deduped jobs must share one execution per distinct spec, every stream
// must be strictly ordered, and all same-spec artifacts must be identical.
func TestConcurrentSubmissions(t *testing.T) {
	m := NewManager(Config{Workers: 4, QueueDepth: 32, Parallel: 4})
	defer m.Stop()
	const goroutines = 32
	specs := []Spec{quickFaultSpec(24), quickFaultSpec(25), quickFaultSpec(26), quickFaultSpec(27)}

	ids := make([]string, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			id, _, err := m.Submit(specs[g%len(specs)])
			if err != nil {
				t.Errorf("submit %d: %v", g, err)
				return
			}
			ids[g] = id
		}(g)
	}
	wg.Wait()

	// No lost or duplicated jobs.
	seen := map[string]bool{}
	for g, id := range ids {
		if id == "" {
			t.Fatalf("goroutine %d lost its job", g)
		}
		if seen[id] {
			t.Fatalf("job id %s handed out twice", id)
		}
		seen[id] = true
	}

	artifacts := map[int][]byte{}
	for g, id := range ids {
		waitStatus(t, m, id, StatusDone)
		a, ok, err := m.Artifact(id)
		if err != nil || !ok {
			t.Fatalf("artifact %s: ok=%v err=%v", id, ok, err)
		}
		k := g % len(specs)
		if prev, dup := artifacts[k]; dup {
			if string(prev) != string(a) {
				t.Errorf("same-spec artifacts diverged for spec %d", k)
			}
		} else {
			artifacts[k] = a
		}
		// Strict event ordering: seq is exactly 0..n-1.
		evs, terminal, _, err := m.Events(id, 0)
		if err != nil || !terminal {
			t.Fatalf("events %s: terminal=%v err=%v", id, terminal, err)
		}
		for i, ev := range evs {
			if ev.Seq != int64(i) {
				t.Fatalf("job %s event %d has seq %d", id, i, ev.Seq)
			}
		}
		if evs[0].Type != "queued" || !Status(evs[len(evs)-1].Type).terminal() {
			t.Errorf("job %s stream endpoints: %s ... %s", id, evs[0].Type, evs[len(evs)-1].Type)
		}
	}

	mt := m.Metrics()
	if mt.Executions != int64(len(specs)) {
		t.Errorf("executions = %d, want %d (cache failed to dedupe)", mt.Executions, len(specs))
	}
	if mt.Submitted != goroutines {
		t.Errorf("submitted = %d, want %d", mt.Submitted, goroutines)
	}
	if mt.Deduped != goroutines-int64(len(specs)) {
		t.Errorf("deduped = %d, want %d", mt.Deduped, goroutines-len(specs))
	}
	if got := fmt.Sprint(mt.CacheHitRate); got != fmt.Sprint(float64(mt.Deduped)/float64(mt.Submitted)) {
		t.Errorf("cache hit rate %s inconsistent", got)
	}
}
