package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"
)

// maxSpecBytes bounds one POST /jobs body.
const maxSpecBytes = 1 << 20

// NewServer wraps a Manager in the mdxserve HTTP API:
//
//	POST   /jobs             submit a spec, 202 + {id, status, deduped}
//	GET    /jobs/{id}        job status JSON
//	GET    /jobs/{id}/artifact  the report artifact (byte-identical to the CLI)
//	GET    /jobs/{id}/events statusless JSONL stream of ordered events
//	DELETE /jobs/{id}        cancel
//	GET    /healthz          liveness: "ok" while the process serves at all
//	GET    /readyz           readiness: "ready" | 503 + one reason per line
//	GET    /metrics          queue/cache/throughput counters JSON
//
// Liveness vs readiness: /healthz answers 200 whenever the process can
// answer anything — a draining or degraded worker is still alive, and
// restarting it would lose its queue. /readyz answers 503 (and names why:
// draining, state dir lost or unwritable, queue full, stale lease
// renewal) whenever a load balancer should route new submissions
// elsewhere. Load shedding: a full queue answers 429 with a Retry-After
// hint derived from the observed recent drain rate; a draining server
// answers 503.
func NewServer(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		spec, err := ReadSpec(r.Body, maxSpecBytes)
		if err != nil {
			writeFieldError(w, err)
			return
		}
		id, deduped, err := m.Submit(spec)
		switch {
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(m)))
			writeJSON(w, http.StatusTooManyRequests, map[string]any{"error": err.Error()})
			return
		case errors.Is(err, ErrDraining):
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": err.Error()})
			return
		case err != nil:
			writeFieldError(w, err)
			return
		}
		view, _ := m.Lookup(id)
		writeJSON(w, http.StatusAccepted, map[string]any{
			"id": id, "status": view.Status, "deduped": deduped,
		})
	})

	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		view, err := m.Lookup(r.PathValue("id"))
		if errors.Is(err, ErrNotFound) {
			writeJSON(w, http.StatusNotFound, map[string]any{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, view)
	})

	mux.HandleFunc("GET /jobs/{id}/artifact", func(w http.ResponseWriter, r *http.Request) {
		artifact, ready, err := m.Artifact(r.PathValue("id"))
		if errors.Is(err, ErrNotFound) {
			writeJSON(w, http.StatusNotFound, map[string]any{"error": err.Error()})
			return
		}
		if !ready {
			writeJSON(w, http.StatusConflict, map[string]any{"error": "artifact not ready"})
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		w.Write(artifact)
	})

	mux.HandleFunc("GET /jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		from := int64(0)
		if q := r.URL.Query().Get("from"); q != "" {
			v, err := strconv.ParseInt(q, 10, 64)
			if err != nil || v < 0 {
				writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad from parameter"})
				return
			}
			from = v
		}
		evs, terminal, _, err := m.Events(id, from)
		if errors.Is(err, ErrNotFound) {
			writeJSON(w, http.StatusNotFound, map[string]any{"error": err.Error()})
			return
		}
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		w.Header().Set("X-Content-Type-Options", "nosniff")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		next := from
		for {
			for _, ev := range evs {
				enc.Encode(ev)
				next = ev.Seq + 1
			}
			if flusher != nil {
				flusher.Flush()
			}
			if terminal {
				// A job canceled while its deduped execution runs on ends
				// its own stream with a synthetic cancel record.
				if m.JobCanceled(id) {
					last := Event{Seq: next, Type: "canceled"}
					if len(evs) == 0 || evs[len(evs)-1].Type != "canceled" {
						enc.Encode(last)
						if flusher != nil {
							flusher.Flush()
						}
					}
				}
				return
			}
			var notify <-chan struct{}
			evs, terminal, notify, err = m.Events(id, next)
			if err != nil {
				return
			}
			if len(evs) == 0 && !terminal {
				select {
				case <-notify:
				case <-r.Context().Done():
					return
				}
				evs, terminal, _, err = m.Events(id, next)
				if err != nil {
					return
				}
			}
		}
	})

	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := m.Cancel(id); errors.Is(err, ErrNotFound) {
			writeJSON(w, http.StatusNotFound, map[string]any{"error": err.Error()})
			return
		}
		view, _ := m.Lookup(id)
		writeJSON(w, http.StatusOK, view)
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// Pure liveness: the process is up and serving. Draining and
		// degraded states are readiness concerns — killing a draining
		// worker would lose the jobs it is finishing.
		fmt.Fprintln(w, "ok")
	})

	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		ready, reasons := m.Readiness()
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
			for _, reason := range reasons {
				fmt.Fprintln(w, reason)
			}
			return
		}
		fmt.Fprintln(w, "ready")
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Metrics())
	})

	return mux
}

// maxRetryAfterSeconds caps the 429 hint: past ten minutes a client
// should poll, not trust an extrapolation.
const maxRetryAfterSeconds = 600

// retryAfterSeconds estimates when a shed client should come back. The
// primary signal is the observed drain rate — the ring of recent
// execution-completion timestamps — extrapolated over the queued work.
// Before enough completions have been observed, it falls back to the mean
// job duration divided over the pool (at least one second).
func retryAfterSeconds(m *Manager) int {
	if secs, ok := adaptiveRetryAfter(m.Metrics().Queued, m.drainTimes(), time.Now()); ok {
		return secs
	}
	mt := m.Metrics()
	if mt.DurationCount == 0 || mt.Workers == 0 {
		return 1
	}
	est := time.Duration(mt.DurationMean*float64(mt.Queued+1)/float64(mt.Workers)) * time.Millisecond
	if est < time.Second {
		return 1
	}
	secs := int(est / time.Second)
	if secs > maxRetryAfterSeconds {
		secs = maxRetryAfterSeconds
	}
	return secs
}

// adaptiveRetryAfter derives the Retry-After hint from the observed drain
// rate: with the ring holding n completion timestamps (oldest first), the
// fleet recently drained n-1 executions over the ring's span, and the
// shed client's work lands behind queued others. ok is false until two
// completions have been observed (no rate yet). The hint is clamped to
// [1, maxRetryAfterSeconds].
func adaptiveRetryAfter(queued int64, drains []time.Time, now time.Time) (int, bool) {
	if len(drains) < 2 {
		return 0, false
	}
	span := now.Sub(drains[0])
	if span <= 0 {
		return 1, true
	}
	rate := float64(len(drains)-1) / span.Seconds() // completions per second
	if rate <= 0 {
		return maxRetryAfterSeconds, true
	}
	secs := int(math.Ceil(float64(queued+1) / rate))
	if secs < 1 {
		secs = 1
	}
	if secs > maxRetryAfterSeconds {
		secs = maxRetryAfterSeconds
	}
	return secs, true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeFieldError maps a validation rejection to 400 with the offending
// field named, so clients can fix the spec without grepping logs.
func writeFieldError(w http.ResponseWriter, err error) {
	var fe *FieldError
	if errors.As(err, &fe) {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": fe.Error(), "field": fe.Field})
		return
	}
	writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
}
