package jobs

// FuzzStateRescan extends the corrupt-equals-absent rule to every file the
// multi-worker state layer reads: truncated or bit-flipped spec, artifact,
// checksum, lease, claim, and poison files must never panic the store, and
// a rescan over them must land in a consistent state — every surviving
// execution's hash matches its spec, every served artifact passes its
// checksum, lease reads stay in range, and a second rescan is a fixed
// point. The seed corpus under testdata/fuzz/FuzzStateRescan commits the
// torn shapes a SIGKILLed fleet actually leaves.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func FuzzStateRescan(f *testing.F) {
	valid := []byte(`{"kind":"fault","fault":{"shape":"4x4","fails":["rtc:1,1@40"],"pattern":"shift+5"}}`)
	goodLease := []byte(`{"owner":"wa","epoch":1,"renewed_unix_ns":1}`)
	goodClaim := []byte(`{"owner":"wa","deaths":0}`)
	goodPoison := []byte(`{"deaths":3,"error":"3 owner(s) died mid-run"}`)
	f.Add(valid, []byte("artifact"), artifactSum([]byte("artifact")), goodLease, goodClaim, []byte{})
	f.Add(valid, []byte("artifact"), []byte("0000000000000000"), goodLease[:11], goodClaim[:5], goodPoison)
	f.Add(valid, []byte{}, []byte{}, []byte("{"), []byte("null"), []byte(`{"deaths":-1}`))
	f.Add([]byte("not json"), []byte("x"), []byte("y"), bytes.Repeat([]byte{0xff}, 40), []byte{0}, []byte("{}"))
	f.Add(valid, []byte{}, []byte{}, []byte(`{"owner":"wa","epoch":99,"renewed_unix_ns":9223372036854775807,"released":true}`), goodClaim, []byte{})

	f.Fuzz(func(t *testing.T, spec, artifact, sum, lease, claim, poison []byte) {
		dir := t.TempDir()
		st, err := openStateStore(dir, "wz")
		if err != nil {
			t.Fatal(err)
		}
		h := canonHash(string(spec))
		leaseDir := filepath.Join(st.execDir(h), "lease")
		if err := os.MkdirAll(leaseDir, 0o755); err != nil {
			t.Fatal(err)
		}
		// Raw writes, not writeAtomic: the point is simulating torn files.
		os.WriteFile(filepath.Join(st.execDir(h), "spec.json"), spec, 0o644)
		if len(artifact) > 0 {
			os.WriteFile(filepath.Join(st.execDir(h), "artifact"), artifact, 0o644)
			os.WriteFile(filepath.Join(st.execDir(h), "artifact.sum"), sum, 0o644)
		}
		os.WriteFile(filepath.Join(leaseDir, "claim-000001"), claim, 0o644)
		os.WriteFile(filepath.Join(leaseDir, "lease.json"), lease, 0o644)
		if len(poison) > 0 {
			os.WriteFile(filepath.Join(st.execDir(h), "poisoned.json"), poison, 0o644)
		}
		// Crash litter rescan must tolerate: an abandoned temp file, an exec
		// dir that is not a hash, and a stray non-directory entry.
		os.WriteFile(filepath.Join(st.execDir(h), "spec.json.tmp-123"), spec, 0o644)
		os.MkdirAll(filepath.Join(dir, "execs", "not-a-hash"), 0o755)
		os.WriteFile(filepath.Join(dir, "execs", "stray"), []byte("x"), 0o644)

		check := func(ttl time.Duration) {
			execs, _, err := st.rescan(ttl)
			if err != nil {
				t.Fatalf("rescan: %v", err)
			}
			for _, re := range execs {
				if canonHash(re.canonical) != re.hash {
					t.Fatalf("rescan surfaced exec whose hash does not match its spec")
				}
				if re.artifact != nil {
					art, ok := st.loadArtifact(re.hash)
					if !ok || !bytes.Equal(art, re.artifact) {
						t.Fatalf("rescan artifact disagrees with checksummed load")
					}
				}
				if re.poisoned != nil && (re.poisoned.Deaths < 0 || re.poisoned.Error == "") {
					t.Fatalf("rescan surfaced an invalid poison verdict: %+v", re.poisoned)
				}
			}
			info, err := st.leaseInfo(h)
			if err != nil {
				t.Fatalf("leaseInfo: %v", err)
			}
			if info.epoch < 0 || info.deaths < 0 || (info.epoch > 0 && int64(info.deaths) > info.epoch-1) {
				t.Fatalf("lease read out of range: %+v", info)
			}
			res, err := st.acquire(h, "wz", ttl, 3)
			if err != nil {
				t.Fatalf("acquire: %v", err)
			}
			switch res.kind {
			case acqOwned:
				if err := st.renewLease(h, "wz", res.epoch); err != nil {
					t.Fatalf("renew after acquire: %v", err)
				}
				if err := st.releaseLease(h, "wz", res.epoch); err != nil {
					t.Fatalf("release after acquire: %v", err)
				}
			case acqAdopt, acqHeld, acqPoisoned:
			default:
				t.Fatalf("acquire returned unknown kind %d", res.kind)
			}
		}
		check(time.Hour) // fresh-lease reading: corrupt state is guarded, never deleted
		check(0)         // expired reading: cleanup and steal paths run

		// Idempotence: rescanning the consistent state is a fixed point.
		a, _, err := st.rescan(time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := st.rescan(time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("rescan not idempotent: %d then %d execs", len(a), len(b))
		}
		for i := range a {
			if a[i].hash != b[i].hash || a[i].canonical != b[i].canonical {
				t.Fatalf("rescan not idempotent at %d", i)
			}
		}
	})
}
