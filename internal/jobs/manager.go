package jobs

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"sr2201/internal/stats"
	"sr2201/internal/sweep"
)

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// terminal reports whether no further transitions can happen.
func (s Status) terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// Event is one entry of a job's ordered progress stream. Seq increases by
// exactly one per event within a stream.
type Event struct {
	Seq  int64  `json:"seq"`
	Type string `json:"type"` // queued | started | progress | recovery | reconfig | requeued | done | failed | canceled
	// Cells is the cumulative sweep cells finished by the execution.
	Cells int64 `json:"cells,omitempty"`
	// Cycles is the cumulative simulated cycles retired by the execution.
	Cycles int64 `json:"cycles,omitempty"`
	// Recoveries is the cumulative deadlock recoveries taken by the
	// liveness layer across the execution.
	Recoveries int64 `json:"recoveries,omitempty"`
	// Reconfigured is the cumulative committed online reconfigurations (hot
	// swaps plus bounded drains), ReconfigDrained the in-flight packets those
	// drains purged, and ReconfigFellBack the attempts that degraded to
	// rebuild-in-place.
	Reconfigured     int64  `json:"reconfigured,omitempty"`
	ReconfigDrained  int64  `json:"reconfig_drained,omitempty"`
	ReconfigFellBack int64  `json:"reconfig_fellback,omitempty"`
	Error            string `json:"error,omitempty"`
}

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull is load shedding: the bounded FIFO is at capacity (429).
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrDraining means the manager no longer accepts submissions (503).
	ErrDraining = errors.New("jobs: draining")
	// ErrNotFound means no such job id (404).
	ErrNotFound = errors.New("jobs: no such job")
	// ErrPoisoned classifies a quarantined spec: it killed enough owners
	// mid-run that the fleet parked it instead of crash-looping.
	ErrPoisoned = errors.New("jobs: spec quarantined as poison")
)

// execution is one actual run of a canonical spec. Several jobs may attach
// to it: identical submissions dedupe here, sharing the run, its artifact,
// and its event log. In a fleet, the canonical hash is also the content
// address other workers' executions of the same spec resolve to on disk.
type execution struct {
	canonical string
	hash      string // canonHash(canonical)
	spec      Spec

	mu                sync.Mutex
	state             Status
	events            []Event
	notify            chan struct{} // closed and renewed on every append
	artifact          []byte
	err               error
	cancel            context.CancelFunc
	attached          int // jobs still wanting this run
	cells             int64
	cycles            int64
	recoveries        int64
	reconfigs         int64
	reconfigDrained   int64
	reconfigFallbacks int64

	rechecks int // deferred-retry count, guarded by Manager.mu
}

// append adds one event (and optional state change) under ex.mu and wakes
// streamers. state=="" keeps the current state.
func (ex *execution) append(state Status, ev Event) {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	ex.appendLocked(state, ev)
}

func (ex *execution) appendLocked(state Status, ev Event) {
	if state != "" {
		ex.state = state
	}
	ev.Seq = int64(len(ex.events))
	ev.Cells = ex.cells
	ev.Cycles = ex.cycles
	ev.Recoveries = ex.recoveries
	ev.Reconfigured = ex.reconfigs
	ev.ReconfigDrained = ex.reconfigDrained
	ev.ReconfigFellBack = ex.reconfigFallbacks
	ex.events = append(ex.events, ev)
	close(ex.notify)
	ex.notify = make(chan struct{})
}

// snapshot returns the events from seq on, whether the execution is
// terminal, and a channel that closes when anything new arrives.
func (ex *execution) snapshot(from int64) ([]Event, bool, <-chan struct{}) {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	var evs []Event
	if from < int64(len(ex.events)) {
		evs = append(evs, ex.events[from:]...)
	}
	return evs, ex.state.terminal(), ex.notify
}

// Job is one submission. Distinct submissions are distinct jobs even when
// they dedupe onto a shared execution.
type Job struct {
	id       string
	ex       *execution
	deduped  bool
	canceled bool // job-level cancel; the execution may outlive it
	created  time.Time
}

// Config tunes a Manager.
type Config struct {
	// QueueDepth bounds the FIFO of executions waiting for a worker
	// (default 64). A submission arriving with the queue full is shed.
	QueueDepth int
	// Workers is how many executions run concurrently (default 2).
	Workers int
	// Parallel is the global sweep budget shared by all running
	// executions — the server-side -parallel (default
	// sweep.DefaultParallel()).
	Parallel int
	// JobTimeout, when positive, deadlines every execution.
	JobTimeout time.Duration
	// StateDir, when set, makes the manager crash-safe: job records,
	// execution checkpoints, and finished artifacts persist there, and a
	// restarted manager rescans the directory — completed executions come
	// back served from cache, interrupted ones re-enqueue and resume from
	// their checkpoints, producing artifacts byte-identical to an
	// uninterrupted run (see state.go for the layout). Several worker
	// processes may share one StateDir: the lease layer (lease.go)
	// arbitrates ownership per execution, finished artifacts dedupe
	// fleet-wide by canonical spec hash, and a job whose owner dies is
	// taken over by a peer within one LeaseTTL.
	StateDir string
	// CheckpointEvery is the mid-run snapshot interval in simulated cycles
	// for executions that support it (default 4096; only with StateDir).
	CheckpointEvery int64
	// WorkerID names this process in a shared StateDir (default "w0").
	// Fleet members must use distinct ids: job ids are scoped per worker
	// and lease ownership is attributed by it.
	WorkerID string
	// LeaseTTL is how long a lease stays fresh without renewal (default
	// 5s; only with StateDir). A peer steals an expired lease and resumes
	// from the parked checkpoint.
	LeaseTTL time.Duration
	// PoisonAfter quarantines a spec once this many owners died mid-run
	// holding its lease (default 3; only with StateDir). 0 keeps the
	// default; negative disables quarantine.
	PoisonAfter int
	// FailpointHash/FailpointCycle, when set, kill the process (os.Exit 3)
	// the first time the execution with that canonical hash reports
	// progress at or past the given cycle — the deterministic owner-death
	// hook the chaos harness uses. See cliutil.ParseFailpoint for the
	// MDXSERVE_FAILPOINT=<hash>@<cycle> form.
	FailpointHash  string
	FailpointCycle int64
}

func (c *Config) normalize() {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Parallel <= 0 {
		c.Parallel = sweep.DefaultParallel()
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 4096
	}
	if c.WorkerID == "" {
		c.WorkerID = "w0"
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 5 * time.Second
	}
	if c.PoisonAfter == 0 {
		c.PoisonAfter = 3
	} else if c.PoisonAfter < 0 {
		c.PoisonAfter = 0 // disabled
	}
}

// Manager owns the queue, the worker pool, the dedupe/result cache, and
// every job's event stream.
type Manager struct {
	cfg    Config
	budget *sweep.Limiter
	state  *stateStore // nil without Config.StateDir

	baseCtx    context.Context
	baseCancel context.CancelFunc
	workerWG   sync.WaitGroup

	mu       sync.Mutex
	qcond    *sync.Cond   // signals qlist growth and qclosed
	qlist    []*execution // FIFO of executions awaiting a worker
	qclosed  bool         // no further dequeues/enqueues
	draining bool
	degraded bool  // sticky: state dir lost, local-queue-only mode
	degErr   error // what demoted us
	killed   bool  // chaos: simulate abrupt process death
	seq      int64
	jobs     map[string]*Job
	byCanon  map[string]*execution

	leasesHeld int       // running executions this process owns a lease for
	lastRenew  time.Time // most recent successful lease renewal
	drainRing  []time.Time

	// Metrics, all guarded by mu except where noted.
	started         time.Time
	submitted       int64
	dedupHits       int64
	executions      int64
	queuedCount     int64
	running         int64
	done            int64
	failed          int64
	canceledEx      int64
	adopted         int64
	stolen          int64
	deferred        int64
	poisonedCount   int64
	leaseLost       int64
	totalCells      int64
	totalCycles     int64
	totalRecoveries int64
	totalReconfigs  int64
	totalRecfgDrain int64
	totalRecfgFall  int64
	durations       stats.Latency
}

// drainRingCap bounds the recent-completion timestamp ring that feeds the
// adaptive Retry-After hint.
const drainRingCap = 32

// NewManager starts the worker pool and returns a ready manager. It cannot
// fail when Config.StateDir is unset; with one set, use OpenManager to see
// the error instead of panicking.
func NewManager(cfg Config) *Manager {
	m, err := OpenManager(cfg)
	if err != nil {
		panic(fmt.Sprintf("jobs: %v", err))
	}
	return m
}

// OpenManager starts the worker pool, rescanning and resuming persisted
// state first when Config.StateDir is set.
func OpenManager(cfg Config) (*Manager, error) {
	cfg.normalize()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		budget:     sweep.NewLimiter(cfg.Parallel),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       map[string]*Job{},
		byCanon:    map[string]*execution{},
		started:    time.Now(),
	}
	m.qcond = sync.NewCond(&m.mu)
	if cfg.StateDir != "" {
		st, err := openStateStore(cfg.StateDir, cfg.WorkerID)
		if err != nil {
			cancel()
			return nil, err
		}
		m.state = st
		pending, err := m.resume()
		if err != nil {
			cancel()
			return nil, err
		}
		// Resumed executions enqueue regardless of the configured depth:
		// they were admitted once already.
		m.qlist = pending
		m.queuedCount = int64(len(pending))
	}
	m.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go m.worker()
	}
	return m, nil
}

// resume rebuilds executions and jobs from the state directory: completed
// executions come back terminal (resubmissions dedupe onto the cached
// artifact), quarantined ones come back failed with the classified error,
// interrupted ones are returned for re-enqueueing — they restore from
// their checkpoints once this worker wins the lease, or adopt a peer's
// artifact if the peer finishes first.
func (m *Manager) resume() ([]*execution, error) {
	execs, jobRecs, err := m.state.rescan(m.cfg.LeaseTTL)
	if err != nil {
		return nil, err
	}
	var pending []*execution
	for _, re := range execs {
		spec, err := DecodeSpec([]byte(re.canonical))
		if err != nil {
			// The spec no longer parses (e.g. an experiment id was retired);
			// drop the state rather than refuse to boot.
			m.state.removeExec(re.hash)
			continue
		}
		ex := &execution{
			canonical: re.canonical,
			hash:      re.hash,
			spec:      spec,
			state:     StatusQueued,
			notify:    make(chan struct{}),
		}
		ex.append(StatusQueued, Event{Type: "queued"})
		m.byCanon[re.canonical] = ex
		m.executions++
		switch {
		case re.artifact != nil:
			ex.artifact = re.artifact
			ex.append(StatusDone, Event{Type: "done"})
			m.done++
		case re.poisoned != nil:
			ex.err = fmt.Errorf("%w: %s", ErrPoisoned, re.poisoned.Error)
			ex.append(StatusFailed, Event{Type: "failed", Error: re.poisoned.Error})
			m.failed++
			m.poisonedCount++
		default:
			pending = append(pending, ex)
		}
	}
	for _, jr := range jobRecs {
		ex := m.byCanon[jr.canonical]
		if ex == nil {
			continue
		}
		ex.mu.Lock()
		ex.attached++
		ex.mu.Unlock()
		m.jobs[jr.id] = &Job{id: jr.id, ex: ex, created: time.Now()}
		var n int64
		if _, err := fmt.Sscanf(jr.id, "j%06d", &n); err == nil && n > m.seq {
			m.seq = n
		}
	}
	return pending, nil
}

// healthyStateLocked is the persistence gate: the store while it works,
// nil once the process has demoted itself to local-queue-only mode.
// Callers hold m.mu.
func (m *Manager) healthyStateLocked() *stateStore {
	if m.state == nil || m.degraded {
		return nil
	}
	return m.state
}

func (m *Manager) healthyState() *stateStore {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.healthyStateLocked()
}

// degrade demotes the manager to local-queue-only mode after a state-dir
// I/O failure (ENOSPC, unmounted volume). Sticky: the in-memory queue
// keeps serving, persistence and fleet coordination stop, and /readyz
// reports the loss until the operator restarts the worker.
func (m *Manager) degrade(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.degraded {
		m.degraded = true
		m.degErr = err
	}
}

// Degraded reports local-queue-only mode and what caused it.
func (m *Manager) Degraded() (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.degraded, m.degErr
}

// noteRenew records a successful lease renewal for the readiness probe.
func (m *Manager) noteRenew() {
	m.mu.Lock()
	m.lastRenew = time.Now()
	m.mu.Unlock()
}

func (m *Manager) isKilled() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.killed
}

// enqueueLocked appends to the run queue and wakes one worker. Callers
// hold m.mu.
func (m *Manager) enqueueLocked(ex *execution) {
	m.qlist = append(m.qlist, ex)
	m.qcond.Signal()
}

// dequeue blocks until an execution is available or the queue is closed.
// A closed queue still drains its remaining items (Drain semantics);
// a killed manager abandons them (Kill semantics).
func (m *Manager) dequeue() (*execution, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.qlist) == 0 && !m.qclosed {
		m.qcond.Wait()
	}
	if m.killed || len(m.qlist) == 0 {
		return nil, false
	}
	ex := m.qlist[0]
	m.qlist = m.qlist[1:]
	return ex, true
}

// CanonicalHash normalizes a spec and returns its canonical content hash —
// the execution's address in a shared state directory. The chaos harness
// uses it to aim failpoints.
func CanonicalHash(spec Spec) (string, error) {
	spec = spec.Clone()
	if err := spec.Normalize(); err != nil {
		return "", err
	}
	return canonHash(spec.Canonical()), nil
}

// Submit validates, normalizes, and enqueues a spec, returning the new job
// id. Identical canonical specs dedupe: the job attaches to the live or
// completed execution instead of queueing a duplicate run (deduped=true).
func (m *Manager) Submit(spec Spec) (id string, deduped bool, err error) {
	spec = spec.Clone() // normalize a private copy, never the caller's memory
	if err := spec.Normalize(); err != nil {
		return "", false, err
	}
	canonical := spec.Canonical()

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return "", false, ErrDraining
	}
	m.submitted++
	ex := m.byCanon[canonical]
	if ex != nil {
		deduped = true
		m.dedupHits++
	} else {
		if m.queuedCount >= int64(m.cfg.QueueDepth) {
			m.submitted--
			return "", false, ErrQueueFull
		}
		ex = &execution{
			canonical: canonical,
			hash:      canonHash(canonical),
			spec:      spec,
			state:     StatusQueued,
			notify:    make(chan struct{}),
		}
		ex.append(StatusQueued, Event{Type: "queued"})
		m.byCanon[canonical] = ex
		m.executions++
		m.queuedCount++
		if st := m.healthyStateLocked(); st != nil {
			if err := st.saveExecSpec(ex.hash, canonical); err != nil {
				// Losing the state dir is not fatal to the submission: demote
				// to local-queue-only mode and run the job in memory.
				m.degraded = true
				m.degErr = err
			}
		}
		m.enqueueLocked(ex)
	}
	ex.mu.Lock()
	ex.attached++
	ex.mu.Unlock()

	m.seq++
	id = fmt.Sprintf("j%06d", m.seq)
	m.jobs[id] = &Job{id: id, ex: ex, deduped: deduped, created: time.Now()}
	if st := m.healthyStateLocked(); st != nil {
		// Best-effort: the job runs either way; a lost record only costs
		// the client its id after a restart.
		_ = st.saveJob(id, canonical)
	}
	return id, deduped, nil
}

func (m *Manager) worker() {
	defer m.workerWG.Done()
	for {
		ex, ok := m.dequeue()
		if !ok {
			return
		}
		m.runExecution(ex)
	}
}

// retryDelay is the deterministic backoff cadence for deferred executions
// (a live peer holds the lease): half the TTL, doubling per recheck,
// capped at one TTL so a dead owner's work is taken over within one
// lease-expiry interval of the lease going stale. No jitter — fleet
// behavior replays identically run to run.
func (m *Manager) retryDelay(rechecks int) time.Duration {
	d := m.cfg.LeaseTTL / 2
	if d < 10*time.Millisecond {
		d = 10 * time.Millisecond
	}
	for i := 0; i < rechecks && d < m.cfg.LeaseTTL; i++ {
		d *= 2
	}
	if d > m.cfg.LeaseTTL {
		d = m.cfg.LeaseTTL
	}
	return d
}

// scheduleRecheck re-enqueues a deferred execution after its backoff.
func (m *Manager) scheduleRecheck(ex *execution, delay time.Duration) {
	time.AfterFunc(delay, func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		if m.qclosed {
			// Shutting down: the execution stays parked on disk and the next
			// boot (or a peer) picks it up.
			m.queuedCount--
			return
		}
		m.enqueueLocked(ex)
	})
}

// deferExec parks an execution whose lease a live peer holds: it stays
// queued and rechecks on the deterministic backoff cadence — adopting the
// peer's artifact when it finishes, or stealing the lease if it dies.
func (m *Manager) deferExec(ex *execution) {
	m.mu.Lock()
	m.queuedCount++
	m.deferred++
	ex.rechecks++
	delay := m.retryDelay(ex.rechecks - 1)
	m.mu.Unlock()
	m.scheduleRecheck(ex, delay)
}

// finishAdopted completes an execution with a peer's artifact — the
// fleet-wide content-addressed cache hit.
func (m *Manager) finishAdopted(ex *execution, artifact []byte) {
	ex.mu.Lock()
	if ex.state.terminal() {
		ex.mu.Unlock()
		return
	}
	ex.artifact = artifact
	ex.appendLocked(StatusDone, Event{Type: "done"})
	ex.mu.Unlock()
	m.mu.Lock()
	m.done++
	m.adopted++
	m.noteDrainLocked(time.Now())
	m.mu.Unlock()
}

// finishPoisoned completes an execution as a classified quarantine
// failure. The canonical mapping is kept: resubmissions dedupe onto the
// quarantine verdict instead of re-running the poison.
func (m *Manager) finishPoisoned(ex *execution, msg string) {
	ex.mu.Lock()
	if ex.state.terminal() {
		ex.mu.Unlock()
		return
	}
	ex.err = fmt.Errorf("%w: %s", ErrPoisoned, msg)
	ex.appendLocked(StatusFailed, Event{Type: "failed", Error: msg})
	ex.mu.Unlock()
	m.mu.Lock()
	m.failed++
	m.poisonedCount++
	m.mu.Unlock()
}

// noteDrainLocked records one execution completion for the adaptive
// Retry-After hint. Callers hold m.mu.
func (m *Manager) noteDrainLocked(t time.Time) {
	m.drainRing = append(m.drainRing, t)
	if len(m.drainRing) > drainRingCap {
		m.drainRing = m.drainRing[len(m.drainRing)-drainRingCap:]
	}
}

// drainTimes snapshots the recent-completion ring (oldest first).
func (m *Manager) drainTimes() []time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]time.Time, len(m.drainRing))
	copy(out, m.drainRing)
	return out
}

func (m *Manager) runExecution(ex *execution) {
	m.mu.Lock()
	m.queuedCount--
	killed := m.killed
	m.mu.Unlock()
	if killed {
		return
	}

	ex.mu.Lock()
	if ex.state == StatusCanceled {
		// Every attached job canceled while it sat in the queue.
		ex.mu.Unlock()
		return
	}
	ex.mu.Unlock()

	// Fleet arbitration: adopt a finished peer's artifact, honor a
	// quarantine, defer to a live owner, or win (possibly steal) the lease.
	st := m.healthyState()
	var leaseEpoch int64
	owned := false
	if st != nil {
		res, err := st.acquire(ex.hash, m.cfg.WorkerID, m.cfg.LeaseTTL, m.cfg.PoisonAfter)
		if err != nil {
			m.degrade(err)
			st = nil
		} else {
			switch res.kind {
			case acqAdopt:
				m.finishAdopted(ex, res.artifact)
				return
			case acqPoisoned:
				m.finishPoisoned(ex, res.poison)
				return
			case acqHeld:
				m.deferExec(ex)
				return
			case acqOwned:
				owned = true
				leaseEpoch = res.epoch
				m.noteRenew()
				m.mu.Lock()
				m.leasesHeld++
				if res.stolen {
					m.stolen++
				}
				m.mu.Unlock()
			}
		}
	}

	ctx := m.baseCtx
	var cancel context.CancelFunc
	if m.cfg.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, m.cfg.JobTimeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	ex.mu.Lock()
	ex.cancel = cancel
	ex.appendLocked(StatusRunning, Event{Type: "started"})
	ex.mu.Unlock()

	m.mu.Lock()
	m.running++
	m.mu.Unlock()

	// Heartbeat keeper: renew the lease on a fixed cadence so peers see a
	// live owner even through progress-silent stretches. Losing the lease
	// (a peer judged us dead and stole it) cancels the run.
	var lost atomic.Bool
	var hbStop chan struct{}
	var hbDone chan struct{}
	if owned {
		hbStop, hbDone = make(chan struct{}), make(chan struct{})
		go func() {
			defer close(hbDone)
			tick := time.NewTicker(m.cfg.LeaseTTL / 3)
			defer tick.Stop()
			for {
				select {
				case <-hbStop:
					return
				case <-tick.C:
					if m.isKilled() {
						return
					}
					switch err := st.renewLease(ex.hash, m.cfg.WorkerID, leaseEpoch); {
					case errors.Is(err, errLeaseLost):
						lost.Store(true)
						cancel()
						return
					case err == nil:
						m.noteRenew()
					}
				}
			}
		}()
	}

	start := time.Now()
	var lastEmit, lastLeaseRenew time.Time
	progress := func(d progressDelta) {
		ex.mu.Lock()
		ex.cells += d.cells
		ex.cycles += d.cycles
		ex.recoveries += d.recoveries
		ex.reconfigs += d.reconfigs
		ex.reconfigDrained += d.reconfigDrained
		ex.reconfigFallbacks += d.reconfigFallbacks
		cycles := ex.cycles
		switch {
		case d.recoveries > 0:
			// Recovery events are rare and diagnostic — emit unthrottled so
			// a stream consumer sees every liveness intervention.
			ex.appendLocked("", Event{Type: "recovery"})
		case d.reconfigs > 0 || d.reconfigFallbacks > 0:
			// Reconfigurations likewise: every swap, drain or fallback is an
			// event of its own.
			ex.appendLocked("", Event{Type: "reconfig"})
		case time.Since(lastEmit) >= 50*time.Millisecond:
			// Throttle the stream: at most one progress event per 50ms keeps
			// event logs bounded for big campaigns while staying live.
			lastEmit = time.Now()
			ex.appendLocked("", Event{Type: "progress"})
		}
		ex.mu.Unlock()
		if m.cfg.FailpointHash == ex.hash && cycles >= m.cfg.FailpointCycle {
			// Deterministic owner death for the chaos harness: no park, no
			// release — indistinguishable from SIGKILL to the fleet.
			os.Exit(3)
		}
		if owned && time.Since(lastLeaseRenew) >= m.cfg.LeaseTTL/4 {
			// Renew per progress event (throttled): an active owner's lease
			// stays fresh without waiting on the keeper tick.
			lastLeaseRenew = time.Now()
			switch err := st.renewLease(ex.hash, m.cfg.WorkerID, leaseEpoch); {
			case errors.Is(err, errLeaseLost):
				lost.Store(true)
				cancel()
			case err == nil:
				m.noteRenew()
			}
		}
		m.mu.Lock()
		m.totalCells += d.cells
		m.totalCycles += d.cycles
		m.totalRecoveries += d.recoveries
		m.totalReconfigs += d.reconfigs
		m.totalRecfgDrain += d.reconfigDrained
		m.totalRecfgFall += d.reconfigFallbacks
		m.mu.Unlock()
	}

	var es *execState
	if st != nil {
		es = &execState{store: st, hash: ex.hash, every: m.cfg.CheckpointEvery, killed: m.isKilled}
	}
	artifact, err := runSpec(ctx, ex.spec, m.budget, m.cfg.Parallel, progress, es)
	elapsed := time.Since(start)

	if hbStop != nil {
		close(hbStop)
		<-hbDone // no renewal may land after the release below
	}
	if m.isKilled() {
		// Simulated abrupt death: no release, no bookkeeping, no events —
		// exactly what a SIGKILLed process leaves behind.
		return
	}
	if owned {
		m.mu.Lock()
		m.leasesHeld--
		m.mu.Unlock()
	}

	canceledErr := err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
	if lost.Load() && canceledErr && !m.Draining() {
		// A peer stole the lease and owns the run now. Hand the execution
		// back to the queue: the recheck will adopt the peer's artifact, or
		// steal back if the peer dies too.
		ex.mu.Lock()
		ex.cancel = nil
		ex.appendLocked(StatusQueued, Event{Type: "requeued"})
		ex.mu.Unlock()
		m.mu.Lock()
		m.running--
		m.leaseLost++
		m.mu.Unlock()
		m.deferExec(ex)
		return
	}

	var final Status
	var ev Event
	switch {
	case canceledErr:
		final, ev = StatusCanceled, Event{Type: "canceled", Error: err.Error()}
	case err != nil:
		final, ev = StatusFailed, Event{Type: "failed", Error: err.Error()}
	default:
		final, ev = StatusDone, Event{Type: "done"}
	}
	if st != nil {
		switch final {
		case StatusDone:
			// Persisting the artifact marks the execution done fleet-wide; a
			// crash before the rename re-runs it from its checkpoints instead.
			if perr := st.saveArtifact(ex.hash, artifact); perr != nil {
				final, ev = StatusFailed, Event{Type: "failed", Error: perr.Error()}
				err = perr
				st.removeExec(ex.hash)
			} else if owned {
				_ = st.releaseLease(ex.hash, m.cfg.WorkerID, leaseEpoch)
			}
		case StatusFailed:
			// Failures are not cached (below) and their state would only
			// replay the failure; discard it.
			st.removeExec(ex.hash)
		case StatusCanceled:
			// Keep the checkpoints: a canceled (or SIGTERM-interrupted)
			// execution resumes on the next boot — or on a peer, which the
			// clean release lets claim it without counting a death.
			if owned {
				_ = st.releaseLease(ex.hash, m.cfg.WorkerID, leaseEpoch)
			}
		}
	}

	ex.mu.Lock()
	ex.artifact = artifact
	ex.err = err
	ex.cancel = nil
	ex.appendLocked(final, ev)
	ex.mu.Unlock()

	m.mu.Lock()
	m.running--
	m.durations.Add(elapsed.Milliseconds())
	switch final {
	case StatusDone:
		m.done++
		m.noteDrainLocked(time.Now())
	case StatusFailed:
		m.failed++
		// Failures are not cached: a resubmission gets a fresh run.
		delete(m.byCanon, ex.canonical)
	case StatusCanceled:
		m.canceledEx++
		delete(m.byCanon, ex.canonical)
	}
	m.mu.Unlock()
}

// Cancel cancels one job. If it was the execution's last interested job,
// the execution itself is canceled: dequeued if still queued, or its
// context canceled mid-run (the worker is freed at the next cell/cycle
// boundary).
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	job, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return ErrNotFound
	}
	if job.canceled {
		m.mu.Unlock()
		return nil
	}
	job.canceled = true
	ex := job.ex
	m.mu.Unlock()

	ex.mu.Lock()
	ex.attached--
	if ex.attached > 0 || ex.state.terminal() {
		ex.mu.Unlock()
		return nil
	}
	if ex.state == StatusQueued {
		// The worker that eventually dequeues it will skip it (and account
		// for the freed queue slot then).
		ex.appendLocked(StatusCanceled, Event{Type: "canceled"})
		ex.mu.Unlock()
		m.mu.Lock()
		m.canceledEx++
		delete(m.byCanon, ex.canonical)
		m.mu.Unlock()
		return nil
	}
	cancel := ex.cancel
	ex.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return nil
}

// JobView is the API projection of one job.
type JobView struct {
	ID      string `json:"id"`
	Status  Status `json:"status"`
	Kind    Kind   `json:"kind"`
	Deduped bool   `json:"deduped,omitempty"`
	Cells   int64  `json:"cells,omitempty"`
	Cycles  int64  `json:"cycles,omitempty"`
	// Recoveries is the count of deadlock recoveries the liveness layer took
	// during the execution.
	Recoveries int64 `json:"recoveries,omitempty"`
	// Reconfigured is the count of committed online reconfigurations (hot
	// swaps plus bounded drains), ReconfigDrained the in-flight packets those
	// drains purged, and ReconfigFellBack the attempts that degraded to
	// rebuild-in-place.
	Reconfigured     int64 `json:"reconfigured,omitempty"`
	ReconfigDrained  int64 `json:"reconfig_drained,omitempty"`
	ReconfigFellBack int64 `json:"reconfig_fellback,omitempty"`
	// ArtifactBytes is the artifact length once the job is terminal.
	ArtifactBytes int    `json:"artifact_bytes,omitempty"`
	Error         string `json:"error,omitempty"`
}

// status resolves the job-level status (a canceled job stays canceled even
// if its shared execution runs on for other jobs).
func (m *Manager) status(job *Job) Status {
	if job.canceled {
		return StatusCanceled
	}
	job.ex.mu.Lock()
	defer job.ex.mu.Unlock()
	return job.ex.state
}

// Lookup returns the API view of one job.
func (m *Manager) Lookup(id string) (JobView, error) {
	m.mu.Lock()
	job, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return JobView{}, ErrNotFound
	}
	v := JobView{ID: id, Kind: job.ex.spec.Kind, Deduped: job.deduped, Status: m.status(job)}
	ex := job.ex
	ex.mu.Lock()
	v.Cells, v.Cycles, v.Recoveries = ex.cells, ex.cycles, ex.recoveries
	v.Reconfigured, v.ReconfigDrained, v.ReconfigFellBack = ex.reconfigs, ex.reconfigDrained, ex.reconfigFallbacks
	v.ArtifactBytes = len(ex.artifact)
	if ex.err != nil {
		v.Error = ex.err.Error()
	}
	ex.mu.Unlock()
	return v, nil
}

// Artifact returns the job's report artifact. ok is false until the
// execution reaches a terminal state that produced bytes.
func (m *Manager) Artifact(id string) (artifact []byte, ok bool, err error) {
	m.mu.Lock()
	job, exists := m.jobs[id]
	m.mu.Unlock()
	if !exists {
		return nil, false, ErrNotFound
	}
	ex := job.ex
	ex.mu.Lock()
	defer ex.mu.Unlock()
	if !ex.state.terminal() || len(ex.artifact) == 0 {
		return nil, false, nil
	}
	return ex.artifact, true, nil
}

// Events exposes a job's stream for the HTTP layer: events from seq on,
// terminality, and a wakeup channel. A canceled job's stream is terminal
// even while the shared execution runs for other jobs.
func (m *Manager) Events(id string, from int64) ([]Event, bool, <-chan struct{}, error) {
	m.mu.Lock()
	job, ok := m.jobs[id]
	canceled := ok && job.canceled
	m.mu.Unlock()
	if !ok {
		return nil, false, nil, ErrNotFound
	}
	evs, terminal, notify := job.ex.snapshot(from)
	return evs, terminal || canceled, notify, nil
}

// JobCanceled reports whether the job itself (not its execution) was
// canceled.
func (m *Manager) JobCanceled(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	return ok && job.canceled
}

// Drain stops accepting submissions, lets queued and running executions
// finish, and returns when the pool is idle. Safe to call more than once.
// Executions deferred on a peer's lease are abandoned to the fleet: they
// stay parked on disk for the peer (or the next boot) to finish.
func (m *Manager) Drain() {
	m.mu.Lock()
	m.draining = true
	m.qclosed = true
	m.qcond.Broadcast()
	m.mu.Unlock()
	m.workerWG.Wait()
}

// Stop aborts: running executions are canceled, then the pool drains. For
// tests and fatal shutdown paths.
func (m *Manager) Stop() {
	m.baseCancel()
	m.Drain()
}

// Kill simulates SIGKILL inside one process for tests: workers abandon
// their executions mid-run with no checkpoint park, no lease release, and
// no terminal events — the on-disk state is exactly what an abruptly dead
// owner leaves for its peers to steal.
func (m *Manager) Kill() {
	m.mu.Lock()
	m.killed = true
	m.draining = true
	m.qclosed = true
	m.qcond.Broadcast()
	m.mu.Unlock()
	m.baseCancel()
	m.workerWG.Wait()
}

// Draining reports whether the manager refuses new submissions.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Readiness decides the /readyz verdict: ready means this worker can
// accept and durably run a stateful submission right now. Not-ready
// reasons: draining, degraded (state dir lost), state dir not writable
// (probed live — and demoting to degraded on failure), queue full, or
// lease renewal gone stale while owning running executions.
func (m *Manager) Readiness() (bool, []string) {
	var reasons []string
	m.mu.Lock()
	draining := m.draining
	degraded := m.degraded
	degErr := m.degErr
	queued := m.queuedCount
	depth := int64(m.cfg.QueueDepth)
	held := m.leasesHeld
	last := m.lastRenew
	st := m.healthyStateLocked()
	m.mu.Unlock()

	if draining {
		reasons = append(reasons, "draining")
	}
	switch {
	case degraded:
		reasons = append(reasons, fmt.Sprintf("degraded to local-queue-only: %v", degErr))
	case st != nil:
		if err := st.probe(); err != nil {
			m.degrade(err)
			reasons = append(reasons, fmt.Sprintf("state dir not writable: %v", err))
		}
	}
	if queued >= depth {
		reasons = append(reasons, "queue full")
	}
	if held > 0 && time.Since(last) > m.cfg.LeaseTTL {
		reasons = append(reasons, "lease renewal stale")
	}
	return len(reasons) == 0, reasons
}

// Metrics is the /metrics payload.
type Metrics struct {
	Worker     string `json:"worker"`
	QueueDepth int    `json:"queue_depth"`
	QueueCap   int    `json:"queue_cap"`
	Workers    int    `json:"workers"`
	Parallel   int    `json:"parallel"`
	// Degraded reports sticky local-queue-only mode (state dir lost).
	Degraded bool `json:"degraded,omitempty"`

	Submitted   int64 `json:"jobs_submitted"`
	Deduped     int64 `json:"jobs_deduped"`
	Executions  int64 `json:"executions"`
	Running     int64 `json:"running"`
	Queued      int64 `json:"queued"`
	Done        int64 `json:"done"`
	Failed      int64 `json:"failed"`
	CanceledExs int64 `json:"canceled"`

	// Fleet coordination counters (only move with a shared state dir):
	// Adopted counts executions finished with a peer's cached artifact,
	// StolenLeases the expired leases this worker took over, Deferred the
	// times an execution waited out a live peer's lease, Poisoned the
	// quarantine verdicts served, LeaseLost the runs handed over after a
	// peer stole this worker's lease.
	Adopted      int64 `json:"adopted,omitempty"`
	StolenLeases int64 `json:"stolen_leases,omitempty"`
	Deferred     int64 `json:"deferred,omitempty"`
	Poisoned     int64 `json:"poisoned,omitempty"`
	LeaseLost    int64 `json:"lease_lost,omitempty"`

	// CacheHitRate is deduped submissions over all submissions.
	CacheHitRate float64 `json:"cache_hit_rate"`

	CellsDone    int64   `json:"cells_done"`
	CyclesDone   int64   `json:"cycles_done"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	// RecoveriesDone is the total deadlock recoveries taken by the liveness
	// layer across all executions since the manager started.
	RecoveriesDone int64 `json:"recoveries_done"`
	// ReconfiguredDone is the total committed online reconfigurations (hot
	// swaps plus bounded drains) across all executions since the manager
	// started; ReconfigDrainedDone the packets transition drains purged and
	// ReconfigFellBackDone the attempts that degraded to rebuild-in-place.
	ReconfiguredDone     int64 `json:"reconfigured_done"`
	ReconfigDrainedDone  int64 `json:"reconfig_drained_done"`
	ReconfigFellBackDone int64 `json:"reconfig_fellback_done"`

	// Job wall-clock duration summary (milliseconds), nearest-rank
	// percentiles via stats.Latency.
	DurationCount int     `json:"job_duration_count"`
	DurationMean  float64 `json:"job_duration_mean_ms"`
	DurationP50   int64   `json:"job_duration_p50_ms"`
	DurationP95   int64   `json:"job_duration_p95_ms"`
	DurationMax   int64   `json:"job_duration_max_ms"`
}

// Metrics snapshots the manager's counters.
func (m *Manager) Metrics() Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	mt := Metrics{
		Worker:               m.cfg.WorkerID,
		QueueDepth:           int(m.queuedCount),
		QueueCap:             m.cfg.QueueDepth,
		Workers:              m.cfg.Workers,
		Parallel:             m.cfg.Parallel,
		Degraded:             m.degraded,
		Submitted:            m.submitted,
		Deduped:              m.dedupHits,
		Executions:           m.executions,
		Running:              m.running,
		Queued:               m.queuedCount,
		Done:                 m.done,
		Failed:               m.failed,
		CanceledExs:          m.canceledEx,
		Adopted:              m.adopted,
		StolenLeases:         m.stolen,
		Deferred:             m.deferred,
		Poisoned:             m.poisonedCount,
		LeaseLost:            m.leaseLost,
		CellsDone:            m.totalCells,
		CyclesDone:           m.totalCycles,
		RecoveriesDone:       m.totalRecoveries,
		ReconfiguredDone:     m.totalReconfigs,
		ReconfigDrainedDone:  m.totalRecfgDrain,
		ReconfigFellBackDone: m.totalRecfgFall,
	}
	if m.submitted > 0 {
		mt.CacheHitRate = float64(m.dedupHits) / float64(m.submitted)
	}
	if secs := time.Since(m.started).Seconds(); secs > 0 {
		mt.CyclesPerSec = float64(m.totalCycles) / secs
	}
	mt.DurationCount = m.durations.Count()
	if mt.DurationCount > 0 {
		mt.DurationMean = m.durations.Mean()
		mt.DurationP50 = m.durations.Percentile(50)
		mt.DurationP95 = m.durations.Percentile(95)
		mt.DurationMax = m.durations.Max()
	}
	return mt
}
