package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"sr2201/internal/stats"
	"sr2201/internal/sweep"
)

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// terminal reports whether no further transitions can happen.
func (s Status) terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// Event is one entry of a job's ordered progress stream. Seq increases by
// exactly one per event within a stream.
type Event struct {
	Seq   int64  `json:"seq"`
	Type  string `json:"type"` // queued | started | progress | recovery | reconfig | done | failed | canceled
	Cells int64  `json:"cells,omitempty"`
	// Cycles is the cumulative simulated cycles retired by the execution.
	Cycles int64 `json:"cycles,omitempty"`
	// Recoveries is the cumulative deadlock recoveries taken by the
	// liveness layer across the execution.
	Recoveries int64 `json:"recoveries,omitempty"`
	// Reconfigured is the cumulative committed online reconfigurations (hot
	// swaps plus bounded drains), ReconfigDrained the in-flight packets those
	// drains purged, and ReconfigFellBack the attempts that degraded to
	// rebuild-in-place.
	Reconfigured     int64  `json:"reconfigured,omitempty"`
	ReconfigDrained  int64  `json:"reconfig_drained,omitempty"`
	ReconfigFellBack int64  `json:"reconfig_fellback,omitempty"`
	Error            string `json:"error,omitempty"`
}

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull is load shedding: the bounded FIFO is at capacity (429).
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrDraining means the manager no longer accepts submissions (503).
	ErrDraining = errors.New("jobs: draining")
	// ErrNotFound means no such job id (404).
	ErrNotFound = errors.New("jobs: no such job")
)

// execution is one actual run of a canonical spec. Several jobs may attach
// to it: identical submissions dedupe here, sharing the run, its artifact,
// and its event log.
type execution struct {
	canonical string
	spec      Spec

	mu                sync.Mutex
	state             Status
	events            []Event
	notify            chan struct{} // closed and renewed on every append
	artifact          []byte
	err               error
	cancel            context.CancelFunc
	attached          int // jobs still wanting this run
	cells             int64
	cycles            int64
	recoveries        int64
	reconfigs         int64
	reconfigDrained   int64
	reconfigFallbacks int64
}

// append adds one event (and optional state change) under ex.mu and wakes
// streamers. state=="" keeps the current state.
func (ex *execution) append(state Status, ev Event) {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	ex.appendLocked(state, ev)
}

func (ex *execution) appendLocked(state Status, ev Event) {
	if state != "" {
		ex.state = state
	}
	ev.Seq = int64(len(ex.events))
	ev.Cells = ex.cells
	ev.Cycles = ex.cycles
	ev.Recoveries = ex.recoveries
	ev.Reconfigured = ex.reconfigs
	ev.ReconfigDrained = ex.reconfigDrained
	ev.ReconfigFellBack = ex.reconfigFallbacks
	ex.events = append(ex.events, ev)
	close(ex.notify)
	ex.notify = make(chan struct{})
}

// snapshot returns the events from seq on, whether the execution is
// terminal, and a channel that closes when anything new arrives.
func (ex *execution) snapshot(from int64) ([]Event, bool, <-chan struct{}) {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	var evs []Event
	if from < int64(len(ex.events)) {
		evs = append(evs, ex.events[from:]...)
	}
	return evs, ex.state.terminal(), ex.notify
}

// Job is one submission. Distinct submissions are distinct jobs even when
// they dedupe onto a shared execution.
type Job struct {
	id       string
	ex       *execution
	deduped  bool
	canceled bool // job-level cancel; the execution may outlive it
	created  time.Time
}

// Config tunes a Manager.
type Config struct {
	// QueueDepth bounds the FIFO of executions waiting for a worker
	// (default 64). A submission arriving with the queue full is shed.
	QueueDepth int
	// Workers is how many executions run concurrently (default 2).
	Workers int
	// Parallel is the global sweep budget shared by all running
	// executions — the server-side -parallel (default
	// sweep.DefaultParallel()).
	Parallel int
	// JobTimeout, when positive, deadlines every execution.
	JobTimeout time.Duration
	// StateDir, when set, makes the manager crash-safe: job records,
	// execution checkpoints, and finished artifacts persist there, and a
	// restarted manager rescans the directory — completed executions come
	// back served from cache, interrupted ones re-enqueue and resume from
	// their checkpoints, producing artifacts byte-identical to an
	// uninterrupted run (see state.go for the layout).
	StateDir string
	// CheckpointEvery is the mid-run snapshot interval in simulated cycles
	// for executions that support it (default 4096; only with StateDir).
	CheckpointEvery int64
}

func (c *Config) normalize() {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Parallel <= 0 {
		c.Parallel = sweep.DefaultParallel()
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 4096
	}
}

// Manager owns the queue, the worker pool, the dedupe/result cache, and
// every job's event stream.
type Manager struct {
	cfg    Config
	budget *sweep.Limiter
	queue  chan *execution
	state  *stateStore // nil without Config.StateDir

	baseCtx    context.Context
	baseCancel context.CancelFunc
	workerWG   sync.WaitGroup

	mu       sync.Mutex
	draining bool
	seq      int64
	jobs     map[string]*Job
	byCanon  map[string]*execution

	// Metrics, all guarded by mu except where noted.
	started         time.Time
	submitted       int64
	dedupHits       int64
	executions      int64
	queuedCount     int64
	running         int64
	done            int64
	failed          int64
	canceledEx      int64
	totalCells      int64
	totalCycles     int64
	totalRecoveries int64
	totalReconfigs  int64
	totalRecfgDrain int64
	totalRecfgFall  int64
	durations       stats.Latency
}

// NewManager starts the worker pool and returns a ready manager. It cannot
// fail when Config.StateDir is unset; with one set, use OpenManager to see
// the error instead of panicking.
func NewManager(cfg Config) *Manager {
	m, err := OpenManager(cfg)
	if err != nil {
		panic(fmt.Sprintf("jobs: %v", err))
	}
	return m
}

// OpenManager starts the worker pool, rescanning and resuming persisted
// state first when Config.StateDir is set.
func OpenManager(cfg Config) (*Manager, error) {
	cfg.normalize()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		budget:     sweep.NewLimiter(cfg.Parallel),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       map[string]*Job{},
		byCanon:    map[string]*execution{},
		started:    time.Now(),
	}
	var pending []*execution
	if cfg.StateDir != "" {
		st, err := openStateStore(cfg.StateDir)
		if err != nil {
			cancel()
			return nil, err
		}
		m.state = st
		if pending, err = m.resume(); err != nil {
			cancel()
			return nil, err
		}
	}
	// Resumed executions must all fit in the queue regardless of its
	// configured depth.
	depth := cfg.QueueDepth
	if len(pending) > depth {
		depth = len(pending)
	}
	m.queue = make(chan *execution, depth)
	for _, ex := range pending {
		m.queuedCount++
		m.queue <- ex
	}
	m.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go m.worker()
	}
	return m, nil
}

// resume rebuilds executions and jobs from the state directory: completed
// executions come back terminal (resubmissions dedupe onto the cached
// artifact), interrupted ones are returned for re-enqueueing and will
// restore from their checkpoints when a worker picks them up.
func (m *Manager) resume() ([]*execution, error) {
	execs, jobRecs, err := m.state.rescan()
	if err != nil {
		return nil, err
	}
	var pending []*execution
	for _, re := range execs {
		spec, err := DecodeSpec([]byte(re.canonical))
		if err != nil {
			// The spec no longer parses (e.g. an experiment id was retired);
			// drop the state rather than refuse to boot.
			m.state.removeExec(re.hash)
			continue
		}
		ex := &execution{
			canonical: re.canonical,
			spec:      spec,
			state:     StatusQueued,
			notify:    make(chan struct{}),
		}
		ex.append(StatusQueued, Event{Type: "queued"})
		m.byCanon[re.canonical] = ex
		m.executions++
		if re.artifact != nil {
			ex.artifact = re.artifact
			ex.append(StatusDone, Event{Type: "done"})
			m.done++
			continue
		}
		pending = append(pending, ex)
	}
	for _, jr := range jobRecs {
		ex := m.byCanon[jr.canonical]
		if ex == nil {
			continue
		}
		ex.mu.Lock()
		ex.attached++
		ex.mu.Unlock()
		m.jobs[jr.id] = &Job{id: jr.id, ex: ex, created: time.Now()}
		var n int64
		if _, err := fmt.Sscanf(jr.id, "j%06d", &n); err == nil && n > m.seq {
			m.seq = n
		}
	}
	return pending, nil
}

// Submit validates, normalizes, and enqueues a spec, returning the new job
// id. Identical canonical specs dedupe: the job attaches to the live or
// completed execution instead of queueing a duplicate run (deduped=true).
func (m *Manager) Submit(spec Spec) (id string, deduped bool, err error) {
	spec = spec.Clone() // normalize a private copy, never the caller's memory
	if err := spec.Normalize(); err != nil {
		return "", false, err
	}
	canonical := spec.Canonical()

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return "", false, ErrDraining
	}
	m.submitted++
	ex := m.byCanon[canonical]
	if ex != nil {
		deduped = true
		m.dedupHits++
	} else {
		if len(m.queue) == cap(m.queue) {
			m.submitted--
			return "", false, ErrQueueFull
		}
		ex = &execution{
			canonical: canonical,
			spec:      spec,
			state:     StatusQueued,
			notify:    make(chan struct{}),
		}
		ex.append(StatusQueued, Event{Type: "queued"})
		m.byCanon[canonical] = ex
		m.executions++
		m.queuedCount++
		if m.state != nil {
			if err := m.state.saveExecSpec(canonHash(canonical), canonical); err != nil {
				m.submitted--
				m.executions--
				m.queuedCount--
				delete(m.byCanon, canonical)
				return "", false, err
			}
		}
		m.queue <- ex // cannot block: len checked under mu, only Submit sends
	}
	ex.mu.Lock()
	ex.attached++
	ex.mu.Unlock()

	m.seq++
	id = fmt.Sprintf("j%06d", m.seq)
	m.jobs[id] = &Job{id: id, ex: ex, deduped: deduped, created: time.Now()}
	if m.state != nil {
		// Best-effort: the job runs either way; a lost record only costs
		// the client its id after a restart.
		_ = m.state.saveJob(id, canonical)
	}
	return id, deduped, nil
}

func (m *Manager) worker() {
	defer m.workerWG.Done()
	for ex := range m.queue {
		m.runExecution(ex)
	}
}

func (m *Manager) runExecution(ex *execution) {
	m.mu.Lock()
	m.queuedCount--
	m.mu.Unlock()

	ctx := m.baseCtx
	var cancel context.CancelFunc
	if m.cfg.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, m.cfg.JobTimeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	ex.mu.Lock()
	if ex.state == StatusCanceled {
		// Every attached job canceled while it sat in the queue.
		ex.mu.Unlock()
		return
	}
	ex.cancel = cancel
	ex.appendLocked(StatusRunning, Event{Type: "started"})
	ex.mu.Unlock()

	m.mu.Lock()
	m.running++
	m.mu.Unlock()

	start := time.Now()
	var lastEmit time.Time
	progress := func(d progressDelta) {
		ex.mu.Lock()
		ex.cells += d.cells
		ex.cycles += d.cycles
		ex.recoveries += d.recoveries
		ex.reconfigs += d.reconfigs
		ex.reconfigDrained += d.reconfigDrained
		ex.reconfigFallbacks += d.reconfigFallbacks
		switch {
		case d.recoveries > 0:
			// Recovery events are rare and diagnostic — emit unthrottled so
			// a stream consumer sees every liveness intervention.
			ex.appendLocked("", Event{Type: "recovery"})
		case d.reconfigs > 0 || d.reconfigFallbacks > 0:
			// Reconfigurations likewise: every swap, drain or fallback is an
			// event of its own.
			ex.appendLocked("", Event{Type: "reconfig"})
		case time.Since(lastEmit) >= 50*time.Millisecond:
			// Throttle the stream: at most one progress event per 50ms keeps
			// event logs bounded for big campaigns while staying live.
			lastEmit = time.Now()
			ex.appendLocked("", Event{Type: "progress"})
		}
		ex.mu.Unlock()
		m.mu.Lock()
		m.totalCells += d.cells
		m.totalCycles += d.cycles
		m.totalRecoveries += d.recoveries
		m.totalReconfigs += d.reconfigs
		m.totalRecfgDrain += d.reconfigDrained
		m.totalRecfgFall += d.reconfigFallbacks
		m.mu.Unlock()
	}

	var st *execState
	if m.state != nil {
		st = &execState{store: m.state, hash: canonHash(ex.canonical), every: m.cfg.CheckpointEvery}
	}
	artifact, err := runSpec(ctx, ex.spec, m.budget, m.cfg.Parallel, progress, st)
	elapsed := time.Since(start)

	var final Status
	var ev Event
	switch {
	case err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
		final, ev = StatusCanceled, Event{Type: "canceled", Error: err.Error()}
	case err != nil:
		final, ev = StatusFailed, Event{Type: "failed", Error: err.Error()}
	default:
		final, ev = StatusDone, Event{Type: "done"}
	}
	if st != nil {
		switch final {
		case StatusDone:
			// Persisting the artifact marks the execution done; a crash
			// before the rename re-runs it from its checkpoints instead.
			if perr := m.state.saveArtifact(st.hash, artifact); perr != nil {
				final, ev = StatusFailed, Event{Type: "failed", Error: perr.Error()}
				err = perr
				m.state.removeExec(st.hash)
			}
		case StatusFailed:
			// Failures are not cached (below) and their state would only
			// replay the failure; discard it.
			m.state.removeExec(st.hash)
		case StatusCanceled:
			// Keep the checkpoints: a canceled (or SIGTERM-interrupted)
			// execution resumes on the next boot.
		}
	}

	ex.mu.Lock()
	ex.artifact = artifact
	ex.err = err
	ex.cancel = nil
	ex.appendLocked(final, ev)
	ex.mu.Unlock()

	m.mu.Lock()
	m.running--
	m.durations.Add(elapsed.Milliseconds())
	switch final {
	case StatusDone:
		m.done++
	case StatusFailed:
		m.failed++
		// Failures are not cached: a resubmission gets a fresh run.
		delete(m.byCanon, ex.canonical)
	case StatusCanceled:
		m.canceledEx++
		delete(m.byCanon, ex.canonical)
	}
	m.mu.Unlock()
}

// Cancel cancels one job. If it was the execution's last interested job,
// the execution itself is canceled: dequeued if still queued, or its
// context canceled mid-run (the worker is freed at the next cell/cycle
// boundary).
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	job, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return ErrNotFound
	}
	if job.canceled {
		m.mu.Unlock()
		return nil
	}
	job.canceled = true
	ex := job.ex
	m.mu.Unlock()

	ex.mu.Lock()
	ex.attached--
	if ex.attached > 0 || ex.state.terminal() {
		ex.mu.Unlock()
		return nil
	}
	if ex.state == StatusQueued {
		// The worker that eventually dequeues it will skip it (and account
		// for the freed queue slot then).
		ex.appendLocked(StatusCanceled, Event{Type: "canceled"})
		ex.mu.Unlock()
		m.mu.Lock()
		m.canceledEx++
		delete(m.byCanon, ex.canonical)
		m.mu.Unlock()
		return nil
	}
	cancel := ex.cancel
	ex.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return nil
}

// JobView is the API projection of one job.
type JobView struct {
	ID      string `json:"id"`
	Status  Status `json:"status"`
	Kind    Kind   `json:"kind"`
	Deduped bool   `json:"deduped,omitempty"`
	Cells   int64  `json:"cells,omitempty"`
	Cycles  int64  `json:"cycles,omitempty"`
	// Recoveries is the count of deadlock recoveries the liveness layer took
	// during the execution.
	Recoveries int64 `json:"recoveries,omitempty"`
	// Reconfigured is the count of committed online reconfigurations (hot
	// swaps plus bounded drains), ReconfigDrained the in-flight packets those
	// drains purged, and ReconfigFellBack the attempts that degraded to
	// rebuild-in-place.
	Reconfigured     int64 `json:"reconfigured,omitempty"`
	ReconfigDrained  int64 `json:"reconfig_drained,omitempty"`
	ReconfigFellBack int64 `json:"reconfig_fellback,omitempty"`
	// ArtifactBytes is the artifact length once the job is terminal.
	ArtifactBytes int    `json:"artifact_bytes,omitempty"`
	Error         string `json:"error,omitempty"`
}

// status resolves the job-level status (a canceled job stays canceled even
// if its shared execution runs on for other jobs).
func (m *Manager) status(job *Job) Status {
	if job.canceled {
		return StatusCanceled
	}
	job.ex.mu.Lock()
	defer job.ex.mu.Unlock()
	return job.ex.state
}

// Lookup returns the API view of one job.
func (m *Manager) Lookup(id string) (JobView, error) {
	m.mu.Lock()
	job, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return JobView{}, ErrNotFound
	}
	v := JobView{ID: id, Kind: job.ex.spec.Kind, Deduped: job.deduped, Status: m.status(job)}
	ex := job.ex
	ex.mu.Lock()
	v.Cells, v.Cycles, v.Recoveries = ex.cells, ex.cycles, ex.recoveries
	v.Reconfigured, v.ReconfigDrained, v.ReconfigFellBack = ex.reconfigs, ex.reconfigDrained, ex.reconfigFallbacks
	v.ArtifactBytes = len(ex.artifact)
	if ex.err != nil {
		v.Error = ex.err.Error()
	}
	ex.mu.Unlock()
	return v, nil
}

// Artifact returns the job's report artifact. ok is false until the
// execution reaches a terminal state that produced bytes.
func (m *Manager) Artifact(id string) (artifact []byte, ok bool, err error) {
	m.mu.Lock()
	job, exists := m.jobs[id]
	m.mu.Unlock()
	if !exists {
		return nil, false, ErrNotFound
	}
	ex := job.ex
	ex.mu.Lock()
	defer ex.mu.Unlock()
	if !ex.state.terminal() || len(ex.artifact) == 0 {
		return nil, false, nil
	}
	return ex.artifact, true, nil
}

// Events exposes a job's stream for the HTTP layer: events from seq on,
// terminality, and a wakeup channel. A canceled job's stream is terminal
// even while the shared execution runs for other jobs.
func (m *Manager) Events(id string, from int64) ([]Event, bool, <-chan struct{}, error) {
	m.mu.Lock()
	job, ok := m.jobs[id]
	canceled := ok && job.canceled
	m.mu.Unlock()
	if !ok {
		return nil, false, nil, ErrNotFound
	}
	evs, terminal, notify := job.ex.snapshot(from)
	return evs, terminal || canceled, notify, nil
}

// JobCanceled reports whether the job itself (not its execution) was
// canceled.
func (m *Manager) JobCanceled(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	return ok && job.canceled
}

// Drain stops accepting submissions, lets queued and running executions
// finish, and returns when the pool is idle. Safe to call once.
func (m *Manager) Drain() {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		m.workerWG.Wait()
		return
	}
	m.draining = true
	close(m.queue)
	m.mu.Unlock()
	m.workerWG.Wait()
}

// Stop aborts: running executions are canceled, then the pool drains. For
// tests and fatal shutdown paths.
func (m *Manager) Stop() {
	m.baseCancel()
	m.Drain()
}

// Draining reports whether the manager refuses new submissions.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Metrics is the /metrics payload.
type Metrics struct {
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	Workers    int `json:"workers"`
	Parallel   int `json:"parallel"`

	Submitted   int64 `json:"jobs_submitted"`
	Deduped     int64 `json:"jobs_deduped"`
	Executions  int64 `json:"executions"`
	Running     int64 `json:"running"`
	Queued      int64 `json:"queued"`
	Done        int64 `json:"done"`
	Failed      int64 `json:"failed"`
	CanceledExs int64 `json:"canceled"`

	// CacheHitRate is deduped submissions over all submissions.
	CacheHitRate float64 `json:"cache_hit_rate"`

	CellsDone    int64   `json:"cells_done"`
	CyclesDone   int64   `json:"cycles_done"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	// RecoveriesDone is the total deadlock recoveries taken by the liveness
	// layer across all executions since the manager started.
	RecoveriesDone int64 `json:"recoveries_done"`
	// ReconfiguredDone is the total committed online reconfigurations (hot
	// swaps plus bounded drains) across all executions since the manager
	// started; ReconfigDrainedDone the packets transition drains purged and
	// ReconfigFellBackDone the attempts that degraded to rebuild-in-place.
	ReconfiguredDone     int64 `json:"reconfigured_done"`
	ReconfigDrainedDone  int64 `json:"reconfig_drained_done"`
	ReconfigFellBackDone int64 `json:"reconfig_fellback_done"`

	// Job wall-clock duration summary (milliseconds), nearest-rank
	// percentiles via stats.Latency.
	DurationCount int     `json:"job_duration_count"`
	DurationMean  float64 `json:"job_duration_mean_ms"`
	DurationP50   int64   `json:"job_duration_p50_ms"`
	DurationP95   int64   `json:"job_duration_p95_ms"`
	DurationMax   int64   `json:"job_duration_max_ms"`
}

// Metrics snapshots the manager's counters.
func (m *Manager) Metrics() Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	mt := Metrics{
		QueueDepth:           len(m.queue),
		QueueCap:             cap(m.queue),
		Workers:              m.cfg.Workers,
		Parallel:             m.cfg.Parallel,
		Submitted:            m.submitted,
		Deduped:              m.dedupHits,
		Executions:           m.executions,
		Running:              m.running,
		Queued:               m.queuedCount,
		Done:                 m.done,
		Failed:               m.failed,
		CanceledExs:          m.canceledEx,
		CellsDone:            m.totalCells,
		CyclesDone:           m.totalCycles,
		RecoveriesDone:       m.totalRecoveries,
		ReconfiguredDone:     m.totalReconfigs,
		ReconfigDrainedDone:  m.totalRecfgDrain,
		ReconfigFellBackDone: m.totalRecfgFall,
	}
	if m.submitted > 0 {
		mt.CacheHitRate = float64(m.dedupHits) / float64(m.submitted)
	}
	if secs := time.Since(m.started).Seconds(); secs > 0 {
		mt.CyclesPerSec = float64(m.totalCycles) / secs
	}
	mt.DurationCount = m.durations.Count()
	if mt.DurationCount > 0 {
		mt.DurationMean = m.durations.Mean()
		mt.DurationP50 = m.durations.Percentile(50)
		mt.DurationP95 = m.durations.Percentile(95)
		mt.DurationMax = m.durations.Max()
	}
	return mt
}
