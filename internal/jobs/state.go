package jobs

// Crash-safe job state. With Config.StateDir set, the manager persists
// enough to survive a kill -TERM mid-run and finish every job with the
// exact artifact the uninterrupted server would have produced:
//
//	<dir>/jobs/<id>.json        one record per submitted job (id -> spec)
//	<dir>/execs/<h>/spec.json   the execution's canonical spec
//	<dir>/execs/<h>/artifact    the final artifact (present <=> done)
//	<dir>/execs/<h>/cells/      campaign checkpoint store (campaign kind)
//	<dir>/execs/<h>/single.snap mid-run snapshot (fault kind)
//
// where <h> is the 64-bit FNV-1a of the canonical spec, in hex. On boot the
// manager rescans: executions with an artifact are resurrected as completed
// (resubmissions dedupe onto them), executions without one are re-enqueued
// and resume from their checkpoints. All files are written atomically
// (temp + rename), so a crash leaves old state or none, never torn state.

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

type stateStore struct {
	dir string
}

func openStateStore(dir string) (*stateStore, error) {
	for _, d := range []string{dir, filepath.Join(dir, "jobs"), filepath.Join(dir, "execs")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("jobs: state dir: %w", err)
		}
	}
	return &stateStore{dir: dir}, nil
}

func canonHash(canonical string) string {
	h := fnv.New64a()
	h.Write([]byte(canonical))
	return fmt.Sprintf("%016x", h.Sum64())
}

func (s *stateStore) execDir(h string) string  { return filepath.Join(s.dir, "execs", h) }
func (s *stateStore) cellsDir(h string) string { return filepath.Join(s.execDir(h), "cells") }
func (s *stateStore) singleSnapPath(h string) string {
	return filepath.Join(s.execDir(h), "single.snap")
}

// writeAtomic writes data via temp + rename inside the target's directory.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// saveExecSpec records a new execution's canonical spec.
func (s *stateStore) saveExecSpec(h, canonical string) error {
	if err := os.MkdirAll(s.execDir(h), 0o755); err != nil {
		return err
	}
	return writeAtomic(filepath.Join(s.execDir(h), "spec.json"), []byte(canonical))
}

// saveArtifact marks an execution done.
func (s *stateStore) saveArtifact(h string, artifact []byte) error {
	return writeAtomic(filepath.Join(s.execDir(h), "artifact"), artifact)
}

// removeExec discards an execution's state (failed runs are not cached).
func (s *stateStore) removeExec(h string) {
	os.RemoveAll(s.execDir(h))
}

// removeSingleSnap retires a fault run's mid-run snapshot.
func (s *stateStore) removeSingleSnap(h string) {
	os.Remove(s.singleSnapPath(h))
}

// saveSingleSnap parks a fault run's mid-run snapshot.
func (s *stateStore) saveSingleSnap(h string, data []byte) error {
	return writeAtomic(s.singleSnapPath(h), data)
}

// loadSingleSnap fetches a fault run's snapshot, ok=false when absent.
func (s *stateStore) loadSingleSnap(h string) ([]byte, bool) {
	data, err := os.ReadFile(s.singleSnapPath(h))
	if err != nil {
		return nil, false
	}
	return data, true
}

// saveJob records one job id -> canonical spec binding.
func (s *stateStore) saveJob(id, canonical string) error {
	rec, err := json.Marshal(struct {
		ID        string `json:"id"`
		Canonical string `json:"canonical"`
	}{id, canonical})
	if err != nil {
		return err
	}
	return writeAtomic(filepath.Join(s.dir, "jobs", id+".json"), rec)
}

// rescanExec is one persisted execution found at boot.
type rescanExec struct {
	hash      string
	canonical string
	artifact  []byte // nil when the execution was interrupted
}

// rescanJob is one persisted job record found at boot.
type rescanJob struct {
	id        string
	canonical string
}

// rescan loads every persisted execution and job record, dropping records
// that fail to parse (a torn write from a crashed process) rather than
// refusing to boot. Executions and jobs come back in deterministic
// (lexical) order so re-enqueueing is reproducible.
func (s *stateStore) rescan() ([]rescanExec, []rescanJob, error) {
	var execs []rescanExec
	ents, err := os.ReadDir(filepath.Join(s.dir, "execs"))
	if err != nil {
		return nil, nil, err
	}
	for _, ent := range ents {
		if !ent.IsDir() {
			continue
		}
		h := ent.Name()
		spec, err := os.ReadFile(filepath.Join(s.execDir(h), "spec.json"))
		if err != nil {
			s.removeExec(h)
			continue
		}
		canonical := string(spec)
		if canonHash(canonical) != h {
			s.removeExec(h)
			continue
		}
		re := rescanExec{hash: h, canonical: canonical}
		if art, err := os.ReadFile(filepath.Join(s.execDir(h), "artifact")); err == nil {
			re.artifact = art
		}
		execs = append(execs, re)
	}
	sort.Slice(execs, func(i, j int) bool { return execs[i].hash < execs[j].hash })

	var jobsOut []rescanJob
	jents, err := os.ReadDir(filepath.Join(s.dir, "jobs"))
	if err != nil {
		return nil, nil, err
	}
	for _, ent := range jents {
		name := ent.Name()
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, "jobs", name))
		if err != nil {
			continue
		}
		var rec struct {
			ID        string `json:"id"`
			Canonical string `json:"canonical"`
		}
		if json.Unmarshal(data, &rec) != nil || rec.ID == "" || rec.Canonical == "" {
			os.Remove(filepath.Join(s.dir, "jobs", name))
			continue
		}
		jobsOut = append(jobsOut, rescanJob{id: rec.ID, canonical: rec.Canonical})
	}
	sort.Slice(jobsOut, func(i, j int) bool { return jobsOut[i].id < jobsOut[j].id })
	return execs, jobsOut, nil
}
