package jobs

// Crash-safe job state. With Config.StateDir set, the manager persists
// enough to survive a kill -9 mid-run and finish every job with the exact
// artifact the uninterrupted server would have produced. Several worker
// processes may share one state directory; the lease layer (lease.go)
// arbitrates ownership per execution.
//
//	<dir>/jobs/<worker>/<id>.json  one record per submitted job (id -> spec)
//	<dir>/execs/<h>/spec.json      the execution's canonical spec
//	<dir>/execs/<h>/artifact       the final artifact (present <=> done)
//	<dir>/execs/<h>/artifact.sum   FNV-1a checksum of the artifact bytes
//	<dir>/execs/<h>/cells/         campaign checkpoint store (campaign kind)
//	<dir>/execs/<h>/single.snap    mid-run snapshot (fault kind)
//	<dir>/execs/<h>/lease/         ownership claims + heartbeat (lease.go)
//	<dir>/execs/<h>/poisoned.json  quarantine record (lease.go)
//
// where <h> is the 64-bit FNV-1a of the canonical spec, in hex — the
// content address under which a whole fleet dedupes executions: any worker
// that finds the artifact present adopts it instead of re-running. Job ids
// are scoped per worker (jobs/<worker>/) so fleet members never collide on
// id allocation. On boot a manager rescans: executions with a checksummed
// artifact are resurrected as completed, executions without one are
// re-enqueued and resume from their checkpoints once the lease is won. All
// files are written atomically (temp + rename), so a crash leaves old
// state or none, never torn state; anything torn anyway (bit flips,
// truncation) reads as absent.

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

type stateStore struct {
	dir    string
	worker string
}

func openStateStore(dir, worker string) (*stateStore, error) {
	for _, d := range []string{dir, filepath.Join(dir, "jobs", worker), filepath.Join(dir, "execs")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("jobs: state dir: %w", err)
		}
	}
	return &stateStore{dir: dir, worker: worker}, nil
}

func canonHash(canonical string) string {
	h := fnv.New64a()
	h.Write([]byte(canonical))
	return fmt.Sprintf("%016x", h.Sum64())
}

func (s *stateStore) execDir(h string) string  { return filepath.Join(s.dir, "execs", h) }
func (s *stateStore) cellsDir(h string) string { return filepath.Join(s.execDir(h), "cells") }
func (s *stateStore) jobsDir() string          { return filepath.Join(s.dir, "jobs", s.worker) }
func (s *stateStore) singleSnapPath(h string) string {
	return filepath.Join(s.execDir(h), "single.snap")
}

// writeAtomic writes data via temp + rename inside the target's directory.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// probe verifies the state directory is still writable — the readiness
// signal. It exercises the same CreateTemp+rename path every persisted
// write uses, so ENOSPC or an unmounted volume fails here first.
func (s *stateStore) probe() error {
	return writeAtomic(filepath.Join(s.dir, ".probe-"+s.worker), []byte("ok"))
}

// saveExecSpec records a new execution's canonical spec.
func (s *stateStore) saveExecSpec(h, canonical string) error {
	if err := os.MkdirAll(s.execDir(h), 0o755); err != nil {
		return err
	}
	return writeAtomic(filepath.Join(s.execDir(h), "spec.json"), []byte(canonical))
}

// artifactSum is the checksum sidecar content for artifact bytes.
func artifactSum(artifact []byte) []byte {
	h := fnv.New64a()
	h.Write(artifact)
	return []byte(fmt.Sprintf("%016x", h.Sum64()))
}

// saveArtifact marks an execution done. The sidecar checksum goes first;
// the artifact rename stays the commit point (a sum without an artifact is
// harmless litter, an artifact whose sum disagrees reads as absent).
func (s *stateStore) saveArtifact(h string, artifact []byte) error {
	if err := writeAtomic(filepath.Join(s.execDir(h), "artifact.sum"), artifactSum(artifact)); err != nil {
		return err
	}
	return writeAtomic(filepath.Join(s.execDir(h), "artifact"), artifact)
}

// loadArtifact fetches a finished execution's artifact, verifying the
// checksum sidecar. ok is false when absent or corrupt — a bit-flipped
// artifact is re-run, never served.
func (s *stateStore) loadArtifact(h string) ([]byte, bool) {
	art, err := os.ReadFile(filepath.Join(s.execDir(h), "artifact"))
	if err != nil {
		return nil, false
	}
	sum, err := os.ReadFile(filepath.Join(s.execDir(h), "artifact.sum"))
	if err != nil || string(sum) != string(artifactSum(art)) {
		return nil, false
	}
	return art, true
}

// removeExec discards an execution's state (failed runs are not cached).
func (s *stateStore) removeExec(h string) {
	os.RemoveAll(s.execDir(h))
}

// removeSingleSnap retires a fault run's mid-run snapshot.
func (s *stateStore) removeSingleSnap(h string) {
	os.Remove(s.singleSnapPath(h))
}

// saveSingleSnap parks a fault run's mid-run snapshot.
func (s *stateStore) saveSingleSnap(h string, data []byte) error {
	return writeAtomic(s.singleSnapPath(h), data)
}

// loadSingleSnap fetches a fault run's snapshot, ok=false when absent.
func (s *stateStore) loadSingleSnap(h string) ([]byte, bool) {
	data, err := os.ReadFile(s.singleSnapPath(h))
	if err != nil {
		return nil, false
	}
	return data, true
}

// saveJob records one job id -> canonical spec binding (scoped to this
// worker: fleet members allocate ids independently).
func (s *stateStore) saveJob(id, canonical string) error {
	rec, err := json.Marshal(struct {
		ID        string `json:"id"`
		Canonical string `json:"canonical"`
	}{id, canonical})
	if err != nil {
		return err
	}
	return writeAtomic(filepath.Join(s.jobsDir(), id+".json"), rec)
}

// rescanExec is one persisted execution found at boot.
type rescanExec struct {
	hash      string
	canonical string
	artifact  []byte        // nil when the execution was interrupted
	poisoned  *poisonRecord // non-nil when the spec is quarantined
}

// rescanJob is one persisted job record found at boot.
type rescanJob struct {
	id        string
	canonical string
}

// cleanTmp removes stale writeAtomic temp litter from dir — files a killed
// process created but never renamed. Only call it on directories no live
// peer is writing (an in-flight peer temp deleted here would fail the
// peer's rename).
func cleanTmp(dir string) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, ent := range ents {
		if strings.Contains(ent.Name(), ".tmp-") {
			os.Remove(filepath.Join(dir, ent.Name()))
		}
	}
}

// rescan loads every persisted execution plus this worker's job records,
// dropping records that fail to parse (a torn write from a crashed
// process) rather than refusing to boot. Corrupt executions are deleted
// only when no fresh lease guards them — a peer may be mid-creation.
// Executions and jobs come back in deterministic (lexical) order so
// re-enqueueing is reproducible.
func (s *stateStore) rescan(ttl time.Duration) ([]rescanExec, []rescanJob, error) {
	var execs []rescanExec
	ents, err := os.ReadDir(filepath.Join(s.dir, "execs"))
	if err != nil {
		return nil, nil, err
	}
	for _, ent := range ents {
		if !ent.IsDir() {
			continue
		}
		h := ent.Name()
		// unguarded: no peer holds a live lease, so destructive cleanup of
		// corrupt state (and temp litter) is safe.
		info, lerr := s.leaseInfo(h)
		unguarded := lerr == nil && (info.epoch == 0 || info.released || time.Since(info.renewed) >= ttl)
		spec, err := os.ReadFile(filepath.Join(s.execDir(h), "spec.json"))
		if err != nil || canonHash(string(spec)) != h {
			if unguarded {
				s.removeExec(h)
			}
			continue
		}
		if unguarded {
			cleanTmp(s.execDir(h))
			cleanTmp(s.leaseDir(h))
		}
		re := rescanExec{hash: h, canonical: string(spec)}
		if art, ok := s.loadArtifact(h); ok {
			re.artifact = art
		}
		if pr, ok := s.poisonInfo(h); ok {
			re.poisoned = &pr
		}
		execs = append(execs, re)
	}
	sort.Slice(execs, func(i, j int) bool { return execs[i].hash < execs[j].hash })

	// This worker's own job records: no peer writes here, clean freely.
	cleanTmp(s.jobsDir())
	var jobsOut []rescanJob
	jents, err := os.ReadDir(s.jobsDir())
	if err != nil {
		return nil, nil, err
	}
	for _, ent := range jents {
		name := ent.Name()
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.jobsDir(), name))
		if err != nil {
			continue
		}
		var rec struct {
			ID        string `json:"id"`
			Canonical string `json:"canonical"`
		}
		if json.Unmarshal(data, &rec) != nil || rec.ID == "" || rec.Canonical == "" {
			os.Remove(filepath.Join(s.jobsDir(), name))
			continue
		}
		jobsOut = append(jobsOut, rescanJob{id: rec.ID, canonical: rec.Canonical})
	}
	sort.Slice(jobsOut, func(i, j int) bool { return jobsOut[i].id < jobsOut[j].id })
	return execs, jobsOut, nil
}
