package jobs

// The service-layer face of the sharded-vs-serial equivalence wall: a job
// submitted with "shards" set produces an artifact byte-identical to the
// serial submission, for both the single-fault and campaign kinds, and the
// decoder polices the field like every other resource knob.

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestShardedJobArtifactBytesIdentical(t *testing.T) {
	faultSpec := func(shards int) Spec {
		return Spec{Kind: KindFault, Fault: &FaultSpec{
			Shape:   "4x4",
			Fails:   []string{"rtc:1,1@40"},
			Pattern: "shift+5",
			Waves:   3,
			Gap:     16,
			Inject:  InjectSpec{Retransmit: true},
			Shards:  shards,
		}}
	}
	campaignSpec := func(shards int) Spec {
		return Spec{Kind: KindCampaign, Campaign: &CampaignSpec{
			Shape:    "4x4",
			Epochs:   []int64{12, 60},
			Patterns: []string{"shift+5", "reverse"},
			Inject:   InjectSpec{Retransmit: true},
			Shards:   shards,
		}}
	}
	for _, tc := range []struct {
		name string
		spec func(shards int) Spec
	}{
		{"fault", faultSpec},
		{"campaign", campaignSpec},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			serial := jobArtifact(t, tc.spec(0), 2)
			for _, shards := range []int{2, 3} {
				if got := jobArtifact(t, tc.spec(shards), 2); !bytes.Equal(got, serial) {
					t.Errorf("shards=%d artifact differs from serial:\n--- serial ---\n%s--- sharded ---\n%s",
						shards, serial, got)
				}
			}
		})
	}
}

func TestShardSpecValidation(t *testing.T) {
	decode := func(body string) error {
		_, err := DecodeSpec([]byte(body))
		return err
	}
	base := `{"kind":"campaign","campaign":{"shape":"4x4","epochs":[12],"patterns":["shift+5"],"shards":%s}}`
	for _, tc := range []struct {
		shards string
		field  string // empty = must be accepted
	}{
		{"3", ""},
		{"0", ""},
		{"-1", "campaign.shards"},
		{"65", "campaign.shards"},
	} {
		err := decode(strings.Replace(base, "%s", tc.shards, 1))
		if tc.field == "" {
			if err != nil {
				t.Errorf("shards=%s: unexpected rejection: %v", tc.shards, err)
			}
			continue
		}
		var fe *FieldError
		if !errors.As(err, &fe) || fe.Field != tc.field {
			t.Errorf("shards=%s: want FieldError on %q, got %v", tc.shards, tc.field, err)
		}
	}
	if err := decode(`{"kind":"fault","fault":{"shape":"4x4","fails":["rtc:1,1@40"],"pattern":"reverse","shards":-2}}`); err == nil {
		t.Error("negative fault.shards accepted")
	}

	// The count survives canonicalization, so a persisted execution resumes
	// under the shard count it was submitted with.
	spec, err := DecodeSpec([]byte(strings.Replace(base, "%s", "3", 1)))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(spec.Canonical(), `"shards":3`) {
		t.Errorf("canonical encoding dropped shards: %s", spec.Canonical())
	}
}
