package jobs

// The multi-worker test wall: several Managers sharing one state
// directory must behave like one crash-tolerant fleet — an expired lease
// is stolen by exactly one peer and resumed from the parked checkpoint to
// byte-identical artifacts, finished work is adopted instead of re-run, a
// spec that keeps killing its owners is quarantined, and a worker that
// loses the state dir degrades to local-queue-only instead of dying.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// takeoverSpec runs for a second or two (long enough to be killed mid-run,
// short enough that a resumed run finishes promptly).
func takeoverSpec() Spec {
	return Spec{Kind: KindFault, Fault: &FaultSpec{
		Shape:   "4x4",
		Fails:   []string{"rtc:1,1@40"},
		Pattern: "shift+5",
		Waves:   1_500, // ~150k cycles: survives the race detector's slowdown

		Gap:     100,
		Horizon: maxHorizon,
	}}
}

// waitCheckpoint blocks until the execution has parked a mid-run snapshot
// (so a takeover has something to resume from).
func waitCheckpoint(t *testing.T, dir, h string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	snap := filepath.Join(dir, "execs", h, "single.snap")
	for time.Now().Before(deadline) {
		if _, err := os.Stat(snap); err == nil {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("no mid-run checkpoint ever parked")
}

// fleetConfig is one member of a shared-state-dir fleet with a short TTL
// so takeovers happen on test timescales.
func fleetConfig(dir, worker string, ttl time.Duration) Config {
	return Config{
		Workers:         1,
		Parallel:        1,
		StateDir:        dir,
		CheckpointEvery: 512,
		WorkerID:        worker,
		LeaseTTL:        ttl,
	}
}

// TestLeaseTakeoverAfterKill: a SIGKILLed owner's job is taken over by a
// peer within one lease-expiry interval (freshness window + one recheck),
// resumed from the parked checkpoint, and finishes byte-identical to an
// uninterrupted run.
func TestLeaseTakeoverAfterKill(t *testing.T) {
	spec := takeoverSpec()
	want := referenceArtifact(t, spec)
	h := normalizedHash(t, spec)
	dir := t.TempDir()
	const ttl = 400 * time.Millisecond

	mA, err := OpenManager(fleetConfig(dir, "wa", ttl))
	if err != nil {
		t.Fatal(err)
	}
	idA, _, err := mA.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, mA, idA, StatusRunning)
	waitCheckpoint(t, dir, h)
	killedAt := time.Now()
	mA.Kill() // no release, no final park: the on-disk state of a dead owner

	mB, err := OpenManager(fleetConfig(dir, "wb", ttl))
	if err != nil {
		t.Fatal(err)
	}
	defer mB.Stop()
	// The interrupted execution was re-enqueued from disk at boot; attach a
	// job to observe it.
	idB, deduped, err := mB.Submit(spec)
	if err != nil || !deduped {
		t.Fatalf("submit to peer: deduped=%v err=%v", deduped, err)
	}
	waitStatus(t, mB, idB, StatusRunning)
	took := time.Since(killedAt)

	// The lease stays fresh for up to one TTL after the kill; the next
	// recheck (backoff cadence is capped at one TTL) must steal it. The
	// extra second absorbs CI scheduling noise, not protocol latency.
	if limit := 2*ttl + time.Second; took > limit {
		t.Errorf("takeover took %v, want <= %v (one lease-expiry interval)", took, limit)
	}
	if mt := mB.Metrics(); mt.StolenLeases != 1 {
		t.Errorf("peer stole %d leases, want exactly 1", mt.StolenLeases)
	}

	v := waitStatus(t, mB, idB, StatusDone)
	got, ok, err := mB.Artifact(idB)
	if err != nil || !ok {
		t.Fatalf("taken-over artifact: ok=%v err=%v (job err=%q)", ok, err, v.Error)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("taken-over artifact differs from uninterrupted run\n--- takeover\n%s--- reference\n%s", got, want)
	}
	if mt := mB.Metrics(); mt.Executions != 1 || mt.Done != 1 {
		t.Errorf("peer ran %d executions (%d done), want exactly 1 visible result", mt.Executions, mt.Done)
	}
}

// TestRacingOpenManagerExactlyOneSteal: two managers booting concurrently
// over one state dir with an expired lease race for the takeover; the
// O_EXCL claim guarantees exactly one steals, the other adopts the
// winner's artifact, and both serve bytes identical to an uninterrupted
// run. (The race matrix runs this under -race.)
func TestRacingOpenManagerExactlyOneSteal(t *testing.T) {
	spec := takeoverSpec()
	want := referenceArtifact(t, spec)
	h := normalizedHash(t, spec)
	dir := t.TempDir()
	const ttl = 300 * time.Millisecond

	mA, err := OpenManager(fleetConfig(dir, "wa", ttl))
	if err != nil {
		t.Fatal(err)
	}
	idA, _, err := mA.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, mA, idA, StatusRunning)
	waitCheckpoint(t, dir, h)
	mA.Kill()
	time.Sleep(ttl + 50*time.Millisecond) // let the dead owner's lease expire

	peers := make([]*Manager, 2)
	errs := make([]error, 2)
	boot := make(chan int, 2)
	for i, w := range []string{"wb", "wc"} {
		go func(i int, w string) {
			peers[i], errs[i] = OpenManager(fleetConfig(dir, w, ttl))
			boot <- i
		}(i, w)
	}
	<-boot
	<-boot
	for i, err := range errs {
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
		defer peers[i].Stop()
	}

	var artifacts [][]byte
	for _, m := range peers {
		id, deduped, err := m.Submit(spec)
		if err != nil || !deduped {
			t.Fatalf("submit: deduped=%v err=%v", deduped, err)
		}
		waitStatus(t, m, id, StatusDone)
		art, ok, err := m.Artifact(id)
		if err != nil || !ok {
			t.Fatalf("artifact: ok=%v err=%v", ok, err)
		}
		artifacts = append(artifacts, art)
	}
	steals := peers[0].Metrics().StolenLeases + peers[1].Metrics().StolenLeases
	if steals != 1 {
		t.Errorf("racing peers stole %d leases, want exactly 1", steals)
	}
	adopts := peers[0].Metrics().Adopted + peers[1].Metrics().Adopted
	if adopts != 1 {
		t.Errorf("racing peers adopted %d artifacts, want exactly 1 (the loser)", adopts)
	}
	for i, art := range artifacts {
		if !bytes.Equal(art, want) {
			t.Errorf("peer %d artifact differs from uninterrupted run", i)
		}
	}
}

// TestPoisonQuarantineAfterOwnerDeaths: a spec that keeps killing its
// owners is quarantined after PoisonAfter deaths — parked with its last
// checkpoint and a classified error — while the fleet keeps serving other
// jobs; resubmissions dedupe onto the verdict instead of re-running it.
func TestPoisonQuarantineAfterOwnerDeaths(t *testing.T) {
	spec := longFaultSpec(100) // runs "forever": every owner dies mid-run
	h := normalizedHash(t, spec)
	dir := t.TempDir()
	const ttl = 300 * time.Millisecond
	cfg := func(w string) Config {
		c := fleetConfig(dir, w, ttl)
		c.PoisonAfter = 2
		return c
	}

	// Owner 1 claims, checkpoints, dies.
	mA, err := OpenManager(cfg("wa"))
	if err != nil {
		t.Fatal(err)
	}
	idA, _, err := mA.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, mA, idA, StatusRunning)
	waitCheckpoint(t, dir, h)
	mA.Kill()

	// Owner 2 steals (death #1), runs, dies too (death #2 pending).
	mB, err := OpenManager(cfg("wb"))
	if err != nil {
		t.Fatal(err)
	}
	idB, _, err := mB.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, mB, idB, StatusRunning)
	mB.Kill()

	// The third claimant sees two dead owners and quarantines instead of
	// running.
	mC, err := OpenManager(cfg("wc"))
	if err != nil {
		t.Fatal(err)
	}
	defer mC.Stop()
	idC, _, err := mC.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	var vC JobView
	for {
		vC, err = mC.Lookup(idC)
		if err != nil {
			t.Fatal(err)
		}
		if vC.Status == StatusFailed {
			break
		}
		if vC.Status == StatusDone || time.Now().After(deadline) {
			t.Fatalf("poison spec reached %s, want failed (quarantine)", vC.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !strings.Contains(vC.Error, "quarantined") || !strings.Contains(vC.Error, "died mid-run") {
		t.Errorf("quarantine error not classified: %q", vC.Error)
	}
	if mt := mC.Metrics(); mt.Poisoned != 1 {
		t.Errorf("poisoned count = %d, want 1", mt.Poisoned)
	}
	// The verdict and the last checkpoint are parked on disk for forensics.
	if _, err := os.Stat(filepath.Join(dir, "execs", h, "poisoned.json")); err != nil {
		t.Errorf("no poisoned.json parked: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "execs", h, "single.snap")); err != nil {
		t.Errorf("quarantine did not keep the last checkpoint: %v", err)
	}

	// The fleet keeps serving: an unrelated job on the same worker runs fine.
	idOK, _, err := mC.Submit(quickFaultSpec(24))
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, mC, idOK, StatusDone)

	// Resubmission dedupes onto the quarantine verdict, no re-run.
	idAgain, deduped, err := mC.Submit(spec)
	if err != nil || !deduped {
		t.Fatalf("resubmit poison: deduped=%v err=%v", deduped, err)
	}
	if v, _ := mC.Lookup(idAgain); v.Status != StatusFailed {
		t.Errorf("resubmitted poison status = %s, want failed immediately", v.Status)
	}

	// And a fresh boot over the same dir serves the verdict from rescan.
	mD, err := OpenManager(cfg("wd"))
	if err != nil {
		t.Fatal(err)
	}
	defer mD.Stop()
	idD, _, err := mD.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := mD.Lookup(idD); v.Status != StatusFailed || !strings.Contains(v.Error, "quarantined") {
		t.Errorf("rebooted worker serves poison spec as %s (err=%q), want classified failure", v.Status, v.Error)
	}
}

// TestAdoptionAcrossManagers: a second worker submitted the same spec
// defers to the live owner and adopts its artifact when it finishes — the
// fleet-wide content-addressed result cache, no duplicate execution.
func TestAdoptionAcrossManagers(t *testing.T) {
	spec := takeoverSpec()
	want := referenceArtifact(t, spec)
	dir := t.TempDir()
	const ttl = 300 * time.Millisecond

	mA, err := OpenManager(fleetConfig(dir, "wa", ttl))
	if err != nil {
		t.Fatal(err)
	}
	defer mA.Stop()
	idA, _, err := mA.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, mA, idA, StatusRunning)

	mB, err := OpenManager(fleetConfig(dir, "wb", ttl))
	if err != nil {
		t.Fatal(err)
	}
	defer mB.Stop()
	idB, deduped, err := mB.Submit(spec)
	if err != nil || !deduped {
		t.Fatalf("submit to peer: deduped=%v err=%v", deduped, err)
	}
	waitStatus(t, mB, idB, StatusDone)
	got, ok, err := mB.Artifact(idB)
	if err != nil || !ok {
		t.Fatalf("adopted artifact: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("adopted artifact differs from the owner's run")
	}
	if mt := mB.Metrics(); mt.Adopted != 1 || mt.StolenLeases != 0 {
		t.Errorf("peer adopted=%d stolen=%d, want adopted exactly once with no steal", mt.Adopted, mt.StolenLeases)
	}
	waitStatus(t, mA, idA, StatusDone)
}

// TestDegradedModeLocalQueueOnly: losing the state directory mid-flight
// (ENOSPC, unmounted volume — here, the directory replaced by a plain
// file) demotes the worker to local-queue-only mode: submissions still
// run, in memory, and readiness reports the loss instead of the process
// dying.
func TestDegradedModeLocalQueueOnly(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "state")
	m, err := OpenManager(fleetConfig(dir, "wa", time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	id1, _, err := m.Submit(quickFaultSpec(24))
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, id1, StatusDone)

	// Lose the volume: every future state write must fail.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}

	want := referenceArtifact(t, quickFaultSpec(26))
	id2, _, err := m.Submit(quickFaultSpec(26))
	if err != nil {
		t.Fatalf("submission after state loss must shed to the local queue, got %v", err)
	}
	waitStatus(t, m, id2, StatusDone)
	got, ok, err := m.Artifact(id2)
	if err != nil || !ok || !bytes.Equal(got, want) {
		t.Fatalf("degraded-mode artifact wrong: ok=%v err=%v", ok, err)
	}

	if degraded, derr := m.Degraded(); !degraded || derr == nil {
		t.Errorf("manager not degraded after losing the state dir (err=%v)", derr)
	}
	ready, reasons := m.Readiness()
	if ready {
		t.Error("degraded manager reports ready")
	}
	found := false
	for _, r := range reasons {
		if strings.Contains(r, "degraded") || strings.Contains(r, "state dir") {
			found = true
		}
	}
	if !found {
		t.Errorf("readiness reasons %q do not name the state loss", reasons)
	}
	if mt := m.Metrics(); !mt.Degraded {
		t.Error("metrics do not report degraded mode")
	}
}

// TestLeaseAcquireSemantics pins the protocol table at the store layer:
// fresh claim, held while renewed, plain resume after release (no death),
// steal after expiry (death counted), quarantine at the threshold.
func TestLeaseAcquireSemantics(t *testing.T) {
	st, err := openStateStore(t.TempDir(), "wa")
	if err != nil {
		t.Fatal(err)
	}
	const h = "00000000deadbeef"
	const ttl = 50 * time.Millisecond
	if err := st.saveExecSpec(h, "spec"); err != nil {
		t.Fatal(err)
	}

	res, err := st.acquire(h, "wa", ttl, 3)
	if err != nil || res.kind != acqOwned || res.epoch != 1 || res.stolen {
		t.Fatalf("first acquire: %+v err=%v, want owned epoch 1", res, err)
	}
	// A fresh lease holds off peers.
	res, err = st.acquire(h, "wb", ttl, 3)
	if err != nil || res.kind != acqHeld {
		t.Fatalf("acquire over fresh lease: %+v err=%v, want held", res, err)
	}
	// A clean release lets a peer resume without counting a death.
	if err := st.releaseLease(h, "wa", 1); err != nil {
		t.Fatal(err)
	}
	res, err = st.acquire(h, "wb", ttl, 3)
	if err != nil || res.kind != acqOwned || res.epoch != 2 || res.stolen || res.deaths != 0 {
		t.Fatalf("acquire over released lease: %+v err=%v, want clean resume", res, err)
	}
	// The displaced owner's renewal fails.
	if err := st.renewLease(h, "wa", 1); !errors.Is(err, errLeaseLost) {
		t.Fatalf("stale renew: %v, want errLeaseLost", err)
	}
	// Expiry without release is a death: the thief's claim counts it.
	time.Sleep(ttl + 10*time.Millisecond)
	res, err = st.acquire(h, "wc", ttl, 3)
	if err != nil || res.kind != acqOwned || res.epoch != 3 || !res.stolen || res.deaths != 1 {
		t.Fatalf("steal after expiry: %+v err=%v, want stolen with 1 death", res, err)
	}
	// A second and third death cross the threshold: quarantine.
	time.Sleep(ttl + 10*time.Millisecond)
	res, err = st.acquire(h, "wd", ttl, 3)
	if err != nil || res.kind != acqOwned || res.deaths != 2 {
		t.Fatalf("second steal: %+v err=%v", res, err)
	}
	time.Sleep(ttl + 10*time.Millisecond)
	res, err = st.acquire(h, "we", ttl, 3)
	if err != nil || res.kind != acqPoisoned || res.deaths != 3 {
		t.Fatalf("threshold claim: %+v err=%v, want poisoned at 3 deaths", res, err)
	}
	// The verdict is sticky and cheap: no further claims are consumed.
	if top, _ := st.topEpoch(h); top != 5 {
		t.Fatalf("top epoch = %d, want 5", top)
	}
	res, err = st.acquire(h, "wf", ttl, 3)
	if err != nil || res.kind != acqPoisoned {
		t.Fatalf("acquire on quarantined exec: %+v err=%v", res, err)
	}
	if top, _ := st.topEpoch(h); top != 5 {
		t.Fatal("quarantined acquire consumed a claim epoch")
	}

	// An artifact supersedes everything: peers adopt it.
	if err := st.saveArtifact(h, []byte("result")); err != nil {
		t.Fatal(err)
	}
	os.Remove(st.poisonPath(h))
	res, err = st.acquire(h, "wg", ttl, 3)
	if err != nil || res.kind != acqAdopt || string(res.artifact) != "result" {
		t.Fatalf("acquire with artifact: %+v err=%v, want adopt", res, err)
	}
	// A bit-flipped artifact reads as absent (checksum sidecar) — the spec
	// re-runs rather than serving corrupt bytes.
	if err := os.WriteFile(filepath.Join(st.execDir(h), "artifact"), []byte("resulx"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.loadArtifact(h); ok {
		t.Fatal("corrupt artifact served")
	}
}
