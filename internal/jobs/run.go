package jobs

import (
	"bytes"
	"context"
	"fmt"

	"sr2201/internal/campaign"
	"sr2201/internal/cliutil"
	"sr2201/internal/engine"
	"sr2201/internal/experiments"
	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/inject"
	"sr2201/internal/reconfig"
	"sr2201/internal/recovery"
	"sr2201/internal/sweep"
)

// progressDelta is one completed work increment reported from inside a run:
// sweep cells finished, simulated cycles retired, deadlock recoveries taken
// by the liveness layer, and online-reconfiguration outcomes (committed
// swaps, packets purged by transition drains, attempts that fell back to
// rebuild-in-place).
type progressDelta struct {
	cells, cycles, recoveries                     int64
	reconfigs, reconfigDrained, reconfigFallbacks int64
}

// progressFn receives progress deltas. Calls arrive from worker goroutines;
// the manager serializes them into the job's ordered event stream.
type progressFn func(d progressDelta)

// reconfigDelta maps one reconfiguration event onto its progress increment.
func reconfigDelta(ev reconfig.Event) progressDelta {
	d := progressDelta{reconfigDrained: int64(ev.Drained)}
	if ev.Outcome == reconfig.OutcomeFallback {
		d.reconfigFallbacks = 1
	} else {
		d.reconfigs = 1
	}
	return d
}

// execState is one execution's slice of the manager's state store: where
// its checkpoints live and how often to write them. nil disables
// checkpointing (the stateless configuration). killed, when set, reports
// simulated abrupt process death (Manager.Kill): a dead owner writes
// nothing more — no park, no checkpoint — exactly like a real SIGKILL.
type execState struct {
	store  *stateStore
	hash   string
	every  int64
	killed func() bool
}

func (st *execState) dead() bool { return st.killed != nil && st.killed() }

// runSpec executes one normalized spec and returns its report artifact —
// the exact bytes the equivalent CLI run writes to stdout. parallel is the
// sweep width to request; budget (shared across all running jobs) is what
// actually bounds concurrency. A non-nil error may still carry a complete
// artifact (e.g. a campaign that deadlocked: the table is the evidence).
// With st non-nil, campaign and fault runs checkpoint as they go and resume
// from whatever an earlier interrupted run left behind; the artifact is
// byte-identical either way. Experiment runs are cells all the way down and
// restart from scratch (each cell is small; only whole-run artifacts cache).
func runSpec(ctx context.Context, spec Spec, budget *sweep.Limiter, parallel int, progress progressFn, st *execState) ([]byte, error) {
	switch spec.Kind {
	case KindExperiments:
		return runExperiments(ctx, spec.Experiments, budget, parallel, progress)
	case KindFault:
		return runFault(ctx, spec.Fault, progress, st)
	case KindCampaign:
		return runCampaign(ctx, spec.Campaign, budget, parallel, progress, st)
	default:
		return nil, fmt.Errorf("jobs: unnormalized spec kind %q", spec.Kind)
	}
}

// runExperiments mirrors mdxbench: run the resolved set, render each report
// in id-list order. Experiments execute sequentially within the job — the
// worker pool's concurrency lives in each experiment's cell sweep, which
// draws from the shared budget — so the artifact is the concatenation
// mdxbench prints, byte for byte.
func runExperiments(ctx context.Context, e *ExperimentsSpec, budget *sweep.Limiter, parallel int, progress progressFn) ([]byte, error) {
	list, err := experiments.Resolve(e.IDs)
	if err != nil {
		return nil, err
	}
	opt := experiments.Options{
		Quick:    e.Quick,
		Parallel: parallel,
		Ctx:      ctx,
		Budget:   budget,
		OnCell:   func(cycles int64) { progress(progressDelta{cells: 1, cycles: cycles}) },
	}
	var buf bytes.Buffer
	failed := 0
	for _, exp := range list {
		if err := ctx.Err(); err != nil {
			return buf.Bytes(), err
		}
		r, err := exp.Run(opt)
		if err != nil {
			return buf.Bytes(), fmt.Errorf("experiment %s: %w", exp.ID, err)
		}
		if !r.Pass {
			failed++
		}
		buf.WriteString(experiments.RenderReport(r))
	}
	if failed > 0 {
		return buf.Bytes(), fmt.Errorf("%d experiment(s) failed their shape criterion", failed)
	}
	return buf.Bytes(), nil
}

// runFault mirrors mdxfault single mode via the shared campaign stepper.
// With st non-nil the run checkpoints periodically, parks a snapshot when the
// context cancels, and on the next attempt restores mid-run — the restored
// writer re-renders the already-reported prefix, so the artifact bytes are
// identical to an uninterrupted run.
func runFault(ctx context.Context, f *FaultSpec, progress progressFn, st *execState) ([]byte, error) {
	shape, err := cliutil.ParseShape(f.Shape)
	if err != nil {
		return nil, err
	}
	events := make([]inject.Event, 0, len(f.Fails))
	for _, fs := range f.Fails {
		flt, cycle, err := cliutil.ParseScheduledFault(fs, shape)
		if err != nil {
			return nil, err
		}
		events = append(events, inject.Event{Cycle: cycle, Fault: flt})
	}
	pat, err := campaign.ParsePattern(f.Pattern)
	if err != nil {
		return nil, err
	}
	presets, err := parsePresets(f.Presets, shape)
	if err != nil {
		return nil, err
	}
	bcasts, err := parseBroadcasts(f.Broadcasts, shape, f.PacketSize)
	if err != nil {
		return nil, err
	}
	sxb, dxb, err := f.Variant.coords(shape)
	if err != nil {
		return nil, err
	}
	var lastCycle int64
	var buf bytes.Buffer
	sspec := campaign.SingleSpec{
		Shape:               shape,
		Topology:            f.Topology,
		Events:              events,
		Pattern:             pat,
		Waves:               f.Waves,
		Gap:                 f.Gap,
		PacketSize:          f.PacketSize,
		Horizon:             f.Horizon,
		Inject:              f.Inject.options(),
		Recovery:            f.Recovery.options(),
		Preset:              presets,
		Broadcasts:          bcasts,
		SXB:                 sxb,
		DXB:                 dxb,
		DXBSeparate:         f.Variant.DXBSeparate,
		VCs:                 f.Variant.VCs,
		Adaptive:            f.Variant.Adaptive,
		Shards:              f.Shards,
		Reconfig:            f.Reconfig.Mode,
		ReconfigDrainBudget: f.Reconfig.DrainBudget,
		OnCycle: func(c int64, _ engine.Counters) {
			progress(progressDelta{cycles: c - lastCycle})
			lastCycle = c
		},
		OnRecovery: func(recovery.Event) { progress(progressDelta{recoveries: 1}) },
		OnReconfig: func(ev reconfig.Event) { progress(reconfigDelta(ev)) },
	}
	r, err := campaign.NewSingleRun(sspec, &buf)
	if err != nil {
		return nil, err
	}
	if st != nil {
		if snap, ok := st.store.loadSingleSnap(st.hash); ok {
			if err := r.Restore(snap); err == nil {
				lastCycle = r.Cycle()
				// Recoveries and reconfigurations taken before the
				// interruption were restored with the supervisor and manager
				// state, not replayed through the On* hooks.
				rs := r.ReconfigStats()
				progress(progressDelta{
					recoveries:        int64(r.Recoveries()),
					reconfigs:         int64(rs.HotSwaps + rs.Drains),
					reconfigDrained:   int64(rs.DrainedPackets),
					reconfigFallbacks: int64(rs.Fallbacks),
				})
			} else {
				// A stale or corrupt snapshot (e.g. from an older binary) is
				// not fatal — restart from cycle zero with a fresh writer.
				buf.Reset()
				if r, err = campaign.NewSingleRun(sspec, &buf); err != nil {
					return nil, err
				}
			}
		}
	}
	lastSnap := r.Cycle()
	for !r.Step() {
		if r.Cycle()%64 != 0 {
			continue
		}
		if err := ctx.Err(); err != nil {
			if st != nil && !st.dead() {
				st.store.saveSingleSnap(st.hash, r.Snapshot())
			}
			return buf.Bytes(), err
		}
		if st != nil && !st.dead() && st.every > 0 && r.Cycle()-lastSnap >= st.every {
			if err := st.store.saveSingleSnap(st.hash, r.Snapshot()); err == nil {
				lastSnap = r.Cycle()
			}
		}
	}
	outcome, err := r.Finish()
	if st != nil && !st.dead() {
		st.store.removeSingleSnap(st.hash)
	}
	if err != nil {
		return buf.Bytes(), err
	}
	// Settle the totals: OnCycle fires every progressInterval cycles, so a
	// short run (or the tail of a long one) is reported here.
	progress(progressDelta{cells: 1, cycles: outcome.Cycle - lastCycle})
	if r.Livelocked() {
		return buf.Bytes(), fmt.Errorf("run did not drain: %w at cycle %d (%d recoveries)",
			recovery.ErrLivelock, outcome.Cycle, r.Recoveries())
	}
	if !outcome.Drained {
		return buf.Bytes(), fmt.Errorf("run did not drain (deadlocked=%v stalled=%v cycle=%d)",
			outcome.Deadlocked, outcome.Stalled, outcome.Cycle)
	}
	return buf.Bytes(), nil
}

// runCampaign mirrors mdxfault -campaign. With st non-nil the campaign runs
// against a per-execution cell store: completed cells are skipped on resume
// and in-progress cells restart from their latest snapshot.
func runCampaign(ctx context.Context, c *CampaignSpec, budget *sweep.Limiter, parallel int, progress progressFn, st *execState) ([]byte, error) {
	shape, err := cliutil.ParseShape(c.Shape)
	if err != nil {
		return nil, err
	}
	patterns := make([]campaign.Pattern, 0, len(c.Patterns))
	for _, p := range c.Patterns {
		pat, err := campaign.ParsePattern(p)
		if err != nil {
			return nil, err
		}
		patterns = append(patterns, pat)
	}
	presets, err := parsePresets(c.Presets, shape)
	if err != nil {
		return nil, err
	}
	bcasts, err := parseBroadcasts(c.Broadcasts, shape, c.PacketSize)
	if err != nil {
		return nil, err
	}
	sxb, dxb, err := c.Variant.coords(shape)
	if err != nil {
		return nil, err
	}
	cfg := campaign.Config{
		Shape:               shape,
		Topology:            c.Topology,
		Epochs:              c.Epochs,
		Patterns:            patterns,
		Waves:               c.Waves,
		Gap:                 c.Gap,
		PacketSize:          c.PacketSize,
		Inject:              c.Inject.options(),
		Recovery:            c.Recovery.options(),
		Preset:              presets,
		Broadcasts:          bcasts,
		SXB:                 sxb,
		DXB:                 dxb,
		DXBSeparate:         c.Variant.DXBSeparate,
		VCs:                 c.Variant.VCs,
		Adaptive:            c.Variant.Adaptive,
		Shards:              c.Shards,
		Reconfig:            c.Reconfig.Mode,
		ReconfigDrainBudget: c.Reconfig.DrainBudget,
		Horizon:             c.Horizon,
		Parallel:            parallel,
		Ctx:                 ctx,
		Budget:              budget,
		OnCell:              func(cycles int64) { progress(progressDelta{cells: 1, cycles: cycles}) },
		OnRecovery:          func(recovery.Event) { progress(progressDelta{recoveries: 1}) },
		OnReconfig:          func(ev reconfig.Event) { progress(reconfigDelta(ev)) },
	}
	if st != nil {
		store, err := campaign.OpenStore(st.store.cellsDir(st.hash))
		if err != nil {
			return nil, err
		}
		cfg.Store = store
		cfg.CheckpointEvery = st.every
	}
	res, err := campaign.Run(cfg)
	if err != nil {
		return nil, err
	}
	artifact := []byte(res.String())
	if res.Deadlocks() > 0 || res.Stalls() > 0 || res.Livelocked() > 0 {
		return artifact, fmt.Errorf("campaign: %d deadlock(s), %d stall(s), %d livelocked",
			res.Deadlocks(), res.Stalls(), res.Livelocked())
	}
	return artifact, nil
}

// options maps the wire spec onto inject.Options.
func (in InjectSpec) options() inject.Options {
	return inject.Options{
		Retransmit:     in.Retransmit,
		RetryAfter:     in.RetryAfter,
		Backoff:        in.Backoff,
		MaxRetries:     in.MaxRetries,
		StallThreshold: in.Stall,
	}
}

// options maps the wire spec onto recovery.Options. The spec is normalized,
// so the cliutil assembly cannot fail.
func (r RecoverySpec) options() recovery.Options {
	opt, err := cliutil.RecoveryOptions(r.Enabled, r.StallThreshold, r.MaxRecoveries)
	if err != nil {
		panic(fmt.Sprintf("jobs: unnormalized recovery spec: %v", err))
	}
	return opt
}

// coords parses the variant's crossbar coordinates (the spec is normalized,
// so parse errors are unreachable for decoded submissions).
func (v VariantSpec) coords(shape geom.Shape) (sxb, dxb geom.Coord, err error) {
	if v.SXB != "" {
		if sxb, err = cliutil.ParseCoord(v.SXB, shape.Dims()); err != nil {
			return
		}
	}
	if v.DXB != "" {
		if dxb, err = cliutil.ParseCoord(v.DXB, shape.Dims()); err != nil {
			return
		}
	}
	return
}

// parsePresets maps the wire preset list onto fault values.
func parsePresets(specs []string, shape geom.Shape) ([]fault.Fault, error) {
	var out []fault.Fault
	for _, ps := range specs {
		f, err := cliutil.ParseFaultIn(ps, shape)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// parseBroadcasts maps the wire broadcast list onto campaign.Broadcast
// values, with the run's packet size.
func parseBroadcasts(specs []string, shape geom.Shape, packetSize int) ([]campaign.Broadcast, error) {
	var out []campaign.Broadcast
	for _, bs := range specs {
		src, cycle, err := cliutil.ParseBroadcast(bs, shape)
		if err != nil {
			return nil, err
		}
		out = append(out, campaign.Broadcast{Cycle: cycle, Src: src, Size: packetSize})
	}
	return out, nil
}
