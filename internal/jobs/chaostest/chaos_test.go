// Package chaostest is the fleet's chaos-kill equivalence wall: real
// mdxserve processes sharing one -state-dir are SIGKILLed (and killed from
// the inside via the MDXSERVE_FAILPOINT hook) mid-campaign, restarted, and
// the surviving fleet must converge to artifacts byte-identical to a
// single-worker run that was never interrupted — with exactly one visible
// result per canonical spec and zero lost or duplicated jobs.
//
// Every kill is deterministic: a failpoint fires at an exact simulated
// cycle of an exact execution, and external SIGKILLs are sent only after
// the harness has observed the on-disk condition they target (a parked
// checkpoint). Deadlines below are failsafes for a hung fleet, not the
// synchronization mechanism.
package chaostest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"sr2201/internal/jobs"
)

// buildOnce compiles cmd/mdxserve once per test binary invocation.
var buildOnce = struct {
	sync.Once
	bin string
	err error
}{}

func serverBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "chaostest-bin-")
		if err != nil {
			buildOnce.err = err
			return
		}
		bin := filepath.Join(dir, "mdxserve")
		cmd := exec.Command("go", "build", "-o", bin, "sr2201/cmd/mdxserve")
		cmd.Dir = repoRoot(t)
		if out, err := cmd.CombinedOutput(); err != nil {
			buildOnce.err = fmt.Errorf("go build mdxserve: %v\n%s", err, out)
			return
		}
		buildOnce.bin = bin
	})
	if buildOnce.err != nil {
		t.Fatal(buildOnce.err)
	}
	return buildOnce.bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(wd))) // internal/jobs/chaostest -> repo root
}

// proc is one live mdxserve fleet member under harness control.
type proc struct {
	t      *testing.T
	worker string
	cmd    *exec.Cmd
	base   string // http://host:port, scraped from the listen banner
	exited chan error
}

// startWorker boots one fleet member on stateDir and waits for its listen
// banner. failpoint ("" = none) becomes MDXSERVE_FAILPOINT.
func startWorker(t *testing.T, bin, stateDir, worker string, ttl time.Duration, poisonAfter int, failpoint string) *proc {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-state-dir", stateDir,
		"-worker", worker,
		"-workers", "1",
		"-parallel", "1",
		"-lease-ttl", ttl.String(),
		"-poison-after", fmt.Sprint(poisonAfter),
		"-checkpoint-every", "256",
	)
	cmd.Env = append(os.Environ(), "MDXSERVE_FAILPOINT="+failpoint)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &proc{t: t, worker: worker, cmd: cmd, exited: make(chan error, 1)}
	t.Cleanup(func() {
		cmd.Process.Kill()
		<-p.exited
	})

	// Scrape "mdxserve: listening on 127.0.0.1:PORT (...)" and drain the
	// rest of stderr so the child never blocks on a full pipe.
	banner := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if strings.Contains(line, "listening on ") {
				f := strings.Fields(line)
				for i, w := range f {
					if w == "on" && i+1 < len(f) {
						select {
						case banner <- f[i+1]:
						default:
						}
					}
				}
			}
		}
	}()
	go func() { p.exited <- cmd.Wait() }()

	select {
	case addr := <-banner:
		p.base = "http://" + addr
	case err := <-p.exited:
		p.exited <- err
		t.Fatalf("worker %s exited before listening: %v", worker, err)
	case <-time.After(30 * time.Second):
		t.Fatalf("worker %s never printed its listen banner", worker)
	}
	return p
}

// waitExit blocks until the process exits and returns its exit code.
func (p *proc) waitExit(timeout time.Duration) int {
	p.t.Helper()
	select {
	case err := <-p.exited:
		p.exited <- err // keep the channel readable for Cleanup
		if err == nil {
			return 0
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		p.t.Fatalf("worker %s exit: %v", p.worker, err)
	case <-time.After(timeout):
		p.t.Fatalf("worker %s did not exit in %v", p.worker, timeout)
	}
	return -1
}

// sigkill delivers an uncatchable kill — the crash the lease layer exists
// to survive.
func (p *proc) sigkill() {
	p.t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		p.t.Fatal(err)
	}
	p.waitExit(10 * time.Second)
}

// submit POSTs a spec and returns the job id.
func (p *proc) submit(spec jobs.Spec) string {
	p.t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		p.t.Fatal(err)
	}
	resp, err := http.Post(p.base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		p.t.Fatalf("submit to %s: %v", p.worker, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(resp.Body)
		p.t.Fatalf("submit to %s: %s: %s", p.worker, resp.Status, msg)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		p.t.Fatal(err)
	}
	return out.ID
}

// jobView is the harness's slice of GET /jobs/{id}.
type jobView struct {
	Status string `json:"status"`
	Error  string `json:"error"`
}

func (p *proc) lookup(id string) (jobView, error) {
	resp, err := http.Get(p.base + "/jobs/" + id)
	if err != nil {
		return jobView{}, err
	}
	defer resp.Body.Close()
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return jobView{}, err
	}
	return v, nil
}

// waitTerminal polls until the job leaves the queued/running states.
func (p *proc) waitTerminal(id string, timeout time.Duration) jobView {
	p.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v, err := p.lookup(id)
		if err == nil && v.Status != "queued" && v.Status != "running" && v.Status != "" {
			return v
		}
		if time.Now().After(deadline) {
			p.t.Fatalf("job %s on %s never reached a terminal state (last: %+v, err=%v)", id, p.worker, v, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (p *proc) artifact(id string) []byte {
	p.t.Helper()
	resp, err := http.Get(p.base + "/jobs/" + id + "/artifact")
	if err != nil {
		p.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		p.t.Fatalf("artifact %s on %s: %s: %s", id, p.worker, resp.Status, msg)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		p.t.Fatal(err)
	}
	return data
}

// faultSpec builds one campaign member; waves scales the runtime.
func faultSpec(waves int, gap int64) jobs.Spec {
	return jobs.Spec{Kind: jobs.KindFault, Fault: &jobs.FaultSpec{
		Shape:   "4x4",
		Fails:   []string{"rtc:1,1@40"},
		Pattern: "shift+5",
		Waves:   waves,
		Gap:     gap,
		Horizon: 1 << 30, // default horizon truncates the long members
	}}
}

// waitCheckpoint blocks until the execution parks its first snapshot —
// the observed condition an external SIGKILL targets.
func waitCheckpoint(t *testing.T, stateDir, hash string) {
	t.Helper()
	snap := filepath.Join(stateDir, "execs", hash, "single.snap")
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := os.Stat(snap); err == nil {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("execution %s never parked a checkpoint", hash)
}

// TestChaosKillFleetEquivalence is the acceptance wall: a 3-process fleet
// suffers one deterministic in-process death (failpoint) and one external
// SIGKILL mid-run, both victims restart, and every submitted spec — one of
// them submitted twice, to two different workers — converges to the exact
// bytes a never-interrupted single worker produces, with exactly one
// execution directory and one artifact per canonical spec on disk.
func TestChaosKillFleetEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness spawns real server processes")
	}
	bin := serverBinary(t)
	const ttl = 500 * time.Millisecond

	longA := faultSpec(3000, 100) // killed via failpoint on wa
	longB := faultSpec(3000, 80)  // killed via SIGKILL on wb, mid-checkpoint
	quick := faultSpec(40, 24)    // submitted twice: fleet-wide dedupe
	specs := []jobs.Spec{longA, longB, quick}

	hashA, err := jobs.CanonicalHash(longA)
	if err != nil {
		t.Fatal(err)
	}
	hashB, err := jobs.CanonicalHash(longB)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: one worker, one state dir, no interruptions.
	refDir := t.TempDir()
	ref := startWorker(t, bin, refDir, "ref", time.Minute, 3, "")
	want := make([][]byte, len(specs))
	for i, spec := range specs {
		id := ref.submit(spec)
		if v := ref.waitTerminal(id, 120*time.Second); v.Status != "done" {
			t.Fatalf("reference job %d: %+v", i, v)
		}
		want[i] = ref.artifact(id)
	}

	// The fleet. wa carries a failpoint that kills it (os.Exit 3, no
	// cleanup) the moment longA passes cycle 2000.
	fleetDir := t.TempDir()
	wa := startWorker(t, bin, fleetDir, "wa", ttl, 3, hashA+"@2000")
	wb := startWorker(t, bin, fleetDir, "wb", ttl, 3, "")
	wc := startWorker(t, bin, fleetDir, "wc", ttl, 3, "")

	idA := wa.submit(longA)
	idB := wb.submit(longB)
	idQ1 := wc.submit(quick)
	idQ2 := wb.submit(quick) // same canonical spec via a different worker

	// Death 1 (in-process, deterministic cycle): wa dies at longA@2000.
	if code := wa.waitExit(120 * time.Second); code != 3 {
		t.Fatalf("failpoint exit code = %d, want 3", code)
	}
	// Death 2 (external): SIGKILL wb only after longB demonstrably parked
	// a checkpoint — the takeover must resume, not restart.
	waitCheckpoint(t, fleetDir, hashB)
	wb.sigkill()

	// Both victims restart as the same fleet members (same worker ids
	// reload their persisted job records) without failpoints.
	wa = startWorker(t, bin, fleetDir, "wa", ttl, 3, "")
	wb = startWorker(t, bin, fleetDir, "wb", ttl, 3, "")

	// Convergence: every job terminal on the worker that accepted it.
	checks := []struct {
		p    *proc
		id   string
		want []byte
	}{
		{wa, idA, want[0]},
		{wb, idB, want[1]},
		{wc, idQ1, want[2]},
		{wb, idQ2, want[2]},
	}
	for i, c := range checks {
		if v := c.p.waitTerminal(c.id, 120*time.Second); v.Status != "done" {
			t.Fatalf("fleet job %d on %s: %+v", i, c.p.worker, v)
		}
		got := c.p.artifact(c.id)
		if !bytes.Equal(got, c.want) {
			t.Errorf("fleet job %d on %s: artifact differs from single-worker run\n--- fleet\n%s--- reference\n%s",
				i, c.p.worker, got, c.want)
		}
	}

	// Exactly one visible result per canonical spec: one exec dir per
	// hash, each holding exactly one checksummed artifact, none extra.
	ents, err := os.ReadDir(filepath.Join(fleetDir, "execs"))
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, ent := range ents {
		if !ent.IsDir() {
			continue
		}
		if found[ent.Name()] {
			t.Fatalf("duplicate exec dir %s", ent.Name())
		}
		found[ent.Name()] = true
		if _, err := os.Stat(filepath.Join(fleetDir, "execs", ent.Name(), "artifact")); err != nil {
			t.Errorf("exec %s has no artifact after convergence: %v", ent.Name(), err)
		}
	}
	if len(found) != len(specs) {
		t.Errorf("fleet left %d exec dirs, want exactly %d (one per canonical spec)", len(found), len(specs))
	}
}

// TestChaosPoisonQuarantine: a spec that kills every owner (the failpoint
// rides on both workers) is quarantined after -poison-after deaths, with a
// classified error, while the fleet keeps completing healthy jobs.
func TestChaosPoisonQuarantine(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness spawns real server processes")
	}
	bin := serverBinary(t)
	const ttl = 400 * time.Millisecond

	poison := faultSpec(3000, 100)
	healthy := faultSpec(40, 24)
	hashP, err := jobs.CanonicalHash(poison)
	if err != nil {
		t.Fatal(err)
	}
	failpoint := hashP + "@1000"

	dir := t.TempDir()
	// Both workers die if they ever run the poison spec past cycle 1000;
	// quarantine happens at claim time, before running, so the worker that
	// trips the threshold survives to serve the verdict.
	wa := startWorker(t, bin, dir, "wa", ttl, 2, failpoint)
	wb := startWorker(t, bin, dir, "wb", ttl, 2, failpoint)

	idP := wa.submit(poison)
	idH := wb.submit(healthy)

	// The healthy job completes while the poison spec is busy killing
	// owners — the fleet never stops serving.
	if v := wb.waitTerminal(idH, 120*time.Second); v.Status != "done" {
		t.Fatalf("healthy job alongside poison: %+v", v)
	}

	// Death loop: whichever worker claims the poison spec dies at cycle
	// 1000 and is restarted (same id, failpoint still armed) until a
	// claimant reads deaths >= 2 and quarantines instead of running.
	deadline := time.Now().Add(180 * time.Second)
	var verdict jobView
	for {
		select {
		case err := <-wa.exited:
			wa.exited <- err // keep readable for waitExit and Cleanup
			if code := wa.waitExit(time.Second); code != 3 {
				t.Fatalf("wa exit code %d, want 3 (failpoint)", code)
			}
			wa = startWorker(t, bin, dir, "wa", ttl, 2, failpoint)
		case err := <-wb.exited:
			wb.exited <- err
			if code := wb.waitExit(time.Second); code != 3 {
				t.Fatalf("wb exit code %d, want 3 (failpoint)", code)
			}
			wb = startWorker(t, bin, dir, "wb", ttl, 2, failpoint)
		case <-time.After(50 * time.Millisecond):
		}
		// wa owns the job record; after a restart it reloads it.
		v, err := wa.lookup(idP)
		if err == nil && v.Status == "failed" {
			verdict = v
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("poison spec never quarantined (last: %+v, err=%v)", v, err)
		}
	}
	if !strings.Contains(verdict.Error, "quarantined") || !strings.Contains(verdict.Error, "died mid-run") {
		t.Errorf("quarantine verdict %q is not classified", verdict.Error)
	}
	if _, err := os.Stat(filepath.Join(dir, "execs", hashP, "poisoned.json")); err != nil {
		t.Errorf("no poisoned.json on disk: %v", err)
	}
	// The forensic checkpoint is kept with the quarantine.
	if _, err := os.Stat(filepath.Join(dir, "execs", hashP, "single.snap")); err != nil {
		t.Errorf("quarantine dropped the parked checkpoint: %v", err)
	}

	// The fleet still serves after the quarantine: another healthy spec.
	idH2 := wb.submit(faultSpec(40, 26))
	if v := wb.waitTerminal(idH2, 120*time.Second); v.Status != "done" {
		t.Errorf("healthy job after quarantine: %+v", v)
	}
}
