package jobs

import (
	"errors"
	"testing"
)

// FuzzJobSpecDecode: arbitrary JSON must never panic the decoder or the
// validator, every rejection must be a *FieldError naming the offending
// field, and every accepted spec must be normalized — i.e. re-decoding its
// canonical encoding must succeed and be a fixed point.
func FuzzJobSpecDecode(f *testing.F) {
	for _, seed := range []string{
		`{"kind":"experiments","experiments":{"ids":["E1"]}}`,
		`{"kind":"experiments","experiments":{"ids":["all"],"quick":true}}`,
		`{"kind":"fault","fault":{"shape":"4x4","fails":["rtc:1,1@40"],"pattern":"shift+5"}}`,
		`{"kind":"fault","fault":{"shape":"8x8","fails":["xb:0:0,2@200","rtc:3,4@500"],"pattern":"reverse","waves":6,"inject":{"retransmit":true}}}`,
		`{"kind":"campaign","campaign":{"shape":"4x4","epochs":[12,60],"patterns":["shift+5","reverse"]}}`,
		`{"kind":"campaign","campaign":{"shape":"9999999x9999999","epochs":[1],"patterns":["reverse"]}}`,
		`{"kind":"bogus"}`,
		`{"kind":"fault"}`,
		`{"kind":"fault","fault":{"shape":"-1x-1","fails":[""],"pattern":""}}`,
		`{"kind":"experiments","experiments":{"ids":[]}}`,
		`[]`, `null`, `0`, `"x"`, `{}`, `{{`, ``,
		`{"kind":"experiments","experiments":{"ids":["E1"]},"fault":{}}`,
		`{"kind":"experiments","experiments":{"ids":["E1"],"extra":true}}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeSpec(data)
		if err != nil {
			var fe *FieldError
			if !errors.As(err, &fe) {
				t.Fatalf("rejection is not a FieldError: %v", err)
			}
			if fe.Field == "" {
				t.Fatalf("rejection names no field: %v", err)
			}
			return
		}
		// Accepted: the canonical encoding must round-trip to itself.
		canon := spec.Canonical()
		again, err := DecodeSpec([]byte(canon))
		if err != nil {
			t.Fatalf("canonical encoding rejected on re-decode: %v\n%s", err, canon)
		}
		if again.Canonical() != canon {
			t.Fatalf("canonical encoding is not a fixed point:\n%s\n%s", canon, again.Canonical())
		}
	})
}
