package jobs

// Crash-recovery tests: a manager killed mid-run (Stop is the SIGTERM path)
// must, on reopen over the same state directory, finish every interrupted
// job with an artifact byte-identical to an uninterrupted run's.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sr2201/internal/sweep"
)

// resumeCampaignSpec is a campaign with enough cells (placements × epochs ×
// patterns) that interrupting it mid-run is reliable.
func resumeCampaignSpec() Spec {
	return Spec{Kind: KindCampaign, Campaign: &CampaignSpec{
		Shape:    "4x4",
		Epochs:   []int64{12, 60, 200},
		Patterns: []string{"shift+5", "reverse"},
		Waves:    4,
		Gap:      24,
		Inject:   InjectSpec{Retransmit: true},
	}}
}

// normalizedHash computes the state-store key the manager will use for spec.
func normalizedHash(t *testing.T, spec Spec) string {
	t.Helper()
	s := spec.Clone()
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	return canonHash(s.Canonical())
}

// referenceArtifact runs spec on a stateless manager and returns its bytes.
func referenceArtifact(t *testing.T, spec Spec) []byte {
	t.Helper()
	m := NewManager(Config{Workers: 1, Parallel: 1})
	defer m.Stop()
	id, _, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, id, StatusDone)
	artifact, ok, err := m.Artifact(id)
	if err != nil || !ok {
		t.Fatalf("reference artifact: ok=%v err=%v", ok, err)
	}
	return artifact
}

// TestRunSpecFaultResume interrupts a single-fault run deterministically (the
// progress callback cancels the context mid-run), then resumes it from the
// parked snapshot and checks the artifact equals the uninterrupted run's.
func TestRunSpecFaultResume(t *testing.T) {
	spec := Spec{Kind: KindFault, Fault: &FaultSpec{
		Shape:   "4x4",
		Fails:   []string{"rtc:1,1@40"},
		Pattern: "shift+5",
		Waves:   80, // ~2k cycles: the progress feed fires mid-run
		Gap:     24,
		Inject:  InjectSpec{Retransmit: true},
	}}
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	budget := sweep.NewLimiter(1)
	noop := func(progressDelta) {}
	want, err := runSpec(context.Background(), spec, budget, 1, noop, nil)
	if err != nil {
		t.Fatal(err)
	}

	store, err := openStateStore(t.TempDir(), "w0")
	if err != nil {
		t.Fatal(err)
	}
	st := &execState{store: store, hash: canonHash(spec.Canonical()), every: 256}
	// The manager creates the exec dir when it accepts the submission.
	if err := store.saveExecSpec(st.hash, spec.Canonical()); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	interrupted := false
	_, err = runSpec(ctx, spec, budget, 1, func(d progressDelta) {
		if !interrupted && d.cycles > 0 {
			interrupted = true
			cancel()
		}
	}, st)
	if err == nil {
		t.Fatal("interrupted run unexpectedly completed — grow the fixture")
	}
	if _, ok := store.loadSingleSnap(st.hash); !ok {
		t.Fatal("no snapshot parked on interrupt")
	}

	got, err := runSpec(context.Background(), spec, budget, 1, noop, st)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resumed artifact differs\n--- resumed\n%s--- uninterrupted\n%s", got, want)
	}
	if _, ok := store.loadSingleSnap(st.hash); ok {
		t.Error("snapshot not retired after completion")
	}
}

// TestManagerResumeCampaignByteIdentical is the end-to-end crash drill: a
// stateful manager is stopped mid-campaign, a second manager opens the same
// directory, and the job — same id — finishes with the exact bytes an
// uninterrupted server produces, at parallel 1 and 4.
func TestManagerResumeCampaignByteIdentical(t *testing.T) {
	spec := resumeCampaignSpec()
	want := referenceArtifact(t, spec)
	h := normalizedHash(t, spec)

	for _, parallel := range []int{1, 4} {
		t.Run(fmt.Sprintf("parallel=%d", parallel), func(t *testing.T) {
			dir := t.TempDir()
			cfg := Config{Workers: 1, Parallel: parallel, StateDir: dir, CheckpointEvery: 32}
			m1, err := OpenManager(cfg)
			if err != nil {
				t.Fatal(err)
			}
			id, _, err := m1.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			deadline := time.Now().Add(30 * time.Second)
			for {
				v, err := m1.Lookup(id)
				if err != nil {
					t.Fatal(err)
				}
				if v.Cells >= 2 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("campaign never made progress")
				}
				time.Sleep(time.Millisecond)
			}
			m1.Stop()
			if _, err := os.Stat(filepath.Join(dir, "execs", h, "artifact")); err == nil {
				t.Fatal("fixture completed before the interrupt — grow it")
			}

			m2, err := OpenManager(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer m2.Stop()
			waitStatus(t, m2, id, StatusDone) // persisted job id survives the restart
			got, ok, err := m2.Artifact(id)
			if err != nil || !ok {
				t.Fatalf("resumed artifact: ok=%v err=%v", ok, err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("resumed artifact differs\n--- resumed\n%s--- uninterrupted\n%s", got, want)
			}
		})
	}
}

// TestManagerRestartServesCachedArtifact: completed executions survive a
// restart as cache entries — the old job id still resolves and identical
// resubmissions dedupe onto the stored artifact without re-running.
func TestManagerRestartServesCachedArtifact(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, Parallel: 1, StateDir: dir}
	m1, err := OpenManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := m1.Submit(quickFaultSpec(24))
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m1, id, StatusDone)
	want, ok, err := m1.Artifact(id)
	if err != nil || !ok {
		t.Fatalf("artifact: ok=%v err=%v", ok, err)
	}
	m1.Drain()

	m2, err := OpenManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Stop()
	v, err := m2.Lookup(id)
	if err != nil || v.Status != StatusDone {
		t.Fatalf("restarted lookup: status=%v err=%v", v.Status, err)
	}
	got, ok, err := m2.Artifact(id)
	if err != nil || !ok || !bytes.Equal(got, want) {
		t.Fatalf("cached artifact differs after restart (ok=%v err=%v)", ok, err)
	}

	id2, deduped, err := m2.Submit(quickFaultSpec(24))
	if err != nil || !deduped {
		t.Fatalf("resubmission: deduped=%v err=%v", deduped, err)
	}
	got2, ok, err := m2.Artifact(id2)
	if err != nil || !ok || !bytes.Equal(got2, want) {
		t.Fatalf("deduped artifact differs (ok=%v err=%v)", ok, err)
	}
}
