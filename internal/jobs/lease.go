package jobs

// The lease/heartbeat ownership layer for multi-worker fleets sharing one
// state directory. Every execution directory carries a lease subdirectory:
//
//	<dir>/execs/<h>/lease/claim-NNNNNN  epoch N's claim (O_EXCL: one winner)
//	<dir>/execs/<h>/lease/lease.json    the current owner's renewal heartbeat
//	<dir>/execs/<h>/poisoned.json       quarantine record (spec killed owners)
//
// Ownership protocol:
//
//   - The lease epoch is the highest claim-NNNNNN index present. Claim files
//     are created with O_CREATE|O_EXCL, so for any epoch exactly one process
//     in the fleet wins the claim — the steal decision needs no fencing
//     tokens beyond the filesystem's own exclusive-create.
//   - The owner renews by atomically rewriting lease.json (owner, epoch,
//     renewed timestamp). A lease is fresh while its last renewal — or,
//     for an owner that died before its first heartbeat, the claim file's
//     own mtime — is younger than the TTL.
//   - A peer may claim epoch N+1 only when epoch N is expired or released.
//     Claiming over an expired, unreleased lease is a steal: the previous
//     owner died (or wedged) mid-run, so the claim's death count increments.
//     Claiming over a released lease (clean cancel that parked a
//     checkpoint) is a plain resume and does not count a death.
//   - A claim whose death count reaches the poison threshold quarantines
//     the execution instead of running it: poisoned.json is written (via
//     the same atomic-rename commit point as everything else), the last
//     parked checkpoint is kept for forensics, and every manager serves the
//     spec as a classified failure instead of crash-looping the fleet.
//
// Corrupt-equals-absent applies throughout: a torn lease.json is ignored
// (freshness falls back to the claim mtime), a torn claim is read back with
// the conservative maximum death count for its epoch, and a torn
// poisoned.json reads as not poisoned (the next claim will re-quarantine).

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// leaseRecord is lease.json: the current owner's renewal heartbeat.
type leaseRecord struct {
	Owner    string `json:"owner"`
	Epoch    int64  `json:"epoch"`
	Renewed  int64  `json:"renewed_unix_ns"`
	Released bool   `json:"released,omitempty"`
}

// claimRecord is the content of one claim-NNNNNN file, written by the
// process that won the epoch.
type claimRecord struct {
	Owner string `json:"owner"`
	// Deaths is the number of owners that had died mid-run when this epoch
	// was claimed (the poison-quarantine counter).
	Deaths int `json:"deaths"`
}

// poisonRecord is poisoned.json: the classified quarantine verdict.
type poisonRecord struct {
	Deaths int    `json:"deaths"`
	Error  string `json:"error"`
}

// errLeaseLost reports that a renewal found a higher epoch: a peer stole
// the lease (it judged this owner dead) and owns the execution now.
var errLeaseLost = errors.New("jobs: lease lost to a peer")

func (s *stateStore) leaseDir(h string) string {
	return filepath.Join(s.execDir(h), "lease")
}

func (s *stateStore) poisonPath(h string) string {
	return filepath.Join(s.execDir(h), "poisoned.json")
}

// leaseInfo is the read-side summary of an execution's lease state.
type leaseInfo struct {
	epoch    int64 // highest claim index; 0 = never claimed
	deaths   int
	owner    string
	released bool
	renewed  time.Time
}

// leaseInfo reads the lease state for one execution. Corrupt files never
// fail the read — they degrade to the conservative interpretation.
func (s *stateStore) leaseInfo(h string) (leaseInfo, error) {
	var info leaseInfo
	ents, err := os.ReadDir(s.leaseDir(h))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return info, nil
		}
		return info, err
	}
	var topClaim string
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasPrefix(name, "claim-") {
			continue
		}
		n, err := strconv.ParseInt(strings.TrimPrefix(name, "claim-"), 10, 64)
		if err != nil || n <= 0 {
			continue
		}
		if n > info.epoch {
			info.epoch = n
			topClaim = name
		}
	}
	if info.epoch == 0 {
		return info, nil
	}
	// Deaths come from the winning claim's content; a torn claim reads back
	// as the conservative maximum for its epoch (every predecessor died).
	info.deaths = int(info.epoch - 1)
	var cr claimRecord
	if data, err := os.ReadFile(filepath.Join(s.leaseDir(h), topClaim)); err == nil {
		if json.Unmarshal(data, &cr) == nil && cr.Deaths >= 0 && cr.Deaths <= int(info.epoch-1) {
			info.deaths = cr.Deaths
			info.owner = cr.Owner
		}
	}
	// Renewal freshness: lease.json when it matches the top epoch, else the
	// claim file's own mtime (the owner died before its first heartbeat, or
	// lease.json is torn — corrupt-equals-absent).
	if fi, err := os.Stat(filepath.Join(s.leaseDir(h), topClaim)); err == nil {
		info.renewed = fi.ModTime()
	}
	var lr leaseRecord
	if data, err := os.ReadFile(filepath.Join(s.leaseDir(h), "lease.json")); err == nil {
		if json.Unmarshal(data, &lr) == nil && lr.Epoch == info.epoch {
			info.owner = lr.Owner
			info.released = lr.Released
			if t := time.Unix(0, lr.Renewed); t.After(info.renewed) {
				info.renewed = t
			}
		}
	}
	return info, nil
}

// topEpoch returns the highest claim index for the execution.
func (s *stateStore) topEpoch(h string) (int64, error) {
	info, err := s.leaseInfo(h)
	if err != nil {
		return 0, err
	}
	return info.epoch, nil
}

// acquireKind is the outcome of one lease-acquisition attempt.
type acquireKind int

const (
	// acqOwned: this process holds the lease and must run the execution.
	acqOwned acquireKind = iota
	// acqAdopt: a peer already finished; the artifact bytes are the result.
	acqAdopt
	// acqHeld: a live peer owns the lease; defer and recheck later.
	acqHeld
	// acqPoisoned: the spec is quarantined (it killed too many owners).
	acqPoisoned
)

type acquireResult struct {
	kind     acquireKind
	artifact []byte // acqAdopt
	epoch    int64  // acqOwned
	stolen   bool   // acqOwned: resumed from a dead owner's parked state
	deaths   int
	poison   string // acqPoisoned: the classified error text
}

// acquire attempts to take ownership of one execution on behalf of owner.
// It is the single entry point a worker calls before running anything
// stateful; every fleet-coordination decision (dedupe to a finished peer,
// defer to a live one, steal from a dead one, quarantine a poison spec)
// is made here. Only I/O failures return an error — contention outcomes
// are values.
func (s *stateStore) acquire(h, owner string, ttl time.Duration, poisonAfter int) (acquireResult, error) {
	if pr, ok := s.poisonInfo(h); ok {
		return acquireResult{kind: acqPoisoned, deaths: pr.Deaths, poison: pr.Error}, nil
	}
	if art, ok := s.loadArtifact(h); ok {
		return acquireResult{kind: acqAdopt, artifact: art}, nil
	}
	info, err := s.leaseInfo(h)
	if err != nil {
		return acquireResult{}, err
	}
	if info.epoch > 0 && !info.released && time.Since(info.renewed) < ttl {
		return acquireResult{kind: acqHeld}, nil
	}
	stolen := info.epoch > 0 && !info.released
	deaths := info.deaths
	if stolen {
		deaths++
	}
	next := info.epoch + 1
	if err := os.MkdirAll(s.leaseDir(h), 0o755); err != nil {
		return acquireResult{}, err
	}
	claim := filepath.Join(s.leaseDir(h), fmt.Sprintf("claim-%06d", next))
	f, err := os.OpenFile(claim, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if errors.Is(err, os.ErrExist) {
			// Lost the race for this epoch; the winner's lease is fresh now.
			return acquireResult{kind: acqHeld}, nil
		}
		return acquireResult{}, err
	}
	data, _ := json.Marshal(claimRecord{Owner: owner, Deaths: deaths})
	_, werr := f.Write(data)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		// The epoch is consumed either way; a torn claim reads back as the
		// conservative death count. Surface the I/O failure to the caller.
		return acquireResult{}, werr
	}
	if poisonAfter > 0 && deaths >= poisonAfter {
		pr, err := s.quarantine(h, deaths)
		if err != nil {
			return acquireResult{}, err
		}
		return acquireResult{kind: acqPoisoned, deaths: pr.Deaths, poison: pr.Error}, nil
	}
	if err := s.renewLease(h, owner, next); err != nil && !errors.Is(err, errLeaseLost) {
		return acquireResult{}, err
	}
	return acquireResult{kind: acqOwned, epoch: next, stolen: stolen, deaths: deaths}, nil
}

// renewLease refreshes the heartbeat for epoch. errLeaseLost means a peer
// has claimed a higher epoch: the caller no longer owns the execution and
// must stand down.
func (s *stateStore) renewLease(h, owner string, epoch int64) error {
	top, err := s.topEpoch(h)
	if err != nil {
		return err
	}
	if top != epoch {
		return errLeaseLost
	}
	lr := leaseRecord{Owner: owner, Epoch: epoch, Renewed: time.Now().UnixNano()}
	data, err := json.Marshal(lr)
	if err != nil {
		return err
	}
	return writeAtomic(filepath.Join(s.leaseDir(h), "lease.json"), data)
}

// releaseLease marks the epoch cleanly released: the next claim is a plain
// resume, not a steal, and counts no death. A release attempt after the
// lease was already stolen is a no-op.
func (s *stateStore) releaseLease(h, owner string, epoch int64) error {
	top, err := s.topEpoch(h)
	if err != nil || top != epoch {
		return err
	}
	lr := leaseRecord{Owner: owner, Epoch: epoch, Renewed: time.Now().UnixNano(), Released: true}
	data, err := json.Marshal(lr)
	if err != nil {
		return err
	}
	return writeAtomic(filepath.Join(s.leaseDir(h), "lease.json"), data)
}

// quarantine parks the execution as poisoned with a classified error.
func (s *stateStore) quarantine(h string, deaths int) (poisonRecord, error) {
	// The text is the classification only; callers wrap it with ErrPoisoned.
	pr := poisonRecord{
		Deaths: deaths,
		Error:  fmt.Sprintf("%d owner(s) died mid-run; parked with its last checkpoint", deaths),
	}
	data, err := json.Marshal(pr)
	if err != nil {
		return poisonRecord{}, err
	}
	if err := writeAtomic(s.poisonPath(h), data); err != nil {
		return poisonRecord{}, err
	}
	return pr, nil
}

// poisonInfo reads the quarantine verdict; ok is false when the execution
// is not poisoned (a torn record reads as not poisoned — the next claim
// over the threshold re-quarantines it).
func (s *stateStore) poisonInfo(h string) (poisonRecord, bool) {
	data, err := os.ReadFile(s.poisonPath(h))
	if err != nil {
		return poisonRecord{}, false
	}
	var pr poisonRecord
	if json.Unmarshal(data, &pr) != nil || pr.Deaths < 0 || pr.Error == "" {
		return poisonRecord{}, false
	}
	return pr, true
}
