// Package jobs is the simulation-as-a-service layer: typed job specs with a
// canonical encoding, a bounded FIFO queue with load shedding, a worker pool
// whose sweeps draw from one global parallelism budget, per-job cancellation
// and deadlines, a result cache that dedupes identical submissions to a
// single execution, and an ordered per-job progress-event stream.
//
// The contract that makes it more than plumbing: a job's report artifact is
// byte-identical to the stdout of the equivalent mdxbench/mdxfault CLI run
// for the same spec, at any worker-pool width — the repository's determinism
// guarantee extended across the network boundary. The differential tests pin
// it end to end.
package jobs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"sr2201/internal/campaign"
	"sr2201/internal/cliutil"
	"sr2201/internal/core"
	"sr2201/internal/experiments"
	"sr2201/internal/geom"
)

// Kind selects what a job runs.
type Kind string

const (
	// KindExperiments runs a set of registered experiments (mdxbench).
	KindExperiments Kind = "experiments"
	// KindFault runs one scheduled-fault machine (mdxfault single mode).
	KindFault Kind = "fault"
	// KindCampaign runs the exhaustive single-fault campaign (mdxfault
	// -campaign).
	KindCampaign Kind = "campaign"
)

// Spec is a job submission. Exactly one payload — matching Kind — is set.
// The zero values of optional numeric fields select the CLI defaults, so a
// spec that spells only what a CLI invocation spelled canonicalizes to the
// same execution.
type Spec struct {
	Kind        Kind             `json:"kind"`
	Experiments *ExperimentsSpec `json:"experiments,omitempty"`
	Fault       *FaultSpec       `json:"fault,omitempty"`
	Campaign    *CampaignSpec    `json:"campaign,omitempty"`
}

// ExperimentsSpec mirrors mdxbench: which experiments, at which scale.
type ExperimentsSpec struct {
	// IDs lists experiment ids (case-insensitive), or the single keyword
	// "all".
	IDs []string `json:"ids"`
	// Quick selects the reduced CI-scale sweeps (mdxbench -quick).
	Quick bool `json:"quick,omitempty"`
}

// InjectSpec mirrors mdxfault's retransmission flags.
type InjectSpec struct {
	Retransmit bool  `json:"retransmit,omitempty"`
	RetryAfter int64 `json:"retry_after,omitempty"`
	Backoff    int   `json:"backoff,omitempty"`
	MaxRetries int   `json:"max_retries,omitempty"`
	Stall      int64 `json:"stall,omitempty"`
}

// RecoverySpec mirrors mdxfault's -recover flag triple: the deadlock-recovery
// liveness layer.
type RecoverySpec struct {
	Enabled        bool  `json:"enabled,omitempty"`
	StallThreshold int64 `json:"stall_threshold,omitempty"`
	MaxRecoveries  int   `json:"max_recoveries,omitempty"`
}

// ReconfigSpec mirrors mdxfault's -reconfig flag pair: online routing-table
// reconfiguration around mid-run faults (internal/reconfig). The zero value
// disables it.
type ReconfigSpec struct {
	// Mode is the trigger: "fault", "deadlock" or "both" ("" = off).
	Mode string `json:"mode,omitempty"`
	// DrainBudget caps the in-flight packets a cyclic transition may purge
	// before falling back to rebuild-in-place (0 = the package default).
	DrainBudget int `json:"drain_budget,omitempty"`
}

// VariantSpec selects the crossbar design under test (mdxfault's -sxb /
// -dxb / -dxb-separate / -vcs / -adaptive). The zero value is the default
// deadlock-free D-XB = S-XB design on a single-lane network.
type VariantSpec struct {
	SXB         string `json:"sxb,omitempty"`
	DXB         string `json:"dxb,omitempty"`
	DXBSeparate bool   `json:"dxb_separate,omitempty"`
	// VCs is the virtual-channel count per physical wire (0 and 1 are the
	// single-lane network); counts above 1 require Adaptive.
	VCs int `json:"vcs,omitempty"`
	// Adaptive turns on escape-VC adaptive routing (requires VCs >= 2 and
	// the unified design: no dxb_separate).
	Adaptive bool `json:"adaptive,omitempty"`
}

// FaultSpec mirrors mdxfault single mode: one machine, a scheduled fault
// sequence, one traffic pattern.
type FaultSpec struct {
	Shape string `json:"shape"`
	// Topology selects the interconnect (mdxfault -topo): "" or "mdx" is
	// the MD crossbar (canonicalized to ""), "hyperx" and "fullmesh" the
	// direct-link lattices. Crossbar-only features (xb: faults, broadcasts,
	// the variant block) are rejected on direct-link topologies; link:
	// faults are rejected on the MD crossbar.
	Topology string `json:"topology,omitempty"`
	// Fails lists fault schedules, e.g. "rtc:3,4@500", "xb:0:0,2@200" or
	// "link:0,0-3,0@400".
	Fails []string `json:"fails,omitempty"`
	// Presets lists faults installed before any traffic, e.g. "rtc:2,1".
	Presets []string `json:"presets,omitempty"`
	// Broadcasts lists broadcast schedules, e.g. "3,2@250".
	Broadcasts []string `json:"broadcasts,omitempty"`
	// Pattern is "shift+K", "reverse" or "pair:SRC>DST".
	Pattern    string       `json:"pattern"`
	Waves      int          `json:"waves,omitempty"`
	Gap        int64        `json:"gap,omitempty"`
	PacketSize int          `json:"packet_size,omitempty"`
	Horizon    int64        `json:"horizon,omitempty"`
	Inject     InjectSpec   `json:"inject,omitempty"`
	Recovery   RecoverySpec `json:"recovery,omitempty"`
	Variant    VariantSpec  `json:"variant,omitempty"`
	Reconfig   ReconfigSpec `json:"reconfig,omitempty"`
	// Shards partitions the machine into spatial shards stepped concurrently
	// (mdxfault -shards). A pure wall-clock knob: the artifact is
	// byte-identical at every count, so it does NOT participate in dedup
	// identity any more than parallelism would — but it is kept in the
	// canonical encoding so a resumed execution re-runs under the count it
	// was submitted with.
	Shards int `json:"shards,omitempty"`
}

// CampaignSpec mirrors mdxfault -campaign: the exhaustive placement grid.
type CampaignSpec struct {
	Shape string `json:"shape"`
	// Topology selects every cell's interconnect and the placement grid
	// (see FaultSpec.Topology and campaign.PlacementsFor).
	Topology   string       `json:"topology,omitempty"`
	Epochs     []int64      `json:"epochs"`
	Patterns   []string     `json:"patterns"`
	Presets    []string     `json:"presets,omitempty"`
	Broadcasts []string     `json:"broadcasts,omitempty"`
	Waves      int          `json:"waves,omitempty"`
	Gap        int64        `json:"gap,omitempty"`
	PacketSize int          `json:"packet_size,omitempty"`
	Horizon    int64        `json:"horizon,omitempty"`
	Inject     InjectSpec   `json:"inject,omitempty"`
	Recovery   RecoverySpec `json:"recovery,omitempty"`
	Variant    VariantSpec  `json:"variant,omitempty"`
	Reconfig   ReconfigSpec `json:"reconfig,omitempty"`
	// Shards partitions each cell's machine into spatial shards (mdxfault
	// -campaign -shards). Byte-identical output at every count.
	Shards int `json:"shards,omitempty"`
}

// Clone returns a deep copy sharing no memory with s, so normalizing the
// copy never mutates the caller's value. Submit clones internally, making
// concurrent submissions of one shared Spec safe.
func (s Spec) Clone() Spec {
	out := s
	if s.Experiments != nil {
		e := *s.Experiments
		e.IDs = append([]string(nil), s.Experiments.IDs...)
		out.Experiments = &e
	}
	if s.Fault != nil {
		f := *s.Fault
		f.Fails = append([]string(nil), s.Fault.Fails...)
		f.Presets = append([]string(nil), s.Fault.Presets...)
		f.Broadcasts = append([]string(nil), s.Fault.Broadcasts...)
		out.Fault = &f
	}
	if s.Campaign != nil {
		c := *s.Campaign
		c.Epochs = append([]int64(nil), s.Campaign.Epochs...)
		c.Patterns = append([]string(nil), s.Campaign.Patterns...)
		c.Presets = append([]string(nil), s.Campaign.Presets...)
		c.Broadcasts = append([]string(nil), s.Campaign.Broadcasts...)
		out.Campaign = &c
	}
	return out
}

// FieldError is a validation rejection. Every invalid spec is rejected with
// one, naming the offending field — the fuzz suite holds the decoder to
// that.
type FieldError struct {
	Field string
	Msg   string
}

func (e *FieldError) Error() string { return fmt.Sprintf("jobs: field %q: %s", e.Field, e.Msg) }

func fieldErrf(field, format string, args ...any) error {
	return &FieldError{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// Resource ceilings: a public endpoint must bound what one spec may demand.
const (
	maxIDs         = 64
	maxFails       = 64
	maxEpochs      = 64
	maxPatterns    = 16
	maxExtent      = 64
	maxPEs         = 4096
	maxCampaignPEs = 1024
	maxWaves       = 1 << 20
	maxGap         = 1 << 20
	maxPacket      = 4096
	maxHorizon     = 1 << 30
	maxRetry       = 1 << 20
	maxBackoffMul  = 64
	maxRetries     = 64
	maxStall       = 1 << 20
	maxPresets     = 64
	maxBroadcasts  = 64
	maxRecoverCap  = 64
	maxShards      = 64
	maxVCs         = 8
	maxDrainBudget = 1 << 20
)

// normalizeShards checks a spec's shard count. More shards than the service
// ceiling is rejected; the shard planner clamps counts above the lattice
// extent, so anything under the ceiling is runnable.
func normalizeShards(field string, shards int) error {
	if shards < 0 {
		return fieldErrf(field, "must be non-negative")
	}
	if shards > maxShards {
		return fieldErrf(field, "%d exceeds maximum %d", shards, maxShards)
	}
	return nil
}

// DecodeSpec parses and validates a JSON submission. Unknown fields,
// trailing data, type mismatches, and semantic violations are all rejected
// with a *FieldError; a successfully decoded spec is already normalized
// (defaults applied, ids and spellings canonicalized).
func DecodeSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, decodeError(err)
	}
	if dec.More() {
		return Spec{}, fieldErrf("body", "trailing data after the spec object")
	}
	if err := s.Normalize(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// decodeError converts an encoding/json error into a FieldError naming the
// most precise field the library reports.
func decodeError(err error) error {
	var typeErr *json.UnmarshalTypeError
	if errors.As(err, &typeErr) && typeErr.Field != "" {
		return fieldErrf(typeErr.Field, "cannot decode %s into %s", typeErr.Value, typeErr.Type)
	}
	// DisallowUnknownFields reports `json: unknown field "name"`.
	if msg := err.Error(); strings.HasPrefix(msg, "json: unknown field ") {
		name := strings.Trim(strings.TrimPrefix(msg, "json: unknown field "), "\"")
		if name == "" {
			name = "body"
		}
		return fieldErrf(name, "unknown field")
	}
	return fieldErrf("body", "invalid JSON: %v", err)
}

// Normalize validates the spec in place and rewrites it to canonical form:
// defaults applied, ids uppercased, spellings trimmed. Every rejection is a
// *FieldError. After Normalize, Canonical() is the spec's identity.
func (s *Spec) Normalize() error {
	switch s.Kind {
	case KindExperiments, KindFault, KindCampaign:
	case "":
		return fieldErrf("kind", "missing (experiments | fault | campaign)")
	default:
		return fieldErrf("kind", "unknown kind %q (experiments | fault | campaign)", s.Kind)
	}
	if got := map[Kind]bool{
		KindExperiments: s.Experiments != nil,
		KindFault:       s.Fault != nil,
		KindCampaign:    s.Campaign != nil,
	}; !got[s.Kind] {
		return fieldErrf(string(s.Kind), "kind %q needs its %q payload", s.Kind, s.Kind)
	}
	if s.Experiments != nil && s.Kind != KindExperiments {
		return fieldErrf("experiments", "payload does not match kind %q", s.Kind)
	}
	if s.Fault != nil && s.Kind != KindFault {
		return fieldErrf("fault", "payload does not match kind %q", s.Kind)
	}
	if s.Campaign != nil && s.Kind != KindCampaign {
		return fieldErrf("campaign", "payload does not match kind %q", s.Kind)
	}
	switch s.Kind {
	case KindExperiments:
		return s.Experiments.normalize()
	case KindFault:
		return s.Fault.normalize()
	default:
		return s.Campaign.normalize()
	}
}

// Canonical returns the canonical encoding of a normalized spec: its
// deterministic JSON. Two submissions with equal canonical encodings are
// the same job and dedupe to one execution.
func (s *Spec) Canonical() string {
	b, err := json.Marshal(s)
	if err != nil {
		// A normalized spec is always marshalable; this is unreachable.
		panic(fmt.Sprintf("jobs: canonical encoding: %v", err))
	}
	return string(b)
}

func (e *ExperimentsSpec) normalize() error {
	if len(e.IDs) == 0 {
		return fieldErrf("experiments.ids", "needs at least one experiment id")
	}
	if len(e.IDs) > maxIDs {
		return fieldErrf("experiments.ids", "%d ids exceeds maximum %d", len(e.IDs), maxIDs)
	}
	if len(e.IDs) == 1 && strings.EqualFold(strings.TrimSpace(e.IDs[0]), "all") {
		e.IDs = []string{"all"}
		return nil
	}
	canon := make([]string, len(e.IDs))
	for i, id := range e.IDs {
		id = strings.ToUpper(strings.TrimSpace(id))
		if _, ok := experiments.ByID(id); !ok {
			return fieldErrf(fmt.Sprintf("experiments.ids[%d]", i), "unknown experiment %q", e.IDs[i])
		}
		canon[i] = id
	}
	e.IDs = canon
	return nil
}

// parseShape validates a shape string under the service ceilings.
func parseShape(field, s string, maxSize int) (geom.Shape, error) {
	shape, err := cliutil.ParseShape(strings.TrimSpace(s))
	if err != nil {
		return nil, fieldErrf(field, "%v", err)
	}
	size := 1
	for _, e := range shape {
		if e > maxExtent {
			return nil, fieldErrf(field, "extent %d exceeds maximum %d", e, maxExtent)
		}
		size *= e
	}
	if size > maxSize {
		return nil, fieldErrf(field, "%d PEs exceeds maximum %d", size, maxSize)
	}
	return shape, nil
}

// normalizeTopology canonicalizes a spec's topology name and checks the
// shape against the topology's constructor requirements, so a spec the
// service accepts is one the machine builder accepts too. The default MD
// crossbar canonicalizes to "" (so "mdx" and an absent field dedupe to the
// same job).
func normalizeTopology(field string, topo *string, shape geom.Shape) error {
	t, err := cliutil.ParseTopology(*topo)
	if err != nil {
		return fieldErrf(field, "%v", err)
	}
	if t == core.TopologyMDX {
		*topo = ""
		return nil
	}
	if t == core.TopologyFullMesh && shape.Dims() != 1 {
		return fieldErrf(field, "fullmesh needs a one-dimensional shape, got %s", shape)
	}
	for k, e := range shape {
		if e < 2 {
			return fieldErrf(field, "topology %q needs every extent at least 2, got extent[%d]=%d", t, k, e)
		}
	}
	*topo = t
	return nil
}

// normalizeCommon checks the wave/gap/packet/horizon block shared by fault
// and campaign specs, applying the CLI defaults for zero values.
func normalizeCommon(prefix string, waves *int, gap *int64, packet *int, horizon *int64) error {
	switch {
	case *waves < 0:
		return fieldErrf(prefix+".waves", "must be non-negative")
	case *waves == 0:
		*waves = 4
	case *waves > maxWaves:
		return fieldErrf(prefix+".waves", "%d exceeds maximum %d", *waves, maxWaves)
	}
	switch {
	case *gap < 0:
		return fieldErrf(prefix+".gap", "must be non-negative")
	case *gap == 0:
		*gap = 24
	case *gap > maxGap:
		return fieldErrf(prefix+".gap", "%d exceeds maximum %d", *gap, maxGap)
	}
	if *packet < 0 || *packet > maxPacket {
		return fieldErrf(prefix+".packet_size", "must be in [0, %d]", maxPacket)
	}
	switch {
	case *horizon < 0:
		return fieldErrf(prefix+".horizon", "must be non-negative")
	case *horizon == 0:
		*horizon = 50_000
	case *horizon > maxHorizon:
		return fieldErrf(prefix+".horizon", "%d exceeds maximum %d", *horizon, maxHorizon)
	}
	return nil
}

func (in *InjectSpec) normalize(prefix string) error {
	if in.RetryAfter < 0 || in.RetryAfter > maxRetry {
		return fieldErrf(prefix+".inject.retry_after", "must be in [0, %d]", maxRetry)
	}
	if in.Backoff < 0 || in.Backoff > maxBackoffMul {
		return fieldErrf(prefix+".inject.backoff", "must be in [0, %d]", maxBackoffMul)
	}
	if in.MaxRetries < 0 || in.MaxRetries > maxRetries {
		return fieldErrf(prefix+".inject.max_retries", "must be in [0, %d]", maxRetries)
	}
	if in.Stall < 0 || in.Stall > maxStall {
		return fieldErrf(prefix+".inject.stall", "must be in [0, %d]", maxStall)
	}
	if in.Retransmit {
		// The mdxfault flag defaults, applied only when retransmission is on
		// (they are inert otherwise and stay as submitted).
		if in.RetryAfter == 0 {
			in.RetryAfter = 64
		}
		if in.Backoff == 0 {
			in.Backoff = 2
		}
		if in.MaxRetries == 0 {
			in.MaxRetries = 4
		}
	}
	return nil
}

func (r *RecoverySpec) normalize(prefix string) error {
	if r.StallThreshold > maxStall {
		return fieldErrf(prefix+".recovery.stall_threshold", "%d exceeds maximum %d", r.StallThreshold, maxStall)
	}
	if r.MaxRecoveries > maxRecoverCap {
		return fieldErrf(prefix+".recovery.max_recoveries", "%d exceeds maximum %d", r.MaxRecoveries, maxRecoverCap)
	}
	// cliutil rejects negatives and tuning-without-enable, so a spec that
	// silently does nothing is refused the same way the CLI refuses it.
	if _, err := cliutil.RecoveryOptions(r.Enabled, r.StallThreshold, r.MaxRecoveries); err != nil {
		return fieldErrf(prefix+".recovery", "%v", err)
	}
	return nil
}

func (r *ReconfigSpec) normalize(prefix, topology string, variant *VariantSpec) error {
	if r.DrainBudget > maxDrainBudget {
		return fieldErrf(prefix+".reconfig.drain_budget", "%d exceeds maximum %d", r.DrainBudget, maxDrainBudget)
	}
	// cliutil rejects unknown modes, negative budgets and a budget without
	// the mode — the same refusals the CLI flags produce.
	mode, budget, err := cliutil.ReconfigOptions(r.Mode, r.DrainBudget)
	if err != nil {
		return fieldErrf(prefix+".reconfig", "%v", err)
	}
	if mode == "" {
		r.Mode = ""
		return nil
	}
	if topology != "" {
		return fieldErrf(prefix+".reconfig.mode", "topology %q has no reconfigurable table generations (mdx-only)", topology)
	}
	if variant.VCs != 0 || variant.Adaptive {
		return fieldErrf(prefix+".reconfig.mode", "reconfiguration needs the single-lane network (drop variant.vcs/adaptive)")
	}
	r.Mode, r.DrainBudget = mode, budget
	return nil
}

func (v *VariantSpec) normalize(prefix string, shape geom.Shape, topology string) error {
	v.SXB = strings.TrimSpace(v.SXB)
	v.DXB = strings.TrimSpace(v.DXB)
	if topology != "" && (v.SXB != "" || v.DXB != "" || v.DXBSeparate || v.VCs != 0 || v.Adaptive) {
		return fieldErrf(prefix+".variant", "topology %q has no crossbars to configure (the variant block is mdx-only)", topology)
	}
	if v.VCs > maxVCs {
		return fieldErrf(prefix+".variant.vcs", "%d exceeds maximum %d", v.VCs, maxVCs)
	}
	if v.Adaptive && v.DXBSeparate {
		return fieldErrf(prefix+".variant.adaptive", "needs the unified design (the escape lane's deadlock-freedom certificate assumes D-XB = S-XB; drop dxb_separate)")
	}
	// cliutil rejects negative counts, adaptive without lanes, and lanes
	// without adaptive — the same refusals the CLI flags produce.
	vcs, err := cliutil.VCOptions(v.VCs, v.Adaptive)
	if err != nil {
		return fieldErrf(prefix+".variant.vcs", "%v", err)
	}
	// An explicit single-lane count canonicalizes to the absent field, so
	// "vcs": 1 and an unset count dedupe to the same job.
	if vcs == 1 {
		v.VCs = 0
	} else {
		v.VCs = vcs
	}
	if v.SXB != "" {
		c, err := cliutil.ParseCoord(v.SXB, shape.Dims())
		if err != nil {
			return fieldErrf(prefix+".variant.sxb", "%v", err)
		}
		if !shape.Contains(c) {
			return fieldErrf(prefix+".variant.sxb", "coordinate %q outside shape", v.SXB)
		}
	}
	if v.DXB != "" {
		if !v.DXBSeparate {
			return fieldErrf(prefix+".variant.dxb", "needs dxb_separate (the unified design has no second crossbar)")
		}
		c, err := cliutil.ParseCoord(v.DXB, shape.Dims())
		if err != nil {
			return fieldErrf(prefix+".variant.dxb", "%v", err)
		}
		if !shape.Contains(c) {
			return fieldErrf(prefix+".variant.dxb", "coordinate %q outside shape", v.DXB)
		}
	}
	return nil
}

// normalizeWorkload validates the preset-fault and broadcast lists shared by
// fault and campaign specs against the shape and topology.
func normalizeWorkload(prefix string, shape geom.Shape, topology string, presets, broadcasts []string) error {
	if len(presets) > maxPresets {
		return fieldErrf(prefix+".presets", "%d presets exceeds maximum %d", len(presets), maxPresets)
	}
	for i, ps := range presets {
		presets[i] = strings.TrimSpace(ps)
		f, err := cliutil.ParseFaultIn(presets[i], shape)
		if err != nil {
			return fieldErrf(fmt.Sprintf("%s.presets[%d]", prefix, i), "%v", err)
		}
		if err := cliutil.CheckFaultTopology(f, topology); err != nil {
			return fieldErrf(fmt.Sprintf("%s.presets[%d]", prefix, i), "%v", err)
		}
	}
	if len(broadcasts) > maxBroadcasts {
		return fieldErrf(prefix+".broadcasts", "%d broadcasts exceeds maximum %d", len(broadcasts), maxBroadcasts)
	}
	if topology != "" && len(broadcasts) > 0 {
		return fieldErrf(prefix+".broadcasts", "topology %q has no hardware broadcast (mdx-only)", topology)
	}
	for i, bs := range broadcasts {
		broadcasts[i] = strings.TrimSpace(bs)
		if _, _, err := cliutil.ParseBroadcast(broadcasts[i], shape); err != nil {
			return fieldErrf(fmt.Sprintf("%s.broadcasts[%d]", prefix, i), "%v", err)
		}
	}
	return nil
}

func (f *FaultSpec) normalize() error {
	shape, err := parseShape("fault.shape", f.Shape, maxPEs)
	if err != nil {
		return err
	}
	f.Shape = shape.String()
	if err := normalizeTopology("fault.topology", &f.Topology, shape); err != nil {
		return err
	}
	if len(f.Fails) == 0 && len(f.Presets) == 0 && len(f.Broadcasts) == 0 {
		return fieldErrf("fault.fails", "needs a FAULT@CYCLE schedule, a preset fault or a broadcast")
	}
	if len(f.Fails) > maxFails {
		return fieldErrf("fault.fails", "%d schedules exceeds maximum %d", len(f.Fails), maxFails)
	}
	for i, fs := range f.Fails {
		fs = strings.TrimSpace(fs)
		flt, _, err := cliutil.ParseScheduledFault(fs, shape)
		if err != nil {
			return fieldErrf(fmt.Sprintf("fault.fails[%d]", i), "%v", err)
		}
		if err := cliutil.CheckFaultTopology(flt, f.Topology); err != nil {
			return fieldErrf(fmt.Sprintf("fault.fails[%d]", i), "%v", err)
		}
		f.Fails[i] = fs
	}
	if err := normalizeWorkload("fault", shape, f.Topology, f.Presets, f.Broadcasts); err != nil {
		return err
	}
	f.Pattern = strings.TrimSpace(f.Pattern)
	if _, err := campaign.ParsePattern(f.Pattern); err != nil {
		return fieldErrf("fault.pattern", "%v", err)
	}
	if err := normalizeCommon("fault", &f.Waves, &f.Gap, &f.PacketSize, &f.Horizon); err != nil {
		return err
	}
	if err := f.Recovery.normalize("fault"); err != nil {
		return err
	}
	if err := f.Variant.normalize("fault", shape, f.Topology); err != nil {
		return err
	}
	if err := f.Reconfig.normalize("fault", f.Topology, &f.Variant); err != nil {
		return err
	}
	if err := normalizeShards("fault.shards", f.Shards); err != nil {
		return err
	}
	return f.Inject.normalize("fault")
}

func (c *CampaignSpec) normalize() error {
	shape, err := parseShape("campaign.shape", c.Shape, maxCampaignPEs)
	if err != nil {
		return err
	}
	c.Shape = shape.String()
	if err := normalizeTopology("campaign.topology", &c.Topology, shape); err != nil {
		return err
	}
	if len(c.Epochs) == 0 {
		return fieldErrf("campaign.epochs", "needs at least one activation cycle")
	}
	if len(c.Epochs) > maxEpochs {
		return fieldErrf("campaign.epochs", "%d epochs exceeds maximum %d", len(c.Epochs), maxEpochs)
	}
	for i, e := range c.Epochs {
		if e < 0 || e > maxHorizon {
			return fieldErrf(fmt.Sprintf("campaign.epochs[%d]", i), "must be in [0, %d]", maxHorizon)
		}
	}
	if len(c.Patterns) == 0 {
		return fieldErrf("campaign.patterns", "needs at least one pattern")
	}
	if len(c.Patterns) > maxPatterns {
		return fieldErrf("campaign.patterns", "%d patterns exceeds maximum %d", len(c.Patterns), maxPatterns)
	}
	for i, p := range c.Patterns {
		p = strings.TrimSpace(p)
		if _, err := campaign.ParsePattern(p); err != nil {
			return fieldErrf(fmt.Sprintf("campaign.patterns[%d]", i), "%v", err)
		}
		c.Patterns[i] = p
	}
	if err := normalizeWorkload("campaign", shape, c.Topology, c.Presets, c.Broadcasts); err != nil {
		return err
	}
	if err := normalizeCommon("campaign", &c.Waves, &c.Gap, &c.PacketSize, &c.Horizon); err != nil {
		return err
	}
	if err := c.Recovery.normalize("campaign"); err != nil {
		return err
	}
	if err := c.Variant.normalize("campaign", shape, c.Topology); err != nil {
		return err
	}
	if err := c.Reconfig.normalize("campaign", c.Topology, &c.Variant); err != nil {
		return err
	}
	if err := normalizeShards("campaign.shards", c.Shards); err != nil {
		return err
	}
	return c.Inject.normalize("campaign")
}

// ReadSpec decodes a spec from a reader (the HTTP body), bounding the read.
func ReadSpec(r io.Reader, limit int64) (Spec, error) {
	data, err := io.ReadAll(io.LimitReader(r, limit+1))
	if err != nil {
		return Spec{}, fieldErrf("body", "read: %v", err)
	}
	if int64(len(data)) > limit {
		return Spec{}, fieldErrf("body", "spec exceeds %d bytes", limit)
	}
	return DecodeSpec(data)
}
