package jobs

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// repoRoot walks up from the working directory to the module root, where the
// cmd/ binaries live.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// cliStdout runs one of the repo's CLIs and returns its stdout. A non-zero
// exit is fine when allowFail (mdxfault exits 1 on an undrained run; the
// report on stdout is still the artifact).
func cliStdout(t *testing.T, root string, allowFail bool, args ...string) []byte {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Dir = root
	out, err := cmd.Output()
	if err != nil && !allowFail {
		if ee, ok := err.(*exec.ExitError); ok {
			t.Fatalf("go run %v: %v\nstderr:\n%s", args, err, ee.Stderr)
		}
		t.Fatalf("go run %v: %v", args, err)
	}
	return out
}

// jobArtifact submits a spec at the given pool width and returns the
// finished artifact.
func jobArtifact(t *testing.T, spec Spec, parallel int) []byte {
	t.Helper()
	m := NewManager(Config{Workers: 2, Parallel: parallel})
	defer m.Stop()
	id, _, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, id, StatusDone)
	artifact, ok, err := m.Artifact(id)
	if err != nil || !ok {
		t.Fatalf("artifact: ok=%v err=%v", ok, err)
	}
	return artifact
}

// TestDifferentialCLIvsServer is the cross-boundary determinism contract: for
// a pinned spec matrix, the job artifact must equal the corresponding CLI
// stdout byte for byte, at pool width 1 and at width 4.
func TestDifferentialCLIvsServer(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run subprocesses")
	}
	root := repoRoot(t)

	cases := []struct {
		name      string
		spec      Spec
		allowFail bool
		cli       func(parallel string) []string
	}{
		{
			name: "mdxbench_quick_E1_F1",
			spec: Spec{Kind: KindExperiments, Experiments: &ExperimentsSpec{IDs: []string{"E1", "F1"}, Quick: true}},
			cli: func(p string) []string {
				return []string{"sr2201/cmd/mdxbench", "-quick", "-exp", "E1,F1", "-parallel", p}
			},
		},
		{
			name: "mdxfault_single_retransmit",
			spec: Spec{Kind: KindFault, Fault: &FaultSpec{
				Shape: "4x4", Fails: []string{"rtc:1,1@40"}, Pattern: "shift+5",
				Waves: 2, Inject: InjectSpec{Retransmit: true},
			}},
			cli: func(p string) []string {
				return []string{"sr2201/cmd/mdxfault", "-shape", "4x4", "-fail", "rtc:1,1@40",
					"-waves", "2", "-retransmit"}
			},
		},
		{
			name: "mdxfault_single_undrained",
			spec: Spec{Kind: KindFault, Fault: &FaultSpec{
				Shape: "4x4", Fails: []string{"rtc:1,1@40"}, Pattern: "shift+5", Waves: 2,
			}},
			allowFail: true, // lost packets, exit 1 — the report must still match
			cli: func(p string) []string {
				return []string{"sr2201/cmd/mdxfault", "-shape", "4x4", "-fail", "rtc:1,1@40", "-waves", "2"}
			},
		},
		{
			// The paper's Fig. 9 deadlocking configuration (separate detour
			// crossbar) runs to completion under deadlock recovery; the
			// recovery event lines must match the CLI byte for byte.
			name: "mdxfault_fig9_recovery",
			spec: Spec{Kind: KindFault, Fault: &FaultSpec{
				Shape: "4x4", Pattern: "pair:0,1>2,2", Waves: 1, Gap: 1, PacketSize: 24,
				Presets: []string{"rtc:2,1"}, Broadcasts: []string{"3,2@0"},
				Inject:   InjectSpec{Retransmit: true, RetryAfter: 32, Stall: 256},
				Recovery: RecoverySpec{Enabled: true, StallThreshold: 256},
				Variant:  VariantSpec{SXB: "0,0", DXB: "0,3", DXBSeparate: true},
			}},
			cli: func(p string) []string {
				return []string{"sr2201/cmd/mdxfault", "-shape", "4x4", "-dxb-separate",
					"-sxb", "0,0", "-dxb", "0,3", "-preset", "rtc:2,1",
					"-patterns", "pair:0,1>2,2", "-broadcast", "3,2@0", "-packet", "24",
					"-waves", "1", "-gap", "1", "-retransmit", "-retry-after", "32",
					"-stall", "256", "-recover", "-stall-threshold", "256"}
			},
		},
		{
			// A HyperX single run with a mid-run link fault: the topology
			// preamble line, the link-fault event rendering, and the
			// fault-tolerant detour accounting must all match the CLI.
			name: "mdxfault_hyperx_link",
			spec: Spec{Kind: KindFault, Fault: &FaultSpec{
				Shape: "4x4", Topology: "hyperx", Fails: []string{"link:0,0-3,0@60"},
				Pattern: "shift+5", Waves: 4, Inject: InjectSpec{Retransmit: true},
			}},
			cli: func(p string) []string {
				return []string{"sr2201/cmd/mdxfault", "-shape", "4x4", "-topo", "hyperx",
					"-fail", "link:0,0-3,0@60", "-waves", "4", "-retransmit"}
			},
		},
		{
			// A full-mesh campaign: placements include every router and every
			// link pair, and the link-dim0 class rows must match the CLI at
			// both pool widths.
			name: "mdxfault_fullmesh_campaign",
			spec: Spec{Kind: KindCampaign, Campaign: &CampaignSpec{
				Shape: "8", Topology: "fullmesh", Epochs: []int64{12}, Patterns: []string{"shift+3"},
				Inject: InjectSpec{Retransmit: true},
			}},
			cli: func(p string) []string {
				return []string{"sr2201/cmd/mdxfault", "-campaign", "-shape", "8", "-topo", "fullmesh",
					"-epochs", "12", "-patterns", "shift+3", "-retransmit", "-parallel", p}
			},
		},
		{
			// The escape-VC adaptive machine across the differential
			// boundary: a single-fault campaign on two lanes per wire with
			// the recovery supervisor armed. The artifact — including the
			// zero-recovery accounting the adaptive design owes — must
			// match the CLI byte for byte at both pool widths.
			name: "mdxfault_adaptive_campaign",
			spec: Spec{Kind: KindCampaign, Campaign: &CampaignSpec{
				Shape: "4x4", Epochs: []int64{12}, Patterns: []string{"shift+5"},
				Inject:   InjectSpec{Retransmit: true},
				Recovery: RecoverySpec{Enabled: true, StallThreshold: 256},
				Variant:  VariantSpec{VCs: 2, Adaptive: true},
			}},
			cli: func(p string) []string {
				return []string{"sr2201/cmd/mdxfault", "-campaign", "-shape", "4x4",
					"-epochs", "12", "-patterns", "shift+5", "-retransmit",
					"-recover", "-stall-threshold", "256",
					"-vcs", "2", "-adaptive", "-parallel", p}
			},
		},
		{
			name: "mdxfault_campaign",
			spec: Spec{Kind: KindCampaign, Campaign: &CampaignSpec{
				Shape: "4x4", Epochs: []int64{12, 60}, Patterns: []string{"shift+5", "reverse"},
				Inject: InjectSpec{Retransmit: true},
			}},
			cli: func(p string) []string {
				return []string{"sr2201/cmd/mdxfault", "-campaign", "-shape", "4x4",
					"-epochs", "12,60", "-patterns", "shift+5,reverse", "-retransmit", "-parallel", p}
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := cliStdout(t, root, tc.allowFail, tc.cli("1")...)
			if len(want) == 0 {
				t.Fatal("CLI produced no stdout")
			}
			// The CLI's own output must not depend on its pool width either.
			if wide := cliStdout(t, root, tc.allowFail, tc.cli("4")...); string(wide) != string(want) {
				t.Errorf("CLI stdout differs between -parallel 1 and 4")
			}
			for _, parallel := range []int{1, 4} {
				got := jobArtifact(t, tc.spec, parallel)
				if string(got) != string(want) {
					t.Errorf("artifact at parallel=%d differs from CLI stdout:\n--- CLI ---\n%s\n--- job ---\n%s",
						parallel, want, got)
				}
			}
		})
	}
}
