package core_test

// The VC test wall, core layer.
//
// Virtual channels multiply every router↔crossbar wire into lanes, so the
// single most important regression surface is the degenerate case: a machine
// built with VCs=1 (or 0) and Adaptive=false must be the pre-VC machine down
// to the last bit — same per-cycle StateHash stream, same snapshot bytes, at
// every shard count. The equivalence tests pin that. The adaptive round-trip
// test pins checkpoint v2: a mid-run snapshot of a VCs>1 machine restores
// into a fresh machine that replays the identical hash stream. FuzzVCAlloc
// holds the allocator itself to the conservation laws.

import (
	"bytes"
	"fmt"
	"testing"

	"sr2201/internal/core"
	"sr2201/internal/engine"
	"sr2201/internal/fault"
	"sr2201/internal/geom"
)

// vcScenario is one workload driven identically into two machines.
type vcScenario struct {
	name string
	cfg  core.Config
	// drive injects traffic; called once per machine before stepping.
	drive func(t *testing.T, m *core.Machine)
}

func shiftTraffic(k int) func(t *testing.T, m *core.Machine) {
	return func(t *testing.T, m *core.Machine) {
		t.Helper()
		sh := m.Shape()
		n := sh.Size()
		for i := 0; i < n; i++ {
			src, dst := sh.CoordOf(i), sh.CoordOf((i+k)%n)
			if !m.Alive(src) || !m.Alive(dst) {
				continue
			}
			if err := m.Reachable(src, dst); err != nil {
				continue
			}
			if _, err := m.Send(src, dst, 8); err != nil {
				t.Fatalf("send %v->%v: %v", src, dst, err)
			}
		}
	}
}

func vcScenarios() []vcScenario {
	bcast := func(t *testing.T, m *core.Machine) {
		t.Helper()
		shiftTraffic(5)(t, m)
		if _, _, err := m.Broadcast(geom.Coord{1, 2}, 8); err != nil {
			t.Fatalf("broadcast: %v", err)
		}
	}
	return []vcScenario{
		{
			name:  "unicast-faulted",
			cfg:   core.Config{Shape: geom.MustShape(4, 4)},
			drive: shiftTraffic(5),
		},
		{
			name:  "broadcast",
			cfg:   core.Config{Shape: geom.MustShape(4, 4)},
			drive: bcast,
		},
		{
			name: "separate-dxb",
			cfg: core.Config{
				Shape:       geom.MustShape(4, 4),
				DXB:         geom.Coord{0, 3},
				DXBSeparate: true,
			},
			drive: shiftTraffic(3),
		},
		{
			name: "pivot-3d",
			cfg: core.Config{
				Shape:        geom.MustShape(3, 3, 3),
				PivotLastDim: true,
			},
			drive: shiftTraffic(7),
		},
	}
}

// buildVCScenario constructs the machine, applying the scenario's preset
// fault for the 2D cases so detour paths are exercised.
func buildVCScenario(t *testing.T, sc vcScenario, vcs, shards int) *core.Machine {
	t.Helper()
	cfg := sc.cfg
	cfg.VCs = vcs
	cfg.Shards = shards
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatalf("NewMachine(%s, vcs=%d, shards=%d): %v", sc.name, vcs, shards, err)
	}
	if sc.name == "unicast-faulted" {
		if err := m.AddFault(fault.RouterFault(geom.Coord{2, 1})); err != nil {
			t.Fatal(err)
		}
	}
	sc.drive(t, m)
	return m
}

// runStream steps the machine to quiescence (or the cycle cap) and returns
// the per-cycle StateHash stream.
func runStream(m *core.Machine, cap int) []uint64 {
	var out []uint64
	for i := 0; i < cap && !m.Engine().Quiescent(); i++ {
		m.Step()
		out = append(out, m.Engine().StateHash())
	}
	return out
}

// TestVCSingleLaneHashEquivalence pins the degenerate case: VCs=1 (and the
// unset default) build byte-identical machines — identical per-cycle hash
// streams and identical snapshot bytes — for every routing variant, at every
// shard count. This is the contract that lets every pre-VC golden fixture
// survive the VC layer untouched.
func TestVCSingleLaneHashEquivalence(t *testing.T) {
	for _, sc := range vcScenarios() {
		sc := sc
		for _, shards := range []int{0, 2, 3} {
			t.Run(fmt.Sprintf("%s/shards=%d", sc.name, shards), func(t *testing.T) {
				ref := buildVCScenario(t, sc, 0, 0) // the pre-VC machine: defaults, serial
				got := buildVCScenario(t, sc, 1, shards)
				refStream := runStream(ref, 20000)
				gotStream := runStream(got, 20000)
				if len(refStream) != len(gotStream) {
					t.Fatalf("stream lengths diverged: default/serial %d cycles, vcs=1/shards=%d %d cycles",
						len(refStream), shards, len(gotStream))
				}
				for i := range refStream {
					if refStream[i] != gotStream[i] {
						t.Fatalf("cycle %d: hash %#x (default) != %#x (vcs=1, shards=%d)",
							i+1, refStream[i], gotStream[i], shards)
					}
				}
				if !bytes.Equal(ref.Snapshot(), got.Snapshot()) {
					t.Error("final snapshots differ between default and vcs=1 machines")
				}
			})
		}
	}
}

// adaptiveMachine builds the canonical adaptive test machine: 4x4, two
// lanes, cross traffic in both dimensions plus a broadcast, one preset
// router fault to force detours through the escape channel.
func adaptiveMachine(t *testing.T, shards int) *core.Machine {
	t.Helper()
	m, err := core.NewMachine(core.Config{
		Shape:    geom.MustShape(4, 4),
		VCs:      2,
		Adaptive: true,
		Shards:   shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddFault(fault.RouterFault(geom.Coord{2, 1})); err != nil {
		t.Fatal(err)
	}
	shiftTraffic(5)(t, m)
	if _, _, err := m.Broadcast(geom.Coord{3, 2}, 8); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestVCAdaptiveShardEquivalence extends the shard-equivalence guarantee to
// the adaptive machine: the adaptive lane choice reads only phase-stable
// port ownership, so the per-cycle hash stream must not move at any shard
// count.
func TestVCAdaptiveShardEquivalence(t *testing.T) {
	serial := runStream(adaptiveMachine(t, 0), 20000)
	if len(serial) == 0 {
		t.Fatal("adaptive machine did no work")
	}
	for _, shards := range []int{2, 3, 4} {
		got := runStream(adaptiveMachine(t, shards), 20000)
		if len(got) != len(serial) {
			t.Fatalf("shards=%d: %d cycles, serial %d", shards, len(got), len(serial))
		}
		for i := range serial {
			if serial[i] != got[i] {
				t.Fatalf("shards=%d cycle %d: hash %#x != serial %#x", shards, i+1, got[i], serial[i])
			}
		}
	}
}

// TestVCAdaptiveCheckpointRoundTrip pins checkpoint v2 for per-VC state: a
// mid-run snapshot of an adaptive VCs=2 machine — provisional route states,
// per-lane credits, AdaptiveHops in flight — restores into a fresh machine
// whose remaining per-cycle hash stream and delivery records are identical
// to the uninterrupted run.
func TestVCAdaptiveCheckpointRoundTrip(t *testing.T) {
	for _, cut := range []int{1, 5, 9, 17} {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			ref := adaptiveMachine(t, 0)
			for i := 0; i < cut; i++ {
				ref.Step()
			}
			snap := ref.Snapshot()
			var refStream []uint64
			for i := 0; i < 20000 && !ref.Engine().Quiescent(); i++ {
				ref.Step()
				refStream = append(refStream, ref.Engine().StateHash())
			}

			restored, err := core.NewMachine(core.Config{
				Shape:    geom.MustShape(4, 4),
				VCs:      2,
				Adaptive: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := restored.AddFault(fault.RouterFault(geom.Coord{2, 1})); err != nil {
				t.Fatal(err)
			}
			if err := restored.Restore(snap); err != nil {
				t.Fatalf("restore at cut %d: %v", cut, err)
			}
			for i, want := range refStream {
				restored.Step()
				if got := restored.Engine().StateHash(); got != want {
					t.Fatalf("cycle %d after cut: hash %#x != reference %#x", i+1, got, want)
				}
			}
			if got, want := len(restored.Deliveries()), len(ref.Deliveries()); got != want {
				t.Errorf("restored run recorded %d deliveries, reference %d", got, want)
			}
			adaptive := 0
			for _, d := range restored.Deliveries() {
				if d.Adaptive {
					adaptive++
				}
			}
			if adaptive == 0 {
				t.Error("no delivery used an adaptive lane — the round trip did not exercise per-VC state")
			}
		})
	}
}

// TestVCAdaptiveStaleSnapshotRejected pins the fingerprint direction the
// equivalence tests cannot see: an adaptive machine's snapshot names a
// different configuration than the default machine, so restoring it there
// must fail — while pre-VC snapshots (VCs<=1) keep their original
// fingerprints and stay restorable.
func TestVCAdaptiveStaleSnapshotRejected(t *testing.T) {
	adaptive := adaptiveMachine(t, 0)
	plain, err := core.NewMachine(core.Config{Shape: geom.MustShape(4, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Restore(adaptive.Snapshot()); err == nil {
		t.Error("default machine restored an adaptive VCs=2 snapshot")
	}
	if err := adaptive.Restore(plain.Snapshot()); err == nil {
		t.Error("adaptive machine restored a single-lane snapshot")
	}
}

// FuzzVCAlloc drives the VC allocator over arbitrary small adaptive
// machines: random shapes, lane counts, fault placements and traffic. The
// engine's conservation laws (per-lane credits, ownership, flit accounting)
// must hold after every cycle, nothing may panic, and the run must drain —
// the escape channel guarantees it, and a blocked escape lane would surface
// here as a stall at the horizon.
func FuzzVCAlloc(f *testing.F) {
	f.Add(uint8(4), uint8(4), uint8(0), uint8(2), uint8(0), uint8(5))
	f.Add(uint8(2), uint8(3), uint8(0), uint8(3), uint8(7), uint8(1))
	f.Add(uint8(3), uint8(3), uint8(3), uint8(2), uint8(11), uint8(9))
	f.Add(uint8(5), uint8(1), uint8(0), uint8(4), uint8(2), uint8(3))
	f.Add(uint8(2), uint8(2), uint8(2), uint8(2), uint8(255), uint8(0))
	f.Fuzz(func(t *testing.T, a, b, c, vcsRaw, faultSel, shift uint8) {
		var extents []int
		for _, e := range []uint8{a, b, c} {
			if e == 0 {
				break
			}
			extents = append(extents, int(e%4)+2) // 2..5 per dimension
		}
		if len(extents) == 0 {
			t.Skip()
		}
		shape := geom.MustShape(extents...)
		if shape.Size() > 64 {
			t.Skip()
		}
		vcs := int(vcsRaw%3) + 2 // 2..4 lanes
		m, err := core.NewMachine(core.Config{
			Shape:    shape,
			VCs:      vcs,
			Adaptive: true,
			Engine:   engine.Config{BufferDepth: int(vcsRaw%2) + 1, LinkDelay: 1},
		})
		if err != nil {
			t.Fatalf("NewMachine(%v, vcs=%d): %v", shape, vcs, err)
		}
		if faultSel != 255 {
			victim := shape.CoordOf(int(faultSel) % shape.Size())
			if err := m.AddFault(fault.RouterFault(victim)); err != nil {
				t.Fatalf("fault %v: %v", victim, err)
			}
		}
		n := shape.Size()
		for i := 0; i < n; i++ {
			src, dst := shape.CoordOf(i), shape.CoordOf((i+int(shift))%n)
			if !m.Alive(src) || !m.Alive(dst) || m.Reachable(src, dst) != nil {
				continue
			}
			if _, err := m.Send(src, dst, 4); err != nil {
				t.Fatalf("send %v->%v: %v", src, dst, err)
			}
		}
		const horizon = 20000
		for i := 0; i < horizon && !m.Engine().Quiescent(); i++ {
			m.Step()
			if err := m.Engine().CheckInvariants(); err != nil {
				t.Fatalf("cycle %d (shape %v, vcs=%d): %v", m.Cycle(), shape, vcs, err)
			}
		}
		if !m.Engine().Quiescent() {
			t.Fatalf("did not drain by cycle %d (shape %v, vcs=%d, fault=%d): escape channel blocked?",
				horizon, shape, vcs, faultSel)
		}
	})
}
