package core

import (
	"math/rand"
	"testing"

	"sr2201/internal/fault"
	"sr2201/internal/geom"
)

// TestSoakMixedTraffic is a long-running reliability drill: heavy randomized
// unicast + broadcast traffic on a faulted 6x6 machine for many cycles, with
// kernel invariants audited periodically and a final drain. It is the
// closest the suite gets to "operate the machine for a while".
func TestSoakMixedTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for _, seedFault := range []struct {
		seed int64
		f    fault.Fault
	}{
		{1, fault.RouterFault(geom.Coord{2, 3})},
		{2, fault.XBFault(geom.LineOf(geom.Coord{0, 1}, 0))},
	} {
		m := mustMachine(t, Config{Shape: geom.MustShape(6, 6), StallThreshold: 2048})
		if err := m.AddFault(seedFault.f); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seedFault.seed))
		shape := m.Shape()
		sent, bcasts := 0, 0
		for cycle := 0; cycle < 20_000; cycle++ {
			if rng.Float64() < 0.4 {
				src := shape.CoordOf(rng.Intn(shape.Size()))
				dst := shape.CoordOf(rng.Intn(shape.Size()))
				if m.Alive(src) && src != dst {
					if _, err := m.Send(src, dst, 4+rng.Intn(8)); err == nil {
						sent++
					}
				}
			}
			if rng.Float64() < 0.002 {
				src := shape.CoordOf(rng.Intn(shape.Size()))
				if m.Alive(src) {
					if _, _, err := m.Broadcast(src, 8); err == nil {
						bcasts++
					}
				}
			}
			m.Step()
			if cycle%500 == 0 {
				if err := m.Engine().CheckInvariants(); err != nil {
					t.Fatalf("fault %v cycle %d: %v", seedFault.f, cycle, err)
				}
			}
		}
		out := m.Run(500_000)
		if !out.Drained {
			t.Fatalf("fault %v: soak did not drain: %+v\n%s", seedFault.f, out, out.Report.Describe())
		}
		if err := m.Engine().CheckInvariants(); err != nil {
			t.Fatalf("fault %v post-drain: %v", seedFault.f, err)
		}
		if m.Dropped() != 0 {
			t.Errorf("fault %v: %d packets dropped (prechecked sends should never drop)", seedFault.f, m.Dropped())
		}
		t.Logf("fault %v: %d packets + %d broadcasts over 20k cycles, all delivered (%d deliveries)",
			seedFault.f, sent, bcasts, len(m.Deliveries()))
	}
}
