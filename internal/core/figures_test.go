package core

import (
	"testing"

	"sr2201/internal/fault"
	"sr2201/internal/geom"
)

// fig9Machine builds the paper Fig. 9 configuration: S-XB and D-XB on
// different dim-0 lines, one faulty router positioned so the point-to-point
// packet below must detour.
func fig9Machine(t *testing.T, separate bool) *Machine {
	t.Helper()
	cfg := Config{
		Shape:          geom.MustShape(4, 4),
		SXB:            geom.Coord{0, 0},
		StallThreshold: 128,
	}
	if separate {
		cfg.DXB = geom.Coord{0, 3}
		cfg.DXBSeparate = true
	}
	m := mustMachine(t, cfg)
	if err := m.AddFault(fault.RouterFault(geom.Coord{2, 1})); err != nil {
		t.Fatal(err)
	}
	return m
}

// fig9Traffic injects the deadlock-prone combination: a long detoured
// point-to-point packet and, offset cycles later, a broadcast whose fan-out
// needs the channels the detour is holding.
func fig9Traffic(t *testing.T, m *Machine, offset int) {
	t.Helper()
	if _, err := m.Send(geom.Coord{0, 1}, geom.Coord{2, 2}, 24); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < offset; i++ {
		m.Step()
	}
	if _, _, err := m.Broadcast(geom.Coord{3, 2}, 24); err != nil {
		t.Fatal(err)
	}
}

// Paper Fig. 9: with D-XB != S-XB, a simultaneous broadcast and detoured
// point-to-point packet form a cyclic wait. The deadlock is timing-dependent
// (Section 5: changing the routing "allows deadlock to occur") — later
// broadcast offsets let the detour clear first.
func TestFig9DeadlockWithSeparateDXB(t *testing.T) {
	m := fig9Machine(t, true)
	fig9Traffic(t, m, 0)
	out := m.Run(100_000)
	if !out.Stalled {
		t.Fatalf("expected stall, got %+v (delivered %d)", out, len(m.Deliveries()))
	}
	if !out.Deadlocked {
		t.Fatalf("stall not confirmed as cyclic wait:\n%s", out.Report.Describe())
	}
	if len(m.Deliveries()) != 0 {
		t.Errorf("delivered %d before wedging", len(m.Deliveries()))
	}
	// A late-enough broadcast dodges the window: same configuration drains.
	m2 := fig9Machine(t, true)
	fig9Traffic(t, m2, 8)
	if out := m2.Run(100_000); !out.Drained {
		t.Errorf("offset-8 run should drain, got %+v", out)
	}
}

// Paper Fig. 10: the identical traffic with D-XB = S-XB drains completely.
func TestFig10NoDeadlockWithUnifiedDXB(t *testing.T) {
	m := fig9Machine(t, false)
	fig9Traffic(t, m, 0)
	out := m.Run(100_000)
	if !out.Drained {
		t.Fatalf("outcome %+v\n%s", out, out.Report.Describe())
	}
	// One p2p delivery (detoured) plus a full broadcast minus the dead PE.
	wantBroadcast := m.Shape().Size() - 1
	var p2p, bcast int
	for _, d := range m.Deliveries() {
		if d.Broadcast {
			bcast++
		} else {
			p2p++
			if !d.Detoured {
				t.Error("p2p delivery not flagged as detoured")
			}
		}
	}
	if p2p != 1 || bcast != wantBroadcast {
		t.Errorf("p2p=%d bcast=%d (want 1, %d)", p2p, bcast, wantBroadcast)
	}
}

// The deadlock-freedom sweep behind the paper's Section 5 claim: for every
// single router fault, every detour-inducing point-to-point pair, every
// broadcast source and several injection offsets, the unified D-XB = S-XB
// scheme always drains. (The full sweep, including crossbar faults, runs in
// the experiment harness; this keeps a dense core in the test suite.)
func TestDeadlockFreeSweepFig10(t *testing.T) {
	shape := geom.MustShape(3, 3)
	runs := 0
	shape.Enumerate(func(bad geom.Coord) bool {
		shape.Enumerate(func(src geom.Coord) bool {
			if src == bad {
				return true
			}
			shape.Enumerate(func(dst geom.Coord) bool {
				if dst == bad || dst == src {
					return true
				}
				// Only pairs whose turn router is the fault detour; others
				// are plain dimension-order traffic — sample them sparsely.
				turn := geom.Coord{dst[0], src[1]}
				if turn != bad && (src[0]+dst[1])%3 != 0 {
					return true
				}
				for offset := 0; offset <= 4; offset += 2 {
					m := mustMachine(t, Config{Shape: shape, StallThreshold: 96})
					if err := m.AddFault(fault.RouterFault(bad)); err != nil {
						t.Fatal(err)
					}
					if _, err := m.Send(src, dst, 24); err != nil {
						// Unreachable pairs are allowed (documented).
						continue
					}
					for i := 0; i < offset; i++ {
						m.Step()
					}
					bsrc := geom.Coord{(src[0] + 1) % 3, (src[1] + 2) % 3}
					if bsrc != bad {
						if _, _, err := m.Broadcast(bsrc, 24); err != nil {
							t.Fatalf("fault %v bsrc %v: %v", bad, bsrc, err)
						}
					}
					out := m.Run(50_000)
					if !out.Drained {
						t.Fatalf("fault %v %v->%v offset %d: %+v\n%s", bad, src, dst, offset, out, out.Report.Describe())
					}
					runs++
				}
				return true
			})
			return true
		})
		return true
	})
	if runs < 100 {
		t.Fatalf("sweep ran only %d scenarios", runs)
	}
	t.Logf("sweep: %d scenarios, all drained", runs)
}

// The pivot extension (A3): a destination behind a faulty last-dimension
// crossbar becomes deliverable, dynamically, and mixing pivot traffic with
// broadcasts stays deadlock-free.
func TestPivotSendDelivers(t *testing.T) {
	m := mustMachine(t, Config{Shape: geom.MustShape(4, 3), PivotLastDim: true, StallThreshold: 96})
	if err := m.AddFault(fault.XBFault(geom.LineOf(geom.Coord{2, 0}, 1))); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Send(geom.Coord{0, 0}, geom.Coord{2, 2}, 16); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Broadcast(geom.Coord{3, 1}, 16); err != nil {
		t.Fatal(err)
	}
	out := m.Run(50_000)
	if !out.Drained {
		t.Fatalf("outcome %+v\n%s", out, out.Report.Describe())
	}
	sawPivot := false
	for _, d := range m.Deliveries() {
		if !d.Broadcast && d.At == (geom.Coord{2, 2}) {
			sawPivot = true
		}
	}
	if !sawPivot {
		t.Error("pivot packet not delivered")
	}
	// Without the extension the same send is refused.
	m2 := mustMachine(t, Config{Shape: geom.MustShape(4, 3), StallThreshold: 96})
	if err := m2.AddFault(fault.XBFault(geom.LineOf(geom.Coord{2, 0}, 1))); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Send(geom.Coord{0, 0}, geom.Coord{2, 2}, 16); err == nil {
		t.Error("send without pivot extension unexpectedly accepted")
	}
}
