package core_test

// Differential equivalence tests: drive random small machines through the
// engine with active-set scheduling enabled and force-disabled, and assert
// the two kernels are bit-for-bit equivalent — same deliveries in the same
// order with the same latencies, same deadlock/drain verdict, same final
// state hash. On a mismatch, a shrinking pass removes faults and sends one
// at a time and reports the minimal still-failing configuration.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"sr2201/internal/core"
	"sr2201/internal/engine"
	"sr2201/internal/fault"
	"sr2201/internal/geom"
)

// diffConfig is one randomly generated scenario. Everything is value data so
// a scenario can be re-run and shrunk deterministically.
type diffConfig struct {
	shape  []int
	faults []geom.Coord // router faults
	sends  []diffSend
	bcasts []int // source PE index per broadcast
}

type diffSend struct {
	src, dst int // PE indices into shape enumeration order
	size     int
}

func (c diffConfig) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "shape=%v faults=%v", c.shape, c.faults)
	for _, s := range c.sends {
		fmt.Fprintf(&b, " send{%d->%d x%d}", s.src, s.dst, s.size)
	}
	for _, s := range c.bcasts {
		fmt.Fprintf(&b, " bcast{%d}", s)
	}
	return b.String()
}

// genDiffConfig draws a random d-dimensional scenario, d in {1,2,3}, every
// dimension at most 4.
func genDiffConfig(rng *rand.Rand) diffConfig {
	d := 1 + rng.Intn(3)
	shape := make([]int, d)
	for i := range shape {
		shape[i] = 2 + rng.Intn(3) // 2..4
	}
	size := 1
	for _, n := range shape {
		size *= n
	}
	cfg := diffConfig{shape: shape}
	for f := rng.Intn(3); f > 0; f-- {
		sh := geom.MustShape(shape...)
		cfg.faults = append(cfg.faults, sh.CoordOf(rng.Intn(size)))
	}
	for s := 1 + rng.Intn(12); s > 0; s-- {
		cfg.sends = append(cfg.sends, diffSend{
			src:  rng.Intn(size),
			dst:  rng.Intn(size),
			size: 1 + rng.Intn(12),
		})
	}
	for b := rng.Intn(2); b > 0; b-- {
		cfg.bcasts = append(cfg.bcasts, rng.Intn(size))
	}
	return cfg
}

// diffOutcome is everything the two modes must agree on.
type diffOutcome struct {
	deliveries string // rendered in delivery order, latencies included
	deadlocked bool
	drained    bool
	cycle      int64
	hash       uint64
}

// runDiff executes one scenario. The engine config is passed in full —
// core.NewMachine substitutes DefaultConfig for a zero-value engine config,
// so a config carrying only DisableActiveSet would silently change
// BufferDepth.
func runDiff(cfg diffConfig, disableActiveSet bool) (diffOutcome, error) {
	ecfg := engine.DefaultConfig()
	ecfg.DisableActiveSet = disableActiveSet
	m, err := core.NewMachine(core.Config{
		Shape:          geom.MustShape(cfg.shape...),
		Engine:         ecfg,
		StallThreshold: 256,
	})
	if err != nil {
		return diffOutcome{}, err
	}
	for _, f := range cfg.faults {
		// Some fault sets are rejected (e.g. they disconnect the S-XB);
		// rejection is config-dependent, not engine-dependent, so both
		// modes skip identically.
		_ = m.AddFault(fault.RouterFault(f))
	}
	sh := m.Shape()
	for _, s := range cfg.sends {
		_, _ = m.Send(sh.CoordOf(s.src), sh.CoordOf(s.dst), s.size)
	}
	for _, b := range cfg.bcasts {
		_, _, _ = m.Broadcast(sh.CoordOf(b), 8)
	}
	out := m.Run(100_000)
	var b strings.Builder
	for _, d := range m.Deliveries() {
		fmt.Fprintf(&b, "pkt%d %v->%v lat=%d cyc=%d bc=%v det=%v\n",
			d.PacketID, d.Src, d.At, d.Latency, d.Cycle, d.Broadcast, d.Detoured)
	}
	return diffOutcome{
		deliveries: b.String(),
		deadlocked: out.Deadlocked,
		drained:    out.Drained,
		cycle:      out.Cycle,
		hash:       m.Engine().StateHash(),
	}, nil
}

// diffMismatch re-runs both modes and describes the first disagreement, or
// returns "" when the modes agree. A scenario that fails to build counts as
// agreement (the shrinker must not wander into invalid configs), so the
// top-level test asserts buildability separately.
func diffMismatch(cfg diffConfig) string {
	on, err := runDiff(cfg, false)
	if err != nil {
		return ""
	}
	off, err := runDiff(cfg, true)
	if err != nil {
		return ""
	}
	switch {
	case on.deadlocked != off.deadlocked || on.drained != off.drained:
		return fmt.Sprintf("verdict: scheduled{deadlock=%v drained=%v} fullscan{deadlock=%v drained=%v}",
			on.deadlocked, on.drained, off.deadlocked, off.drained)
	case on.cycle != off.cycle:
		return fmt.Sprintf("final cycle: %d vs %d", on.cycle, off.cycle)
	case on.deliveries != off.deliveries:
		return fmt.Sprintf("deliveries differ:\nscheduled:\n%s\nfullscan:\n%s", on.deliveries, off.deliveries)
	case on.hash != off.hash:
		return fmt.Sprintf("final state hash: %#x vs %#x", on.hash, off.hash)
	}
	return ""
}

// shrinkDiff greedily removes faults, sends and broadcasts while the config
// keeps failing, returning a minimal failing config to report.
func shrinkDiff(cfg diffConfig) diffConfig {
	for changed := true; changed; {
		changed = false
		for i := range cfg.faults {
			c := cfg
			c.faults = append(append([]geom.Coord{}, cfg.faults[:i]...), cfg.faults[i+1:]...)
			if diffMismatch(c) != "" {
				cfg, changed = c, true
				break
			}
		}
		if changed {
			continue
		}
		for i := range cfg.sends {
			c := cfg
			c.sends = append(append([]diffSend{}, cfg.sends[:i]...), cfg.sends[i+1:]...)
			if diffMismatch(c) != "" {
				cfg, changed = c, true
				break
			}
		}
		if changed {
			continue
		}
		for i := range cfg.bcasts {
			c := cfg
			c.bcasts = append(append([]int{}, cfg.bcasts[:i]...), cfg.bcasts[i+1:]...)
			if diffMismatch(c) != "" {
				cfg, changed = c, true
				break
			}
		}
	}
	return cfg
}

func TestActiveSetDifferential(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 15
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := genDiffConfig(rng)
		if _, err := runDiff(cfg, false); err != nil {
			t.Fatalf("seed %d: scenario %s failed to build: %v", seed, cfg, err)
		}
		if msg := diffMismatch(cfg); msg != "" {
			min := shrinkDiff(cfg)
			t.Fatalf("seed %d: active-set kernel diverges from full scan: %s\nminimal failing config: %s",
				seed, msg, min)
		}
	}
}

// TestDifferentialShrinker pins the shrinking helper itself: fed a config
// whose failure predicate is "has any send", it must strip everything else.
func TestDifferentialShrinker(t *testing.T) {
	cfg := diffConfig{
		shape:  []int{3, 3},
		faults: []geom.Coord{{0, 0}, {1, 1}},
		sends:  []diffSend{{0, 5, 4}, {1, 2, 3}, {3, 4, 2}},
		bcasts: []int{0},
	}
	// Shrink against a synthetic predicate by reusing the greedy loop shape:
	// any config with >= 1 send "fails".
	fails := func(c diffConfig) bool { return len(c.sends) > 0 }
	min := cfg
	for changed := true; changed; {
		changed = false
		for i := range min.faults {
			c := min
			c.faults = append(append([]geom.Coord{}, min.faults[:i]...), min.faults[i+1:]...)
			if fails(c) {
				min, changed = c, true
				break
			}
		}
		if changed {
			continue
		}
		for i := range min.sends {
			c := min
			c.sends = append(append([]diffSend{}, min.sends[:i]...), min.sends[i+1:]...)
			if fails(c) {
				min, changed = c, true
				break
			}
		}
		if changed {
			continue
		}
		for i := range min.bcasts {
			c := min
			c.bcasts = append(append([]int{}, min.bcasts[:i]...), min.bcasts[i+1:]...)
			if fails(c) {
				min, changed = c, true
				break
			}
		}
	}
	if len(min.faults) != 0 || len(min.bcasts) != 0 || len(min.sends) != 1 {
		t.Errorf("shrinker left %s", min)
	}
}
