package core

import (
	"fmt"

	"sr2201/internal/checkpoint"
	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/routing"
	"sr2201/internal/stats"
)

// Machine snapshot/restore. The machine layer adds three things on top of
// the engine's state: the fault set (which determines the routing policy —
// the policy itself is rebuilt, not serialized), the packet ID counter, and
// the measurement record (deliveries; the latency accumulators are rebuilt
// from them). Restore into a Machine created with the *same* Config; the
// snapshot carries a config fingerprint so a mismatch fails loudly instead
// of silently simulating a different machine.

const (
	secMachineMeta       = "machine.meta"
	secMachineFaults     = "machine.faults"
	secMachineDeliveries = "machine.deliveries"
	// secMachineReconfig (format version 3) carries the online-
	// reconfiguration state: the epoch counter, the active variant flag and
	// the generation descriptors (boundary + pinned effective lines);
	// present exactly when Config.Reconfig is enabled. The generations'
	// policies are rebuilt from the descriptors via routing.NewPinned — like
	// the base policy they are pure functions of (descriptor, fault set).
	secMachineReconfig = "machine.reconfig"
)

// configHash digests every Config field that changes machine behavior. The
// engine's own topology fingerprint covers Shape and Engine, but the
// routing-policy knobs and defaults live here.
func (m *Machine) configHash() uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	mix := func(v int64) {
		u := uint64(v)
		for i := 0; i < 8; i++ {
			h ^= u & 0xff
			h *= prime
			u >>= 8
		}
	}
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	mix(int64(m.shape.Dims()))
	for _, n := range m.shape {
		mix(int64(n))
	}
	for _, b := range []byte(m.cfg.Topology) {
		mix(int64(b))
	}
	for _, v := range m.cfg.SXB {
		mix(int64(v))
	}
	for _, v := range m.cfg.DXB {
		mix(int64(v))
	}
	mix(b2i(m.cfg.DXBSeparate))
	mix(b2i(m.cfg.NaiveBroadcast))
	mix(b2i(m.cfg.PivotLastDim))
	mix(int64(m.cfg.PacketSize))
	mix(int64(m.cfg.StallThreshold))
	if m.cfg.VCs > 1 {
		// Mixed only for VC machines, so default-config fingerprints (and
		// thus pre-VC snapshots) are unchanged. The engine's topology
		// fingerprint separates VC from non-VC networks regardless.
		mix(int64(m.cfg.VCs))
		mix(b2i(m.cfg.Adaptive))
	}
	if m.cfg.Reconfig != "" {
		// Same trick: only reconfiguration-enabled machines mix the mode, so
		// pre-reconfig snapshots keep their fingerprints.
		for _, b := range []byte(m.cfg.Reconfig) {
			mix(int64(b))
		}
	}
	return h
}

// EncodeState appends the machine's dynamic state (including its engine's)
// to a checkpoint container as the "machine.*" and "engine.*" sections.
func (m *Machine) EncodeState(w *checkpoint.Writer) {
	meta := w.Section(secMachineMeta)
	meta.Uint(m.configHash())
	meta.Uint(m.nextID)
	meta.Bool(m.useTables)

	fs := w.Section(secMachineFaults)
	list := m.faults.List()
	fs.Uint(uint64(len(list)))
	for _, f := range list {
		fault.EncodeFault(fs, f)
	}

	del := w.Section(secMachineDeliveries)
	del.Uint(uint64(len(m.deliveries)))
	for _, d := range m.deliveries {
		del.Uint(d.PacketID)
		geom.EncodeCoord(del, d.Src)
		geom.EncodeCoord(del, d.At)
		del.Bool(d.Broadcast)
		del.Bool(d.Detoured)
		del.Bool(d.Adaptive)
		del.Int(d.Cycle)
		del.Int(d.Latency)
	}

	if m.cfg.Reconfig != "" {
		rc := w.Section(secMachineReconfig)
		rc.Uint(m.epoch)
		rc.Bool(m.separateNow)
		rc.Uint(uint64(len(m.gens)))
		for _, g := range m.gens {
			rc.Uint(g.Boundary)
			geom.EncodeCoord(rc, g.SEff)
			geom.EncodeCoord(rc, g.DEff)
			rc.Bool(g.Separate)
		}
	}

	m.eng.EncodeState(w)
}

// Snapshot serializes the machine (and its engine) into one container.
func (m *Machine) Snapshot() []byte {
	w := checkpoint.NewWriter()
	m.EncodeState(w)
	return w.Bytes()
}

// Restore replaces the machine's dynamic state with a container produced by
// Snapshot on a machine built from the same Config. On error the machine is
// left in an unspecified state: restore into a fresh Machine and discard it
// on failure.
func (m *Machine) Restore(data []byte) error {
	r, err := checkpoint.NewReader(data)
	if err != nil {
		return err
	}
	return m.DecodeState(r)
}

// DecodeState restores the "machine.*" and "engine.*" sections into this
// machine. The OnDeliver callback is untouched. See Restore for the error
// contract.
func (m *Machine) DecodeState(r *checkpoint.Reader) error {
	meta, err := r.Section(secMachineMeta)
	if err != nil {
		return err
	}
	if got, want := meta.Uint(), m.configHash(); meta.Err() == nil && got != want {
		return fmt.Errorf("checkpoint: section %q: machine config fingerprint %016x does not match this machine's %016x", secMachineMeta, got, want)
	}
	nextID := meta.Uint()
	useTables := meta.Bool()
	if err := meta.Finish(); err != nil {
		return err
	}

	fs, err := r.Section(secMachineFaults)
	if err != nil {
		return err
	}
	nf := fs.Len(2)
	set := fault.NewSet(m.shape)
	for i := 0; i < nf; i++ {
		f := fault.DecodeFault(fs)
		if fs.Err() != nil {
			break
		}
		if err := set.Add(f); err != nil {
			return fmt.Errorf("checkpoint: section %q: %v", secMachineFaults, err)
		}
	}
	if err := fs.Finish(); err != nil {
		return err
	}

	del, err := r.Section(secMachineDeliveries)
	if err != nil {
		return err
	}
	nd := del.Len(8)
	deliveries := make([]Delivery, 0, nd)
	for i := 0; i < nd; i++ {
		var d Delivery
		d.PacketID = del.Uint()
		d.Src = geom.DecodeCoord(del)
		d.At = geom.DecodeCoord(del)
		d.Broadcast = del.Bool()
		d.Detoured = del.Bool()
		if del.Version() >= 2 {
			d.Adaptive = del.Bool()
		}
		d.Cycle = del.Int()
		d.Latency = del.Int()
		deliveries = append(deliveries, d)
	}
	if err := del.Finish(); err != nil {
		return err
	}

	// Everything validated; commit. The routing policy is a pure function of
	// (config, fault set), so one rebuild reproduces the policy the source
	// machine was routing with at snapshot time. Under reconfiguration the
	// generation descriptors join that function's input: each generation is
	// rebuilt pinned to its recorded effective lines against the restored
	// fault set.
	m.nextID = nextID
	m.useTables = useTables
	m.faults = set
	if m.cfg.Reconfig != "" {
		if err := m.decodeReconfig(r); err != nil {
			return err
		}
	} else if err := m.rebuildPolicy(); err != nil {
		return fmt.Errorf("checkpoint: rebuilding routing policy: %w", err)
	}
	m.deliveries = deliveries
	m.latency = stats.Latency{}
	m.bcastLat = stats.Latency{}
	for _, d := range m.deliveries {
		if d.Broadcast {
			m.bcastLat.Add(d.Latency)
		} else {
			m.latency.Add(d.Latency)
		}
	}
	return m.eng.DecodeState(r)
}

// decodeReconfig restores the reconfiguration section into a machine whose
// fault set is already committed: the epoch counter, the variant flag, and
// the generation list with every delegate rebuilt from its pinned
// descriptor.
func (m *Machine) decodeReconfig(r *checkpoint.Reader) error {
	rc, err := r.Section(secMachineReconfig)
	if err != nil {
		return err
	}
	epoch := rc.Uint()
	separateNow := rc.Bool()
	ng := rc.Len(4)
	gens := make([]routing.Generation, 0, ng)
	for i := 0; i < ng; i++ {
		var g routing.Generation
		g.Boundary = rc.Uint()
		g.SEff = geom.DecodeCoord(rc)
		g.DEff = geom.DecodeCoord(rc)
		g.Separate = rc.Bool()
		gens = append(gens, g)
	}
	if err := rc.Finish(); err != nil {
		return err
	}
	if len(gens) == 0 {
		return fmt.Errorf("checkpoint: section %q: no routing generations", secMachineReconfig)
	}
	m.epoch = epoch
	m.separateNow = separateNow
	m.gens = gens
	for i := range m.gens {
		p, err := m.pinnedGeneration(m.gens[i])
		if err != nil {
			return fmt.Errorf("checkpoint: section %q: rebuilding generation %d: %v", secMachineReconfig, i, err)
		}
		g, err := m.makeGeneration(m.gens[i].Boundary, p, m.gens[i].Separate)
		if err != nil {
			return fmt.Errorf("checkpoint: section %q: rebuilding generation %d: %v", secMachineReconfig, i, err)
		}
		m.gens[i] = g
		m.policy = p
	}
	if err := m.installGenerations(); err != nil {
		return fmt.Errorf("checkpoint: section %q: %v", secMachineReconfig, err)
	}
	return nil
}
