// Package core is the public façade of the SR2201 network reproduction: a
// Machine bundles the lattice, the simulation kernel, the routing policy and
// the fault set, and exposes the operations a PE's network interface adapter
// (NIA) offers — point-to-point sends, hardware broadcasts — plus simulation
// control and measurement.
//
// Typical use:
//
//	m, _ := core.NewMachine(core.Config{Shape: geom.MustShape(8, 8)})
//	m.Send(geom.Coord{0, 0}, geom.Coord{7, 7}, 0)
//	out := m.Run(10_000)      // deadlock-watched simulation
//	fmt.Println(out.Drained, m.Deliveries())
package core

import (
	"fmt"

	"sr2201/internal/deadlock"
	"sr2201/internal/engine"
	"sr2201/internal/fault"
	"sr2201/internal/flit"
	"sr2201/internal/geom"
	"sr2201/internal/mdxb"
	"sr2201/internal/routing"
	"sr2201/internal/stats"
)

// DefaultPacketSize is the packet length in flits when a caller passes 0.
// Eight flits against the default two-flit buffers puts the network in the
// wormhole-like regime of the paper's deadlock discussions.
const DefaultPacketSize = 8

// Config assembles a Machine.
type Config struct {
	// Shape is the lattice shape (n1, ..., nd). Required.
	Shape geom.Shape
	// SXB fixes the serialized crossbar line (dims 1..d-1 of the coordinate);
	// dimension 0 is ignored. Defaults to the all-zero line.
	SXB geom.Coord
	// DXB fixes the detour crossbar line. The paper's deadlock-free scheme
	// uses DXB == SXB, which is the default when DXBSeparate is false.
	DXB geom.Coord
	// DXBSeparate uses the configured DXB instead of tying it to SXB,
	// reproducing the deadlock-prone configuration of paper Fig. 9.
	DXBSeparate bool
	// NaiveBroadcast disables S-XB serialization (paper Fig. 5 scheme).
	NaiveBroadcast bool
	// PivotLastDim enables the two-phase pivot extension (DESIGN.md A3,
	// beyond the paper): Send falls back to routing via an intermediate
	// router when the destination sits behind a faulty last-dimension
	// crossbar.
	PivotLastDim bool
	// Engine overrides kernel parameters; the zero value selects
	// engine.DefaultConfig.
	Engine engine.Config
	// PacketSize is the default packet length in flits (0 = DefaultPacketSize).
	PacketSize int
	// StallThreshold configures the deadlock watchdog (0 = package default).
	StallThreshold int64
	// Shards partitions the lattice into that many spatial shards stepped
	// concurrently (mdxb.ShardAssign); 0 or 1 selects the serial stepper.
	// The per-cycle simulation state is identical either way — sharding is
	// purely a wall-clock optimization.
	Shards int
}

// Delivery records one packet consumed by a PE.
type Delivery struct {
	PacketID uint64
	// Src is the originating PE (for broadcasts, the broadcast origin).
	Src geom.Coord
	// At is the receiving PE.
	At geom.Coord
	// Broadcast marks a copy delivered by the broadcast facility.
	Broadcast bool
	// Detoured marks a packet that traveled part of its route with RC=detour.
	Detoured bool
	// Cycle is the delivery time; Latency is Cycle minus injection time.
	Cycle   int64
	Latency int64
}

// Machine is a simulated SR2201 interconnect.
type Machine struct {
	cfg    Config
	shape  geom.Shape
	eng    *engine.Engine
	net    *mdxb.Network
	policy *routing.Policy
	faults *fault.Set

	nextID     uint64
	useTables  bool
	deliveries []Delivery
	latency    stats.Latency
	bcastLat   stats.Latency

	// OnDeliver, if set, observes deliveries as they happen (in addition to
	// the recorded slice).
	OnDeliver func(Delivery)
}

// NewMachine builds the network, installs the routing policy, and returns a
// ready Machine.
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.Shape.Dims() == 0 {
		return nil, fmt.Errorf("core: config needs a shape")
	}
	ecfg := cfg.Engine
	if ecfg == (engine.Config{}) {
		ecfg = engine.DefaultConfig()
	}
	if cfg.PacketSize < 0 {
		return nil, fmt.Errorf("core: negative packet size")
	}
	if cfg.PacketSize == 0 {
		cfg.PacketSize = DefaultPacketSize
	}
	if !cfg.DXBSeparate {
		cfg.DXB = cfg.SXB
	}

	m := &Machine{
		cfg:    cfg,
		shape:  cfg.Shape,
		eng:    engine.New(ecfg),
		faults: fault.NewSet(cfg.Shape),
	}
	m.net = mdxb.Build(m.eng, cfg.Shape)
	if cfg.Shards > 1 {
		if err := m.eng.SetShards(mdxb.ShardAssign(m.net, cfg.Shards)); err != nil {
			return nil, fmt.Errorf("core: sharding: %w", err)
		}
	}
	if err := m.rebuildPolicy(); err != nil {
		return nil, err
	}
	m.eng.OnDeliver = m.onDeliver
	return m, nil
}

// rebuildPolicy refreshes the routing policy (the S-XB/D-XB substitution
// depends on the fault set), recompiling the lookup tables when enabled.
func (m *Machine) rebuildPolicy() error {
	p, err := routing.New(routing.Config{
		Shape:          m.shape,
		SXB:            m.cfg.SXB,
		DXB:            m.cfg.DXB,
		Faults:         m.faults,
		NaiveBroadcast: m.cfg.NaiveBroadcast,
		PivotLastDim:   m.cfg.PivotLastDim,
	})
	if err != nil {
		return err
	}
	m.policy = p
	if m.useTables {
		tp, err := routing.Compile(p)
		if err != nil {
			return err
		}
		m.net.SetPolicy(tp)
	} else {
		m.net.SetPolicy(p)
	}
	return nil
}

// UseCompiledTables switches the switches' forwarding decisions to the
// compiled lookup-table implementation (routing.Compile) — the hardware
// realization style the paper contrasts with the CRAY T3D. Send-side
// reachability prechecks keep using the algorithmic policy; AddFault
// recompiles the tables. Incompatible with the pivot extension.
func (m *Machine) UseCompiledTables() error {
	if !m.eng.Quiescent() {
		return fmt.Errorf("core: table switch-over needs a quiescent network")
	}
	m.useTables = true
	if err := m.rebuildPolicy(); err != nil {
		m.useTables = false
		return err
	}
	return nil
}

func (m *Machine) onDeliver(d engine.Delivery) {
	h := d.Header
	src := h.Src
	if h.RC == flit.RCBroadcast {
		src = h.BroadcastOrigin
	}
	del := Delivery{
		PacketID:  h.PacketID,
		Src:       src,
		At:        d.At.Meta.(mdxb.PEMeta).Coord,
		Broadcast: h.RC == flit.RCBroadcast,
		Detoured:  h.DetourHops > 0,
		Cycle:     d.Cycle,
		Latency:   d.Cycle - h.InjectedAt,
	}
	m.deliveries = append(m.deliveries, del)
	if del.Broadcast {
		m.bcastLat.Add(del.Latency)
	} else {
		m.latency.Add(del.Latency)
	}
	if m.OnDeliver != nil {
		m.OnDeliver(del)
	}
}

// AddFault marks a switch faulty. Fault information is "set in advance" in
// the hardware, so faults may only be added while the network is empty.
func (m *Machine) AddFault(f fault.Fault) error {
	if !m.eng.Quiescent() {
		return fmt.Errorf("core: faults must be configured on a quiescent network")
	}
	if err := m.faults.Add(f); err != nil {
		return err
	}
	switch f.Kind {
	case fault.KindRouter:
		m.net.Router(f.Coord).Failed = true
	case fault.KindXB:
		m.net.XB(f.Line).Failed = true
	}
	return m.rebuildPolicy()
}

// Faults returns the machine's fault set.
func (m *Machine) Faults() *fault.Set { return m.faults }

// Lost describes one in-flight packet destroyed by a dynamic fault.
type Lost struct {
	PacketID uint64
	// Known marks whether the packet's header was recovered; Src, Dst, RC
	// and Size are meaningful only when it is.
	Known bool
	Src   geom.Coord
	Dst   geom.Coord
	RC    flit.RC
	Size  int
	// AlreadyDropped marks a packet the routing layer had already dropped
	// (and counted) before the fault wounded its remains.
	AlreadyDropped bool
}

// FailNow marks a switch faulty *while traffic is in flight* — the dynamic
// counterpart of AddFault. The fault set and every neighbor's fault bits
// update immediately, the routing policy is rebuilt (so not-yet-routed
// packets detour with RC=3 exactly as the paper's substitution rules
// dictate), and every packet occupying the dead switch is purged from the
// network (engine.KillSwitch semantics, DESIGN.md §6). The casualties are
// returned so callers — the inject layer — can arrange retransmission.
func (m *Machine) FailNow(f fault.Fault) ([]Lost, error) {
	if err := m.faults.Add(f); err != nil {
		return nil, err
	}
	var node *engine.Node
	switch f.Kind {
	case fault.KindRouter:
		node = m.net.Router(f.Coord)
	case fault.KindXB:
		node = m.net.XB(f.Line)
	default:
		return nil, fmt.Errorf("core: unknown fault kind %d", f.Kind)
	}
	killed := m.eng.KillSwitch(node)
	if err := m.rebuildPolicy(); err != nil {
		return nil, err
	}
	lost := make([]Lost, 0, len(killed))
	for _, k := range killed {
		l := Lost{PacketID: k.ID, AlreadyDropped: k.AlreadyDropped}
		if h := k.Header; h != nil {
			l.Known = true
			l.Src, l.Dst, l.RC, l.Size = h.Src, h.Dst, h.RC, h.Size
			if h.TwoPhase {
				l.Dst = h.FinalDst
			}
		}
		lost = append(lost, l)
	}
	return lost, nil
}

// PurgePacket removes one packet from the network with the engine's
// credit-conserving purge (engine.KillPacket): every flit, cut-through
// state and receive state the packet holds is released exactly as normal
// forwarding would release it, so the packets that were waiting on its
// resources resume. No switch is marked failed and the routing policy is
// untouched. The recovery layer uses it to sacrifice a deadlock victim.
//
// The second return is false — and nothing changes — when no trace of the
// packet remains in the network.
func (m *Machine) PurgePacket(id uint64) (Lost, bool) {
	k, ok := m.eng.KillPacket(id)
	if !ok {
		return Lost{}, false
	}
	l := Lost{PacketID: k.ID, AlreadyDropped: k.AlreadyDropped}
	if h := k.Header; h != nil {
		l.Known = true
		l.Src, l.Dst, l.RC, l.Size = h.Src, h.Dst, h.RC, h.Size
		if h.TwoPhase {
			l.Dst = h.FinalDst
		}
	}
	return l, true
}

// Send queues a point-to-point packet of the given size in flits (0 = the
// configured default). It refuses — like the NIA consulting the pre-set
// fault information — sends whose destination is unreachable, returning the
// routing error.
func (m *Machine) Send(src, dst geom.Coord, size int) (uint64, error) {
	if err := m.policy.Reachable(src, dst); err != nil {
		if m.cfg.PivotLastDim {
			if _, perr := m.policy.PivotPath(src, dst); perr == nil {
				return m.sendPivot(src, dst, size)
			}
		}
		return 0, err
	}
	return m.send(src, dst, size)
}

// sendPivot queues a two-phase pivot packet (extension A3).
func (m *Machine) sendPivot(src, dst geom.Coord, size int) (uint64, error) {
	mid, ok := m.policy.PivotIntermediate(src, dst)
	if !ok {
		return 0, fmt.Errorf("core: pivot intermediate vanished for %v -> %v", src, dst)
	}
	if size <= 0 {
		size = m.cfg.PacketSize
	}
	m.nextID++
	h := &flit.Header{PacketID: m.nextID, Src: src, Dst: mid, FinalDst: dst, TwoPhase: true, RC: flit.RCNormal}
	m.eng.InjectPacket(m.net.PE(src), h, size)
	return m.nextID, nil
}

// SendUnchecked queues a packet without the reachability precheck; an
// undeliverable packet is dropped inside the network (visible via Dropped).
func (m *Machine) SendUnchecked(src, dst geom.Coord, size int) (uint64, error) {
	if !m.shape.Contains(src) || !m.shape.Contains(dst) {
		return 0, fmt.Errorf("core: src %v or dst %v outside shape", src, dst)
	}
	return m.send(src, dst, size)
}

func (m *Machine) send(src, dst geom.Coord, size int) (uint64, error) {
	if size <= 0 {
		size = m.cfg.PacketSize
	}
	m.nextID++
	h := &flit.Header{PacketID: m.nextID, Src: src, Dst: dst, RC: flit.RCNormal}
	m.eng.InjectPacket(m.net.PE(src), h, size)
	return m.nextID, nil
}

// Broadcast queues a hardware broadcast from src (S-XB-serialized, or the
// naive tree when the machine is configured NaiveBroadcast). The returned
// count is the number of PEs that will receive a copy; the error reports a
// source that cannot reach the serialization point.
func (m *Machine) Broadcast(src geom.Coord, size int) (uint64, int, error) {
	tree, err := m.policy.BroadcastTree(src)
	if err != nil {
		return 0, 0, err
	}
	if size <= 0 {
		size = m.cfg.PacketSize
	}
	m.nextID++
	rc := flit.RCBroadcastRequest
	if m.cfg.NaiveBroadcast {
		rc = flit.RCBroadcast
	}
	h := &flit.Header{PacketID: m.nextID, Src: src, BroadcastOrigin: src, RC: rc}
	m.eng.InjectPacket(m.net.PE(src), h, size)
	return m.nextID, len(tree.Delivered), nil
}

// Step advances the simulation one cycle.
func (m *Machine) Step() { m.eng.Step() }

// Run steps until the network drains, deadlocks, or maxCycles elapse,
// returning the watched outcome.
func (m *Machine) Run(maxCycles int64) deadlock.Outcome {
	return deadlock.Run(m.eng, maxCycles, m.cfg.StallThreshold)
}

// Deliveries returns every recorded delivery (in delivery order).
func (m *Machine) Deliveries() []Delivery { return m.deliveries }

// ResetStats clears recorded deliveries and latency accumulators (in-flight
// packets keep their injection timestamps).
func (m *Machine) ResetStats() {
	m.deliveries = nil
	m.latency = stats.Latency{}
	m.bcastLat = stats.Latency{}
}

// Latency returns the point-to-point latency distribution.
func (m *Machine) Latency() *stats.Latency { return &m.latency }

// BroadcastLatency returns the broadcast-copy latency distribution.
func (m *Machine) BroadcastLatency() *stats.Latency { return &m.bcastLat }

// Dropped reports packets discarded inside the network.
func (m *Machine) Dropped() int64 { return m.eng.Dropped() }

// Cycle reports the simulation time.
func (m *Machine) Cycle() int64 { return m.eng.Cycle() }

// Engine exposes the simulation kernel (for measurement and experiments).
func (m *Machine) Engine() *engine.Engine { return m.eng }

// Network exposes the built topology.
func (m *Machine) Network() *mdxb.Network { return m.net }

// Policy exposes the active routing policy (for static path queries).
func (m *Machine) Policy() *routing.Policy { return m.policy }

// Shape reports the lattice shape.
func (m *Machine) Shape() geom.Shape { return m.shape }

// Alive reports whether the PE at c can use the network: its relay switch
// must be healthy.
func (m *Machine) Alive(c geom.Coord) bool { return m.faults.PEAlive(c) }
