// Package core is the public façade of the SR2201 network reproduction: a
// Machine bundles the lattice, the simulation kernel, the routing policy and
// the fault set, and exposes the operations a PE's network interface adapter
// (NIA) offers — point-to-point sends, hardware broadcasts — plus simulation
// control and measurement.
//
// Typical use:
//
//	m, _ := core.NewMachine(core.Config{Shape: geom.MustShape(8, 8)})
//	m.Send(geom.Coord{0, 0}, geom.Coord{7, 7}, 0)
//	out := m.Run(10_000)      // deadlock-watched simulation
//	fmt.Println(out.Drained, m.Deliveries())
package core

import (
	"errors"
	"fmt"

	"sr2201/internal/deadlock"
	"sr2201/internal/engine"
	"sr2201/internal/fault"
	"sr2201/internal/flit"
	"sr2201/internal/geom"
	"sr2201/internal/mdxb"
	"sr2201/internal/routing"
	"sr2201/internal/stats"
	"sr2201/internal/topo"
	"sr2201/internal/topo/fullmesh"
	"sr2201/internal/topo/hyperx"
)

// DefaultPacketSize is the packet length in flits when a caller passes 0.
// Eight flits against the default two-flit buffers puts the network in the
// wormhole-like regime of the paper's deadlock discussions.
const DefaultPacketSize = 8

// Topology names for Config.Topology.
const (
	// TopologyMDX is the paper's multi-dimensional crossbar network: one
	// shared crossbar switch per axis-aligned line, S-XB-serialized
	// broadcasts, D-XB detours. The default.
	TopologyMDX = "mdx"
	// TopologyHyperX is the direct-link lattice (per-dimension all-to-all
	// router links) with the rank-ordered fault detour of
	// internal/topo/hyperx. Link and router faults only; no hardware
	// broadcast, no crossbars.
	TopologyHyperX = "hyperx"
	// TopologyFullMesh is the one-dimensional full mesh (every router pair
	// directly linked) of internal/topo/fullmesh. Requires a 1-D shape.
	TopologyFullMesh = "fullmesh"
)

// Reconfiguration modes for Config.Reconfig.
const (
	// ReconfigOnFault reconfigures when a dynamic fault lands (FailNow).
	ReconfigOnFault = "fault"
	// ReconfigOnDeadlock reconfigures when the recovery supervisor confirms
	// a deadlock (after the victim purge).
	ReconfigOnDeadlock = "deadlock"
	// ReconfigBoth reconfigures on either trigger.
	ReconfigBoth = "both"
)

// Config assembles a Machine.
type Config struct {
	// Shape is the lattice shape (n1, ..., nd). Required.
	Shape geom.Shape
	// Topology selects the interconnect: "" or TopologyMDX builds the
	// paper's MD crossbar network; TopologyHyperX and TopologyFullMesh
	// build the direct-link lattices of internal/topo. The crossbar knobs
	// (SXB, DXB, DXBSeparate, NaiveBroadcast, PivotLastDim) apply only to
	// the MD crossbar and are rejected on direct-link topologies.
	Topology string
	// SXB fixes the serialized crossbar line (dims 1..d-1 of the coordinate);
	// dimension 0 is ignored. Defaults to the all-zero line.
	SXB geom.Coord
	// DXB fixes the detour crossbar line. The paper's deadlock-free scheme
	// uses DXB == SXB, which is the default when DXBSeparate is false.
	DXB geom.Coord
	// DXBSeparate uses the configured DXB instead of tying it to SXB,
	// reproducing the deadlock-prone configuration of paper Fig. 9.
	DXBSeparate bool
	// NaiveBroadcast disables S-XB serialization (paper Fig. 5 scheme).
	NaiveBroadcast bool
	// PivotLastDim enables the two-phase pivot extension (DESIGN.md A3,
	// beyond the paper): Send falls back to routing via an intermediate
	// router when the destination sits behind a faulty last-dimension
	// crossbar.
	PivotLastDim bool
	// VCs is the number of virtual channels per router↔crossbar wire
	// (mdx-only; 0 or 1 builds the paper's single-channel network).
	VCs int
	// Adaptive enables escape-VC adaptive routing (DESIGN.md §12, beyond the
	// paper): lane 0 carries the unified deadlock-free scheme as the escape
	// channel, lanes 1..VCs-1 take any minimal productive hop. Requires
	// VCs >= 2; under Adaptive the escape ignores DXBSeparate (the escape
	// channel must be the unified D-XB = S-XB scheme) and PivotLastDim /
	// NaiveBroadcast are rejected — each would break escape acyclicity.
	Adaptive bool
	// Reconfig selects when online routing-table reconfiguration may run
	// (internal/reconfig, DESIGN.md §13): "" disables it, ReconfigOnFault
	// reconfigures when a dynamic fault lands (FailNow), ReconfigOnDeadlock
	// when a confirmed deadlock is recovered, ReconfigBoth on either
	// trigger. mdx-only; incompatible with Adaptive/VCs, PivotLastDim and
	// NaiveBroadcast (none of those produce the static certificates the
	// swap protocol requires). The machine only maintains the epoch-tagged
	// generation machinery; the decision procedure itself is driven by a
	// reconfig.Manager installed via SetReconfigurer.
	Reconfig string
	// Engine overrides kernel parameters; the zero value selects
	// engine.DefaultConfig.
	Engine engine.Config
	// PacketSize is the default packet length in flits (0 = DefaultPacketSize).
	PacketSize int
	// StallThreshold configures the deadlock watchdog (0 = package default).
	StallThreshold int64
	// Shards partitions the lattice into that many spatial shards stepped
	// concurrently (mdxb.ShardAssign); 0 or 1 selects the serial stepper.
	// The per-cycle simulation state is identical either way — sharding is
	// purely a wall-clock optimization.
	Shards int
}

// Delivery records one packet consumed by a PE.
type Delivery struct {
	PacketID uint64
	// Src is the originating PE (for broadcasts, the broadcast origin).
	Src geom.Coord
	// At is the receiving PE.
	At geom.Coord
	// Broadcast marks a copy delivered by the broadcast facility.
	Broadcast bool
	// Detoured marks a packet that traveled part of its route with RC=detour.
	Detoured bool
	// Adaptive marks a packet that took at least one hop on a non-escape
	// virtual channel (always false without escape-VC adaptive routing).
	Adaptive bool
	// Cycle is the delivery time; Latency is Cycle minus injection time.
	Cycle   int64
	Latency int64
}

// Machine is a simulated interconnect: the SR2201's MD crossbar network by
// default, or one of the direct-link lattices when Config.Topology selects
// it.
type Machine struct {
	cfg    Config
	shape  geom.Shape
	eng    *engine.Engine
	net    *mdxb.Network   // MD crossbar network (nil on direct-link topologies)
	tnet   *topo.Net       // direct-link lattice (nil on the MD crossbar)
	router topo.Router     // installed direct-link scheme (nil on the MD crossbar)
	policy *routing.Policy // MD crossbar routing policy (nil on direct-link topologies)
	faults *fault.Set

	nextID     uint64
	useTables  bool
	deliveries []Delivery
	latency    stats.Latency
	bcastLat   stats.Latency

	// Online-reconfiguration state (Config.Reconfig != ""): epoch is the
	// stamp new packets inject under, gens the live routing-table
	// generations (oldest first), separateNow whether recompiles still use
	// the configured separate D-XB (cleared when a reconfiguration degrades
	// to the unified scheme), reconfigure the installed manager hook FailNow
	// defers to instead of rebuilding the policy itself.
	epoch       uint64
	gens        []routing.Generation
	separateNow bool
	reconfigure func(f fault.Fault) error

	// OnDeliver, if set, observes deliveries as they happen (in addition to
	// the recorded slice).
	OnDeliver func(Delivery)
}

// NewMachine builds the network, installs the routing policy, and returns a
// ready Machine.
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.Shape.Dims() == 0 {
		return nil, fmt.Errorf("core: config needs a shape")
	}
	ecfg := cfg.Engine
	if ecfg == (engine.Config{}) {
		ecfg = engine.DefaultConfig()
	}
	if cfg.PacketSize < 0 {
		return nil, fmt.Errorf("core: negative packet size")
	}
	if cfg.PacketSize == 0 {
		cfg.PacketSize = DefaultPacketSize
	}
	if !cfg.DXBSeparate {
		cfg.DXB = cfg.SXB
	}
	if cfg.VCs < 0 {
		return nil, fmt.Errorf("core: negative virtual-channel count %d", cfg.VCs)
	}
	if cfg.VCs == 0 {
		cfg.VCs = 1
	}
	if cfg.Adaptive && cfg.VCs < 2 {
		return nil, fmt.Errorf("core: adaptive routing needs VCs >= 2, got %d", cfg.VCs)
	}
	if cfg.VCs > 1 && !cfg.Adaptive {
		return nil, fmt.Errorf("core: VCs = %d without Adaptive would leave lanes 1..%d unused", cfg.VCs, cfg.VCs-1)
	}
	if cfg.Adaptive {
		if cfg.PivotLastDim {
			return nil, fmt.Errorf("core: Adaptive is incompatible with PivotLastDim (pivot turns break escape-channel acyclicity)")
		}
		if cfg.NaiveBroadcast {
			return nil, fmt.Errorf("core: Adaptive is incompatible with NaiveBroadcast (unserialized fans break escape-channel acyclicity)")
		}
		// The escape channel must run the unified deadlock-free scheme; a
		// separate D-XB applies only to the static comparison runs.
		cfg.DXB = cfg.SXB
	}
	switch cfg.Reconfig {
	case "", ReconfigOnFault, ReconfigOnDeadlock, ReconfigBoth:
	default:
		return nil, fmt.Errorf("core: unknown reconfig mode %q (want %q, %q or %q)", cfg.Reconfig, ReconfigOnFault, ReconfigOnDeadlock, ReconfigBoth)
	}
	if cfg.Reconfig != "" {
		switch {
		case cfg.Topology != "" && cfg.Topology != TopologyMDX:
			return nil, fmt.Errorf("core: reconfiguration is mdx-only (topology %q)", cfg.Topology)
		case cfg.VCs > 1 || cfg.Adaptive:
			return nil, fmt.Errorf("core: reconfiguration is incompatible with virtual channels (the adaptive wrapper has no static certificate to recompile)")
		case cfg.PivotLastDim:
			return nil, fmt.Errorf("core: reconfiguration is incompatible with PivotLastDim (pivot turns admit no acyclicity certificate)")
		case cfg.NaiveBroadcast:
			return nil, fmt.Errorf("core: reconfiguration is incompatible with NaiveBroadcast (unserialized fans admit no acyclicity certificate)")
		}
	}
	switch cfg.Topology {
	case "", TopologyMDX:
		cfg.Topology = TopologyMDX
	case TopologyHyperX, TopologyFullMesh:
		var zero geom.Coord
		switch {
		case cfg.DXBSeparate || cfg.SXB != zero || cfg.DXB != zero:
			return nil, fmt.Errorf("core: topology %q has no crossbars to configure (SXB/DXB/DXBSeparate are mdx-only)", cfg.Topology)
		case cfg.NaiveBroadcast:
			return nil, fmt.Errorf("core: topology %q has no hardware broadcast (NaiveBroadcast is mdx-only)", cfg.Topology)
		case cfg.PivotLastDim:
			return nil, fmt.Errorf("core: topology %q has no pivot extension (PivotLastDim is mdx-only)", cfg.Topology)
		case cfg.VCs > 1 || cfg.Adaptive:
			return nil, fmt.Errorf("core: topology %q has no virtual channels (VCs/Adaptive are mdx-only)", cfg.Topology)
		}
		if cfg.Topology == TopologyFullMesh && cfg.Shape.Dims() != 1 {
			return nil, fmt.Errorf("core: topology %q needs a one-dimensional shape, got %s", cfg.Topology, cfg.Shape)
		}
	default:
		return nil, fmt.Errorf("core: unknown topology %q (want %s, %s or %s)", cfg.Topology, TopologyMDX, TopologyHyperX, TopologyFullMesh)
	}

	m := &Machine{
		cfg:         cfg,
		shape:       cfg.Shape,
		eng:         engine.New(ecfg),
		faults:      fault.NewSet(cfg.Shape),
		separateNow: cfg.DXBSeparate,
	}
	if cfg.Topology == TopologyMDX {
		m.net = mdxb.BuildVC(m.eng, cfg.Shape, cfg.VCs)
	} else {
		m.tnet = topo.NewNet(m.eng, cfg.Shape)
	}
	if err := m.rebuildPolicy(); err != nil {
		return nil, err
	}
	if cfg.Shards > 1 {
		var plan engine.ShardPlan
		if m.net != nil {
			plan = mdxb.ShardAssign(m.net, cfg.Shards)
		} else {
			plan = topo.ShardAssign(m.tnet, cfg.Shards)
		}
		if err := m.eng.SetShards(plan); err != nil {
			return nil, fmt.Errorf("core: sharding: %w", err)
		}
	}
	m.eng.OnDeliver = m.onDeliver
	return m, nil
}

// rebuildPolicy refreshes the routing layer against the current fault set:
// on the MD crossbar it rebuilds the S-XB/D-XB substitution policy
// (recompiling the lookup tables when enabled); on a direct-link topology
// it reinstalls the scheme with the fault set rebound.
func (m *Machine) rebuildPolicy() error {
	if m.tnet != nil {
		var (
			s   topo.Router
			err error
		)
		switch m.cfg.Topology {
		case TopologyHyperX:
			s, err = hyperx.New(m.shape, m.faults)
		case TopologyFullMesh:
			s, err = fullmesh.New(m.shape[0], m.faults)
		default:
			err = fmt.Errorf("core: unknown direct-link topology %q", m.cfg.Topology)
		}
		if err != nil {
			return err
		}
		m.router = s
		m.tnet.SetScheme(s)
		return nil
	}
	p, err := routing.New(m.RoutingConfig(m.separateNow))
	if err != nil {
		return err
	}
	m.policy = p
	if m.cfg.Adaptive {
		// The algorithmic policy p stays the escape reference for Send-side
		// reachability and broadcast-tree queries; the switches run the
		// adaptive wrapper.
		vp, err := routing.NewVC(p, m.cfg.VCs)
		if err != nil {
			return err
		}
		m.net.SetPolicy(vp)
		return nil
	}
	if m.cfg.Reconfig != "" {
		// Collapse to a single generation covering every epoch: all traffic,
		// old and new, routes under the freshly rebuilt table — exactly the
		// pre-reconfiguration (PR 5) swap semantics. CommitGeneration is the
		// only path that preserves old tables for in-flight packets.
		gen, err := m.makeGeneration(0, p, m.separateNow)
		if err != nil {
			return err
		}
		m.gens = []routing.Generation{gen}
		return m.installGenerations()
	}
	if m.useTables {
		tp, err := routing.Compile(p)
		if err != nil {
			return err
		}
		m.net.SetPolicy(tp)
	} else {
		m.net.SetPolicy(p)
	}
	return nil
}

// RoutingConfig returns the routing.Config the machine compiles its crossbar
// policy from, with the separate-D-XB variant selected by the flag (false
// ties the detour crossbar to the S-XB — the paper's unified deadlock-free
// scheme). The reconfiguration manager uses it to build candidate tables
// against the live fault set.
func (m *Machine) RoutingConfig(separate bool) routing.Config {
	dxb := m.cfg.SXB
	if separate {
		dxb = m.cfg.DXB
	}
	return routing.Config{
		Shape:          m.shape,
		SXB:            m.cfg.SXB,
		DXB:            dxb,
		Faults:         m.faults,
		NaiveBroadcast: m.cfg.NaiveBroadcast,
		PivotLastDim:   m.cfg.PivotLastDim,
	}
}

// makeGeneration wraps a policy as a routing generation, compiling it to
// lookup tables when the machine runs compiled.
func (m *Machine) makeGeneration(boundary uint64, p *routing.Policy, separate bool) (routing.Generation, error) {
	g := routing.Generation{
		Boundary: boundary,
		SEff:     p.EffectiveSXB().Fixed,
		DEff:     p.EffectiveDXB().Fixed,
		Separate: separate,
		Delegate: p,
	}
	if m.useTables {
		tp, err := routing.Compile(p)
		if err != nil {
			return routing.Generation{}, err
		}
		g.Delegate = tp
	}
	return g, nil
}

// pinnedGeneration reconstructs a generation's policy against the live fault
// set with its recorded effective lines pinned (no re-substitution): the
// decisions its in-flight packets will actually face.
func (m *Machine) pinnedGeneration(g routing.Generation) (*routing.Policy, error) {
	return routing.NewPinned(m.RoutingConfig(g.Separate), g.SEff, g.DEff)
}

// installGenerations points the switches at the current generation list.
func (m *Machine) installGenerations() error {
	ep, err := routing.NewEpochPolicy(m.gens)
	if err != nil {
		return err
	}
	m.net.SetPolicy(ep)
	return nil
}

// refreshRetiredGenerations rebuilds every non-latest generation's delegate
// from its pinned reconstruction, so retired tables reflect the live fault
// set (an old-generation packet meeting a newer fault must detour, not route
// into the dead switch). A no-op for algorithmic delegates, which share the
// machine's fault set by reference; essential for compiled tables, which
// freeze fault bits at compile time.
func (m *Machine) refreshRetiredGenerations() error {
	for i := range m.gens[:len(m.gens)-1] {
		p, err := m.pinnedGeneration(m.gens[i])
		if err != nil {
			return err
		}
		g, err := m.makeGeneration(m.gens[i].Boundary, p, m.gens[i].Separate)
		if err != nil {
			return err
		}
		m.gens[i] = g
	}
	return nil
}

// CommitGeneration installs a reconfigured routing policy as a new
// generation: the epoch counter advances, packets injected from now on stamp
// the new epoch and route under p, and in-flight packets keep routing under
// the generations they were injected into. Generations with no surviving
// in-flight packets are garbage-collected; surviving retired generations are
// refreshed against the live fault set. separate records whether p is the
// separate-D-XB variant — committing a unified table degrades every later
// recompile to the unified scheme.
func (m *Machine) CommitGeneration(p *routing.Policy, separate bool) error {
	if m.cfg.Reconfig == "" {
		return fmt.Errorf("core: CommitGeneration needs Config.Reconfig")
	}
	gen, err := m.makeGeneration(m.epoch+1, p, separate)
	if err != nil {
		return err
	}
	m.epoch++
	m.gens = append(m.gens, gen)
	m.policy = p
	if !separate {
		m.separateNow = false
	}
	m.gcGenerations()
	if err := m.refreshRetiredGenerations(); err != nil {
		return err
	}
	return m.installGenerations()
}

// gcGenerations drops generations no in-flight packet can still map to. The
// latest generation always survives; packets whose header flit is no longer
// locatable could belong to any epoch, so any of them pins every generation.
func (m *Machine) gcGenerations() {
	hdrs, unknown := m.eng.InFlightHeaders()
	if len(unknown) > 0 {
		return
	}
	live := make([]bool, len(m.gens))
	live[len(m.gens)-1] = true
	for _, h := range hdrs {
		live[m.generationIndex(h.Epoch)] = true
	}
	kept := m.gens[:0]
	for i, g := range m.gens {
		if live[i] {
			kept = append(kept, g)
		}
	}
	// The first surviving generation takes over every epoch below it (no
	// packets with those stamps remain).
	kept[0].Boundary = 0
	m.gens = kept
}

// generationIndex returns the index of the generation serving an epoch
// stamp: the last whose boundary does not exceed it.
func (m *Machine) generationIndex(epoch uint64) int {
	idx := 0
	for i, g := range m.gens {
		if g.Boundary > epoch {
			break
		}
		idx = i
	}
	return idx
}

// Epoch reports the stamp packets inject under right now (0 until the first
// committed reconfiguration).
func (m *Machine) Epoch() uint64 { return m.epoch }

// ReconfigMode reports the Config.Reconfig trigger mode ("" when online
// reconfiguration is off).
func (m *Machine) ReconfigMode() string { return m.cfg.Reconfig }

// Generations returns the live routing-table generations, oldest first
// (empty when reconfiguration is off).
func (m *Machine) Generations() []routing.Generation { return m.gens }

// VariantSeparate reports whether recompiles still target the configured
// separate D-XB (false once a reconfiguration degraded to the unified
// scheme, or when the machine was never configured separate).
func (m *Machine) VariantSeparate() bool { return m.separateNow }

// RebuildPolicy recompiles the routing layer for the current variant under
// the live fault set and swaps it in for *all* traffic — the PR 5 fallback
// the reconfiguration manager degrades to when no admissible transition
// exists. Any deadlock the unprotected swap window produces is the recovery
// supervisor's to resolve.
func (m *Machine) RebuildPolicy() error { return m.rebuildPolicy() }

// SetReconfigurer installs the reconfiguration manager's fault hook: when
// set, FailNow defers the policy update for router/crossbar faults to it
// instead of rebuilding in place. The hook runs after the fault set is
// updated and the dead switch's packets are purged.
func (m *Machine) SetReconfigurer(fn func(f fault.Fault) error) { m.reconfigure = fn }

// UseCompiledTables switches the switches' forwarding decisions to the
// compiled lookup-table implementation (routing.Compile) — the hardware
// realization style the paper contrasts with the CRAY T3D. Send-side
// reachability prechecks keep using the algorithmic policy; AddFault
// recompiles the tables. Incompatible with the pivot extension.
func (m *Machine) UseCompiledTables() error {
	if m.tnet != nil {
		return fmt.Errorf("core: compiled tables are mdx-only (topology %q)", m.cfg.Topology)
	}
	if m.cfg.Adaptive {
		return fmt.Errorf("core: compiled tables cannot express adaptive decisions (they depend on run-time port ownership)")
	}
	if !m.eng.Quiescent() {
		return fmt.Errorf("core: table switch-over needs a quiescent network")
	}
	m.useTables = true
	if err := m.rebuildPolicy(); err != nil {
		m.useTables = false
		return err
	}
	return nil
}

func (m *Machine) onDeliver(d engine.Delivery) {
	h := d.Header
	src := h.Src
	if h.RC == flit.RCBroadcast {
		src = h.BroadcastOrigin
	}
	var at geom.Coord
	switch meta := d.At.Meta.(type) {
	case mdxb.PEMeta:
		at = meta.Coord
	case topo.PEMeta:
		at = meta.Coord
	}
	del := Delivery{
		PacketID:  h.PacketID,
		Src:       src,
		At:        at,
		Broadcast: h.RC == flit.RCBroadcast,
		Detoured:  h.DetourHops > 0,
		Adaptive:  h.AdaptiveHops > 0,
		Cycle:     d.Cycle,
		Latency:   d.Cycle - h.InjectedAt,
	}
	m.deliveries = append(m.deliveries, del)
	if del.Broadcast {
		m.bcastLat.Add(del.Latency)
	} else {
		m.latency.Add(del.Latency)
	}
	if m.OnDeliver != nil {
		m.OnDeliver(del)
	}
}

// AddFault marks a switch faulty. Fault information is "set in advance" in
// the hardware, so faults may only be added while the network is empty.
func (m *Machine) AddFault(f fault.Fault) error {
	if !m.eng.Quiescent() {
		return fmt.Errorf("core: faults must be configured on a quiescent network")
	}
	if err := m.checkFaultKind(f.Kind); err != nil {
		return err
	}
	if err := m.faults.Add(f); err != nil {
		return err
	}
	switch f.Kind {
	case fault.KindRouter:
		m.routerNode(f.Coord).Failed = true
	case fault.KindXB:
		m.net.XB(f.Line).Failed = true
	case fault.KindLink:
		// A link is a wire, not a node: nothing to mark in the engine. The
		// rebuilt scheme routes around it (or refuses the pair).
	}
	return m.rebuildPolicy()
}

// checkFaultKind rejects fault kinds the configured topology has no
// hardware for: crossbar faults exist only on the MD crossbar, link faults
// only on the direct-link topologies.
func (m *Machine) checkFaultKind(k fault.Kind) error {
	if m.tnet != nil && k == fault.KindXB {
		return fmt.Errorf("core: topology %q has no crossbars (crossbar faults are mdx-only)", m.cfg.Topology)
	}
	if m.net != nil && k == fault.KindLink {
		return fmt.Errorf("core: the mdx topology has no direct links (link faults need topology %s or %s)", TopologyHyperX, TopologyFullMesh)
	}
	return nil
}

// routerNode returns the engine node of the router at c on either network.
func (m *Machine) routerNode(c geom.Coord) *engine.Node {
	if m.tnet != nil {
		return m.tnet.Router(c)
	}
	return m.net.Router(c)
}

// Faults returns the machine's fault set.
func (m *Machine) Faults() *fault.Set { return m.faults }

// Lost describes one in-flight packet destroyed by a dynamic fault.
type Lost struct {
	PacketID uint64
	// Known marks whether the packet's header was recovered; Src, Dst, RC
	// and Size are meaningful only when it is.
	Known bool
	Src   geom.Coord
	Dst   geom.Coord
	RC    flit.RC
	Size  int
	// AlreadyDropped marks a packet the routing layer had already dropped
	// (and counted) before the fault wounded its remains.
	AlreadyDropped bool
	// Drained marks a packet sacrificed by the reconfiguration manager's
	// bounded drain (not killed by the fault itself); the inject layer
	// accounts these separately from fault casualties and recovery victims.
	Drained bool
}

// FailNow marks a switch faulty *while traffic is in flight* — the dynamic
// counterpart of AddFault. The fault set and every neighbor's fault bits
// update immediately, the routing policy is rebuilt (so not-yet-routed
// packets detour with RC=3 exactly as the paper's substitution rules
// dictate), and every packet occupying the dead switch is purged from the
// network (engine.KillSwitch semantics, DESIGN.md §6). The casualties are
// returned so callers — the inject layer — can arrange retransmission.
func (m *Machine) FailNow(f fault.Fault) ([]Lost, error) {
	if err := m.checkFaultKind(f.Kind); err != nil {
		return nil, err
	}
	if err := m.faults.Add(f); err != nil {
		return nil, err
	}
	var node *engine.Node
	switch f.Kind {
	case fault.KindRouter:
		node = m.routerNode(f.Coord)
	case fault.KindXB:
		node = m.net.XB(f.Line)
	case fault.KindLink:
		// A dynamic link fault is a clean cut: flits already launched onto
		// the wire complete their crossing, no packet is purged, and the
		// rebuilt scheme keeps new routing decisions off the link. Nothing
		// dies, so there are no casualties to report.
		if err := m.rebuildPolicy(); err != nil {
			return nil, err
		}
		return nil, nil
	default:
		return nil, fmt.Errorf("core: unknown fault kind %d", f.Kind)
	}
	killed := m.eng.KillSwitch(node)
	if m.reconfigure != nil {
		if err := m.reconfigure(f); err != nil {
			return nil, err
		}
	} else if err := m.rebuildPolicy(); err != nil {
		return nil, err
	}
	lost := make([]Lost, 0, len(killed))
	for _, k := range killed {
		l := Lost{PacketID: k.ID, AlreadyDropped: k.AlreadyDropped}
		if h := k.Header; h != nil {
			l.Known = true
			l.Src, l.Dst, l.RC, l.Size = h.Src, h.Dst, h.RC, h.Size
			if h.TwoPhase {
				l.Dst = h.FinalDst
			}
		}
		lost = append(lost, l)
	}
	return lost, nil
}

// PurgePacket removes one packet from the network with the engine's
// credit-conserving purge (engine.KillPacket): every flit, cut-through
// state and receive state the packet holds is released exactly as normal
// forwarding would release it, so the packets that were waiting on its
// resources resume. No switch is marked failed and the routing policy is
// untouched. The recovery layer uses it to sacrifice a deadlock victim.
//
// The second return is false — and nothing changes — when no trace of the
// packet remains in the network.
func (m *Machine) PurgePacket(id uint64) (Lost, bool) {
	k, ok := m.eng.KillPacket(id)
	if !ok {
		return Lost{}, false
	}
	l := Lost{PacketID: k.ID, AlreadyDropped: k.AlreadyDropped}
	if h := k.Header; h != nil {
		l.Known = true
		l.Src, l.Dst, l.RC, l.Size = h.Src, h.Dst, h.RC, h.Size
		if h.TwoPhase {
			l.Dst = h.FinalDst
		}
	}
	return l, true
}

// Send queues a point-to-point packet of the given size in flits (0 = the
// configured default). It refuses — like the NIA consulting the pre-set
// fault information — sends whose destination is unreachable, returning the
// routing error.
func (m *Machine) Send(src, dst geom.Coord, size int) (uint64, error) {
	if err := m.Reachable(src, dst); err != nil {
		if m.cfg.PivotLastDim {
			if _, perr := m.policy.PivotPath(src, dst); perr == nil {
				return m.sendPivot(src, dst, size)
			}
		}
		return 0, err
	}
	return m.send(src, dst, size)
}

// Reachable reports whether the active routing layer serves the pair: nil,
// or the refusal the NIA would return. Unreachable pairs on any topology
// satisfy errors.Is(err, routing.ErrUnreachable). On the MD crossbar this
// is the policy's precheck; on a direct-link topology it statically walks
// the scheme's route.
func (m *Machine) Reachable(src, dst geom.Coord) error {
	if m.router == nil {
		return m.policy.Reachable(src, dst)
	}
	if !m.shape.Contains(src) || !m.shape.Contains(dst) {
		return fmt.Errorf("core: src %v or dst %v outside shape", src, dst)
	}
	_, err := topo.Walk(m.router, src, dst)
	if errors.Is(err, topo.ErrUnreachable) {
		return fmt.Errorf("%w: %v", routing.ErrUnreachable, err)
	}
	return err
}

// sendPivot queues a two-phase pivot packet (extension A3).
func (m *Machine) sendPivot(src, dst geom.Coord, size int) (uint64, error) {
	mid, ok := m.policy.PivotIntermediate(src, dst)
	if !ok {
		return 0, fmt.Errorf("core: pivot intermediate vanished for %v -> %v", src, dst)
	}
	if size <= 0 {
		size = m.cfg.PacketSize
	}
	m.nextID++
	h := &flit.Header{PacketID: m.nextID, Src: src, Dst: mid, FinalDst: dst, TwoPhase: true, RC: flit.RCNormal, Epoch: m.epoch}
	m.eng.InjectPacket(m.pe(src), h, size)
	return m.nextID, nil
}

// pe returns the endpoint node of the PE at c on either network.
func (m *Machine) pe(c geom.Coord) *engine.Node {
	if m.tnet != nil {
		return m.tnet.PE(c)
	}
	return m.net.PE(c)
}

// SendUnchecked queues a packet without the reachability precheck; an
// undeliverable packet is dropped inside the network (visible via Dropped).
func (m *Machine) SendUnchecked(src, dst geom.Coord, size int) (uint64, error) {
	if !m.shape.Contains(src) || !m.shape.Contains(dst) {
		return 0, fmt.Errorf("core: src %v or dst %v outside shape", src, dst)
	}
	return m.send(src, dst, size)
}

func (m *Machine) send(src, dst geom.Coord, size int) (uint64, error) {
	if size <= 0 {
		size = m.cfg.PacketSize
	}
	m.nextID++
	h := &flit.Header{PacketID: m.nextID, Src: src, Dst: dst, RC: flit.RCNormal, Epoch: m.epoch}
	m.eng.InjectPacket(m.pe(src), h, size)
	return m.nextID, nil
}

// Broadcast queues a hardware broadcast from src (S-XB-serialized, or the
// naive tree when the machine is configured NaiveBroadcast). The returned
// count is the number of PEs that will receive a copy; the error reports a
// source that cannot reach the serialization point.
func (m *Machine) Broadcast(src geom.Coord, size int) (uint64, int, error) {
	if m.tnet != nil {
		return 0, 0, fmt.Errorf("core: topology %q has no hardware broadcast facility (mdx-only)", m.cfg.Topology)
	}
	tree, err := m.policy.BroadcastTree(src)
	if err != nil {
		return 0, 0, err
	}
	if size <= 0 {
		size = m.cfg.PacketSize
	}
	m.nextID++
	rc := flit.RCBroadcastRequest
	if m.cfg.NaiveBroadcast {
		rc = flit.RCBroadcast
	}
	h := &flit.Header{PacketID: m.nextID, Src: src, BroadcastOrigin: src, RC: rc, Epoch: m.epoch}
	m.eng.InjectPacket(m.net.PE(src), h, size)
	return m.nextID, len(tree.Delivered), nil
}

// Step advances the simulation one cycle.
func (m *Machine) Step() { m.eng.Step() }

// Run steps until the network drains, deadlocks, or maxCycles elapse,
// returning the watched outcome.
func (m *Machine) Run(maxCycles int64) deadlock.Outcome {
	return deadlock.Run(m.eng, maxCycles, m.cfg.StallThreshold)
}

// Deliveries returns every recorded delivery (in delivery order).
func (m *Machine) Deliveries() []Delivery { return m.deliveries }

// ResetStats clears recorded deliveries and latency accumulators (in-flight
// packets keep their injection timestamps).
func (m *Machine) ResetStats() {
	m.deliveries = nil
	m.latency = stats.Latency{}
	m.bcastLat = stats.Latency{}
}

// Latency returns the point-to-point latency distribution.
func (m *Machine) Latency() *stats.Latency { return &m.latency }

// BroadcastLatency returns the broadcast-copy latency distribution.
func (m *Machine) BroadcastLatency() *stats.Latency { return &m.bcastLat }

// Dropped reports packets discarded inside the network.
func (m *Machine) Dropped() int64 { return m.eng.Dropped() }

// Cycle reports the simulation time.
func (m *Machine) Cycle() int64 { return m.eng.Cycle() }

// Engine exposes the simulation kernel (for measurement and experiments).
func (m *Machine) Engine() *engine.Engine { return m.eng }

// Network exposes the built MD crossbar network (nil on direct-link
// topologies — see TopoNet).
func (m *Machine) Network() *mdxb.Network { return m.net }

// TopoNet exposes the built direct-link lattice (nil on the MD crossbar —
// see Network).
func (m *Machine) TopoNet() *topo.Net { return m.tnet }

// TopoScheme exposes the installed direct-link routing scheme (nil on the
// MD crossbar). It is rebuilt — and re-fetched stale references
// invalidated — every time a fault is added.
func (m *Machine) TopoScheme() topo.Router { return m.router }

// Topology reports the configured interconnect name (TopologyMDX,
// TopologyHyperX or TopologyFullMesh).
func (m *Machine) Topology() string { return m.cfg.Topology }

// Policy exposes the active routing policy (for static path queries; nil
// on direct-link topologies — see Reachable for the portable precheck).
func (m *Machine) Policy() *routing.Policy { return m.policy }

// Shape reports the lattice shape.
func (m *Machine) Shape() geom.Shape { return m.shape }

// Alive reports whether the PE at c can use the network: its relay switch
// must be healthy.
func (m *Machine) Alive(c geom.Coord) bool { return m.faults.PEAlive(c) }
