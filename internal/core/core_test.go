package core

import (
	"errors"
	"fmt"
	"testing"

	"sr2201/internal/engine"
	"sr2201/internal/fault"
	"sr2201/internal/flit"
	"sr2201/internal/geom"
	"sr2201/internal/mdxb"
	"sr2201/internal/routing"
)

func mustMachine(t *testing.T, cfg Config) *Machine {
	t.Helper()
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	return m
}

func m43(t *testing.T) *Machine {
	return mustMachine(t, Config{Shape: geom.MustShape(4, 3), StallThreshold: 64})
}

func TestNewMachineValidation(t *testing.T) {
	if _, err := NewMachine(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := NewMachine(Config{Shape: geom.MustShape(4, 3), PacketSize: -1}); err == nil {
		t.Error("negative packet size accepted")
	}
	if _, err := NewMachine(Config{Shape: geom.MustShape(4, 3), SXB: geom.Coord{0, 9}}); err == nil {
		t.Error("out-of-shape SXB accepted")
	}
}

func TestSimpleSendDelivers(t *testing.T) {
	m := m43(t)
	id, err := m.Send(geom.Coord{0, 0}, geom.Coord{3, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := m.Run(10_000)
	if !out.Drained {
		t.Fatalf("outcome: %+v\n%s", out, out.Report.Describe())
	}
	ds := m.Deliveries()
	if len(ds) != 1 {
		t.Fatalf("deliveries = %d", len(ds))
	}
	d := ds[0]
	if d.PacketID != id || d.At != (geom.Coord{3, 2}) || d.Src != (geom.Coord{0, 0}) {
		t.Errorf("delivery = %+v", d)
	}
	if d.Broadcast || d.Detoured {
		t.Errorf("flags = %+v", d)
	}
	if d.Latency <= 0 || d.Latency > 100 {
		t.Errorf("latency = %d", d.Latency)
	}
	if m.Latency().Count() != 1 {
		t.Errorf("latency samples = %d", m.Latency().Count())
	}
}

// The dynamic route through the simulator must match the static path walker
// element for element.
func TestDynamicPathMatchesStatic(t *testing.T) {
	shape := geom.MustShape(4, 3)
	checkPair := func(m *Machine, src, dst geom.Coord) {
		t.Helper()
		want, err := m.Policy().UnicastPath(src, dst)
		if err != nil {
			t.Fatalf("%v->%v static: %v", src, dst, err)
		}
		var gotNames []string
		m.Engine().OnForward = func(from *engine.Node, out int, h *flit.Header, cycle int64) {
			gotNames = append(gotNames, from.Name)
		}
		if _, err := m.Send(src, dst, 2); err != nil {
			t.Fatalf("%v->%v send: %v", src, dst, err)
		}
		if out := m.Run(10_000); !out.Drained {
			t.Fatalf("%v->%v did not drain", src, dst)
		}
		m.Engine().OnForward = nil
		// Expected: the source PE, then every non-PE hop of the static path.
		wantNames := []string{"PE" + src.In(2)}
		for _, h := range want {
			switch h.Kind {
			case routing.HopRouter:
				wantNames = append(wantNames, "RTC"+h.Coord.In(2))
			case routing.HopXB:
				wantNames = append(wantNames, fmt.Sprintf("XB%d%s", h.Line.Dim, h.Line.Fixed.In(2)))
			}
		}
		if len(gotNames) != len(wantNames) {
			t.Fatalf("%v->%v: forwards %v, want %v", src, dst, gotNames, wantNames)
		}
		for i := range wantNames {
			if gotNames[i] != wantNames[i] {
				t.Fatalf("%v->%v: hop %d = %s, want %s", src, dst, i, gotNames[i], wantNames[i])
			}
		}
	}

	// Fault-free pairs.
	m := m43(t)
	checkPair(m, geom.Coord{0, 0}, geom.Coord{3, 2})
	checkPair(m, geom.Coord{2, 1}, geom.Coord{2, 1})
	checkPair(m, geom.Coord{1, 2}, geom.Coord{1, 0})

	// A detoured pair.
	m = mustMachine(t, Config{Shape: shape, StallThreshold: 64})
	if err := m.AddFault(fault.RouterFault(geom.Coord{2, 0})); err != nil {
		t.Fatal(err)
	}
	checkPair(m, geom.Coord{0, 0}, geom.Coord{2, 2})
}

func TestAllPairsSequential(t *testing.T) {
	m := m43(t)
	shape := m.Shape()
	total := 0
	shape.Enumerate(func(src geom.Coord) bool {
		shape.Enumerate(func(dst geom.Coord) bool {
			if _, err := m.Send(src, dst, 3); err != nil {
				t.Fatalf("%v->%v: %v", src, dst, err)
			}
			total++
			return true
		})
		return true
	})
	out := m.Run(200_000)
	if !out.Drained {
		t.Fatalf("outcome %+v\n%s", out, out.Report.Describe())
	}
	if len(m.Deliveries()) != total {
		t.Fatalf("delivered %d/%d", len(m.Deliveries()), total)
	}
	if m.Dropped() != 0 {
		t.Errorf("dropped %d", m.Dropped())
	}
}

// Paper §3.2 / Fig. 6: one broadcast reaches every PE exactly once, matching
// the static tree, and its copies are flagged as broadcast deliveries.
func TestBroadcastDeliversAllOnce(t *testing.T) {
	for _, shapeDims := range [][]int{{4, 3}, {3, 3, 2}} {
		m := mustMachine(t, Config{Shape: geom.MustShape(shapeDims...), StallThreshold: 64})
		src := m.Shape().CoordOf(m.Shape().Size() - 1)
		_, want, err := m.Broadcast(src, 4)
		if err != nil {
			t.Fatal(err)
		}
		if want != m.Shape().Size() {
			t.Fatalf("static tree covers %d, want %d", want, m.Shape().Size())
		}
		out := m.Run(50_000)
		if !out.Drained {
			t.Fatalf("shape %v: %+v\n%s", shapeDims, out, out.Report.Describe())
		}
		got := map[geom.Coord]int{}
		for _, d := range m.Deliveries() {
			if !d.Broadcast {
				t.Errorf("delivery not flagged broadcast: %+v", d)
			}
			if d.Src != src {
				t.Errorf("broadcast origin = %v", d.Src)
			}
			got[d.At]++
		}
		if len(got) != m.Shape().Size() {
			t.Fatalf("shape %v: broadcast reached %d PEs, want %d", shapeDims, len(got), m.Shape().Size())
		}
		for c, n := range got {
			if n != 1 {
				t.Errorf("PE %v received %d copies", c, n)
			}
		}
	}
}

// Paper §3.2: simultaneous broadcasts serialize at the S-XB and all complete.
func TestConcurrentBroadcastsSerialized(t *testing.T) {
	m := m43(t)
	srcs := []geom.Coord{{0, 0}, {3, 2}, {1, 1}, {2, 2}}
	for _, s := range srcs {
		if _, _, err := m.Broadcast(s, 6); err != nil {
			t.Fatal(err)
		}
	}
	out := m.Run(100_000)
	if !out.Drained {
		t.Fatalf("outcome %+v\n%s", out, out.Report.Describe())
	}
	perOrigin := map[geom.Coord]int{}
	for _, d := range m.Deliveries() {
		perOrigin[d.Src]++
	}
	for _, s := range srcs {
		if perOrigin[s] != m.Shape().Size() {
			t.Errorf("broadcast from %v delivered %d copies, want %d", s, perOrigin[s], m.Shape().Size())
		}
	}
}

// Paper Fig. 5: simultaneous naive broadcasts (no S-XB serialization)
// deadlock under cut-through routing.
func TestNaiveBroadcastDeadlockFig5(t *testing.T) {
	m := mustMachine(t, Config{Shape: geom.MustShape(4, 3), NaiveBroadcast: true, StallThreshold: 128})
	if _, _, err := m.Broadcast(geom.Coord{2, 0}, 8); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Broadcast(geom.Coord{1, 2}, 8); err != nil {
		t.Fatal(err)
	}
	out := m.Run(50_000)
	if !out.Stalled {
		t.Fatalf("naive broadcasts did not stall: %+v (delivered %d)", out, len(m.Deliveries()))
	}
	if !out.Deadlocked {
		t.Fatalf("stall not confirmed as deadlock:\n%s", out.Report.Describe())
	}
}

// The same two broadcasts complete under the S-XB scheme.
func TestSerializedBroadcastNoDeadlockFig5Counterpart(t *testing.T) {
	m := m43(t)
	if _, _, err := m.Broadcast(geom.Coord{2, 0}, 8); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Broadcast(geom.Coord{1, 2}, 8); err != nil {
		t.Fatal(err)
	}
	out := m.Run(50_000)
	if !out.Drained {
		t.Fatalf("outcome %+v\n%s", out, out.Report.Describe())
	}
	if len(m.Deliveries()) != 2*m.Shape().Size() {
		t.Errorf("delivered %d", len(m.Deliveries()))
	}
}

// Paper Figs. 7-8: the detour facility delivers around a faulty router, the
// delivery is flagged Detoured, and the packet "leaves no trace" (normal RC).
func TestDetourDeliveryFig8(t *testing.T) {
	m := mustMachine(t, Config{Shape: geom.MustShape(4, 3), StallThreshold: 64})
	if err := m.AddFault(fault.RouterFault(geom.Coord{2, 0})); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Send(geom.Coord{0, 0}, geom.Coord{2, 2}, 0); err != nil {
		t.Fatal(err)
	}
	out := m.Run(10_000)
	if !out.Drained {
		t.Fatalf("outcome %+v", out)
	}
	ds := m.Deliveries()
	if len(ds) != 1 || !ds[0].Detoured || ds[0].At != (geom.Coord{2, 2}) {
		t.Fatalf("deliveries = %+v", ds)
	}
	if m.Dropped() != 0 {
		t.Errorf("dropped = %d", m.Dropped())
	}
}

func TestSendToDeadPERefused(t *testing.T) {
	m := m43(t)
	bad := geom.Coord{1, 1}
	if err := m.AddFault(fault.RouterFault(bad)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Send(geom.Coord{0, 0}, bad, 0); !errors.Is(err, routing.ErrUnreachable) {
		t.Errorf("send to dead PE: %v", err)
	}
	// Unchecked send is dropped inside the network instead.
	if _, err := m.SendUnchecked(geom.Coord{0, 0}, bad, 0); err != nil {
		t.Fatal(err)
	}
	out := m.Run(10_000)
	if !out.Drained {
		t.Fatalf("outcome %+v", out)
	}
	if m.Dropped() != 1 || len(m.Deliveries()) != 0 {
		t.Errorf("dropped=%d delivered=%d", m.Dropped(), len(m.Deliveries()))
	}
}

func TestSendUncheckedValidatesShape(t *testing.T) {
	m := m43(t)
	if _, err := m.SendUnchecked(geom.Coord{0, 0}, geom.Coord{9, 9}, 0); err == nil {
		t.Error("out-of-shape destination accepted")
	}
}

func TestAddFaultRequiresQuiescence(t *testing.T) {
	m := m43(t)
	if _, err := m.Send(geom.Coord{0, 0}, geom.Coord{3, 2}, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.AddFault(fault.RouterFault(geom.Coord{1, 1})); err == nil {
		t.Error("fault added to a loaded network")
	}
	m.Run(10_000)
	if err := m.AddFault(fault.RouterFault(geom.Coord{1, 1})); err != nil {
		t.Errorf("fault on quiescent network rejected: %v", err)
	}
}

func TestBroadcastWithFaultyRouterSkipsDeadPE(t *testing.T) {
	m := m43(t)
	bad := geom.Coord{3, 1}
	if err := m.AddFault(fault.RouterFault(bad)); err != nil {
		t.Fatal(err)
	}
	_, want, err := m.Broadcast(geom.Coord{0, 0}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want != m.Shape().Size()-1 {
		t.Fatalf("static coverage = %d", want)
	}
	out := m.Run(50_000)
	if !out.Drained {
		t.Fatalf("outcome %+v\n%s", out, out.Report.Describe())
	}
	if len(m.Deliveries()) != want {
		t.Errorf("delivered %d, want %d", len(m.Deliveries()), want)
	}
	for _, d := range m.Deliveries() {
		if d.At == bad {
			t.Errorf("delivered to dead PE")
		}
	}
}

func TestResetStats(t *testing.T) {
	m := m43(t)
	if _, err := m.Send(geom.Coord{0, 0}, geom.Coord{1, 0}, 2); err != nil {
		t.Fatal(err)
	}
	m.Run(1_000)
	if len(m.Deliveries()) != 1 || m.Latency().Count() != 1 {
		t.Fatal("precondition failed")
	}
	m.ResetStats()
	if len(m.Deliveries()) != 0 || m.Latency().Count() != 0 || m.BroadcastLatency().Count() != 0 {
		t.Error("stats not cleared")
	}
}

func TestMachineAccessors(t *testing.T) {
	m := m43(t)
	if m.Network() == nil || m.Engine() == nil || m.Policy() == nil || m.Faults() == nil {
		t.Fatal("nil accessor")
	}
	if m.Cycle() != 0 {
		t.Errorf("cycle = %d", m.Cycle())
	}
	m.Step()
	if m.Cycle() != 1 {
		t.Errorf("cycle after step = %d", m.Cycle())
	}
	r, x := m.Network().SwitchCount()
	if r != 12 || x != 3+4 {
		t.Errorf("switch count = %d routers, %d crossbars", r, x)
	}
	if m.Network().RouterPortPE() != 2 {
		t.Errorf("PE port = %d", m.Network().RouterPortPE())
	}
	if got := m.Network().PortCount(); got != 12*3+3*4+4*3 {
		t.Errorf("port count = %d", got)
	}
	_ = mdxb.PEMeta{}
}

func TestFailNowPurgesAndReroutes(t *testing.T) {
	// Load the network, kill a router mid-run, and verify: casualties are
	// reported with headers, the engine invariants survive, the PE behind
	// the dead router becomes unreachable, and surviving traffic drains.
	m := mustMachine(t, Config{Shape: geom.MustShape(4, 4), StallThreshold: 128})
	shape := m.Shape()
	var accepted int
	shape.Enumerate(func(c geom.Coord) bool {
		dst := shape.CoordOf((shape.Index(c) + 5) % shape.Size())
		if dst == c {
			return true
		}
		if _, err := m.Send(c, dst, 0); err != nil {
			t.Fatalf("pre-fault send %v->%v: %v", c, dst, err)
		}
		accepted++
		return true
	})
	for i := 0; i < 10; i++ {
		m.Step()
	}
	dead := geom.Coord{2, 1}
	lost, err := m.FailNow(fault.RouterFault(dead))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Engine().CheckInvariants(); err != nil {
		t.Fatalf("invariants after FailNow: %v", err)
	}
	if len(lost) == 0 {
		t.Fatal("expected in-flight casualties at cycle 10")
	}
	for _, l := range lost {
		if !l.Known {
			t.Errorf("casualty %d without header", l.PacketID)
		}
	}
	if m.Alive(dead) {
		t.Error("PE behind dead router still alive")
	}
	if _, err := m.Send(geom.Coord{0, 0}, dead, 0); !errors.Is(err, routing.ErrUnreachable) {
		t.Errorf("send to dead router's PE: %v, want ErrUnreachable", err)
	}
	out := m.Run(20_000)
	if !out.Drained {
		t.Fatalf("post-fault network did not drain: %+v\n%s", out, out.Report.Describe())
	}
	// Every accepted packet was delivered, purged, or dropped at the dead
	// switch (routing sink).
	delivered := len(m.Deliveries())
	if int64(delivered)+m.Dropped() != int64(accepted) {
		t.Errorf("accounting: delivered=%d dropped=%d accepted=%d", delivered, m.Dropped(), accepted)
	}
	// Post-fault traffic between healthy PEs still works (detour if needed).
	m.ResetStats()
	if _, err := m.Send(geom.Coord{0, 1}, geom.Coord{3, 1}, 0); err != nil {
		t.Fatalf("post-fault send: %v", err)
	}
	if out := m.Run(20_000); !out.Drained {
		t.Fatal("post-fault send did not drain")
	}
	if len(m.Deliveries()) != 1 {
		t.Fatalf("post-fault deliveries = %d", len(m.Deliveries()))
	}
}

func TestFailNowValidates(t *testing.T) {
	m := m43(t)
	if _, err := m.FailNow(fault.RouterFault(geom.Coord{9, 9})); err == nil {
		t.Error("out-of-shape dynamic fault accepted")
	}
}
