package core_test

import (
	"fmt"
	"strings"
	"testing"

	"sr2201/internal/checkpoint"
	"sr2201/internal/core"
	"sr2201/internal/fault"
	"sr2201/internal/geom"
)

// The machine-level restore-equivalence suite. Each scenario stands in for
// one experiment series: E (evaluation configs under Bernoulli traffic), A
// (ablations: pivot routing, naive broadcast, compiled tables), plus a
// statically-faulted machine. The dynamic-fault (F series) counterpart
// lives in internal/inject. The oracle is the per-cycle engine StateHash
// stream plus a rendered final report: snapshot at cycle k, restore into a
// fresh machine, run to the horizon, and both must match the uninterrupted
// run exactly, for several k.

// workload drives an open-loop Bernoulli pattern from a serializable RNG so
// the traffic source itself can ride in the snapshot.
type workload struct {
	rng   *checkpoint.RNG
	pes   []geom.Coord
	rate  float64
	bcast float64
}

func newWorkload(m *core.Machine, seed int64, rate, bcast float64) *workload {
	w := &workload{rng: checkpoint.NewRNG(seed), rate: rate, bcast: bcast}
	m.Shape().Enumerate(func(c geom.Coord) bool {
		w.pes = append(w.pes, c)
		return true
	})
	return w
}

// step injects one cycle's traffic and advances the machine. Sends to dead
// or unreachable destinations fail; the failure is deterministic and the
// RNG draw happened regardless, so the stream replays identically.
func (w *workload) step(m *core.Machine) {
	for _, src := range w.pes {
		if w.rate > 0 && w.rng.Float64() < w.rate {
			dst := w.pes[w.rng.Intn(len(w.pes))]
			if dst != src {
				m.Send(src, dst, 0)
			}
		}
		if w.bcast > 0 && w.rng.Float64() < w.bcast {
			m.Broadcast(src, 0)
		}
	}
	m.Step()
}

// snap packs machine and workload RNG into one container.
func snap(m *core.Machine, w *workload) []byte {
	wr := checkpoint.NewWriter()
	m.EncodeState(wr)
	w.rng.Encode(wr.Section("test.rng"))
	return wr.Bytes()
}

// unsnap restores a container into a fresh machine + workload pair.
func unsnap(t *testing.T, data []byte, mk func() *core.Machine, seed int64, rate, bcast float64) (*core.Machine, *workload) {
	t.Helper()
	m := mk()
	r, err := checkpoint.NewReader(data)
	if err != nil {
		t.Fatalf("reader: %v", err)
	}
	if err := m.DecodeState(r); err != nil {
		t.Fatalf("machine decode: %v", err)
	}
	w := newWorkload(m, 0, rate, bcast)
	d, err := r.Section("test.rng")
	if err != nil {
		t.Fatalf("rng section: %v", err)
	}
	w.rng = checkpoint.DecodeRNG(d)
	if err := d.Finish(); err != nil {
		t.Fatalf("rng decode: %v", err)
	}
	return m, w
}

// report renders everything a run reports: the delivery log and both
// latency accumulators. Byte-equality of this string is the "final report
// identical" acceptance check.
func report(m *core.Machine) string {
	var b strings.Builder
	for _, d := range m.Deliveries() {
		fmt.Fprintf(&b, "%d %v %v b=%v d=%v c=%d l=%d\n",
			d.PacketID, d.Src, d.At, d.Broadcast, d.Detoured, d.Cycle, d.Latency)
	}
	lat, blat := m.Latency(), m.BroadcastLatency()
	fmt.Fprintf(&b, "lat n=%d mean=%.4f min=%d max=%d p95=%d\n",
		lat.Count(), lat.Mean(), lat.Min(), lat.Max(), lat.Percentile(95))
	fmt.Fprintf(&b, "bcast n=%d mean=%.4f\n", blat.Count(), blat.Mean())
	fmt.Fprintf(&b, "dropped=%d cycle=%d\n", m.Dropped(), m.Cycle())
	return b.String()
}

func TestMachineRestoreEquivalence(t *testing.T) {
	scenarios := []struct {
		name  string
		mk    func(t *testing.T) *core.Machine
		rate  float64
		bcast float64
	}{
		{"E/sxb-2d", func(t *testing.T) *core.Machine {
			return mkMachine(t, core.Config{Shape: geom.MustShape(4, 4)})
		}, 0.25, 0},
		{"E/sxb-3d", func(t *testing.T) *core.Machine {
			return mkMachine(t, core.Config{Shape: geom.MustShape(3, 3, 3)})
		}, 0.2, 0},
		{"E/bcast", func(t *testing.T) *core.Machine {
			return mkMachine(t, core.Config{Shape: geom.MustShape(4, 4)})
		}, 0.1, 0.03},
		{"A/pivot", func(t *testing.T) *core.Machine {
			return mkMachine(t, core.Config{Shape: geom.MustShape(4, 4), PivotLastDim: true})
		}, 0.25, 0},
		{"A/naive-bcast", func(t *testing.T) *core.Machine {
			return mkMachine(t, core.Config{Shape: geom.MustShape(4, 4), NaiveBroadcast: true})
		}, 0.1, 0.03},
		{"A/tables", func(t *testing.T) *core.Machine {
			m := mkMachine(t, core.Config{Shape: geom.MustShape(4, 4)})
			if err := m.UseCompiledTables(); err != nil {
				t.Fatalf("tables: %v", err)
			}
			return m
		}, 0.25, 0},
		{"E/static-fault", func(t *testing.T) *core.Machine {
			m := mkMachine(t, core.Config{Shape: geom.MustShape(4, 4)})
			if err := m.AddFault(fault.RouterFault(geom.Coord{2, 1})); err != nil {
				t.Fatalf("fault: %v", err)
			}
			return m
		}, 0.25, 0},
	}

	const horizon = 160
	const seed = 42
	ks := []int64{0, 1, 13, 55, 144}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			// Reference run: record the hash stream, final report, and a
			// snapshot at each k.
			m := sc.mk(t)
			w := newWorkload(m, seed, sc.rate, sc.bcast)
			snaps := map[int64][]byte{}
			hashes := make([]uint64, horizon)
			for c := int64(0); c < horizon; c++ {
				for _, k := range ks {
					if k == c {
						snaps[k] = snap(m, w)
					}
				}
				w.step(m)
				hashes[c] = m.Engine().StateHash()
			}
			want := report(m)

			for _, k := range ks {
				t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
					m2, w2 := unsnap(t, snaps[k], func() *core.Machine { return sc.mk(t) }, seed, sc.rate, sc.bcast)
					if got := m2.Cycle(); got != k {
						t.Fatalf("restored at cycle %d, want %d", got, k)
					}
					for c := k; c < horizon; c++ {
						w2.step(m2)
						if h := m2.Engine().StateHash(); h != hashes[c] {
							t.Fatalf("hash diverged at cycle %d: %016x != %016x", c, h, hashes[c])
						}
					}
					if got := report(m2); got != want {
						t.Errorf("final report differs\n--- resumed\n%s--- uninterrupted\n%s", got, want)
					}
					if err := m2.Engine().CheckInvariants(); err != nil {
						t.Errorf("invariants after resumed run: %v", err)
					}
				})
			}
		})
	}
}

func mkMachine(t *testing.T, cfg core.Config) *core.Machine {
	t.Helper()
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	return m
}

// TestMachineRestoreRejectsMismatchedConfig pins the fingerprint check: a
// snapshot must not restore into a machine built from a different Config.
func TestMachineRestoreRejectsMismatchedConfig(t *testing.T) {
	m := mkMachine(t, core.Config{Shape: geom.MustShape(4, 4)})
	data := m.Snapshot()

	for _, alt := range []core.Config{
		{Shape: geom.MustShape(4, 5)},
		{Shape: geom.MustShape(4, 4), PivotLastDim: true},
		{Shape: geom.MustShape(4, 4), NaiveBroadcast: true},
		{Shape: geom.MustShape(4, 4), PacketSize: 9},
	} {
		m2 := mkMachine(t, alt)
		if err := m2.Restore(data); err == nil {
			t.Errorf("restore into %+v machine unexpectedly succeeded", alt)
		} else if !strings.Contains(err.Error(), "fingerprint") && !strings.Contains(err.Error(), "checkpoint") {
			t.Errorf("unhelpful mismatch error: %v", err)
		}
	}
}

// TestMachineSnapshotRoundtripBytes pins snapshot determinism: snapshotting
// the restored machine reproduces the original container byte for byte.
func TestMachineSnapshotRoundtripBytes(t *testing.T) {
	m := mkMachine(t, core.Config{Shape: geom.MustShape(4, 4)})
	w := newWorkload(m, 7, 0.3, 0.02)
	for i := 0; i < 40; i++ {
		w.step(m)
	}
	data := m.Snapshot()
	m2 := mkMachine(t, core.Config{Shape: geom.MustShape(4, 4)})
	if err := m2.Restore(data); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if again := m2.Snapshot(); string(again) != string(data) {
		t.Fatalf("re-snapshot differs from original (%d vs %d bytes)", len(again), len(data))
	}
}
