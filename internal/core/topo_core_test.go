package core

import (
	"errors"
	"testing"

	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/routing"
)

// TestTopoMachineAllPairs: the direct-link machines deliver every ordered
// pair exactly once, like the crossbar machine does.
func TestTopoMachineAllPairs(t *testing.T) {
	cases := []struct {
		topology string
		shape    geom.Shape
	}{
		{TopologyHyperX, geom.MustShape(3, 3)},
		{TopologyFullMesh, geom.MustShape(8)},
	}
	for _, tc := range cases {
		t.Run(tc.topology, func(t *testing.T) {
			m := mustMachine(t, Config{Shape: tc.shape, Topology: tc.topology, StallThreshold: 64})
			if m.Topology() != tc.topology {
				t.Fatalf("Topology() = %q", m.Topology())
			}
			want := 0
			tc.shape.Enumerate(func(src geom.Coord) bool {
				tc.shape.Enumerate(func(dst geom.Coord) bool {
					if src == dst {
						return true
					}
					if _, err := m.Send(src, dst, 4); err != nil {
						t.Fatalf("send %v->%v: %v", src, dst, err)
					}
					want++
					return true
				})
				return true
			})
			if out := m.Run(100_000); !out.Drained {
				t.Fatalf("outcome %+v", out)
			}
			got := map[geom.Coord]int{}
			for _, d := range m.Deliveries() {
				got[d.At]++
			}
			for c, n := range got {
				if n != tc.shape.Size()-1 {
					t.Errorf("PE %v consumed %d, want %d", c, n, tc.shape.Size()-1)
				}
			}
			if len(m.Deliveries()) != want {
				t.Errorf("delivered %d, want %d", len(m.Deliveries()), want)
			}
		})
	}
}

// TestTopoConfigRejections: the crossbar-only knobs and fault kinds are
// rejected on direct-link topologies, and vice versa, each with an error
// naming the offending knob.
func TestTopoConfigRejections(t *testing.T) {
	shape2d, mesh := geom.MustShape(4, 4), geom.MustShape(8)
	bad := []struct {
		name string
		cfg  Config
	}{
		{"unknown topology", Config{Shape: shape2d, Topology: "torus"}},
		{"sxb on hyperx", Config{Shape: shape2d, Topology: TopologyHyperX, SXB: geom.Coord{0, 1}}},
		{"dxb-separate on hyperx", Config{Shape: shape2d, Topology: TopologyHyperX, DXBSeparate: true}},
		{"naive broadcast on fullmesh", Config{Shape: mesh, Topology: TopologyFullMesh, NaiveBroadcast: true}},
		{"pivot on hyperx", Config{Shape: shape2d, Topology: TopologyHyperX, PivotLastDim: true}},
		{"fullmesh needs 1-D", Config{Shape: shape2d, Topology: TopologyFullMesh}},
	}
	for _, tc := range bad {
		if _, err := NewMachine(tc.cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}

	hx := mustMachine(t, Config{Shape: shape2d, Topology: TopologyHyperX, StallThreshold: 64})
	if err := hx.AddFault(fault.XBFault(geom.LineOf(geom.Coord{0, 0}, 0))); err == nil {
		t.Error("crossbar fault accepted on hyperx")
	}
	if _, _, err := hx.Broadcast(geom.Coord{0, 0}, 4); err == nil {
		t.Error("hardware broadcast accepted on hyperx")
	}
	if err := hx.UseCompiledTables(); err == nil {
		t.Error("compiled tables accepted on hyperx")
	}
	xb := mustMachine(t, Config{Shape: shape2d, StallThreshold: 64})
	if err := xb.AddFault(fault.LinkFault(geom.Coord{0, 0}, geom.Coord{1, 0})); err == nil {
		t.Error("link fault accepted on mdx")
	}
}

// TestTopoLinkFaultDetourAndRefusal: a single in-line link fault is
// detoured on HyperX; on the full mesh the detour-order rule makes traffic
// into destination 1 over a faulty link a statically predicted refusal.
func TestTopoLinkFaultDetourAndRefusal(t *testing.T) {
	hx := mustMachine(t, Config{Shape: geom.MustShape(4, 4), Topology: TopologyHyperX, StallThreshold: 64})
	if err := hx.AddFault(fault.LinkFault(geom.Coord{0, 0}, geom.Coord{3, 0})); err != nil {
		t.Fatal(err)
	}
	if _, err := hx.Send(geom.Coord{0, 0}, geom.Coord{3, 0}, 4); err != nil {
		t.Fatalf("detourable pair refused: %v", err)
	}
	if out := hx.Run(10_000); !out.Drained {
		t.Fatalf("outcome %+v", out)
	}
	if n := len(hx.Deliveries()); n != 1 {
		t.Fatalf("delivered %d, want 1", n)
	}

	fm := mustMachine(t, Config{Shape: geom.MustShape(8), Topology: TopologyFullMesh, StallThreshold: 64})
	if err := fm.AddFault(fault.LinkFault(geom.Coord{3}, geom.Coord{1})); err != nil {
		t.Fatal(err)
	}
	// Destination 1 sits at the bottom of the detour order: no admissible
	// intermediate exists, so the pair is refused, not deadlocked.
	if _, err := fm.Send(geom.Coord{3}, geom.Coord{1}, 4); !errors.Is(err, routing.ErrUnreachable) {
		t.Fatalf("3->1 over faulty link: %v, want ErrUnreachable", err)
	}
	if err := fm.Reachable(geom.Coord{3}, geom.Coord{1}); !errors.Is(err, routing.ErrUnreachable) {
		t.Fatalf("Reachable(3,1) = %v, want ErrUnreachable", err)
	}
	// Any other destination detours fine over the same fault.
	if _, err := fm.Send(geom.Coord{1}, geom.Coord{3}, 4); err != nil {
		t.Fatalf("1->3 should detour: %v", err)
	}
	if out := fm.Run(10_000); !out.Drained {
		t.Fatalf("outcome %+v", out)
	}
}

// TestTopoShardedStateHash: a sharded direct-link machine reaches the
// byte-identical engine state the serial one does.
func TestTopoShardedStateHash(t *testing.T) {
	for _, tc := range []struct {
		topology string
		shape    geom.Shape
	}{
		{TopologyHyperX, geom.MustShape(4, 4)},
		{TopologyFullMesh, geom.MustShape(12)},
	} {
		t.Run(tc.topology, func(t *testing.T) {
			run := func(shards int) uint64 {
				m := mustMachine(t, Config{Shape: tc.shape, Topology: tc.topology,
					StallThreshold: 64, Shards: shards})
				tc.shape.Enumerate(func(src geom.Coord) bool {
					dst := tc.shape.CoordOf((tc.shape.Index(src) + 5) % tc.shape.Size())
					if dst != src {
						if _, err := m.Send(src, dst, 4); err != nil {
							t.Fatalf("send %v->%v: %v", src, dst, err)
						}
					}
					return true
				})
				if out := m.Run(10_000); !out.Drained {
					t.Fatalf("shards=%d outcome %+v", shards, out)
				}
				return m.Engine().StateHash()
			}
			serial := run(1)
			for _, shards := range []int{2, 4} {
				if h := run(shards); h != serial {
					t.Errorf("shards=%d hash %016x != serial %016x", shards, h, serial)
				}
			}
		})
	}
}
