package core

import (
	"fmt"
	"testing"

	"sr2201/internal/fault"
	"sr2201/internal/geom"
)

// runWorkload drives an identical deterministic workload and returns a
// behavioral fingerprint: cycle count, move count and delivery log.
func runWorkload(t *testing.T, tables bool) string {
	t.Helper()
	m := mustMachine(t, Config{Shape: geom.MustShape(4, 4), StallThreshold: 256})
	if err := m.AddFault(fault.RouterFault(geom.Coord{2, 1})); err != nil {
		t.Fatal(err)
	}
	if tables {
		if err := m.UseCompiledTables(); err != nil {
			t.Fatal(err)
		}
	}
	shape := m.Shape()
	shape.Enumerate(func(src geom.Coord) bool {
		dst := shape.CoordOf((shape.Index(src) + 5) % shape.Size())
		_, _ = m.Send(src, dst, 6)
		return true
	})
	if _, _, err := m.Broadcast(geom.Coord{3, 3}, 6); err != nil {
		t.Fatal(err)
	}
	out := m.Run(100_000)
	if !out.Drained {
		t.Fatalf("tables=%v: %+v", tables, out)
	}
	fp := fmt.Sprintf("cycle=%d moves=%d", m.Cycle(), m.Engine().Moves())
	for _, d := range m.Deliveries() {
		fp += fmt.Sprintf("|%d@%v+%d", d.PacketID, d.At, d.Latency)
	}
	return fp
}

// The compiled-table machine must behave cycle-for-cycle identically to the
// algorithmic one on a mixed workload with a fault.
func TestCompiledTablesBehaviorallyIdentical(t *testing.T) {
	algo := runWorkload(t, false)
	table := runWorkload(t, true)
	if algo != table {
		t.Fatalf("behavior diverged:\nalgorithmic: %s\ntable:       %s", algo, table)
	}
}

func TestUseCompiledTablesValidation(t *testing.T) {
	m := mustMachine(t, Config{Shape: geom.MustShape(3, 3), PivotLastDim: true})
	if err := m.UseCompiledTables(); err == nil {
		t.Error("pivot machine compiled tables")
	}
	m2 := mustMachine(t, Config{Shape: geom.MustShape(3, 3)})
	if _, err := m2.Send(geom.Coord{0, 0}, geom.Coord{2, 2}, 4); err != nil {
		t.Fatal(err)
	}
	if err := m2.UseCompiledTables(); err == nil {
		t.Error("table switch-over accepted on a loaded network")
	}
	m2.Run(10_000)
	if err := m2.UseCompiledTables(); err != nil {
		t.Errorf("switch-over on quiescent network: %v", err)
	}
	// Faults added after switch-over recompile the tables.
	if err := m2.AddFault(fault.RouterFault(geom.Coord{1, 1})); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Send(geom.Coord{0, 1}, geom.Coord{1, 2}, 4); err != nil {
		t.Fatal(err)
	}
	if out := m2.Run(10_000); !out.Drained {
		t.Fatalf("outcome %+v", out)
	}
	last := m2.Deliveries()[len(m2.Deliveries())-1]
	if !last.Detoured {
		t.Error("table-routed detour not flagged")
	}
}
