package core

import (
	"testing"

	"sr2201/internal/fault"
	"sr2201/internal/geom"
)

// The full machine — dimension-order traffic, serialized broadcasts, detours
// and pivot packets all at once — must preserve every kernel conservation
// invariant on every cycle.
func TestMachineInvariantsUnderMixedTraffic(t *testing.T) {
	m := mustMachine(t, Config{Shape: geom.MustShape(4, 4), PivotLastDim: true, StallThreshold: 256})
	if err := m.AddFault(fault.XBFault(geom.LineOf(geom.Coord{2, 0}, 1))); err != nil {
		t.Fatal(err)
	}
	// Mixed workload: normal sends, a pivot send, two broadcasts.
	shape := m.Shape()
	shape.Enumerate(func(src geom.Coord) bool {
		dst := shape.CoordOf((shape.Index(src) + 5) % shape.Size())
		_, _ = m.Send(src, dst, 6) // some refused (faulty column) — fine
		return true
	})
	if _, err := m.Send(geom.Coord{0, 0}, geom.Coord{2, 2}, 6); err != nil {
		t.Fatalf("pivot send: %v", err)
	}
	if _, _, err := m.Broadcast(geom.Coord{1, 1}, 6); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Broadcast(geom.Coord{3, 3}, 6); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if m.Engine().Quiescent() {
			break
		}
		m.Step()
		if err := m.Engine().CheckInvariants(); err != nil {
			t.Fatalf("cycle %d: %v", m.Cycle(), err)
		}
	}
	if !m.Engine().Quiescent() {
		t.Fatal("mixed workload did not drain in 400 cycles")
	}
}

// The same audit on a 3D machine with a router fault and a detour in flight.
func TestMachineInvariants3D(t *testing.T) {
	m := mustMachine(t, Config{Shape: geom.MustShape(3, 3, 3), StallThreshold: 256})
	bad := geom.Coord{1, 1, 1}
	if err := m.AddFault(fault.RouterFault(bad)); err != nil {
		t.Fatal(err)
	}
	// A detour-inducing pair: turn router after dim 0 is the fault.
	if _, err := m.Send(geom.Coord{0, 1, 1}, geom.Coord{1, 2, 1}, 8); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Broadcast(geom.Coord{2, 2, 2}, 8); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if m.Engine().Quiescent() {
			break
		}
		m.Step()
		if err := m.Engine().CheckInvariants(); err != nil {
			t.Fatalf("cycle %d: %v", m.Cycle(), err)
		}
	}
	if !m.Engine().Quiescent() {
		t.Fatal("3D workload did not drain")
	}
	detoured := false
	for _, d := range m.Deliveries() {
		if d.Detoured {
			detoured = true
		}
	}
	if !detoured {
		t.Error("no detoured delivery recorded")
	}
}

// 4-dimensional machines exercise the generalized broadcast and routing
// order end to end.
func TestMachine4D(t *testing.T) {
	m := mustMachine(t, Config{Shape: geom.MustShape(2, 3, 2, 3), StallThreshold: 256})
	if _, err := m.Send(geom.Coord{0, 0, 0, 0}, geom.Coord{1, 2, 1, 2}, 4); err != nil {
		t.Fatal(err)
	}
	if _, covered, err := m.Broadcast(geom.Coord{1, 1, 1, 1}, 4); err != nil {
		t.Fatal(err)
	} else if covered != 36 {
		t.Fatalf("4D broadcast covers %d", covered)
	}
	out := m.Run(50_000)
	if !out.Drained {
		t.Fatalf("outcome %+v", out)
	}
	if len(m.Deliveries()) != 37 {
		t.Errorf("deliveries = %d", len(m.Deliveries()))
	}
	if err := m.Engine().CheckInvariants(); err != nil {
		t.Error(err)
	}
}
