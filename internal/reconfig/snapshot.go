package reconfig

import (
	"fmt"

	"sr2201/internal/checkpoint"
	"sr2201/internal/fault"
	"sr2201/internal/topo"
)

// Manager snapshot/restore. The options and mode are spec (a restore target
// is built with New against the same machine and options — Expect-guarded);
// everything the manager has *decided* is state: the accounting, the deferred
// deadlock-hook error and the event log with its certificates, so a snapshot
// taken mid-reconfiguration restores to the identical event/report text.

const secReconfigMgr = "reconfig.mgr"

func encodeCert(e *checkpoint.Encoder, c topo.Certificate) {
	e.String(c.Scheme)
	e.Int(int64(c.Channels))
	e.Int(int64(c.Edges))
	e.Bool(c.Acyclic)
	e.Uint(uint64(len(c.Cycle)))
	for _, name := range c.Cycle {
		e.String(name)
	}
}

func decodeCert(d *checkpoint.Decoder) topo.Certificate {
	var c topo.Certificate
	c.Scheme = d.String()
	c.Channels = d.IntAsInt()
	c.Edges = d.IntAsInt()
	c.Acyclic = d.Bool()
	n := d.Len(1)
	for i := 0; i < n; i++ {
		c.Cycle = append(c.Cycle, d.String())
	}
	return c
}

// EncodeState appends the manager's dynamic state as the "reconfig.mgr"
// section.
func (mgr *Manager) EncodeState(w *checkpoint.Writer) {
	e := w.Section(secReconfigMgr)
	e.String(mgr.mode)
	e.Int(int64(mgr.opt.DrainBudget))
	e.Bool(mgr.err != nil)
	if mgr.err != nil {
		e.String(mgr.err.Error())
	}
	for _, v := range []int{
		mgr.stats.Attempts, mgr.stats.HotSwaps, mgr.stats.Drains,
		mgr.stats.DrainedPackets, mgr.stats.Fallbacks, mgr.stats.Refusals,
	} {
		e.Int(int64(v))
	}
	e.Uint(uint64(len(mgr.events)))
	for _, ev := range mgr.events {
		e.Int(ev.Cycle)
		e.String(ev.Trigger)
		fault.EncodeFault(e, ev.Fault)
		e.String(ev.Outcome)
		e.String(ev.Reason)
		e.Uint(ev.Epoch)
		e.String(ev.Scheme)
		e.Int(int64(ev.InFlight))
		e.Int(int64(ev.Drained))
		e.Uint(uint64(len(ev.Refusals)))
		for _, c := range ev.Refusals {
			encodeCert(e, c)
		}
		e.Uint(uint64(len(ev.Errors)))
		for _, s := range ev.Errors {
			e.String(s)
		}
		encodeCert(e, ev.Candidate)
		encodeCert(e, ev.Union)
	}
}

// DecodeState restores the "reconfig.mgr" section into this manager, which
// must have been built with New against the same machine config and options.
func (mgr *Manager) DecodeState(r *checkpoint.Reader) error {
	d, err := r.Section(secReconfigMgr)
	if err != nil {
		return err
	}
	if got := d.String(); d.Err() == nil && got != mgr.mode {
		d.Fail(fmt.Sprintf("reconfig trigger mode mismatch: snapshot has %q, target has %q", got, mgr.mode))
	}
	d.Expect(int64(mgr.opt.DrainBudget), "reconfig drain budget")
	var deferred error
	if d.Bool() {
		deferred = &deferredError{d.String()}
	}
	var stats Stats
	for _, p := range []*int{
		&stats.Attempts, &stats.HotSwaps, &stats.Drains,
		&stats.DrainedPackets, &stats.Fallbacks, &stats.Refusals,
	} {
		*p = d.IntAsInt()
	}
	n := d.Len(16)
	events := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		var ev Event
		ev.Cycle = d.Int()
		ev.Trigger = d.String()
		ev.Fault = fault.DecodeFault(d)
		ev.Outcome = d.String()
		ev.Reason = d.String()
		ev.Epoch = d.Uint()
		ev.Scheme = d.String()
		ev.InFlight = d.IntAsInt()
		ev.Drained = d.IntAsInt()
		nr := d.Len(4)
		for j := 0; j < nr; j++ {
			ev.Refusals = append(ev.Refusals, decodeCert(d))
		}
		ne := d.Len(1)
		for j := 0; j < ne; j++ {
			ev.Errors = append(ev.Errors, d.String())
		}
		ev.Candidate = decodeCert(d)
		ev.Union = decodeCert(d)
		events = append(events, ev)
	}
	if err := d.Finish(); err != nil {
		return err
	}
	mgr.err = deferred
	mgr.stats = stats
	mgr.events = events
	return nil
}

// deferredError restores Err across a snapshot boundary as plain text.
type deferredError struct{ msg string }

func (e *deferredError) Error() string { return e.msg }
