package reconfig_test

import (
	"reflect"
	"strings"
	"testing"

	"sr2201/internal/checkpoint"
	"sr2201/internal/core"
	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/inject"
	"sr2201/internal/reconfig"
	"sr2201/internal/recovery"
)

// newRig builds a 4x4 machine with online reconfiguration in the given mode.
// separate selects the paper's deadlock-prone Fig. 9 variant (D-XB != S-XB).
func newRig(t *testing.T, separate bool, mode string, opt reconfig.Options) (*core.Machine, *reconfig.Manager) {
	t.Helper()
	cfg := core.Config{
		Shape:          geom.MustShape(4, 4),
		SXB:            geom.Coord{0, 0},
		StallThreshold: 256,
		Reconfig:       mode,
	}
	if separate {
		cfg.DXB = geom.Coord{0, 3}
		cfg.DXBSeparate = true
	}
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := reconfig.New(m, opt)
	if err != nil {
		t.Fatal(err)
	}
	return m, mgr
}

func drainMachine(t *testing.T, m *core.Machine, budget int) {
	t.Helper()
	for i := 0; i < budget; i++ {
		if m.Engine().Quiescent() {
			return
		}
		m.Step()
	}
	t.Fatalf("machine did not drain within %d cycles", budget)
}

// TestNewNeedsReconfigMode pins the constructor guard: a manager cannot
// attach to a machine built without Config.Reconfig.
func TestNewNeedsReconfigMode(t *testing.T) {
	m, err := core.NewMachine(core.Config{Shape: geom.MustShape(4, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reconfig.New(m, reconfig.Options{}); err == nil {
		t.Fatal("New accepted a machine without Config.Reconfig")
	}
}

// TestHotSwapOnFault lands a mid-run router fault on the unified machine
// with one unicast in flight away from the dead router: the recompiled
// table's union graph is acyclic, so the swap commits without touching a
// packet, and the in-flight packet still delivers under its old generation.
func TestHotSwapOnFault(t *testing.T) {
	m, mgr := newRig(t, false, core.ReconfigOnFault, reconfig.Options{})
	if _, err := m.Send(geom.Coord{0, 0}, geom.Coord{3, 3}, 24); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		m.Step()
	}
	lost, err := m.FailNow(fault.RouterFault(geom.Coord{2, 1}))
	if err != nil {
		t.Fatal(err)
	}
	if len(lost) != 0 {
		t.Fatalf("fault away from the route killed %d packets", len(lost))
	}
	evs := mgr.Events()
	if len(evs) != 1 {
		t.Fatalf("%d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Outcome != reconfig.OutcomeHotSwap || ev.Epoch != 1 || ev.Drained != 0 {
		t.Fatalf("unexpected event %+v, want hot swap to epoch 1", ev)
	}
	if !ev.Union.Acyclic || ev.Union.Channels == 0 {
		t.Fatalf("hot swap without an acyclic union certificate: %+v", ev.Union)
	}
	if ev.InFlight == 0 {
		t.Fatal("hot swap saw no in-flight packets; scenario lost its point")
	}
	if m.Epoch() != 1 {
		t.Fatalf("machine epoch %d, want 1", m.Epoch())
	}
	if n := len(m.Generations()); n != 2 {
		t.Fatalf("%d generations, want 2 (retiring pinned by the in-flight packet)", n)
	}
	st := mgr.Stats()
	if st.Attempts != 1 || st.HotSwaps != 1 || st.Drains != 0 || st.Fallbacks != 0 {
		t.Fatalf("stats %+v do not record one hot swap", st)
	}
	drainMachine(t, m, 10_000)
	if err := m.Engine().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := len(m.Deliveries()); got != 1 {
		t.Fatalf("%d deliveries, want 1 (the old-generation packet)", got)
	}
}

// TestDrainOnCyclicUnion lands the fault on the separate-D-XB variant with
// both traffic classes in flight: the separate recompile is refused with a
// concrete cycle witness, the unified candidate is admissible but its union
// with the retiring generation's edges is cyclic (the Fig. 9 interaction), so
// the manager drains every pre-swap packet within budget and commits.
func TestDrainOnCyclicUnion(t *testing.T) {
	m, mgr := newRig(t, true, core.ReconfigOnFault, reconfig.Options{})
	var drained []core.Lost
	mgr.OnDrained(func(cycle int64, l core.Lost) bool {
		drained = append(drained, l)
		return false
	})
	if _, err := m.Send(geom.Coord{0, 0}, geom.Coord{3, 3}, 24); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Broadcast(geom.Coord{3, 2}, 24); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		m.Step()
	}
	if _, err := m.FailNow(fault.RouterFault(geom.Coord{2, 1})); err != nil {
		t.Fatal(err)
	}
	evs := mgr.Events()
	if len(evs) != 1 {
		t.Fatalf("%d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Outcome != reconfig.OutcomeDrain {
		t.Fatalf("outcome %q (reason %q), want drain", ev.Outcome, ev.Reason)
	}
	if len(ev.Refusals) != 1 || ev.Refusals[0].Acyclic || len(ev.Refusals[0].Cycle) == 0 {
		t.Fatalf("separate recompile was not refused with a cycle witness: %+v", ev.Refusals)
	}
	if !strings.Contains(ev.Refusals[0].Scheme, "separate-dxb") {
		t.Fatalf("refusal names scheme %q, want the separate-D-XB recompile", ev.Refusals[0].Scheme)
	}
	if !strings.Contains(ev.Scheme, "unified") {
		t.Fatalf("committed scheme %q, want the unified degradation", ev.Scheme)
	}
	if ev.Union.Acyclic || len(ev.Union.Cycle) == 0 {
		t.Fatalf("drain without a cyclic union witness: %+v", ev.Union)
	}
	if ev.Drained != ev.InFlight || ev.Drained != len(drained) {
		t.Fatalf("drained %d of %d in flight, callback saw %d", ev.Drained, ev.InFlight, len(drained))
	}
	for _, l := range drained {
		if !l.Drained {
			t.Fatalf("drained packet %d not marked Drained: %+v", l.PacketID, l)
		}
	}
	if m.Epoch() != 1 || len(m.Generations()) != 1 {
		t.Fatalf("epoch %d with %d generations; a full drain must collapse to the committed table", m.Epoch(), len(m.Generations()))
	}
	drainMachine(t, m, 10_000)
	if err := m.Engine().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFallbackOnDrainBudget repeats the cyclic-union scenario with a budget
// below the in-flight population: the manager must degrade to
// rebuild-in-place instead of purging past its bound.
func TestFallbackOnDrainBudget(t *testing.T) {
	m, mgr := newRig(t, true, core.ReconfigOnFault, reconfig.Options{DrainBudget: 1})
	if _, err := m.Send(geom.Coord{0, 0}, geom.Coord{3, 3}, 24); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Broadcast(geom.Coord{3, 2}, 24); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		m.Step()
	}
	if _, err := m.FailNow(fault.RouterFault(geom.Coord{2, 1})); err != nil {
		t.Fatal(err)
	}
	evs := mgr.Events()
	if len(evs) != 1 || evs[0].Outcome != reconfig.OutcomeFallback {
		t.Fatalf("events %+v, want one fallback", evs)
	}
	if !strings.Contains(evs[0].Reason, "drain budget exceeded") {
		t.Fatalf("fallback reason %q does not name the budget", evs[0].Reason)
	}
	if m.Epoch() != 0 || len(m.Generations()) != 1 {
		t.Fatalf("fallback advanced the epoch (%d) or kept %d generations", m.Epoch(), len(m.Generations()))
	}
	if st := mgr.Stats(); st.Fallbacks != 1 || st.DrainedPackets != 0 {
		t.Fatalf("stats %+v do not record a packet-free fallback", st)
	}
}

// TestDeadlockTriggeredSwap runs the full Fig. 9 deadlock under mode
// "deadlock": the preset-fault run deadlocks once, the supervisor purges the
// victim and hands off to the manager, which refuses the separate recompile
// (witness), hot-swaps to the unified table, and the run drains with zero
// further recoveries.
func TestDeadlockTriggeredSwap(t *testing.T) {
	deadlocked := false
	for off := 0; off <= 10 && !deadlocked; off++ {
		m, mgr := newRig(t, true, core.ReconfigOnDeadlock, reconfig.Options{})
		if err := m.AddFault(fault.RouterFault(geom.Coord{2, 1})); err != nil {
			t.Fatal(err)
		}
		inj, err := inject.New(m, nil, inject.Options{Retransmit: true, RetryAfter: 32, StallThreshold: 256})
		if err != nil {
			t.Fatal(err)
		}
		sup := recovery.New(m, inj, recovery.Options{Enabled: true, StallThreshold: 256})
		sup.OnDeadlock(mgr.OnDeadlock)
		mgr.OnDrained(inj.LoseDrained)

		if _, err := m.Send(geom.Coord{0, 1}, geom.Coord{2, 2}, 24); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < off; i++ {
			m.Step()
		}
		if _, _, err := m.Broadcast(geom.Coord{3, 2}, 24); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200_000; i++ {
			if m.Engine().Quiescent() && !inj.Pending() {
				break
			}
			if sup.Verdict().Decided {
				t.Fatalf("off %d: verdict %+v instead of reconfiguration", off, sup.Verdict())
			}
			m.Step()
		}
		if err := mgr.Err(); err != nil {
			t.Fatalf("off %d: deferred manager error: %v", off, err)
		}
		if sup.Stats().Recoveries == 0 {
			continue // this offset never deadlocked
		}
		deadlocked = true
		if sup.Stats().Recoveries != 1 {
			t.Fatalf("off %d: %d recoveries, want exactly 1 (pre-swap)", off, sup.Stats().Recoveries)
		}
		evs := mgr.Events()
		if len(evs) != 1 || evs[0].Trigger != reconfig.TriggerDeadlock {
			t.Fatalf("off %d: events %+v, want one deadlock-triggered attempt", off, evs)
		}
		if len(evs[0].Refusals) != 1 || len(evs[0].Refusals[0].Cycle) == 0 {
			t.Fatalf("off %d: separate recompile not refused with witness: %+v", off, evs[0].Refusals)
		}
		if evs[0].Outcome == reconfig.OutcomeFallback {
			t.Fatalf("off %d: attempt fell back (%s)", off, evs[0].Reason)
		}
		// Exactly-once delivery: 15 broadcast copies + the recovered p2p.
		if got := len(m.Deliveries()); got != 16 {
			t.Fatalf("off %d: %d deliveries, want 16", off, got)
		}
		if err := m.Engine().CheckInvariants(); err != nil {
			t.Fatalf("off %d: %v", off, err)
		}
	}
	if !deadlocked {
		t.Fatal("no offset deadlocked; the deadlock trigger is untested")
	}
}

// TestFaultModeSkipsDeadlockTrigger pins mode isolation: under mode "fault"
// the deadlock hand-off is a no-op and under mode "deadlock" a mid-run fault
// rebuilds in place without recording an attempt.
func TestFaultModeSkipsDeadlockTrigger(t *testing.T) {
	_, mgr := newRig(t, false, core.ReconfigOnFault, reconfig.Options{})
	mgr.OnDeadlock(42)
	if len(mgr.Events()) != 0 || mgr.Stats().Attempts != 0 {
		t.Fatalf("mode %q acted on a deadlock trigger: %+v", core.ReconfigOnFault, mgr.Events())
	}

	m, mgr := newRig(t, false, core.ReconfigOnDeadlock, reconfig.Options{})
	if _, err := m.FailNow(fault.RouterFault(geom.Coord{2, 1})); err != nil {
		t.Fatal(err)
	}
	if len(mgr.Events()) != 0 || m.Epoch() != 0 {
		t.Fatalf("mode %q attempted reconfiguration on a fault: %+v", core.ReconfigOnDeadlock, mgr.Events())
	}
}

// TestSnapshotRoundTrip encodes the manager mid-history and restores it into
// a fresh rig: events (certificates included), stats and rendered lines must
// survive byte-exactly, and option mismatches must be refused.
func TestSnapshotRoundTrip(t *testing.T) {
	m, mgr := newRig(t, true, core.ReconfigOnFault, reconfig.Options{})
	mgr.OnDrained(func(int64, core.Lost) bool { return false })
	if _, err := m.Send(geom.Coord{0, 0}, geom.Coord{3, 3}, 24); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Broadcast(geom.Coord{3, 2}, 24); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		m.Step()
	}
	if _, err := m.FailNow(fault.RouterFault(geom.Coord{2, 1})); err != nil {
		t.Fatal(err)
	}
	if len(mgr.Events()) == 0 {
		t.Fatal("scenario recorded no events")
	}

	w := checkpoint.NewWriter()
	mgr.EncodeState(w)
	snap := w.Bytes()

	_, res := newRig(t, true, core.ReconfigOnFault, reconfig.Options{})
	r, err := checkpoint.NewReader(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.DecodeState(r); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Events(), mgr.Events()) {
		t.Fatalf("events diverged after restore:\n%+v\nvs\n%+v", res.Events(), mgr.Events())
	}
	if res.Stats() != mgr.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", res.Stats(), mgr.Stats())
	}
	for i := range mgr.Events() {
		if got, want := res.Events()[i].String(), mgr.Events()[i].String(); got != want {
			t.Fatalf("event %d renders %q after restore, want %q", i, got, want)
		}
	}

	_, other := newRig(t, true, core.ReconfigOnFault, reconfig.Options{DrainBudget: 3})
	r2, err := checkpoint.NewReader(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.DecodeState(r2); err == nil {
		t.Fatal("restore under a different drain budget succeeded")
	}
}
