// Package reconfig performs online routing-table reconfiguration: when a
// mid-run fault lands (or a confirmed deadlock implicates a faulted
// resource), the Manager recompiles the routing policy around the updated
// fault set and swaps it into the live machine without draining the network.
// In-flight packets keep their old routes until their next routing decision —
// each header carries the epoch it was injected under, and the machine's
// generation list maps epochs to tables — so the swap itself moves no flits.
//
// The transition window is proved safe before the swap commits: the Manager
// certifies the *union* dependence graph — the candidate table's full CDG
// plus every edge a retiring generation's in-flight packets can still hold or
// wait on, restricted to still-live channels and to the traffic classes
// actually in flight — acyclic through the same topo prover that certifies
// every static scheme. The degradation ladder when the proof fails:
//
//  1. statically cyclic candidates are refused outright, each with a concrete
//     cycle witness recorded on the event;
//  2. a statically admissible candidate whose union graph is cyclic triggers
//     a bounded drain: if the in-flight population fits the drain budget,
//     every pre-swap packet is purged (and handed to inject's retransmission
//     machinery via OnDrained), after which the union collapses to the
//     candidate's own certified graph and the swap commits;
//  3. otherwise the Manager falls back to Machine.RebuildPolicy — the PR 5
//     swap-in-place whose transition deadlocks are the recovery supervisor's
//     to purge and retransmit.
//
// The drain scope is deliberately *all* old-epoch packets, not just the
// classes on the offending cycle: a retiring normal-class packet that meets
// the new fault mutates to the detour class mid-flight, so no class
// subset of a retiring generation is closed under routing. (Class filtering
// is still sound for the union *proof*, which asks what edges can be held,
// per class, by the packets currently in flight — the pinned generation
// snapshot includes each class's detour continuations.)
//
// Every decision runs synchronously inside a deterministic hook (FailNow's
// reconfigurer or the recovery supervisor's PostCycle hand-off), so runs stay
// byte-identical across -parallel widths and snapshot/restore.
package reconfig

import (
	"fmt"
	"sort"

	"sr2201/internal/cdg"
	"sr2201/internal/core"
	"sr2201/internal/fault"
	"sr2201/internal/flit"
	"sr2201/internal/routing"
	"sr2201/internal/topo"
)

// DefaultDrainBudget bounds how many in-flight packets a cyclic transition
// may purge before the Manager prefers the rebuild-in-place fallback.
const DefaultDrainBudget = 16

// Trigger values for Event.Trigger.
const (
	// TriggerFault marks a reconfiguration attempted from the machine's
	// fault hook (a mid-run FailNow).
	TriggerFault = "fault"
	// TriggerDeadlock marks a reconfiguration attempted from the recovery
	// supervisor's hand-off after a confirmed deadlock was dissolved.
	TriggerDeadlock = "deadlock"
)

// Outcome values for Event.Outcome.
const (
	// OutcomeHotSwap is the clean case: union graph acyclic, table swapped
	// with zero packets disturbed.
	OutcomeHotSwap = "hot-swap"
	// OutcomeDrain means the union graph was cyclic but the in-flight
	// population fit the budget: every pre-swap packet was purged and the
	// swap committed.
	OutcomeDrain = "drain"
	// OutcomeFallback means no admissible transition existed (every
	// candidate statically cyclic or unbuildable, or the drain budget was
	// exceeded) and the Manager degraded to Machine.RebuildPolicy.
	OutcomeFallback = "fallback"
)

// Options tune the reconfiguration manager.
type Options struct {
	// DrainBudget caps how many in-flight packets a cyclic transition may
	// purge; beyond it the Manager falls back to rebuild-in-place. <= 0
	// selects DefaultDrainBudget.
	DrainBudget int
}

// Normalize applies the documented defaults in place.
func (o *Options) Normalize() {
	if o.DrainBudget <= 0 {
		o.DrainBudget = DefaultDrainBudget
	}
}

// Event records one reconfiguration attempt, whatever its outcome.
type Event struct {
	// Cycle is the simulation time of the attempt.
	Cycle int64
	// Trigger is TriggerFault or TriggerDeadlock.
	Trigger string
	// Fault is the fault that fired the attempt (zero for TriggerDeadlock).
	Fault fault.Fault
	// Outcome is OutcomeHotSwap, OutcomeDrain or OutcomeFallback.
	Outcome string
	// Reason explains a fallback ("no admissible candidate", "drain budget
	// exceeded ..."); empty otherwise.
	Reason string
	// Epoch is the committed generation's epoch stamp (hot-swap and drain).
	Epoch uint64
	// Scheme names the committed candidate (hot-swap and drain).
	Scheme string
	// InFlight counts the packets resident in the network at decision time.
	InFlight int
	// Drained counts the packets purged by a bounded drain.
	Drained int
	// Refusals holds the static certificate of every candidate refused for
	// a concrete dependence cycle, in trial order. Each carries its cycle
	// witness.
	Refusals []topo.Certificate
	// Errors lists candidates that could not even be built against the
	// fault set (no effective line available), in trial order.
	Errors []string
	// Candidate is the committed candidate's static certificate (zero
	// value when the attempt fell back before choosing one).
	Candidate topo.Certificate
	// Union is the transition certificate: the candidate's CDG plus all
	// live retiring edges. Acyclic for a hot swap; for a drain it is the
	// cyclic certificate (with witness) that forced the purge.
	Union topo.Certificate
}

// String renders the event as one line, used verbatim by the single-run
// report.
func (ev Event) String() string {
	trig := ev.Trigger
	if ev.Trigger == TriggerFault {
		trig = "fault " + ev.Fault.String()
	}
	switch ev.Outcome {
	case OutcomeHotSwap:
		return fmt.Sprintf("reconfig @ cycle %d (%s): hot swap to epoch %d [%s], %d in flight, union %d channels %d edges acyclic",
			ev.Cycle, trig, ev.Epoch, ev.Scheme, ev.InFlight, ev.Union.Channels, ev.Union.Edges)
	case OutcomeDrain:
		return fmt.Sprintf("reconfig @ cycle %d (%s): union cyclic (length %d), drained %d of %d in flight, swap to epoch %d [%s]",
			ev.Cycle, trig, len(ev.Union.Cycle), ev.Drained, ev.InFlight, ev.Epoch, ev.Scheme)
	default:
		return fmt.Sprintf("reconfig @ cycle %d (%s): fell back to rebuild-in-place (%s)",
			ev.Cycle, trig, ev.Reason)
	}
}

// Stats aggregates the Manager's accounting.
type Stats struct {
	// Attempts counts reconfiguration attempts (one per trigger firing).
	Attempts int
	// HotSwaps counts attempts committed without disturbing a packet.
	HotSwaps int
	// Drains counts attempts committed after a bounded drain.
	Drains int
	// DrainedPackets totals the packets purged across all drains.
	DrainedPackets int
	// Fallbacks counts attempts degraded to rebuild-in-place.
	Fallbacks int
	// Refusals counts statically cyclic candidates refused across all
	// attempts.
	Refusals int
}

// Manager drives online reconfiguration for one machine. Build it with New
// (which installs the machine's fault hook), wire OnDeadlock into the
// recovery supervisor when the mode covers deadlocks, and point OnDrained at
// the injector's drain accounting so purged packets are retransmitted.
type Manager struct {
	m    *core.Machine
	mode string
	opt  Options

	onDrained func(cycle int64, l core.Lost) bool
	onEvent   func(Event)
	events    []Event
	stats     Stats
	err       error
}

// New attaches a reconfiguration manager to a machine built with
// Config.Reconfig set, and installs itself as the machine's reconfigurer:
// from now on FailNow defers its policy update to the manager. Options are
// normalized with the documented defaults.
func New(m *core.Machine, opt Options) (*Manager, error) {
	mode := m.ReconfigMode()
	if mode == "" {
		return nil, fmt.Errorf("reconfig: machine was built without Config.Reconfig")
	}
	opt.Normalize()
	mgr := &Manager{m: m, mode: mode, opt: opt}
	m.SetReconfigurer(mgr.onFault)
	return mgr, nil
}

// CoversFault reports whether the machine's mode reconfigures on mid-run
// faults.
func (mgr *Manager) CoversFault() bool {
	return mgr.mode == core.ReconfigOnFault || mgr.mode == core.ReconfigBoth
}

// CoversDeadlock reports whether the machine's mode reconfigures on
// confirmed deadlocks.
func (mgr *Manager) CoversDeadlock() bool {
	return mgr.mode == core.ReconfigOnDeadlock || mgr.mode == core.ReconfigBoth
}

// OnDrained registers the sink for packets purged by a bounded drain —
// normally inject.Injector.LoseDrained, which schedules the retransmission
// and keeps drain losses apart from fault casualties and recovery victims.
// Must be deterministic if the run is to stay so.
func (mgr *Manager) OnDrained(fn func(cycle int64, l core.Lost) bool) { mgr.onDrained = fn }

// OnEvent registers a callback invoked synchronously for every
// reconfiguration event, after the outcome is committed. Must be
// deterministic if the run is to stay so.
func (mgr *Manager) OnEvent(fn func(Event)) { mgr.onEvent = fn }

// Events returns the reconfiguration attempts so far, in order.
func (mgr *Manager) Events() []Event { return mgr.events }

// Stats returns a snapshot of the accounting.
func (mgr *Manager) Stats() Stats { return mgr.stats }

// Options returns the manager's normalized options.
func (mgr *Manager) Options() Options { return mgr.opt }

// Err reports a deferred failure from the deadlock hand-off (whose hook
// signature cannot propagate one). Campaign steppers poll it like the
// injector's Err.
func (mgr *Manager) Err() error { return mgr.err }

// onFault is the machine's reconfigurer hook: FailNow calls it after the
// fault set is updated and the dead switch's packets are purged.
func (mgr *Manager) onFault(f fault.Fault) error {
	if !mgr.CoversFault() {
		// The mode keeps PR 5 semantics for faults: rebuild in place for all
		// traffic, no event recorded (nothing was attempted).
		return mgr.m.RebuildPolicy()
	}
	return mgr.attempt(TriggerFault, f)
}

// OnDeadlock is the recovery supervisor's hand-off: called after a confirmed
// deadlock's victim was purged and its retransmission scheduled. Matches
// recovery.Supervisor.OnDeadlock's hook signature; failures are deferred to
// Err.
func (mgr *Manager) OnDeadlock(cycle int64) {
	if !mgr.CoversDeadlock() || mgr.err != nil {
		return
	}
	if err := mgr.attempt(TriggerDeadlock, fault.Fault{}); err != nil {
		mgr.err = fmt.Errorf("reconfig: deadlock-triggered attempt at cycle %d: %w", cycle, err)
	}
}

// attempt runs one full reconfiguration decision. It returns an error only
// for infrastructure failures (a fallback rebuild that cannot produce any
// policy); every routing-level refusal is an outcome, not an error.
func (mgr *Manager) attempt(trigger string, f fault.Fault) error {
	m := mgr.m
	mgr.stats.Attempts++
	ev := Event{Cycle: m.Cycle(), Trigger: trigger, Fault: f}

	// Candidate tables, most-capable first: the current variant, then — when
	// that variant still separates the D-XB — the unified degradation.
	variants := []bool{m.VariantSeparate()}
	if m.VariantSeparate() {
		variants = append(variants, false)
	}
	var (
		chosen    *routing.Policy
		chosenSep bool
	)
	for _, sep := range variants {
		p, err := routing.New(m.RoutingConfig(sep))
		if err != nil {
			ev.Errors = append(ev.Errors, err.Error())
			continue
		}
		cert, err := staticCertificate(p, m)
		if err != nil {
			ev.Errors = append(ev.Errors, err.Error())
			continue
		}
		if !cert.Acyclic {
			ev.Refusals = append(ev.Refusals, cert)
			mgr.stats.Refusals++
			continue
		}
		chosen, chosenSep, ev.Candidate = p, sep, cert
		break
	}
	if chosen == nil {
		return mgr.fallback(ev, "no admissible candidate")
	}
	ev.Scheme = ev.Candidate.Scheme

	// The union proof: candidate CDG plus every live retiring edge of the
	// classes actually in flight.
	hdrs, unknown := m.Engine().InFlightHeaders()
	ev.InFlight = len(hdrs) + len(unknown)
	retiring, err := mgr.retiringEdges(hdrs, len(unknown) > 0)
	if err != nil {
		return mgr.fallback(ev, fmt.Sprintf("retiring-edge snapshot failed: %v", err))
	}
	union, err := cdg.UnionCertificate(chosen, m.Shape(), retiring, ev.Candidate.Scheme+"+transition")
	if err != nil {
		return mgr.fallback(ev, fmt.Sprintf("union certificate failed: %v", err))
	}
	ev.Union = union
	if union.Acyclic {
		if err := m.CommitGeneration(chosen, chosenSep); err != nil {
			return fmt.Errorf("reconfig: committing generation: %w", err)
		}
		ev.Outcome, ev.Epoch = OutcomeHotSwap, m.Epoch()
		mgr.stats.HotSwaps++
		mgr.record(ev)
		return nil
	}

	// Cyclic transition: bounded drain of *every* pre-swap packet (see the
	// package comment for why no subset is closed under routing), then the
	// union collapses to the candidate's own certified graph.
	if ev.InFlight > mgr.opt.DrainBudget {
		return mgr.fallback(ev, fmt.Sprintf("drain budget exceeded (%d in flight > %d)", ev.InFlight, mgr.opt.DrainBudget))
	}
	ids := make([]uint64, 0, ev.InFlight)
	for _, h := range hdrs {
		ids = append(ids, h.PacketID)
	}
	ids = append(ids, unknown...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		l, ok := m.PurgePacket(id)
		if !ok {
			continue
		}
		l.Drained = true
		ev.Drained++
		mgr.stats.DrainedPackets++
		if mgr.onDrained != nil {
			mgr.onDrained(ev.Cycle, l)
		}
	}
	if err := m.CommitGeneration(chosen, chosenSep); err != nil {
		return fmt.Errorf("reconfig: committing generation after drain: %w", err)
	}
	ev.Outcome, ev.Epoch = OutcomeDrain, m.Epoch()
	mgr.stats.Drains++
	mgr.record(ev)
	return nil
}

// fallback degrades the attempt to the PR 5 swap-in-place and records it.
func (mgr *Manager) fallback(ev Event, reason string) error {
	ev.Outcome, ev.Reason = OutcomeFallback, reason
	mgr.stats.Fallbacks++
	if err := mgr.m.RebuildPolicy(); err != nil {
		return fmt.Errorf("reconfig: fallback rebuild: %w", err)
	}
	mgr.record(ev)
	return nil
}

func (mgr *Manager) record(ev Event) {
	mgr.events = append(mgr.events, ev)
	if mgr.onEvent != nil {
		mgr.onEvent(ev)
	}
}

// staticCertificate certifies a candidate policy's own dependence graph —
// the same construction as mdxcert's static proof.
func staticCertificate(p *routing.Policy, m *core.Machine) (topo.Certificate, error) {
	b := topo.NewBuilder()
	if err := cdg.RegisterDependences(b, p, m.Shape()); err != nil {
		return topo.Certificate{}, err
	}
	return b.Certificate(cdg.SchemeName(p, m.Shape())), nil
}

// retiringEdges assembles the old-table half of the union graph: for every
// generation with traffic in flight, the pinned reconstruction's contracted
// edges of the classes that traffic can occupy, restricted to still-live
// channels. A packet whose header flit is unlocatable could belong to any
// generation and either class, so it pins everything.
func (mgr *Manager) retiringEdges(hdrs []*flit.Header, anyUnknown bool) ([][2]string, error) {
	m := mgr.m
	gens := m.Generations()
	type classes struct{ unicast, broadcast bool }
	cl := make([]classes, len(gens))
	if anyUnknown {
		for i := range cl {
			cl[i] = classes{unicast: true, broadcast: true}
		}
	}
	for _, h := range hdrs {
		gi := generationIndex(gens, h.Epoch)
		switch h.RC {
		case flit.RCNormal, flit.RCDetour:
			cl[gi].unicast = true
		case flit.RCBroadcastRequest, flit.RCBroadcast:
			cl[gi].broadcast = true
		}
	}
	var retiring [][2]string
	for i, g := range gens {
		if !cl[i].unicast && !cl[i].broadcast {
			continue
		}
		pinned, err := routing.NewPinned(m.RoutingConfig(g.Separate), g.SEff, g.DEff)
		if err != nil {
			return nil, fmt.Errorf("pinning generation %d: %w", i, err)
		}
		es, err := cdg.SnapshotEdges(pinned, m.Shape())
		if err != nil {
			return nil, fmt.Errorf("snapshotting generation %d: %w", i, err)
		}
		if cl[i].unicast {
			retiring = append(retiring, es.LiveEdges(es.UnicastEdges, m.Faults())...)
		}
		if cl[i].broadcast {
			retiring = append(retiring, es.LiveEdges(es.BroadcastEdges, m.Faults())...)
		}
	}
	return retiring, nil
}

// generationIndex mirrors the machine's epoch-to-generation mapping: the last
// generation whose boundary does not exceed the stamp.
func generationIndex(gens []routing.Generation, epoch uint64) int {
	idx := 0
	for i, g := range gens {
		if g.Boundary > epoch {
			break
		}
		idx = i
	}
	return idx
}
