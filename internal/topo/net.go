package topo

import (
	"fmt"

	"sr2201/internal/engine"
	"sr2201/internal/flit"
	"sr2201/internal/geom"
)

// This file builds the direct-link lattice network shared by the HyperX
// and full-mesh schemes: one router per lattice point, each paired with a
// PE, and within every axis-aligned line a direct bidirectional link
// between every pair of routers (per-dimension all-to-all). The full mesh
// is the 1-dimensional instance; HyperX generalizes it to d dimensions —
// the direct descendant of the paper's MD crossbar with the shared
// per-line crossbar switch replaced by point-to-point links.
//
// Port conventions (the contract every Router scheme relies on):
//
//	router at coordinate c: for dim k, one port per other value v ≠ c[k]
//	  on c's dim-k line, laid out dimension-major and by ascending v —
//	  PortOf/PortTarget map between (dim, v) and port index;
//	port PEPort(shape) (the last port) ↔ the PE at c;
//	PE at c: port 0 ↔ its router's PE port.

// RouterMeta is attached to router nodes.
type RouterMeta struct {
	Coord geom.Coord
}

// PEMeta is attached to PE endpoint nodes.
type PEMeta struct {
	Coord geom.Coord
}

// Router is a Scheme that also forwards packets hop by hop on the
// direct-link lattice: the dynamic counterpart of its registered
// dependence graph. Route must be deterministic and side-effect-free —
// with sharded execution it is called from shard goroutines.
type Router interface {
	Scheme
	// Shape is the lattice shape the scheme routes over.
	Shape() geom.Shape
	// Route decides the forwarding at the router at c for header h
	// arriving on port in.
	Route(c geom.Coord, in int, h *flit.Header) (engine.Decision, error)
}

// PortCount returns the number of ports on every router: one per
// same-line neighbor across all dimensions, plus the PE port.
func PortCount(shape geom.Shape) int {
	total := 1
	for _, e := range shape {
		total += e - 1
	}
	return total
}

// PEPort returns the router port wired to the local PE (the last port).
func PEPort(shape geom.Shape) int { return PortCount(shape) - 1 }

// PortOf returns the port on the router at c that leads to the router at
// value v of dimension dim on c's line. Panics if v == c[dim]: there is
// no self-link.
func PortOf(shape geom.Shape, c geom.Coord, dim, v int) int {
	if v == c[dim] {
		panic(fmt.Sprintf("topo: no self-link at %s dim %d", c, dim))
	}
	base := 0
	for k := 0; k < dim; k++ {
		base += shape[k] - 1
	}
	if v < c[dim] {
		return base + v
	}
	return base + v - 1
}

// PortTarget inverts PortOf: the (dim, value) a router port leads to.
// Panics on the PE port or out-of-range ports.
func PortTarget(shape geom.Shape, c geom.Coord, port int) (dim, v int) {
	rel := port
	for k, e := range shape {
		if rel < e-1 {
			if rel >= c[k] {
				rel++
			}
			return k, rel
		}
		rel -= e - 1
	}
	panic(fmt.Sprintf("topo: port %d of router %s is not a link port", port, c))
}

// Net is a fully wired direct-link lattice network.
type Net struct {
	Shape geom.Shape
	Eng   *engine.Engine

	pes     []*engine.Node // by Shape.Index
	routers []*engine.Node // by Shape.Index

	scheme Router
}

// NewNet constructs PEs, routers, and per-dimension all-to-all links for
// the given shape. A Router scheme must be installed with SetScheme
// before any packet is injected.
func NewNet(eng *engine.Engine, shape geom.Shape) *Net {
	net := &Net{Shape: shape, Eng: eng}
	d := shape.Dims()
	ports := PortCount(shape)
	pePort := PEPort(shape)

	route := func(n *engine.Node, in int, h *flit.Header) (engine.Decision, error) {
		if net.scheme == nil {
			return engine.Decision{}, fmt.Errorf("topo: no routing scheme installed")
		}
		return net.scheme.Route(n.Meta.(RouterMeta).Coord, in, h)
	}

	n := shape.Size()
	net.pes = make([]*engine.Node, n)
	net.routers = make([]*engine.Node, n)
	for i := 0; i < n; i++ {
		c := shape.CoordOf(i)
		net.pes[i] = eng.AddEndpoint("PE"+c.In(d), PEMeta{Coord: c})
		net.routers[i] = eng.AddSwitch("R"+c.In(d), ports, route, RouterMeta{Coord: c})
		eng.Connect(net.pes[i], 0, net.routers[i], pePort)
	}

	// Direct links: within each line, every pair of routers, wired once
	// per unordered pair (Connect is bidirectional).
	shape.Enumerate(func(c geom.Coord) bool {
		for dim := 0; dim < d; dim++ {
			for v := c[dim] + 1; v < shape[dim]; v++ {
				peer := c
				peer[dim] = v
				eng.Connect(net.Router(c), PortOf(shape, c, dim, v),
					net.Router(peer), PortOf(shape, peer, dim, c[dim]))
			}
		}
		return true
	})
	return net
}

// SetScheme installs the routing scheme used by every router.
func (net *Net) SetScheme(s Router) { net.scheme = s }

// Scheme returns the installed routing scheme (nil before SetScheme).
func (net *Net) Scheme() Router { return net.scheme }

// PE returns the endpoint node of the PE at c.
func (net *Net) PE(c geom.Coord) *engine.Node { return net.pes[net.Shape.Index(c)] }

// Router returns the router node at c.
func (net *Net) Router(c geom.Coord) *engine.Node { return net.routers[net.Shape.Index(c)] }

// PEs returns all PE endpoints in Shape.Index order.
func (net *Net) PEs() []*engine.Node { return net.pes }

// ShardAssign builds an engine.ShardPlan partitioning the lattice into n
// spatial slabs perpendicular to its longest dimension, mirroring
// mdxb.ShardAssign: every PE and router lands in the slab of its
// coordinate, so the only boundary links are the direct links crossing a
// cut. Pass the result to net.Eng.SetShards.
func ShardAssign(net *Net, n int) engine.ShardPlan {
	part := net.Shape.Partition(n)
	n = part.Slabs()
	assign := make([]int, len(net.Eng.Nodes()))
	net.Shape.Enumerate(func(c geom.Coord) bool {
		s := part.SlabOf(c)
		assign[net.PE(c).ID] = s
		assign[net.Router(c).ID] = s
		return true
	})
	return engine.ShardPlan{N: n, Assign: assign}
}
