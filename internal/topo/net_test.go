package topo_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"sr2201/internal/engine"
	"sr2201/internal/flit"
	"sr2201/internal/geom"
	"sr2201/internal/topo"
	"sr2201/internal/topo/hyperx"
)

// TestPortMath: PortOf/PortTarget are inverse bijections between (dim,
// value) pairs and link ports, for every router of assorted shapes.
func TestPortMath(t *testing.T) {
	for _, extents := range [][]int{{4, 4}, {3, 2, 5}, {8}, {2, 2, 2, 2}} {
		shape := geom.MustShape(extents...)
		wantPorts := 1
		for _, e := range shape {
			wantPorts += e - 1
		}
		if got := topo.PortCount(shape); got != wantPorts {
			t.Errorf("%s: PortCount=%d, want %d", shape, got, wantPorts)
		}
		if got := topo.PEPort(shape); got != wantPorts-1 {
			t.Errorf("%s: PEPort=%d, want %d", shape, got, wantPorts-1)
		}
		shape.Enumerate(func(c geom.Coord) bool {
			seen := map[int]bool{}
			for dim := 0; dim < shape.Dims(); dim++ {
				for v := 0; v < shape[dim]; v++ {
					if v == c[dim] {
						continue
					}
					p := topo.PortOf(shape, c, dim, v)
					if p < 0 || p >= topo.PEPort(shape) {
						t.Fatalf("%s %s dim %d v %d: port %d outside link range", shape, c, dim, v, p)
					}
					if seen[p] {
						t.Fatalf("%s %s: port %d assigned twice", shape, c, p)
					}
					seen[p] = true
					gd, gv := topo.PortTarget(shape, c, p)
					if gd != dim || gv != v {
						t.Fatalf("%s %s: PortTarget(%d) = (%d,%d), want (%d,%d)", shape, c, p, gd, gv, dim, v)
					}
				}
			}
			if len(seen) != topo.PEPort(shape) {
				t.Fatalf("%s %s: %d link ports used, want %d", shape, c, len(seen), topo.PEPort(shape))
			}
			return true
		})
	}
}

// TestNetDeliversAllPairs wires a real engine network and pushes one packet
// through every ordered pair: a single miswired Connect would surface as a
// drop or a delivery at the wrong PE.
func TestNetDeliversAllPairs(t *testing.T) {
	shape := geom.MustShape(3, 3)
	eng := engine.New(engine.DefaultConfig())
	net := topo.NewNet(eng, shape)
	s, err := hyperx.New(shape, nil)
	if err != nil {
		t.Fatal(err)
	}
	net.SetScheme(s)

	delivered := map[geom.Coord]int{}
	eng.OnDeliver = func(d engine.Delivery) {
		at := d.At.Meta.(topo.PEMeta).Coord
		if at != d.Header.Dst {
			t.Errorf("packet for %s delivered at %s", d.Header.Dst, at)
		}
		delivered[at]++
	}
	eng.OnDrop = func(d engine.Drop) {
		t.Errorf("drop at %s: %s", d.At.Name, d.Reason)
	}

	want := 0
	shape.Enumerate(func(src geom.Coord) bool {
		shape.Enumerate(func(dst geom.Coord) bool {
			if src == dst {
				return true
			}
			eng.InjectPacket(net.PE(src), &flit.Header{Src: src, Dst: dst}, 4)
			want++
			return true
		})
		return true
	})
	for i := 0; i < 10_000 && !eng.Quiescent(); i++ {
		eng.Step()
	}
	total := 0
	for c, n := range delivered {
		total += n
		if n != shape.Size()-1 {
			t.Errorf("PE %s consumed %d packets, want %d", c, n, shape.Size()-1)
		}
	}
	if total != want {
		t.Errorf("delivered %d packets, want %d", total, want)
	}
}

// TestShardAssignEquivalence: the spatial shard plan co-locates each PE
// with its router, covers every node, and the sharded engine reaches the
// byte-identical state the serial one does under the same workload.
func TestShardAssignEquivalence(t *testing.T) {
	shape := geom.MustShape(4, 4)
	run := func(shards int) uint64 {
		eng := engine.New(engine.DefaultConfig())
		net := topo.NewNet(eng, shape)
		s, err := hyperx.New(shape, nil)
		if err != nil {
			t.Fatal(err)
		}
		net.SetScheme(s)
		if shards > 1 {
			plan := topo.ShardAssign(net, shards)
			if plan.N != shards {
				t.Fatalf("plan.N=%d, want %d", plan.N, shards)
			}
			if len(plan.Assign) != len(eng.Nodes()) {
				t.Fatalf("plan covers %d nodes, want %d", len(plan.Assign), len(eng.Nodes()))
			}
			shape.Enumerate(func(c geom.Coord) bool {
				if plan.Assign[net.PE(c).ID] != plan.Assign[net.Router(c).ID] {
					t.Errorf("PE and router at %s in different shards", c)
				}
				return true
			})
			eng.SetShards(plan)
		}
		shape.Enumerate(func(src geom.Coord) bool {
			dst := shape.CoordOf((shape.Index(src) + 5) % shape.Size())
			if dst != src {
				eng.InjectPacket(net.PE(src), &flit.Header{Src: src, Dst: dst}, 4)
			}
			return true
		})
		for i := 0; i < 10_000 && !eng.Quiescent(); i++ {
			eng.Step()
		}
		if !eng.Quiescent() {
			t.Fatal("network did not drain")
		}
		return eng.StateHash()
	}
	serial := run(1)
	for _, shards := range []int{2, 4} {
		if h := run(shards); h != serial {
			t.Errorf("shards=%d state hash %016x != serial %016x", shards, h, serial)
		}
	}
}

// brokenRouter lets the walker tests feed pathological per-hop decisions.
type brokenRouter struct {
	shape geom.Shape
	route func(c geom.Coord, in int, h *flit.Header) (engine.Decision, error)
}

func (b brokenRouter) Name() string                               { return "broken" }
func (b brokenRouter) Shape() geom.Shape                          { return b.shape }
func (b brokenRouter) RegisterDependences(bb *topo.Builder) error { return nil }
func (b brokenRouter) Route(c geom.Coord, in int, h *flit.Header) (engine.Decision, error) {
	return b.route(c, in, h)
}

// TestWalkRejectsBrokenSchemes: the walker reports looping, misdelivering
// and replicating schemes as hard errors, and propagates refusals as
// ErrUnreachable.
func TestWalkRejectsBrokenSchemes(t *testing.T) {
	shape := geom.MustShape(4)
	pe := topo.PEPort(shape)
	cases := []struct {
		name  string
		route func(c geom.Coord, in int, h *flit.Header) (engine.Decision, error)
		want  string
	}{
		{
			name: "infinite loop",
			route: func(c geom.Coord, in int, h *flit.Header) (engine.Decision, error) {
				next := (c[0] + 1) % shape[0] // chase the ring forever
				return engine.Decision{Outs: []int{topo.PortOf(shape, c, 0, next)}}, nil
			},
			want: "exceeded",
		},
		{
			name: "wrong delivery",
			route: func(c geom.Coord, in int, h *flit.Header) (engine.Decision, error) {
				return engine.Decision{Outs: []int{pe}}, nil // deliver wherever we stand
			},
			want: "delivered at",
		},
		{
			name: "replication",
			route: func(c geom.Coord, in int, h *flit.Header) (engine.Decision, error) {
				return engine.Decision{Outs: []int{0, 1}}, nil
			},
			want: "outputs",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := topo.Walk(brokenRouter{shape: shape, route: tc.route}, geom.Coord{0}, geom.Coord{2})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err=%v, want mention of %q", err, tc.want)
			}
		})
	}
	refuse := brokenRouter{shape: shape, route: func(c geom.Coord, in int, h *flit.Header) (engine.Decision, error) {
		return engine.Decision{}, fmt.Errorf("%w: testing refusal", topo.ErrUnreachable)
	}}
	if _, err := topo.Walk(refuse, geom.Coord{0}, geom.Coord{2}); !errors.Is(err, topo.ErrUnreachable) {
		t.Errorf("refusal err=%v, want ErrUnreachable", err)
	}
}
