package topo_test

import (
	"errors"
	"strings"
	"testing"

	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/routing"
	"sr2201/internal/topo"
	"sr2201/internal/topo/fullmesh"
	"sr2201/internal/topo/hyperx"
	"sr2201/internal/topo/mdx"
)

// rejectionNamesField enforces the error contract on scheme construction:
// every rejection must say which field was bad, never a bare "invalid".
func rejectionNamesField(t *testing.T, err error, input []byte) {
	msg := err.Error()
	for _, field := range []string{"shape", "extent", "order", "dimension", "fault"} {
		if strings.Contains(msg, field) {
			return
		}
	}
	t.Errorf("rejection of % x names no field: %q", input, msg)
}

// FuzzTopoBuild drives arbitrary bytes through the three registered scheme
// builders: byte 0 selects the family, the next bytes become extents, the
// tail becomes fault placements. The builders must never panic, every
// rejection must name the offending field, and every accepted build must
// certify acyclic — a fuzzer-found cyclic certificate would be a
// deadlock-freedom counterexample. For the walkable schemes a derived
// source/destination pair is also walked: the only acceptable refusal is
// ErrUnreachable.
func FuzzTopoBuild(f *testing.F) {
	// One seed per registered family.
	f.Add([]byte{0, 4, 4, 9})    // mdx 4x4, one router fault
	f.Add([]byte{1, 3, 3, 2, 5}) // hyperx 3x3, router + link faults
	f.Add([]byte{2, 6, 0, 1, 3}) // fullmesh order 6, link faults
	f.Add([]byte{1, 1, 7})       // hyperx extent-1 rejection
	f.Add([]byte{2, 1})          // fullmesh order-1 rejection
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		family := int(data[0]) % 3
		var shape geom.Shape
		var rest []byte
		if family == 2 {
			// Full mesh takes a bare order; 0 and 1 exercise the rejection.
			n := int(data[1]) % 20
			s, err := fullmesh.New(n, nil)
			if err != nil {
				rejectionNamesField(t, err, data)
				return
			}
			shape, rest = s.Shape(), data[2:]
			fuzzFaultsAndCertify(t, data, shape, rest, func(fs *fault.Set) (topo.Scheme, error) {
				return fullmesh.New(n, fs)
			}, true)
			return
		}
		// mdx and hyperx take a multi-dimensional shape: 1-3 dims, raw
		// byte extents so 0 and 1 exercise the validators.
		dims := 1 + int(data[1])%3
		if len(data) < 2+dims {
			return
		}
		extents := make([]int, dims)
		size := 1
		for i := range extents {
			extents[i] = int(data[2+i]) % 9
			size *= extents[i]
		}
		if size > 64 {
			return // keep the certify step cheap
		}
		rest = data[2+dims:]
		switch family {
		case 0:
			s, err := geom.NewShape(extents...)
			if err != nil {
				rejectionNamesField(t, err, data)
				return
			}
			fuzzFaultsAndCertify(t, data, s, rest, func(fs *fault.Set) (topo.Scheme, error) {
				return mdx.New(routing.Config{Shape: s})
			}, false)
		case 1:
			s, err := geom.NewShape(extents...)
			if err != nil {
				rejectionNamesField(t, err, data)
				return
			}
			fuzzFaultsAndCertify(t, data, s, rest, func(fs *fault.Set) (topo.Scheme, error) {
				return hyperx.New(s, fs)
			}, true)
		}
	})
}

// fuzzFaultsAndCertify decodes the tail bytes into fault placements, builds
// the scheme, and applies the oracle: clean rejection or acyclic
// certificate, and (for walkable schemes) a clean or cleanly-refused walk.
func fuzzFaultsAndCertify(t *testing.T, data []byte, shape geom.Shape, rest []byte,
	build func(*fault.Set) (topo.Scheme, error), walkable bool) {
	fs := fault.NewSet(shape)
	for i := 0; i+1 < len(rest); i += 2 {
		k, v := int(rest[i]), int(rest[i+1])
		c := shape.CoordOf(v % shape.Size())
		var flt fault.Fault
		if k%2 == 0 {
			flt = fault.RouterFault(c)
		} else {
			dim := k % shape.Dims()
			to := c.WithDim(dim, (c[dim]+1+v)%shape[dim])
			if to == c {
				continue
			}
			flt = fault.LinkFault(c, to)
		}
		if err := fs.Add(flt); err != nil {
			rejectionNamesField(t, err, data)
			return
		}
	}
	s, err := build(fs)
	if err != nil {
		rejectionNamesField(t, err, data)
		return
	}
	cert, err := topo.Certify(s)
	if err != nil {
		rejectionNamesField(t, err, data)
		return
	}
	if !cert.Acyclic {
		t.Fatalf("accepted build % x certified cyclic: %v", data, cert.Cycle)
	}
	if !walkable || shape.Size() < 2 {
		return
	}
	r, ok := s.(topo.Router)
	if !ok {
		t.Fatalf("walkable scheme %s does not implement Router", s.Name())
	}
	src := shape.CoordOf(int(data[0]) % shape.Size())
	dst := shape.CoordOf((shape.Index(src) + 1 + int(data[1])) % shape.Size())
	if src == dst {
		return
	}
	if _, err := topo.Walk(r, src, dst); err != nil && !errors.Is(err, topo.ErrUnreachable) {
		t.Fatalf("walk %s->%s on % x: %v", src, dst, data, err)
	}
}
