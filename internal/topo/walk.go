package topo

import (
	"errors"
	"fmt"

	"sr2201/internal/flit"
	"sr2201/internal/geom"
)

// The static path walker replays a Router scheme's per-hop decisions
// without the engine: the same function that forwards packets at
// simulation time produces the channel sequences the prover certifies,
// so the certificate covers exactly the routes the machine takes.

// ChannelName names the directed link channel leaving the router at c
// toward value v of dimension dim, e.g. "R(1,2).d0>3".
func ChannelName(c geom.Coord, dim, v int) string {
	return fmt.Sprintf("R%s.d%d>%d", c, dim, v)
}

// PEChannelName names the delivery channel from the router at c into its
// PE, e.g. "R(1,2).pe".
func PEChannelName(c geom.Coord) string {
	return fmt.Sprintf("R%s.pe", c)
}

// Walked is one resolved static route.
type Walked struct {
	// Channels lists the channel names in traversal order; the last entry
	// is the destination router's PE delivery channel.
	Channels []string
	// Routers lists the router coordinates visited, source first,
	// destination last.
	Routers []geom.Coord
}

// Walk replays the scheme's routing decisions for one source/destination
// pair and returns the route. Refusals surface as ErrUnreachable; a
// scheme that replicates, loops, or walks off its shape is reported as a
// hard error.
func Walk(s Router, src, dst geom.Coord) (Walked, error) {
	shape := s.Shape()
	pePort := PEPort(shape)
	h := &flit.Header{Src: src, Dst: dst}
	cur := src
	in := pePort
	var w Walked
	w.Routers = append(w.Routers, cur)
	limit := 4*shape.Dims()*PortCount(shape) + 16
	for hops := 0; ; hops++ {
		if hops > limit {
			return Walked{}, fmt.Errorf("topo: %s walk %s->%s exceeded %d hops", s.Name(), src, dst, limit)
		}
		dec, err := s.Route(cur, in, h)
		if err != nil {
			return Walked{}, err
		}
		if len(dec.Outs) != 1 {
			return Walked{}, fmt.Errorf("topo: %s walk %s->%s: unicast decision with %d outputs at %s",
				s.Name(), src, dst, len(dec.Outs), cur)
		}
		out := dec.Outs[0]
		if dec.Transform != nil {
			h = dec.Transform(h)
		}
		if out == pePort {
			if cur != dst {
				return Walked{}, fmt.Errorf("topo: %s walk %s->%s delivered at %s", s.Name(), src, dst, cur)
			}
			w.Channels = append(w.Channels, PEChannelName(cur))
			return w, nil
		}
		dim, v := PortTarget(shape, cur, out)
		w.Channels = append(w.Channels, ChannelName(cur, dim, v))
		next := cur
		next[dim] = v
		in = PortOf(shape, next, dim, cur[dim])
		cur = next
		w.Routers = append(w.Routers, cur)
	}
}

// RegisterUnicastDependences walks every source/destination pair of the
// scheme's shape and records each resolved route's channel dependences in
// the builder. Refused pairs (ErrUnreachable) contribute nothing: the
// scheme never allocates channels for them. This is the standard
// RegisterDependences body for unicast-only direct-link schemes.
func RegisterUnicastDependences(b *Builder, s Router) error {
	shape := s.Shape()
	var werr error
	shape.Enumerate(func(src geom.Coord) bool {
		shape.Enumerate(func(dst geom.Coord) bool {
			w, err := Walk(s, src, dst)
			if err != nil {
				if errors.Is(err, ErrUnreachable) {
					return true
				}
				werr = err
				return false
			}
			b.Path(w.Channels...)
			return true
		})
		return werr == nil
	})
	return werr
}
