package topo_test

import (
	"reflect"
	"strings"
	"testing"

	"sr2201/internal/topo"
)

// TestBuilderInterning: channel vertices are interned by name — repeated
// names return the same id, and edge duplicates collapse to one edge.
func TestBuilderInterning(t *testing.T) {
	b := topo.NewBuilder()
	a := b.Channel("a")
	if again := b.Channel("a"); again != a {
		t.Errorf("re-interning %q: id %d, want %d", "a", again, a)
	}
	c := b.Channel("c")
	if c == a {
		t.Errorf("distinct names share id %d", c)
	}
	b.Edge(a, c)
	b.Edge(a, c)
	b.Path("a", "c")
	cert := b.Certificate("intern")
	if cert.Channels != 2 || cert.Edges != 1 {
		t.Errorf("channels=%d edges=%d, want 2 and 1 (duplicates collapsed)", cert.Channels, cert.Edges)
	}
	if !cert.Acyclic {
		t.Errorf("a->c reported cyclic: %v", cert.Cycle)
	}
}

// TestBuilderSelfLoopDropped: a channel never waits on itself in
// cut-through switching, so self-edges are discarded, not certified cyclic.
func TestBuilderSelfLoopDropped(t *testing.T) {
	b := topo.NewBuilder()
	a := b.Channel("a")
	b.Edge(a, a)
	b.Path("a", "a")
	cert := b.Certificate("selfloop")
	if cert.Edges != 0 || !cert.Acyclic {
		t.Errorf("self-loop survived: edges=%d acyclic=%v", cert.Edges, cert.Acyclic)
	}
}

// TestBuilderCompositeContraction: members absorbed into a composite
// vertex stop counting as channels, their edges redirect onto the
// composite, and edges internal to the composite vanish — the paper's
// serialized broadcast tree as one resource.
func TestBuilderCompositeContraction(t *testing.T) {
	b := topo.NewBuilder()
	comp := b.Composite("tree")
	m1, m2 := b.Channel("m1"), b.Channel("m2")
	b.Absorb(comp, m1)
	b.Absorb(comp, m2)
	x := b.Channel("x")
	b.Edge(x, m1)  // redirects to x -> tree
	b.Edge(m1, m2) // internal: vanishes
	b.Edge(m2, x)  // redirects to tree -> x
	cert := b.Certificate("composite")
	if cert.Channels != 2 {
		t.Errorf("channels=%d, want 2 (tree + x)", cert.Channels)
	}
	if cert.Edges != 2 {
		t.Errorf("edges=%d, want 2 (x->tree, tree->x)", cert.Edges)
	}
	// x -> tree -> x is a real 2-cycle after contraction: holding the tree
	// while waiting for x, and x while waiting for the tree.
	if cert.Acyclic {
		t.Error("contraction lost the x<->tree cycle")
	}
}

// TestCertificateCycleWitness: the refutation names the cycle's channels
// concretely and deterministically (same witness on every run).
func TestCertificateCycleWitness(t *testing.T) {
	build := func() topo.Certificate {
		b := topo.NewBuilder()
		b.Path("a", "b", "c", "a")
		b.Path("a", "d") // an acyclic appendix must not perturb the witness
		return b.Certificate("ring")
	}
	first := build()
	if first.Acyclic {
		t.Fatal("3-ring certified acyclic")
	}
	// The witness is a rotation of the ring starting where the DFS re-entered
	// its gray path — deterministic, pinned here.
	want := []string{"b", "c", "a"}
	if !reflect.DeepEqual(first.Cycle, want) {
		t.Errorf("witness %v, want %v", first.Cycle, want)
	}
	for i := 0; i < 5; i++ {
		if again := build(); !reflect.DeepEqual(again.Cycle, first.Cycle) {
			t.Fatalf("witness not deterministic: %v then %v", first.Cycle, again.Cycle)
		}
	}
}

// TestCertificateString pins the golden/testdata rendering format.
func TestCertificateString(t *testing.T) {
	b := topo.NewBuilder()
	b.Path("a", "b", "a")
	got := b.Certificate("fmt").String()
	want := "scheme: fmt\nchannels: 2\nedges: 2\nacyclic: false\ncycle:\n  b\n  a\n"
	if got != want {
		t.Errorf("String() =\n%q\nwant\n%q", got, want)
	}
	b2 := topo.NewBuilder()
	b2.Path("a", "b")
	if got := b2.Certificate("fmt").String(); !strings.HasSuffix(got, "acyclic: true\n") {
		t.Errorf("acyclic String() = %q, want no cycle block", got)
	}
}
