package fullmesh

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/topo"
)

func set(t *testing.T, n int, faults ...fault.Fault) *fault.Set {
	t.Helper()
	fs := fault.NewSet(geom.MustShape(n))
	for _, f := range faults {
		if err := fs.Add(f); err != nil {
			t.Fatal(err)
		}
	}
	return fs
}

func certify(t *testing.T, s *Scheme) topo.Certificate {
	t.Helper()
	cert, err := topo.Certify(s)
	if err != nil {
		t.Fatal(err)
	}
	return cert
}

// TestFaultFreeAcyclic: with no faults every route is the direct hop, so
// the dependence graph has n(n-1) link channels, n PE channels, and only
// link→PE edges — trivially acyclic.
func TestFaultFreeAcyclic(t *testing.T) {
	for _, n := range []int{2, 3, 4, 6, 8, 12} {
		s, err := New(n, nil)
		if err != nil {
			t.Fatal(err)
		}
		cert := certify(t, s)
		if !cert.Acyclic {
			t.Fatalf("n=%d: fault-free full mesh reported cyclic: %v", n, cert.Cycle)
		}
		wantCh := n*(n-1) + n
		if cert.Channels != wantCh {
			t.Errorf("n=%d: channels=%d want %d", n, cert.Channels, wantCh)
		}
	}
}

// TestSingleLinkFaultAcyclic: the ordered scheme stays acyclic under
// every possible single link fault.
func TestSingleLinkFaultAcyclic(t *testing.T) {
	const n = 6
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			fs := set(t, n, fault.LinkFault(geom.Coord{a}, geom.Coord{b}))
			s, err := New(n, fs)
			if err != nil {
				t.Fatal(err)
			}
			if cert := certify(t, s); !cert.Acyclic {
				t.Errorf("link %d-%d: cyclic: %v", a, b, cert.Cycle)
			}
		}
	}
}

// TestMultiLinkFaultAcyclic: the ordering constraint holds for arbitrary
// static link-fault sets, not just single faults — sweep all two-link
// combinations on K5.
func TestMultiLinkFaultAcyclic(t *testing.T) {
	const n = 5
	var links [][2]int
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			links = append(links, [2]int{a, b})
		}
	}
	for i := 0; i < len(links); i++ {
		for j := i + 1; j < len(links); j++ {
			fs := set(t, n,
				fault.LinkFault(geom.Coord{links[i][0]}, geom.Coord{links[i][1]}),
				fault.LinkFault(geom.Coord{links[j][0]}, geom.Coord{links[j][1]}))
			s, err := New(n, fs)
			if err != nil {
				t.Fatal(err)
			}
			if cert := certify(t, s); !cert.Acyclic {
				t.Errorf("links %v+%v: cyclic: %v", links[i], links[j], cert.Cycle)
			}
		}
	}
}

// TestUnorderedVariantRefutedWithWitness is the deliberate refutation the
// framework exists to produce: dropping the rank ordering on K4 with
// faulty links 0-2 and 1-3 chains the four detours into a 4-cycle, and
// the prover names it concretely.
func TestUnorderedVariantRefutedWithWitness(t *testing.T) {
	fs := set(t, 4,
		fault.LinkFault(geom.Coord{0}, geom.Coord{2}),
		fault.LinkFault(geom.Coord{1}, geom.Coord{3}))
	s, err := NewUnordered(4, fs)
	if err != nil {
		t.Fatal(err)
	}
	cert := certify(t, s)
	if cert.Acyclic {
		t.Fatal("unordered variant certified acyclic; the refutation harness is broken")
	}
	want := []string{"R(1,0).d0>2", "R(2,0).d0>3", "R(3,0).d0>0", "R(0,0).d0>1"}
	if !reflect.DeepEqual(cert.Cycle, want) {
		t.Errorf("cycle witness %v, want %v", cert.Cycle, want)
	}
	// The sound scheme on the identical fault set stays acyclic (at the
	// cost of refusing pairs destined into rank-minimal node 1).
	ordered, err := New(4, fs)
	if err != nil {
		t.Fatal(err)
	}
	if c := certify(t, ordered); !c.Acyclic {
		t.Errorf("ordered scheme cyclic on the witness fault set: %v", c.Cycle)
	}
}

// TestDetourRoutes pins the walker's concrete routes around a faulty
// link, including the rank(0)=n summit rule and the refused pair.
func TestDetourRoutes(t *testing.T) {
	// K4, link 0-2 faulty.
	fs := set(t, 4, fault.LinkFault(geom.Coord{0}, geom.Coord{2}))
	s, err := New(4, fs)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		src, dst int
		routers  []int // expected router sequence; nil = refused
	}{
		{0, 2, []int{0, 1, 2}}, // detour via rank(1) < rank(2)
		{2, 0, []int{2, 1, 0}}, // t=0 is the summit: any intermediate admissible, smallest is 1
		{0, 1, []int{0, 1}},    // direct link healthy
		{3, 2, []int{3, 2}},    // unaffected pair
		{0, 0, []int{0}},       // self delivery
	}
	for _, tc := range cases {
		w, err := topo.Walk(s, geom.Coord{tc.src}, geom.Coord{tc.dst})
		if err != nil {
			t.Errorf("%d->%d: %v", tc.src, tc.dst, err)
			continue
		}
		got := make([]int, len(w.Routers))
		for i, c := range w.Routers {
			got[i] = c[0]
		}
		if !reflect.DeepEqual(got, tc.routers) {
			t.Errorf("%d->%d: routers %v, want %v", tc.src, tc.dst, got, tc.routers)
		}
	}
	// The uncovered destination: rank(1) is minimal, so a faulty link
	// into node 1 refuses the pair.
	fs = set(t, 4, fault.LinkFault(geom.Coord{3}, geom.Coord{1}))
	s, err = New(4, fs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topo.Walk(s, geom.Coord{3}, geom.Coord{1}); !errors.Is(err, topo.ErrUnreachable) {
		t.Errorf("3->1 with faulty link 3-1: err=%v, want ErrUnreachable", err)
	}
	// ... while the reverse direction detours fine (t=3 admits m=2).
	if w, err := topo.Walk(s, geom.Coord{1}, geom.Coord{3}); err != nil {
		t.Errorf("1->3: %v", err)
	} else if len(w.Routers) != 3 {
		t.Errorf("1->3: expected a two-hop detour, got %v", w.Routers)
	}
}

// TestRouterFaultRefuses: pairs into or out of a dead router refuse;
// others route around nothing (direct links are unaffected).
func TestRouterFaultRefuses(t *testing.T) {
	fs := set(t, 5, fault.RouterFault(geom.Coord{2}))
	s, err := New(5, fs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topo.Walk(s, geom.Coord{0}, geom.Coord{2}); !errors.Is(err, topo.ErrUnreachable) {
		t.Errorf("0->2: err=%v, want ErrUnreachable", err)
	}
	if _, err := topo.Walk(s, geom.Coord{2}, geom.Coord{0}); !errors.Is(err, topo.ErrUnreachable) {
		t.Errorf("2->0: err=%v, want ErrUnreachable", err)
	}
	if _, err := topo.Walk(s, geom.Coord{0}, geom.Coord{4}); err != nil {
		t.Errorf("0->4: %v", err)
	}
	if cert := certify(t, s); !cert.Acyclic {
		t.Errorf("router fault: cyclic: %v", cert.Cycle)
	}
}

// TestBuildRejections: every constructor rejection names the offending
// field.
func TestBuildRejections(t *testing.T) {
	if _, err := New(1, nil); err == nil || !strings.Contains(err.Error(), "order") {
		t.Errorf("n=1: err=%v, want an error naming the order", err)
	}
	fs := fault.NewSet(geom.MustShape(5))
	if _, err := New(4, fs); err == nil || !strings.Contains(err.Error(), "shape") {
		t.Errorf("mismatched fault shape: err=%v, want an error naming the shape", err)
	}
}
