// Package fullmesh implements deadlock-free fault-tolerant routing on the
// full mesh — n routers, every pair joined by a direct link — without
// virtual channels (the setting of arXiv 2510.14730; the concrete
// ordering rule below is this repo's own, chosen so the CDG prover
// certifies it, with deviations documented in DESIGN.md §11).
//
// The healthy route is always the single direct hop. When the direct link
// a–t is faulty, the source detours through an intermediate m (a two-hop
// substitute a→m→t). Deadlock-freedom without VCs comes entirely from an
// ordering constraint on the intermediate:
//
//	rank(x) = x for x > 0, rank(0) = n (node 0 is the summit);
//	m is admissible iff rank(m) < rank(t) and both links a–m, m–t are
//	healthy; the admissible m with the smallest index is chosen.
//
// Every dependence edge (a→m)→(m→t) then strictly increases the
// destination rank of the channel, so the channel dependence graph is
// acyclic for any static link-fault set — the prover re-derives exactly
// this. The cost is one uncovered destination: t = 1 has minimal rank and
// admits no intermediate, so a faulty link into node 1 refuses the pair
// (ErrUnreachable) instead of risking a cycle.
//
// NewUnordered builds the deliberately broken variant used to refute the
// construction: it drops the rank constraint and picks the intermediate
// counting down from t-1. On K4 with faulty links 0–2 and 1–3 its four
// detours chain into the cycle (0→1)→(1→2)→(2→3)→(3→0)→(0→1), and the
// prover reports exactly that witness.
package fullmesh

import (
	"fmt"

	"sr2201/internal/engine"
	"sr2201/internal/fault"
	"sr2201/internal/flit"
	"sr2201/internal/geom"
	"sr2201/internal/topo"
)

func init() {
	topo.Register(topo.Registration{
		Name: "fullmesh",
		Canonical: func() (topo.Scheme, error) {
			return New(8, nil)
		},
	})
}

// Scheme is one full-mesh routing instance: an order n plus a fault set.
type Scheme struct {
	n         int
	shape     geom.Shape
	faults    *fault.Set // nil means fault-free
	unordered bool
}

// New validates the order and builds the (sound, rank-ordered) scheme.
// n must be at least 2; a non-nil fault set must be built for the
// one-dimensional shape {n}.
func New(n int, faults *fault.Set) (*Scheme, error) {
	return build(n, faults, false)
}

// NewUnordered builds the deliberately broken variant: the detour
// intermediate is chosen without the rank-ordering constraint. It exists
// to demonstrate the prover refuting an unsound scheme with a concrete
// cycle witness; never route real traffic over it.
func NewUnordered(n int, faults *fault.Set) (*Scheme, error) {
	return build(n, faults, true)
}

func build(n int, faults *fault.Set, unordered bool) (*Scheme, error) {
	if n < 2 {
		return nil, fmt.Errorf("fullmesh: order n=%d below minimum 2", n)
	}
	shape := geom.MustShape(n)
	if faults != nil && !faults.Shape().Equal(shape) {
		return nil, fmt.Errorf("fullmesh: faults built for shape %s, scheme shape %s", faults.Shape(), shape)
	}
	return &Scheme{n: n, shape: shape, faults: faults, unordered: unordered}, nil
}

// Build constructs a fully wired n-router full mesh and installs the
// sound scheme on it.
func Build(eng *engine.Engine, n int, faults *fault.Set) (*topo.Net, *Scheme, error) {
	s, err := New(n, faults)
	if err != nil {
		return nil, nil, err
	}
	net := topo.NewNet(eng, s.shape)
	net.SetScheme(s)
	return net, s, nil
}

// Name identifies the instance, e.g. "fullmesh-8" or
// "fullmesh-unordered-4".
func (s *Scheme) Name() string {
	if s.unordered {
		return fmt.Sprintf("fullmesh-unordered-%d", s.n)
	}
	return fmt.Sprintf("fullmesh-%d", s.n)
}

// Shape returns the one-dimensional lattice shape {n}.
func (s *Scheme) Shape() geom.Shape { return s.shape }

// Faults returns the scheme's fault set (nil when fault-free).
func (s *Scheme) Faults() *fault.Set { return s.faults }

// RegisterDependences walks every pair and records the route dependences.
func (s *Scheme) RegisterDependences(b *topo.Builder) error {
	return topo.RegisterUnicastDependences(b, s)
}

func (s *Scheme) routerFaulty(c geom.Coord) bool {
	return s.faults != nil && s.faults.RouterFaulty(c)
}

func (s *Scheme) linkFaulty(a, b geom.Coord) bool {
	return s.faults != nil && s.faults.LinkFaulty(a, b)
}

// rank is the detour order: node 0 is the summit (rank = n), everything
// else ranks by its own index.
func (s *Scheme) rank(x int) int {
	if x == 0 {
		return s.n
	}
	return x
}

// Route decides the forwarding at the router at c. Like the HyperX
// scheme it consults only the router's own link/neighbor fault bits.
func (s *Scheme) Route(c geom.Coord, in int, h *flit.Header) (engine.Decision, error) {
	if s.routerFaulty(c) {
		return engine.Decision{}, fmt.Errorf("%w: router %s is faulty", topo.ErrUnreachable, c)
	}
	a, t := c[0], h.Dst[0]
	if a == t {
		return engine.Decision{Outs: []int{topo.PEPort(s.shape)}}, nil
	}
	target := geom.Coord{t}
	if s.routerFaulty(target) {
		return engine.Decision{}, fmt.Errorf("%w: destination router %s is faulty", topo.ErrUnreachable, target)
	}
	if !s.linkFaulty(c, target) {
		return engine.Decision{Outs: []int{topo.PortOf(s.shape, c, 0, t)}}, nil
	}
	if s.unordered {
		// Broken variant: first healthy intermediate counting down from
		// t-1, no ordering constraint.
		for i := 1; i < s.n; i++ {
			m := ((t-i)%s.n + s.n) % s.n
			if m == a || m == t {
				continue
			}
			mid := geom.Coord{m}
			if s.routerFaulty(mid) || s.linkFaulty(c, mid) || s.linkFaulty(mid, target) {
				continue
			}
			return engine.Decision{Outs: []int{topo.PortOf(s.shape, c, 0, m)}}, nil
		}
		return engine.Decision{}, fmt.Errorf("%w: link %s-%s faulty and no healthy intermediate",
			topo.ErrUnreachable, c, target)
	}
	// Ordered two-hop detour.
	for m := 0; m < s.n; m++ {
		if m == a || m == t || s.rank(m) >= s.rank(t) {
			continue
		}
		mid := geom.Coord{m}
		if s.routerFaulty(mid) || s.linkFaulty(c, mid) || s.linkFaulty(mid, target) {
			continue
		}
		return engine.Decision{Outs: []int{topo.PortOf(s.shape, c, 0, m)}}, nil
	}
	return engine.Decision{}, fmt.Errorf("%w: link %s-%s faulty and no admissible detour (rank(t)=%d)",
		topo.ErrUnreachable, c, target, s.rank(t))
}
