package topo_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"sr2201/internal/topo"

	// Imported for their init() registrations: the gate below certifies
	// every registered scheme family.
	_ "sr2201/internal/topo/escape"
	_ "sr2201/internal/topo/fullmesh"
	_ "sr2201/internal/topo/hyperx"
	_ "sr2201/internal/topo/mdx"
)

var update = flag.Bool("update", false, "rewrite golden certificates")

// TestRegisteredSchemes pins the registry contents: the four shipped
// families, sorted by name. A scheme that forgets to register escapes the
// certificate gate, so the set itself is part of the contract.
func TestRegisteredSchemes(t *testing.T) {
	want := []string{"escape", "fullmesh", "hyperx", "mdx"}
	regs := topo.Registered()
	if len(regs) != len(want) {
		t.Fatalf("%d registered schemes, want %d", len(regs), len(want))
	}
	for i, r := range regs {
		if r.Name != want[i] {
			t.Errorf("registration %d is %q, want %q", i, r.Name, want[i])
		}
	}
}

// TestCertificateGate is the deadlock-freedom regression gate CI runs: every
// registered scheme's canonical instance must certify acyclic, and the full
// certificate must match its golden fixture byte for byte. Run with -update
// to rewrite the fixtures after an intentional change.
func TestCertificateGate(t *testing.T) {
	for _, reg := range topo.Registered() {
		reg := reg
		t.Run(reg.Name, func(t *testing.T) {
			s, err := reg.Canonical()
			if err != nil {
				t.Fatalf("canonical %s: %v", reg.Name, err)
			}
			cert, err := topo.Certify(s)
			if err != nil {
				t.Fatalf("certify %s: %v", reg.Name, err)
			}
			if !cert.Acyclic {
				t.Fatalf("scheme %s regressed to cyclic; witness: %v", s.Name(), cert.Cycle)
			}
			golden := filepath.Join("testdata", "cert_"+reg.Name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(cert.String()), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if got := cert.String(); got != string(want) {
				t.Errorf("certificate drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}
