package hyperx

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/topo"
)

func set(t *testing.T, shape geom.Shape, faults ...fault.Fault) *fault.Set {
	t.Helper()
	fs := fault.NewSet(shape)
	for _, f := range faults {
		if err := fs.Add(f); err != nil {
			t.Fatal(err)
		}
	}
	return fs
}

func certify(t *testing.T, s *Scheme) topo.Certificate {
	t.Helper()
	cert, err := topo.Certify(s)
	if err != nil {
		t.Fatal(err)
	}
	return cert
}

// TestFaultFreeAcyclic certifies dimension-order routing across shapes:
// channels are all directed in-line links plus one PE delivery channel
// per router.
func TestFaultFreeAcyclic(t *testing.T) {
	for _, extents := range [][]int{{4, 4}, {3, 3}, {4, 3}, {3, 3, 3}, {2, 2, 2, 2}, {5}} {
		shape := geom.MustShape(extents...)
		s, err := New(shape, nil)
		if err != nil {
			t.Fatal(err)
		}
		cert := certify(t, s)
		if !cert.Acyclic {
			t.Fatalf("%s: fault-free HyperX reported cyclic: %v", shape, cert.Cycle)
		}
		links := 0
		for _, e := range shape {
			links += (e - 1) * shape.Size() // directed in-line links per router, summed
		}
		if want := links + shape.Size(); cert.Channels != want {
			t.Errorf("%s: channels=%d want %d", shape, cert.Channels, want)
		}
	}
}

// TestEverySingleLinkFaultAcyclic exhausts single link faults on 4x4: the
// ordered in-line detour keeps the CDG acyclic everywhere.
func TestEverySingleLinkFaultAcyclic(t *testing.T) {
	shape := geom.MustShape(4, 4)
	for dim := 0; dim < shape.Dims(); dim++ {
		for _, l := range shape.LinesAlong(dim) {
			for a := 0; a < shape[dim]; a++ {
				for b := a + 1; b < shape[dim]; b++ {
					fs := set(t, shape, fault.LinkFault(l.Point(a), l.Point(b)))
					s, err := New(shape, fs)
					if err != nil {
						t.Fatal(err)
					}
					if cert := certify(t, s); !cert.Acyclic {
						t.Errorf("link %s-%s: cyclic: %v", l.Point(a), l.Point(b), cert.Cycle)
					}
				}
			}
		}
	}
}

// TestEverySingleRouterFaultAcyclic exhausts single router faults on 3x3.
func TestEverySingleRouterFaultAcyclic(t *testing.T) {
	shape := geom.MustShape(3, 3)
	shape.Enumerate(func(c geom.Coord) bool {
		fs := set(t, shape, fault.RouterFault(c))
		s, err := New(shape, fs)
		if err != nil {
			t.Fatal(err)
		}
		if cert := certify(t, s); !cert.Acyclic {
			t.Errorf("router %s: cyclic: %v", c, cert.Cycle)
		}
		return true
	})
}

// TestMultiFaultAcyclic mixes link and router faults across dimensions.
func TestMultiFaultAcyclic(t *testing.T) {
	shape := geom.MustShape(4, 3)
	fs := set(t, shape,
		fault.LinkFault(geom.Coord{0, 0}, geom.Coord{2, 0}),
		fault.LinkFault(geom.Coord{1, 0}, geom.Coord{1, 2}),
		fault.RouterFault(geom.Coord{3, 1}))
	s, err := New(shape, fs)
	if err != nil {
		t.Fatal(err)
	}
	if cert := certify(t, s); !cert.Acyclic {
		t.Errorf("multi-fault: cyclic: %v", cert.Cycle)
	}
}

// TestRoutes pins concrete routes: dimension order, the in-line detour,
// and the waypoint-router refusal.
func TestRoutes(t *testing.T) {
	shape := geom.MustShape(4, 4)
	// Fault-free: strict dimension order, one hop per differing dim.
	s, err := New(shape, nil)
	if err != nil {
		t.Fatal(err)
	}
	w, err := topo.Walk(s, geom.Coord{0, 0}, geom.Coord{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	wantRouters := []geom.Coord{{0, 0}, {3, 0}, {3, 2}}
	if !reflect.DeepEqual(w.Routers, wantRouters) {
		t.Errorf("0,0->3,2 routers %v, want %v", w.Routers, wantRouters)
	}
	// Link (0,0)-(3,0) faulty: detour via the smallest admissible
	// intermediate, m=1 (rank 1 < rank 3).
	fs := set(t, shape, fault.LinkFault(geom.Coord{0, 0}, geom.Coord{3, 0}))
	s, err = New(shape, fs)
	if err != nil {
		t.Fatal(err)
	}
	w, err = topo.Walk(s, geom.Coord{0, 0}, geom.Coord{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	wantRouters = []geom.Coord{{0, 0}, {1, 0}, {3, 0}, {3, 2}}
	if !reflect.DeepEqual(w.Routers, wantRouters) {
		t.Errorf("detoured routers %v, want %v", w.Routers, wantRouters)
	}
	// A dead router on the dimension-order path refuses the pair: from
	// (0,0) to (1,3), dimension order must pass through (1,0).
	fs = set(t, shape, fault.RouterFault(geom.Coord{1, 0}))
	s, err = New(shape, fs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topo.Walk(s, geom.Coord{0, 0}, geom.Coord{1, 3}); !errors.Is(err, topo.ErrUnreachable) {
		t.Errorf("dead waypoint: err=%v, want ErrUnreachable", err)
	}
	// The reverse-direction pair (1,3)->(0,0) never touches (1,0): it
	// corrects dim 0 first at row y=3.
	if _, err := topo.Walk(s, geom.Coord{1, 3}, geom.Coord{0, 0}); err != nil {
		t.Errorf("(1,3)->(0,0): %v", err)
	}
}

// TestBuildRejections: every constructor rejection names the offending
// field.
func TestBuildRejections(t *testing.T) {
	if _, err := New(geom.Shape{}, nil); err == nil || !strings.Contains(err.Error(), "shape") {
		t.Errorf("empty shape: err=%v, want an error naming the shape", err)
	}
	if _, err := New(geom.MustShape(4, 1), nil); err == nil || !strings.Contains(err.Error(), "extent") {
		t.Errorf("extent 1: err=%v, want an error naming the extent", err)
	}
	fs := fault.NewSet(geom.MustShape(3, 3))
	if _, err := New(geom.MustShape(4, 4), fs); err == nil || !strings.Contains(err.Error(), "shape") {
		t.Errorf("mismatched fault shape: err=%v, want an error naming the shape", err)
	}
}
