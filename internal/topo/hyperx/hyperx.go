// Package hyperx implements fault-tolerant dimension-order routing on the
// HyperX topology: a d-dimensional lattice in which every axis-aligned
// line is a complete graph of direct router-to-router links — the direct
// descendant of the paper's MD crossbar, with each shared per-line
// crossbar switch replaced by per-pair links (arXiv 2404.04315 studies
// this family; the concrete detour-ordering rule below is this repo's
// own, chosen so the CDG prover certifies it, and deviations from the
// published scheme are documented in DESIGN.md §11).
//
// Routing is dimension-ordered: correct dimension 0 first, then 1, and so
// on. Within a dimension the packet normally takes the single direct link
// from its current in-line offset a to the destination offset t. When
// that link is marked faulty, the router detours through an in-line
// intermediate m — a two-hop substitute a→m→t — chosen under an ordering
// constraint that keeps the channel dependence graph acyclic for any
// static link-fault set:
//
//	rank(x) = x for x > 0, rank(0) = extent (offset 0 is the summit);
//	m is admissible iff rank(m) < rank(t) and both links a–m, m–t are
//	healthy; the admissible m with the smallest offset is chosen.
//
// Every in-line dependence edge (a→m)→(m→t) then strictly increases the
// destination rank, and cross-dimension edges strictly increase the
// dimension, so the combined lexicographic rank (dim, rank) proves
// acyclicity — the prover re-derives exactly this from the registered
// graph. The price is bounded coverage: a destination offset of minimal
// rank (t = 1) admits no intermediate, so a faulty link into it refuses
// the pair (ErrUnreachable) rather than risking a cycle; the H-series
// experiments price that refusal rate. Faulty routers are not detoured:
// dimension order must land on offset t of the current line, so a dead
// router there (waypoint or destination) refuses the pair.
package hyperx

import (
	"fmt"

	"sr2201/internal/engine"
	"sr2201/internal/fault"
	"sr2201/internal/flit"
	"sr2201/internal/geom"
	"sr2201/internal/topo"
)

func init() {
	topo.Register(topo.Registration{
		Name: "hyperx",
		Canonical: func() (topo.Scheme, error) {
			return New(geom.MustShape(4, 4), nil)
		},
	})
}

// Scheme is one HyperX routing instance: a shape plus a fault set.
type Scheme struct {
	shape  geom.Shape
	faults *fault.Set // nil means fault-free
}

// New validates the shape and builds the scheme. Every extent must be at
// least 2 (an extent-1 dimension has no links to route over), and a
// non-nil fault set must be built for the same shape.
func New(shape geom.Shape, faults *fault.Set) (*Scheme, error) {
	if shape.Dims() < 1 {
		return nil, fmt.Errorf("hyperx: shape must have at least one dimension")
	}
	for k, e := range shape {
		if e < 2 {
			return nil, fmt.Errorf("hyperx: shape %s: extent[%d]=%d below minimum 2", shape, k, e)
		}
	}
	if faults != nil && !faults.Shape().Equal(shape) {
		return nil, fmt.Errorf("hyperx: faults built for shape %s, scheme shape %s", faults.Shape(), shape)
	}
	return &Scheme{shape: shape, faults: faults}, nil
}

// Build constructs a fully wired direct-link network for the shape and
// installs the scheme on it.
func Build(eng *engine.Engine, shape geom.Shape, faults *fault.Set) (*topo.Net, *Scheme, error) {
	s, err := New(shape, faults)
	if err != nil {
		return nil, nil, err
	}
	net := topo.NewNet(eng, shape)
	net.SetScheme(s)
	return net, s, nil
}

// Name identifies the instance, e.g. "hyperx-4x4".
func (s *Scheme) Name() string { return "hyperx-" + s.shape.String() }

// Shape returns the lattice shape.
func (s *Scheme) Shape() geom.Shape { return s.shape }

// Faults returns the scheme's fault set (nil when fault-free).
func (s *Scheme) Faults() *fault.Set { return s.faults }

// RegisterDependences walks every pair and records the route dependences.
func (s *Scheme) RegisterDependences(b *topo.Builder) error {
	return topo.RegisterUnicastDependences(b, s)
}

func (s *Scheme) routerFaulty(c geom.Coord) bool {
	return s.faults != nil && s.faults.RouterFaulty(c)
}

func (s *Scheme) linkFaulty(a, b geom.Coord) bool {
	return s.faults != nil && s.faults.LinkFaulty(a, b)
}

// rank is the in-line detour order: offset 0 is the summit (rank =
// extent), everything else ranks by its own offset.
func rank(extent, x int) int {
	if x == 0 {
		return extent
	}
	return x
}

// Route decides the forwarding at the router at c. It consults only
// link-local fault bits of c's own lines (the paper's neighbor-bits
// discipline carried over to direct links), never a global map; a dead
// router on the dimension-order path surfaces as a refusal at the hop
// that would enter it.
func (s *Scheme) Route(c geom.Coord, in int, h *flit.Header) (engine.Decision, error) {
	if s.routerFaulty(c) {
		return engine.Decision{}, fmt.Errorf("%w: router %s is faulty", topo.ErrUnreachable, c)
	}
	dst := h.Dst
	k := c.FirstDiff(dst, s.shape.Dims())
	if k < 0 {
		return engine.Decision{Outs: []int{topo.PEPort(s.shape)}}, nil
	}
	a, t := c[k], dst[k]
	target := c
	target[k] = t
	if s.routerFaulty(target) {
		return engine.Decision{}, fmt.Errorf("%w: router %s on the dimension-order path of %s->%s is faulty",
			topo.ErrUnreachable, target, h.Src, dst)
	}
	if !s.linkFaulty(c, target) {
		return engine.Decision{Outs: []int{topo.PortOf(s.shape, c, k, t)}}, nil
	}
	// Ordered two-hop detour within the line.
	extent := s.shape[k]
	for m := 0; m < extent; m++ {
		if m == a || m == t || rank(extent, m) >= rank(extent, t) {
			continue
		}
		mid := c
		mid[k] = m
		if s.routerFaulty(mid) || s.linkFaulty(c, mid) || s.linkFaulty(mid, target) {
			continue
		}
		return engine.Decision{Outs: []int{topo.PortOf(s.shape, c, k, m)}}, nil
	}
	return engine.Decision{}, fmt.Errorf("%w: link %s-%s faulty and no admissible detour (rank(t)=%d)",
		topo.ErrUnreachable, c, target, rank(extent, t))
}
