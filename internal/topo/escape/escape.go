// Package escape registers the escape subnetwork of escape-VC adaptive
// routing (routing.VCPolicy) as a certifiable topo.Scheme. The scheme is the
// unified S-XB = D-XB policy confined to lane 0 of a V-lane network: no
// packet enters lane 0 at a crossbar and lane-0 packets stay on lane 0 until
// delivery, so cdg.RegisterEscapeDependences reproduces exactly the escape
// channel's internal dependences. The golden certificate (acyclic) is the
// static half of the escape-channel deadlock-freedom argument; the dynamic
// half — every blocked adaptive packet eventually commits to lane 0 — is the
// kernel's Provisional re-routing, exercised by the adversarial liveness
// tests in internal/routing.
package escape

import (
	"fmt"

	"sr2201/internal/cdg"
	"sr2201/internal/geom"
	"sr2201/internal/routing"
	"sr2201/internal/topo"
)

// Scheme is the escape subnetwork of a VC network: a unified routing.Policy
// on lane 0 of vcs lanes per wire.
type Scheme struct {
	p     *routing.Policy
	shape geom.Shape
	vcs   int
}

// New builds the escape scheme for a routing configuration and lane count.
// The configuration must be the unified scheme (no separate D-XB) — the only
// escape channel adaptive routing accepts.
func New(cfg routing.Config, vcs int) (*Scheme, error) {
	if vcs < 2 {
		return nil, fmt.Errorf("escape: need >= 2 virtual channels, got %d", vcs)
	}
	p, err := routing.New(cfg)
	if err != nil {
		return nil, err
	}
	if p.EffectiveSXB() != p.EffectiveDXB() {
		return nil, fmt.Errorf("escape: escape channel requires the unified D-XB = S-XB scheme")
	}
	return &Scheme{p: p, shape: cfg.Shape, vcs: vcs}, nil
}

// Name identifies the instance, e.g. "escape-vc2-4x4".
func (s *Scheme) Name() string {
	return fmt.Sprintf("escape-vc%d-%s", s.vcs, s.shape)
}

// Policy returns the wrapped escape routing policy.
func (s *Scheme) Policy() *routing.Policy { return s.p }

// Shape returns the lattice shape.
func (s *Scheme) Shape() geom.Shape { return s.shape }

// VCs returns the lane count the scheme's channels are scaled for.
func (s *Scheme) VCs() int { return s.vcs }

// RegisterDependences records the escape channel's dependences: the unified
// scheme on lane 0 of every wire.
func (s *Scheme) RegisterDependences(b *topo.Builder) error {
	return cdg.RegisterEscapeDependences(b, s.p, s.shape, s.vcs)
}

func init() {
	topo.Register(topo.Registration{
		Name: "escape",
		Canonical: func() (topo.Scheme, error) {
			return New(routing.Config{Shape: geom.MustShape(4, 4)}, 2)
		},
	})
}
