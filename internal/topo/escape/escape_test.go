package escape_test

// The escape certificate's adversarial half. The registry gate
// (internal/topo/registry_test.go) pins the canonical escape scheme's golden
// certificate — acyclic, the static side of the Duato argument. These tests
// pin the refutation direction: the constructor refuses every escape
// configuration outside the certified family, and the deliberately
// mis-ordered variant — the escape lane running the paper's separate-D-XB
// scheme — is refuted by the prover with a concrete cycle witness, pinned
// as its own golden so the witness cannot silently degrade into a pass.

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sr2201/internal/cdg"
	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/routing"
	"sr2201/internal/topo"
	"sr2201/internal/topo/escape"
)

var update = flag.Bool("update", false, "rewrite the misordered-variant golden certificate")

func TestNewValidation(t *testing.T) {
	unified := routing.Config{Shape: geom.MustShape(4, 4)}
	if _, err := escape.New(unified, 1); err == nil {
		t.Error("accepted a single-lane escape scheme (there is nothing to escape from)")
	}
	if _, err := escape.New(unified, 2); err != nil {
		t.Errorf("rejected the canonical unified scheme: %v", err)
	}
	separate := routing.Config{
		Shape: geom.MustShape(4, 4),
		SXB:   geom.Coord{0, 0},
		DXB:   geom.Coord{0, 3},
	}
	if _, err := escape.New(separate, 2); err == nil {
		t.Error("accepted a separate-DXB escape channel (the certificate only covers the unified scheme)")
	}
}

// misordered is the adversarial scheme: the escape lane of a 2-lane network
// running the paper's deadlocking D-XB != S-XB policy, with the Fig. 9
// router fault installed so detours actually cross the broadcast tree.
// escape.New refuses to build it, so the test reaches under the constructor
// and registers the dependences directly — exactly what the certificate gate
// would face if the validation were ever lost.
type misordered struct {
	p     *routing.Policy
	shape geom.Shape
}

func (m *misordered) Name() string { return "escape-misordered-vc2-" + m.shape.String() }
func (m *misordered) RegisterDependences(b *topo.Builder) error {
	return cdg.RegisterEscapeDependences(b, m.p, m.shape, 2)
}

// TestMisorderedEscapeRefuted certifies the mis-ordered variant and demands
// a refutation: the prover must find a cycle and name its channels. The full
// certificate — including the concrete witness — is pinned as a golden, so
// the refutation stays stable and reviewable.
func TestMisorderedEscapeRefuted(t *testing.T) {
	shape := geom.MustShape(4, 4)
	fs := fault.NewSet(shape)
	if err := fs.Add(fault.RouterFault(geom.Coord{2, 1})); err != nil {
		t.Fatal(err)
	}
	p, err := routing.New(routing.Config{
		Shape:  shape,
		SXB:    geom.Coord{0, 0},
		DXB:    geom.Coord{0, 3},
		Faults: fs,
	})
	if err != nil {
		t.Fatal(err)
	}
	cert, err := topo.Certify(&misordered{p: p, shape: shape})
	if err != nil {
		t.Fatal(err)
	}
	if cert.Acyclic {
		t.Fatal("the separate-DXB escape variant certified acyclic — the prover lost the Fig. 9 cycle")
	}
	if len(cert.Cycle) < 2 {
		t.Fatalf("refutation carries no usable witness: %v", cert.Cycle)
	}
	golden := filepath.Join("testdata", "cert_misordered.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(cert.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got := cert.String(); got != string(want) {
		t.Errorf("misordered certificate drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestEscapeCertificateScalesWithLanes pins the lane-scaling convention: the
// escape channels of a 3-lane network are the same unified dependences on
// different physical port numbers, so the contracted graph has the same
// channel and edge counts as the 2-lane certificate and stays acyclic.
func TestEscapeCertificateScalesWithLanes(t *testing.T) {
	certs := make([]topo.Certificate, 0, 2)
	for _, vcs := range []int{2, 3} {
		s, err := escape.New(routing.Config{Shape: geom.MustShape(4, 4)}, vcs)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(s.Name(), "4x4") {
			t.Errorf("scheme name %q does not carry the shape", s.Name())
		}
		cert, err := topo.Certify(s)
		if err != nil {
			t.Fatal(err)
		}
		if !cert.Acyclic {
			t.Fatalf("escape scheme at vcs=%d regressed to cyclic; witness: %v", vcs, cert.Cycle)
		}
		certs = append(certs, cert)
	}
	if certs[0].Channels != certs[1].Channels || certs[0].Edges != certs[1].Edges {
		t.Errorf("lane count changed the escape graph: vc2 %d/%d, vc3 %d/%d (channels/edges)",
			certs[0].Channels, certs[0].Edges, certs[1].Channels, certs[1].Edges)
	}
}
