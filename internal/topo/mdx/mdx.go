// Package mdx ports the paper's S-XB/D-XB routing policy onto the topo
// Scheme interface — the framework's reference implementation. The
// dependence registration is internal/cdg's Section 5 construction
// (point-to-point classes, broadcast request legs, contracted serialized
// fan tree), so certifying this scheme re-proves the paper's theorem
// through the topology-agnostic prover, pinned equal to cdg.Analyze.
package mdx

import (
	"sr2201/internal/cdg"
	"sr2201/internal/geom"
	"sr2201/internal/routing"
	"sr2201/internal/topo"
)

// Scheme wraps a routing.Policy instance as a certifiable topo.Scheme.
type Scheme struct {
	p     *routing.Policy
	shape geom.Shape
}

// New builds the scheme for a routing configuration.
func New(cfg routing.Config) (*Scheme, error) {
	p, err := routing.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Scheme{p: p, shape: cfg.Shape}, nil
}

// Name identifies the instance, e.g. "mdx-unified-4x4".
func (s *Scheme) Name() string { return cdg.SchemeName(s.p, s.shape) }

// Policy returns the wrapped routing policy.
func (s *Scheme) Policy() *routing.Policy { return s.p }

// Shape returns the lattice shape.
func (s *Scheme) Shape() geom.Shape { return s.shape }

// RegisterDependences records the paper's serialized scheme.
func (s *Scheme) RegisterDependences(b *topo.Builder) error {
	return cdg.RegisterDependences(b, s.p, s.shape)
}

func init() {
	topo.Register(topo.Registration{
		Name: "mdx",
		Canonical: func() (topo.Scheme, error) {
			return New(routing.Config{Shape: geom.MustShape(4, 4)})
		},
	})
}
