package topo

import (
	"fmt"
	"sort"
	"sync"
)

// Registration names one scheme family and builds a canonical instance of
// it for certification. The CI certificate gate iterates every
// registration, certifies the instance, and fails the build if any
// certificate regresses to cyclic.
type Registration struct {
	// Name is the family name ("mdx", "hyperx", "fullmesh").
	Name string
	// Canonical builds the family's reference instance (fault-free, a
	// representative shape).
	Canonical func() (Scheme, error)
}

var (
	regMu  sync.Mutex
	regMap = map[string]Registration{}
)

// Register records a scheme family. Panics on a duplicate name, matching
// the experiments registry convention: a collision is a programming error.
func Register(r Registration) {
	regMu.Lock()
	defer regMu.Unlock()
	if r.Name == "" || r.Canonical == nil {
		panic("topo: Register needs a name and a canonical builder")
	}
	if _, dup := regMap[r.Name]; dup {
		panic(fmt.Sprintf("topo: duplicate scheme registration %q", r.Name))
	}
	regMap[r.Name] = r
}

// Registered returns all registrations sorted by name.
func Registered() []Registration {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]Registration, 0, len(regMap))
	for _, r := range regMap {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
