// Package topo is the topology-agnostic routing framework: a channel
// dependence prover (the Dally–Seitz criterion the paper's Section 5
// argument rests on), a Scheme interface any topology/routing pair
// implements to register its dependence edges, a registry of certified
// schemes, and a generic direct-link lattice network builder for schemes
// whose routers connect point to point (HyperX, full mesh) rather than
// through the paper's shared crossbars.
//
// The prover is deliberately the same machine internal/cdg always ran: a
// channel-vertex graph built in insertion order, optional composite
// vertices that contract a channel set into one resource (the serialized
// broadcast tree), and a deterministic DFS cycle search. internal/cdg now
// drives its MD-crossbar analysis through this Builder, pinned equal to
// its historical output; new schemes register their own channels and
// edges and receive the same acyclic/cyclic verdict with a concrete cycle
// witness on refutation.
package topo

import (
	"errors"
	"fmt"
	"sort"
)

// ErrUnreachable reports that a scheme refuses a source/destination pair
// under the configured fault set. Refused pairs contribute no dependence
// edges: the scheme never allocates channels for them.
var ErrUnreachable = errors.New("topo: destination unreachable under current faults")

// Scheme is a topology plus routing function that can state its channel
// dependences. RegisterDependences must enumerate, for the scheme's
// configured shape and fault set, every channel its routing function can
// allocate and every "holds u, waits for v" edge between consecutive
// channels on a path. The Builder's verdict over that graph is the
// scheme's deadlock-freedom certificate.
type Scheme interface {
	// Name identifies the scheme instance, e.g. "hyperx-4x4".
	Name() string
	// RegisterDependences adds the scheme's channels and dependence edges.
	RegisterDependences(b *Builder) error
}

// Certificate is the prover's verdict for one scheme.
type Certificate struct {
	// Scheme is the certified scheme's name.
	Scheme string
	// Channels and Edges count the contracted dependence graph. A
	// composite vertex counts as one channel.
	Channels, Edges int
	// Acyclic reports whether the graph has no cycle — the sufficient
	// condition for deadlock freedom.
	Acyclic bool
	// Cycle names the channels of one dependency cycle when !Acyclic.
	Cycle []string
}

// String renders the certificate in the fixed golden/testdata format.
func (c Certificate) String() string {
	s := fmt.Sprintf("scheme: %s\nchannels: %d\nedges: %d\nacyclic: %v\n", c.Scheme, c.Channels, c.Edges, c.Acyclic)
	if len(c.Cycle) > 0 {
		s += "cycle:\n"
		for _, name := range c.Cycle {
			s += "  " + name + "\n"
		}
	}
	return s
}

// Builder accumulates a channel dependence graph. Channel vertices are
// interned by name in insertion order; edges are deduplicated; composite
// vertices contract their member channels into one resource at
// certification time. The builder is not safe for concurrent use.
type Builder struct {
	ids     map[string]int
	names   []string
	adj     map[int]map[int]bool
	members map[int]int // member channel id -> composite id
}

// NewBuilder returns an empty dependence-graph builder.
func NewBuilder() *Builder {
	return &Builder{ids: map[string]int{}, adj: map[int]map[int]bool{}, members: map[int]int{}}
}

// Channel interns a channel vertex by name and returns its id. Repeated
// calls with the same name return the same id.
func (b *Builder) Channel(name string) int {
	if v, ok := b.ids[name]; ok {
		return v
	}
	v := len(b.names)
	b.ids[name] = v
	b.names = append(b.names, name)
	return v
}

// Edge records a dependence from channel u to channel v. Self-loops are
// dropped: a channel never waits on itself in cut-through switching.
func (b *Builder) Edge(u, v int) {
	if u == v {
		return
	}
	if b.adj[u] == nil {
		b.adj[u] = map[int]bool{}
	}
	b.adj[u][v] = true
}

// Path interns the named channels and records the consecutive dependences
// of one route: each channel held while the next is awaited.
func (b *Builder) Path(names ...string) {
	for i := 1; i < len(names); i++ {
		b.Edge(b.Channel(names[i-1]), b.Channel(names[i]))
	}
}

// Composite interns a composite vertex: a resource standing for a whole
// channel set (the paper's serialized broadcast tree). Member channels
// absorbed into it are contracted onto this vertex at certification.
func (b *Builder) Composite(name string) int {
	return b.Channel(name)
}

// Absorb marks channel id a member of composite comp. At certification
// every edge touching the member is redirected onto the composite and the
// member no longer counts as a channel of its own.
func (b *Builder) Absorb(comp, id int) {
	if comp == id {
		return
	}
	b.members[id] = comp
}

// Certificate contracts composites, counts the resulting graph, and runs
// the deterministic cycle search.
func (b *Builder) Certificate(scheme string) Certificate {
	contracted := map[int]map[int]bool{}
	redirect := func(v int) int {
		if c, ok := b.members[v]; ok {
			return c
		}
		return v
	}
	edges := 0
	for u, vs := range b.adj {
		cu := redirect(u)
		for v := range vs {
			cv := redirect(v)
			if cu == cv {
				continue
			}
			if contracted[cu] == nil {
				contracted[cu] = map[int]bool{}
			}
			if !contracted[cu][cv] {
				contracted[cu][cv] = true
				edges++
			}
		}
	}
	cert := Certificate{Scheme: scheme, Channels: len(b.names) - len(b.members), Edges: edges}
	cert.Cycle = FindCycle(contracted, b.names)
	cert.Acyclic = cert.Cycle == nil
	return cert
}

// ContractedEdges returns the post-contraction dependence edges as name
// pairs, in deterministic (sorted) order: the same graph Certificate counts
// and searches, with composite members redirected onto their composite and
// self-loops dropped. The reconfiguration layer uses this to merge the edges
// of a retiring routing generation into a fresh Builder when certifying the
// old ∪ new transition graph.
func (b *Builder) ContractedEdges() [][2]string {
	redirect := func(v int) int {
		if c, ok := b.members[v]; ok {
			return c
		}
		return v
	}
	seen := map[[2]int]bool{}
	var out [][2]string
	for u, vs := range b.adj {
		cu := redirect(u)
		for v := range vs {
			cv := redirect(v)
			if cu == cv || seen[[2]int{cu, cv}] {
				continue
			}
			seen[[2]int{cu, cv}] = true
			out = append(out, [2]string{b.names[cu], b.names[cv]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// FindCycle runs a deterministic DFS (vertices and successors in id
// order) over the graph and returns the names of one cycle's vertices, or
// nil. Exposed for analyzers that maintain auxiliary graphs (internal/cdg's
// naive-broadcast hazard check) beside the Builder.
func FindCycle(adj map[int]map[int]bool, names []string) []string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[int]int{}
	parent := map[int]int{}
	var cycleAt = -1

	var nodes []int
	for u := range adj {
		nodes = append(nodes, u)
	}
	sort.Ints(nodes)

	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = gray
		var targets []int
		for v := range adj[u] {
			targets = append(targets, v)
		}
		sort.Ints(targets)
		for _, v := range targets {
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case gray:
				parent[v] = u
				cycleAt = v
				return true
			}
		}
		color[u] = black
		return false
	}
	for _, u := range nodes {
		if color[u] == white {
			if dfs(u) {
				break
			}
		}
	}
	if cycleAt < 0 {
		return nil
	}
	var cyc []string
	cur := cycleAt
	for {
		cyc = append(cyc, names[cur])
		cur = parent[cur]
		if cur == cycleAt {
			break
		}
	}
	for i, j := 0, len(cyc)-1; i < j; i, j = i+1, j-1 {
		cyc[i], cyc[j] = cyc[j], cyc[i]
	}
	return cyc
}

// Certify runs a scheme through a fresh builder and returns its
// certificate.
func Certify(s Scheme) (Certificate, error) {
	b := NewBuilder()
	if err := s.RegisterDependences(b); err != nil {
		return Certificate{}, err
	}
	return b.Certificate(s.Name()), nil
}
