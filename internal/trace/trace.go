// Package trace records per-packet forwarding events from a running
// simulation and formats them as the hop-by-hop walkthroughs used to
// reproduce the paper's figure narratives (Fig. 6 broadcast steps, Fig. 8
// detour steps).
package trace

import (
	"fmt"
	"sort"
	"strings"

	"sr2201/internal/engine"
	"sr2201/internal/flit"
)

// Event is one header forwarding: the named node sent the packet's header
// out of port Out at Cycle, with the RC bit it carried leaving the node.
type Event struct {
	Cycle int64
	Node  string
	Out   int
	RC    flit.RC
}

// Recorder accumulates forwarding events per packet.
type Recorder struct {
	events map[uint64][]Event
	prev   func(*engine.Node, int, *flit.Header, int64)
}

// Attach hooks a recorder onto the engine's OnForward callback, chaining any
// callback already installed.
func Attach(e *engine.Engine) *Recorder {
	r := &Recorder{events: map[uint64][]Event{}, prev: e.OnForward}
	e.OnForward = func(from *engine.Node, out int, h *flit.Header, cycle int64) {
		r.events[h.PacketID] = append(r.events[h.PacketID], Event{
			Cycle: cycle, Node: from.Name, Out: out, RC: h.RC,
		})
		if r.prev != nil {
			r.prev(from, out, h, cycle)
		}
	}
	return r
}

// Events returns the recorded events for one packet, in cycle order (ties in
// record order — for broadcasts these are the simultaneous fan branches).
func (r *Recorder) Events(id uint64) []Event {
	evs := append([]Event(nil), r.events[id]...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Cycle < evs[j].Cycle })
	return evs
}

// Packets lists recorded packet ids in ascending order.
func (r *Recorder) Packets() []uint64 {
	ids := make([]uint64, 0, len(r.events))
	for id := range r.events {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Format renders one packet's trace, one hop per line:
//
//	cycle   3  RTC(0,0)   --normal-->  port 0
func (r *Recorder) Format(id uint64) string {
	evs := r.Events(id)
	if len(evs) == 0 {
		return fmt.Sprintf("packet %d: no recorded hops\n", id)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "packet %d (%d hops):\n", id, len(evs))
	for _, ev := range evs {
		fmt.Fprintf(&b, "  cycle %4d  %-12s --%s--> port %d\n", ev.Cycle, ev.Node, ev.RC, ev.Out)
	}
	return b.String()
}

// RCTransitions extracts the sequence of distinct RC values the packet
// carried, e.g. [normal detour normal] for a detoured packet.
func (r *Recorder) RCTransitions(id uint64) []flit.RC {
	var out []flit.RC
	for _, ev := range r.Events(id) {
		if len(out) == 0 || out[len(out)-1] != ev.RC {
			out = append(out, ev.RC)
		}
	}
	return out
}
