package trace

import (
	"strings"
	"testing"

	"sr2201/internal/core"
	"sr2201/internal/engine"
	"sr2201/internal/fault"
	"sr2201/internal/flit"
	"sr2201/internal/geom"
)

func TestRecorderUnicast(t *testing.T) {
	m, err := core.NewMachine(core.Config{Shape: geom.MustShape(4, 3)})
	if err != nil {
		t.Fatal(err)
	}
	rec := Attach(m.Engine())
	id, err := m.Send(geom.Coord{0, 0}, geom.Coord{2, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out := m.Run(10_000); !out.Drained {
		t.Fatal("did not drain")
	}
	evs := rec.Events(id)
	// PE, RTC, XB0, RTC, XB1, RTC = 6 forwards.
	if len(evs) != 6 {
		t.Fatalf("events = %v", evs)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Cycle < evs[i-1].Cycle {
			t.Error("events out of order")
		}
	}
	if rcs := rec.RCTransitions(id); len(rcs) != 1 || rcs[0] != flit.RCNormal {
		t.Errorf("RC transitions = %v", rcs)
	}
	s := rec.Format(id)
	for _, want := range []string{"packet", "RTC(0,0)", "XB0(0,0)", "XB1(2,0)", "normal"} {
		if !strings.Contains(s, want) {
			t.Errorf("format missing %q:\n%s", want, s)
		}
	}
	if ids := rec.Packets(); len(ids) != 1 || ids[0] != id {
		t.Errorf("packets = %v", ids)
	}
}

func TestRecorderDetourTransitions(t *testing.T) {
	m, err := core.NewMachine(core.Config{Shape: geom.MustShape(4, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddFault(fault.RouterFault(geom.Coord{2, 0})); err != nil {
		t.Fatal(err)
	}
	rec := Attach(m.Engine())
	id, err := m.Send(geom.Coord{0, 0}, geom.Coord{2, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out := m.Run(10_000); !out.Drained {
		t.Fatal("did not drain")
	}
	rcs := rec.RCTransitions(id)
	want := []flit.RC{flit.RCNormal, flit.RCDetour, flit.RCNormal}
	if len(rcs) != len(want) {
		t.Fatalf("RC transitions = %v, want %v", rcs, want)
	}
	for i := range want {
		if rcs[i] != want[i] {
			t.Fatalf("RC transitions = %v, want %v", rcs, want)
		}
	}
}

func TestRecorderBroadcastFanOut(t *testing.T) {
	m, err := core.NewMachine(core.Config{Shape: geom.MustShape(3, 3)})
	if err != nil {
		t.Fatal(err)
	}
	rec := Attach(m.Engine())
	id, _, err := m.Broadcast(geom.Coord{2, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out := m.Run(10_000); !out.Drained {
		t.Fatal("did not drain")
	}
	evs := rec.Events(id)
	if len(evs) < 9 {
		t.Fatalf("broadcast recorded only %d events", len(evs))
	}
	// The request leg is present, and broadcast-RC hops follow.
	rcs := rec.RCTransitions(id)
	if rcs[0] != flit.RCBroadcastRequest {
		t.Errorf("first RC = %v", rcs[0])
	}
	sawBroadcast := false
	for _, rc := range rcs {
		if rc == flit.RCBroadcast {
			sawBroadcast = true
		}
	}
	if !sawBroadcast {
		t.Errorf("no broadcast-RC hops: %v", rcs)
	}
}

func TestRecorderEmptyAndChaining(t *testing.T) {
	m, err := core.NewMachine(core.Config{Shape: geom.MustShape(2, 2)})
	if err != nil {
		t.Fatal(err)
	}
	// A pre-installed OnForward must keep firing after Attach.
	called := 0
	m.Engine().OnForward = func(from *engine.Node, out int, h *flit.Header, cycle int64) { called++ }
	rec := Attach(m.Engine())
	if _, err := m.Send(geom.Coord{0, 0}, geom.Coord{1, 1}, 1); err != nil {
		t.Fatal(err)
	}
	if out := m.Run(1_000); !out.Drained {
		t.Fatal("did not drain")
	}
	if called == 0 {
		t.Error("chained callback not invoked")
	}
	// Unknown packet id formats gracefully.
	if s := rec.Format(999); !strings.Contains(s, "no recorded hops") {
		t.Errorf("format = %q", s)
	}
}
