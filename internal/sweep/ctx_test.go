package sweep

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoCtxMatchesDo(t *testing.T) {
	fn := func(i int) int { return i * i }
	want := Do(100, 4, fn)
	for _, parallel := range []int{1, 2, 8} {
		for _, lim := range []*Limiter{nil, NewLimiter(3)} {
			got, err := DoCtx(context.Background(), lim, 100, parallel, fn)
			if err != nil {
				t.Fatalf("parallel=%d lim=%v: %v", parallel, lim, err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("parallel=%d: result[%d] = %d, want %d", parallel, i, got[i], want[i])
				}
			}
		}
	}
}

func TestDoCtxNilContextAndEmpty(t *testing.T) {
	got, err := DoCtx(nil, nil, 4, 2, func(i int) int { return i })
	if err != nil || len(got) != 4 {
		t.Fatalf("nil ctx: %v %v", got, err)
	}
	if got, err := DoCtx(context.Background(), nil, 0, 2, func(i int) int { return i }); err != nil || got != nil {
		t.Fatalf("n=0: %v %v", got, err)
	}
}

func TestDoCtxCancellationStopsEarly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	const n = 1000
	_, err := DoCtx(ctx, nil, n, 2, func(i int) int {
		if started.Add(1) == 10 {
			cancel()
		}
		return i
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s := started.Load(); s >= n {
		t.Errorf("all %d cells ran despite cancellation", s)
	}
}

func TestDoCtxSerialCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	_, err := DoCtx(ctx, nil, 1000, 1, func(i int) int {
		ran++
		if i == 5 {
			cancel()
		}
		return i
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if ran != 6 {
		t.Errorf("serial sweep ran %d cells after cancel at 5, want 6", ran)
	}
}

func TestDoCtxErrSemantics(t *testing.T) {
	boom := errors.New("boom")
	// First error by index wins, regardless of completion order.
	_, err := DoCtxErr(context.Background(), nil, 10, 4, func(i int) (int, error) {
		if i == 7 || i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Cancellation wins over cell errors.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = DoCtxErr(ctx, nil, 10, 4, func(i int) (int, error) { return 0, boom })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestLimiterBoundsConcurrentSweeps runs two sweeps against one width-2
// budget and asserts the observed peak concurrency never exceeds it, even
// though each sweep alone asks for 4 workers.
func TestLimiterBoundsConcurrentSweeps(t *testing.T) {
	lim := NewLimiter(2)
	var inFlight, peak atomic.Int64
	cell := func(i int) int {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		// Spin briefly so overlapping cells actually overlap.
		for j := 0; j < 10_000; j++ {
			_ = j
		}
		inFlight.Add(-1)
		return i
	}
	var wg sync.WaitGroup
	wg.Add(2)
	for s := 0; s < 2; s++ {
		go func() {
			defer wg.Done()
			if _, err := DoCtx(context.Background(), lim, 50, 4, cell); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > int64(lim.Width()) {
		t.Errorf("peak concurrency %d exceeded budget %d", p, lim.Width())
	}
	if lim.InUse() != 0 {
		t.Errorf("%d slots leaked", lim.InUse())
	}
}

func TestLimiterDefaultsAndCaps(t *testing.T) {
	if w := NewLimiter(0).Width(); w != DefaultParallel() {
		t.Errorf("zero-width limiter = %d, want DefaultParallel", w)
	}
	// parallel is capped at the budget width: with width 1 the sweep is
	// effectively serial and therefore ordered.
	var order []int
	var mu sync.Mutex
	_, err := DoCtx(context.Background(), NewLimiter(1), 20, 8, func(i int) int {
		mu.Lock()
		order = append(order, i)
		mu.Unlock()
		return i
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("width-1 budget ran out of order: %v", order)
		}
	}
}
