// Package sweep shards independent simulation runs across a worker pool.
//
// Experiment sweeps (seeds × loads × fault configurations) are embarrassingly
// parallel: every cell builds its own Machine and Engine and shares no
// mutable state with its neighbours. This package supplies the one primitive
// they all need — "run fn for i in [0,n) on up to `parallel` goroutines and
// give me the results in index order" — so the experiment code stays a plain
// loop body.
//
// Determinism: results are written into a pre-sized slice at the run's own
// index, never appended in completion order, so the merged output of a sweep
// is identical for every parallelism level (including 1). Each fn invocation
// must derive any randomness from its index or an explicit per-run seed; the
// golden tests in internal/experiments pin that property end to end.
package sweep

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultParallel is the worker-pool width used when the caller passes a
// non-positive value: the number of CPUs the process may use.
func DefaultParallel() int { return runtime.GOMAXPROCS(0) }

// Do runs fn(0..n-1) on min(parallel, n) workers and returns the n results
// in index order. parallel <= 0 means DefaultParallel(); parallel == 1 runs
// serially on the calling goroutine with no synchronization overhead.
func Do[R any](n, parallel int, fn func(i int) R) []R {
	if n <= 0 {
		return nil
	}
	results := make([]R, n)
	if parallel <= 0 {
		parallel = DefaultParallel()
	}
	if parallel > n {
		parallel = n
	}
	if parallel == 1 {
		for i := 0; i < n; i++ {
			results[i] = fn(i)
		}
		return results
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(parallel)
	for w := 0; w < parallel; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return results
}

// DoErr is Do for fallible runs: it returns every result plus the first
// error by run index (not completion order), so the reported error is the
// same no matter how the schedule interleaved.
func DoErr[R any](n, parallel int, fn func(i int) (R, error)) ([]R, error) {
	type outcome struct{ err error }
	errs := make([]outcome, n)
	results := Do(n, parallel, func(i int) R {
		r, err := fn(i)
		errs[i].err = err
		return r
	})
	for i := range errs {
		if errs[i].err != nil {
			return results, errs[i].err
		}
	}
	return results, nil
}
