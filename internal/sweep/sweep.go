// Package sweep shards independent simulation runs across a worker pool.
//
// Experiment sweeps (seeds × loads × fault configurations) are embarrassingly
// parallel: every cell builds its own Machine and Engine and shares no
// mutable state with its neighbours. This package supplies the one primitive
// they all need — "run fn for i in [0,n) on up to `parallel` goroutines and
// give me the results in index order" — so the experiment code stays a plain
// loop body.
//
// Determinism: results are written into a pre-sized slice at the run's own
// index, never appended in completion order, so the merged output of a sweep
// is identical for every parallelism level (including 1). Each fn invocation
// must derive any randomness from its index or an explicit per-run seed; the
// golden tests in internal/experiments pin that property end to end.
package sweep

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultParallel is the worker-pool width used when the caller passes a
// non-positive value: the number of CPUs the process may use.
func DefaultParallel() int { return runtime.GOMAXPROCS(0) }

// Do runs fn(0..n-1) on min(parallel, n) workers and returns the n results
// in index order. parallel <= 0 means DefaultParallel(); parallel == 1 runs
// serially on the calling goroutine with no synchronization overhead.
func Do[R any](n, parallel int, fn func(i int) R) []R {
	if n <= 0 {
		return nil
	}
	results := make([]R, n)
	if parallel <= 0 {
		parallel = DefaultParallel()
	}
	if parallel > n {
		parallel = n
	}
	if parallel == 1 {
		for i := 0; i < n; i++ {
			results[i] = fn(i)
		}
		return results
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(parallel)
	for w := 0; w < parallel; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return results
}

// DoErr is Do for fallible runs: it returns every result plus the first
// error by run index (not completion order), so the reported error is the
// same no matter how the schedule interleaved.
func DoErr[R any](n, parallel int, fn func(i int) (R, error)) ([]R, error) {
	type outcome struct{ err error }
	errs := make([]outcome, n)
	results := Do(n, parallel, func(i int) R {
		r, err := fn(i)
		errs[i].err = err
		return r
	})
	for i := range errs {
		if errs[i].err != nil {
			return results, errs[i].err
		}
	}
	return results, nil
}

// Limiter is a concurrency budget shared between sweeps. A server running
// several jobs at once hands every sweep the same Limiter so the *sum* of
// live cell executions across all jobs never exceeds the budget, no matter
// how many sweeps are in flight. A nil Limiter means "no shared budget";
// DoCtx then behaves like Do bounded only by its own parallel argument.
//
// Tokens are held per cell (acquired immediately before fn runs, released
// right after), never across nested sweeps, so a job that fans out inner
// sweeps cannot deadlock against its own budget.
type Limiter struct {
	sem chan struct{}
}

// NewLimiter creates a budget of width worker slots (<= 0 means
// DefaultParallel()).
func NewLimiter(width int) *Limiter {
	if width <= 0 {
		width = DefaultParallel()
	}
	return &Limiter{sem: make(chan struct{}, width)}
}

// Width reports the budget's total worker slots.
func (l *Limiter) Width() int { return cap(l.sem) }

// InUse reports the slots currently held (a point-in-time snapshot).
func (l *Limiter) InUse() int { return len(l.sem) }

// acquire blocks until a slot or cancellation. It reports false on cancel.
func (l *Limiter) acquire(done <-chan struct{}) bool {
	select {
	case l.sem <- struct{}{}:
		return true
	case <-done:
		return false
	}
}

func (l *Limiter) release() { <-l.sem }

// DoCtx runs fn(0..n-1) like Do, with two additions for servers: the context
// cancels the sweep between cells (cells already running finish; unstarted
// indices keep their zero value and DoCtx returns ctx.Err()), and a non-nil
// Limiter gates every cell execution by a budget shared with other sweeps.
// Results are still merged by index, so a completed DoCtx is byte-identical
// to Do at any parallelism and any budget width.
func DoCtx[R any](ctx context.Context, lim *Limiter, n, parallel int, fn func(i int) R) ([]R, error) {
	if n <= 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]R, n)
	if parallel <= 0 {
		parallel = DefaultParallel()
	}
	if lim != nil && parallel > lim.Width() {
		parallel = lim.Width()
	}
	if parallel > n {
		parallel = n
	}
	done := ctx.Done()
	if parallel == 1 && lim == nil {
		for i := 0; i < n; i++ {
			select {
			case <-done:
				return results, ctx.Err()
			default:
			}
			results[i] = fn(i)
		}
		return results, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(parallel)
	for w := 0; w < parallel; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if lim != nil {
					if !lim.acquire(done) {
						return
					}
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					if lim != nil {
						lim.release()
					}
					return
				}
				results[i] = fn(i)
				if lim != nil {
					lim.release()
				}
			}
		}()
	}
	wg.Wait()
	return results, ctx.Err()
}

// DoCtxErr is DoCtx for fallible runs. Cancellation wins over cell errors
// (a canceled sweep reports ctx.Err()); otherwise the first error by run
// index is returned, as in DoErr.
func DoCtxErr[R any](ctx context.Context, lim *Limiter, n, parallel int, fn func(i int) (R, error)) ([]R, error) {
	type outcome struct{ err error }
	errs := make([]outcome, n)
	results, ctxErr := DoCtx(ctx, lim, n, parallel, func(i int) R {
		r, err := fn(i)
		errs[i].err = err
		return r
	})
	if ctxErr != nil {
		return results, ctxErr
	}
	for i := range errs {
		if errs[i].err != nil {
			return results, errs[i].err
		}
	}
	return results, nil
}
