package sweep

// Run with -race: these tests exist as much to give the race detector
// something to chew on (concurrent workers writing disjoint result slots,
// concurrent machines sharing no engine state) as to pin the ordering
// semantics.

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"sr2201/internal/core"
	"sr2201/internal/geom"
)

func TestDoOrdersResultsByIndex(t *testing.T) {
	for _, parallel := range []int{1, 2, 7, 64, 0, -1} {
		got := Do(50, parallel, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("parallel=%d: result[%d] = %d, want %d", parallel, i, v, i*i)
			}
		}
	}
}

func TestDoResultsIdenticalAcrossParallelism(t *testing.T) {
	work := func(i int) string { return fmt.Sprintf("run-%03d", i*7%13) }
	serial := Do(40, 1, work)
	for _, parallel := range []int{2, 4, 16} {
		par := Do(40, parallel, work)
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("parallel=%d: result[%d] = %q, want %q", parallel, i, par[i], serial[i])
			}
		}
	}
}

func TestDoEdgeCases(t *testing.T) {
	if r := Do(0, 4, func(i int) int { return i }); r != nil {
		t.Errorf("n=0 returned %v", r)
	}
	if r := Do(-3, 4, func(i int) int { return i }); r != nil {
		t.Errorf("n<0 returned %v", r)
	}
	// parallel > n must still run every index exactly once.
	var calls atomic.Int64
	r := Do(3, 100, func(i int) int { calls.Add(1); return i })
	if calls.Load() != 3 || len(r) != 3 {
		t.Errorf("n=3 parallel=100: %d calls, %d results", calls.Load(), len(r))
	}
}

func TestDoErrReportsFirstErrorByIndex(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	// Index 3 and 7 both fail; the reported error must be index 3's no
	// matter which completed first.
	for _, parallel := range []int{1, 4} {
		results, err := DoErr(10, parallel, func(i int) (int, error) {
			switch i {
			case 3:
				return 0, errA
			case 7:
				return 0, errB
			}
			return i, nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("parallel=%d: err = %v, want errA", parallel, err)
		}
		if len(results) != 10 || results[9] != 9 {
			t.Fatalf("parallel=%d: results truncated: %v", parallel, results)
		}
	}
	if _, err := DoErr(5, 2, func(i int) (int, error) { return i, nil }); err != nil {
		t.Fatalf("unexpected error %v", err)
	}
}

// TestConcurrentMachinesShareNoState runs full simulations on every worker
// simultaneously; under -race this fails loudly if any engine state (pools,
// scratch buffers, arbiters) leaks across machines.
func TestConcurrentMachinesShareNoState(t *testing.T) {
	shape := []int{4, 4}
	run := func(i int) uint64 {
		m, err := core.NewMachine(core.Config{Shape: geom.MustShape(shape...), StallThreshold: 256})
		if err != nil {
			t.Error(err)
			return 0
		}
		sh := m.Shape()
		for s := 0; s < sh.Size(); s++ {
			_, _ = m.Send(sh.CoordOf(s), sh.CoordOf((s+i+1)%sh.Size()), 4+i%5)
		}
		m.Run(100_000)
		return m.Engine().StateHash()
	}
	serial := Do(12, 1, run)
	parallelRes := Do(12, 8, run)
	for i := range serial {
		if serial[i] != parallelRes[i] {
			t.Errorf("run %d: hash %#x serial vs %#x parallel — engine state leaked across goroutines", i, serial[i], parallelRes[i])
		}
	}
}

func TestDefaultParallel(t *testing.T) {
	if DefaultParallel() < 1 {
		t.Fatalf("DefaultParallel() = %d", DefaultParallel())
	}
}
