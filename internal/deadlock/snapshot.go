package deadlock

import "sr2201/internal/checkpoint"

// The watchdog's progress memory is part of a resumable run's state: a
// restore that reset lastMoves/lastChange would postpone (or, with a stale
// lastMoves, hasten) a stall verdict relative to the uninterrupted run, and
// the verdict is printed in reports. DESIGN.md §8 lists this among the
// easy-to-forget state a snapshot must capture.

// EncodeState appends the watchdog's progress memory.
func (w *Watchdog) EncodeState(e *checkpoint.Encoder) {
	e.Int(w.threshold)
	e.Int(w.lastMoves)
	e.Int(w.lastChange)
}

// DecodeState restores progress memory written by EncodeState. The decoded
// threshold must match the watchdog's configured one: a resumed run with a
// different stall threshold would not reproduce the original's verdicts.
func (w *Watchdog) DecodeState(d *checkpoint.Decoder) {
	d.Expect(w.threshold, "watchdog stall threshold")
	w.lastMoves = d.Int()
	w.lastChange = d.Int()
}
