package deadlock

import (
	"fmt"
	"strings"
	"testing"

	"sr2201/internal/engine"
	"sr2201/internal/flit"
	"sr2201/internal/geom"
)

// buildRing replicates the engine test topology: a k-switch unidirectional
// ring, one endpoint per switch, ports 0=EP 1=from-prev 2=to-next.
func buildRing(e *engine.Engine, k int) []*engine.Node {
	route := func(n *engine.Node, in int, h *flit.Header) (engine.Decision, error) {
		if h.Dst[0] == n.Meta.(int) {
			return engine.Decision{Outs: []int{0}}, nil
		}
		return engine.Decision{Outs: []int{2}}, nil
	}
	var eps, sws []*engine.Node
	for i := 0; i < k; i++ {
		eps = append(eps, e.AddEndpoint(fmt.Sprintf("E%d", i), i))
		sws = append(sws, e.AddSwitch(fmt.Sprintf("S%d", i), 3, route, i))
		e.Connect(eps[i], 0, sws[i], 0)
	}
	for i := 0; i < k; i++ {
		e.ConnectDirected(sws[i], 2, sws[(i+1)%k], 1)
	}
	return eps
}

func pkt(id uint64, dst, size int) []*flit.Flit {
	return flit.NewPacket(&flit.Header{PacketID: id, Dst: geom.Coord{dst}}, size)
}

func TestRunDetectsDrain(t *testing.T) {
	e := engine.New(engine.DefaultConfig())
	eps := buildRing(e, 4)
	e.Inject(eps[0], pkt(1, 2, 8))
	out := Run(e, 10000, 64)
	if !out.Drained || out.Deadlocked || out.Stalled {
		t.Errorf("outcome = %+v", out)
	}
}

func TestRunDetectsRingDeadlock(t *testing.T) {
	e := engine.New(engine.Config{BufferDepth: 1, LinkDelay: 1})
	eps := buildRing(e, 4)
	for i := 0; i < 4; i++ {
		e.Inject(eps[i], pkt(uint64(i+1), (i+2)%4, 16))
	}
	out := Run(e, 10000, 64)
	if !out.Stalled {
		t.Fatal("watchdog did not fire")
	}
	if !out.Deadlocked {
		t.Fatalf("wait cycle not confirmed:\n%s", out.Report.Describe())
	}
	if len(out.Report.Cycle) < 2 {
		t.Errorf("cycle length %d", len(out.Report.Cycle))
	}
	desc := out.Report.Describe()
	if !strings.Contains(desc, "DEADLOCK") {
		t.Errorf("Describe = %q", desc)
	}
}

func TestWatchdogResetsOnProgress(t *testing.T) {
	e := engine.New(engine.DefaultConfig())
	eps := buildRing(e, 4)
	w := NewWatchdog(e, 8)
	// Trickle packets: progress is intermittent but real; the watchdog must
	// never fire.
	for i := 0; i < 200; i++ {
		if i%40 == 0 {
			e.Inject(eps[i/40%4], pkt(uint64(i), (i/40+2)%4, 4))
		}
		e.Step()
		if w.Stalled() && e.Resident() > 0 {
			// Only a genuine >8-cycle pause with resident flits may fire; an
			// 8-cycle threshold with 4-flit packets across 2 hops should not.
			t.Fatalf("watchdog fired spuriously at cycle %d", e.Cycle())
		}
	}
}

func TestWatchdogQuietWhenEmpty(t *testing.T) {
	e := engine.New(engine.DefaultConfig())
	buildRing(e, 3)
	w := NewWatchdog(e, 4)
	for i := 0; i < 100; i++ {
		e.Step()
		if w.Stalled() {
			t.Fatal("watchdog fired on an empty network")
		}
	}
}

func TestAnalyzeCleanNetwork(t *testing.T) {
	e := engine.New(engine.DefaultConfig())
	buildRing(e, 3)
	rep := Analyze(e)
	if rep.Deadlocked || len(rep.Edges) != 0 {
		t.Errorf("report = %+v", rep)
	}
	if !strings.Contains(rep.Describe(), "no wait cycle") {
		t.Errorf("Describe = %q", rep.Describe())
	}
}

func TestStarvationIsNotDeadlock(t *testing.T) {
	// A packet blocked behind a long stream is stalled but not deadlocked:
	// the graph is a chain, not a cycle. We freeze the picture by stopping
	// injection mid-stream: S0 holds the ring link while its source queue
	// starves (endpoint has nothing more to send... instead we emulate with
	// a packet longer than the run). Analyze must find edges but no cycle.
	e := engine.New(engine.Config{BufferDepth: 1, LinkDelay: 1})
	eps := buildRing(e, 4)
	// One very long packet 0->2 and a short one 1->3 that must wait for the
	// shared link S1->S2.
	e.Inject(eps[0], pkt(1, 2, 400))
	e.Inject(eps[1], pkt(2, 3, 4))
	for i := 0; i < 40; i++ {
		e.Step()
	}
	rep := Analyze(e)
	if rep.Deadlocked {
		t.Fatalf("chain misreported as deadlock:\n%s", rep.Describe())
	}
	if len(rep.Edges) == 0 {
		t.Error("expected wait edges for the blocked short packet")
	}
	// And the network still drains.
	out := Run(e, 10000, 0)
	if !out.Drained {
		t.Errorf("network did not drain: %+v", out)
	}
}

func TestRunMaxCyclesExceeded(t *testing.T) {
	// A network that is making progress but slower than the budget: Run must
	// return neither drained nor stalled.
	e := engine.New(engine.Config{BufferDepth: 1, LinkDelay: 1})
	eps := buildRing(e, 4)
	e.Inject(eps[0], pkt(1, 2, 5000))
	out := Run(e, 50, 0)
	if out.Drained || out.Stalled {
		t.Errorf("outcome = %+v", out)
	}
	if out.Cycle != 50 {
		t.Errorf("cycle = %d", out.Cycle)
	}
}
