// Package deadlock detects and diagnoses routing deadlock in a running
// simulation. Detection is two-staged, as in Section 5 of DESIGN.md:
//
//  1. a progress watchdog declares the network stalled when flits are
//     resident but none has moved for a configurable number of cycles;
//  2. a wait-for-graph analyzer then inspects the kernel's blocked ports and
//     searches for a cycle among the channel resources, distinguishing true
//     deadlock (cyclic waiting, the paper's failure mode) from mere
//     starvation or long transients.
package deadlock

import (
	"fmt"
	"strings"

	"sr2201/internal/engine"
)

// DefaultStallThreshold is the number of zero-movement cycles after which the
// watchdog fires. It comfortably exceeds any legitimate pause in the
// experiments (the longest packets are tens of flits).
const DefaultStallThreshold = 512

// Watchdog tracks simulation progress.
type Watchdog struct {
	eng        *engine.Engine
	threshold  int64
	lastMoves  int64
	lastChange int64
}

// NewWatchdog wraps an engine. threshold <= 0 selects
// DefaultStallThreshold.
func NewWatchdog(e *engine.Engine, threshold int64) *Watchdog {
	if threshold <= 0 {
		threshold = DefaultStallThreshold
	}
	return &Watchdog{eng: e, threshold: threshold, lastMoves: e.Moves(), lastChange: e.Cycle()}
}

// Stalled reports whether the network has held flits without any movement
// for at least the threshold. Call it once per cycle, after Step.
func (w *Watchdog) Stalled() bool {
	if w.eng.Moves() != w.lastMoves {
		w.lastMoves = w.eng.Moves()
		w.lastChange = w.eng.Cycle()
		return false
	}
	if w.eng.Resident() == 0 {
		return false
	}
	return w.eng.Cycle()-w.lastChange >= w.threshold
}

// Reset re-arms the watchdog as if it had just been created: the current
// cycle becomes the new baseline for the stall countdown. The recovery
// layer calls it after purging a deadlock victim — the purge itself moves
// no flits, so without a reset the watchdog would re-fire immediately and
// re-diagnose the half-dissolved cycle.
func (w *Watchdog) Reset() {
	w.lastMoves = w.eng.Moves()
	w.lastChange = w.eng.Cycle()
}

// WaitEdge is one arc of the wait-for graph: the packet blocked at From is
// waiting for a resource whose release depends on the packet at To.
type WaitEdge struct {
	From, To *engine.InPort
	// Why describes the dependency ("wants output X owned by ...", or
	// "credit-stalled into ...").
	Why string
}

// Report is the analyzer's verdict on a stalled network.
type Report struct {
	// Deadlocked is true when the wait-for graph contains a cycle.
	Deadlocked bool
	// Cycle lists the edges of one wait cycle when Deadlocked.
	Cycle []WaitEdge
	// Edges is the full wait-for graph.
	Edges []WaitEdge
	// Blocked is the kernel's snapshot the graph was built from.
	Blocked []engine.WaitInfo
}

// Analyze builds the wait-for graph from the engine's blocked ports and
// searches it for a cycle. Call it only when the watchdog has fired (or the
// network is otherwise known to be quiescent-but-loaded); on a live network
// transient arbitration losses make spurious edges.
func Analyze(e *engine.Engine) Report {
	blocked := e.BlockedPorts()
	r := Report{Blocked: blocked}

	// adjacency over input ports
	adj := map[*engine.InPort][]WaitEdge{}
	addEdge := func(we WaitEdge) {
		if we.To == nil || we.From == we.To {
			return
		}
		adj[we.From] = append(adj[we.From], we)
		r.Edges = append(r.Edges, we)
	}
	for _, wi := range blocked {
		for _, o := range wi.WantsOwned {
			addEdge(WaitEdge{
				From: wi.In,
				To:   o.Owner(),
				Why:  fmt.Sprintf("wants %s.out%d owned by packet at %s.in%d", o.Node().Name, o.Index(), o.Owner().Node().Name, o.Owner().Index()),
			})
		}
		for _, o := range wi.CreditStalled {
			dn := o.DownstreamIn()
			if dn == nil || dn.Node().Kind == engine.KindEndpoint {
				// Endpoints drain unconditionally (unbounded eject in our
				// experiments); no dependency.
				continue
			}
			addEdge(WaitEdge{
				From: wi.In,
				To:   dn,
				Why:  fmt.Sprintf("credit-stalled into %s.in%d", dn.Node().Name, dn.Index()),
			})
		}
		if wi.AwaitingFlits && wi.In.UpstreamInFlight() == 0 {
			// The port's circuit is open but its flits are stuck upstream
			// (and none are in flight on the link): progress depends on the
			// packet's upstream segment — the input port holding the output
			// that feeds this one.
			if up := wi.In.UpstreamOut(); up != nil {
				if owner := up.Owner(); owner != nil {
					addEdge(WaitEdge{
						From: wi.In,
						To:   owner,
						Why:  fmt.Sprintf("starved of flits from %s.in%d", owner.Node().Name, owner.Index()),
					})
				}
			}
		}
	}

	// Cycle search: iterative DFS with colors.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[*engine.InPort]int{}
	parentEdge := map[*engine.InPort]WaitEdge{}
	var cycleAt *engine.InPort
	var dfs func(u *engine.InPort) bool
	dfs = func(u *engine.InPort) bool {
		color[u] = gray
		for _, e := range adj[u] {
			switch color[e.To] {
			case white:
				parentEdge[e.To] = e
				if dfs(e.To) {
					return true
				}
			case gray:
				parentEdge[e.To] = e // closing edge; cycle through e.To
				cycleAt = e.To
				return true
			}
		}
		color[u] = black
		return false
	}
	for _, wi := range blocked {
		if color[wi.In] == white {
			if dfs(wi.In) {
				break
			}
		}
	}
	if cycleAt != nil {
		r.Deadlocked = true
		// Walk parent edges backwards from cycleAt until we return to it.
		var cyc []WaitEdge
		cur := cycleAt
		for {
			e := parentEdge[cur]
			cyc = append(cyc, e)
			cur = e.From
			if cur == cycleAt {
				break
			}
		}
		// Reverse into forward order.
		for i, j := 0, len(cyc)-1; i < j; i, j = i+1, j-1 {
			cyc[i], cyc[j] = cyc[j], cyc[i]
		}
		r.Cycle = cyc
	}
	return r
}

// Describe renders the report for logs and error messages.
func (r Report) Describe() string {
	var b strings.Builder
	if !r.Deadlocked {
		fmt.Fprintf(&b, "no wait cycle (%d blocked ports, %d edges)\n", len(r.Blocked), len(r.Edges))
		return b.String()
	}
	fmt.Fprintf(&b, "DEADLOCK: wait cycle of length %d\n", len(r.Cycle))
	for _, e := range r.Cycle {
		hdr := e.From.CurrentHeader()
		id := uint64(0)
		if hdr != nil {
			id = hdr.PacketID
		}
		fmt.Fprintf(&b, "  pkt%d at %s.in%d %s\n", id, e.From.Node().Name, e.From.Index(), e.Why)
	}
	return b.String()
}

// Outcome summarizes a watched run.
type Outcome struct {
	// Drained is true when every flit left the network.
	Drained bool
	// Deadlocked is true when the watchdog fired and the analyzer confirmed a
	// wait cycle.
	Deadlocked bool
	// Stalled is true when the watchdog fired (whether or not a cycle was
	// confirmed; an unconfirmed stall usually means a dependency through an
	// endpoint or a bug).
	Stalled bool
	// Cycle is the simulation time at which the run ended.
	Cycle int64
	// Report carries the analyzer output when Stalled.
	Report Report
}

// Run steps the engine until it drains, deadlocks, or maxCycles pass.
// stallThreshold <= 0 selects DefaultStallThreshold.
func Run(e *engine.Engine, maxCycles, stallThreshold int64) Outcome {
	w := NewWatchdog(e, stallThreshold)
	for i := int64(0); i < maxCycles; i++ {
		if e.Quiescent() {
			return Outcome{Drained: true, Cycle: e.Cycle()}
		}
		e.Step()
		if w.Stalled() {
			rep := Analyze(e)
			return Outcome{Stalled: true, Deadlocked: rep.Deadlocked, Cycle: e.Cycle(), Report: rep}
		}
	}
	if e.Quiescent() {
		return Outcome{Drained: true, Cycle: e.Cycle()}
	}
	return Outcome{Cycle: e.Cycle()}
}
