package recovery

import (
	"fmt"

	"sr2201/internal/core"
	"sr2201/internal/geom"
)

// PairClass classifies one src/dst pair of a traffic pattern against the
// faulted topology.
type PairClass int

const (
	// PairReachable: the routing policy serves the pair (directly or via
	// the hardware detour).
	PairReachable PairClass = iota
	// PairSourceDead: the source PE sits on a failed router; it cannot
	// inject at all.
	PairSourceDead
	// PairDestDead: the destination PE sits on a failed router; the NIA
	// refuses the send (ErrUnreachable) no matter the route.
	PairDestDead
	// PairUnreachable: both endpoints are alive, but the fault combination
	// leaves no deadlock-free route — the detour a single fault would use
	// is itself broken by a second fault.
	PairUnreachable
)

func (c PairClass) String() string {
	switch c {
	case PairReachable:
		return "reachable"
	case PairSourceDead:
		return "source-dead"
	case PairDestDead:
		return "dest-dead"
	case PairUnreachable:
		return "unreachable"
	}
	return fmt.Sprintf("PairClass(%d)", int(c))
}

// Pair is one non-reachable src/dst pair and its classification.
type Pair struct {
	Src, Dst geom.Coord
	Class    PairClass
}

// Reachability is the up-front classification of a traffic pattern over a
// faulted machine: exact per-pair ErrUnreachable predictions, computed from
// the rebuilt routing policy (the same pre-set fault information the NIA
// consults), so campaigns report graceful degradation instead of stalling.
type Reachability struct {
	// Reachable, SourceDead, DestDead, Unreachable count the pairs per
	// class. Self-addressed pairs (Dest(src) == src) are skipped, matching
	// the wave workload.
	Reachable   int
	SourceDead  int
	DestDead    int
	Unreachable int
	// Pairs lists every non-reachable pair in shape enumeration order.
	Pairs []Pair
}

// Denied is the number of pattern sends the machine will refuse per wave:
// the pairs whose live source will be told ErrUnreachable. Dead sources
// never send, so they are not counted here.
func (r Reachability) Denied() int { return r.DestDead + r.Unreachable }

// AnalyzeReachability classifies every src/dst pair of dest against the
// machine's current fault set and routing policy. dest is the pattern
// function with the shape already bound. The analysis is static — it reads
// the policy, never the in-flight state — so it may run at any time after
// the last fault of interest is installed.
func AnalyzeReachability(m *core.Machine, dest func(src geom.Coord) geom.Coord) Reachability {
	var r Reachability
	m.Shape().Enumerate(func(src geom.Coord) bool {
		dst := dest(src)
		if dst.Equal(src) {
			return true
		}
		switch {
		case !m.Alive(src):
			r.SourceDead++
			r.Pairs = append(r.Pairs, Pair{Src: src, Dst: dst, Class: PairSourceDead})
		case !m.Alive(dst):
			r.DestDead++
			r.Pairs = append(r.Pairs, Pair{Src: src, Dst: dst, Class: PairDestDead})
		case m.Reachable(src, dst) != nil:
			r.Unreachable++
			r.Pairs = append(r.Pairs, Pair{Src: src, Dst: dst, Class: PairUnreachable})
		default:
			r.Reachable++
		}
		return true
	})
	return r
}
